// Command augserve exposes one long-lived matching Solve as an HTTP
// service over the fully-dynamic mutation stream: clients queue edge
// inserts, deletes, and reweights; each tick applies the queued batch
// through core.Runner.ApplyMutations — the incremental index absorbs the
// edits through its change clocks, bit-identical to a cold solve on the
// post-edit graph — and re-converges the matching. Reads are snapshots of
// the current matching and the full reflective core.Stats counter ledger.
//
// Usage:
//
//	auggen -family banded -n 200 -m 1200 | augserve -addr :8080
//	augserve -input g.txt -snapshot state.snap -resume -tick 2s
//
// Endpoints:
//
//	GET  /healthz   liveness ("ok")
//	GET  /matching  current matching: weight, size, graph dims, tick, edges
//	GET  /stats     the core.Stats ledger as a flat JSON object (reflective:
//	                a counter added by a future PR appears automatically)
//	POST /mutate    queue mutations: JSON array of {"op","u","v","w"}
//	                (op: insert | delete | reweight; w ignored for delete)
//	POST /tick      apply the queued batch and re-converge; reports the
//	                ops applied, the augmentation gain, and the new weight
//	POST /snapshot  persist a resumable checkpoint to the -snapshot path
//
// With -tick > 0 the server also ticks on a timer; with -tick 0 (the
// default) ticks happen only on POST /tick, which is what the scripted CI
// smoke drives. The restart story is the PR 6 snapshot container: the
// checkpoint persists the post-edit graph, the matching, the accumulated
// stats, and the Rng stream position (seed + draw count); -resume picks
// all of it up and rebuilds the amortised context from scratch, the same
// rebuild-twin equivalence the degradation ladder leans on. A missing or
// corrupt snapshot degrades to a cold start, never an error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/layered"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "augserve:", err)
		os.Exit(1)
	}
}

// config is the parsed flag set of one server instance.
type config struct {
	addr        string
	input       string
	seed        int64
	granularity float64
	workers     int
	snapshot    string
	resume      bool
	tick        time.Duration
	opts        core.Options
}

// options resolves the solver configuration the flags describe. The server
// always runs the amortised pipeline — the mutation stream is its reason
// to exist.
func (c *config) options() core.Options {
	return core.Options{
		Amortize: true,
		Workers:  c.workers,
		Layered:  layered.Params{Granularity: c.granularity},
	}
}

// server owns the live Solve state: one graph, one matching, one
// persistent Runner, and the mutation batch queued for the next tick.
// Every handler takes the one mutex — ticks re-converge a whole matching,
// so there is nothing to gain from finer locking, and the coarse lock
// makes the snapshot trivially consistent.
type server struct {
	mu      sync.Mutex
	cfg     config
	g       *graph.Graph
	m       *graph.Matching
	runner  *core.Runner
	stats   core.Stats
	cs      *core.CountingSource
	seed    int64 // the Rng stream's origin seed (the checkpoint's on resume)
	pending core.MutationBatch
	ticks   int
	resumed bool
	coldMsg string // why a requested resume started cold, "" if it didn't
}

// newServer builds the service state over g, resuming from cfg.snapshot
// when requested and the checkpoint is usable. The resumed graph replaces
// g entirely — the snapshot's post-edit graph is the service's truth.
func newServer(g *graph.Graph, cfg config) *server {
	s := &server{cfg: cfg, g: g, seed: cfg.seed}
	if cfg.resume && cfg.snapshot != "" {
		if cp, err := core.LoadCheckpoint(cfg.snapshot); err != nil {
			s.coldMsg = err.Error()
		} else if !cp.Meta.Compatible(core.MetaOf(cfg.opts)) {
			s.coldMsg = core.ErrCheckpointOptions.Error()
		} else {
			s.g, s.m = cp.Graph, cp.M
			s.stats = cp.Stats
			s.ticks = cp.Round
			s.seed = cp.RngSeed
			s.cs = core.ReplayCountingSource(cp.RngSeed, cp.RngDraws)
			s.resumed = true
		}
	}
	if s.cs == nil {
		s.cs = core.NewCountingSource(s.seed)
	}
	if s.m == nil {
		s.m = graph.NewMatching(s.g.N())
	}
	opts := cfg.opts
	opts.Rng = rand.New(s.cs)
	s.runner = core.NewRunner(s.g, opts)
	return s
}

// checkpoint assembles the current state as a core.Checkpoint. Caller
// holds the lock.
func (s *server) checkpoint() *core.Checkpoint {
	return &core.Checkpoint{
		Graph: s.g, M: s.m,
		Round: s.ticks, Stalled: 0,
		Stats:   s.stats,
		RngSeed: s.seed, RngDraws: s.cs.Draws(),
		Meta: core.MetaOf(s.cfg.opts),
	}
}

// tick applies the queued batch and re-converges. Caller holds the lock.
func (s *server) tick() (applied int, gain graph.Weight, err error) {
	batch := s.pending
	s.pending = core.MutationBatch{}
	before := s.stats.MutationsApplied
	gain, err = s.runner.Tick(s.m, &batch, &s.stats)
	s.ticks++
	return s.stats.MutationsApplied - before, gain, err
}

// mutationReq is the wire form of one queued edit.
type mutationReq struct {
	Op string       `json:"op"`
	U  int          `json:"u"`
	V  int          `json:"v"`
	W  graph.Weight `json:"w,omitempty"`
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// handler wires the endpoint set. Split from ListenAndServe so the smoke
// test drives the identical mux through httptest.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})

	mux.HandleFunc("GET /matching", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		defer s.mu.Unlock()
		type edge struct {
			U int          `json:"u"`
			V int          `json:"v"`
			W graph.Weight `json:"w"`
		}
		edges := make([]edge, 0, s.m.Size())
		for _, e := range s.m.Edges() {
			edges = append(edges, edge{e.U, e.V, e.W})
		}
		writeJSON(w, map[string]any{
			"weight": s.m.Weight(), "size": s.m.Size(),
			"n": s.g.N(), "m": s.g.M(),
			"tick": s.ticks, "resumed": s.resumed,
			"edges": edges,
		})
	})

	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		defer s.mu.Unlock()
		counters := make(map[string]int64)
		for _, f := range s.stats.Fields() {
			counters[f.Name] = f.Value
		}
		writeJSON(w, counters)
	})

	mux.HandleFunc("POST /mutate", func(w http.ResponseWriter, r *http.Request) {
		var reqs []mutationReq
		if err := json.NewDecoder(r.Body).Decode(&reqs); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		// Validate the whole request into a local batch before touching the
		// queue: a rejected request must queue nothing. The previous loop
		// appended straight into s.pending and bailed mid-iteration on an
		// unknown op, so a 400 response could leave the request's valid
		// prefix queued for the next tick — the client retries the fixed
		// request and the prefix applies twice.
		var batch core.MutationBatch
		for _, q := range reqs {
			switch q.Op {
			case "insert":
				batch.InsertEdge(q.U, q.V, q.W)
			case "delete":
				batch.DeleteEdge(q.U, q.V)
			case "reweight":
				batch.ReweightEdge(q.U, q.V, q.W)
			default:
				http.Error(w, fmt.Sprintf("unknown op %q", q.Op), http.StatusBadRequest)
				return
			}
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		s.pending.Extend(batch.Ops())
		writeJSON(w, map[string]any{"queued": s.pending.Len()})
	})

	mux.HandleFunc("POST /tick", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		defer s.mu.Unlock()
		applied, gain, err := s.tick()
		if err != nil {
			// The batch prefix before the failing op stays applied and the
			// runner stays consistent (see ApplyMutations); report the error
			// with the post-tick state so the client can reconcile.
			writeJSON(w, map[string]any{
				"error": err.Error(), "tick": s.ticks, "applied": applied,
				"weight": s.m.Weight(), "size": s.m.Size(),
			})
			return
		}
		writeJSON(w, map[string]any{
			"tick": s.ticks, "applied": applied, "gain": gain,
			"weight": s.m.Weight(), "size": s.m.Size(),
		})
	})

	mux.HandleFunc("POST /snapshot", func(w http.ResponseWriter, r *http.Request) {
		if s.cfg.snapshot == "" {
			http.Error(w, "no -snapshot path configured", http.StatusBadRequest)
			return
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		cp := s.checkpoint()
		if err := core.SaveCheckpoint(s.cfg.snapshot, cp); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, map[string]any{
			"path": s.cfg.snapshot, "tick": s.ticks, "rng-draws": s.cs.Draws(),
		})
	})

	return mux
}

// newFlagSet declares augserve's flags; shared with the golden -help test.
func newFlagSet(cfg *config) *flag.FlagSet {
	fs := flag.NewFlagSet("augserve", flag.ContinueOnError)
	fs.StringVar(&cfg.addr, "addr", "127.0.0.1:8377", "listen address")
	fs.StringVar(&cfg.input, "input", "-", "graph file in text edge format ('-' = stdin)")
	fs.Int64Var(&cfg.seed, "seed", 1, "random seed for the bipartition stream")
	fs.Float64Var(&cfg.granularity, "granularity", 0, "layered-graph granularity (0 = default 1/8)")
	fs.IntVar(&cfg.workers, "workers", 0, "per-class worker pool size (0 = sequential)")
	fs.StringVar(&cfg.snapshot, "snapshot", "", "checkpoint path for POST /snapshot and -resume")
	fs.BoolVar(&cfg.resume, "resume", false, "resume from the -snapshot checkpoint; an unusable snapshot degrades to a cold start")
	fs.DurationVar(&cfg.tick, "tick", 0, "tick period (0 = tick only on POST /tick)")
	return fs
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	var cfg config
	fs := newFlagSet(&cfg)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if cfg.resume && cfg.snapshot == "" {
		return fmt.Errorf("-resume requires -snapshot")
	}
	cfg.opts = cfg.options()

	var r io.Reader = stdin
	if cfg.input != "-" {
		f, err := os.Open(cfg.input)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	g, err := graph.Read(r)
	if err != nil {
		return err
	}

	s := newServer(g, cfg)
	if s.resumed {
		fmt.Fprintf(stdout, "resumed tick=%d n=%d m=%d weight=%d\n", s.ticks, s.g.N(), s.g.M(), s.m.Weight())
	} else if cfg.resume {
		fmt.Fprintf(stdout, "cold start (snapshot unusable: %s)\n", s.coldMsg)
	}
	if cfg.tick > 0 {
		go func() {
			for range time.Tick(cfg.tick) {
				s.mu.Lock()
				s.tick()
				s.mu.Unlock()
			}
		}()
	}
	fmt.Fprintf(stdout, "listening on %s (n=%d m=%d)\n", cfg.addr, g.N(), g.M())
	return http.ListenAndServe(cfg.addr, s.handler())
}
