package main

import (
	"bytes"
	"os"
	"testing"
)

// TestHelpGolden pins the -help output (the full flag surface with
// defaults and doc strings) against testdata/help.golden, so a flag added
// to the code without its documentation — or a doc string drifting from
// the behaviour it describes — fails visibly here instead of silently
// shipping. Regenerate with UPDATE_GOLDEN=1 go test ./cmd/augserve/ -run
// TestHelpGolden after an intentional change.
func TestHelpGolden(t *testing.T) {
	var f config
	fs := newFlagSet(&f)
	var buf bytes.Buffer
	fs.SetOutput(&buf)
	fs.Usage()
	const path = "testdata/help.golden"
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with UPDATE_GOLDEN=1)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("-help output drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", path, buf.Bytes(), want)
	}
}
