package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// postJSON posts v to url and decodes the JSON response into out.
func postJSON(t *testing.T, url string, v any, out any) *http.Response {
	t.Helper()
	var body bytes.Buffer
	if v != nil {
		if err := json.NewEncoder(&body).Encode(v); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(url, "application/json", &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// TestServeSmoke is the CI smoke: start the server, drive a scripted
// mutation batch through /mutate + /tick, and assert (a) the resulting
// weight equals a cold Solve on the post-edit graph — the service is just
// the dynamic pipeline behind HTTP — and (b) the stats ledger's fallback
// row is clean: nothing in the scripted run degraded.
func TestServeSmoke(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	inst := graph.RandomGraph(40, 160, 64, rng)
	cfg := config{seed: 9}
	cfg.opts = cfg.options()
	s := newServer(inst.G.Clone(), cfg)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp.Status, err)
	}
	resp.Body.Close()

	// Scripted batch: one insert, one delete, one reweight — applied to a
	// twin graph by hand for the cold-solve comparison below.
	twin := inst.G.Clone()
	e0, e1 := twin.EdgeAt(0), twin.EdgeAt(1)
	muts := []mutationReq{
		{Op: "insert", U: 2, V: 37, W: 99},
		{Op: "delete", U: e0.U, V: e0.V},
		{Op: "reweight", U: e1.U, V: e1.V, W: e1.W + 17},
	}
	if err := twin.AddEdge(graph.Edge{U: 2, V: 37, W: 99}); err != nil {
		t.Fatal(err)
	}
	i, _ := twin.FindEdge(e0.U, e0.V)
	if _, err := twin.RemoveEdgeAt(i); err != nil {
		t.Fatal(err)
	}
	i, _ = twin.FindEdge(e1.U, e1.V)
	if err := twin.SetEdgeWeight(i, e1.W+17); err != nil {
		t.Fatal(err)
	}

	var queued struct{ Queued int }
	postJSON(t, ts.URL+"/mutate", muts, &queued)
	if queued.Queued != 3 {
		t.Fatalf("queued = %d, want 3", queued.Queued)
	}
	var tick struct {
		Tick, Applied int
		Weight        int64
		Size          int
	}
	postJSON(t, ts.URL+"/tick", nil, &tick)
	if tick.Applied != 3 || tick.Tick != 1 {
		t.Fatalf("tick = %+v, want 3 ops applied on tick 1", tick)
	}

	// The batch landed before any round, so the converged weight must be a
	// cold Solve's on the post-edit graph under the same seed (the counting
	// source draws from the very generator rand.NewSource yields).
	cold, err := core.Solve(twin, nil, core.Options{
		Amortize: true, Rng: rand.New(rand.NewSource(9)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if tick.Weight != int64(cold.M.Weight()) {
		t.Fatalf("served weight %d != cold solve weight %d on post-edit graph", tick.Weight, cold.M.Weight())
	}

	var matching struct {
		Weight int64
		Size   int
		M      int
		Edges  []mutationReq
	}
	getJSON(t, ts.URL+"/matching", &matching)
	if matching.Weight != tick.Weight || matching.Size != tick.Size {
		t.Fatalf("/matching %+v disagrees with /tick %+v", matching, tick)
	}
	if matching.M != twin.M() {
		t.Fatalf("graph has %d edges, want %d after the batch", matching.M, twin.M())
	}

	counters := map[string]int64{}
	getJSON(t, ts.URL+"/stats", &counters)
	if counters["mutations-applied"] != 3 {
		t.Errorf("mutations-applied = %d, want 3", counters["mutations-applied"])
	}
	if counters["rounds"] == 0 {
		t.Error("no rounds recorded")
	}
	for name, v := range counters {
		if strings.HasPrefix(name, "fallback-") && v != 0 {
			t.Errorf("dirty fallback row: %s = %d", name, v)
		}
	}
}

// TestServeSnapshotRestart pins the restart story: snapshot a served run,
// bring up a second server resuming from it, and drive both with the same
// further batch — the restarted server must continue bit-identically
// (same weights, same matching edges), because the checkpoint pins the
// graph, matching, stats, and Rng stream position.
func TestServeSnapshotRestart(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	inst := graph.RandomGraph(30, 120, 32, rng)
	snap := filepath.Join(t.TempDir(), "serve.snap")
	cfg := config{seed: 11, snapshot: snap}
	cfg.opts = cfg.options()

	s1 := newServer(inst.G.Clone(), cfg)
	ts1 := httptest.NewServer(s1.handler())
	defer ts1.Close()

	postJSON(t, ts1.URL+"/mutate", []mutationReq{{Op: "insert", U: 1, V: 28, W: 50}}, nil)
	postJSON(t, ts1.URL+"/tick", nil, nil)
	var snapResp struct{ Tick int }
	postJSON(t, ts1.URL+"/snapshot", nil, &snapResp)
	if snapResp.Tick != 1 {
		t.Fatalf("snapshot at tick %d, want 1", snapResp.Tick)
	}

	cfg2 := cfg
	cfg2.resume = true
	// The resumed server's input graph is ignored in favour of the
	// checkpoint's post-edit graph; hand it the stale original to prove it.
	s2 := newServer(inst.G.Clone(), cfg2)
	if !s2.resumed {
		t.Fatalf("server did not resume (cold: %s)", s2.coldMsg)
	}
	ts2 := httptest.NewServer(s2.handler())
	defer ts2.Close()

	// Same continuation on both: delete one matched edge, re-converge.
	var m1 struct{ Edges []mutationReq }
	getJSON(t, ts1.URL+"/matching", &m1)
	if len(m1.Edges) == 0 {
		t.Fatal("no matched edges to continue with")
	}
	cont := []mutationReq{{Op: "delete", U: m1.Edges[0].U, V: m1.Edges[0].V}}
	var t1, t2 struct {
		Weight int64
		Size   int
	}
	postJSON(t, ts1.URL+"/mutate", cont, nil)
	postJSON(t, ts1.URL+"/tick", nil, &t1)
	postJSON(t, ts2.URL+"/mutate", cont, nil)
	postJSON(t, ts2.URL+"/tick", nil, &t2)
	if t1 != t2 {
		t.Fatalf("continuations diverge: original %+v vs restarted %+v", t1, t2)
	}
	var e1, e2 struct{ Edges []mutationReq }
	getJSON(t, ts1.URL+"/matching", &e1)
	getJSON(t, ts2.URL+"/matching", &e2)
	if fmt.Sprint(e1) != fmt.Sprint(e2) {
		t.Fatalf("matchings diverge after restart:\n%v\nvs\n%v", e1, e2)
	}
}

// TestMutateRejectQueuesNothing is the regression for the /mutate
// partial-queue seam bug (PR 9): a request rejected with 400 — here a
// valid prefix followed by an unknown op — must leave the pending queue
// untouched. The old handler appended ops as it validated and bailed
// mid-loop, so the rejected request's prefix applied on the next tick;
// a client that fixed and retried the request would apply it twice.
func TestMutateRejectQueuesNothing(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	inst := graph.RandomGraph(12, 30, 16, rng)
	cfg := config{seed: 2}
	cfg.opts = cfg.options()
	s := newServer(inst.G.Clone(), cfg)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	bad := []mutationReq{
		{Op: "insert", U: 1, V: 7, W: 40},
		{Op: "delete", U: inst.G.EdgeAt(0).U, V: inst.G.EdgeAt(0).V},
		{Op: "sideways", U: 2, V: 3},
	}
	if resp := postJSON(t, ts.URL+"/mutate", bad, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mixed batch: status %d, want 400", resp.StatusCode)
	}
	var tick struct {
		Applied int
		Error   string
	}
	postJSON(t, ts.URL+"/tick", nil, &tick)
	if tick.Applied != 0 || tick.Error != "" {
		t.Fatalf("rejected request left ops behind: tick applied %d (error %q), want 0", tick.Applied, tick.Error)
	}

	// The corrected retry applies exactly its own ops.
	var queued struct{ Queued int }
	postJSON(t, ts.URL+"/mutate", bad[:2], &queued)
	if queued.Queued != 2 {
		t.Fatalf("queued = %d, want 2", queued.Queued)
	}
	postJSON(t, ts.URL+"/tick", nil, &tick)
	if tick.Applied != 2 {
		t.Fatalf("retry applied %d ops, want 2", tick.Applied)
	}
}

// TestServeConcurrentHammer drives every mutating and reading endpoint from
// concurrent clients — valid /mutate batches, rejected /mutate batches,
// /tick, /matching, /stats, /snapshot — to pin the queue-swap-under-lock
// contract. The CI serve-smoke job runs this under -race, which is the
// test's real teeth: any handler touching server state outside s.mu, or
// any tick observing a half-spliced queue, surfaces as a race or a torn
// response here. Functional assertions keep it honest without racing the
// scheduler: every response is well-formed, the server stays healthy, and
// the final drained state reconciles applied ops against accepted ones.
func TestServeConcurrentHammer(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	inst := graph.RandomGraph(30, 120, 32, rng)
	snap := filepath.Join(t.TempDir(), "hammer.snap")
	cfg := config{seed: 13, snapshot: snap}
	cfg.opts = cfg.options()
	s := newServer(inst.G.Clone(), cfg)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	const (
		writers  = 4
		tickers  = 2
		readers  = 4
		perIters = 8
	)
	var accepted atomic.Int64
	var wg sync.WaitGroup
	for wkr := 0; wkr < writers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(int64(100 + wkr)))
			for i := 0; i < perIters; i++ {
				u, v := wrng.Intn(inst.G.N()), wrng.Intn(inst.G.N())
				if u == v {
					v = (v + 1) % inst.G.N()
				}
				batch := []mutationReq{{Op: "insert", U: u, V: v, W: graph.Weight(1 + wrng.Intn(60))}}
				if i%3 == 2 {
					// Every third request is malformed and must queue nothing.
					batch = append(batch, mutationReq{Op: "sideways"})
				}
				resp := postJSON(t, ts.URL+"/mutate", batch, nil)
				switch resp.StatusCode {
				case http.StatusOK:
					accepted.Add(int64(len(batch)))
				case http.StatusBadRequest:
				default:
					t.Errorf("/mutate: unexpected status %d", resp.StatusCode)
				}
			}
		}(wkr)
	}
	for tk := 0; tk < tickers; tk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perIters; i++ {
				var tick struct {
					Error string
					Tick  int
				}
				postJSON(t, ts.URL+"/tick", nil, &tick)
				if tick.Error != "" {
					t.Errorf("hammer tick error: %s", tick.Error)
				}
				postJSON(t, ts.URL+"/snapshot", nil, nil)
			}
		}()
	}
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perIters; i++ {
				var matching struct {
					Weight int64
					Size   int
					Edges  []mutationReq
				}
				getJSON(t, ts.URL+"/matching", &matching)
				if len(matching.Edges) != matching.Size {
					t.Errorf("torn /matching: %d edges, size %d", len(matching.Edges), matching.Size)
				}
				counters := map[string]int64{}
				getJSON(t, ts.URL+"/stats", &counters)
				if _, ok := counters["rounds"]; !ok {
					t.Error("torn /stats: no rounds counter")
				}
			}
		}()
	}
	wg.Wait()

	// Drain: one final tick flushes whatever the last writers queued; the
	// total applied must then equal exactly the accepted ops — rejected
	// requests contributed nothing, accepted ones exactly once.
	var final struct{ Error string }
	postJSON(t, ts.URL+"/tick", nil, &final)
	if final.Error != "" {
		t.Fatalf("drain tick: %s", final.Error)
	}
	counters := map[string]int64{}
	getJSON(t, ts.URL+"/stats", &counters)
	if got := counters["mutations-applied"]; got != accepted.Load() {
		t.Errorf("mutations-applied = %d, want %d accepted ops", got, accepted.Load())
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("server unhealthy after hammer: %v %v", resp.Status, err)
	}
	resp.Body.Close()
}

// TestServeErrors pins the failure surface: a bad op is a 400, a snapshot
// without a configured path is a 400, and a delete of a nonexistent edge
// surfaces in the tick response without killing the server.
func TestServeErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	inst := graph.RandomGraph(10, 20, 16, rng)
	cfg := config{seed: 2}
	cfg.opts = cfg.options()
	s := newServer(inst.G.Clone(), cfg)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	if resp := postJSON(t, ts.URL+"/mutate", []mutationReq{{Op: "sideways"}}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad op: status %d, want 400", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL+"/snapshot", nil, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("snapshot without path: status %d, want 400", resp.StatusCode)
	}
	postJSON(t, ts.URL+"/mutate", []mutationReq{{Op: "delete", U: 0, V: 9}}, nil)
	var tick struct {
		Error string
		Tick  int
	}
	postJSON(t, ts.URL+"/tick", nil, &tick)
	if _, ok := inst.G.FindEdge(0, 9); !ok {
		if tick.Error == "" {
			t.Error("delete of nonexistent edge reported no error")
		}
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("server unhealthy after failed tick: %v %v", resp.Status, err)
	}
	resp.Body.Close()
}
