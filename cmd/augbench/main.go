// Command augbench runs the experiment harness and prints the paper-style
// tables of EXPERIMENTS.md.
//
// Usage:
//
//	augbench [-experiment E1,E4] [-seed 1] [-trials 5] [-quick] [-amortize] [-json FILE]
//
// With no -experiment flag every registered experiment runs (currently
// E1..E20 — the registry in internal/bench is the authority, and an
// unknown id's error message lists it). With -json the tables are
// additionally written to FILE as machine-readable JSON (the BENCH_*.json
// format the perf ledger tracks across PRs). -amortize routes the
// reduction-driven experiments through the cross-round amortised pipeline
// (bit-identical results; the E12b counters table shows the probe and
// cache activity).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "augbench:", err)
		os.Exit(1)
	}
}

// jsonTable mirrors bench.Table with stable, lower-case field names so the
// emitted files stay diffable across PRs.
type jsonTable struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	Claim  string     `json:"claim,omitempty"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

type jsonReport struct {
	Seed     int64       `json:"seed"`
	Trials   int         `json:"trials"`
	Quick    bool        `json:"quick"`
	Amortize bool        `json:"amortize,omitempty"`
	Tables   []jsonTable `json:"tables"`
}

// flags is augbench's parsed flag surface.
type flags struct {
	experiments string
	seed        int64
	trials      int
	quick       bool
	amortize    bool
	jsonPath    string
}

// newFlagSet declares augbench's flags over f. Split from run so the
// golden -help test renders the identical usage text the binary prints.
func newFlagSet(f *flags) *flag.FlagSet {
	fs := flag.NewFlagSet("augbench", flag.ContinueOnError)
	fs.StringVar(&f.experiments, "experiment", "", "comma-separated experiment ids (default: all)")
	fs.Int64Var(&f.seed, "seed", 1, "random seed")
	fs.IntVar(&f.trials, "trials", 5, "trials per table row")
	fs.BoolVar(&f.quick, "quick", false, "shrink instance sizes")
	fs.BoolVar(&f.amortize, "amortize", false, "use the cross-round amortised solving pipeline")
	fs.StringVar(&f.jsonPath, "json", "", "also write the tables as JSON to this file")
	return fs
}

func run(args []string) error {
	var f flags
	fs := newFlagSet(&f)
	if err := fs.Parse(args); err != nil {
		return err
	}
	experiments, seed, trials := &f.experiments, &f.seed, &f.trials
	quick, amortize, jsonPath := &f.quick, &f.amortize, &f.jsonPath

	cfg := bench.Config{Seed: *seed, Trials: *trials, Quick: *quick, Amortize: *amortize}
	registry := bench.Registry()

	ids := bench.IDs()
	if *experiments != "" {
		ids = strings.Split(*experiments, ",")
	}
	report := jsonReport{Seed: *seed, Trials: *trials, Quick: *quick, Amortize: *amortize}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		runner, ok := registry[id]
		if !ok {
			return fmt.Errorf("unknown experiment %q (have %v)", id, bench.IDs())
		}
		for _, t := range runner(cfg) {
			t.Render(os.Stdout)
			report.Tables = append(report.Tables, jsonTable{
				ID: t.ID, Title: t.Title, Claim: t.Claim, Header: t.Header, Rows: t.Rows,
			})
		}
	}
	if *jsonPath != "" {
		out, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		out = append(out, '\n')
		if err := os.WriteFile(*jsonPath, out, 0o644); err != nil {
			return err
		}
	}
	return nil
}
