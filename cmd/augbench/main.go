// Command augbench runs the experiment harness and prints the paper-style
// tables of EXPERIMENTS.md.
//
// Usage:
//
//	augbench [-experiment E1,E4] [-seed 1] [-trials 5] [-quick]
//
// With no -experiment flag every experiment (E1..E10) runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "augbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("augbench", flag.ContinueOnError)
	experiments := fs.String("experiment", "", "comma-separated experiment ids (default: all)")
	seed := fs.Int64("seed", 1, "random seed")
	trials := fs.Int("trials", 5, "trials per table row")
	quick := fs.Bool("quick", false, "shrink instance sizes")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := bench.Config{Seed: *seed, Trials: *trials, Quick: *quick}
	registry := bench.Registry()

	ids := bench.IDs()
	if *experiments != "" {
		ids = strings.Split(*experiments, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		runner, ok := registry[id]
		if !ok {
			return fmt.Errorf("unknown experiment %q (have %v)", id, bench.IDs())
		}
		for _, t := range runner(cfg) {
			t.Render(os.Stdout)
		}
	}
	return nil
}
