// Command auggen generates benchmark graphs in the text edge format
// ("p <n> <m>" header, then "<u> <v> <w>" lines) on stdout.
//
// Usage:
//
//	auggen -family planted -n 1000 -m 8000 -seed 1 > g.txt
//
// Families: random, planted, bipartite, cycle, chain, geometric.
// For families with a known optimum the weight is emitted as a comment.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/graph"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "auggen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("auggen", flag.ContinueOnError)
	family := fs.String("family", "random", "random|planted|bipartite|cycle|chain|geometric")
	n := fs.Int("n", 100, "vertex count (segments for chain; half-length for cycle)")
	m := fs.Int("m", 500, "edge count (noise edges for planted)")
	maxw := fs.Int64("maxw", 1000, "maximum edge weight")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))

	var inst graph.Instance
	switch *family {
	case "random":
		inst = graph.RandomGraph(*n, *m, *maxw, rng)
	case "planted":
		inst = graph.PlantedMatching(*n, *m, *maxw/2, *maxw, rng)
	case "bipartite":
		inst = graph.RandomBipartite(*n/2, *n-*n/2, *m, *maxw, rng)
	case "cycle":
		inst = graph.WeightedCycle(*n, 3**maxw/4, *maxw)
	case "chain":
		inst = graph.AugmentingChain(*n, *maxw/2, *maxw/2+1, rng)
	case "geometric":
		inst = graph.GeometricWeights(*n, *m, 2, 12, rng)
	default:
		return fmt.Errorf("unknown family %q", *family)
	}
	if inst.OptExact {
		fmt.Printf("# optimum %d\n", inst.OptWeight)
	}
	_, err := inst.G.WriteTo(os.Stdout)
	return err
}
