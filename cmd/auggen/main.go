// Command auggen generates benchmark graphs in the text edge format
// ("p <n> <m>" header, then "<u> <v> <w>" lines) on stdout, or in the
// binary stream-file format (docs/OPERATIONS.md, "Stream files") with
// -binary.
//
// Usage:
//
//	auggen -family planted -n 1000 -m 8000 -seed 1 > g.txt
//	auggen -family stream -n 100000 -m 10000000 -binary g.estream -order random
//
// Families: random, planted, bipartite, cycle, chain, geometric, stream.
// For families with a known optimum the weight is emitted as a comment.
//
// The stream family is generated edge-by-edge and written straight to the
// binary format — no in-RAM graph or edge slice ever exists, so it scales
// to streams far larger than memory (with -order random the
// external-memory shuffle keeps that property while producing a uniformly
// random arrival order). It requires -binary and does not deduplicate
// edges (the stream is a multigraph sample).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/graph"
	"repro/internal/stream"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "auggen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("auggen", flag.ContinueOnError)
	family := fs.String("family", "random", "random|planted|bipartite|cycle|chain|geometric|stream")
	n := fs.Int("n", 100, "vertex count (segments for chain; half-length for cycle)")
	m := fs.Int("m", 500, "edge count (noise edges for planted)")
	maxw := fs.Int64("maxw", 1000, "maximum edge weight")
	seed := fs.Int64("seed", 1, "random seed")
	binary := fs.String("binary", "", "write a binary stream file to this path instead of text on stdout")
	order := fs.String("order", "arrival", "edge order for -binary: arrival|random")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *order != "arrival" && *order != "random" {
		return fmt.Errorf("unknown order %q (want arrival or random)", *order)
	}
	rng := rand.New(rand.NewSource(*seed))

	if *family == "stream" {
		if *binary == "" {
			return fmt.Errorf("family stream generates out of core and requires -binary")
		}
		return writeBinary(*binary, *n, *order, graph.RandomEdgeSource(*n, *m, graph.Weight(*maxw), rng), rng)
	}

	var inst graph.Instance
	switch *family {
	case "random":
		inst = graph.RandomGraph(*n, *m, *maxw, rng)
	case "planted":
		inst = graph.PlantedMatching(*n, *m, *maxw/2, *maxw, rng)
	case "bipartite":
		inst = graph.RandomBipartite(*n/2, *n-*n/2, *m, *maxw, rng)
	case "cycle":
		inst = graph.WeightedCycle(*n, 3**maxw/4, *maxw)
	case "chain":
		inst = graph.AugmentingChain(*n, *maxw/2, *maxw/2+1, rng)
	case "geometric":
		inst = graph.GeometricWeights(*n, *m, 2, 12, rng)
	default:
		return fmt.Errorf("unknown family %q", *family)
	}
	if *binary != "" {
		return writeBinary(*binary, inst.G.N(), *order, stream.SliceSource(inst.G.Edges()), rng)
	}
	if inst.OptExact {
		fmt.Printf("# optimum %d\n", inst.OptWeight)
	}
	_, err := inst.G.WriteTo(os.Stdout)
	return err
}

// writeBinary lands the generated edges in the stream-file format,
// shuffled in external memory when order is "random".
func writeBinary(path string, n int, order string, src func() (graph.Edge, bool), rng *rand.Rand) error {
	var wrote int
	var err error
	if order == "random" {
		wrote, err = stream.ShuffleToFile(path, n, src, rng, 0)
	} else {
		wrote, err = stream.WriteFile(path, n, src)
	}
	if err != nil {
		return err
	}
	fmt.Printf("# wrote %d edges to %s (%s order)\n", wrote, path, order)
	return nil
}
