package main

import (
	"testing"
)

func TestRunFamilies(t *testing.T) {
	// run writes to os.Stdout; here we only verify flag handling and family
	// dispatch by checking error paths and the full-run happy path per
	// family (output correctness is covered by graph's IO round-trip
	// tests).
	for _, family := range []string{"random", "planted", "bipartite", "cycle", "chain", "geometric"} {
		if err := run([]string{"-family", family, "-n", "10", "-m", "20", "-seed", "1"}); err != nil {
			t.Errorf("family %s: %v", family, err)
		}
	}
}

func TestRunUnknownFamily(t *testing.T) {
	if err := run([]string{"-family", "nope"}); err == nil {
		t.Error("unknown family accepted")
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-n", "notanumber"}); err == nil {
		t.Error("bad flag accepted")
	}
}
