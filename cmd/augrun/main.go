// Command augrun runs one matching algorithm on a graph in the text edge
// format (see cmd/auggen) and prints the matching weight, size, and the
// algorithm's model diagnostics.
//
// Usage:
//
//	auggen -family planted -n 500 -m 3000 | augrun -algo randarrival
//	augrun -algo approx -input g.txt -granularity 0.0625
//
// Algorithms: greedy, localratio, blossom, exact, randarrival,
// randarrival-unweighted, approx, streaming, mpc.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "augrun:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("augrun", flag.ContinueOnError)
	algo := fs.String("algo", "approx", "algorithm to run")
	input := fs.String("input", "-", "graph file in text edge format ('-' = stdin)")
	seed := fs.Int64("seed", 1, "random seed")
	granularity := fs.Float64("granularity", 0, "layered-graph granularity (0 = default 1/8)")
	amortize := fs.Bool("amortize", false, "approx: use the cross-round amortised pipeline (bit-identical)")
	warm := fs.Bool("warm", false, "approx: warm-start Hopcroft-Karp from the previous pair")
	workers := fs.Int("workers", 0, "approx: per-class worker pool size (0 = sequential)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var r io.Reader = stdin
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	g, err := repro.ReadGraph(r)
	if err != nil {
		return err
	}

	var m *repro.Matching
	switch *algo {
	case "greedy":
		m = repro.GreedyWeighted(g)
	case "localratio":
		m = repro.LocalRatio(g)
	case "blossom":
		m = repro.MaxCardinality(g)
	case "exact":
		m, err = repro.MaxWeightExact(g)
		if err != nil {
			return err
		}
	case "randarrival":
		res := repro.RandomArrivalWeighted(g, repro.RandomArrivalOptions{Seed: *seed})
		m = res.M
		fmt.Fprintf(stdout, "branch=%s |S|=%d |T|=%d\n", res.Branch, res.StackSize, res.TSize)
	case "randarrival-unweighted":
		m = repro.RandomArrivalUnweighted(g, *seed)
	case "approx":
		res, err := repro.ApproxWeighted(g, nil, repro.ApproxOptions{
			Seed: *seed, Granularity: *granularity,
			Amortize: *amortize, WarmStart: *warm, Workers: *workers,
		})
		if err != nil {
			return err
		}
		m = res.M
		fmt.Fprintf(stdout, "rounds=%d solver-calls=%d augmentations=%d\n",
			res.Stats.Rounds, res.Stats.SolverCalls, res.Stats.AppliedAugmentations)
		if *amortize {
			fmt.Fprintf(stdout, "pairs=%d enum-pruned=%d probe-skips=%d cache-hits=%d hk-phases=%d\n",
				res.Stats.LayeredBuilt, res.Stats.EnumPruned, res.Stats.ProbeSkips,
				res.Stats.CacheHits, res.Stats.SolverPhases)
			fmt.Fprintf(stdout, "delta-builds=%d delta-layers-reused=%d classes-skipped-dirty=%d\n",
				res.Stats.DeltaBuilds, res.Stats.DeltaLayersReused, res.Stats.ClassesSkippedDirty)
		}
	case "streaming":
		res, err := repro.ApproxWeightedStreaming(g, nil, repro.ApproxOptions{Seed: *seed, Granularity: *granularity})
		if err != nil {
			return err
		}
		m = res.M
		fmt.Fprintf(stdout, "passes=%d max-passes/round=%d subroutine-passes=%d peak-words=%d\n",
			res.TotalPasses, res.MaxRoundPasses, res.SubroutinePasses, res.PeakStored)
	case "mpc":
		res, err := repro.ApproxWeightedMPC(g, nil, repro.ApproxOptions{Seed: *seed, Granularity: *granularity})
		if err != nil {
			return err
		}
		m = res.M
		fmt.Fprintf(stdout, "rounds=%d max-rounds/round=%d U_M=%d peak-load=%d\n",
			res.TotalRounds, res.MaxRoundRounds, res.SubroutineRounds, res.PeakLoad)
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}
	if err := m.Validate(); err != nil {
		return fmt.Errorf("algorithm produced invalid matching: %w", err)
	}
	fmt.Fprintf(stdout, "weight=%d size=%d n=%d m=%d\n", m.Weight(), m.Size(), g.N(), g.M())
	return nil
}
