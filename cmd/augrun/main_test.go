package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
)

func writeTestGraph(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	content := "p 4 3\n0 1 4\n1 2 5\n2 3 4\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAlgorithms(t *testing.T) {
	path := writeTestGraph(t)
	algos := []struct {
		name string
		want string // substring of the final line
	}{
		{"greedy", "weight=5"},
		{"localratio", "weight="},
		{"exact", "weight=8"},
		{"blossom", "size=2"},
		{"randarrival", "weight="},
		{"randarrival-unweighted", "size="},
		{"approx", "weight=8"},
		{"streaming", "weight=8"},
		{"mpc", "weight=8"},
	}
	for _, tc := range algos {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			err := run([]string{"-algo", tc.name, "-input", path}, nil, &out)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if !strings.Contains(out.String(), tc.want) {
				t.Errorf("output %q missing %q", out.String(), tc.want)
			}
		})
	}
}

func TestRunStdin(t *testing.T) {
	var out bytes.Buffer
	in := strings.NewReader("p 2 1\n0 1 7\n")
	if err := run([]string{"-algo", "greedy"}, in, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "weight=7") {
		t.Errorf("output: %q", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	path := writeTestGraph(t)
	if err := run([]string{"-algo", "nope", "-input", path}, nil, &bytes.Buffer{}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := run([]string{"-input", "/does/not/exist"}, nil, &bytes.Buffer{}); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{"-algo", "greedy"}, strings.NewReader("garbage"), &bytes.Buffer{}); err == nil {
		t.Error("bad input accepted")
	}
}

// TestStatsPrintedExactlyOnce is the reflection audit of the counter
// ledger: every core.Stats field — enumerated from the struct itself, so a
// future field cannot be forgotten — must appear as `name=value` exactly
// once in the text output of each reduction-driven algorithm.
func TestStatsPrintedExactlyOnce(t *testing.T) {
	path := writeTestGraph(t)
	fields := core.Stats{}.Fields()
	if len(fields) < 10 {
		t.Fatalf("suspiciously few Stats fields (%d) — reflection broken?", len(fields))
	}
	for _, algo := range []string{"approx", "streaming", "mpc"} {
		for _, extra := range [][]string{nil, {"-amortize"}} {
			if algo != "approx" && extra != nil {
				continue
			}
			args := append([]string{"-algo", algo, "-input", path}, extra...)
			var out bytes.Buffer
			if err := run(args, nil, &out); err != nil {
				t.Fatalf("%s: %v", algo, err)
			}
			for _, f := range fields {
				n := 0
				for _, tok := range strings.Fields(out.String()) {
					if strings.HasPrefix(tok, f.Name+"=") {
						n++
					}
				}
				if n != 1 {
					t.Errorf("%s %v: counter %q printed %d times, want exactly once\noutput:\n%s",
						algo, extra, f.Name, n, out.String())
				}
			}
		}
	}
}

// TestJSONRoundTripsStats pins the -json contract: the "stats" member
// unmarshals back into a core.Stats carrying every field — the JSON
// object's key set must equal the struct's field set, and re-marshalling
// must reproduce it byte-for-byte.
func TestJSONRoundTripsStats(t *testing.T) {
	path := writeTestGraph(t)
	var out bytes.Buffer
	if err := run([]string{"-algo", "approx", "-amortize", "-json", "-input", path}, nil, &out); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Weight int64           `json:"weight"`
		Stats  json.RawMessage `json:"stats"`
	}
	if err := json.Unmarshal(out.Bytes(), &parsed); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if parsed.Weight == 0 {
		t.Fatal("weight missing from JSON output")
	}
	var asMap map[string]json.RawMessage
	if err := json.Unmarshal(parsed.Stats, &asMap); err != nil {
		t.Fatal(err)
	}
	st := reflect.TypeOf(core.Stats{})
	if len(asMap) != st.NumField() {
		t.Fatalf("stats JSON has %d keys, struct has %d fields", len(asMap), st.NumField())
	}
	for i := 0; i < st.NumField(); i++ {
		if _, ok := asMap[st.Field(i).Name]; !ok {
			t.Errorf("stats JSON missing field %q", st.Field(i).Name)
		}
	}
	var rt core.Stats
	if err := json.Unmarshal(parsed.Stats, &rt); err != nil {
		t.Fatal(err)
	}
	again, err := json.Marshal(rt)
	if err != nil {
		t.Fatal(err)
	}
	var norm bytes.Buffer
	if err := json.Compact(&norm, parsed.Stats); err != nil {
		t.Fatal(err)
	}
	if norm.String() != string(again) {
		t.Fatalf("stats did not round-trip:\n got %s\nwant %s", again, norm.String())
	}
}
