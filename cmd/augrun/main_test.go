package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTestGraph(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	content := "p 4 3\n0 1 4\n1 2 5\n2 3 4\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAlgorithms(t *testing.T) {
	path := writeTestGraph(t)
	algos := []struct {
		name string
		want string // substring of the final line
	}{
		{"greedy", "weight=5"},
		{"localratio", "weight="},
		{"exact", "weight=8"},
		{"blossom", "size=2"},
		{"randarrival", "weight="},
		{"randarrival-unweighted", "size="},
		{"approx", "weight=8"},
		{"streaming", "weight=8"},
		{"mpc", "weight=8"},
	}
	for _, tc := range algos {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			err := run([]string{"-algo", tc.name, "-input", path}, nil, &out)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if !strings.Contains(out.String(), tc.want) {
				t.Errorf("output %q missing %q", out.String(), tc.want)
			}
		})
	}
}

func TestRunStdin(t *testing.T) {
	var out bytes.Buffer
	in := strings.NewReader("p 2 1\n0 1 7\n")
	if err := run([]string{"-algo", "greedy"}, in, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "weight=7") {
		t.Errorf("output: %q", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	path := writeTestGraph(t)
	if err := run([]string{"-algo", "nope", "-input", path}, nil, &bytes.Buffer{}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := run([]string{"-input", "/does/not/exist"}, nil, &bytes.Buffer{}); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{"-algo", "greedy"}, strings.NewReader("garbage"), &bytes.Buffer{}); err == nil {
		t.Error("bad input accepted")
	}
}
