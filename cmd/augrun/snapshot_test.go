package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// snapshotJSON is the slice of the -json output the snapshot tests consume.
type snapshotJSON struct {
	Weight int64 `json:"weight"`
	Model  struct {
		Resumed      bool   `json:"snapshot-resumed"`
		ResumedRound int    `json:"snapshot-resumed-round"`
		ColdStart    string `json:"snapshot-cold-start"`
	} `json:"model"`
}

func runSnapshotJSON(t *testing.T, args ...string) snapshotJSON {
	t.Helper()
	var out bytes.Buffer
	if err := run(append(args, "-json"), nil, &out); err != nil {
		t.Fatalf("run %v: %v", args, err)
	}
	var parsed snapshotJSON
	if err := json.Unmarshal(out.Bytes(), &parsed); err != nil {
		t.Fatalf("output not JSON: %v\n%s", err, out.String())
	}
	return parsed
}

// TestSnapshotResumeAndCorruptDegrade covers the -snapshot/-resume CLI
// surface end to end: a run persists a checkpoint, a -resume run picks it
// up warm with the identical result, and a corrupted checkpoint degrades
// the resume to a cold start — detected, reported, never an error, and
// still the identical result (cold and warm runs are bit-identical by the
// snapshot design).
func TestSnapshotResumeAndCorruptDegrade(t *testing.T) {
	graphPath := writeTestGraph(t)
	snap := filepath.Join(t.TempDir(), "run.snap")
	base := []string{"-algo", "approx", "-amortize", "-input", graphPath, "-snapshot", snap}

	first := runSnapshotJSON(t, base...)
	if first.Model.Resumed {
		t.Fatal("first run claims to have resumed")
	}
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("no snapshot persisted: %v", err)
	}

	resumed := runSnapshotJSON(t, append(base, "-resume")...)
	if !resumed.Model.Resumed {
		t.Fatalf("second run did not resume: %+v", resumed.Model)
	}
	if resumed.Model.ResumedRound < 1 {
		t.Errorf("resumed-round = %d, want >= 1", resumed.Model.ResumedRound)
	}
	if resumed.Model.ColdStart != "" {
		t.Errorf("resumed run reports cold start: %q", resumed.Model.ColdStart)
	}
	if resumed.Weight != first.Weight {
		t.Errorf("resumed weight %d != original %d", resumed.Weight, first.Weight)
	}

	// Corrupt one byte of the checkpoint; the resume must degrade to cold
	// — reported via the counters, not an error — and still converge to
	// the same result.
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x04
	if err := os.WriteFile(snap, data, 0o644); err != nil {
		t.Fatal(err)
	}
	cold := runSnapshotJSON(t, append(base, "-resume")...)
	if cold.Model.Resumed {
		t.Fatal("corrupted snapshot was resumed")
	}
	if cold.Model.ColdStart == "" {
		t.Fatal("cold start not reported for corrupted snapshot")
	}
	if !strings.Contains(cold.Model.ColdStart, "checksum") {
		t.Errorf("cold-start reason %q does not name the checksum", cold.Model.ColdStart)
	}
	if cold.Weight != first.Weight {
		t.Errorf("cold weight %d != original %d", cold.Weight, first.Weight)
	}

	// The degraded run rewrote a healthy checkpoint: resuming again works.
	again := runSnapshotJSON(t, append(base, "-resume")...)
	if !again.Model.Resumed {
		t.Errorf("snapshot not repaired by the cold run: %+v", again.Model)
	}

	// A missing snapshot likewise degrades to cold rather than erroring.
	if err := os.Remove(snap); err != nil {
		t.Fatal(err)
	}
	missing := runSnapshotJSON(t, append(base, "-resume")...)
	if missing.Model.Resumed || missing.Model.ColdStart == "" {
		t.Errorf("missing snapshot: %+v", missing.Model)
	}
}

// TestSnapshotForeignGraphDegradesToCold: a checkpoint resumed against a
// different input graph is refused and the run starts cold on the new
// graph.
func TestSnapshotForeignGraphDegradesToCold(t *testing.T) {
	graphPath := writeTestGraph(t)
	otherPath := filepath.Join(t.TempDir(), "other.txt")
	if err := os.WriteFile(otherPath, []byte("p 4 3\n0 1 9\n1 2 5\n2 3 4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(t.TempDir(), "run.snap")

	runSnapshotJSON(t, "-algo", "approx", "-input", graphPath, "-snapshot", snap)
	foreign := runSnapshotJSON(t, "-algo", "approx", "-input", otherPath, "-snapshot", snap, "-resume")
	if foreign.Model.Resumed {
		t.Fatal("checkpoint resumed against a different graph")
	}
	if !strings.Contains(foreign.Model.ColdStart, "different graph") {
		t.Errorf("cold-start reason %q does not name the graph mismatch", foreign.Model.ColdStart)
	}
}

// TestSnapshotFlagValidation pins the CLI contract around the new flags.
func TestSnapshotFlagValidation(t *testing.T) {
	graphPath := writeTestGraph(t)
	if err := run([]string{"-algo", "approx", "-input", graphPath, "-resume"}, nil, &bytes.Buffer{}); err == nil {
		t.Error("-resume without -snapshot accepted")
	}
	if err := run([]string{"-algo", "greedy", "-input", graphPath, "-snapshot", "x.snap"}, nil, &bytes.Buffer{}); err == nil {
		t.Error("-snapshot with a non-approx algorithm accepted")
	}
}
