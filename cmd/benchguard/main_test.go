package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runWithInput(t *testing.T, input string, args ...string) error {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "bench")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(input); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	return run(args, f)
}

const sample = `goos: linux
BenchmarkSolve              	      40	  28350723 ns/op	      8588 final-weight
BenchmarkSolveAmortized-4   	     121	   9811856 ns/op	      8588 final-weight
PASS
`

func TestSpeedupPasses(t *testing.T) {
	if err := runWithInput(t, sample,
		"-speedup", "BenchmarkSolveAmortized/BenchmarkSolve>=1.2"); err != nil {
		t.Fatal(err)
	}
}

func TestSpeedupFails(t *testing.T) {
	err := runWithInput(t, sample,
		"-speedup", "BenchmarkSolveAmortized/BenchmarkSolve>=5.0")
	if err == nil || !strings.Contains(err.Error(), "faster") {
		t.Fatalf("want speedup failure, got %v", err)
	}
}

func TestMissingBenchmark(t *testing.T) {
	if err := runWithInput(t, sample, "-speedup", "BenchmarkNope/BenchmarkSolve>=1"); err == nil {
		t.Fatal("missing benchmark accepted")
	}
}

func TestBaselineBounds(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	if err := os.WriteFile(base, []byte(`{"benchmarks":[
		{"name":"BenchmarkSolve","after":{"ns_per_op":30000000}},
		{"name":"BenchmarkSolveAmortized","after":{"ns_per_op":10000000}}
	]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runWithInput(t, sample, "-baseline", base, "-slack", "2"); err != nil {
		t.Fatal(err)
	}
	if err := runWithInput(t, sample, "-baseline", base, "-slack", "0.5"); err == nil {
		t.Fatal("regression past baseline slack accepted")
	}
}

func TestNoInput(t *testing.T) {
	if err := runWithInput(t, "PASS\n"); err == nil {
		t.Fatal("empty bench output accepted")
	}
}
