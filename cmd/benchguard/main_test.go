package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runWithInput(t *testing.T, input string, args ...string) error {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "bench")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(input); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	return run(args, f)
}

const sample = `goos: linux
BenchmarkSolve              	      40	  28350723 ns/op	      8588 final-weight
BenchmarkSolveAmortized-4   	     121	   9811856 ns/op	      8588 final-weight
PASS
`

const sampleMem = `goos: linux
BenchmarkSolve              	      40	  28350723 ns/op	      8588 final-weight	14608856 B/op	   63498 allocs/op
BenchmarkSolveAmortized-4   	     121	   9811856 ns/op	      8588 final-weight	 3052682 B/op	   19764 allocs/op
PASS
`

func TestSpeedupPasses(t *testing.T) {
	if err := runWithInput(t, sample,
		"-speedup", "BenchmarkSolveAmortized/BenchmarkSolve>=1.2"); err != nil {
		t.Fatal(err)
	}
}

func TestSpeedupFails(t *testing.T) {
	err := runWithInput(t, sample,
		"-speedup", "BenchmarkSolveAmortized/BenchmarkSolve>=5.0")
	if err == nil || !strings.Contains(err.Error(), "faster") {
		t.Fatalf("want speedup failure, got %v", err)
	}
}

func TestMissingBenchmark(t *testing.T) {
	if err := runWithInput(t, sample, "-speedup", "BenchmarkNope/BenchmarkSolve>=1"); err == nil {
		t.Fatal("missing benchmark accepted")
	}
}

// TestBaselineBounds pins the PR 9 gate policy: absolute baseline bounds
// are warning-severity — a breach lands in the -out report with ok=false
// but never fails the run, because absolute ns/op drifts 10–25% across
// container bins with no code change (docs/OPERATIONS.md). Only same-run
// speedup ratios gate.
func TestBaselineBounds(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	if err := os.WriteFile(base, []byte(`{"benchmarks":[
		{"name":"BenchmarkSolve","after":{"ns_per_op":30000000}},
		{"name":"BenchmarkSolveAmortized","after":{"ns_per_op":10000000}}
	]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runWithInput(t, sample, "-baseline", base, "-slack", "2"); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "result.json")
	if err := runWithInput(t, sample, "-baseline", base, "-slack", "0.5", "-out", out); err != nil {
		t.Fatalf("baseline breach failed the run (want warning severity): %v", err)
	}
	rep := readReport(t, out)
	if !rep.Pass {
		t.Error("warning-only breaches marked the run failed")
	}
	breached := 0
	for _, c := range rep.Checks {
		if c.Kind != "time-baseline" {
			continue
		}
		if c.Severity != "warn" {
			t.Errorf("time-baseline severity %q, want warn", c.Severity)
		}
		if !c.OK {
			breached++
		}
	}
	if breached == 0 {
		t.Error("breached baseline left no ok=false warning in the report")
	}
}

type testReport struct {
	Benchmarks map[string]struct {
		NsPerOp     float64 `json:"ns_per_op"`
		AllocsPerOp int64   `json:"allocs_per_op"`
	} `json:"benchmarks"`
	Checks []struct {
		Kind     string `json:"kind"`
		Severity string `json:"severity"`
		OK       bool   `json:"ok"`
	} `json:"checks"`
	Pass bool `json:"pass"`
}

func readReport(t *testing.T, path string) testReport {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep testReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("bad report JSON: %v", err)
	}
	return rep
}

func TestNoInput(t *testing.T) {
	if err := runWithInput(t, "PASS\n"); err == nil {
		t.Fatal("empty bench output accepted")
	}
}

func writeBaseline(t *testing.T, body string) string {
	t.Helper()
	base := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(base, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return base
}

func TestAllocsBounds(t *testing.T) {
	base := writeBaseline(t, `{"benchmarks":[
		{"name":"BenchmarkSolve","after":{"ns_per_op":30000000,"allocs_per_op":63000}},
		{"name":"BenchmarkSolveAmortized","after":{"ns_per_op":10000000,"allocs_per_op":19000}}
	]}`)
	if err := runWithInput(t, sampleMem, "-baseline", base, "-allocslack", "1.5"); err != nil {
		t.Fatal(err)
	}
	// An allocs breach is warning-severity like the time bound: recorded,
	// never an exit failure.
	out := filepath.Join(t.TempDir(), "result.json")
	if err := runWithInput(t, sampleMem, "-baseline", base, "-allocslack", "1.0", "-out", out); err != nil {
		t.Fatalf("allocs breach failed the run (want warning severity): %v", err)
	}
	rep := readReport(t, out)
	breached := 0
	for _, c := range rep.Checks {
		if c.Kind == "allocs-baseline" && !c.OK {
			if c.Severity != "warn" {
				t.Errorf("allocs-baseline severity %q, want warn", c.Severity)
			}
			breached++
		}
	}
	if breached == 0 {
		t.Error("breached allocs bound left no ok=false warning in the report")
	}
	// Without -benchmem input the allocs check must not fire (no data).
	if err := runWithInput(t, sample, "-baseline", base, "-allocslack", "1.0"); err != nil {
		t.Fatalf("allocs check fired without allocation data: %v", err)
	}
}

func TestOutReport(t *testing.T) {
	base := writeBaseline(t, `{"benchmarks":[
		{"name":"BenchmarkSolve","after":{"ns_per_op":30000000,"allocs_per_op":63000}}
	]}`)
	out := filepath.Join(t.TempDir(), "result.json")
	if err := runWithInput(t, sampleMem,
		"-speedup", "BenchmarkSolveAmortized/BenchmarkSolve>=1.2",
		"-baseline", base, "-allocslack", "1.5", "-out", out); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Benchmarks map[string]struct {
			NsPerOp     float64 `json:"ns_per_op"`
			AllocsPerOp int64   `json:"allocs_per_op"`
		} `json:"benchmarks"`
		Checks []struct {
			Kind string `json:"kind"`
			OK   bool   `json:"ok"`
		} `json:"checks"`
		Pass bool `json:"pass"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("bad report JSON: %v", err)
	}
	if !rep.Pass {
		t.Error("report marks passing run as failed")
	}
	if m := rep.Benchmarks["BenchmarkSolveAmortized"]; m.AllocsPerOp != 19764 {
		t.Errorf("allocs_per_op = %d, want 19764", m.AllocsPerOp)
	}
	kinds := map[string]bool{}
	for _, c := range rep.Checks {
		kinds[c.Kind] = true
		if !c.OK {
			t.Errorf("check %+v failed in passing run", c)
		}
	}
	for _, k := range []string{"speedup", "time-baseline", "allocs-baseline"} {
		if !kinds[k] {
			t.Errorf("report missing %s check", k)
		}
	}
	// A failing run still writes the report, with pass=false.
	if err := runWithInput(t, sampleMem,
		"-speedup", "BenchmarkSolveAmortized/BenchmarkSolve>=9.9", "-out", out); err == nil {
		t.Fatal("want speedup failure")
	}
	raw, err = os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Error("failing run reported pass=true")
	}
}
