// Command benchguard turns `go test -bench` output into a pass/fail gate
// for CI. It enforces two kinds of bounds:
//
//   - relative: -speedup "BenchmarkSolveAmortized/BenchmarkSolve>=1.2"
//     requires the first benchmark to be at least 1.2× faster than the
//     second within the same run. Ratios compare two measurements from one
//     machine, so they are immune to runner-speed variance — this is the
//     primary regression gate for the amortised pipeline.
//   - absolute: -baseline BENCH_pr2.json -slack 3 requires every benchmark
//     present in both the run and the baseline file to stay within slack ×
//     its committed ns/op. The generous default slack only catches
//     catastrophic regressions that a ratio cannot see (both paths slowing
//     down together); CI machines are not the ledger machine.
//
// Usage:
//
//	go test -run '^$' -bench 'BenchmarkSolve' . | benchguard \
//	    -speedup 'BenchmarkSolveAmortized/BenchmarkSolve>=1.2' \
//	    -baseline BENCH_pr2.json -slack 3
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdin); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(1)
	}
}

// benchLine matches `BenchmarkName[-procs] <iters> <ns> ns/op ...`.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

func parseBench(r *os.File) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // echo so the CI log keeps the raw numbers
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("line %q: %w", line, err)
		}
		out[m[1]] = ns
	}
	return out, sc.Err()
}

// baselineFile mirrors the BENCH_*.json ledger shape: a benchmarks array
// whose entries carry a name and an `after` measurement.
type baselineFile struct {
	Benchmarks []struct {
		Name  string `json:"name"`
		After *struct {
			NsPerOp float64 `json:"ns_per_op"`
		} `json:"after"`
	} `json:"benchmarks"`
}

func run(args []string, stdin *os.File) error {
	fs := flag.NewFlagSet("benchguard", flag.ContinueOnError)
	speedups := fs.String("speedup", "", "comma-separated relative bounds, each \"A/B>=ratio\"")
	baseline := fs.String("baseline", "", "BENCH_*.json ledger file for absolute bounds")
	slack := fs.Float64("slack", 3.0, "allowed multiple of the baseline ns/op")
	if err := fs.Parse(args); err != nil {
		return err
	}

	got, err := parseBench(stdin)
	if err != nil {
		return err
	}
	if len(got) == 0 {
		return fmt.Errorf("no benchmark lines on stdin")
	}

	var failures []string
	for _, spec := range strings.Split(*speedups, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		var fast, slow string
		var ratio float64
		parts := strings.SplitN(spec, ">=", 2)
		if len(parts) != 2 {
			return fmt.Errorf("bad -speedup spec %q (want A/B>=ratio)", spec)
		}
		names := strings.SplitN(parts[0], "/", 2)
		if len(names) != 2 {
			return fmt.Errorf("bad -speedup spec %q (want A/B>=ratio)", spec)
		}
		fast, slow = names[0], names[1]
		if ratio, err = strconv.ParseFloat(parts[1], 64); err != nil {
			return fmt.Errorf("bad ratio in %q: %w", spec, err)
		}
		fastNs, ok1 := got[fast]
		slowNs, ok2 := got[slow]
		if !ok1 || !ok2 {
			return fmt.Errorf("speedup %q: missing benchmark (have %v)", spec, keys(got))
		}
		measured := slowNs / fastNs
		if measured < ratio {
			failures = append(failures, fmt.Sprintf(
				"%s is only %.2fx faster than %s, want >= %.2fx", fast, measured, slow, ratio))
		} else {
			fmt.Printf("benchguard: %s %.2fx faster than %s (>= %.2fx) ok\n", fast, measured, slow, ratio)
		}
	}

	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			return err
		}
		var base baselineFile
		if err := json.Unmarshal(raw, &base); err != nil {
			return fmt.Errorf("%s: %w", *baseline, err)
		}
		for _, b := range base.Benchmarks {
			if b.After == nil || b.After.NsPerOp <= 0 {
				continue
			}
			ns, ok := got[b.Name]
			if !ok {
				continue
			}
			if limit := b.After.NsPerOp * *slack; ns > limit {
				failures = append(failures, fmt.Sprintf(
					"%s: %.0f ns/op exceeds %.1fx baseline %.0f", b.Name, ns, *slack, b.After.NsPerOp))
			} else {
				fmt.Printf("benchguard: %s %.0f ns/op within %.1fx of baseline %.0f ok\n",
					b.Name, ns, *slack, b.After.NsPerOp)
			}
		}
	}

	if len(failures) > 0 {
		return fmt.Errorf("%s", strings.Join(failures, "; "))
	}
	return nil
}

func keys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
