// Command benchguard turns `go test -bench` output into a pass/fail gate
// for CI. It evaluates three kinds of bounds at two severities:
//
//   - relative (GATE): -speedup "BenchmarkSolveAmortized/BenchmarkSolve>=1.2"
//     requires the first benchmark to be at least 1.2× faster than the
//     second within the same run. Ratios compare two measurements from one
//     machine, so they are immune to runner-speed variance — same-run A/B
//     ratios are the only checks that fail CI.
//   - absolute time (WARNING): -baseline BENCH_pr2.json -slack 3 compares
//     every benchmark present in both the run and the baseline file
//     against slack × its committed ns/op. Absolute bounds proved to flake
//     across container bins (the ledger documents 10–25% drift between PR
//     windows with no code change), so a breach is recorded in the -out
//     report and printed as a warning, never an exit failure — CI machines
//     are not the ledger machine. See docs/OPERATIONS.md, "Benchmark gate
//     policy".
//   - absolute allocations (WARNING): -allocslack 1.5 compares allocs/op
//     against allocslack × the committed allocs_per_op of the same
//     baseline (needs `go test -benchmem`). Deterministic in principle,
//     but tied to the same drifting bins, so warning-severity too.
//
// With -out FILE the parsed measurements and every check's verdict —
// including the warning-severity breaches that did not fail the run — are
// written as JSON, the per-run perf artifact CI uploads so that regressions
// can be traced across runs without rerunning anything.
//
// Usage:
//
//	go test -run '^$' -bench 'BenchmarkSolve' -benchmem . | benchguard \
//	    -speedup 'BenchmarkSolveAmortized/BenchmarkSolve>=1.2' \
//	    -baseline BENCH_pr2.json -slack 3 -allocslack 1.5 -out result.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdin); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(1)
	}
}

// benchLine matches `BenchmarkName[-procs] <iters> <ns> ns/op ...`; the
// allocs group is present when the run used -benchmem.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:.*?\s([0-9]+) allocs/op)?`)

// measurement is one benchmark's parsed numbers. AllocsPerOp is -1 when the
// run did not report allocations (no -benchmem); a real 0 means an
// allocation-free benchmark, so the field is always emitted.
type measurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

func parseBench(r *os.File) (map[string]measurement, error) {
	out := make(map[string]measurement)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // echo so the CI log keeps the raw numbers
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("line %q: %w", line, err)
		}
		mm := measurement{NsPerOp: ns, AllocsPerOp: -1}
		if m[3] != "" {
			if mm.AllocsPerOp, err = strconv.ParseInt(m[3], 10, 64); err != nil {
				return nil, fmt.Errorf("line %q: %w", line, err)
			}
		}
		out[m[1]] = mm
	}
	return out, sc.Err()
}

// baselineFile mirrors the BENCH_*.json ledger shape: a benchmarks array
// whose entries carry a name and an `after` measurement.
type baselineFile struct {
	Benchmarks []struct {
		Name  string `json:"name"`
		After *struct {
			NsPerOp     float64 `json:"ns_per_op"`
			AllocsPerOp int64   `json:"allocs_per_op"`
		} `json:"after"`
	} `json:"benchmarks"`
}

// check is one evaluated bound's verdict, as emitted into the -out report.
// Severity "gate" fails the run on !OK; "warn" only surfaces in the report
// and the log (the absolute baseline bounds, which drift with the runner's
// bin — see the package comment).
type check struct {
	Kind     string  `json:"kind"`     // "speedup", "time-baseline", "allocs-baseline"
	Severity string  `json:"severity"` // "gate" or "warn"
	Spec     string  `json:"spec"`
	Measured float64 `json:"measured"`
	Limit    float64 `json:"limit"`
	OK       bool    `json:"ok"`
}

type report struct {
	Benchmarks map[string]measurement `json:"benchmarks"`
	Checks     []check                `json:"checks"`
	Pass       bool                   `json:"pass"`
}

func run(args []string, stdin *os.File) error {
	fs := flag.NewFlagSet("benchguard", flag.ContinueOnError)
	speedups := fs.String("speedup", "", "comma-separated relative bounds, each \"A/B>=ratio\"")
	baseline := fs.String("baseline", "", "BENCH_*.json ledger file for absolute bounds")
	slack := fs.Float64("slack", 3.0, "allowed multiple of the baseline ns/op")
	allocSlack := fs.Float64("allocslack", 0, "allowed multiple of the baseline allocs/op (0 disables; needs -benchmem input)")
	outPath := fs.String("out", "", "write the parsed measurements and check verdicts as JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	got, err := parseBench(stdin)
	if err != nil {
		return err
	}
	if len(got) == 0 {
		return fmt.Errorf("no benchmark lines on stdin")
	}

	rep := report{Benchmarks: got}
	var failures []string
	record := func(c check, failure string) {
		rep.Checks = append(rep.Checks, c)
		if c.OK {
			return
		}
		if c.Severity == "gate" {
			failures = append(failures, failure)
		} else {
			// Warning severity: the breach lands in the report and the log,
			// not the exit code (absolute bounds drift with the runner bin).
			fmt.Printf("benchguard: warning: %s\n", failure)
		}
	}

	for _, spec := range strings.Split(*speedups, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		var fast, slow string
		var ratio float64
		parts := strings.SplitN(spec, ">=", 2)
		if len(parts) != 2 {
			return fmt.Errorf("bad -speedup spec %q (want A/B>=ratio)", spec)
		}
		names := strings.SplitN(parts[0], "/", 2)
		if len(names) != 2 {
			return fmt.Errorf("bad -speedup spec %q (want A/B>=ratio)", spec)
		}
		fast, slow = names[0], names[1]
		if ratio, err = strconv.ParseFloat(parts[1], 64); err != nil {
			return fmt.Errorf("bad ratio in %q: %w", spec, err)
		}
		fastM, ok1 := got[fast]
		slowM, ok2 := got[slow]
		if !ok1 || !ok2 {
			return fmt.Errorf("speedup %q: missing benchmark (have %v)", spec, keys(got))
		}
		measured := slowM.NsPerOp / fastM.NsPerOp
		ok := measured >= ratio
		record(check{Kind: "speedup", Severity: "gate", Spec: spec, Measured: measured, Limit: ratio, OK: ok},
			fmt.Sprintf("%s is only %.2fx faster than %s, want >= %.2fx", fast, measured, slow, ratio))
		if ok {
			fmt.Printf("benchguard: %s %.2fx faster than %s (>= %.2fx) ok\n", fast, measured, slow, ratio)
		}
	}

	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			return err
		}
		var base baselineFile
		if err := json.Unmarshal(raw, &base); err != nil {
			return fmt.Errorf("%s: %w", *baseline, err)
		}
		for _, b := range base.Benchmarks {
			if b.After == nil {
				continue
			}
			m, ok := got[b.Name]
			if !ok {
				continue
			}
			if b.After.NsPerOp > 0 {
				limit := b.After.NsPerOp * *slack
				ok := m.NsPerOp <= limit
				record(check{Kind: "time-baseline", Severity: "warn", Spec: b.Name, Measured: m.NsPerOp, Limit: limit, OK: ok},
					fmt.Sprintf("%s: %.0f ns/op exceeds %.1fx baseline %.0f", b.Name, m.NsPerOp, *slack, b.After.NsPerOp))
				if ok {
					fmt.Printf("benchguard: %s %.0f ns/op within %.1fx of baseline %.0f ok\n",
						b.Name, m.NsPerOp, *slack, b.After.NsPerOp)
				}
			}
			if *allocSlack > 0 && b.After.AllocsPerOp > 0 && m.AllocsPerOp >= 0 {
				limit := float64(b.After.AllocsPerOp) * *allocSlack
				ok := float64(m.AllocsPerOp) <= limit
				record(check{Kind: "allocs-baseline", Severity: "warn", Spec: b.Name, Measured: float64(m.AllocsPerOp), Limit: limit, OK: ok},
					fmt.Sprintf("%s: %d allocs/op exceeds %.1fx baseline %d", b.Name, m.AllocsPerOp, *allocSlack, b.After.AllocsPerOp))
				if ok {
					fmt.Printf("benchguard: %s %d allocs/op within %.1fx of baseline %d ok\n",
						b.Name, m.AllocsPerOp, *allocSlack, b.After.AllocsPerOp)
				}
			}
		}
	}

	rep.Pass = len(failures) == 0
	if *outPath != "" {
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		raw = append(raw, '\n')
		if err := os.WriteFile(*outPath, raw, 0o644); err != nil {
			return err
		}
	}

	if len(failures) > 0 {
		return fmt.Errorf("%s", strings.Join(failures, "; "))
	}
	return nil
}

func keys(m map[string]measurement) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
