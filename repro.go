// Package repro is a from-scratch Go reproduction of
// "Weighted Matchings via Unweighted Augmentations"
// (Gamlath, Kale, Mitrović, Svensson — PODC 2019, arXiv:1811.02760).
//
// It exposes the paper's two main algorithmic results behind a small
// facade:
//
//   - RandomArrivalWeighted: the (1/2+c)-approximation single-pass
//     semi-streaming algorithm for maximum weighted matching under random
//     edge arrivals (Theorem 1.1, Algorithm 2), together with
//     RandomArrivalUnweighted (Theorem 3.4).
//
//   - ApproxWeighted / ApproxWeightedStreaming / ApproxWeightedMPC: the
//     (1−ε)-approximation for weighted matching obtained by reducing to
//     unweighted bipartite matching through layered graphs (Theorem 1.2,
//     Section 4), offline and in the two computation models with pass and
//     round accounting.
//
// Baselines (greedy, local-ratio, Hopcroft–Karp, blossom, exact DP) and
// workload generators with planted optima are exported for evaluation.
// See DESIGN.md for the architecture and EXPERIMENTS.md for measured
// results against the paper's claims.
package repro

import (
	"errors"
	"io"
	"math/rand"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/layered"
	"repro/internal/localratio"
	"repro/internal/matchutil"
	"repro/internal/randarrival"
	"repro/internal/stream"
)

// Core graph types.
type (
	// Graph is a simple undirected weighted graph on vertices [0, n).
	Graph = graph.Graph
	// Edge is an undirected weighted edge.
	Edge = graph.Edge
	// Matching is a set of vertex-disjoint weighted edges.
	Matching = graph.Matching
	// Weight is the integer edge-weight type.
	Weight = graph.Weight
	// Augmentation is a remove/add modification of a matching.
	Augmentation = graph.Augmentation
	// Instance couples a generated graph with its planted optimum.
	Instance = graph.Instance
)

// NewGraph returns an empty graph on n vertices.
func NewGraph(n int) *Graph { return graph.New(n) }

// GraphFromEdges builds a validated graph from an edge list.
func GraphFromEdges(n int, edges []Edge) (*Graph, error) { return graph.FromEdges(n, edges) }

// ReadGraph parses the text edge format ("p <n> <m>" header then
// "<u> <v> <w>" lines).
func ReadGraph(r io.Reader) (*Graph, error) { return graph.Read(r) }

// NewMatching returns an empty matching over n vertices.
func NewMatching(n int) *Matching { return graph.NewMatching(n) }

// Workload generators (deterministic under the given rng).
var (
	// RandomGraph generates a uniform random simple graph.
	RandomGraph = graph.RandomGraph
	// RandomBipartite generates a random bipartite graph.
	RandomBipartite = graph.RandomBipartite
	// PlantedMatching generates a graph whose optimal matching is known by
	// construction (heavy planted perfect matching plus light noise).
	PlantedMatching = graph.PlantedMatching
	// WeightedCycle generates the paper's alternating-weight cycle family
	// (Section 1.1.2), improvable only through augmenting cycles.
	WeightedCycle = graph.WeightedCycle
	// AugmentingChain generates the hard-for-greedy chain of length-3
	// segments.
	AugmentingChain = graph.AugmentingChain
)

// Baseline algorithms.

// GreedyWeighted is the offline sorted greedy 1/2-approximation.
func GreedyWeighted(g *Graph) *Matching { return matchutil.GreedyWeighted(g) }

// LocalRatio is the Paz–Schwartzman streaming 1/2-approximation processed
// in the given edge order.
func LocalRatio(g *Graph) *Matching { return localratio.Run(g.N(), g.Edges()) }

// LocalRatioCertified runs LocalRatio and additionally returns a certified
// lower bound on its approximation ratio obtained from the fractional
// vertex-cover dual (Σα upper-bounds the optimum), usable at scales where
// no exact oracle is feasible.
func LocalRatioCertified(g *Graph) (*Matching, float64) {
	return localratio.CertifiedRatio(g.N(), g.Edges())
}

// MaxWeightExact solves maximum weight matching exactly (n ≤ 22; test
// oracle).
func MaxWeightExact(g *Graph) (*Matching, error) { return matchutil.MaxWeightExact(g) }

// MaxCardinality solves maximum cardinality matching exactly on general
// graphs (Edmonds' blossom algorithm).
func MaxCardinality(g *Graph) *Matching { return matchutil.MaxCardinality(g) }

// RandomArrivalOptions configures the Theorem 1.1 algorithm.
type RandomArrivalOptions struct {
	// Seed drives both the stream permutation and the algorithm's internal
	// sampling.
	Seed int64
	// PrefixFraction is the local-ratio warm-up fraction p (default 0.05).
	PrefixFraction float64
}

// RandomArrivalResult reports the Theorem 1.1 run.
type RandomArrivalResult struct {
	M *Matching
	// Branch is the winning Algorithm 2 branch ("stack" or "augment").
	Branch string
	// StackSize and TSize are the space diagnostics of Lemma 3.15.
	StackSize, TSize int
}

// RandomArrivalWeighted runs Rand-Arr-Matching (Algorithm 2, Theorem 1.1)
// on a uniformly random permutation of g's edges: a single-pass
// semi-streaming (1/2+c)-approximation for maximum weighted matching.
func RandomArrivalWeighted(g *Graph, opts RandomArrivalOptions) RandomArrivalResult {
	rng := rand.New(rand.NewSource(opts.Seed))
	s := stream.RandomOrder(g, rng)
	res := randarrival.RandArrMatching(g.N(), s, randarrival.WeightedOptions{
		PrefixFraction: opts.PrefixFraction,
		Rng:            rng,
	})
	return RandomArrivalResult{
		M:         res.M,
		Branch:    res.Branch,
		StackSize: res.StackSize,
		TSize:     res.TSize,
	}
}

// RandomArrivalUnweighted runs the Theorem 3.4 one-pass 0.506-approximation
// for unweighted matching on a random permutation of g's edges (weights are
// ignored).
func RandomArrivalUnweighted(g *Graph, seed int64) *Matching {
	rng := rand.New(rand.NewSource(seed))
	s := stream.RandomOrder(g, rng)
	return randarrival.UnweightedRandomArrival(g.N(), s, randarrival.UnweightedOptions{}).M
}

// ApproxOptions configures the Theorem 1.2 reduction drivers.
type ApproxOptions struct {
	// Seed drives the random bipartitions.
	Seed int64
	// Granularity is the τ discretisation g (the paper's ε¹²); smaller is
	// more accurate and slower. Default 1/8.
	Granularity float64
	// MaxLayers bounds augmentation length (the paper's O(1/ε²) layers).
	// Default 5.
	MaxLayers int
	// Delta is the unweighted subroutine's (1−δ) target in the model
	// drivers. Default 0.2.
	Delta float64
	// MaxRounds and Patience bound the improvement loop.
	MaxRounds, Patience int
	// Amortize routes the run through the cross-round amortised pipeline
	// (incremental viability index, probe-guided pair enumeration,
	// cross-class solve cache) — bit-identical results, see
	// core.Options.Amortize.
	Amortize bool
	// WarmStart seeds Hopcroft–Karp from the previous pair's matching
	// (exact but tie-breaks may differ; see core.Options.WarmStart).
	WarmStart bool
	// Workers bounds the per-class worker pool (see core.Options.Workers).
	Workers int
	// DeltaCutover, RepairCutover and CrossRoundCutover tune (or, negative,
	// disable) the amortised path's differential builder, incremental
	// Hopcroft–Karp repair, and cross-round chain — the measurement
	// baselines of E15/E16/E17. CacheGate tunes the cross-class cache's
	// hit-rate gate. All four are bit-identity-preserving at any setting;
	// see the matching core.Options fields.
	DeltaCutover, RepairCutover, CrossRoundCutover, CacheGate int
}

func (o ApproxOptions) coreOptions() core.Options {
	return core.Options{
		Layered: layered.Params{
			Granularity: o.Granularity,
			MaxLayers:   o.MaxLayers,
		},
		Rng:               rand.New(rand.NewSource(o.Seed)),
		MaxRounds:         o.MaxRounds,
		Patience:          o.Patience,
		Amortize:          o.Amortize,
		WarmStart:         o.WarmStart,
		Workers:           o.Workers,
		DeltaCutover:      o.DeltaCutover,
		RepairCutover:     o.RepairCutover,
		CrossRoundCutover: o.CrossRoundCutover,
		CacheGate:         o.CacheGate,
	}
}

// ApproxStats mirrors core.Stats for the facade.
type ApproxStats = core.Stats

// ApproxResult reports an offline reduction run.
type ApproxResult struct {
	M     *Matching
	Stats ApproxStats
}

// ApproxWeighted computes a near-maximum weighted matching with the
// Section 4 reduction, using the exact Hopcroft–Karp subroutine offline.
// The initial matching may be nil (start empty).
func ApproxWeighted(g *Graph, initial *Matching, opts ApproxOptions) (ApproxResult, error) {
	res, err := core.Solve(g, initial, opts.coreOptions())
	return ApproxResult{M: res.M, Stats: res.Stats}, err
}

// SnapshotInfo reports how a snapshotted run started (see
// ApproxWeightedSnapshot): warm from a checkpoint, or cold and why.
type SnapshotInfo struct {
	// Resumed is true when the run picked up from a verified checkpoint;
	// ResumedRound is the round it resumed at.
	Resumed      bool
	ResumedRound int
	// ColdStart explains why a requested resume started cold instead — a
	// missing, truncated, corrupted or version-skewed snapshot, a different
	// graph, or foreign options. Empty when resumed (or never requested).
	ColdStart string
}

// ApproxWeightedSnapshot is ApproxWeighted with crash-resumable state: a
// verified checkpoint is persisted to path after every round (atomically,
// so a crash mid-save keeps the previous one). With resume, a valid
// checkpoint at path continues the run warm — bit-identical to the
// uninterrupted run for every deterministic configuration (see
// core.ResumeSolve) — while any unusable snapshot (missing, truncated,
// bit-flipped, future-versioned, wrong graph, foreign options) degrades to
// a cold start, reported in SnapshotInfo.ColdStart; it is never an error
// and never resumes into wrong state (the container checksum guarantees
// detection). The initial matching is only used on cold starts — a resumed
// run continues from the checkpoint's matching.
func ApproxWeightedSnapshot(g *Graph, initial *Matching, opts ApproxOptions, path string, resume bool) (ApproxResult, SnapshotInfo, error) {
	co := opts.coreOptions()
	co.Rng = nil // Solve/ResumeSolve own the Rng (seed + draw count persist)
	save := func(cp *core.Checkpoint) error { return core.SaveCheckpoint(path, cp) }
	var info SnapshotInfo
	if resume {
		cp, err := core.LoadCheckpoint(path)
		if err == nil && !sameGraph(cp.Graph, g) {
			err = errSnapshotGraph
		}
		if err == nil {
			res, rerr := core.ResumeSolve(cp, co, save)
			if !errors.Is(rerr, core.ErrCheckpointOptions) {
				info.Resumed, info.ResumedRound = true, cp.Round
				return ApproxResult{M: res.M, Stats: res.Stats}, info, rerr
			}
			err = rerr
		}
		info.ColdStart = err.Error()
	}
	res, err := core.SolveCheckpointed(g, initial, co, opts.Seed, save)
	return ApproxResult{M: res.M, Stats: res.Stats}, info, err
}

var errSnapshotGraph = errors.New("repro: snapshot was taken on a different graph")

// sameGraph reports whether two graphs are identical instances: same
// vertex count and the same edge list in the same order (the reduction is
// order-sensitive only through the Rng, but a checkpoint's Rng stream is
// only meaningful against the byte-identical instance).
func sameGraph(a, b *Graph) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	be := b.Edges()
	for i, e := range a.Edges() {
		if e != be[i] {
			return false
		}
	}
	return true
}

// StreamingApproxResult adds multi-pass accounting to an ApproxResult.
type StreamingApproxResult struct {
	M     *Matching
	Stats ApproxStats
	// TotalPasses, MaxRoundPasses and SubroutinePasses expose the
	// Theorem 1.2(2) pass accounting (see core.StreamingResult).
	TotalPasses, MaxRoundPasses, SubroutinePasses int
	// PeakStored is the peak per-instance memory in words.
	PeakStored int
}

// ApproxWeightedStreaming runs the reduction in the multi-pass
// semi-streaming model (Theorem 1.2(2)).
func ApproxWeightedStreaming(g *Graph, initial *Matching, opts ApproxOptions) (StreamingApproxResult, error) {
	res, err := core.SolveStreaming(g, initial, core.StreamingOptions{
		Core:  opts.coreOptions(),
		Delta: opts.Delta,
	})
	return StreamingApproxResult{
		M:                res.M,
		Stats:            res.Stats,
		TotalPasses:      res.TotalPasses,
		MaxRoundPasses:   res.MaxRoundPasses,
		SubroutinePasses: res.SubroutinePasses,
		PeakStored:       res.PeakStored,
	}, err
}

// MPCApproxResult adds MPC round accounting to an ApproxResult.
type MPCApproxResult struct {
	M     *Matching
	Stats ApproxStats
	// TotalRounds, MaxRoundRounds and SubroutineRounds expose the
	// Theorem 1.2(1) round accounting (see core.MPCResult).
	TotalRounds, MaxRoundRounds, SubroutineRounds int
	// PeakLoad is the largest per-machine load observed (words).
	PeakLoad int
}

// ApproxWeightedMPC runs the reduction in the simulated MPC model
// (Theorem 1.2(1)) with O(m/n) machines and near-linear memory per machine.
func ApproxWeightedMPC(g *Graph, initial *Matching, opts ApproxOptions) (MPCApproxResult, error) {
	res, err := core.SolveMPC(g, initial, core.MPCOptions{
		Core:  opts.coreOptions(),
		Delta: opts.Delta,
	})
	return MPCApproxResult{
		M:                res.M,
		Stats:            res.Stats,
		TotalRounds:      res.TotalRounds,
		MaxRoundRounds:   res.MaxRoundRounds,
		SubroutineRounds: res.SubroutineRounds,
		PeakLoad:         res.PeakLoad,
	}, err
}

// Ratio returns w(m)/opt, or 0 when opt is 0.
func Ratio(m *Matching, opt Weight) float64 { return matchutil.Ratio(m, opt) }
