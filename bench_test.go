package repro

// One benchmark per experiment of DESIGN.md's index (E1..E10). Each runs
// the corresponding harness experiment at Quick scale and reports the
// headline metric of the paper claim via b.ReportMetric, so
// `go test -bench=. -benchmem` regenerates every table's shape. Full-size
// tables: `go run ./cmd/augbench`.

import (
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/bench"
	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/layered"
	"repro/internal/matchutil"
	"repro/internal/randarrival"
	"repro/internal/stream"
	"repro/internal/unwaug"
)

func graphBip(n int, side []bool, edges []graph.Edge) (*bipartite.Bip, error) {
	return bipartite.NewBip(n, side, edges)
}

func benchCfg(i int) bench.Config {
	return bench.Config{Seed: int64(i + 1), Trials: 2, Quick: true}
}

// parseRatio pulls a float cell out of a harness table row.
func parseRatio(cell string) float64 {
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		return 0
	}
	return v
}

// BenchmarkE1RandomArrivalWeighted regenerates E1 (Theorem 1.1): the
// (1/2+c) random-arrival weighted matcher vs its 1/2 baselines.
func BenchmarkE1RandomArrivalWeighted(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		tables := bench.E1RandomArrivalWeighted(benchCfg(i))
		ratio = parseRatio(tables[0].Rows[0][4])
	}
	b.ReportMetric(ratio, "approx-ratio")
}

// BenchmarkE2RandomArrivalUnweighted regenerates E2 (Theorem 3.4).
func BenchmarkE2RandomArrivalUnweighted(b *testing.B) {
	var lift float64
	for i := 0; i < b.N; i++ {
		tables := bench.E2RandomArrivalUnweighted(benchCfg(i))
		lift = parseRatio(tables[0].Rows[0][4])
	}
	b.ReportMetric(lift, "lift-over-greedy")
}

// BenchmarkE3ThreeAugPaths regenerates E3 (Lemma 3.1).
func BenchmarkE3ThreeAugPaths(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	inst, m0 := graph.ThreeAugWorkload(200, 0.5, 1000, rng)
	b.ResetTimer()
	recovered := 0
	for i := 0; i < b.N; i++ {
		f := unwaug.New(m0, 0.5)
		for _, e := range inst.G.Edges() {
			if !m0.Has(e.U, e.V) {
				f.Feed(e)
			}
		}
		recovered = len(f.Finalize())
	}
	b.ReportMetric(float64(recovered), "paths")
}

// BenchmarkE4MultipassWeighted regenerates E4 (Theorem 1.2(2)).
func BenchmarkE4MultipassWeighted(b *testing.B) {
	var passes float64
	for i := 0; i < b.N; i++ {
		tables := bench.E4MultipassWeighted(benchCfg(i))
		passes = parseRatio(tables[0].Rows[0][2])
	}
	b.ReportMetric(passes, "total-passes")
}

// BenchmarkE5MPCWeighted regenerates E5 (Theorem 1.2(1)).
func BenchmarkE5MPCWeighted(b *testing.B) {
	var rounds float64
	for i := 0; i < b.N; i++ {
		tables := bench.E5MPCWeighted(benchCfg(i))
		rounds = parseRatio(tables[0].Rows[0][2])
	}
	b.ReportMetric(rounds, "total-rounds")
}

// BenchmarkE6SpaceUsage regenerates E6 (Lemma 3.15).
func BenchmarkE6SpaceUsage(b *testing.B) {
	var stackSize float64
	for i := 0; i < b.N; i++ {
		tables := bench.E6SpaceUsage(benchCfg(i))
		stackSize = parseRatio(tables[0].Rows[0][2])
	}
	b.ReportMetric(stackSize, "stack-edges")
}

// BenchmarkE7FilterSoundness regenerates E7 (Figure 1 invariant).
func BenchmarkE7FilterSoundness(b *testing.B) {
	var decreases float64
	for i := 0; i < b.N; i++ {
		tables := bench.E7FilterSoundness(benchCfg(i))
		decreases = parseRatio(tables[0].Rows[0][2])
	}
	b.ReportMetric(decreases, "weight-decreases")
}

// BenchmarkE8LayeredCapture regenerates E8 (Lemma 4.12 / Section 1.1.2).
func BenchmarkE8LayeredCapture(b *testing.B) {
	var prob float64
	for i := 0; i < b.N; i++ {
		tables := bench.E8LayeredCapture(benchCfg(i))
		prob = parseRatio(tables[0].Rows[0][2])
	}
	b.ReportMetric(prob, "capture-prob")
}

// BenchmarkE9TauPairs regenerates E9 (Table 1 enumeration).
func BenchmarkE9TauPairs(b *testing.B) {
	var pairs float64
	for i := 0; i < b.N; i++ {
		tables := bench.E9TauPairs(benchCfg(i))
		pairs = parseRatio(tables[0].Rows[len(tables[0].Rows)-1][2])
	}
	b.ReportMetric(pairs, "tau-pairs")
}

// BenchmarkE10Overhead regenerates E10 (Theorem 4.1 overhead factor).
func BenchmarkE10Overhead(b *testing.B) {
	var factor float64
	for i := 0; i < b.N; i++ {
		tables := bench.E10Overhead(benchCfg(i))
		last := tables[0].Rows[len(tables[0].Rows)-1]
		factor = parseRatio(last[3])
	}
	b.ReportMetric(factor, "overhead-factor")
}

// Micro-benchmarks of the load-bearing primitives, for regression tracking.

func BenchmarkLocalRatioStream(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	inst := graph.RandomGraph(500, 10000, 1<<20, rng)
	order := stream.RandomOrder(inst.G, rng).Edges()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := randarrival.RandArrMatching(inst.G.N(), stream.FromEdges(order),
			randarrival.WeightedOptions{Rng: rng})
		_ = m
	}
}

// BenchmarkLayeredBuild measures the layered-graph construction as the
// reduction drives it: the parametrization is bucketed once per class
// weight and every (τA, τB) pair reuses one scratch arena.
func BenchmarkLayeredBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	inst := graph.PlantedMatching(200, 1000, 100, 200, rng)
	par := layered.Parametrize(inst.G.N(), inst.G.Edges(), inst.Opt, rng)
	prm := layered.Params{}.WithDefaults()
	pairs := layered.EnumerateGoodPairs(prm)
	scratch := layered.NewScratch()
	ix := scratch.Index(par, 128, prm)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		layered.BuildIndexed(ix, pairs[i%len(pairs)], scratch)
	}
}

// setupBuildDeltaBench prepares the surviving-pair chain the BuildDelta
// benchmarks iterate: an incremental-index round over the
// BenchmarkLayeredBuild instance with a mid-convergence matching, and the
// class with the most surviving pairs.
func setupBuildDeltaBench(b *testing.B) (*layered.IncView, []layered.TauPair, *layered.Scratch) {
	rng := rand.New(rand.NewSource(2))
	return setupPairChainBench(b, graph.PlantedMatching(200, 1000, 100, 200, rng), rng)
}

func setupPairChainBench(b *testing.B, inst graph.Instance, rng *rand.Rand) (*layered.IncView, []layered.TauPair, *layered.Scratch) {
	// Chain over the class with the most surviving pairs — the regime the
	// delta builder exists for.
	var view *layered.IncView
	var pairs []layered.TauPair
	forEachBenchClass(b, inst, rng, func(v *layered.IncView, ps []layered.TauPair) {
		if len(ps) > len(pairs) {
			view, pairs = v, ps
		}
	})
	if len(pairs) < 2 {
		b.Fatalf("only %d surviving pairs", len(pairs))
	}
	return view, pairs, layered.NewScratch()
}

// forEachBenchClass is the shared preamble of the pair-chain benchmarks:
// evolve the instance to mid-convergence (a converged matching has no
// surviving pairs to build), begin an incremental-index round, and hand
// the callback every class's surviving pairs — deep-copied, because the
// enumeration arena is reused by the next class.
func forEachBenchClass(b *testing.B, inst graph.Instance, rng *rand.Rand, fn func(*layered.IncView, []layered.TauPair)) {
	prm := layered.Params{}.WithDefaults()
	weights := core.ClassWeights(inst.G, 2, prm)
	inc := layered.NewIncIndex(inst.G.N(), inst.G.Edges(), weights, prm)
	m := graph.NewMatching(inst.G.N())
	runner := core.NewRunner(inst.G, core.Options{Rng: rand.New(rand.NewSource(9))})
	var st core.Stats
	for r := 0; r < 2; r++ {
		if _, err := runner.Round(m, &st); err != nil {
			b.Fatal(err)
		}
	}
	par := layered.Parametrize(inst.G.N(), inst.G.Edges(), m, rng)
	inc.BeginRound(par)
	enum := layered.NewPairScratch()
	for c := range weights {
		v := inc.View(c)
		aMask, bMask, ok := v.Masks()
		if !ok {
			b.Fatal("masks unavailable")
		}
		orc, ok := v.Oracle()
		if !ok {
			b.Fatal("oracle unavailable")
		}
		ps, _ := layered.EnumerateSurvivingPairs(prm, aMask, bMask, 800, orc, enum)
		pairs := make([]layered.TauPair, 0, len(ps))
		for _, tau := range ps {
			pairs = append(pairs, layered.TauPair{
				AUnits: append([]int(nil), tau.AUnits...),
				BUnits: append([]int(nil), tau.BUnits...),
			})
		}
		fn(v, pairs)
	}
}

// BenchmarkBuildDelta measures the differential layered-graph builder as
// the amortised reduction drives it: every build patches the previous
// pair's arena state (grouped Y lookup + X-prefix reuse).
// BenchmarkBuildDeltaBaseline runs the identical pair chain from scratch;
// the ratio is the per-build saving, and the allocs/op guard holds the
// delta path to the arena discipline (no per-build allocation beyond the
// Layered header).
func BenchmarkBuildDelta(b *testing.B) {
	view, pairs, scratch := setupBuildDeltaBench(b)
	scratch.EnableDeltaBaseline()
	prev := layered.BuildIndexed(view, pairs[0], scratch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lay, _, err := layered.BuildDelta(view, prev, pairs[(i+1)%len(pairs)], scratch, 1)
		if err != nil {
			b.Fatal(err)
		}
		prev = lay
	}
}

// BenchmarkBuildDeltaBaseline is BenchmarkBuildDelta with every pair of the
// same chain rebuilt from scratch by BuildIndexed on an unmarked arena
// (no watermark recording, like the real delta-disabled pipeline) — the
// honest denominator for the delta speedup.
func BenchmarkBuildDeltaBaseline(b *testing.B) {
	view, pairs, scratch := setupBuildDeltaBench(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		layered.BuildIndexed(view, pairs[(i+1)%len(pairs)], scratch)
	}
}

// BenchmarkRepairHK measures the incremental Hopcroft–Karp repair on the
// BenchmarkBuildDelta instance's surviving-pair chain: the chain is
// delta-built once outside the timer (each instance detached with its
// DeltaInfo), and every
// iteration solves the next instance by patching the previous solve's
// retained CSR (bipartite.RepairHK; the wrap-around instance, whose
// baseline is not the previous solve, falls back to the retained full
// solve). BenchmarkRepairHKBaseline solves the identical instances from
// scratch; the ratio is the per-solve setup saving, with bit-identical
// matchings and phase counts by construction (Invariant 21).
func BenchmarkRepairHK(b *testing.B) {
	chain := setupRepairChain(b)
	hk := bipartite.NewScratch()
	var baseTok, baseSeq uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := chain[i%len(chain)]
		var res bipartite.Result
		if d := c.delta; d.Valid && d.BaseSeq == baseSeq && baseTok != 0 && d.KeptLPrime > 0 {
			var err error
			res, err = bipartite.RepairHK(c.bip, hk, bipartite.RepairInfo{
				BaseToken: baseTok, KeptVerts: d.KeptIDs, KeptEdges: d.KeptLPrime,
			})
			if err != nil {
				b.Fatal(err)
			}
		} else {
			res = bipartite.HopcroftKarpRetained(c.bip, hk)
		}
		baseTok, baseSeq = hk.SolveToken(), c.seq
		_ = res
	}
}

// BenchmarkRepairHKBaseline is BenchmarkRepairHK with every solve of the
// same chain run from scratch by HopcroftKarpScratch — the PR 4 solver
// configuration and the honest denominator for the repair speedup.
func BenchmarkRepairHKBaseline(b *testing.B) {
	chain := setupRepairChain(b)
	hk := bipartite.NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := bipartite.HopcroftKarpScratch(chain[i%len(chain)].bip, hk)
		_ = res
	}
}

// repairCase is one solved instance of the repair benchmark chain: the
// bipartite view (content-owned, detached from the build arena), the
// build's DeltaInfo against its chain predecessor, and its BuildSeq.
type repairCase struct {
	bip   *bipartite.Bip
	delta layered.DeltaInfo
	seq   uint64
}

// setupRepairChain delta-builds a surviving-pair chain of the
// BenchmarkLayeredBuild planted instance once and snapshots each instance
// (the shared-prefix property the repair relies on is a property of the
// edge-list content, so detached copies preserve it). Among the instance's
// classes it picks the chain with the densest shared structure per solve —
// the highest average kept L' prefix — the regime the repair exists for,
// mirroring how setupBuildDeltaBench picks the class with the most
// surviving pairs for the builder.
func setupRepairChain(b *testing.B) []repairCase {
	rng := rand.New(rand.NewSource(2))
	inst := graph.PlantedMatching(200, 1000, 100, 200, rng)
	var best []repairCase
	bestKept := -1.0
	forEachBenchClass(b, inst, rng, func(v *layered.IncView, ps []layered.TauPair) {
		if len(ps) < 2 {
			return
		}
		scratch := layered.NewScratch()
		scratch.EnableDeltaBaseline()
		chain := make([]repairCase, 0, len(ps))
		kept := 0
		var prev *layered.Layered
		for i, tau := range ps {
			var lay *layered.Layered
			if i == 0 {
				lay = layered.BuildIndexed(v, tau, scratch)
			} else {
				var err error
				lay, _, err = layered.BuildDelta(v, prev, tau, scratch, 1)
				if err != nil {
					b.Fatal(err)
				}
				kept += lay.Delta.KeptLPrime
			}
			prev = lay
			sides := append([]bool(nil), lay.Sides()...)
			edges := append([]graph.Edge(nil), lay.LPrimeEdges()...)
			chain = append(chain, repairCase{
				bip:   &bipartite.Bip{N: lay.NumV, Side: sides, Edges: edges},
				delta: lay.Delta,
				seq:   lay.BuildSeq(),
			})
		}
		if avg := float64(kept) / float64(len(ps)-1); avg > bestKept {
			bestKept, best = avg, chain
		}
	})
	if len(best) < 2 {
		b.Fatal("no usable repair chain")
	}
	return best
}

func BenchmarkHopcroftKarpOracle(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	inst := graph.RandomBipartite(500, 500, 5000, 10, rng)
	side := make([]bool, 1000)
	for v := 500; v < 1000; v++ {
		side[v] = true
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		solver := core.ExactSolver()
		bip, err := graphBip(inst.G.N(), side, inst.G.Edges())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := solver(bip); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBlossom(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	inst := graph.RandomGraph(300, 2000, 5, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matchutil.MaxCardinality(inst.G)
	}
}

func BenchmarkReductionRound(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	inst := graph.PlantedMatching(100, 500, 100, 200, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var stats core.Stats
		m := graph.NewMatching(inst.G.N())
		if _, err := core.Round(inst.G, m, core.Options{Rng: rng}, &stats); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRound is the headline perf benchmark of the reduction's hot path:
// one Algorithm 3 round on the medium E12 convergence workload
// (PlantedMatching n=120, m=600, the instance E12Convergence runs at full
// scale). Tracked across PRs via BENCH_*.json.
func BenchmarkRound(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	inst := graph.PlantedMatching(120, 600, 100, 200, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var stats core.Stats
		m := graph.NewMatching(inst.G.N())
		if _, err := core.Round(inst.G, m, core.Options{Rng: rng}, &stats); err != nil {
			b.Fatal(err)
		}
	}
}

// solveBench runs the full Theorem 1.2 driver on the medium E12 workload
// (PlantedMatching n=120 m=600) for a fixed 12-round budget — the
// BenchmarkSolve family's shared body. A fixed budget (Patience = MaxRounds)
// keeps the measured work identical across configurations; the amortised
// configurations return the bit-identical matching by construction
// (asserted by internal/solvertest), so the ns/op ratio is a pure
// implementation comparison.
func solveBench(b *testing.B, opts core.Options) {
	rng := rand.New(rand.NewSource(6))
	inst := graph.PlantedMatching(120, 600, 100, 200, rng)
	opts.MaxRounds = 12
	opts.Patience = 12
	b.ReportAllocs()
	b.ResetTimer()
	var weight graph.Weight
	for i := 0; i < b.N; i++ {
		opts.Rng = rand.New(rand.NewSource(7))
		res, err := core.Solve(inst.G, nil, opts)
		if err != nil {
			b.Fatal(err)
		}
		weight = res.M.Weight()
	}
	b.ReportMetric(float64(weight), "final-weight")
}

// BenchmarkSolve is the headline end-to-end benchmark of the naive (PR 1)
// configuration: every round rebuilds the per-class bucket index and builds
// every enumerated pair's layered graph. Tracked across PRs via
// BENCH_*.json; cmd/benchguard holds the amortised variant to a minimum
// speedup over this baseline in CI.
func BenchmarkSolve(b *testing.B) {
	solveBench(b, core.Options{})
}

// BenchmarkSolveAmortized is BenchmarkSolve over the cross-round amortised
// pipeline (incremental viability index + survival probe + cross-class
// solve cache), bit-identical output by construction.
func BenchmarkSolveAmortized(b *testing.B) {
	solveBench(b, core.Options{Amortize: true})
}

// BenchmarkSolveAmortizedWarm additionally warm-starts Hopcroft–Karp from
// the previous pair's matching (exact cardinality preserved, tie-breaking
// differs, so the final weight may differ from the cold runs).
func BenchmarkSolveAmortizedWarm(b *testing.B) {
	solveBench(b, core.Options{Amortize: true, WarmStart: true})
}

// solveBenchOn runs a fixed-budget Solve on inst for the solver-bound tier
// benchmarks: the E13/E14 instance families are sized so the unweighted
// subroutine's share of round time is as large as the reduction's layered
// graphs allow, which is where the warm-started Hopcroft–Karp configuration
// must prove (or honestly disprove) itself. Reported metrics: final weight
// and total HK phases (the unit of work a warm start saves).
func solveBenchOn(b *testing.B, inst graph.Instance, opts core.Options, rounds int) {
	opts.MaxRounds = rounds
	opts.Patience = rounds
	b.ReportAllocs()
	b.ResetTimer()
	var weight graph.Weight
	var phases int
	for i := 0; i < b.N; i++ {
		opts.Rng = rand.New(rand.NewSource(11))
		res, err := core.Solve(inst.G, nil, opts)
		if err != nil {
			b.Fatal(err)
		}
		weight = res.M.Weight()
		phases = res.Stats.SolverPhases
	}
	b.ReportMetric(float64(weight), "final-weight")
	b.ReportMetric(float64(phases), "hk-phases")
}

func bandedE13() graph.Instance {
	return graph.BandedWeights(240, 8*240, 100, rand.New(rand.NewSource(2)))
}

func uniformE14() graph.Instance {
	return graph.UniformWeights(1000, 6000, 128, rand.New(rand.NewSource(3)))
}

// BenchmarkSolveE13 is the dense one-octave band of the solver-bound tier
// (E13), amortised cold-solver configuration.
func BenchmarkSolveE13(b *testing.B) {
	solveBenchOn(b, bandedE13(), core.Options{Amortize: true, MaxPairsPerClass: 2000}, 3)
}

// BenchmarkSolveE13Warm is BenchmarkSolveE13 with the warm-started solver.
func BenchmarkSolveE13Warm(b *testing.B) {
	solveBenchOn(b, bandedE13(), core.Options{Amortize: true, MaxPairsPerClass: 2000, WarmStart: true}, 3)
}

// BenchmarkSolveE13CrossRound is the E13 band over enough rounds for the
// round links to matter (6 instead of the tier's 3), cross-round delta
// chaining on (the default since PR 7): each class's first build of a round
// deltas over the previous round's retained baseline instead of starting
// the chain from scratch.
func BenchmarkSolveE13CrossRound(b *testing.B) {
	solveBenchOn(b, bandedE13(), core.Options{Amortize: true, MaxPairsPerClass: 2000}, 6)
}

// BenchmarkSolveE13RoundLocal is BenchmarkSolveE13CrossRound with chaining
// confined to a single round (CrossRoundCutover = −1, exactly the PR 4–6
// pipeline) — the A/B baseline for the E17 ledger row, bit-identical output
// by Invariant 24.
func BenchmarkSolveE13RoundLocal(b *testing.B) {
	solveBenchOn(b, bandedE13(), core.Options{Amortize: true, MaxPairsPerClass: 2000, CrossRoundCutover: -1}, 6)
}

// BenchmarkSolveE14 is the uniform heavy class of the solver-bound tier
// (E14), amortised cold-solver configuration.
func BenchmarkSolveE14(b *testing.B) {
	solveBenchOn(b, uniformE14(), core.Options{Amortize: true}, 3)
}

// BenchmarkSolveE14Warm is BenchmarkSolveE14 with the warm-started solver.
func BenchmarkSolveE14Warm(b *testing.B) {
	solveBenchOn(b, uniformE14(), core.Options{Amortize: true, WarmStart: true}, 3)
}

// BenchmarkRoundParallel is BenchmarkRound with the class sweep on a worker
// pool (results are identical by construction; only wall-clock differs, and
// only on multi-core hardware).
func BenchmarkRoundParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	inst := graph.PlantedMatching(120, 600, 100, 200, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var stats core.Stats
		m := graph.NewMatching(inst.G.N())
		if _, err := core.Round(inst.G, m, core.Options{Rng: rng, Workers: 4}, &stats); err != nil {
			b.Fatal(err)
		}
	}
}

// randArrBenchEdges builds the PR 10 per-arrival benchmark stream: a
// random-order weighted stream big enough that the per-arrival hot path
// (class routing + local-ratio pushes) dominates setup.
func randArrBenchEdges() (int, []graph.Edge) {
	rng := rand.New(rand.NewSource(20))
	inst := graph.PlantedMatching(2000, 15000, 1000, 2000, rng)
	return inst.G.N(), stream.RandomOrder(inst.G, rng).Edges()
}

// BenchmarkRandArrArena runs Algorithm 2 on the arena-backed hot path —
// flat 65-slot class table, stack-parallel origW, reused Arena — the E20
// A/B numerator. Output is bit-identical to BenchmarkRandArrNaive
// (Invariant 27; gated ≥1.15x in CI, committed margin in BENCH_pr10.json).
func BenchmarkRandArrArena(b *testing.B) {
	n, edges := randArrBenchEdges()
	arena := &randarrival.Arena{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := randarrival.RandArrMatching(n, stream.FromEdges(edges),
			randarrival.WeightedOptions{Rng: rand.New(rand.NewSource(7)), Arena: arena})
		if res.M.Size() == 0 {
			b.Fatal("empty matching")
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(edges)), "ns/arrival")
}

// BenchmarkRandArrNaive is the same run on the retained map-backed
// reference forms — the A/B denominator.
func BenchmarkRandArrNaive(b *testing.B) {
	n, edges := randArrBenchEdges()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := randarrival.RandArrMatching(n, stream.FromEdges(edges),
			randarrival.WeightedOptions{Rng: rand.New(rand.NewSource(7)), Naive: true})
		if res.M.Size() == 0 {
			b.Fatal("empty matching")
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(edges)), "ns/arrival")
}

// streamingBenchBip builds the bipartite stream for the flat-vs-naive
// grower pair.
func streamingBenchBip() (*bipartite.Bip, error) {
	rng := rand.New(rand.NewSource(21))
	inst := graph.RandomBipartite(400, 400, 6000, 10, rng)
	side := make([]bool, 800)
	for v := 400; v < 800; v++ {
		side[v] = true
	}
	return graphBip(800, side, inst.G.Edges())
}

// BenchmarkStreamingFlat measures the chain-table multipass grower with a
// reused StreamScratch (the PR 10 flat form).
func BenchmarkStreamingFlat(b *testing.B) {
	bip, err := streamingBenchBip()
	if err != nil {
		b.Fatal(err)
	}
	scratch := &bipartite.StreamScratch{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := bipartite.StreamingOpts(bip.N, bip.Side, stream.FromEdges(bip.Edges), 0.2,
			bipartite.StreamOptions{Scratch: scratch})
		if res.M.Size() == 0 {
			b.Fatal("empty matching")
		}
	}
}

// BenchmarkStreamingNaive is the retained map-based grower on the same
// stream — the honest parity record for the flat form (no speedup gate;
// the win is allocation count, visible in -benchmem).
func BenchmarkStreamingNaive(b *testing.B) {
	bip, err := streamingBenchBip()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := bipartite.StreamingOpts(bip.N, bip.Side, stream.FromEdges(bip.Edges), 0.2,
			bipartite.StreamOptions{Naive: true})
		if res.M.Size() == 0 {
			b.Fatal("empty matching")
		}
	}
}
