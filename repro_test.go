package repro

import (
	"math/rand"
	"strings"
	"testing"
)

func TestFacadeRandomArrivalWeighted(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	inst := PlantedMatching(100, 800, 100, 200, rng)
	res := RandomArrivalWeighted(inst.G, RandomArrivalOptions{Seed: 7})
	if err := res.M.Validate(); err != nil {
		t.Fatal(err)
	}
	if Ratio(res.M, inst.OptWeight) <= 0.5 {
		t.Errorf("ratio %.4f not above 1/2", Ratio(res.M, inst.OptWeight))
	}
	if res.Branch == "" {
		t.Error("no branch recorded")
	}
}

func TestFacadeRandomArrivalUnweighted(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	inst := RandomGraph(80, 400, 1, rng)
	m := RandomArrivalUnweighted(inst.G, 3)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Size() == 0 {
		t.Error("empty matching")
	}
}

func TestFacadeApproxWeighted(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	inst := PlantedMatching(40, 150, 100, 200, rng)
	res, err := ApproxWeighted(inst.G, nil, ApproxOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if Ratio(res.M, inst.OptWeight) < 0.85 {
		t.Errorf("ratio %.4f", Ratio(res.M, inst.OptWeight))
	}
	if res.Stats.Rounds == 0 {
		t.Error("no stats")
	}
}

func TestFacadeStreamingAndMPC(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	inst := PlantedMatching(40, 150, 100, 200, rng)

	st, err := ApproxWeightedStreaming(inst.G, nil, ApproxOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalPasses == 0 {
		t.Error("streaming pass accounting missing")
	}
	if Ratio(st.M, inst.OptWeight) < 0.85 {
		t.Errorf("streaming ratio %.4f", Ratio(st.M, inst.OptWeight))
	}

	mp, err := ApproxWeightedMPC(inst.G, nil, ApproxOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if mp.TotalRounds == 0 || mp.PeakLoad == 0 {
		t.Error("MPC accounting missing")
	}
	if Ratio(mp.M, inst.OptWeight) < 0.85 {
		t.Errorf("MPC ratio %.4f", Ratio(mp.M, inst.OptWeight))
	}
}

func TestFacadeBaselinesAndIO(t *testing.T) {
	g := NewGraph(4)
	g.MustAddEdge(0, 1, 4)
	g.MustAddEdge(1, 2, 5)
	g.MustAddEdge(2, 3, 4)

	if w := GreedyWeighted(g).Weight(); w != 5 {
		t.Errorf("greedy weight = %d, want 5", w)
	}
	if w := LocalRatio(g).Weight(); 2*w < 8 {
		t.Errorf("local ratio weight = %d below half of 8", w)
	}
	opt, err := MaxWeightExact(g)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Weight() != 8 {
		t.Errorf("exact = %d, want 8", opt.Weight())
	}
	if MaxCardinality(g).Size() != 2 {
		t.Error("blossom size wrong")
	}

	parsed, err := ReadGraph(strings.NewReader("p 2 1\n0 1 7\n"))
	if err != nil {
		t.Fatal(err)
	}
	if parsed.M() != 1 {
		t.Error("ReadGraph failed")
	}
	if _, err := GraphFromEdges(2, []Edge{{U: 0, V: 1, W: 3}}); err != nil {
		t.Fatal(err)
	}
	if NewMatching(3).Size() != 0 {
		t.Error("NewMatching not empty")
	}
}

func TestFacadeWeightedCycleEndToEnd(t *testing.T) {
	// End-to-end: the cycle family is solved through augmenting cycles.
	inst := WeightedCycle(2, 24, 32)
	res, err := ApproxWeighted(inst.G, nil, ApproxOptions{Seed: 3, MaxRounds: 80, Patience: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.M.Weight() != inst.OptWeight {
		t.Errorf("weight = %d, want %d", res.M.Weight(), inst.OptWeight)
	}
}
