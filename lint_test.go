package repro

import (
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// TestPackageDocs is the missing-package-doc lint the CI vet step pairs
// with: every package in the module — the facade, internal/, cmd/,
// examples/ — must carry a package doc comment in at least one of its
// non-test files. The doc comments are the repo's contract surface (the
// delta-chain, repair and ladder contracts live in them), so a new package
// without one fails here rather than shipping undocumented.
func TestPackageDocs(t *testing.T) {
	fset := token.NewFileSet()
	byDir := map[string]bool{} // dir -> has a package doc
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") && name != "." {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		f, perr := parser.ParseFile(fset, path, nil, parser.PackageClauseOnly|parser.ParseComments)
		if perr != nil {
			return perr
		}
		byDir[dir] = byDir[dir] || f.Doc != nil
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for dir, documented := range byDir {
		if !documented {
			t.Errorf("package in %s has no package doc comment in any file", dir)
		}
	}
	if len(byDir) < 10 {
		t.Fatalf("lint walked only %d packages; the walk is broken", len(byDir))
	}
}
