// MPC demo (Theorem 1.2(1)): the reduction in the simulated massively
// parallel computation model — O(m/n) machines, near-linear memory per
// machine — with round accounting. The overhead of handling weights is a
// constant factor over the unweighted subroutine's rounds (U_M).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	for _, n := range []int{100, 200, 400} {
		rng := rand.New(rand.NewSource(11))
		inst := repro.PlantedMatching(n, 5*n, 100, 200, rng)
		res, err := repro.ApproxWeightedMPC(inst.G, nil, repro.ApproxOptions{Seed: 11})
		if err != nil {
			log.Fatal(err)
		}
		overhead := 0.0
		if res.SubroutineRounds > 0 {
			overhead = float64(res.TotalRounds) / float64(res.SubroutineRounds)
		}
		fmt.Printf("n=%4d  ratio=%.4f  rounds=%3d  U_M=%2d  overhead=%.1fx  peak-load=%d words\n",
			n,
			repro.Ratio(res.M, inst.OptWeight),
			res.TotalRounds,
			res.SubroutineRounds,
			overhead,
			res.PeakLoad,
		)
	}
	fmt.Println("\nweighted rounds / unweighted rounds stays constant in n: the Theorem 4.1 claim.")
}
