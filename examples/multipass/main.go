// Multi-pass streaming demo (Theorem 1.2(2)): the weighted-to-unweighted
// reduction runs in the semi-streaming model; the pass counter shows the
// O_ε(1)-passes shape — the per-round pass budget does not grow with n.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	for _, n := range []int{100, 200, 400} {
		rng := rand.New(rand.NewSource(7))
		inst := repro.PlantedMatching(n, 5*n, 100, 200, rng)
		res, err := repro.ApproxWeightedStreaming(inst.G, nil, repro.ApproxOptions{Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("n=%4d  ratio=%.4f  total-passes=%3d  max-passes/round=%2d  peak-memory=%d words\n",
			n,
			repro.Ratio(res.M, inst.OptWeight),
			res.TotalPasses,
			res.MaxRoundPasses,
			res.PeakStored,
		)
	}
	fmt.Println("\nper-round passes stay flat as n grows: the Theorem 1.2(2) shape.")
}
