// Random-arrival demo (Theorem 1.1): on a stream of weighted edges arriving
// in uniformly random order, Rand-Arr-Matching (Algorithm 2) beats the 1/2
// barrier that greedy-style algorithms are stuck at. The workload is a
// planted-optimum graph so ratios are exact.
package main

import (
	"fmt"
	"io"
	"math/rand"
	"os"

	"repro"
)

// run writes the demo's report to w. Every random draw is pinned to a fixed
// seed, so the output is byte-stable — main_test.go holds it as a golden
// string (the repo-wide deterministic-seeding audit's executable witness).
func run(w io.Writer) {
	// The greedy trap: chains of length-3 segments with weights 50, 51, 50.
	// Sorting by weight picks the middle edge of every segment (51) and
	// blocks both outer edges (50+50 = 100), landing at ratio ~0.51 — the
	// "1/2 barrier". Each trapped segment is exactly a weighted
	// 3-augmentation, the structure Algorithm 2 recovers.
	rng := rand.New(rand.NewSource(42))
	inst := repro.AugmentingChain(800, 50, 51, rng)
	fmt.Fprintf(w, "instance: n=%d m=%d optimum=%d (greedy-trap chain)\n",
		inst.G.N(), inst.G.M(), inst.OptWeight)

	greedy := repro.GreedyWeighted(inst.G)
	fmt.Fprintf(w, "sorted greedy:        ratio %.4f (the 1/2 barrier)\n",
		repro.Ratio(greedy, inst.OptWeight))

	trials := 5
	var sum float64
	for seed := int64(0); seed < int64(trials); seed++ {
		res := repro.RandomArrivalWeighted(inst.G, repro.RandomArrivalOptions{Seed: seed})
		r := repro.Ratio(res.M, inst.OptWeight)
		sum += r
		fmt.Fprintf(w, "rand-arrival seed=%d: ratio %.4f  branch=%s  |S|=%d |T|=%d\n",
			seed, r, res.Branch, res.StackSize, res.TSize)
	}
	fmt.Fprintf(w, "rand-arrival average: %.4f (paper: 1/2+c in expectation)\n",
		sum/float64(trials))
}

func main() {
	run(os.Stdout)
}
