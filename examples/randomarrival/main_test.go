package main

import (
	"strings"
	"testing"
)

// TestRunGolden pins the demo's full output byte-for-byte. The example is
// the repo's showcase of the deterministic-seeding policy (every math/rand
// user takes an explicit rand.NewSource; nothing touches the global
// source), and this golden string is that audit's regression witness: any
// accidental reseed, draw-order change, or global-rand leak shows up as a
// diff here before it shows up as an unreproducible benchmark.
func TestRunGolden(t *testing.T) {
	const want = `instance: n=3200 m=2400 optimum=80000 (greedy-trap chain)
sorted greedy:        ratio 0.5100 (the 1/2 barrier)
rand-arrival seed=0: ratio 0.8371  branch=augment  |S|=116 |T|=2207
rand-arrival seed=1: ratio 0.8383  branch=augment  |S|=120 |T|=2191
rand-arrival seed=2: ratio 0.8340  branch=augment  |S|=118 |T|=2200
rand-arrival seed=3: ratio 0.8236  branch=augment  |S|=117 |T|=2200
rand-arrival seed=4: ratio 0.8414  branch=augment  |S|=119 |T|=2209
rand-arrival average: 0.8349 (paper: 1/2+c in expectation)
`
	var sb strings.Builder
	run(&sb)
	if got := sb.String(); got != want {
		t.Errorf("output drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
