// Quickstart: build a small weighted graph, compute a near-optimal weighted
// matching with the paper's reduction (Theorem 1.2), and compare it with the
// greedy 1/2-approximation and the exact optimum.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// The Figure 1 graph of the paper: matching {c,d} of weight 5 must be
	// improved to {a,c},{d,f} of weight 8 through a 3-augmentation.
	//   a=0  b=1  c=2  d=3  e=4  f=5
	g := repro.NewGraph(6)
	g.MustAddEdge(2, 3, 5) // c-d (the initial matched edge)
	g.MustAddEdge(0, 2, 4) // a-c
	g.MustAddEdge(3, 5, 4) // d-f
	g.MustAddEdge(1, 2, 2) // b-c (a trap: unweighted-augmenting, weight-losing)
	g.MustAddEdge(3, 4, 2) // d-e (same trap on the other side)

	greedy := repro.GreedyWeighted(g)
	fmt.Printf("greedy:   weight=%d  edges=%v\n", greedy.Weight(), greedy.Edges())

	res, err := repro.ApproxWeighted(g, nil, repro.ApproxOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reduction: weight=%d  edges=%v\n", res.M.Weight(), res.M.Edges())
	fmt.Printf("           rounds=%d unweighted-solver-calls=%d\n",
		res.Stats.Rounds, res.Stats.SolverCalls)

	opt, err := repro.MaxWeightExact(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimum:  weight=%d\n", opt.Weight())
	fmt.Printf("ratio:    %.3f\n", repro.Ratio(res.M, opt.Weight()))
}
