// Augmenting-cycle demo (Section 1.1.2): a 4-cycle with weights
// (24, 32, 24, 32) where the weight-24 edges form a PERFECT matching of
// weight 48. No augmenting path exists — the optimum of 64 is reachable only
// through an augmenting cycle, which the layered-graph construction captures
// by "blowing up" the cycle into a repeated alternating path
// (e1 o1 e2 o2 e1) across five layers.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	g := repro.NewGraph(4)
	g.MustAddEdge(0, 1, 24) // e1
	g.MustAddEdge(1, 2, 32) // o1
	g.MustAddEdge(2, 3, 24) // e2
	g.MustAddEdge(3, 0, 32) // o2

	start := repro.NewMatching(4)
	for _, e := range []repro.Edge{{U: 0, V: 1, W: 24}, {U: 2, V: 3, W: 24}} {
		if err := start.Add(e); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("start:   perfect matching of weight %d (no augmenting path exists)\n", start.Weight())

	res, err := repro.ApproxWeighted(g, start, repro.ApproxOptions{
		Seed: 3, MaxRounds: 100, Patience: 25,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after:   weight %d, edges %v\n", res.M.Weight(), res.M.Edges())
	fmt.Printf("optimum: 64 — reached via an augmenting cycle found as a layered-graph path\n")
	fmt.Printf("(reduction rounds: %d, unweighted matcher calls: %d)\n",
		res.Stats.Rounds, res.Stats.SolverCalls)
}
