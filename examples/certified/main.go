// Certified ratios at scale: on instances far beyond any exact solver, the
// local-ratio vertex potentials form a fractional cover of the edge weights
// (w(e) <= alpha_u + alpha_v for every edge), so Σα is a certified upper
// bound on the optimum. Dividing by it gives approximation-ratio lower
// bounds that need no oracle — used here to certify both the local-ratio
// baseline and the Theorem 1.2 reduction on a 20k-vertex instance.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	rng := rand.New(rand.NewSource(99))
	inst := repro.RandomGraph(20000, 120000, 1_000_000, rng)
	fmt.Printf("instance: n=%d m=%d (no exact solver feasible)\n",
		inst.G.N(), inst.G.M())

	m, certified := repro.LocalRatioCertified(inst.G)
	fmt.Printf("local-ratio:  weight=%d  certified ratio >= %.4f\n", m.Weight(), certified)

	res, err := repro.ApproxWeighted(inst.G, m, repro.ApproxOptions{
		Seed: 1, MaxRounds: 6, Patience: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	bound := float64(m.Weight()) / certified // certified OPT upper bound
	fmt.Printf("reduction:    weight=%d  certified ratio >= %.4f\n",
		res.M.Weight(), float64(res.M.Weight())/bound)
	fmt.Printf("(the reduction starts from the local-ratio matching and only improves it)\n")
}
