package bipartite

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// sameResult fails unless two solver results are bit-identical: same edge
// set (with weights, in Edges() order) and same phase count — the
// repair-equals-fresh contract (Invariant 21).
func sameResult(t *testing.T, label string, got, want Result) {
	t.Helper()
	if got.Phases != want.Phases {
		t.Fatalf("%s: phases %d, want %d", label, got.Phases, want.Phases)
	}
	ge, we := got.M.Edges(), want.M.Edges()
	if len(ge) != len(we) {
		t.Fatalf("%s: %d edges, want %d", label, len(ge), len(we))
	}
	for i := range ge {
		if ge[i] != we[i] {
			t.Fatalf("%s: edge %d is %v, want %v", label, i, ge[i], we[i])
		}
	}
}

// mutateSuffix returns a variant of b sharing the first ke edges: the
// suffix is regenerated as fresh crossing edges over the same vertex set.
// Every shared-prefix edge keeps its endpoints, so any kv above the prefix
// endpoints satisfies the RepairInfo contract.
func mutateSuffix(b *Bip, ke int, rng *rand.Rand) *Bip {
	edges := append([]graph.Edge(nil), b.Edges[:ke]...)
	extra := rng.Intn(len(b.Edges) + 2)
	var lefts, rights []int
	for v := 0; v < b.N; v++ {
		if b.Side[v] {
			rights = append(rights, v)
		} else {
			lefts = append(lefts, v)
		}
	}
	for i := 0; i < extra && len(lefts) > 0 && len(rights) > 0; i++ {
		edges = append(edges, graph.Edge{
			U: lefts[rng.Intn(len(lefts))],
			V: rights[rng.Intn(len(rights))],
			W: graph.Weight(1 + rng.Intn(16)),
		})
	}
	return &Bip{N: b.N, Side: b.Side, Edges: edges}
}

// prefixVerts returns the smallest valid KeptVerts for a shared prefix: one
// past the largest endpoint of the kept edges.
func prefixVerts(edges []graph.Edge, ke int) int {
	kv := 0
	for _, e := range edges[:ke] {
		if e.U >= kv {
			kv = e.U + 1
		}
		if e.V >= kv {
			kv = e.V + 1
		}
	}
	return kv
}

// TestRepairHKMatchesCold drives chains of suffix mutations through the
// repair path and asserts every repaired solve is bit-identical — matching
// and phase count — to a from-scratch solve of the same instance.
func TestRepairHKMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		base, _ := fuzzBip(int64(trial))
		s := NewScratch()
		prev := HopcroftKarpRetained(base, s)
		sameResult(t, "retained", prev, HopcroftKarp(base))
		cur := base
		for step := 0; step < 6; step++ {
			ke := rng.Intn(len(cur.Edges) + 1)
			next := mutateSuffix(cur, ke, rng)
			kv := prefixVerts(next.Edges, ke)
			if extra := rng.Intn(3); kv+extra <= next.N { // any valid bound works
				kv += extra
			}
			tok := s.SolveToken()
			got, err := RepairHK(next, s, RepairInfo{BaseToken: tok, KeptVerts: kv, KeptEdges: ke})
			if err != nil {
				t.Fatalf("trial %d step %d: RepairHK: %v", trial, step, err)
			}
			sameResult(t, "repair", got, HopcroftKarpScratch(next, NewScratch()))
			cur = next
		}
	}
}

// TestRepairHKHazards pins the checked-sentinel contract: a missing, stale,
// or foreign baseline and an inconsistent info must return an ErrRepair*
// error — never a wrong matching — and leave the scratch usable.
func TestRepairHKHazards(t *testing.T) {
	b, rng := fuzzBip(3)
	info := func(s *Scratch, ke int) RepairInfo {
		return RepairInfo{BaseToken: s.SolveToken(), KeptVerts: prefixVerts(b.Edges, ke), KeptEdges: ke}
	}

	t.Run("no base", func(t *testing.T) {
		s := NewScratch()
		if _, err := RepairHK(b, s, RepairInfo{}); !errors.Is(err, ErrRepairNoBase) {
			t.Fatalf("fresh scratch: err = %v, want ErrRepairNoBase", err)
		}
	})
	t.Run("plain solve clears retention", func(t *testing.T) {
		s := NewScratch()
		HopcroftKarpRetained(b, s)
		i := info(s, len(b.Edges))
		HopcroftKarpScratch(b, s) // non-retained solve overwrites the arena
		if _, err := RepairHK(b, s, i); !errors.Is(err, ErrRepairNoBase) {
			t.Fatalf("after plain solve: err = %v, want ErrRepairNoBase", err)
		}
	})
	t.Run("stale token", func(t *testing.T) {
		s := NewScratch()
		HopcroftKarpRetained(b, s)
		old := info(s, len(b.Edges))
		HopcroftKarpRetained(mutateSuffix(b, 1, rng), s) // a later retained solve
		if _, err := RepairHK(b, s, old); !errors.Is(err, ErrRepairStale) {
			t.Fatalf("stale: err = %v, want ErrRepairStale", err)
		}
	})
	t.Run("foreign scratch", func(t *testing.T) {
		s1, s2 := NewScratch(), NewScratch()
		HopcroftKarpRetained(b, s1)
		HopcroftKarpRetained(b, s2)
		// Tokens are globally unique, so s1's info can never validate on s2.
		if _, err := RepairHK(b, s2, info(s1, len(b.Edges))); !errors.Is(err, ErrRepairStale) {
			t.Fatalf("foreign: err = %v, want ErrRepairStale", err)
		}
	})
	t.Run("inconsistent info", func(t *testing.T) {
		s := NewScratch()
		HopcroftKarpRetained(b, s)
		for _, bad := range []RepairInfo{
			{BaseToken: s.SolveToken(), KeptVerts: 0, KeptEdges: len(b.Edges) + 1},
			{BaseToken: s.SolveToken(), KeptVerts: b.N + 1, KeptEdges: 0},
			{BaseToken: s.SolveToken(), KeptVerts: -1, KeptEdges: 0},
			{BaseToken: s.SolveToken(), KeptVerts: 0, KeptEdges: -1},
		} {
			if _, err := RepairHK(b, s, bad); !errors.Is(err, ErrRepairInfo) {
				t.Fatalf("info %+v: err = %v, want ErrRepairInfo", bad, err)
			}
		}
	})
	t.Run("recoverable after error", func(t *testing.T) {
		s := NewScratch()
		HopcroftKarpRetained(b, s)
		if _, err := RepairHK(b, s, RepairInfo{BaseToken: 0}); err == nil {
			t.Fatal("want error")
		}
		// The arena still holds the baseline: a valid repair still works.
		got, err := RepairHK(b, s, info(s, len(b.Edges)))
		if err != nil {
			t.Fatalf("after rejected call: %v", err)
		}
		sameResult(t, "recovered", got, HopcroftKarp(b))
	})
}

// TestRetainedMatchingOwnership documents the arena ownership of retained
// results: the next solve on the same scratch overwrites the previously
// returned matching.
func TestRetainedMatchingOwnership(t *testing.T) {
	b, rng := fuzzBip(5)
	s := NewScratch()
	first := HopcroftKarpRetained(b, s)
	m1 := first.M
	sizeBefore := m1.Size()
	next := mutateSuffix(b, 0, rng)
	second := HopcroftKarpRetained(next, s)
	if second.M != m1 {
		t.Fatal("retained solves should reuse the arena matching")
	}
	_ = sizeBefore // the overwrite is the point; nothing else to assert
}
