package bipartite

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// fuzzBip decodes a small random bipartite instance from a seed.
func fuzzBip(seed int64) (*Bip, *rand.Rand) {
	rng := rand.New(rand.NewSource(seed))
	nl, nr := 2+rng.Intn(10), 2+rng.Intn(10)
	inst := graph.RandomBipartite(nl, nr, 2+rng.Intn(3*(nl+nr)), 16, rng)
	side := make([]bool, nl+nr)
	for v := nl; v < nl+nr; v++ {
		side[v] = true
	}
	return &Bip{N: nl + nr, Side: side, Edges: inst.G.Edges()}, rng
}

// FuzzWarmStartHK feeds the seeded solver arbitrary — including invalid —
// seeds and checks the warm-start contract: the result is always a valid
// matching of the instance with exactly the cold solver's cardinality
// (both are maximum), regardless of how stale or malformed the seed list
// is. The script bytes select seed edges, corrupt endpoints, and mismatch
// edge indices, modelling a previous pair's matching whose edges partially
// survived.
func FuzzWarmStartHK(f *testing.F) {
	f.Add(int64(1), []byte{0, 1, 2})
	f.Add(int64(2), []byte{0xff, 0x01, 0x80, 0x40})
	f.Add(int64(3), []byte{})
	f.Fuzz(func(t *testing.T, seed int64, script []byte) {
		b, _ := fuzzBip(seed)
		if len(b.Edges) == 0 {
			t.Skip()
		}
		var seeds []Seed
		for i := 0; i+1 < len(script); i += 2 {
			ei := int(script[i]) % len(b.Edges)
			e := b.Edges[ei]
			l, r := e.U, e.V
			if b.Side[l] {
				l, r = r, l
			}
			sd := Seed{L: int32(l), R: int32(r), EdgeIndex: int32(ei)}
			// Corrupt a fraction of the seeds: wrong edge index, swapped
			// sides, out-of-range ids, endpoint-only seeds the solver must
			// resolve itself (including unresolvable non-adjacent pairs).
			switch script[i+1] % 7 {
			case 1:
				sd.EdgeIndex = int32(script[i+1]) // likely mismatched
			case 2:
				sd.L, sd.R = sd.R, sd.L
			case 3:
				sd.L = int32(b.N) + int32(script[i+1])
			case 4:
				sd.R = -1
			case 5:
				sd.EdgeIndex = -1 // adjacency-resolved endpoint seed
			case 6:
				sd.EdgeIndex = -1 // likely non-adjacent: must be skipped
				sd.R = int32(b.Edges[int(script[i+1])%len(b.Edges)].V)
				if !b.Side[sd.R] {
					sd.R = sd.L
				}
			}
			seeds = append(seeds, sd)
		}

		cold := HopcroftKarp(b)
		warm := HopcroftKarpSeeded(b, NewScratch(), seeds)
		if warm.M.Size() != cold.M.Size() {
			t.Fatalf("warm cardinality %d != cold %d (seeds %v)",
				warm.M.Size(), cold.M.Size(), seeds)
		}
		if err := warm.M.Validate(); err != nil {
			t.Fatalf("warm matching invalid: %v", err)
		}
		// Every matched edge must be a real edge of the instance with the
		// instance's weight (the seed's EdgeIndex feeds weight recovery).
		have := map[graph.Key]graph.Weight{}
		for _, e := range b.Edges {
			have[e.EdgeKey()] = e.W
		}
		for _, e := range warm.M.Edges() {
			w, ok := have[e.EdgeKey()]
			if !ok {
				t.Fatalf("warm matching contains non-edge %v", e)
			}
			if w != e.W {
				t.Fatalf("warm matching edge %v carries weight %d, instance has %d", e, e.W, w)
			}
		}
	})
}

// TestSeededHKWarmStartSavesPhases seeds the solver with the full cold
// solution and checks the re-solve pays zero phases — the property the
// per-class warm start exploits when consecutive pairs coincide.
func TestSeededHKWarmStartSavesPhases(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		b, _ := fuzzBip(seed)
		cold := HopcroftKarpScratch(b, NewScratch())
		var seeds []Seed
		for i, e := range b.Edges {
			l, r := e.U, e.V
			if b.Side[l] {
				l, r = r, l
			}
			if cold.M.Has(e.U, e.V) {
				seeds = append(seeds, Seed{L: int32(l), R: int32(r), EdgeIndex: int32(i)})
			}
		}
		warm := HopcroftKarpSeeded(b, NewScratch(), seeds)
		if warm.M.Size() != cold.M.Size() {
			t.Fatalf("seed %d: warm size %d != cold %d", seed, warm.M.Size(), cold.M.Size())
		}
		if warm.Phases != 0 {
			t.Errorf("seed %d: full seed still ran %d phases", seed, warm.Phases)
		}
	}
}

// TestSeededHKEmptySeedIsCold checks a nil seed list reproduces the cold
// solver exactly (same matching, same phase count): cold is the zero point
// of the warm-start axis, which the differential suite relies on.
func TestSeededHKEmptySeedIsCold(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		b, _ := fuzzBip(seed)
		cold := HopcroftKarpScratch(b, NewScratch())
		warm := HopcroftKarpSeeded(b, NewScratch(), nil)
		if warm.Phases != cold.Phases || warm.M.Size() != cold.M.Size() {
			t.Fatalf("seed %d: nil-seed run (size %d, phases %d) != cold (size %d, phases %d)",
				seed, warm.M.Size(), warm.Phases, cold.M.Size(), cold.Phases)
		}
		ce, we := cold.M.Edges(), warm.M.Edges()
		for i := range ce {
			if ce[i] != we[i] {
				t.Fatalf("seed %d: edge %d differs: %v vs %v", seed, i, ce[i], we[i])
			}
		}
	}
}

// FuzzRepairHK is the differential fuzzer of the incremental repair: from
// each (seed, script) it derives a chain of instances sharing edge-list
// prefixes, solves the chain through RepairHK, and checks bit-identity —
// matching and phase count — against a from-scratch solve of every
// instance (Invariant 21). Script bytes pick the shared-prefix cuts and
// the regenerated suffix edges; occasional corrupted infos assert that a
// broken baseline surfaces as a checked ErrRepair*, never a wrong result.
func FuzzRepairHK(f *testing.F) {
	f.Add(int64(1), []byte{4, 7, 2})
	f.Add(int64(2), []byte{0xff, 0x00, 0x80, 0x13, 0x44})
	f.Add(int64(3), []byte{})
	f.Add(int64(9), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Fuzz(func(t *testing.T, seed int64, script []byte) {
		cur, rng := fuzzBip(seed)
		s := NewScratch()
		prev := HopcroftKarpRetained(cur, s)
		cold := HopcroftKarp(cur)
		if prev.Phases != cold.Phases || prev.M.Size() != cold.M.Size() {
			t.Fatalf("retained differs from cold: phases %d/%d size %d/%d",
				prev.Phases, cold.Phases, prev.M.Size(), cold.M.Size())
		}
		for i := 0; i+1 < len(script); i += 2 {
			ke := int(script[i]) % (len(cur.Edges) + 1)
			next := &Bip{N: cur.N, Side: cur.Side, Edges: append([]graph.Edge(nil), cur.Edges[:ke]...)}
			for j := 0; j < int(script[i+1])%6; j++ {
				u, v := rng.Intn(next.N), rng.Intn(next.N)
				if next.Side[u] == next.Side[v] {
					continue
				}
				next.Edges = append(next.Edges, graph.Edge{U: u, V: v, W: graph.Weight(1 + rng.Intn(9))})
			}
			kv := 0
			for _, e := range next.Edges[:ke] {
				kv = max(kv, max(e.U, e.V)+1)
			}
			info := RepairInfo{BaseToken: s.SolveToken(), KeptVerts: kv, KeptEdges: ke}
			if script[i+1]&0x80 != 0 {
				// Corrupt the baseline token: must be rejected, and the
				// retained baseline must survive for the real call below.
				if _, err := RepairHK(next, s, RepairInfo{BaseToken: info.BaseToken + 1, KeptVerts: kv, KeptEdges: ke}); err == nil {
					t.Fatal("corrupted token accepted")
				}
			}
			got, err := RepairHK(next, s, info)
			if err != nil {
				t.Fatalf("step %d: RepairHK: %v", i/2, err)
			}
			want := HopcroftKarpScratch(next, NewScratch())
			if got.Phases != want.Phases {
				t.Fatalf("step %d: phases %d, want %d", i/2, got.Phases, want.Phases)
			}
			ge, we := got.M.Edges(), want.M.Edges()
			if len(ge) != len(we) {
				t.Fatalf("step %d: %d edges, want %d", i/2, len(ge), len(we))
			}
			for k := range ge {
				if ge[k] != we[k] {
					t.Fatalf("step %d: edge %d is %v, want %v", i/2, k, ge[k], we[k])
				}
			}
			if err := got.M.Validate(); err != nil {
				t.Fatalf("step %d: invalid matching: %v", i/2, err)
			}
			cur = next
		}
	})
}
