package bipartite

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// TestIteratorDFSMatchesRescan is the solver half of Invariant 26: the
// iterator-per-phase DFS must return the bit-identical result — same
// matching edges, same weight, same phase count — as the retained
// cursor-free reference on every instance shape. The equivalence is not
// statistical: within a phase the cursor skips only edges already proven
// dead (right endpoints can only stay matched, dist only moves to inf),
// so both forms find the same augmenting paths in the same order.
func TestIteratorDFSMatchesRescan(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	shapes := []struct {
		name       string
		nl, nr, m  int
		iterations int
	}{
		{"tiny", 4, 4, 8, 50},
		{"square-sparse", 24, 24, 60, 40},
		{"square-dense", 24, 24, 300, 40},
		{"wide", 12, 40, 160, 40},
		{"tall", 40, 12, 160, 40},
		{"near-perfect", 64, 64, 512, 20},
		{"supersparse", 50, 50, 25, 40},
	}
	for _, sh := range shapes {
		t.Run(sh.name, func(t *testing.T) {
			for it := 0; it < sh.iterations; it++ {
				b := randomBip(t, sh.nl, sh.nr, sh.m, rng)
				fast := HopcroftKarpScratch(b, NewScratch())
				ref := HopcroftKarpRescanScratch(b, NewScratch())
				if fast.Phases != ref.Phases {
					t.Fatalf("iteration %d: phases %d (iterator) vs %d (rescan)",
						it, fast.Phases, ref.Phases)
				}
				fe, re := fast.M.Edges(), ref.M.Edges()
				if len(fe) != len(re) {
					t.Fatalf("iteration %d: %d matched edges (iterator) vs %d (rescan)",
						it, len(fe), len(re))
				}
				for i := range fe {
					if fe[i] != re[i] {
						t.Fatalf("iteration %d: edge %d differs: %v (iterator) vs %v (rescan)",
							it, i, fe[i], re[i])
					}
				}
			}
		})
	}
}

// TestIteratorDFSScratchReuse re-solves a sequence of different-shaped
// instances through one arena: the per-phase cursor array is resized and
// reset with the rest of the scratch state, so a stale cursor from a
// larger previous instance can never leak into a smaller one.
func TestIteratorDFSScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	s, sRef := NewScratch(), NewScratch()
	for it := 0; it < 60; it++ {
		nl := 2 + rng.Intn(40)
		nr := 2 + rng.Intn(40)
		m := 1 + rng.Intn(6*(nl+nr))
		b := randomBip(t, nl, nr, m, rng)
		fast := HopcroftKarpScratch(b, s)
		ref := HopcroftKarpRescanScratch(b, sRef)
		if fast.Phases != ref.Phases || fast.M.Weight() != ref.M.Weight() {
			t.Fatalf("iteration %d: (phases, weight) = (%d, %d) iterator vs (%d, %d) rescan",
				it, fast.Phases, fast.M.Weight(), ref.Phases, ref.M.Weight())
		}
		fe, re := fast.M.Edges(), ref.M.Edges()
		for i := range fe {
			if fe[i] != re[i] {
				t.Fatalf("iteration %d: edge %d differs: %v vs %v", it, i, fe[i], re[i])
			}
		}
	}
}

// TestFunnelBip pins the gadget's intended structure — every source
// augments in ONE phase, so the whole instance saturates with Phases == 1
// and the rescan form demonstrably pays its Θ(m·p) re-entry bill inside
// that phase — and extends the iterator ≡ rescan differential to the
// seeded (warm-start) entry points.
func TestFunnelBip(t *testing.T) {
	for _, mp := range [][2]int{{3, 3}, {8, 2}, {2, 8}, {64, 64}} {
		m, p := mp[0], mp[1]
		bip, seeds := FunnelInstance(m, p)
		fast := HopcroftKarpSeeded(bip, NewScratch(), seeds)
		ref := HopcroftKarpRescanSeeded(bip, NewScratch(), seeds)
		if fast.Phases != 1 || ref.Phases != 1 {
			t.Fatalf("funnel(%d,%d): phases %d (iterator) / %d (rescan), want 1 — the gadget no longer funnels every source through one phase",
				m, p, fast.Phases, ref.Phases)
		}
		want := 1 + p + m // c, the a-blockers, every source
		if got := len(fast.M.Edges()); got != want {
			t.Fatalf("funnel(%d,%d): %d matched edges, want %d (saturated left side)", m, p, got, want)
		}
		fe, re := fast.M.Edges(), ref.M.Edges()
		if len(fe) != len(re) {
			t.Fatalf("funnel(%d,%d): %d edges (iterator) vs %d (rescan)", m, p, len(fe), len(re))
		}
		for i := range fe {
			if fe[i] != re[i] {
				t.Fatalf("funnel(%d,%d): edge %d differs: %v vs %v", m, p, i, fe[i], re[i])
			}
		}
	}
}

// BenchmarkHKIterDFS and BenchmarkHKRescanDFS are the per-candidate
// micro-benchmark pair of the PR 9 solver pass, gated same-run in CI
// (benchguard -speedup BenchmarkHKIterDFS/BenchmarkHKRescanDFS>=1.15):
// identical instances, identical seeds, identical arenas, the DFS
// strategy the only difference.
func BenchmarkHKIterDFS(b *testing.B) {
	bip, seeds := FunnelInstance(512, 512)
	s := NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HopcroftKarpSeeded(bip, s, seeds)
	}
}

func BenchmarkHKRescanDFS(b *testing.B) {
	bip, seeds := FunnelInstance(512, 512)
	s := NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HopcroftKarpRescanSeeded(bip, s, seeds)
	}
}

// The random-tier pair records the honest flat case alongside the funnel
// gate: without re-entrant interiors the two DFS forms should tie (the
// deferred cursor write keeps the iterator's bookkeeping off the scan
// loop), so this pair is uploaded in the artifact but not gated.
func BenchmarkHKIterDFSRandom(b *testing.B) {
	bip := randomDenseBip(2048, 8, 3)
	s := NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HopcroftKarpScratch(bip, s)
	}
}

func BenchmarkHKRescanDFSRandom(b *testing.B) {
	bip := randomDenseBip(2048, 8, 3)
	s := NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HopcroftKarpRescanScratch(bip, s)
	}
}

// randomDenseBip is a plain random near-square instance (no adversarial
// structure) for the flat-case pair above.
func randomDenseBip(n, degree int, seed int64) *Bip {
	rng := rand.New(rand.NewSource(seed))
	side := make([]bool, 2*n)
	for i := n; i < 2*n; i++ {
		side[i] = true
	}
	b := &Bip{N: 2 * n, Side: side}
	seen := make(map[[2]int]bool, n*degree)
	for len(b.Edges) < n*degree {
		u := rng.Intn(n)
		v := n + rng.Intn(n)
		if seen[[2]int{u, v}] {
			continue
		}
		seen[[2]int{u, v}] = true
		b.Edges = append(b.Edges, graph.Edge{U: u, V: v, W: 1})
	}
	return b
}
