package bipartite

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/matchutil"
	"repro/internal/stream"
)

// randomBip generates a random bipartite instance with its side array.
func randomBip(t *testing.T, nl, nr, m int, rng *rand.Rand) *Bip {
	t.Helper()
	inst := graph.RandomBipartite(nl, nr, m, 10, rng)
	side := make([]bool, nl+nr)
	for v := nl; v < nl+nr; v++ {
		side[v] = true
	}
	b, err := NewBip(nl+nr, side, inst.G.Edges())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewBipValidation(t *testing.T) {
	side := []bool{false, false}
	if _, err := NewBip(2, side, []graph.Edge{{U: 0, V: 1, W: 1}}); err == nil {
		t.Error("same-side edge accepted")
	}
	if _, err := NewBip(3, side, nil); err == nil {
		t.Error("short side accepted")
	}
}

func TestHopcroftKarpAgainstExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		b := randomBip(t, 8, 8, 24, rng)
		got := HopcroftKarp(b)
		if err := got.M.Validate(); err != nil {
			t.Fatal(err)
		}
		g, err := graph.FromEdges(b.N, b.Edges)
		if err != nil {
			t.Fatal(err)
		}
		want, err := matchutil.MaxCardinalityExact(g)
		if err != nil {
			t.Fatal(err)
		}
		if got.M.Size() != want.Size() {
			t.Fatalf("trial %d: HK %d != exact %d", trial, got.M.Size(), want.Size())
		}
	}
}

func TestHopcroftKarpPerfectMatching(t *testing.T) {
	// Complete bipartite K_{5,5} has a perfect matching.
	rng := rand.New(rand.NewSource(2))
	b := randomBip(t, 5, 5, 25, rng)
	if got := HopcroftKarp(b); got.M.Size() != 5 {
		t.Errorf("size = %d, want 5", got.M.Size())
	}
}

func TestApproxGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		b := randomBip(t, 30, 30, 200, rng)
		exact := HopcroftKarp(b)
		for _, delta := range []float64{0.5, 0.25, 0.1} {
			approx := Approx(b, delta)
			if float64(approx.M.Size()) < (1-delta)*float64(exact.M.Size()) {
				t.Fatalf("trial %d delta %v: approx %d < (1-δ)·%d",
					trial, delta, approx.M.Size(), exact.M.Size())
			}
			if approx.Phases > exact.Phases && exact.Phases > 0 {
				t.Fatalf("approx used more phases (%d) than exact (%d)", approx.Phases, exact.Phases)
			}
		}
	}
}

func TestApproxZeroDeltaIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	b := randomBip(t, 20, 20, 100, rng)
	if Approx(b, 0).M.Size() != HopcroftKarp(b).M.Size() {
		t.Error("delta=0 is not exact")
	}
}

func TestStreamingMatchesHKClosely(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		b := randomBip(t, 50, 50, 600, rng)
		exact := HopcroftKarp(b)
		s := stream.FromEdges(b.Edges)
		res := Streaming(b.N, b.Side, s, 0.2)
		if err := res.M.Validate(); err != nil {
			t.Fatal(err)
		}
		if float64(res.M.Size()) < 0.8*float64(exact.M.Size()) {
			t.Fatalf("trial %d: streaming %d below 0.8·%d", trial, res.M.Size(), exact.M.Size())
		}
		if res.Passes < 1 {
			t.Error("no passes recorded")
		}
	}
}

func TestStreamingPassBudgetIndependentOfN(t *testing.T) {
	// O_δ(1) shape: pass count must not grow with n.
	rng := rand.New(rand.NewSource(6))
	var passes []int
	for _, n := range []int{40, 80, 160} {
		b := randomBip(t, n, n, 6*n, rng)
		s := stream.FromEdges(b.Edges)
		res := Streaming(b.N, b.Side, s, 0.25)
		passes = append(passes, res.Passes)
	}
	// The budget is 1 + rounds·layers with rounds ≤ 4·ceil(1/δ); just
	// assert the hard cap and rough flatness.
	limit := 1 + 4*4*4
	for i, p := range passes {
		if p > limit {
			t.Errorf("n index %d: %d passes exceeds budget %d", i, p, limit)
		}
	}
}

func TestStreamingOnAugChain(t *testing.T) {
	// Bipartite path of length 3: greedy can pick the middle edge; the
	// augmenting rounds must fix it to the perfect matching.
	side := []bool{false, true, false, true}
	edges := []graph.Edge{
		{U: 1, V: 2, W: 1}, // middle arrives first -> greedy picks it
		{U: 0, V: 1, W: 1},
		{U: 2, V: 3, W: 1},
	}
	res := Streaming(4, side, stream.FromEdges(edges), 0.2)
	if res.M.Size() != 2 {
		t.Errorf("size = %d, want 2 after augmenting", res.M.Size())
	}
}

func TestMPCMatchesHKCloselyAndCountsRounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := randomBip(t, 60, 60, 900, rng)
	exact := HopcroftKarp(b)
	res, err := MPC(b, 0.2, 4, 4*b.N, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.M.Validate(); err != nil {
		t.Fatal(err)
	}
	if float64(res.M.Size()) < 0.8*float64(exact.M.Size()) {
		t.Fatalf("MPC %d below 0.8·%d", res.M.Size(), exact.M.Size())
	}
	if res.Sim.Rounds() == 0 {
		t.Error("no rounds counted")
	}
	if res.MaximalRounds+res.AugmentRounds != res.Sim.Rounds() {
		t.Errorf("round split %d+%d != total %d",
			res.MaximalRounds, res.AugmentRounds, res.Sim.Rounds())
	}
}

func TestMPCMemoryEnforced(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	b := randomBip(t, 40, 40, 600, rng)
	// Absurdly small memory must trip the accountant.
	if _, err := MPC(b, 0.2, 2, 5, rng); err == nil {
		t.Error("tiny memory accepted")
	}
}

func TestMPCPerfectOnDisjointEdges(t *testing.T) {
	// Trivial instance: n disjoint edges; maximal stage alone must find all.
	n := 20
	side := make([]bool, 2*n)
	edges := make([]graph.Edge, 0, n)
	for i := 0; i < n; i++ {
		side[2*i+1] = true
		edges = append(edges, graph.Edge{U: 2 * i, V: 2*i + 1, W: 1})
	}
	b, err := NewBip(2*n, side, edges)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	res, err := MPC(b, 0.5, 3, 10*n, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.M.Size() != n {
		t.Errorf("size = %d, want %d", res.M.Size(), n)
	}
}

func TestKoenigCertifiesHopcroftKarp(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 25; trial++ {
		b := randomBip(t, 25, 25, 220, rng)
		res := HopcroftKarp(b)
		if !CertifyMaximum(b, res.M) {
			t.Fatalf("trial %d: König certificate failed for HK output", trial)
		}
	}
}

func TestKoenigRejectsNonMaximum(t *testing.T) {
	// A maximal-but-not-maximum matching must fail certification.
	side := []bool{false, true, false, true}
	edges := []graph.Edge{
		{U: 1, V: 2, W: 1},
		{U: 0, V: 1, W: 1},
		{U: 2, V: 3, W: 1},
	}
	b, err := NewBip(4, side, edges)
	if err != nil {
		t.Fatal(err)
	}
	m := graph.NewMatching(4)
	if err := m.Add(graph.Edge{U: 1, V: 2, W: 1}); err != nil {
		t.Fatal(err)
	}
	if CertifyMaximum(b, m) {
		t.Error("non-maximum matching certified")
	}
}

func TestVertexCoverCoversAllEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		b := randomBip(t, 15, 20, 120, rng)
		res := HopcroftKarp(b)
		cover := VertexCover(b, res.M)
		if !IsVertexCover(b, cover) {
			t.Fatalf("trial %d: König set is not a cover", trial)
		}
		if len(cover) != res.M.Size() {
			t.Fatalf("trial %d: |cover| %d != |M| %d", trial, len(cover), res.M.Size())
		}
	}
}

func TestStreamingPreservesEdgeWeights(t *testing.T) {
	// Regression: the Section 4 reduction consumes the solver's matching in
	// symmetric differences, so edges must carry their true weights (a unit
	// weight here once silently zeroed every reduction gain).
	side := []bool{false, true, false, true}
	edges := []graph.Edge{
		{U: 0, V: 1, W: 70},
		{U: 2, V: 3, W: 90},
	}
	res := Streaming(4, side, stream.FromEdges(edges), 0.2)
	if res.M.Weight() != 160 {
		t.Errorf("streaming matching weight = %d, want 160", res.M.Weight())
	}
}

func TestStreamingAugmentedEdgesKeepWeights(t *testing.T) {
	// Greedy picks the middle edge; the augmenting round replaces it with
	// the outer edges, which must keep their true weights.
	side := []bool{false, true, false, true}
	edges := []graph.Edge{
		{U: 1, V: 2, W: 10}, // arrives first
		{U: 0, V: 1, W: 30},
		{U: 2, V: 3, W: 50},
	}
	res := Streaming(4, side, stream.FromEdges(edges), 0.2)
	if res.M.Size() != 2 {
		t.Fatalf("size = %d, want 2", res.M.Size())
	}
	if res.M.Weight() != 80 {
		t.Errorf("weight = %d, want 80 (real weights through augmentation)", res.M.Weight())
	}
}

func TestMPCPreservesEdgeWeights(t *testing.T) {
	side := []bool{false, true, false, true}
	edges := []graph.Edge{
		{U: 0, V: 1, W: 70},
		{U: 2, V: 3, W: 90},
	}
	b, err := NewBip(4, side, edges)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MPC(b, 0.2, 2, 100, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if res.M.Weight() != 160 {
		t.Errorf("MPC matching weight = %d, want 160", res.M.Weight())
	}
}

func TestMPCCommunicationAccounted(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	b := randomBip(t, 40, 40, 500, rng)
	res, err := MPC(b, 0.25, 4, 8*b.N, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sim.TotalComm() == 0 {
		t.Error("no communication recorded")
	}
	if res.Sim.PeakRoundComm() > res.Sim.TotalComm() {
		t.Error("peak round comm exceeds total")
	}
}
