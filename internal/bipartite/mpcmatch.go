package bipartite

import (
	"math"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/mpc"
)

// MPCResult reports the MPC solver's matching together with the simulator
// that accumulated its round and memory usage.
type MPCResult struct {
	M   *graph.Matching
	Sim *mpc.Simulator
	// MaximalRounds and AugmentRounds split Sim.Rounds() into the two
	// stages for the overhead experiments.
	MaximalRounds, AugmentRounds int
}

// MPC computes a large matching of a bipartite graph in the simulated MPC
// model with O(m/n) machines and near-linear memory per machine. It is the
// round-counted stand-in for the [GGK+18]/[ABB+19] subroutine of Theorem
// 1.2(1). Stage 1 builds a maximal matching by LMSV11-style filtering: each
// iteration costs two rounds (machines propose greedy local matchings on
// their partitions restricted to free vertices; a coordinator merges).
// Stage 2 improves toward (1−δ) by growing maximal sets of vertex-disjoint
// augmenting paths of length ≤ 2·ceil(1/δ)−1, one round per unmatched layer.
//
// The round counts are the quantity Theorem 1.2(1) is about: the weighted
// reduction must cost only a constant factor over whatever this subroutine
// uses. Memory loads are validated against the simulator's S; exceeding it
// is reported via the error.
func MPC(b *Bip, delta float64, machines, memPerMachine int, rng *rand.Rand) (MPCResult, error) {
	if delta <= 0 || delta > 1 {
		delta = 0.1
	}
	sim, err := mpc.New(machines, memPerMachine)
	if err != nil {
		return MPCResult{}, err
	}
	res := MPCResult{M: graph.NewMatching(b.N), Sim: sim}

	parts := mpc.PartitionEdges(b.Edges, machines, rng)

	// Stage 1: maximal matching by filtering.
	for {
		// Round A: local greedy proposals on free-free edges.
		sim.NextRound()
		res.MaximalRounds++
		var proposals []graph.Edge
		anyEdge := false
		for _, part := range parts {
			if err := sim.Use(len(part) + b.N/machines + 1); err != nil {
				return res, err
			}
			local := graph.NewMatching(b.N)
			for _, e := range part {
				if res.M.IsMatched(e.U) || res.M.IsMatched(e.V) {
					continue
				}
				anyEdge = true
				if !local.IsMatched(e.U) && !local.IsMatched(e.V) {
					mustAdd(local, e)
				}
			}
			proposals = append(proposals, local.Edges()...)
		}
		if !anyEdge {
			break
		}
		// Round B: coordinator merges proposals greedily and broadcasts.
		// Each machine's proposal transfer and the matched-set broadcast
		// are charged to the communication accountant.
		if err := sim.Send(len(proposals)); err != nil {
			return res, err
		}
		sim.NextRound()
		res.MaximalRounds++
		if err := sim.Use(len(proposals)); err != nil {
			return res, err
		}
		if err := sim.Send(res.M.Size() + len(proposals)); err != nil {
			return res, err
		}
		for _, e := range proposals {
			if !res.M.IsMatched(e.U) && !res.M.IsMatched(e.V) {
				mustAdd(res.M, e)
			}
		}
	}

	// Stage 2: augmenting-path rounds.
	ell := int(math.Ceil(1 / delta))
	layers := ell // (2*ell-1+1)/2 unmatched layers per sweep
	maxSweeps := 4 * ell
	peak := 0
	charged := 0
	for sweep := 0; sweep < maxSweeps; sweep++ {
		charged = 0
		completed := growAugmentingPaths(b.N, b.Side, res.M, layers, func() {
			sim.NextRound()
			res.AugmentRounds++
		}, func(visit func(l, r int, w graph.Weight)) {
			for _, part := range parts {
				// Each machine scans its partition against the broadcast
				// frontier; load = partition + frontier state.
				if err := sim.Use(len(part) + b.N/machines + 1); err != nil {
					return
				}
				for _, e := range part {
					l, r := orient(b.Side, e)
					visit(l, r, e.W)
				}
			}
		}, &peak, func(int) {}, &charged)
		if len(completed) == 0 {
			break
		}
		// One round for the coordinator to apply the augmentations and
		// broadcast the updated matching.
		sim.NextRound()
		res.AugmentRounds++
		if err := sim.Use(res.M.Size() + pathStorage(completed)); err != nil {
			return res, err
		}
		if applyAugPaths(res.M, completed) == 0 {
			break
		}
	}
	return res, nil
}
