package bipartite

// Incremental Hopcroft–Karp repair: the solver-side twin of the
// differential layered-graph builder (layered.BuildDelta). The amortised
// reduction solves chains of instances that differ from their predecessor
// only in a rebuilt suffix of the edge list (with a stable vertex-id
// prefix, Invariant 19), yet every HopcroftKarpScratch call rebuilds the
// whole CSR adjacency from scratch and allocates a fresh result matching.
// RepairHK patches the retained CSR instead — copying the shared-prefix
// rows and rebuilding only the suffix entries — and then runs the standard
// phase loop from the empty matching over the patched CSR.
//
// Because the patched CSR is byte-identical to the one prepare would build
// (same offsets, same per-row entry order), the phase loop's execution is
// bit-for-bit the cold solve's: the same matching, the same phase count,
// the same tie-breaks (Invariant 21, repair-equals-fresh). Re-augmenting
// from a retained previous matching was considered and rejected: the warm
//-start measurements (PR 3 ledger) showed the reduction's layered graphs
// run ~1 phase per call, so there are no phases to save, and a seeded
// search returns a different (equally maximum) matching, which would break
// the differential suite's bit-identity. The repair's win is the setup
// cost, exactly where the E13 counters located it.

import (
	"errors"
	"math"
	"sync/atomic"

	"repro/internal/faultinject"
	"repro/internal/graph"
)

// RepairHK error conditions. All of them mean the caller broke the repair
// contract; the arena is left untouched (beyond the cleared retention
// token where noted) and the caller must fall back to a full solve.
var (
	// ErrRepairNoBase: the scratch holds no retained solve to patch — the
	// first solve of a chain must use HopcroftKarpRetained.
	ErrRepairNoBase = errors.New("bipartite: RepairHK needs a previous retained solve as baseline")
	// ErrRepairStale: info.BaseToken does not name the scratch's latest
	// retained solve — another solve ran in between, or the info was
	// recorded against a different (foreign) scratch. Tokens are globally
	// unique, so a foreign scratch can never validate by coincidence.
	ErrRepairStale = errors.New("bipartite: RepairHK baseline is stale or foreign")
	// ErrRepairInfo: the kept-prefix descriptor exceeds the baseline or the
	// current instance (more kept edges/vertices than either has).
	ErrRepairInfo = errors.New("bipartite: RepairHK info inconsistent with baseline or instance")
)

// solveTokens issues globally unique retention tokens, so a RepairInfo
// recorded against one Scratch can never validate against another.
var solveTokens atomic.Uint64

// RepairInfo describes the byte-shared prefix between the instance of the
// scratch's latest retained solve and the instance being solved now. The
// caller asserts (the layered side proves it via DeltaInfo / Invariant 19)
// that b.Edges[:KeptEdges] is identical to the baseline's prefix, that
// vertices [0, KeptVerts) have the same identity and side in both
// instances, and that every kept-prefix edge has both endpoints under
// KeptVerts. RepairHK checks everything checkable (token, bounds) and
// returns an ErrRepair* sentinel instead of a wrong matching.
//
// The contract is deliberately round-agnostic: BaseToken names a solve, not
// a round, and solveTokens issues globally unique values, so a baseline
// recorded before a bipartition redraw stays patchable afterwards — the
// chain extends across rounds for free once the layered side can prove a
// shared prefix across the redraw (layered.RoundChainer, PR 7: stability of
// a kept segment's bucket implies its side entries are unchanged too, which
// is exactly the "same identity and side" clause above). A baseline that
// cannot be proven shared simply arrives with a smaller — possibly zero —
// kept prefix; staleness is still caught by the token check alone.
type RepairInfo struct {
	// BaseToken is the Scratch.SolveToken observed right after the baseline
	// solve.
	BaseToken uint64
	// KeptVerts: vertex ids [0, KeptVerts) are shared with the baseline.
	KeptVerts int
	// KeptEdges: b.Edges[:KeptEdges] is byte-identical to the baseline's
	// edge-list prefix.
	KeptEdges int
}

// SolveToken returns the token of the scratch's latest retained solve, or 0
// when none is retained (no retained solve yet, or a non-retained solve ran
// since and overwrote the arena). Callers record it to build the RepairInfo
// of the next solve in the chain.
func (s *Scratch) SolveToken() uint64 { return s.token }

// HopcroftKarpRetained is HopcroftKarpScratch with the solve retained on
// the arena as a repair baseline: the CSR stays valid for a subsequent
// RepairHK (see SolveToken), and the returned matching is owned by the
// arena — valid only until the next solve on s, which resets and refills
// it. The matching itself is identical to HopcroftKarpScratch's.
func HopcroftKarpRetained(b *Bip, s *Scratch) Result {
	if s == nil {
		s = NewScratch()
	}
	s.prepare(b)
	phases := s.run(b, math.MaxInt32, nil)
	return s.retain(b, phases)
}

// RepairHK solves b exactly like HopcroftKarpRetained, but builds the CSR
// by patching the retained baseline instead of from scratch: the rows of
// the KeptVerts shared vertices keep their kept-prefix entries (copied
// without re-deriving orientation), and only the suffix edges
// b.Edges[KeptEdges:] are scanned. The patched CSR is byte-identical to
// what prepare would build, so the returned matching AND phase count are
// bit-for-bit those of a cold solve (Invariant 21); the saving is the
// setup, not the phases. The returned matching is arena-owned, as with
// HopcroftKarpRetained. A non-nil error means the baseline cannot be
// patched (see the ErrRepair* conditions) and the caller should solve via
// HopcroftKarpRetained instead.
func RepairHK(b *Bip, s *Scratch, info RepairInfo) (Result, error) {
	if s == nil || s.token == 0 {
		return Result{}, ErrRepairNoBase
	}
	if info.BaseToken != s.token {
		return Result{}, ErrRepairStale
	}
	// Hazard site (chaos testing): report the retained CSR's token
	// mismatched before the arena is touched, exactly as a real overwrite
	// by a foreign solve would.
	if faultinject.Fire(faultinject.RepairToken) {
		return Result{}, ErrRepairStale
	}
	if info.KeptVerts < 0 || info.KeptVerts > b.N || info.KeptVerts > s.prevN ||
		info.KeptEdges < 0 || info.KeptEdges > len(b.Edges) || info.KeptEdges > s.prevM {
		return Result{}, ErrRepairInfo
	}
	s.patch(b, info)
	phases := s.run(b, math.MaxInt32, nil)
	return s.retain(b, phases), nil
}

// retain records the solve as the arena's repair baseline and hands the
// result back in the arena-owned matching.
func (s *Scratch) retain(b *Bip, phases int) Result {
	s.token = solveTokens.Add(1)
	s.prevN, s.prevM = b.N, len(b.Edges)
	if s.out == nil {
		s.out = new(graph.Matching)
	}
	s.out.FillFromSolver(b.N, b.Side, s.matchL, s.matchR, s.matchEdge, b.Edges)
	return Result{M: s.out, Phases: phases}
}

// patch builds the CSR for b from the retained baseline CSR: per-row
// kept-prefix entries are copied verbatim (rows are filled in edge order,
// so a row's kept entries are exactly its leading entries with edge index
// under KeptEdges), suffix entries are derived from b.Edges[KeptEdges:]
// the way prepare derives all of them. The result lands in the primary
// off/to/eidx arrays via a buffer swap; per-row entry order is kept-prefix
// entries (ascending edge index) followed by suffix entries (ascending),
// i.e. ascending overall — exactly prepare's order.
func (s *Scratch) patch(b *Bip, info RepairInfo) {
	n, m := b.N, len(b.Edges)
	kv, ke := int32(info.KeptVerts), int32(info.KeptEdges)

	// Size the secondary CSR buffers and the per-vertex state. The primary
	// buffers hold the baseline and must not be reallocated here.
	if cap(s.off2) < n+1 {
		s.off2 = make([]int32, n+1)
	}
	s.off2 = s.off2[:n+1]
	if cap(s.to2) < m {
		s.to2 = make([]int32, m)
		s.eidx2 = make([]int32, m)
	}
	s.to2, s.eidx2 = s.to2[:m], s.eidx2[:m]
	s.sizeVerts(n)
	s.queue = s.queue[:0]

	// Suffix degrees first (s.dist doubles as the cursor array, as in
	// prepare), then one pass over the vertices that lays out offsets and
	// copies each kept row's leading sub-KeptEdges entries in the same
	// sweep — kept rows are scanned once, not twice. Vertices at or past
	// KeptVerts have no kept entries by the caller's contract (every
	// kept-prefix edge has both endpoints under KeptVerts).
	off2, cur := s.off2, s.dist
	for v := 0; v < n; v++ {
		cur[v] = 0
	}
	for i := int(ke); i < m; i++ {
		e := b.Edges[i]
		l := e.U
		if b.Side[l] {
			l = e.V
		}
		cur[l]++
	}
	pos := int32(0)
	for v := int32(0); v < int32(n); v++ {
		off2[v] = pos
		if v < kv {
			lo, hi := s.off[v], s.off[v+1]
			if lo < hi && s.eidx[hi-1] < ke {
				// Whole row kept (entries ascend by edge index): bulk copy.
				pos += int32(copy(s.to2[pos:], s.to[lo:hi]))
				copy(s.eidx2[off2[v]:], s.eidx[lo:hi])
			} else {
				for j := lo; j < hi && s.eidx[j] < ke; j++ {
					s.to2[pos] = s.to[j]
					s.eidx2[pos] = s.eidx[j]
					pos++
				}
			}
		}
		sd := cur[v]
		cur[v] = pos // suffix cursor: entries land after the kept ones
		pos += sd
	}
	off2[n] = pos
	for i := int(ke); i < m; i++ {
		e := b.Edges[i]
		l, r := e.U, e.V
		if b.Side[l] {
			l, r = r, l
		}
		s.to2[cur[l]] = int32(r)
		s.eidx2[cur[l]] = int32(i)
		cur[l]++
	}

	s.off, s.off2 = s.off2, s.off
	s.to, s.to2 = s.to2, s.to
	s.eidx, s.eidx2 = s.eidx2, s.eidx
}
