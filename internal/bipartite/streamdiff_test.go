package bipartite

// Invariant 27 (bipartite half): the flat chain-table grower behind
// StreamingOpts is bit-identical to the retained naive map-based form —
// same matching edges, same pass count (which also cross-checks the
// stream-authoritative counter against the naive hand count), same peak
// stored-edge charge, same accountant peaks.

import (
	"math/rand"
	"testing"

	"repro/internal/stream"
)

func TestStreamingFlatNaiveBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	scratch := &StreamScratch{} // reused across every case on purpose
	for trial := 0; trial < 25; trial++ {
		nl, nr := 4+rng.Intn(20), 4+rng.Intn(20)
		b := randomBip(t, nl, nr, 2+rng.Intn(6*(nl+nr)), rng)
		for _, delta := range []float64{0.5, 0.2, 0.1} {
			var acctF, acctN stream.Accountant
			flat := StreamingOpts(b.N, b.Side, stream.FromEdges(b.Edges), delta,
				StreamOptions{Account: &acctF, Scratch: scratch})
			naive := StreamingOpts(b.N, b.Side, stream.FromEdges(b.Edges), delta,
				StreamOptions{Account: &acctN, Naive: true})

			if flat.M.Size() != naive.M.Size() {
				t.Fatalf("trial %d delta %g: size %d vs %d",
					trial, delta, flat.M.Size(), naive.M.Size())
			}
			fe, ne := flat.M.Edges(), naive.M.Edges()
			for i := range fe {
				if fe[i] != ne[i] {
					t.Fatalf("trial %d delta %g: edge %d: %v vs %v",
						trial, delta, i, fe[i], ne[i])
				}
			}
			// Satellite (b): the flat form reports the stream's own pass
			// counter; the naive form hand-counts. Any drift between the two
			// accounting schemes fails here.
			if flat.Passes != naive.Passes {
				t.Fatalf("trial %d delta %g: pass accounting drifted: stream says %d, hand count says %d",
					trial, delta, flat.Passes, naive.Passes)
			}
			if flat.PeakStored != naive.PeakStored {
				t.Fatalf("trial %d delta %g: peak stored %d vs %d",
					trial, delta, flat.PeakStored, naive.PeakStored)
			}
			if acctF.Peak() != acctN.Peak() {
				t.Fatalf("trial %d delta %g: accountant peak %d vs %d",
					trial, delta, acctF.Peak(), acctN.Peak())
			}
		}
	}
}

// TestStreamingFlatFileStream runs the flat grower over a disk-backed
// stream and asserts bit-identity with the in-RAM run, including the pass
// counter both streams maintain independently.
func TestStreamingFlatFileStream(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 8; trial++ {
		b := randomBip(t, 10+rng.Intn(15), 10+rng.Intn(15), 5+rng.Intn(120), rng)
		path := t.TempDir() + "/bip.estream"
		if err := stream.WriteFileEdges(path, b.N, b.Edges); err != nil {
			t.Fatal(err)
		}
		fs, err := stream.OpenFile(path)
		if err != nil {
			t.Fatal(err)
		}
		fromFile := StreamingOpts(b.N, b.Side, fs, 0.2, StreamOptions{})
		filePasses := fs.Passes()
		fs.Close()
		ss := stream.FromEdges(b.Edges)
		fromSlice := StreamingOpts(b.N, b.Side, ss, 0.2, StreamOptions{})
		if fromFile.M.Size() != fromSlice.M.Size() || fromFile.Passes != fromSlice.Passes {
			t.Fatalf("trial %d: file run (size %d, passes %d) vs slice run (size %d, passes %d)",
				trial, fromFile.M.Size(), fromFile.Passes, fromSlice.M.Size(), fromSlice.Passes)
		}
		fe, se := fromFile.M.Edges(), fromSlice.M.Edges()
		for i := range fe {
			if fe[i] != se[i] {
				t.Fatalf("trial %d: edge %d: %v vs %v", trial, i, fe[i], se[i])
			}
		}
		if filePasses != ss.Passes() {
			t.Fatalf("trial %d: FileStream counted %d passes, SliceStream %d",
				trial, filePasses, ss.Passes())
		}
	}
}
