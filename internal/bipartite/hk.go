// Package bipartite implements the unweighted bipartite matching substrates
// that the Section 4 reduction consumes as its Unw-Bip-Matching black box:
// exact Hopcroft–Karp, a bounded-phase (1−δ)-approximation, a multi-pass
// semi-streaming implementation (the [AG13]/[EKMS12] stand-in of Theorem
// 1.2(2)), and an MPC implementation with round counting (the [GGK+18]
// stand-in of Theorem 1.2(1)).
//
// # Incremental repair
//
// For the amortised pipeline the exact solver also runs retained:
// HopcroftKarpRetained keeps the adjacency CSR and result arena of each
// solve, and RepairHK patches that retained state into the next
// instance's solve when the caller proves (via layered.DeltaInfo, which
// names the baseline build and the byte-shared suffix of the L' edge
// list) that most of the instance is unchanged. The repaired solve is
// bit-identical to a fresh one — same matching, same phase count —
// because the patched CSR is byte-identical to the rebuilt one (Invariant
// 21). A baseline that is missing, foreign, or inconsistent is rejected
// with one of the three ErrRepair* sentinels (NoBase, Stale, Info) and
// the caller re-solves cold — the solver rung of core's degradation
// ladder; together with the five layered.ErrDelta* sentinels these are
// the ladder's eight recoverable sentinels.
package bipartite

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// Bip is a bipartite graph view: vertices [0, n) split by side (false =
// left, true = right); edges all cross sides.
type Bip struct {
	N     int
	Side  []bool
	Edges []graph.Edge
}

// NewBip validates that every edge crosses the bipartition.
func NewBip(n int, side []bool, edges []graph.Edge) (*Bip, error) {
	if len(side) != n {
		return nil, fmt.Errorf("bipartite: side has %d entries for n=%d", len(side), n)
	}
	for _, e := range edges {
		if side[e.U] == side[e.V] {
			return nil, fmt.Errorf("bipartite: edge %v does not cross the bipartition", e)
		}
	}
	return &Bip{N: n, Side: side, Edges: edges}, nil
}

// leftAdjacency returns adjacency lists indexed by left vertices.
func (b *Bip) leftAdjacency() [][]graph.IncidentEdge {
	adj := make([][]graph.IncidentEdge, b.N)
	for i, e := range b.Edges {
		l, r := e.U, e.V
		if b.Side[l] {
			l, r = r, l
		}
		adj[l] = append(adj[l], graph.IncidentEdge{To: r, W: e.W, EdgeIndex: i})
	}
	return adj
}

// Result carries a matching together with the phase count the solver used
// (Hopcroft–Karp phases; each phase handles one shortest augmenting-path
// length).
type Result struct {
	M      *graph.Matching
	Phases int
}

// Scratch is a reusable arena for the Hopcroft–Karp solvers: the CSR
// adjacency and every per-vertex working array are kept across calls, so a
// hot loop solving many instances (the reduction tries hundreds of layered
// graphs per round) allocates only the returned matching. A Scratch is not
// safe for concurrent use; use one per worker.
type Scratch struct {
	off       []int32 // CSR offsets per left vertex, len N+1
	to        []int32 // CSR entry: right endpoint
	eidx      []int32 // CSR entry: index into b.Edges
	matchL    []int32 // left vertex -> matched right vertex, or -1
	matchR    []int32 // right vertex -> matched left vertex, or -1
	matchEdge []int32 // left vertex -> index of its matched edge in b.Edges
	dist      []int32
	iter      []int32 // per-phase adjacency cursor per left vertex (see run)
	queue     []int32

	// Repair retention (repair.go): token identifies the latest retained
	// solve (0 = none), prevN/prevM its instance shape; off2/to2/eidx2 are
	// the double-buffered CSR the patch writes into before swapping; out is
	// the arena-owned result matching retained solves hand back.
	token uint64
	prevN int
	prevM int
	off2  []int32
	to2   []int32
	eidx2 []int32
	out   *graph.Matching
}

// NewScratch returns an empty arena.
func NewScratch() *Scratch { return &Scratch{} }

// HopcroftKarp computes a maximum cardinality matching exactly. It is the
// δ = 0 oracle of the reduction.
func HopcroftKarp(b *Bip) Result {
	return boundedHK(b, math.MaxInt32, nil, nil)
}

// HopcroftKarpScratch is HopcroftKarp reusing the given arena's storage.
func HopcroftKarpScratch(b *Bip, s *Scratch) Result {
	return boundedHK(b, math.MaxInt32, s, nil)
}

// HopcroftKarpRescan is HopcroftKarp running the pre-PR 9 cursor-free
// greedy DFS: every DFS entry rescans the vertex's adjacency from the
// start instead of resuming from the per-phase cursor. It is retained as
// the live reference of the iterator-per-phase DFS — the E19 experiment
// and the CI micro-benchmark gate measure the iterator form against it in
// the same run, and the Invariant 26 differential (TestIteratorDFS*,
// internal/solvertest) asserts the two return bit-identical results —
// same matching, same phase count — on every family, because the cursor
// provably skips only edges already dead for the phase.
func HopcroftKarpRescan(b *Bip) Result {
	return boundedHKRescan(b, math.MaxInt32, nil, nil)
}

// HopcroftKarpRescanScratch is HopcroftKarpRescan reusing the given
// arena's storage.
func HopcroftKarpRescanScratch(b *Bip, s *Scratch) Result {
	return boundedHKRescan(b, math.MaxInt32, s, nil)
}

// HopcroftKarpRescanSeeded is HopcroftKarpSeeded through the cursor-free
// reference DFS, so the iterator equivalence is checkable (and measurable)
// on warm-started runs too.
func HopcroftKarpRescanSeeded(b *Bip, s *Scratch, seeds []Seed) Result {
	return boundedHKRescan(b, math.MaxInt32, s, seeds)
}

// Seed pre-matches one edge of a warm-started solve: left vertex L matched
// to right vertex R via edge EdgeIndex of b.Edges. EdgeIndex −1 asks the
// solver to resolve the edge itself from its adjacency (an O(deg(L)) scan),
// which spares callers that know only the endpoint pair an O(|E|) lookup
// structure per solve; if no L–R edge exists the seed is skipped.
type Seed struct {
	L, R      int32
	EdgeIndex int32
}

// HopcroftKarpSeeded is HopcroftKarpScratch warm-started from a partial
// matching: the seeds are installed before the first phase, so when they
// approximate a maximum matching the search pays only the few phases that
// augment the difference instead of rebuilding from empty. Any valid
// matching seeds a correct run (augmenting-path search is indifferent to
// its starting point), and the result is still exactly maximum — though not
// necessarily the same maximum matching a cold run returns, since the seed
// shifts which augmenting paths are found first. Seeds that do not fit
// (out of range, endpoint already seeded, edge not crossing L-R) are
// skipped, so a stale seed degrades to a colder start, never to a wrong
// answer.
func HopcroftKarpSeeded(b *Bip, s *Scratch, seeds []Seed) Result {
	return boundedHK(b, math.MaxInt32, s, seeds)
}

// Approx computes a (1−δ)-approximate maximum matching by running
// Hopcroft–Karp phases only while the shortest augmenting path has length at
// most 2·ceil(1/δ)−1. By Fact 1.3 the result is (1 − δ)-approximate (a
// matching with no augmenting path shorter than 2ℓ−1 is (1−1/ℓ)-approximate).
func Approx(b *Bip, delta float64) Result {
	return ApproxScratch(b, delta, nil)
}

// ApproxScratch is Approx reusing the given arena's storage.
func ApproxScratch(b *Bip, delta float64, s *Scratch) Result {
	if delta <= 0 {
		return boundedHK(b, math.MaxInt32, s, nil)
	}
	ell := int(math.Ceil(1 / delta))
	return boundedHK(b, 2*ell-1, s, nil)
}

// sizeVerts sizes the per-vertex working arrays for n vertices, preserving
// no contents (every consumer reinitialises them).
func (s *Scratch) sizeVerts(n int) {
	if cap(s.matchL) < n {
		s.matchL = make([]int32, n)
		s.matchR = make([]int32, n)
		s.matchEdge = make([]int32, n)
		s.dist = make([]int32, n)
		s.iter = make([]int32, n)
	}
	s.matchL, s.matchR = s.matchL[:n], s.matchR[:n]
	s.matchEdge, s.dist = s.matchEdge[:n], s.dist[:n]
	s.iter = s.iter[:n]
}

// prepare sizes the arena for b and builds the CSR adjacency of the left
// vertices (entries keep b's edge order per vertex, matching the iteration
// order of the former slice-of-slices adjacency).
func (s *Scratch) prepare(b *Bip) {
	n, m := b.N, len(b.Edges)
	// The off gate is deliberately separate from the per-vertex arrays':
	// the repair path swaps the CSR buffers (patch), so their capacities
	// evolve independently and a coupled reallocation would leave one side
	// undersized.
	if cap(s.off) < n+1 {
		s.off = make([]int32, n+1)
	}
	s.off = s.off[:n+1]
	s.sizeVerts(n)
	if cap(s.to) < m {
		s.to = make([]int32, m)
		s.eidx = make([]int32, m)
	}
	s.to, s.eidx = s.to[:m], s.eidx[:m]
	s.queue = s.queue[:0]

	for i := range s.off {
		s.off[i] = 0
	}
	for _, e := range b.Edges {
		l := e.U
		if b.Side[l] {
			l = e.V
		}
		s.off[l+1]++
	}
	for v := 0; v < n; v++ {
		s.off[v+1] += s.off[v]
	}
	// Fill entries; s.dist doubles as the per-vertex cursor here and is
	// reinitialised by every BFS.
	cur := s.dist
	for v := 0; v < n; v++ {
		cur[v] = s.off[v]
	}
	for i, e := range b.Edges {
		l, r := e.U, e.V
		if b.Side[l] {
			l, r = r, l
		}
		s.to[cur[l]] = int32(r)
		s.eidx[cur[l]] = int32(i)
		cur[l]++
	}
}

// boundedHK runs HK phases while the shortest augmenting path length is at
// most maxLen, optionally warm-started from seeds. It invalidates any
// retained repair baseline: the arena's CSR now describes this instance,
// not the one a caller-held RepairInfo refers to.
func boundedHK(b *Bip, maxLen int, s *Scratch, seeds []Seed) Result {
	if s == nil {
		s = NewScratch()
	}
	s.token = 0
	s.prepare(b)
	phases := s.run(b, maxLen, seeds)
	m := new(graph.Matching)
	m.FillFromSolver(b.N, b.Side, s.matchL, s.matchR, s.matchEdge, b.Edges)
	return Result{M: m, Phases: phases}
}

// boundedHKRescan is boundedHK through the cursor-free reference DFS
// (see HopcroftKarpRescan).
func boundedHKRescan(b *Bip, maxLen int, s *Scratch, seeds []Seed) Result {
	if s == nil {
		s = NewScratch()
	}
	s.token = 0
	s.prepare(b)
	phases := s.runLoop(b, maxLen, seeds, true)
	m := new(graph.Matching)
	m.FillFromSolver(b.N, b.Side, s.matchL, s.matchR, s.matchEdge, b.Edges)
	return Result{M: m, Phases: phases}
}

// run executes the Hopcroft–Karp phase loop over the arena's current CSR
// (left behind by prepare or patch), starting from the empty matching,
// optionally installing seeds first. It returns the phase count; the
// matching is left in the arena's matchL/matchR/matchEdge state.
func (s *Scratch) run(b *Bip, maxLen int, seeds []Seed) int {
	return s.runLoop(b, maxLen, seeds, false)
}

// runLoop is run with the DFS strategy explicit: rescan = true restores the
// pre-PR 9 cursor-free greedy DFS (every entry rescans the adjacency from
// off[u]). It exists as the live reference the iterator-per-phase DFS is
// measured and equivalence-checked against (HopcroftKarpRescan); production
// callers always pass false.
func (s *Scratch) runLoop(b *Bip, maxLen int, seeds []Seed, rescan bool) int {
	nLeft := 0
	for i := range s.matchL {
		s.matchL[i] = -1
		s.matchR[i] = -1
		s.matchEdge[i] = -1
		if !b.Side[i] {
			nLeft++
			s.dist[i] = 0 // the phase-1 BFS state, see the first-phase shortcut
		}
	}
	for _, sd := range seeds {
		if sd.L < 0 || int(sd.L) >= b.N || sd.R < 0 || int(sd.R) >= b.N {
			continue
		}
		if sd.EdgeIndex == -1 {
			// Resolve the edge from the CSR adjacency built by prepare.
			if b.Side[sd.L] {
				continue
			}
			for j := s.off[sd.L]; j < s.off[sd.L+1]; j++ {
				if s.to[j] == sd.R {
					sd.EdgeIndex = s.eidx[j]
					break
				}
			}
		}
		if sd.EdgeIndex < 0 || int(sd.EdgeIndex) >= len(b.Edges) {
			continue
		}
		if e := b.Edges[sd.EdgeIndex]; !(e.U == int(sd.L) && e.V == int(sd.R)) &&
			!(e.U == int(sd.R) && e.V == int(sd.L)) {
			continue
		}
		if b.Side[sd.L] || !b.Side[sd.R] || s.matchL[sd.L] != -1 || s.matchR[sd.R] != -1 {
			continue
		}
		s.matchL[sd.L] = sd.R
		s.matchR[sd.R] = sd.L
		s.matchEdge[sd.L] = sd.EdgeIndex
	}
	const inf = math.MaxInt32

	bfs := func() int32 {
		// The queue is a head-indexed window over a buffer reused across
		// phases; the former queue = queue[1:] pop kept the whole backing
		// array alive and shifted it O(n) times per phase.
		queue := s.queue[:0]
		for v := 0; v < b.N; v++ {
			s.dist[v] = inf
			if !b.Side[v] && s.matchL[v] == -1 {
				s.dist[v] = 0
				queue = append(queue, int32(v))
			}
		}
		s.queue = queue
		var shortest int32 = inf
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			if s.dist[u] >= shortest {
				continue
			}
			for j := s.off[u]; j < s.off[u+1]; j++ {
				w := s.matchR[s.to[j]]
				if w == -1 {
					// Augmenting path of length 2·dist[u]+1 found.
					if 2*s.dist[u]+1 < shortest {
						shortest = 2*s.dist[u] + 1
					}
					continue
				}
				if s.dist[w] == inf {
					s.dist[w] = s.dist[u] + 1
					queue = append(queue, w)
				}
			}
		}
		s.queue = queue[:0]
		return shortest
	}

	// Iterator-per-phase DFS (the classic HK73/Dinic amortisation, PR 9):
	// each left vertex keeps a cursor into its adjacency, reset at the top
	// of every phase, and the greedy DFS resumes from it instead of
	// rescanning from off[u]. Within a phase an edge that failed once is
	// dead for good — its right endpoint can only stay matched (augmenting
	// rematches right vertices, never frees them) and dist only ever moves
	// to inf — so skipping the scanned prefix drops exactly the re-entrant
	// rescans an interior vertex pays when several paths route through it,
	// and nothing else: the same augmenting paths are found in the same
	// order, so the result and phase count are bit-identical to the
	// cursor-free reference (runRescan; Invariant 26 pins the equivalence,
	// TestIteratorDFS* and the solvertest families assert it).
	//
	// On success the cursor parks on the taken edge j: a re-entry re-checks
	// j, finds r matched to u itself (dist[u] == dist[u]+1 fails), and
	// advances — the same position the dead-prefix argument leaves the
	// reference scan at.
	var dfs func(u int32) bool
	if rescan {
		dfs = func(u int32) bool {
			for j := s.off[u]; j < s.off[u+1]; j++ {
				r := s.to[j]
				w := s.matchR[r]
				if w == -1 || (s.dist[w] == s.dist[u]+1 && dfs(w)) {
					s.matchL[u] = r
					s.matchR[r] = u
					s.matchEdge[u] = s.eidx[j]
					return true
				}
			}
			s.dist[u] = inf
			return false
		}
	} else {
		// The cursor is written back once at exit, not per step: u cannot
		// be re-entered while on the DFS stack (an in-edge would need
		// dist[u] == dist[w']+1 for a deeper w', impossible in a layered
		// search), so no reader can observe the cursor mid-scan.
		dfs = func(u int32) bool {
			end := s.off[u+1]
			for j := s.iter[u]; j < end; j++ {
				r := s.to[j]
				w := s.matchR[r]
				if w == -1 || (s.dist[w] == s.dist[u]+1 && dfs(w)) {
					s.iter[u] = j
					s.matchL[u] = r
					s.matchR[r] = u
					s.matchEdge[u] = s.eidx[j]
					return true
				}
			}
			s.iter[u] = end
			s.dist[u] = inf
			return false
		}
	}

	// Saturation counters: once every left (or every right) vertex is
	// matched, no augmenting path exists, so the terminal BFS that would
	// discover that is provably a no-op and is skipped. The phase count is
	// unchanged (a terminal BFS never counts as a phase), so results stay
	// bit-identical; on the reduction's layered graphs most solves saturate
	// a side, making this the common exit.
	nRight, size := b.N-nLeft, 0
	if len(seeds) > 0 {
		for _, r := range s.matchL {
			if r != -1 {
				size++
			}
		}
	}

	// First-phase shortcut: from the empty matching every left vertex is a
	// free BFS source at distance 0 and every right vertex is unmatched, so
	// the first BFS provably returns 1 when any edge exists (and inf
	// otherwise) while writing exactly the dist state the init loop above
	// already produced — phase-1 DFS reads dist only at left vertices,
	// which are all 0. Skipping it is bit-identical; seeded runs start from
	// a non-empty matching and take the real BFS from the first iteration.
	first := size == 0

	phases := 0
	for size < nLeft && size < nRight {
		var shortest int32
		if first {
			first = false
			shortest = 1
			if len(b.Edges) == 0 {
				shortest = inf
			}
		} else {
			shortest = bfs()
		}
		if shortest == inf || int(shortest) > maxLen {
			break
		}
		phases++
		if !rescan {
			copy(s.iter, s.off[:b.N]) // reset every adjacency cursor for the phase
		}
		for v := 0; v < b.N; v++ {
			if !b.Side[v] && s.matchL[v] == -1 {
				if dfs(int32(v)) {
					size++
				}
			}
		}
	}

	return phases
}
