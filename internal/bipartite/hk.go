// Package bipartite implements the unweighted bipartite matching substrates
// that the Section 4 reduction consumes as its Unw-Bip-Matching black box:
// exact Hopcroft–Karp, a bounded-phase (1−δ)-approximation, a multi-pass
// semi-streaming implementation (the [AG13]/[EKMS12] stand-in of Theorem
// 1.2(2)), and an MPC implementation with round counting (the [GGK+18]
// stand-in of Theorem 1.2(1)).
package bipartite

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// Bip is a bipartite graph view: vertices [0, n) split by side (false =
// left, true = right); edges all cross sides.
type Bip struct {
	N     int
	Side  []bool
	Edges []graph.Edge
}

// NewBip validates that every edge crosses the bipartition.
func NewBip(n int, side []bool, edges []graph.Edge) (*Bip, error) {
	if len(side) != n {
		return nil, fmt.Errorf("bipartite: side has %d entries for n=%d", len(side), n)
	}
	for _, e := range edges {
		if side[e.U] == side[e.V] {
			return nil, fmt.Errorf("bipartite: edge %v does not cross the bipartition", e)
		}
	}
	return &Bip{N: n, Side: side, Edges: edges}, nil
}

// leftAdjacency returns adjacency lists indexed by left vertices.
func (b *Bip) leftAdjacency() [][]graph.IncidentEdge {
	adj := make([][]graph.IncidentEdge, b.N)
	for i, e := range b.Edges {
		l, r := e.U, e.V
		if b.Side[l] {
			l, r = r, l
		}
		adj[l] = append(adj[l], graph.IncidentEdge{To: r, W: e.W, EdgeIndex: i})
	}
	return adj
}

// Result carries a matching together with the phase count the solver used
// (Hopcroft–Karp phases; each phase handles one shortest augmenting-path
// length).
type Result struct {
	M      *graph.Matching
	Phases int
}

// HopcroftKarp computes a maximum cardinality matching exactly. It is the
// δ = 0 oracle of the reduction.
func HopcroftKarp(b *Bip) Result {
	return boundedHK(b, math.MaxInt)
}

// Approx computes a (1−δ)-approximate maximum matching by running
// Hopcroft–Karp phases only while the shortest augmenting path has length at
// most 2·ceil(1/δ)−1. By Fact 1.3 the result is (1 − δ)-approximate (a
// matching with no augmenting path shorter than 2ℓ−1 is (1−1/ℓ)-approximate).
func Approx(b *Bip, delta float64) Result {
	if delta <= 0 {
		return HopcroftKarp(b)
	}
	ell := int(math.Ceil(1 / delta))
	return boundedHK(b, 2*ell-1)
}

// boundedHK runs HK phases while the shortest augmenting path length is at
// most maxLen.
func boundedHK(b *Bip, maxLen int) Result {
	adj := b.leftAdjacency()
	matchL := make([]int, b.N) // for left vertices: matched right vertex
	matchR := make([]int, b.N) // for right vertices: matched left vertex
	for i := range matchL {
		matchL[i] = -1
		matchR[i] = -1
	}
	dist := make([]int, b.N)
	const inf = math.MaxInt32

	bfs := func() int {
		queue := make([]int, 0, b.N)
		for v := 0; v < b.N; v++ {
			dist[v] = inf
			if !b.Side[v] && matchL[v] == -1 {
				dist[v] = 0
				queue = append(queue, v)
			}
		}
		shortest := inf
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			if dist[u] >= shortest {
				continue
			}
			for _, ie := range adj[u] {
				w := matchR[ie.To]
				if w == -1 {
					// Augmenting path of length 2·dist[u]+1 found.
					if 2*dist[u]+1 < shortest {
						shortest = 2*dist[u] + 1
					}
					continue
				}
				if dist[w] == inf {
					dist[w] = dist[u] + 1
					queue = append(queue, w)
				}
			}
		}
		return shortest
	}

	var dfs func(u int) bool
	dfs = func(u int) bool {
		for _, ie := range adj[u] {
			w := matchR[ie.To]
			if w == -1 || (dist[w] == dist[u]+1 && dfs(w)) {
				matchL[u] = ie.To
				matchR[ie.To] = u
				return true
			}
		}
		dist[u] = inf
		return false
	}

	phases := 0
	for {
		shortest := bfs()
		if shortest == inf || shortest > maxLen {
			break
		}
		phases++
		for v := 0; v < b.N; v++ {
			if !b.Side[v] && matchL[v] == -1 {
				dfs(v)
			}
		}
	}

	return Result{M: matchingFrom(b, matchL), Phases: phases}
}

// matchingFrom converts a left-match array into a graph.Matching, recovering
// the heaviest available weight per matched pair (weights are irrelevant to
// cardinality solvers but preserved for callers).
func matchingFrom(b *Bip, matchL []int) *graph.Matching {
	weightOf := make(map[graph.Key]graph.Weight, len(b.Edges))
	for _, e := range b.Edges {
		k := e.EdgeKey()
		if w, ok := weightOf[k]; !ok || e.W > w {
			weightOf[k] = e.W
		}
	}
	m := graph.NewMatching(b.N)
	for l, r := range matchL {
		if b.Side[l] || r == -1 {
			continue
		}
		// matchL is a valid matching by construction; Add cannot fail.
		if err := m.Add(graph.Edge{U: l, V: r, W: weightOf[graph.KeyOf(l, r)]}); err != nil {
			panic(err)
		}
	}
	return m
}
