package bipartite

import "repro/internal/graph"

// FunnelInstance builds the re-entrant adversarial instance of the PR 9
// iterator-DFS A/B (the CI micro gate's BenchmarkHKIterDFS pair and the
// E19 experiment): m free sources all route their augmenting paths through
// ONE interior left vertex c whose adjacency starts with a p-edge dead
// block, so the cursor-free DFS rescans that block on every one of the m
// re-entries (Θ(m·p + m²) wasted scans) while the iterator form pays for
// each edge once. The shape is the distilled form of what the E13 profile
// showed (interior vertices shared by many alternating paths), not a
// random graph — on random instances re-entrance is rare and the two DFS
// forms tie.
//
// The instance is seeded (c→e, a_j→h_j pre-matched; run it through
// HopcroftKarpSeeded / HopcroftKarpRescanSeeded) so the only free rights
// are c's f-block. Source s_0's one edge leads to e, c's current match;
// each later s_i's one edge leads to f_{i-1}, which is free at phase start
// but — because s_{i-1} ran first in the same DFS sweep — is c's match by
// the time s_i scans it. Every source therefore enters c, c advances to
// the next free f, and the source takes over c's previous match: m
// re-entries of c in a single phase, each of which the rescan form pays
// for with a full walk of e + the h dead block + the consumed f-prefix.
// Any right a source could reach directly while it is still free would
// instead be grabbed without touching c (w == -1 wins immediately), which
// is why the chain hands sources only c's trail.
func FunnelInstance(m, p int) (*Bip, []Seed) {
	// Lefts: c, a_0..a_{p-1}, s_0..s_{m-1}; rights: e, h_0..h_{p-1},
	// f_0..f_{m-1}.
	nl := 1 + p + m
	c := 0
	a := func(j int) int { return 1 + j }     // j in [0,p)
	s := func(j int) int { return 1 + p + j } // j in [0,m)
	e := nl
	h := func(j int) int { return nl + 1 + j }     // j in [0,p)
	f := func(j int) int { return nl + 1 + p + j } // j in [0,m)
	n := nl + 1 + p + m
	side := make([]bool, n)
	for v := nl; v < n; v++ {
		side[v] = true
	}
	bip := &Bip{N: n, Side: side}
	add := func(u, v int) int32 {
		bip.Edges = append(bip.Edges, graph.Edge{U: u, V: v, W: 1})
		return int32(len(bip.Edges) - 1)
	}
	seeds := make([]Seed, 0, 1+p)
	seeds = append(seeds, Seed{L: int32(c), R: int32(e), EdgeIndex: add(c, e)})
	for j := 0; j < p; j++ {
		add(c, h(j)) // the dead block every rescan of c re-walks
	}
	for j := 0; j < m; j++ {
		add(c, f(j)) // c's trail: the only free rights in the instance
	}
	for j := 0; j < p; j++ {
		seeds = append(seeds, Seed{L: int32(a(j)), R: int32(h(j)), EdgeIndex: add(a(j), h(j))})
	}
	add(s(0), e)
	for j := 1; j < m; j++ {
		add(s(j), f(j-1))
	}
	return bip, seeds
}
