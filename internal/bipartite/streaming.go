package bipartite

import (
	"math"

	"repro/internal/graph"
	"repro/internal/stream"
)

// StreamResult reports the streaming solver's matching together with its
// measured resource usage.
type StreamResult struct {
	M *graph.Matching
	// Passes is the number of passes taken over the stream.
	Passes int
	// PeakStored is the peak number of words (edges + path entries) held.
	PeakStored int
}

// Streaming computes a large matching of a bipartite graph delivered as an
// edge stream, in the multi-pass semi-streaming model. It is the stand-in
// for the Ahn–Guha [AG13] subroutine of Theorem 1.2(2): pass 1 builds a
// greedy maximal matching (1/2-approximate); each later group of passes
// grows a maximal set of vertex-disjoint augmenting paths of length at most
// 2·ceil(1/δ)−1 layer by layer (one pass per unmatched layer, in the style
// of Eggert et al. [EKMS12]) and applies them. Rounds repeat until one finds
// no augmenting path, so pass complexity is O_δ(1) per improvement round and
// independent of n.
//
// The layer growth is greedy-maximal, so unlike exact Hopcroft–Karp phases
// the (1−δ) guarantee is inherited only approximately; experiments measure
// the realised ratio against the exact solver (see EXPERIMENTS.md, E4).
func Streaming(n int, side []bool, s stream.EdgeStream, delta float64) StreamResult {
	if delta <= 0 || delta > 1 {
		delta = 0.1
	}
	ell := int(math.Ceil(1 / delta))
	maxLen := 2*ell - 1        // augmenting path length cap, Fact 1.3
	layers := (maxLen + 1) / 2 // unmatched-edge layers per round
	maxRounds := 4 * ell       // round budget (each round costs `layers` passes)

	res := StreamResult{M: graph.NewMatching(n)}

	// Pass 1: greedy maximal matching. Edge weights are irrelevant to the
	// cardinality objective but preserved so that callers (the Section 4
	// reduction) can translate the matching back to weighted structures.
	s.Reset()
	res.Passes++
	for e, ok := s.Next(); ok; e, ok = s.Next() {
		if !res.M.IsMatched(e.U) && !res.M.IsMatched(e.V) {
			mustAdd(res.M, e)
		}
	}
	res.PeakStored = res.M.Size()

	for round := 0; round < maxRounds; round++ {
		completed := growAugmentingPaths(n, side, res.M, layers, func() {
			s.Reset()
			res.Passes++
		}, func(visit func(l, r int, w graph.Weight)) {
			for e, ok := s.Next(); ok; e, ok = s.Next() {
				l, r := orient(side, e)
				visit(l, r, e.W)
			}
		}, &res.PeakStored)
		if applyAugPaths(res.M, completed) == 0 {
			break
		}
	}
	return res
}

// orient returns (left, right) endpoints of e under side.
func orient(side []bool, e graph.Edge) (int, int) {
	if side[e.U] {
		return e.V, e.U
	}
	return e.U, e.V
}

// augPath is a partial or complete alternating path: Vertices alternates
// left/right and Weights[i] is the weight of the edge Vertices[i] to
// Vertices[i+1].
type augPath struct {
	Vertices []int
	Weights  []graph.Weight
}

// growAugmentingPaths grows a maximal set of vertex-disjoint augmenting
// paths from the free left vertices, one unmatched-edge layer at a time.
// beginLayer is called before each layer (e.g. to start a stream pass);
// scanLayer must call visit(l, r) for every available edge. Returned paths
// are vertex sequences l0, r0, l1, r1, ..., rk ending at a free right
// vertex.
func growAugmentingPaths(
	n int,
	side []bool,
	m *graph.Matching,
	layers int,
	beginLayer func(),
	scanLayer func(visit func(l, r int, w graph.Weight)),
	peak *int,
) []augPath {
	tip := make(map[int]int) // left tip vertex -> path index
	var paths []augPath
	used := make([]bool, n)
	for v := 0; v < n; v++ {
		if !side[v] && !m.IsMatched(v) {
			tip[v] = len(paths)
			paths = append(paths, augPath{Vertices: []int{v}})
			used[v] = true
		}
	}
	var completed []augPath

	for layer := 0; layer < layers && len(tip) > 0; layer++ {
		beginLayer()
		scanLayer(func(l, r int, w graph.Weight) {
			idx, active := tip[l]
			if !active || used[r] {
				return
			}
			used[r] = true
			delete(tip, l)
			paths[idx].Vertices = append(paths[idx].Vertices, r)
			paths[idx].Weights = append(paths[idx].Weights, w)
			mate := m.Mate(r)
			if mate == graph.Unmatched {
				completed = append(completed, paths[idx])
				return
			}
			used[mate] = true
			paths[idx].Vertices = append(paths[idx].Vertices, mate)
			paths[idx].Weights = append(paths[idx].Weights, m.EdgeWeightAt(r))
			tip[mate] = idx
		})
		if total := pathStorage(paths); total > *peak {
			*peak = total
		}
	}
	return completed
}

func pathStorage(paths []augPath) int {
	total := 0
	for _, p := range paths {
		total += len(p.Vertices)
	}
	return total
}

// applyAugPaths applies completed augmenting paths and returns the number
// applied. Edge weights travel with the paths so the matching stays
// weight-faithful.
func applyAugPaths(m *graph.Matching, paths []augPath) int {
	applied := 0
	for _, p := range paths {
		var add, remove []graph.Edge
		for i := 0; i+1 < len(p.Vertices); i += 2 {
			add = append(add, graph.Edge{U: p.Vertices[i], V: p.Vertices[i+1], W: p.Weights[i]})
		}
		for i := 1; i+1 < len(p.Vertices); i += 2 {
			remove = append(remove, graph.Edge{U: p.Vertices[i], V: p.Vertices[i+1], W: m.EdgeWeightAt(p.Vertices[i])})
		}
		if _, err := graph.Apply(m, graph.Augmentation{Remove: remove, Add: add}); err == nil {
			applied++
		}
	}
	return applied
}

func mustAdd(m *graph.Matching, e graph.Edge) {
	if err := m.Add(e); err != nil {
		panic(err)
	}
}
