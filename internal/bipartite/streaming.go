package bipartite

import (
	"math"

	"repro/internal/graph"
	"repro/internal/stream"
)

// StreamResult reports the streaming solver's matching together with its
// measured resource usage.
type StreamResult struct {
	M *graph.Matching
	// Passes is the number of passes taken over the stream. Since PR 10 it
	// is read off the stream's own Passes() counter (the accounting
	// authority) rather than hand-counted next to Reset calls; the retained
	// naive form still hand-counts and the drift test pins the two equal.
	Passes int
	// PeakStored is the peak number of words (edges + path entries) held.
	PeakStored int
}

// StreamOptions configures the PR 10 extensions of Streaming; the zero
// value reproduces the historical behaviour.
type StreamOptions struct {
	// Account, when non-nil, is charged for every stream-dependent word the
	// run holds: the matching under construction plus the live alternating
	// path storage. Its Peak then bounds the run like PeakStored but on the
	// shared streaming-tier meter.
	Account *stream.Accountant
	// Scratch, when non-nil, supplies the arena for the per-round path
	// growth so repeated runs stop allocating (the PR 1 Scratch idiom).
	Scratch *StreamScratch
	// Naive runs the retained map-backed path grower instead of the flat
	// arena form. Invariant 27 pins the two bit-identical.
	Naive bool
}

// Streaming computes a large matching of a bipartite graph delivered as an
// edge stream, in the multi-pass semi-streaming model. It is the stand-in
// for the Ahn–Guha [AG13] subroutine of Theorem 1.2(2): pass 1 builds a
// greedy maximal matching (1/2-approximate); each later group of passes
// grows a maximal set of vertex-disjoint augmenting paths of length at most
// 2·ceil(1/δ)−1 layer by layer (one pass per unmatched layer, in the style
// of Eggert et al. [EKMS12]) and applies them. Rounds repeat until one finds
// no augmenting path, so pass complexity is O_δ(1) per improvement round and
// independent of n.
//
// The layer growth is greedy-maximal, so unlike exact Hopcroft–Karp phases
// the (1−δ) guarantee is inherited only approximately; experiments measure
// the realised ratio against the exact solver (see EXPERIMENTS.md, E4).
func Streaming(n int, side []bool, s stream.EdgeStream, delta float64) StreamResult {
	return StreamingOpts(n, side, s, delta, StreamOptions{})
}

// StreamingOpts is Streaming with the PR 10 accountant/arena/naive knobs.
func StreamingOpts(n int, side []bool, s stream.EdgeStream, delta float64, opts StreamOptions) StreamResult {
	if opts.Naive {
		return streamingNaive(n, side, s, delta, opts.Account)
	}
	if delta <= 0 || delta > 1 {
		delta = 0.1
	}
	ell := int(math.Ceil(1 / delta))
	maxLen := 2*ell - 1        // augmenting path length cap, Fact 1.3
	layers := (maxLen + 1) / 2 // unmatched-edge layers per round
	maxRounds := 4 * ell       // round budget (each round costs `layers` passes)

	acct := opts.Account
	charge := func(delta int) {
		if acct != nil {
			acct.Hold(delta)
		}
	}
	sc := opts.Scratch
	if sc == nil {
		sc = &StreamScratch{}
	}

	res := StreamResult{M: graph.NewMatching(n)}

	// Pass 1: greedy maximal matching. Edge weights are irrelevant to the
	// cardinality objective but preserved so that callers (the Section 4
	// reduction) can translate the matching back to weighted structures.
	s.Reset()
	passes0 := s.Passes()
	for e, ok := s.Next(); ok; e, ok = s.Next() {
		if !res.M.IsMatched(e.U) && !res.M.IsMatched(e.V) {
			mustAdd(res.M, e)
		}
	}
	res.PeakStored = res.M.Size()
	charge(res.M.Size())

	for round := 0; round < maxRounds; round++ {
		pathWords := sc.grow(n, side, res.M, layers, func() {
			s.Reset()
		}, func(visit func(l, r int, w graph.Weight)) {
			for e, ok := s.Next(); ok; e, ok = s.Next() {
				l, r := orient(side, e)
				visit(l, r, e.W)
			}
		}, &res.PeakStored, charge)
		before := res.M.Size()
		applied := sc.apply(res.M)
		charge(res.M.Size() - before)
		charge(-pathWords)
		if applied == 0 {
			break
		}
	}
	res.Passes = s.Passes() - passes0
	charge(-res.M.Size()) // balance the run's holds so Peak meters one run
	return res
}

// orient returns (left, right) endpoints of e under side.
func orient(side []bool, e graph.Edge) (int, int) {
	if side[e.U] {
		return e.V, e.U
	}
	return e.U, e.V
}

// StreamScratch is the arena behind the flat path grower. Paths live in an
// append-only chain table: entry i holds a vertex (chainV), the index of
// the previous vertex on its path (chainPrev, −1 at a path's free root),
// and the weight of the edge arriving at it (chainW, unused at roots), so
// a path is recovered by walking prev links back from its last entry. A
// chain table rather than a per-path stride block because the grower can
// extend one path several times within a single pass (a freshly planted
// tip is live for the remainder of the scan), so per-layer growth is not
// bounded per path — only in total. tip encodes the naive form's map as
// tip[v] = chain entry index + 1 with 0 meaning "no active path ends at
// v". A zero StreamScratch is ready to use; reuse across rounds and runs
// retains every allocation.
type StreamScratch struct {
	tip       []int32
	used      []bool
	chainV    []int32
	chainPrev []int32
	chainW    []graph.Weight
	completed []int32
	pathV     []int32
	pathW     []graph.Weight
	add       []graph.Edge
	remove    []graph.Edge
}

// grow runs one round of layer-by-layer augmenting path growth, the flat
// counterpart of growAugmentingPaths: identical visit decisions in
// identical order, with the tip map replaced by the tip array and the
// per-path vertex slices by the chain table. It returns the number of
// path words still held so the caller can release them from the
// accountant after applying, and leaves the completed chain indices in
// sc.completed for apply.
func (sc *StreamScratch) grow(
	n int,
	side []bool,
	m *graph.Matching,
	layers int,
	beginLayer func(),
	scanLayer func(visit func(l, r int, w graph.Weight)),
	peak *int,
	charge func(int),
) int {
	if cap(sc.tip) < n {
		sc.tip = make([]int32, n)
	} else {
		sc.tip = sc.tip[:n]
		clear(sc.tip)
	}
	if cap(sc.used) < n {
		sc.used = make([]bool, n)
	} else {
		sc.used = sc.used[:n]
		clear(sc.used)
	}
	sc.chainV = sc.chainV[:0]
	sc.chainPrev = sc.chainPrev[:0]
	sc.chainW = sc.chainW[:0]
	sc.completed = sc.completed[:0]

	active := 0
	for v := 0; v < n; v++ {
		if !side[v] && !m.IsMatched(v) {
			sc.tip[v] = int32(len(sc.chainV)) + 1
			sc.chainV = append(sc.chainV, int32(v))
			sc.chainPrev = append(sc.chainPrev, -1)
			sc.chainW = append(sc.chainW, 0)
			sc.used[v] = true
			active++
		}
	}

	charged := 0
	for layer := 0; layer < layers && active > 0; layer++ {
		beginLayer()
		scanLayer(func(l, r int, w graph.Weight) {
			ti := sc.tip[l]
			if ti == 0 || sc.used[r] {
				return
			}
			sc.used[r] = true
			sc.tip[l] = 0
			rIdx := int32(len(sc.chainV))
			sc.chainV = append(sc.chainV, int32(r))
			sc.chainPrev = append(sc.chainPrev, ti-1)
			sc.chainW = append(sc.chainW, w)
			mate := m.Mate(r)
			if mate == graph.Unmatched {
				sc.completed = append(sc.completed, rIdx)
				active--
				return
			}
			sc.used[mate] = true
			sc.chainV = append(sc.chainV, int32(mate))
			sc.chainPrev = append(sc.chainPrev, rIdx)
			sc.chainW = append(sc.chainW, m.EdgeWeightAt(r))
			sc.tip[mate] = rIdx + 2
		})
		// len(chainV) is exactly the naive form's pathStorage: one chain
		// entry per vertex appended to any path, roots included.
		if total := len(sc.chainV); total > *peak {
			*peak = total
		}
		charge(len(sc.chainV) - charged)
		charged = len(sc.chainV)
	}
	return charged
}

// apply applies the completed paths of the last grow to m, mirroring
// applyAugPaths over the chain table, and returns the number applied.
func (sc *StreamScratch) apply(m *graph.Matching) int {
	applied := 0
	for _, end := range sc.completed {
		// Walk the chain back to the root, then reverse into root-first
		// order; pathW[j] becomes the weight of pathV[j]–pathV[j+1].
		sc.pathV = sc.pathV[:0]
		sc.pathW = sc.pathW[:0]
		for i := end; i >= 0; i = sc.chainPrev[i] {
			sc.pathV = append(sc.pathV, sc.chainV[i])
			sc.pathW = append(sc.pathW, sc.chainW[i])
		}
		for i, j := 0, len(sc.pathV)-1; i < j; i, j = i+1, j-1 {
			sc.pathV[i], sc.pathV[j] = sc.pathV[j], sc.pathV[i]
		}
		sc.pathW = sc.pathW[:len(sc.pathW)-1] // drop the root's dummy weight
		for i, j := 0, len(sc.pathW)-1; i < j; i, j = i+1, j-1 {
			sc.pathW[i], sc.pathW[j] = sc.pathW[j], sc.pathW[i]
		}
		vl := len(sc.pathV)
		sc.add = sc.add[:0]
		sc.remove = sc.remove[:0]
		for i := 0; i+1 < vl; i += 2 {
			sc.add = append(sc.add, graph.Edge{
				U: int(sc.pathV[i]), V: int(sc.pathV[i+1]), W: sc.pathW[i],
			})
		}
		for i := 1; i+1 < vl; i += 2 {
			u := int(sc.pathV[i])
			sc.remove = append(sc.remove, graph.Edge{
				U: u, V: int(sc.pathV[i+1]), W: m.EdgeWeightAt(u),
			})
		}
		if _, err := graph.Apply(m, graph.Augmentation{Remove: sc.remove, Add: sc.add}); err == nil {
			applied++
		}
	}
	return applied
}

// streamingNaive is the pre-arena Streaming retained verbatim as the
// executable reference for Invariant 27 (map-backed tips, per-path vertex
// slices, hand-counted passes). The accountant charge sequence matches the
// flat form exactly so the two report identical peaks.
func streamingNaive(n int, side []bool, s stream.EdgeStream, delta float64, acct *stream.Accountant) StreamResult {
	if delta <= 0 || delta > 1 {
		delta = 0.1
	}
	ell := int(math.Ceil(1 / delta))
	maxLen := 2*ell - 1
	layers := (maxLen + 1) / 2
	maxRounds := 4 * ell

	charge := func(delta int) {
		if acct != nil {
			acct.Hold(delta)
		}
	}

	res := StreamResult{M: graph.NewMatching(n)}

	s.Reset()
	res.Passes++
	for e, ok := s.Next(); ok; e, ok = s.Next() {
		if !res.M.IsMatched(e.U) && !res.M.IsMatched(e.V) {
			mustAdd(res.M, e)
		}
	}
	res.PeakStored = res.M.Size()
	charge(res.M.Size())

	for round := 0; round < maxRounds; round++ {
		charged := 0
		completed := growAugmentingPaths(n, side, res.M, layers, func() {
			s.Reset()
			res.Passes++
		}, func(visit func(l, r int, w graph.Weight)) {
			for e, ok := s.Next(); ok; e, ok = s.Next() {
				l, r := orient(side, e)
				visit(l, r, e.W)
			}
		}, &res.PeakStored, charge, &charged)
		before := res.M.Size()
		applied := applyAugPaths(res.M, completed)
		charge(res.M.Size() - before)
		charge(-charged)
		if applied == 0 {
			break
		}
	}
	charge(-res.M.Size())
	return res
}

// augPath is a partial or complete alternating path: Vertices alternates
// left/right and Weights[i] is the weight of the edge Vertices[i] to
// Vertices[i+1].
type augPath struct {
	Vertices []int
	Weights  []graph.Weight
}

// growAugmentingPaths grows a maximal set of vertex-disjoint augmenting
// paths from the free left vertices, one unmatched-edge layer at a time.
// beginLayer is called before each layer (e.g. to start a stream pass);
// scanLayer must call visit(l, r) for every available edge. Returned paths
// are vertex sequences l0, r0, l1, r1, ..., rk ending at a free right
// vertex. This is the retained naive grower behind streamingNaive.
func growAugmentingPaths(
	n int,
	side []bool,
	m *graph.Matching,
	layers int,
	beginLayer func(),
	scanLayer func(visit func(l, r int, w graph.Weight)),
	peak *int,
	charge func(int),
	charged *int,
) []augPath {
	tip := make(map[int]int) // left tip vertex -> path index
	var paths []augPath
	used := make([]bool, n)
	for v := 0; v < n; v++ {
		if !side[v] && !m.IsMatched(v) {
			tip[v] = len(paths)
			paths = append(paths, augPath{Vertices: []int{v}})
			used[v] = true
		}
	}
	var completed []augPath

	for layer := 0; layer < layers && len(tip) > 0; layer++ {
		beginLayer()
		scanLayer(func(l, r int, w graph.Weight) {
			idx, active := tip[l]
			if !active || used[r] {
				return
			}
			used[r] = true
			delete(tip, l)
			paths[idx].Vertices = append(paths[idx].Vertices, r)
			paths[idx].Weights = append(paths[idx].Weights, w)
			mate := m.Mate(r)
			if mate == graph.Unmatched {
				completed = append(completed, paths[idx])
				return
			}
			used[mate] = true
			paths[idx].Vertices = append(paths[idx].Vertices, mate)
			paths[idx].Weights = append(paths[idx].Weights, m.EdgeWeightAt(r))
			tip[mate] = idx
		})
		if total := pathStorage(paths); total > *peak {
			*peak = total
		}
		total := pathStorage(paths)
		charge(total - *charged)
		*charged = total
	}
	return completed
}

func pathStorage(paths []augPath) int {
	total := 0
	for _, p := range paths {
		total += len(p.Vertices)
	}
	return total
}

// applyAugPaths applies completed augmenting paths and returns the number
// applied. Edge weights travel with the paths so the matching stays
// weight-faithful.
func applyAugPaths(m *graph.Matching, paths []augPath) int {
	applied := 0
	for _, p := range paths {
		var add, remove []graph.Edge
		for i := 0; i+1 < len(p.Vertices); i += 2 {
			add = append(add, graph.Edge{U: p.Vertices[i], V: p.Vertices[i+1], W: p.Weights[i]})
		}
		for i := 1; i+1 < len(p.Vertices); i += 2 {
			remove = append(remove, graph.Edge{U: p.Vertices[i], V: p.Vertices[i+1], W: m.EdgeWeightAt(p.Vertices[i])})
		}
		if _, err := graph.Apply(m, graph.Augmentation{Remove: remove, Add: add}); err == nil {
			applied++
		}
	}
	return applied
}

func mustAdd(m *graph.Matching, e graph.Edge) {
	if err := m.Add(e); err != nil {
		panic(err)
	}
}
