package bipartite

import (
	"repro/internal/graph"
)

// VertexCover computes a minimum vertex cover of b from a maximum matching
// m via König's theorem: starting from the unmatched left vertices,
// alternate unmatched/matched edges; the cover is (unreached left) ∪
// (reached right). |cover| = |m| certifies that m is maximum — the
// certificate used by tests and experiments to validate the Hopcroft–Karp
// oracle without a second solver.
func VertexCover(b *Bip, m *graph.Matching) []int {
	adj := b.leftAdjacency()
	reached := make([]bool, b.N)
	var queue []int
	for v := 0; v < b.N; v++ {
		if !b.Side[v] && !m.IsMatched(v) {
			reached[v] = true
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		l := queue[0]
		queue = queue[1:]
		for _, ie := range adj[l] {
			r := ie.To
			if m.Has(l, r) || reached[r] {
				continue // only unmatched edges leave the left side
			}
			reached[r] = true
			if mate := m.Mate(r); mate != graph.Unmatched && !reached[mate] {
				reached[mate] = true
				queue = append(queue, mate)
			}
		}
	}
	var cover []int
	for v := 0; v < b.N; v++ {
		if b.Side[v] {
			if reached[v] {
				cover = append(cover, v)
			}
		} else if !reached[v] {
			// Unreached left vertices are all matched (free left vertices
			// are reached by construction).
			if m.IsMatched(v) {
				cover = append(cover, v)
			}
		}
	}
	return cover
}

// IsVertexCover reports whether the vertex set covers every edge of b.
func IsVertexCover(b *Bip, cover []int) bool {
	in := make(map[int]struct{}, len(cover))
	for _, v := range cover {
		in[v] = struct{}{}
	}
	for _, e := range b.Edges {
		if _, u := in[e.U]; u {
			continue
		}
		if _, v := in[e.V]; v {
			continue
		}
		return false
	}
	return true
}

// CertifyMaximum verifies via König's theorem that m is a maximum matching
// of b: it computes the vertex cover and checks both covering and
// |cover| == |m|.
func CertifyMaximum(b *Bip, m *graph.Matching) bool {
	cover := VertexCover(b, m)
	return IsVertexCover(b, cover) && len(cover) == m.Size()
}
