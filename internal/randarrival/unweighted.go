// Package randarrival implements the Section 3 algorithms of
// Gamlath–Kale–Mitrović–Svensson (PODC 2019) for single-pass streaming with
// random edge arrivals: the 0.506-approximation for unweighted matching
// (Theorem 3.4), Wgt-Aug-Paths (Algorithm 1), and the (1/2+c)-approximation
// Rand-Arr-Matching for weighted matching (Algorithm 2, Theorem 1.1).
package randarrival

import (
	"repro/internal/graph"
	"repro/internal/matchutil"
	"repro/internal/stream"
	"repro/internal/unwaug"
)

// UnweightedOptions configures UnweightedRandomArrival.
type UnweightedOptions struct {
	// PrefixFraction is p: the fraction of the stream used to build the
	// initial maximal matching M0. The paper uses a small constant
	// (p <= 0.0001 in the analysis); larger values work better at the
	// instance sizes experiments can afford. Default 0.1.
	PrefixFraction float64
	// Beta is the parameter handed to Unw-3-Aug-Paths. Default 0.3.
	Beta float64
}

func (o *UnweightedOptions) defaults() {
	if o.PrefixFraction <= 0 || o.PrefixFraction >= 1 {
		o.PrefixFraction = 0.1
	}
	if o.Beta <= 0 || o.Beta > 1 {
		o.Beta = 0.3
	}
}

// UnweightedResult reports the outcome of the Theorem 3.4 algorithm together
// with the per-branch diagnostics used by the experiment harness.
type UnweightedResult struct {
	M *graph.Matching
	// Branch names the winning branch: "stored" (max matching among
	// unmatched vertices), "greedy" (continued maximal matching), or
	// "augment" (M0 improved by 3-augmenting paths).
	Branch string
	// Sizes of the three candidate matchings.
	StoredSize, GreedySize, AugmentSize int
	// StoredEdges is |S1|, the space used by the first branch.
	StoredEdges int
}

// UnweightedRandomArrival runs the one-pass Section 3.1 algorithm on a
// random-order stream of an unweighted graph (edge weights are ignored and
// treated as 1): build a maximal matching M0 on the first p fraction, then
// in parallel (a) store edges among M0-free vertices and match them at the
// end, (b) keep growing M0 greedily, and (c) find 3-augmenting paths for M0
// with Unw-3-Aug-Paths; return the largest of the three.
func UnweightedRandomArrival(n int, s stream.EdgeStream, opts UnweightedOptions) UnweightedResult {
	opts.defaults()
	total := s.Len()
	prefix := int(opts.PrefixFraction * float64(total))

	unit := func(e graph.Edge) graph.Edge { return graph.Edge{U: e.U, V: e.V, W: 1} }

	m0 := graph.NewMatching(n)
	i := 0
	for ; i < prefix; i++ {
		e, ok := s.Next()
		if !ok {
			break
		}
		e = unit(e)
		if !m0.IsMatched(e.U) && !m0.IsMatched(e.V) {
			mustAdd(m0, e)
		}
	}

	greedy := m0.Clone()
	finder := unwaug.New(m0, opts.Beta)
	var stored []graph.Edge

	for {
		e, ok := s.Next()
		if !ok {
			break
		}
		e = unit(e)
		if !m0.IsMatched(e.U) && !m0.IsMatched(e.V) {
			stored = append(stored, e)
		}
		if !greedy.IsMatched(e.U) && !greedy.IsMatched(e.V) {
			mustAdd(greedy, e)
		}
		finder.Feed(e)
	}

	// Branch (a): M0 plus a maximum matching among the stored edges. The
	// stored subgraph touches only M0-free vertices, so any matching in it
	// extends M0 directly; the exact maximum is computed offline with the
	// blossom algorithm, as the Case-1 analysis requires.
	storedM := m0.Clone()
	if len(stored) > 0 {
		sub, err := graph.FromEdges(n, stored)
		if err == nil {
			for _, e := range matchutil.MaxCardinality(sub).Edges() {
				if !storedM.IsMatched(e.U) && !storedM.IsMatched(e.V) {
					mustAdd(storedM, e)
				}
			}
		}
	}

	// Branch (c): apply the 3-augmentations to a copy of M0.
	aug := m0.Clone()
	for _, p := range finder.Finalize() {
		// Paths are vertex-disjoint and consistent with M0 by
		// construction; Apply validates anyway.
		_, _ = graph.Apply(aug, p.Augmentation())
	}

	res := UnweightedResult{
		StoredSize:  storedM.Size(),
		GreedySize:  greedy.Size(),
		AugmentSize: aug.Size(),
		StoredEdges: len(stored),
	}
	res.M, res.Branch = storedM, "stored"
	if greedy.Size() > res.M.Size() {
		res.M, res.Branch = greedy, "greedy"
	}
	if aug.Size() > res.M.Size() {
		res.M, res.Branch = aug, "augment"
	}
	return res
}

// GreedyRandomArrival is the 1/2-approximation baseline: a single greedy
// maximal matching over the stream (unit weights).
func GreedyRandomArrival(n int, s stream.EdgeStream) *graph.Matching {
	m := graph.NewMatching(n)
	for e, ok := s.Next(); ok; e, ok = s.Next() {
		if !m.IsMatched(e.U) && !m.IsMatched(e.V) {
			mustAdd(m, graph.Edge{U: e.U, V: e.V, W: 1})
		}
	}
	return m
}

func mustAdd(m *graph.Matching, e graph.Edge) {
	if err := m.Add(e); err != nil {
		panic(err)
	}
}
