package randarrival

import (
	"math/bits"
	"math/rand"
	"sort"

	"repro/internal/graph"
	"repro/internal/localratio"
	"repro/internal/matchutil"
	"repro/internal/stream"
	"repro/internal/unwaug"
)

// numWeightClasses bounds the class index range of WeightClass: weights
// are int64, so bits.Len64 is at most 64 and classes live in [0, 64].
// That small fixed range is what lets the per-arrival hot path replace
// the map of Finder instances with a flat array indexed by class.
const numWeightClasses = 65

// WgtAugPaths is Algorithm 1 of the paper: it augments an initial matching
// M0 using (i) single-edge augmentations found through a streaming
// approximation over the surplus weights w'(e) = w(e) − w(M0(u)) − w(M0(v)),
// and (ii) weighted 3-augmentations found by filtering edges down to
// per-weight-class Unw-3-Aug-Paths instances over a randomly Marked half of
// M0 (the guessed middle edges).
//
// This is the arena-backed per-arrival form: Feed touches flat arrays
// only (a 65-slot class table instead of a map of finders, a stack-
// parallel slice instead of an origW map), and a value reused through
// Init keeps every arena across runs. The map-backed original is retained
// verbatim as NaiveWgtAugPaths — Invariant 27's reference — and the two
// are pinned bit-identical by the differential and fuzz nets.
type WgtAugPaths struct {
	m0    *graph.Matching
	alpha float64

	// markedAt[v] reports whether the M0 edge at v is Marked. Both
	// endpoints of a marked edge carry the flag.
	markedAt []bool

	// classes[i] is the active Unw-3-Aug-Paths instance for weight class
	// W_i = [2^(i-1), 2^i), nil when the class has no marked edges. The
	// finders and classM arrays are the arenas behind the active slots,
	// reused across Init calls; classIDs lists the active classes of the
	// current run (in first-marked order).
	classes  [numWeightClasses]*unwaug.Finder
	finders  [numWeightClasses]*unwaug.Finder
	classM   [numWeightClasses]*graph.Matching
	classIDs []int

	// apx is Approx-Wgt-Matching: the local-ratio processor over surplus
	// weights. origW[i] remembers the true weight of the edge at stack
	// position i of apx — Process pushes exactly when Feed appends, so
	// the slice is a parallel arena replacing the per-edge map insert.
	apx   *localratio.Processor
	origW []graph.Weight

	// sortIDs and sm are Finalize scratch (class order, surplus-unwind
	// shadow matching).
	sortIDs []int
	sm      *graph.Matching

	acct *stream.Accountant
}

// WeightClass returns the index i with w in [2^(i-1), 2^i), i.e. the W_i of
// Section 3.2.1; WeightClass(0) = 0 by convention.
func WeightClass(w graph.Weight) int {
	if w <= 0 {
		return 0
	}
	return bits.Len64(uint64(w))
}

// NewWgtAugPaths implements Initialize of Algorithm 1: it samples the
// Marked set (each M0 edge independently with probability 1/2) and creates
// one Unw-3-Aug-Paths instance per non-empty weight class of Marked.
func NewWgtAugPaths(m0 *graph.Matching, beta float64, rng *rand.Rand) *WgtAugPaths {
	w := &WgtAugPaths{}
	w.Init(m0, beta, rng, nil)
	return w
}

// Init (re)initialises w around m0, keeping every arena of a previous
// run. acct, when non-nil, is charged one word per marked M0 edge and
// flows into the per-class finders and the surplus processor, so the
// whole Algorithm 1 state answers to one Accountant. The rng draws are
// exactly those of the naive form (one Intn(2) per M0 edge, in M0.Edges()
// order), which is what makes the two forms bit-comparable downstream.
func (w *WgtAugPaths) Init(m0 *graph.Matching, beta float64, rng *rand.Rand, acct *stream.Accountant) {
	n := m0.N()
	w.m0 = m0
	w.alpha = 0.02
	w.acct = acct
	if cap(w.markedAt) < n {
		w.markedAt = make([]bool, n)
	} else {
		w.markedAt = w.markedAt[:n]
		clear(w.markedAt)
	}
	for _, c := range w.classIDs {
		w.classes[c] = nil
	}
	w.classIDs = w.classIDs[:0]
	if w.apx == nil {
		w.apx = localratio.New(n)
	} else {
		w.apx.Reset(n)
	}
	w.apx.SetAccountant(acct)
	w.origW = w.origW[:0]

	for _, e := range m0.Edges() {
		if rng.Intn(2) == 0 {
			continue
		}
		w.markedAt[e.U] = true
		w.markedAt[e.V] = true
		c := WeightClass(e.W)
		if w.classes[c] == nil {
			if w.classM[c] == nil {
				w.classM[c] = graph.NewMatching(n)
			} else {
				w.classM[c].Reset(n)
			}
			if w.finders[c] == nil {
				w.finders[c] = unwaug.New(w.classM[c], beta)
			} else {
				w.finders[c].Reset(w.classM[c], beta)
			}
			w.finders[c].SetAccountant(acct)
			w.classes[c] = w.finders[c]
			w.classIDs = append(w.classIDs, c)
		}
		// Subsets of a matching stay vertex disjoint; Add cannot fail.
		if err := w.classM[c].Add(e); err != nil {
			panic(err)
		}
		if acct != nil {
			acct.Hold(1)
		}
	}
}

// MarkedCount returns the number of marked M0 edges (diagnostics).
func (w *WgtAugPaths) MarkedCount() int {
	count := 0
	for v, marked := range w.markedAt {
		if marked && w.m0.Mate(v) > v {
			count++
		}
	}
	return count
}

// Feed implements Feed-Edge of Algorithm 1. This is the per-arrival hot
// path: no map operation and no allocation beyond amortised arena growth.
func (w *WgtAugPaths) Feed(e graph.Edge) {
	mu := w.m0.EdgeWeightAt(e.U)
	mv := w.m0.EdgeWeightAt(e.V)

	// Single-edge augmentation branch (line 7): positive surplus edges go
	// to Approx-Wgt-Matching under surplus weights.
	if e.W > mu+mv {
		surplus := graph.Edge{U: e.U, V: e.V, W: e.W - mu - mv}
		if w.apx.Process(surplus) {
			w.origW = append(w.origW, e.W)
		}
	}

	// 3-augmentation branch (lines 9–15): only edges with small surplus.
	if float64(e.W) > (1+w.alpha)*float64(mu+mv) {
		return
	}
	markedU := w.markedAt[e.U]
	markedV := w.markedAt[e.V]
	switch {
	case markedU && !markedV:
		if float64(e.W) > (1+2*w.alpha)*(0.5*float64(mu)+float64(mv)) {
			w.feedClass(e, e.U)
		}
	case markedV && !markedU:
		if float64(e.W) > (1+2*w.alpha)*(float64(mu)+0.5*float64(mv)) {
			w.feedClass(e, e.V)
		}
	}
}

// feedClass routes e to the Unw-3-Aug-Paths instance of the weight class of
// the marked middle edge at vertex mid. (Algorithm 1 as printed routes by
// the class of w(e); the analysis of Lemma 3.9 needs the class of the
// middle edge e_{i+1}, whose instance actually knows that matched edge, so
// we follow the analysis.)
func (w *WgtAugPaths) feedClass(e graph.Edge, mid int) {
	if finder := w.classes[WeightClass(w.m0.EdgeWeightAt(mid))]; finder != nil {
		finder.Feed(e)
	}
}

// Finalize implements Finalize of Algorithm 1: M1 applies the surplus
// matching M' on top of M0; M2 applies the per-class 3-augmentations from
// the highest class down, skipping conflicts; the heavier of the two wins.
func (w *WgtAugPaths) Finalize() *graph.Matching {
	// M1: replay the surplus-weight stack unwind (LIFO, greedy) against a
	// shadow matching while overlaying each taken edge on M0 with its true
	// weight from the stack-parallel origW arena (AddForced evicts the
	// conflicting M0 edges, realising gain w'(e) per added edge). The
	// taken set is exactly the naive form's apx.Unwind(); surplus edges
	// are pairwise disjoint, so the overlay order cannot change the
	// resulting matching.
	n := w.m0.N()
	m1 := w.m0.Clone()
	if w.sm == nil {
		w.sm = graph.NewMatching(n)
	} else {
		w.sm.Reset(n)
	}
	stack := w.apx.Stack()
	for i := len(stack) - 1; i >= 0; i-- {
		se := stack[i]
		if w.sm.IsMatched(se.U) || w.sm.IsMatched(se.V) {
			continue
		}
		mustAdd(w.sm, se)
		m1.AddForced(graph.Edge{U: se.U, V: se.V, W: w.origW[i]})
	}

	// M2: greedy non-conflicting 3-augmentations, highest class first.
	m2 := w.m0.Clone()
	w.sortIDs = append(w.sortIDs[:0], w.classIDs...)
	sort.Sort(sort.Reverse(sort.IntSlice(w.sortIDs)))
	for _, c := range w.sortIDs {
		for _, p := range w.classes[c].Finalize() {
			w.applyThreeAug(m2, p)
		}
	}

	if m2.Weight() > m1.Weight() {
		return m2
	}
	return m1
}

// applyThreeAug applies the weighted 3-augmentation induced by p on m: add
// o1 = (A,U) and o2 = (V,B) and remove every conflicting matched edge
// (e1, e2, e3 of the quintuple). It skips augmentations that conflict with
// previously applied ones or that are no longer gainful on the current m.
func (w *WgtAugPaths) applyThreeAug(m *graph.Matching, p matchutil.ThreeAugPath) {
	add := []graph.Edge{
		{U: p.A, V: p.U, W: p.WA},
		{U: p.V, V: p.B, W: p.WB},
	}
	// The finder guarantees disjointness against its own class, but classes
	// can collide; verify against the live matching.
	aug := graph.PathAugmentation(m, add)
	if aug.Gain() <= 0 {
		return
	}
	if !m.Has(p.U, p.V) {
		return // middle edge already displaced by a heavier class
	}
	_, _ = graph.Apply(m, aug)
}
