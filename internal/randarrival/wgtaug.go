package randarrival

import (
	"math/bits"
	"math/rand"
	"sort"

	"repro/internal/graph"
	"repro/internal/localratio"
	"repro/internal/matchutil"
	"repro/internal/unwaug"
)

// WgtAugPaths is Algorithm 1 of the paper: it augments an initial matching
// M0 using (i) single-edge augmentations found through a streaming
// approximation over the surplus weights w'(e) = w(e) − w(M0(u)) − w(M0(v)),
// and (ii) weighted 3-augmentations found by filtering edges down to
// per-weight-class Unw-3-Aug-Paths instances over a randomly Marked half of
// M0 (the guessed middle edges).
type WgtAugPaths struct {
	m0    *graph.Matching
	alpha float64

	// markedAt[v] reports whether the M0 edge at v is Marked. Both
	// endpoints of a marked edge carry the flag.
	markedAt []bool

	// classes[i] is the Unw-3-Aug-Paths instance for weight class
	// W_i = [2^(i-1), 2^i); populated lazily for non-empty classes.
	classes map[int]*unwaug.Finder

	// apx is Approx-Wgt-Matching: the local-ratio processor over surplus
	// weights. origW remembers the true weight of each edge fed to it so
	// the final matching is weighted correctly.
	apx   *localratio.Processor
	origW map[graph.Key]graph.Weight
}

// WeightClass returns the index i with w in [2^(i-1), 2^i), i.e. the W_i of
// Section 3.2.1; WeightClass(0) = 0 by convention.
func WeightClass(w graph.Weight) int {
	if w <= 0 {
		return 0
	}
	return bits.Len64(uint64(w))
}

// NewWgtAugPaths implements Initialize of Algorithm 1: it samples the
// Marked set (each M0 edge independently with probability 1/2) and creates
// one Unw-3-Aug-Paths instance per non-empty weight class of Marked.
func NewWgtAugPaths(m0 *graph.Matching, beta float64, rng *rand.Rand) *WgtAugPaths {
	n := m0.N()
	w := &WgtAugPaths{
		m0:       m0,
		alpha:    0.02,
		markedAt: make([]bool, n),
		classes:  make(map[int]*unwaug.Finder),
		apx:      localratio.New(n),
		origW:    make(map[graph.Key]graph.Weight),
	}
	perClass := make(map[int]*graph.Matching)
	for _, e := range m0.Edges() {
		if rng.Intn(2) == 0 {
			continue
		}
		w.markedAt[e.U] = true
		w.markedAt[e.V] = true
		c := WeightClass(e.W)
		pm, ok := perClass[c]
		if !ok {
			pm = graph.NewMatching(n)
			perClass[c] = pm
		}
		// Subsets of a matching stay vertex disjoint; Add cannot fail.
		if err := pm.Add(e); err != nil {
			panic(err)
		}
	}
	for c, pm := range perClass {
		w.classes[c] = unwaug.New(pm, beta)
	}
	return w
}

// MarkedCount returns the number of marked M0 edges (diagnostics).
func (w *WgtAugPaths) MarkedCount() int {
	count := 0
	for v, marked := range w.markedAt {
		if marked && w.m0.Mate(v) > v {
			count++
		}
	}
	return count
}

// Feed implements Feed-Edge of Algorithm 1.
func (w *WgtAugPaths) Feed(e graph.Edge) {
	mu := w.m0.EdgeWeightAt(e.U)
	mv := w.m0.EdgeWeightAt(e.V)

	// Single-edge augmentation branch (line 7): positive surplus edges go
	// to Approx-Wgt-Matching under surplus weights.
	if e.W > mu+mv {
		surplus := graph.Edge{U: e.U, V: e.V, W: e.W - mu - mv}
		if w.apx.Process(surplus) {
			w.origW[e.EdgeKey()] = e.W
		}
	}

	// 3-augmentation branch (lines 9–15): only edges with small surplus.
	if float64(e.W) > (1+w.alpha)*float64(mu+mv) {
		return
	}
	markedU := w.markedAt[e.U]
	markedV := w.markedAt[e.V]
	switch {
	case markedU && !markedV:
		if float64(e.W) > (1+2*w.alpha)*(0.5*float64(mu)+float64(mv)) {
			w.feedClass(e, e.U)
		}
	case markedV && !markedU:
		if float64(e.W) > (1+2*w.alpha)*(float64(mu)+0.5*float64(mv)) {
			w.feedClass(e, e.V)
		}
	}
}

// feedClass routes e to the Unw-3-Aug-Paths instance of the weight class of
// the marked middle edge at vertex mid. (Algorithm 1 as printed routes by
// the class of w(e); the analysis of Lemma 3.9 needs the class of the
// middle edge e_{i+1}, whose instance actually knows that matched edge, so
// we follow the analysis.)
func (w *WgtAugPaths) feedClass(e graph.Edge, mid int) {
	c := WeightClass(w.m0.EdgeWeightAt(mid))
	if finder, ok := w.classes[c]; ok {
		finder.Feed(e)
	}
}

// Finalize implements Finalize of Algorithm 1: M1 applies the surplus
// matching M' on top of M0; M2 applies the per-class 3-augmentations from
// the highest class down, skipping conflicts; the heavier of the two wins.
func (w *WgtAugPaths) Finalize() *graph.Matching {
	// M1: unwind the surplus-weight stack into a matching, then overlay it
	// on M0 with true weights (AddForced evicts the conflicting M0 edges,
	// realising gain w'(e) per added edge).
	m1 := w.m0.Clone()
	surplusM := w.apx.Unwind()
	for _, se := range surplusM.Edges() {
		orig, ok := w.origW[se.EdgeKey()]
		if !ok {
			continue
		}
		m1.AddForced(graph.Edge{U: se.U, V: se.V, W: orig})
	}

	// M2: greedy non-conflicting 3-augmentations, highest class first.
	m2 := w.m0.Clone()
	classIDs := make([]int, 0, len(w.classes))
	for c := range w.classes {
		classIDs = append(classIDs, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(classIDs)))
	for _, c := range classIDs {
		for _, p := range w.classes[c].Finalize() {
			w.applyThreeAug(m2, p)
		}
	}

	if m2.Weight() > m1.Weight() {
		return m2
	}
	return m1
}

// applyThreeAug applies the weighted 3-augmentation induced by p on m: add
// o1 = (A,U) and o2 = (V,B) and remove every conflicting matched edge
// (e1, e2, e3 of the quintuple). It skips augmentations that conflict with
// previously applied ones or that are no longer gainful on the current m.
func (w *WgtAugPaths) applyThreeAug(m *graph.Matching, p matchutil.ThreeAugPath) {
	add := []graph.Edge{
		{U: p.A, V: p.U, W: p.WA},
		{U: p.V, V: p.B, W: p.WB},
	}
	// The finder guarantees disjointness against its own class, but classes
	// can collide; verify against the live matching.
	aug := graph.PathAugmentation(m, add)
	if aug.Gain() <= 0 {
		return
	}
	if !m.Has(p.U, p.V) {
		return // middle edge already displaced by a heavier class
	}
	_, _ = graph.Apply(m, aug)
}
