package randarrival

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/matchutil"
	"repro/internal/stream"
)

func TestWeightClass(t *testing.T) {
	tests := []struct {
		w    graph.Weight
		want int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4}, {1 << 20, 21},
	}
	for _, tt := range tests {
		if got := WeightClass(tt.w); got != tt.want {
			t.Errorf("WeightClass(%d) = %d, want %d", tt.w, got, tt.want)
		}
	}
}

func TestUnweightedValidAndMaximalish(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		inst := graph.RandomGraph(60, 300, 1, rng)
		s := stream.RandomOrder(inst.G, rng)
		res := UnweightedRandomArrival(inst.G.N(), s, UnweightedOptions{})
		if err := res.M.Validate(); err != nil {
			t.Fatal(err)
		}
		if res.Branch == "" {
			t.Fatal("no branch recorded")
		}
	}
}

func TestUnweightedAtLeastGreedy(t *testing.T) {
	// The algorithm runs greedy as one branch, so it can never lose to the
	// plain greedy baseline on the same order.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		inst := graph.RandomGraph(80, 400, 1, rng)
		order := stream.RandomOrder(inst.G, rng)
		s1 := stream.FromEdges(order.Edges())
		s2 := stream.FromEdges(order.Edges())
		res := UnweightedRandomArrival(inst.G.N(), s1, UnweightedOptions{})
		greedy := GreedyRandomArrival(inst.G.N(), s2)
		if res.M.Size() < greedy.Size() {
			t.Fatalf("trial %d: algorithm %d < greedy %d", trial, res.M.Size(), greedy.Size())
		}
	}
}

func TestUnweightedBeatsHalfOnAugChain(t *testing.T) {
	// On chains of 3-augmenting paths greedy gets stuck at ~1/2 under bad
	// luck; the Theorem 3.4 algorithm must recover a strictly better
	// average ratio.
	rng := rand.New(rand.NewSource(3))
	segments := 120
	inst := graph.AugmentingChain(segments, 1, 1, rng)
	opt := 2 * segments

	trials := 30
	var algSum, greedySum float64
	for trial := 0; trial < trials; trial++ {
		order := stream.RandomOrder(inst.G, rng)
		s1 := stream.FromEdges(order.Edges())
		s2 := stream.FromEdges(order.Edges())
		res := UnweightedRandomArrival(inst.G.N(), s1, UnweightedOptions{Beta: 0.5})
		greedy := GreedyRandomArrival(inst.G.N(), s2)
		algSum += float64(res.M.Size()) / float64(opt)
		greedySum += float64(greedy.Size()) / float64(opt)
	}
	algAvg := algSum / float64(trials)
	greedyAvg := greedySum / float64(trials)
	if algAvg <= greedyAvg {
		t.Errorf("algorithm avg ratio %.4f not above greedy %.4f", algAvg, greedyAvg)
	}
	if algAvg < 0.5 {
		t.Errorf("algorithm avg ratio %.4f below 1/2", algAvg)
	}
}

func TestWgtAugPathsSingleEdgeAugmentation(t *testing.T) {
	// M0 = {1-2 (w=4), 3-4 (w=4)}; edge 2-3 of weight 20 has surplus 12 and
	// must be picked up by the M1 branch.
	m0 := graph.NewMatching(6)
	mustAdd(m0, graph.Edge{U: 1, V: 2, W: 4})
	mustAdd(m0, graph.Edge{U: 3, V: 4, W: 4})
	rng := rand.New(rand.NewSource(1))
	wap := NewWgtAugPaths(m0, 0.5, rng)
	wap.Feed(graph.Edge{U: 2, V: 3, W: 20})
	m := wap.Finalize()
	if m.Weight() != 20 {
		t.Errorf("weight = %d, want 20 (single heavy edge)", m.Weight())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWgtAugPathsThreeAugmentation(t *testing.T) {
	// M0 = {u-v w=10}; side edges a-u and v-b each w=8: gain 6 through the
	// 3-augmentation. The middle edge must be Marked for the finder to see
	// it; try seeds until one marks it (probability 1/2 per seed).
	found := false
	for seed := int64(0); seed < 20 && !found; seed++ {
		m0 := graph.NewMatching(4)
		mustAdd(m0, graph.Edge{U: 1, V: 2, W: 10})
		rng := rand.New(rand.NewSource(seed))
		wap := NewWgtAugPaths(m0, 1.0, rng)
		if wap.MarkedCount() == 0 {
			continue
		}
		wap.Feed(graph.Edge{U: 0, V: 1, W: 8})
		wap.Feed(graph.Edge{U: 2, V: 3, W: 8})
		m := wap.Finalize()
		if m.Weight() == 16 {
			found = true
		} else {
			t.Fatalf("seed %d: weight = %d, want 16", seed, m.Weight())
		}
	}
	if !found {
		t.Fatal("no seed marked the middle edge in 20 tries")
	}
}

func TestWgtAugPathsFilterSoundness(t *testing.T) {
	// Invariant 4 of DESIGN.md: every 3-augmentation the finder can return
	// has positive weighted gain, because the Feed filter enforces
	// w(o) > (1+2a)(w(mid)/2 + w(other)). Fuzz over random instances.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 40; trial++ {
		inst := graph.PlantedMatching(16, 40, 50, 120, rng)
		s := stream.RandomOrder(inst.G, rng)
		half := inst.G.M() / 2
		m0 := graph.NewMatching(inst.G.N())
		for i := 0; i < half; i++ {
			e, _ := s.Next()
			if !m0.IsMatched(e.U) && !m0.IsMatched(e.V) {
				mustAdd(m0, e)
			}
		}
		wap := NewWgtAugPaths(m0, 0.5, rng)
		for e, ok := s.Next(); ok; e, ok = s.Next() {
			wap.Feed(e)
		}
		before := m0.Weight()
		m := wap.Finalize()
		if m.Weight() < before {
			t.Fatalf("trial %d: Finalize decreased weight %d -> %d", trial, before, m.Weight())
		}
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRandArrMatchingHalfPlusOnPlanted(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	trials := 15
	var ratioSum float64
	for trial := 0; trial < trials; trial++ {
		inst := graph.PlantedMatching(200, 2000, 1000, 2000, rng)
		s := stream.RandomOrder(inst.G, rng)
		res := RandArrMatching(inst.G.N(), s, WeightedOptions{Rng: rng})
		if err := res.M.Validate(); err != nil {
			t.Fatal(err)
		}
		ratioSum += matchutil.Ratio(res.M, inst.OptWeight)
	}
	avg := ratioSum / float64(trials)
	// Theorem 1.1 promises 1/2 + c in expectation; on planted instances the
	// measured ratio should be comfortably above 1/2.
	if avg <= 0.5 {
		t.Errorf("average ratio %.4f not above 1/2", avg)
	}
}

func TestRandArrMatchingAgainstExactSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var ratioSum float64
	trials := 20
	for trial := 0; trial < trials; trial++ {
		inst := graph.RandomGraph(16, 60, 100, rng)
		opt, err := matchutil.MaxWeightExact(inst.G)
		if err != nil {
			t.Fatal(err)
		}
		s := stream.RandomOrder(inst.G, rng)
		res := RandArrMatching(inst.G.N(), s, WeightedOptions{Rng: rng})
		ratioSum += matchutil.Ratio(res.M, opt.Weight())
	}
	if avg := ratioSum / float64(trials); avg <= 0.5 {
		t.Errorf("average ratio vs exact = %.4f, want > 0.5", avg)
	}
}

func TestRandArrMatchingSpaceDiagnostics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 120
	inst := graph.RandomGraph(n, n*n/6, 1<<16, rng)
	s := stream.RandomOrder(inst.G, rng)
	res := RandArrMatching(n, s, WeightedOptions{Rng: rng})
	if res.StackSize <= 0 {
		t.Error("stack size not recorded")
	}
	if res.TSize < 0 || res.TSize > inst.G.M() {
		t.Errorf("TSize out of range: %d", res.TSize)
	}
	// Lemma 3.15 shape at this scale: |S| and |T| are far below m.
	if res.StackSize >= inst.G.M()/2 {
		t.Errorf("|S| = %d is not sublinear in m = %d", res.StackSize, inst.G.M())
	}
}

func TestRandArrMatchingEmptyAndTiny(t *testing.T) {
	res := RandArrMatching(4, stream.FromEdges(nil), WeightedOptions{})
	if res.M.Size() != 0 {
		t.Error("empty stream produced edges")
	}
	g := graph.New(2)
	g.MustAddEdge(0, 1, 7)
	res = RandArrMatching(2, stream.FromGraph(g), WeightedOptions{})
	if res.M.Weight() != 7 {
		t.Errorf("single-edge stream: weight %d, want 7", res.M.Weight())
	}
}
