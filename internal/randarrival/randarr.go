package randarrival

import (
	"math/rand"
	"sort"

	"repro/internal/graph"
	"repro/internal/localratio"
	"repro/internal/stream"
)

// WeightedOptions configures RandArrMatching (Algorithm 2).
type WeightedOptions struct {
	// PrefixFraction is the fraction p of the stream processed by the
	// local-ratio algorithm before potentials freeze. The paper sets
	// p = 100/log n; the default 0.05 plays the same role at experiment
	// scale.
	PrefixFraction float64
	// Beta is the Unw-3-Aug-Paths parameter used inside Wgt-Aug-Paths.
	Beta float64
	// Rng drives the Marked sampling. Required.
	Rng *rand.Rand
}

func (o *WeightedOptions) defaults() {
	if o.PrefixFraction <= 0 || o.PrefixFraction >= 1 {
		o.PrefixFraction = 0.05
	}
	if o.Beta <= 0 || o.Beta > 1 {
		o.Beta = 0.3
	}
	if o.Rng == nil {
		o.Rng = rand.New(rand.NewSource(1))
	}
}

// WeightedResult carries the Algorithm 2 output and the space diagnostics
// bounded by Lemma 3.15.
type WeightedResult struct {
	M *graph.Matching
	// Branch is "stack" when M1 (set T + stack unwinding) won and
	// "augment" when M2 (Wgt-Aug-Paths) won.
	Branch string
	// M0Weight is the weight of the local-ratio matching after the prefix.
	M0Weight graph.Weight
	// StackSize is |S|, the peak local-ratio stack length.
	StackSize int
	// TSize is |T|, the number of positive-residual edges stored after the
	// freeze.
	TSize int
}

// RandArrMatching is Algorithm 2 (Theorem 1.1): a single-pass streaming
// (1/2+c)-approximation for maximum weighted matching when the edges arrive
// in uniformly random order.
//
// Phase 1 runs the local-ratio algorithm on the first p fraction of the
// stream and freezes the vertex potentials; M0 is the matching unwound from
// the stack at that point. Phase 2 simultaneously (a) stores every later
// edge whose weight beats its frozen potentials (the set T) and (b) feeds
// every later edge to Wgt-Aug-Paths initialised with M0. Finally M1 is the
// best matching assembled from T plus the stack, M2 is the Wgt-Aug-Paths
// output, and the heavier one is returned.
func RandArrMatching(n int, s stream.EdgeStream, opts WeightedOptions) WeightedResult {
	opts.defaults()
	total := s.Len()
	prefix := int(opts.PrefixFraction * float64(total))

	proc := localratio.New(n)
	for i := 0; i < prefix; i++ {
		e, ok := s.Next()
		if !ok {
			break
		}
		proc.Process(e)
	}
	m0 := proc.Unwind()
	proc.Freeze()

	wap := NewWgtAugPaths(m0, opts.Beta, opts.Rng)
	var tSet []graph.Edge
	for {
		e, ok := s.Next()
		if !ok {
			break
		}
		if proc.Residual(e) > 0 {
			tSet = append(tSet, e)
		}
		wap.Feed(e)
	}

	m1 := buildStackMatching(n, proc, tSet)
	m2 := wap.Finalize()

	res := WeightedResult{
		M0Weight:  m0.Weight(),
		StackSize: proc.PeakStackLen(),
		TSize:     len(tSet),
	}
	if m2.Weight() > m1.Weight() {
		res.M, res.Branch = m2, "augment"
	} else {
		res.M, res.Branch = m1, "stack"
	}
	return res
}

// buildStackMatching implements lines 14–17 of Algorithm 2: build a matching
// from T maximising the residual weights w”(e) = w(e) − α*_u − α*_v, then
// unwind the local-ratio stack on top of it.
//
// The paper takes a maximum matching on T under w”; exact maximum weight
// matching on general graphs is outside this repository's substrate budget,
// so we use the greedy 1/2-approximation on w” (sorted by residual), which
// is all the Case-2 analysis (Lemma 3.13) consumes up to a constant factor
// in c. See DESIGN.md, substitution table.
func buildStackMatching(n int, proc *localratio.Processor, tSet []graph.Edge) *graph.Matching {
	byResidual := make([]graph.Edge, len(tSet))
	copy(byResidual, tSet)
	sort.Slice(byResidual, func(i, j int) bool {
		ri, rj := proc.Residual(byResidual[i]), proc.Residual(byResidual[j])
		if ri != rj {
			return ri > rj
		}
		if byResidual[i].U != byResidual[j].U {
			return byResidual[i].U < byResidual[j].U
		}
		return byResidual[i].V < byResidual[j].V
	})
	m1 := graph.NewMatching(n)
	for _, e := range byResidual {
		if !m1.IsMatched(e.U) && !m1.IsMatched(e.V) {
			mustAdd(m1, e)
		}
	}
	proc.UnwindInto(m1)
	return m1
}
