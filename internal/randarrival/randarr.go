package randarrival

import (
	"math/rand"
	"slices"

	"repro/internal/graph"
	"repro/internal/localratio"
	"repro/internal/stream"
)

// Arena owns the reusable per-run state of RandArrMatching: the local-ratio
// processor, the Wgt-Aug-Paths instance (with its 65-slot class table and
// per-class finder pools), and the T-set buffer. A zero Arena is ready to
// use; passing the same Arena to successive runs retains every internal
// allocation, so steady-state runs allocate only for the output matchings.
type Arena struct {
	proc *localratio.Processor
	wap  WgtAugPaths
	tSet []graph.Edge
}

// WeightedOptions configures RandArrMatching (Algorithm 2).
type WeightedOptions struct {
	// PrefixFraction is the fraction p of the stream processed by the
	// local-ratio algorithm before potentials freeze. The paper sets
	// p = 100/log n; the default 0.05 plays the same role at experiment
	// scale.
	PrefixFraction float64
	// Beta is the Unw-3-Aug-Paths parameter used inside Wgt-Aug-Paths.
	Beta float64
	// Rng drives the Marked sampling. Required.
	Rng *rand.Rand
	// Account, when non-nil, is the resource-accounting authority charged
	// for every stream-dependent word the run holds (stack, T-set, marked
	// classes, support sets); its Peak is reported as PeakWords. The run
	// charges into whatever state the accountant arrives with, so callers
	// comparing runs should Reset it between them.
	Account *stream.Accountant
	// Arena, when non-nil, supplies reusable per-run state (the PR 1
	// Scratch idiom lifted to the whole per-arrival path).
	Arena *Arena
	// Naive runs the retained map-backed Wgt-Aug-Paths reference form
	// instead of the flat arena form. Invariant 27 pins the two to
	// bit-identical results; the option exists so tests and same-run
	// benchmarks can hold the reference next to the hot path.
	Naive bool
}

func (o *WeightedOptions) defaults() {
	if o.PrefixFraction <= 0 || o.PrefixFraction >= 1 {
		o.PrefixFraction = 0.05
	}
	if o.Beta <= 0 || o.Beta > 1 {
		o.Beta = 0.3
	}
	if o.Rng == nil {
		o.Rng = rand.New(rand.NewSource(1))
	}
}

// WeightedResult carries the Algorithm 2 output and the space diagnostics
// bounded by Lemma 3.15.
type WeightedResult struct {
	M *graph.Matching
	// Branch is "stack" when M1 (set T + stack unwinding) won and
	// "augment" when M2 (Wgt-Aug-Paths) won.
	Branch string
	// M0Weight is the weight of the local-ratio matching after the prefix.
	M0Weight graph.Weight
	// StackSize is |S|, the peak local-ratio stack length.
	StackSize int
	// TSize is |T|, the number of positive-residual edges stored after the
	// freeze.
	TSize int
	// Passes is the number of stream passes the run consumed, reported as
	// the difference of the stream's own Passes() counter around the run
	// (the accounting authority; Algorithm 2 is single-pass, so this is 1).
	Passes int
	// PeakWords is Account's peak held-word count over the run, 0 when no
	// accountant was supplied.
	PeakWords int
}

// feeder is the part of Wgt-Aug-Paths Algorithm 2 consumes; both the flat
// arena form and the retained naive form satisfy it.
type feeder interface {
	Feed(graph.Edge)
	Finalize() *graph.Matching
}

// RandArrMatching is Algorithm 2 (Theorem 1.1): a single-pass streaming
// (1/2+c)-approximation for maximum weighted matching when the edges arrive
// in uniformly random order.
//
// Phase 1 runs the local-ratio algorithm on the first p fraction of the
// stream and freezes the vertex potentials; M0 is the matching unwound from
// the stack at that point. Phase 2 simultaneously (a) stores every later
// edge whose weight beats its frozen potentials (the set T) and (b) feeds
// every later edge to Wgt-Aug-Paths initialised with M0. Finally M1 is the
// best matching assembled from T plus the stack, M2 is the Wgt-Aug-Paths
// output, and the heavier one is returned.
//
// The stream is Reset at entry: the run owns its pass structure, so a
// stream another consumer already advanced cannot silently shrink phase 1
// (which would skew the prefix split and, with it, the whole analysis).
func RandArrMatching(n int, s stream.EdgeStream, opts WeightedOptions) WeightedResult {
	opts.defaults()
	s.Reset()
	passes0 := s.Passes()
	acct := opts.Account
	total := s.Len()
	prefix := int(opts.PrefixFraction * float64(total))

	var proc *localratio.Processor
	if a := opts.Arena; a != nil {
		if a.proc == nil {
			a.proc = localratio.New(n)
		} else {
			a.proc.Reset(n)
		}
		proc = a.proc
	} else {
		proc = localratio.New(n)
	}
	proc.SetAccountant(acct)
	for i := 0; i < prefix; i++ {
		e, ok := s.Next()
		if !ok {
			break
		}
		proc.Process(e)
	}
	m0 := proc.Unwind()
	proc.Freeze()

	var wap feeder
	switch {
	case opts.Naive:
		wap = NewNaiveWgtAugPaths(m0, opts.Beta, opts.Rng, acct)
	case opts.Arena != nil:
		opts.Arena.wap.Init(m0, opts.Beta, opts.Rng, acct)
		wap = &opts.Arena.wap
	default:
		w := &WgtAugPaths{}
		w.Init(m0, opts.Beta, opts.Rng, acct)
		wap = w
	}

	var tSet []graph.Edge
	if opts.Arena != nil {
		tSet = opts.Arena.tSet[:0]
	}
	for {
		e, ok := s.Next()
		if !ok {
			break
		}
		if proc.Residual(e) > 0 {
			tSet = append(tSet, e)
			if acct != nil {
				acct.Hold(1)
			}
		}
		wap.Feed(e)
	}
	if opts.Arena != nil {
		opts.Arena.tSet = tSet
	}

	m1 := buildStackMatching(n, proc, tSet)
	m2 := wap.Finalize()

	res := WeightedResult{
		M0Weight:  m0.Weight(),
		StackSize: proc.PeakStackLen(),
		TSize:     len(tSet),
		Passes:    s.Passes() - passes0,
	}
	if acct != nil {
		res.PeakWords = acct.Peak()
	}
	if m2.Weight() > m1.Weight() {
		res.M, res.Branch = m2, "augment"
	} else {
		res.M, res.Branch = m1, "stack"
	}
	return res
}

// buildStackMatching implements lines 14–17 of Algorithm 2: build a matching
// from T maximising the residual weights w”(e) = w(e) − α*_u − α*_v, then
// unwind the local-ratio stack on top of it.
//
// The paper takes a maximum matching on T under w”; exact maximum weight
// matching on general graphs is outside this repository's substrate budget,
// so we use the greedy 1/2-approximation on w” (sorted by residual), which
// is all the Case-2 analysis (Lemma 3.13) consumes up to a constant factor
// in c. See DESIGN.md, substitution table.
func buildStackMatching(n int, proc *localratio.Processor, tSet []graph.Edge) *graph.Matching {
	type resEdge struct {
		e graph.Edge
		r graph.Weight
	}
	byResidual := make([]resEdge, len(tSet))
	for i, e := range tSet {
		byResidual[i] = resEdge{e, proc.Residual(e)}
	}
	// The key (residual desc, U, V) is a total order on distinct edges, so
	// the comparison-sort algorithm cannot change the greedy outcome.
	slices.SortFunc(byResidual, func(a, b resEdge) int {
		if a.r != b.r {
			if a.r > b.r {
				return -1
			}
			return 1
		}
		if a.e.U != b.e.U {
			return a.e.U - b.e.U
		}
		return a.e.V - b.e.V
	})
	m1 := graph.NewMatching(n)
	for _, re := range byResidual {
		if !m1.IsMatched(re.e.U) && !m1.IsMatched(re.e.V) {
			mustAdd(m1, re.e)
		}
	}
	proc.UnwindInto(m1)
	return m1
}
