package randarrival

// Invariant 27 (per-arrival half): the arena-backed hot path —
// WgtAugPaths' flat 65-slot class table, stack-parallel origW, and the
// Arena-reused processor — is bit-identical to the retained naive forms
// for every stream: same matching edges, same branch, same diagnostics,
// same accountant peaks. The naive forms are not test doubles; they are
// the PR 9-style executable reference kept compiled in the package.

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/localratio"
	"repro/internal/solvertest"
	"repro/internal/stream"
)

func assertSameMatching(t *testing.T, label string, a, b *graph.Matching) {
	t.Helper()
	if a.Weight() != b.Weight() || a.Size() != b.Size() {
		t.Fatalf("%s: weight/size diverge: %d/%d vs %d/%d",
			label, a.Weight(), a.Size(), b.Weight(), b.Size())
	}
	ae, be := a.Edges(), b.Edges()
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("%s: edge %d diverges: %v vs %v", label, i, ae[i], be[i])
		}
	}
}

func runBoth(t *testing.T, n int, edges []graph.Edge, seed int64, arena *Arena) (WeightedResult, WeightedResult) {
	t.Helper()
	var acctA, acctN stream.Accountant
	flat := RandArrMatching(n, stream.FromEdges(edges), WeightedOptions{
		Rng: rand.New(rand.NewSource(seed)), Account: &acctA, Arena: arena,
	})
	naive := RandArrMatching(n, stream.FromEdges(edges), WeightedOptions{
		Rng: rand.New(rand.NewSource(seed)), Account: &acctN, Naive: true,
	})
	if acctA.Peak() != acctN.Peak() {
		t.Fatalf("accountant peaks diverge: arena %d naive %d", acctA.Peak(), acctN.Peak())
	}
	return flat, naive
}

// TestRandArrArenaNaiveBitIdentical runs Algorithm 2 with the arena forms
// against the naive forms over every solvertest family, reusing one Arena
// across all of them (so cross-run arena pollution would be caught), in
// random and adversarial order.
func TestRandArrArenaNaiveBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	arena := &Arena{}
	for _, w := range solvertest.Workloads(rng) {
		for _, order := range []string{"arrival", "random"} {
			edges := w.G.Edges()
			if order == "random" {
				edges = stream.RandomOrder(w.G, rng).Edges()
			}
			for seed := int64(0); seed < 3; seed++ {
				flat, naive := runBoth(t, w.G.N(), edges, seed, arena)
				label := w.Name + "/" + order
				assertSameMatching(t, label, flat.M, naive.M)
				if flat.Branch != naive.Branch {
					t.Fatalf("%s: branch %q vs %q", label, flat.Branch, naive.Branch)
				}
				if flat.M0Weight != naive.M0Weight || flat.StackSize != naive.StackSize ||
					flat.TSize != naive.TSize || flat.PeakWords != naive.PeakWords {
					t.Fatalf("%s: diagnostics diverge: %+v vs %+v", label, flat, naive)
				}
				if flat.Passes != 1 || naive.Passes != 1 {
					t.Fatalf("%s: Algorithm 2 must be single-pass, got %d/%d",
						label, flat.Passes, naive.Passes)
				}
			}
		}
	}
}

// TestWgtAugPathsArenaNaiveBitIdentical drives the two Wgt-Aug-Paths forms
// directly (outside Algorithm 2) with a shared M0 and identical rng
// streams, reusing the flat form's arenas across rounds via Init.
func TestWgtAugPathsArenaNaiveBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	flat := &WgtAugPaths{}
	for round := 0; round < 6; round++ {
		inst := graph.RandomGraph(60+10*round, 400, 1<<uint(6+round), rng)
		edges := stream.RandomOrder(inst.G, rng).Edges()
		m0 := localratio.Run(inst.G.N(), edges[:len(edges)/10])

		seed := int64(100 + round)
		var acctA, acctN stream.Accountant
		flat.Init(m0, 0.3, rand.New(rand.NewSource(seed)), &acctA)
		naive := NewNaiveWgtAugPaths(m0, 0.3, rand.New(rand.NewSource(seed)), &acctN)
		for _, e := range edges[len(edges)/10:] {
			flat.Feed(e)
			naive.Feed(e)
		}
		assertSameMatching(t, "finalize", flat.Finalize(), naive.Finalize())
		if flat.MarkedCount() == 0 && m0.Size() > 4 {
			t.Logf("round %d: no marked edges (legal but unlikely)", round)
		}
		if acctA.Peak() != acctN.Peak() {
			t.Fatalf("round %d: accountant peaks diverge: %d vs %d", round, acctA.Peak(), acctN.Peak())
		}
	}
}

// TestRandArrResetsReusedStream is the PR 10 regression for the reused
// stream seam: a stream another consumer already advanced (or fully
// drained) must produce exactly the run a fresh stream produces —
// RandArrMatching owns its pass structure and Resets at entry.
func TestRandArrResetsReusedStream(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	inst := graph.PlantedMatching(80, 400, 100, 200, rng)
	edges := stream.RandomOrder(inst.G, rng).Edges()

	fresh := RandArrMatching(inst.G.N(), stream.FromEdges(edges),
		WeightedOptions{Rng: rand.New(rand.NewSource(1))})

	for _, consume := range []int{1, len(edges) / 2, len(edges)} {
		s := stream.FromEdges(edges)
		for i := 0; i < consume; i++ {
			s.Next()
		}
		reused := RandArrMatching(inst.G.N(), s, WeightedOptions{Rng: rand.New(rand.NewSource(1))})
		assertSameMatching(t, "reused-stream", fresh.M, reused.M)
		if reused.M0Weight != fresh.M0Weight || reused.Branch != fresh.Branch {
			t.Fatalf("consume=%d: run diverged from fresh stream (%+v vs %+v)",
				consume, reused, fresh)
		}
		if reused.Passes != 1 {
			t.Fatalf("consume=%d: Passes = %d, want 1", consume, reused.Passes)
		}
	}
}

// TestRandArrFileStreamDifferential: Algorithm 2 over a disk-backed stream
// is bit-identical to the same run over the in-RAM stream (Invariant 27,
// stream half at the algorithm level).
func TestRandArrFileStreamDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, w := range solvertest.Workloads(rng) {
		edges := stream.RandomOrder(w.G, rng).Edges()
		path := t.TempDir() + "/" + w.Name + ".estream"
		if err := stream.WriteFileEdges(path, w.G.N(), edges); err != nil {
			t.Fatalf("%s: WriteFileEdges: %v", w.Name, err)
		}
		fs, err := stream.OpenFile(path)
		if err != nil {
			t.Fatalf("%s: OpenFile: %v", w.Name, err)
		}
		var acctF, acctS stream.Accountant
		fromFile := RandArrMatching(w.G.N(), fs, WeightedOptions{
			Rng: rand.New(rand.NewSource(9)), Account: &acctF,
		})
		fs.Close()
		fromSlice := RandArrMatching(w.G.N(), stream.FromEdges(edges), WeightedOptions{
			Rng: rand.New(rand.NewSource(9)), Account: &acctS,
		})
		assertSameMatching(t, w.Name, fromFile.M, fromSlice.M)
		if fromFile.PeakWords != fromSlice.PeakWords || acctF.Peak() != acctS.Peak() {
			t.Fatalf("%s: peaks diverge: %d/%d vs %d/%d",
				w.Name, fromFile.PeakWords, acctF.Peak(), fromSlice.PeakWords, acctS.Peak())
		}
		if fromFile.Passes != fromSlice.Passes {
			t.Fatalf("%s: passes diverge: %d vs %d", w.Name, fromFile.Passes, fromSlice.Passes)
		}
	}
}

// FuzzRandArrEquivalence fuzzes the arena/naive equivalence over random
// instances: any (seed, n, m) triple must produce bit-identical runs.
func FuzzRandArrEquivalence(f *testing.F) {
	f.Add(int64(1), 20, 60)
	f.Add(int64(42), 50, 300)
	f.Add(int64(7), 8, 8)
	f.Add(int64(99), 2, 1)
	f.Fuzz(func(t *testing.T, seed int64, n, m int) {
		if n < 2 || n > 200 || m < 0 || m > 2000 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		inst := graph.RandomGraph(n, m, 1<<16, rng)
		edges := stream.RandomOrder(inst.G, rng).Edges()
		flat, naive := runBoth(t, n, edges, seed, &Arena{})
		assertSameMatching(t, "fuzz", flat.M, naive.M)
		if flat.Branch != naive.Branch || flat.StackSize != naive.StackSize ||
			flat.TSize != naive.TSize || flat.PeakWords != naive.PeakWords {
			t.Fatalf("diagnostics diverge: %+v vs %+v", flat, naive)
		}
	})
}
