package randarrival

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/graph"
	"repro/internal/matchutil"
	"repro/internal/stream"
)

// TestRandomVsAdversarialSpace contrasts the Lemma 3.15 space story: random
// arrival keeps |T| small while an ascending-weight adversarial order
// inflates it (every later edge beats the frozen potentials).
func TestRandomVsAdversarialSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 150
	inst := graph.RandomGraph(n, n*n/6, 1<<20, rng)

	random := RandArrMatching(n, stream.RandomOrder(inst.G, rng), WeightedOptions{Rng: rng})

	asc := inst.G.CopyEdges()
	sort.Slice(asc, func(i, j int) bool { return asc[i].W < asc[j].W })
	adversarial := RandArrMatching(n, stream.FromEdges(asc), WeightedOptions{Rng: rng})

	if random.TSize >= adversarial.TSize {
		t.Errorf("|T| random (%d) not below adversarial ascending (%d)",
			random.TSize, adversarial.TSize)
	}
}

// TestWeightedStillValidOnAdversarialOrder: Theorem 1.1 only promises
// (1/2+c) for random order, but the algorithm must stay correct (valid
// matching, >= some weight) on any order.
func TestWeightedStillValidOnAdversarialOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	inst := graph.PlantedMatching(100, 600, 100, 200, rng)
	orders := map[string][]graph.Edge{
		"insertion":  inst.G.CopyEdges(),
		"descending": inst.G.SortedEdges(),
	}
	asc := inst.G.SortedEdges()
	for i, j := 0, len(asc)-1; i < j; i, j = i+1, j-1 {
		asc[i], asc[j] = asc[j], asc[i]
	}
	orders["ascending"] = asc

	for name, edges := range orders {
		res := RandArrMatching(inst.G.N(), stream.FromEdges(edges), WeightedOptions{Rng: rng})
		if err := res.M.Validate(); err != nil {
			t.Fatalf("%s order: %v", name, err)
		}
		if matchutil.Ratio(res.M, inst.OptWeight) < 0.4 {
			t.Errorf("%s order: ratio %.4f collapsed", name, matchutil.Ratio(res.M, inst.OptWeight))
		}
	}
}

// TestWgtAugPathsClassRouting: support edges must reach the finder of the
// *middle edge's* weight class (the Lemma 3.9 semantics; see the feedClass
// comment), so a heavy middle edge with slightly lighter side edges is
// augmented even though the side edges fall in a lower class.
func TestWgtAugPathsClassRouting(t *testing.T) {
	// Middle edge 16 (class 5 = [16,32)); side edges 15 (class 4).
	m0 := graph.NewMatching(4)
	mustAdd(m0, graph.Edge{U: 1, V: 2, W: 16})
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		wap := NewWgtAugPaths(m0, 1.0, rng)
		if wap.MarkedCount() == 0 {
			continue
		}
		wap.Feed(graph.Edge{U: 0, V: 1, W: 15})
		wap.Feed(graph.Edge{U: 2, V: 3, W: 15})
		m := wap.Finalize()
		if m.Weight() != 30 {
			t.Fatalf("seed %d: weight = %d, want 30 (cross-class 3-augmentation)", seed, m.Weight())
		}
		return
	}
	t.Fatal("middle edge never marked in 20 seeds")
}

// TestPrefixFractionExtremes: degenerate prefix fractions must not break
// the algorithm.
func TestPrefixFractionExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	inst := graph.PlantedMatching(60, 300, 100, 200, rng)
	for _, p := range []float64{-1, 0, 0.5, 0.99, 1, 2} {
		s := stream.RandomOrder(inst.G, rng)
		res := RandArrMatching(inst.G.N(), s, WeightedOptions{PrefixFraction: p, Rng: rng})
		if err := res.M.Validate(); err != nil {
			t.Fatalf("p=%v: %v", p, err)
		}
		if res.M.Size() == 0 {
			t.Errorf("p=%v: empty matching", p)
		}
	}
}

// TestUnweightedBranchDiagnostics: the three branch sizes must be
// consistent with the returned matching.
func TestUnweightedBranchDiagnostics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	inst := graph.RandomGraph(60, 500, 1, rng)
	res := UnweightedRandomArrival(inst.G.N(), stream.RandomOrder(inst.G, rng), UnweightedOptions{})
	best := res.StoredSize
	if res.GreedySize > best {
		best = res.GreedySize
	}
	if res.AugmentSize > best {
		best = res.AugmentSize
	}
	if res.M.Size() != best {
		t.Errorf("returned size %d != max branch size %d", res.M.Size(), best)
	}
}
