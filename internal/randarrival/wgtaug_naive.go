package randarrival

import (
	"math/rand"
	"sort"

	"repro/internal/graph"
	"repro/internal/localratio"
	"repro/internal/matchutil"
	"repro/internal/stream"
	"repro/internal/unwaug"
)

// NaiveWgtAugPaths is the pre-arena form of WgtAugPaths, retained verbatim
// as the executable reference for Invariant 27: a map of per-class finders
// keyed by weight class and a per-edge map from edge key to original
// weight. It allocates per run and hits two map operations on the Feed hot
// path, which is exactly what the flat form removes; the differential and
// fuzz nets assert the two produce bit-identical matchings, branches, and
// accountant peaks for every stream.
type NaiveWgtAugPaths struct {
	m0    *graph.Matching
	alpha float64

	// markedAt[v] reports whether the M0 edge at v is Marked. Both
	// endpoints of a marked edge carry the flag.
	markedAt []bool

	// classes[i] is the Unw-3-Aug-Paths instance for weight class
	// W_i = [2^(i-1), 2^i); populated lazily for non-empty classes.
	classes map[int]*unwaug.Finder

	// apx is Approx-Wgt-Matching: the local-ratio processor over surplus
	// weights. origW remembers the true weight of each edge fed to it so
	// the final matching is weighted correctly.
	apx   *localratio.Processor
	origW map[graph.Key]graph.Weight
}

// NewNaiveWgtAugPaths implements Initialize of Algorithm 1 with the
// map-backed state. The rng draws (one Intn(2) per M0 edge, in M0.Edges()
// order) and the accountant charge sequence match WgtAugPaths.Init exactly.
func NewNaiveWgtAugPaths(m0 *graph.Matching, beta float64, rng *rand.Rand, acct *stream.Accountant) *NaiveWgtAugPaths {
	n := m0.N()
	w := &NaiveWgtAugPaths{
		m0:       m0,
		alpha:    0.02,
		markedAt: make([]bool, n),
		classes:  make(map[int]*unwaug.Finder),
		apx:      localratio.New(n),
		origW:    make(map[graph.Key]graph.Weight),
	}
	w.apx.SetAccountant(acct)
	perClass := make(map[int]*graph.Matching)
	for _, e := range m0.Edges() {
		if rng.Intn(2) == 0 {
			continue
		}
		w.markedAt[e.U] = true
		w.markedAt[e.V] = true
		c := WeightClass(e.W)
		pm, ok := perClass[c]
		if !ok {
			pm = graph.NewMatching(n)
			perClass[c] = pm
		}
		// Subsets of a matching stay vertex disjoint; Add cannot fail.
		if err := pm.Add(e); err != nil {
			panic(err)
		}
		if acct != nil {
			acct.Hold(1)
		}
	}
	for c, pm := range perClass {
		w.classes[c] = unwaug.New(pm, beta)
		w.classes[c].SetAccountant(acct)
	}
	return w
}

// Feed implements Feed-Edge of Algorithm 1 (map-backed reference form).
func (w *NaiveWgtAugPaths) Feed(e graph.Edge) {
	mu := w.m0.EdgeWeightAt(e.U)
	mv := w.m0.EdgeWeightAt(e.V)

	// Single-edge augmentation branch (line 7): positive surplus edges go
	// to Approx-Wgt-Matching under surplus weights.
	if e.W > mu+mv {
		surplus := graph.Edge{U: e.U, V: e.V, W: e.W - mu - mv}
		if w.apx.Process(surplus) {
			w.origW[e.EdgeKey()] = e.W
		}
	}

	// 3-augmentation branch (lines 9–15): only edges with small surplus.
	if float64(e.W) > (1+w.alpha)*float64(mu+mv) {
		return
	}
	markedU := w.markedAt[e.U]
	markedV := w.markedAt[e.V]
	switch {
	case markedU && !markedV:
		if float64(e.W) > (1+2*w.alpha)*(0.5*float64(mu)+float64(mv)) {
			w.feedClass(e, e.U)
		}
	case markedV && !markedU:
		if float64(e.W) > (1+2*w.alpha)*(float64(mu)+0.5*float64(mv)) {
			w.feedClass(e, e.V)
		}
	}
}

func (w *NaiveWgtAugPaths) feedClass(e graph.Edge, mid int) {
	c := WeightClass(w.m0.EdgeWeightAt(mid))
	if finder, ok := w.classes[c]; ok {
		finder.Feed(e)
	}
}

// Finalize implements Finalize of Algorithm 1 (map-backed reference form).
func (w *NaiveWgtAugPaths) Finalize() *graph.Matching {
	// M1: unwind the surplus-weight stack into a matching, then overlay it
	// on M0 with true weights (AddForced evicts the conflicting M0 edges,
	// realising gain w'(e) per added edge).
	m1 := w.m0.Clone()
	surplusM := w.apx.Unwind()
	for _, se := range surplusM.Edges() {
		orig, ok := w.origW[se.EdgeKey()]
		if !ok {
			continue
		}
		m1.AddForced(graph.Edge{U: se.U, V: se.V, W: orig})
	}

	// M2: greedy non-conflicting 3-augmentations, highest class first.
	m2 := w.m0.Clone()
	classIDs := make([]int, 0, len(w.classes))
	for c := range w.classes {
		classIDs = append(classIDs, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(classIDs)))
	for _, c := range classIDs {
		for _, p := range w.classes[c].Finalize() {
			w.applyThreeAug(m2, p)
		}
	}

	if m2.Weight() > m1.Weight() {
		return m2
	}
	return m1
}

func (w *NaiveWgtAugPaths) applyThreeAug(m *graph.Matching, p matchutil.ThreeAugPath) {
	add := []graph.Edge{
		{U: p.A, V: p.U, W: p.WA},
		{U: p.V, V: p.B, W: p.WB},
	}
	// The finder guarantees disjointness against its own class, but classes
	// can collide; verify against the live matching.
	aug := graph.PathAugmentation(m, add)
	if aug.Gain() <= 0 {
		return
	}
	if !m.Has(p.U, p.V) {
		return // middle edge already displaced by a heavier class
	}
	_, _ = graph.Apply(m, aug)
}
