package layered

import (
	"math/rand"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/graph"
)

// isAugmentingPath is the predicate the generic symmetric-difference route
// used to select augmenting paths (both end edges in M').
func isAugmentingPath(c graph.AlternatingComponent) bool {
	if c.IsCycle || c.EdgeCount() == 0 {
		return false
	}
	return !c.InFirst[0] && !c.InFirst[c.EdgeCount()-1]
}

// TestAugmentingWalksMatchSymmetricDifference checks the direct extraction
// against the reference route (SymmetricDifference → filter → project) on
// solved layered graphs from random instances: the same multiset of
// projected walks must come out, and the per-walk best augmentations must
// have identical gains.
func TestAugmentingWalksMatchSymmetricDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	prm := Params{}.WithDefaults()
	pairs := EnumerateGoodPairs(prm)

	for trial := 0; trial < 6; trial++ {
		inst := graph.PlantedMatching(40, 200, 60, 120, rng)
		par := Parametrize(inst.G.N(), inst.G.Edges(), inst.Opt, rng)
		scratch := NewScratch()
		ix := scratch.Index(par, 120, prm)
		for pi, tau := range pairs {
			if pi%5 != trial%5 {
				continue
			}
			lay := BuildIndexed(ix, tau, scratch)
			if len(lay.Y) == 0 {
				continue
			}
			lp := lay.LPrimeEdges()
			if len(lp) == 0 {
				continue
			}
			res := bipartite.HopcroftKarp(&bipartite.Bip{N: lay.NumV, Side: lay.Sides(), Edges: lp})

			// Reference: generic symmetric difference, filtered, projected.
			type flatWalk struct {
				key  string
				gain graph.Weight
				ok   bool
			}
			keyOf := func(w Walk) string {
				// Canonical orientation: compare against the reverse.
				fwd := ""
				rev := ""
				for i := range w.Vertices {
					fwd += string(rune(w.Vertices[i])) + ","
					rev += string(rune(w.Vertices[len(w.Vertices)-1-i])) + ","
				}
				if rev < fwd {
					return rev
				}
				return fwd
			}
			var want []flatWalk
			mlpRef := graph.NewMatching(lay.NumV)
			for _, e := range lay.InteriorX {
				if err := mlpRef.Add(e); err != nil {
					t.Fatal(err)
				}
			}
			for _, c := range graph.SymmetricDifference(mlpRef, res.M) {
				if !isAugmentingPath(c) {
					continue
				}
				walk := lay.ProjectComponent(c)
				_, gain, ok := BestAugmentation(inst.Opt, walk)
				want = append(want, flatWalk{key: keyOf(walk), gain: gain, ok: ok})
			}

			var got []flatWalk
			lay.AugmentingWalks(res.M, func(w Walk) {
				cp := Walk{
					Vertices: append([]int(nil), w.Vertices...),
					Matched:  append([]bool(nil), w.Matched...),
					Weights:  append([]graph.Weight(nil), w.Weights...),
				}
				aug, gain, ok := scratch.BestAugmentation(inst.Opt, cp)
				if ok {
					// The arena construction must agree with the public one.
					refAug, refGain, refOK := BestAugmentation(inst.Opt, cp)
					if !refOK || refGain != gain {
						t.Fatalf("scratch BestAugmentation gain %d, reference %d (ok=%v)", gain, refGain, refOK)
					}
					if aug.Gain() != refAug.Gain() {
						t.Fatalf("constructed augmentation gain %d, reference %d", aug.Gain(), refAug.Gain())
					}
				} else if _, _, refOK := BestAugmentation(inst.Opt, cp); refOK {
					t.Fatalf("scratch BestAugmentation missed a positive augmentation")
				}
				got = append(got, flatWalk{key: keyOf(cp), gain: gain, ok: ok})
			})

			if len(got) != len(want) {
				t.Fatalf("pair %d: extracted %d walks, reference %d", pi, len(got), len(want))
			}
			wantSet := make(map[string]flatWalk, len(want))
			for _, fw := range want {
				wantSet[fw.key] = fw
			}
			for _, fw := range got {
				ref, ok := wantSet[fw.key]
				if !ok {
					t.Fatalf("pair %d: walk %q not produced by reference route", pi, fw.key)
				}
				if ref.ok != fw.ok || (fw.ok && ref.gain != fw.gain) {
					t.Fatalf("pair %d: walk %q gain (%d,%v) vs reference (%d,%v)",
						pi, fw.key, fw.gain, fw.ok, ref.gain, ref.ok)
				}
			}
		}
	}
}

// TestScratchBestAugmentationMatchesPublic fuzzes the arena decomposition +
// gain scan against the public Decompose-based BestAugmentation on random
// alternating walks, including non-simple ones with repeated vertices.
func TestScratchBestAugmentationMatchesPublic(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	scratch := NewScratch()
	for trial := 0; trial < 3000; trial++ {
		n := 3 + rng.Intn(8)
		m := graph.NewMatching(n)
		// Random partial matching.
		for v := 0; v+1 < n; v += 2 {
			if rng.Intn(2) == 0 {
				if err := m.Add(graph.Edge{U: v, V: v + 1, W: graph.Weight(1 + rng.Intn(50))}); err != nil {
					t.Fatal(err)
				}
			}
		}
		// Random alternating walk over the vertex set (not necessarily a
		// real subgraph — BestAugmentation only consumes the labels). Real
		// walks project simple-graph edges, so consecutive vertices always
		// differ; self-loop steps are excluded.
		length := 1 + rng.Intn(8)
		w := Walk{Vertices: []int{rng.Intn(n)}}
		matched := rng.Intn(2) == 0
		for i := 0; i < length; i++ {
			next := rng.Intn(n)
			for next == w.Vertices[len(w.Vertices)-1] {
				next = rng.Intn(n)
			}
			w.Vertices = append(w.Vertices, next)
			w.Matched = append(w.Matched, matched)
			w.Weights = append(w.Weights, graph.Weight(1+rng.Intn(60)))
			matched = !matched
		}
		gotAug, gotGain, gotOK := scratch.BestAugmentation(m, w)
		refAug, refGain, refOK := BestAugmentation(m, w)
		if gotOK != refOK {
			t.Fatalf("trial %d: ok %v vs reference %v (walk %+v)", trial, gotOK, refOK, w)
		}
		if !gotOK {
			continue
		}
		if gotGain != refGain {
			t.Fatalf("trial %d: gain %d vs reference %d (walk %+v)", trial, gotGain, refGain, w)
		}
		if gotAug.Gain() != refAug.Gain() {
			t.Fatalf("trial %d: constructed gain %d vs reference %d", trial, gotAug.Gain(), refAug.Gain())
		}
	}
}
