package layered

import (
	"sync"
	"sync/atomic"
)

// TauPair is a good (τA, τB) pair in the sense of Table 1. Entries are
// stored as integer multiples of the granularity g to keep constraint
// checking exact: τA_i = AUnits[i]·g and τB_i = BUnits[i]·g.
type TauPair struct {
	AUnits []int
	BUnits []int
}

// K returns the number of unmatched (τB) layers.
func (t TauPair) K() int { return len(t.BUnits) }

// TauA returns τA_i as a fraction of W.
func (t TauPair) TauA(i int, p Params) float64 { return float64(t.AUnits[i]) * p.Granularity }

// TauB returns τB_i as a fraction of W.
func (t TauPair) TauB(i int, p Params) float64 { return float64(t.BUnits[i]) * p.Granularity }

// IsGood checks the six Table-1 constraints against p:
//
//	(A) |τA| ≤ MaxLayers,
//	(B) |τB| = |τA| − 1,
//	(C) entries are non-negative multiples of g (structural: units are ints),
//	(D) every τB entry and every interior τA entry is ≥ 2g,
//	(E) Στ_B ≤ SumCap,
//	(F) Στ_B − Στ_A ≥ g.
func (t TauPair) IsGood(p Params) bool {
	p = p.WithDefaults()
	maxU, capU := p.Units()
	if len(t.AUnits) < 2 || len(t.AUnits) > p.MaxLayers { // (A)
		return false
	}
	if len(t.BUnits) != len(t.AUnits)-1 { // (B)
		return false
	}
	sumA, sumB := 0, 0
	for i, a := range t.AUnits {
		if a < 0 || a > maxU { // (C) range
			return false
		}
		if i > 0 && i < len(t.AUnits)-1 && a < 2 { // (D) interior
			return false
		}
		sumA += a
	}
	for _, b := range t.BUnits {
		if b < 2 || b > maxU { // (C)+(D)
			return false
		}
		sumB += b
	}
	if sumB > capU { // (E)
		return false
	}
	return sumB-sumA >= 1 // (F)
}

// EnumerateGoodPairs generates every good (τA, τB) pair under p. The
// Table-1 constraints prune the space hard: Στ_B ≤ SumCap with every entry
// ≥ 2g bounds both the layer count and the per-layer choices.
func EnumerateGoodPairs(p Params) []TauPair {
	return EnumerateGoodPairsFiltered(p, nil, nil)
}

// EnumerateGoodPairsFiltered generates the good pairs whose every entry
// passes the given unit filters: aOK(u) must accept every τA entry and
// bOK(u) every τB entry (nil filters accept everything). Algorithm 4 uses
// the filters to enumerate only pairs whose weight windows contain at least
// one edge of the instance, collapsing the search space from all of Table 1
// to the populated buckets.
func EnumerateGoodPairsFiltered(p Params, aOK, bOK func(unit int) bool) []TauPair {
	return EnumerateGoodPairsLimited(p, aOK, bOK, 0)
}

// EnumerateGoodPairsLimited is EnumerateGoodPairsFiltered that stops after
// limit pairs (0 = unlimited). The generation order is deterministic, so
// the result is always a prefix of the unlimited enumeration; the recursion
// exits early instead of materialising a combinatorial list that the caller
// (bounded by MaxPairsPerClass) would truncate anyway — at fine granularity
// the full Table-1 space runs into millions of pairs.
func EnumerateGoodPairsLimited(p Params, aOK, bOK func(unit int) bool, limit int) []TauPair {
	p = p.WithDefaults()
	maxU, capU := p.Units()
	okA := func(u int) bool { return aOK == nil || aOK(u) }
	okB := func(u int) bool { return bOK == nil || bOK(u) }
	full := func() bool { return false }
	var out []TauPair
	if limit > 0 {
		full = func() bool { return len(out) >= limit }
	}

	for k := 1; k <= p.MaxLayers-1 && !full(); k++ {
		if 2*k > capU {
			break // (D)+(E): k layers need Στ_B >= 2k
		}
		bs := make([]int, k)
		var genB func(i, sumB int)
		as := make([]int, k+1)
		var genA func(i, sumA, budget int, emitB []int)

		genA = func(i, sumA, budget int, bUnits []int) {
			if sumA > budget || full() {
				return
			}
			if i == k+1 {
				a := make([]int, k+1)
				b := make([]int, k)
				copy(a, as)
				copy(b, bUnits)
				out = append(out, TauPair{AUnits: a, BUnits: b})
				return
			}
			lo := 0
			if i > 0 && i < k { // interior entries
				lo = 2
			}
			// Endpoint entries range over every multiple of g including 0
			// (free endpoint) and 1 (matched edge lighter than the bucket
			// width); Table 1 restricts only interior entries to >= 2g.
			for v := lo; v <= maxU && sumA+v <= budget; v++ {
				if !okA(v) {
					continue
				}
				as[i] = v
				genA(i+1, sumA+v, budget, bUnits)
			}
		}
		genB = func(i, sumB int) {
			if full() {
				return
			}
			if i == k {
				// (F): Στ_A ≤ Στ_B − 1 unit.
				genA(0, 0, sumB-1, bs)
				return
			}
			// Remaining layers each need ≥ 2 units.
			for v := 2; v <= maxU && sumB+v+2*(k-1-i) <= capU; v++ {
				if !okB(v) {
					continue
				}
				bs[i] = v
				genB(i+1, sumB+v)
			}
		}
		genB(0, 0)
	}
	return out
}

// pairCacheKey identifies one filtered enumeration: the discretisation, the
// populated-unit bitmasks (bit u set when the filter accepts unit u), and
// the generation limit.
type pairCacheKey struct {
	maxU, capU, maxLayers, limit int
	aMask, bMask                 uint64
}

var pairCache sync.Map // pairCacheKey -> []TauPair

// pairCacheLimit bounds the memo; distinct masks are few in practice (they
// follow the populated weight buckets of the instance), so hitting the limit
// means a pathological workload and we simply stop inserting.
const pairCacheLimit = 1 << 14

var pairCacheSize atomic.Int64

// EnumerateGoodPairsMasked is EnumerateGoodPairsLimited with the unit
// filters given as bitmasks (bit u accepts unit u; callers need maxU ≤ 63,
// see BucketIndex.Masks), memoised globally: the reduction re-enumerates
// the same populated-bucket signature for every class of every round, so
// the recursion runs once per distinct signature. The returned slice is
// shared — callers must not mutate it.
func EnumerateGoodPairsMasked(p Params, aMask, bMask uint64, limit int) []TauPair {
	p = p.WithDefaults()
	maxU, capU := p.Units()
	key := pairCacheKey{maxU: maxU, capU: capU, maxLayers: p.MaxLayers, limit: limit,
		aMask: aMask, bMask: bMask}
	if v, ok := pairCache.Load(key); ok {
		return v.([]TauPair)
	}
	pairs := EnumerateGoodPairsLimited(p,
		func(u int) bool { return aMask&(1<<uint(u)) != 0 },
		func(u int) bool { return bMask&(1<<uint(u)) != 0 },
		limit,
	)
	if pairCacheSize.Load() < pairCacheLimit {
		if _, loaded := pairCache.LoadOrStore(key, pairs); !loaded {
			pairCacheSize.Add(1)
		}
	}
	return pairs
}
