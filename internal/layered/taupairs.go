package layered

import (
	"sync"
	"sync/atomic"
)

// TauPair is a good (τA, τB) pair in the sense of Table 1. Entries are
// stored as integer multiples of the granularity g to keep constraint
// checking exact: τA_i = AUnits[i]·g and τB_i = BUnits[i]·g.
type TauPair struct {
	AUnits []int
	BUnits []int
}

// K returns the number of unmatched (τB) layers.
func (t TauPair) K() int { return len(t.BUnits) }

// TauA returns τA_i as a fraction of W.
func (t TauPair) TauA(i int, p Params) float64 { return float64(t.AUnits[i]) * p.Granularity }

// TauB returns τB_i as a fraction of W.
func (t TauPair) TauB(i int, p Params) float64 { return float64(t.BUnits[i]) * p.Granularity }

// IsGood checks the six Table-1 constraints against p:
//
//	(A) |τA| ≤ MaxLayers,
//	(B) |τB| = |τA| − 1,
//	(C) entries are non-negative multiples of g (structural: units are ints),
//	(D) every τB entry and every interior τA entry is ≥ 2g,
//	(E) Στ_B ≤ SumCap,
//	(F) Στ_B − Στ_A ≥ g.
func (t TauPair) IsGood(p Params) bool {
	p = p.WithDefaults()
	maxU, capU := p.Units()
	if len(t.AUnits) < 2 || len(t.AUnits) > p.MaxLayers { // (A)
		return false
	}
	if len(t.BUnits) != len(t.AUnits)-1 { // (B)
		return false
	}
	sumA, sumB := 0, 0
	for i, a := range t.AUnits {
		if a < 0 || a > maxU { // (C) range
			return false
		}
		if i > 0 && i < len(t.AUnits)-1 && a < 2 { // (D) interior
			return false
		}
		sumA += a
	}
	for _, b := range t.BUnits {
		if b < 2 || b > maxU { // (C)+(D)
			return false
		}
		sumB += b
	}
	if sumB > capU { // (E)
		return false
	}
	return sumB-sumA >= 1 // (F)
}

// EnumerateGoodPairs generates every good (τA, τB) pair under p. The
// Table-1 constraints prune the space hard: Στ_B ≤ SumCap with every entry
// ≥ 2g bounds both the layer count and the per-layer choices.
func EnumerateGoodPairs(p Params) []TauPair {
	return EnumerateGoodPairsFiltered(p, nil, nil)
}

// EnumerateGoodPairsFiltered generates the good pairs whose every entry
// passes the given unit filters: aOK(u) must accept every τA entry and
// bOK(u) every τB entry (nil filters accept everything). Algorithm 4 uses
// the filters to enumerate only pairs whose weight windows contain at least
// one edge of the instance, collapsing the search space from all of Table 1
// to the populated buckets.
func EnumerateGoodPairsFiltered(p Params, aOK, bOK func(unit int) bool) []TauPair {
	return EnumerateGoodPairsLimited(p, aOK, bOK, 0)
}

// EnumerateGoodPairsLimited is EnumerateGoodPairsFiltered that stops after
// limit pairs (0 = unlimited). The generation order is deterministic, so
// the result is always a prefix of the unlimited enumeration; the recursion
// exits early instead of materialising a combinatorial list that the caller
// (bounded by MaxPairsPerClass) would truncate anyway — at fine granularity
// the full Table-1 space runs into millions of pairs.
func EnumerateGoodPairsLimited(p Params, aOK, bOK func(unit int) bool, limit int) []TauPair {
	p = p.WithDefaults()
	maxU, capU := p.Units()
	okA := func(u int) bool { return aOK == nil || aOK(u) }
	okB := func(u int) bool { return bOK == nil || bOK(u) }
	full := func() bool { return false }
	var out []TauPair
	if limit > 0 {
		full = func() bool { return len(out) >= limit }
	}

	for k := 1; k <= p.MaxLayers-1 && !full(); k++ {
		if 2*k > capU {
			break // (D)+(E): k layers need Στ_B >= 2k
		}
		bs := make([]int, k)
		var genB func(i, sumB int)
		as := make([]int, k+1)
		var genA func(i, sumA, budget int, emitB []int)

		genA = func(i, sumA, budget int, bUnits []int) {
			if sumA > budget || full() {
				return
			}
			if i == k+1 {
				a := make([]int, k+1)
				b := make([]int, k)
				copy(a, as)
				copy(b, bUnits)
				out = append(out, TauPair{AUnits: a, BUnits: b})
				return
			}
			lo := 0
			if i > 0 && i < k { // interior entries
				lo = 2
			}
			// Endpoint entries range over every multiple of g including 0
			// (free endpoint) and 1 (matched edge lighter than the bucket
			// width); Table 1 restricts only interior entries to >= 2g.
			for v := lo; v <= maxU && sumA+v <= budget; v++ {
				if !okA(v) {
					continue
				}
				as[i] = v
				genA(i+1, sumA+v, budget, bUnits)
			}
		}
		genB = func(i, sumB int) {
			if full() {
				return
			}
			if i == k {
				// (F): Στ_A ≤ Στ_B − 1 unit.
				genA(0, 0, sumB-1, bs)
				return
			}
			// Remaining layers each need ≥ 2 units.
			for v := 2; v <= maxU && sumB+v+2*(k-1-i) <= capU; v++ {
				if !okB(v) {
					continue
				}
				bs[i] = v
				genB(i+1, sumB+v)
			}
		}
		genB(0, 0)
	}
	return out
}

// SurvivalOracle answers, during pair generation, whether a single layer of
// a prospective (τA, τB) pair could contribute a Y edge. It is the
// enumeration-time form of the IncView survival probe: LayerRow(b, a) is the
// probe row of the unit-b unmatched window at matched-unit row a — bit la
// set when some unit-b unmatched crossing edge runs from an R endpoint of
// matched unit a (row 0: free R endpoint) to an L endpoint of matched unit
// la (bit FreeLBit: free L endpoint). The rows are exactly the per-(class,
// unit) crossing tables of IncIndex, so a pruned enumeration rejects
// precisely the pairs ProbeY would reject after generation.
type SurvivalOracle interface {
	LayerRow(bUnit, aUnit int) uint64
}

// FreeLBit is the probe-row bit marking a free L endpoint (the last-layer
// τA = 0 rule). Unit bits occupy 0..maxU, so oracle-guided enumeration
// requires maxU < FreeLBit.
const FreeLBit = freeLBit

// PairScratch is the reusable arena of EnumerateSurvivingPairs: the
// counting tables, recursion stacks, and the emitted pairs' unit storage are
// kept across calls, so the per-(round, class) enumeration stops allocating.
// The counting tables additionally persist across rounds (they depend only
// on the discretisation and aMask, not on the oracle's per-round rows) and
// are rebuilt only when those change. A PairScratch is not safe for
// concurrent use; use one per class context. Pairs returned through a
// scratch are valid until its next use.
type PairScratch struct {
	// dp[k-1][i*capU+s] counts the A-side completions of positions i..k
	// with sum ≤ s, per layer count k; valid while dpMask/dpMaxU/dpCapU
	// match the call.
	dp          [][]int
	dpMask      uint64
	dpMaxU      int
	dpCapU      int
	dpMaxLayers int
	// total is the number of good pairs under (aMask, bMask) — the
	// closed-form count of a fully dead class-round; valid while the
	// tot masks match the call's.
	total    int
	totAMask uint64
	totBMask uint64
	totOK    bool

	rowUnion  []pairUnions
	bs, as    []int
	canFree   []bool
	suffixAny []bool
	pairs     []TauPair
	units     []int // slab backing the emitted pairs' unit slices
	bcnt      []int // B-side counting scratch for ensureTotal
}

type pairUnions struct {
	end, interior uint64
	ok            bool
}

// NewPairScratch returns an empty arena.
func NewPairScratch() *PairScratch { return &PairScratch{} }

// EnumerateSurvivingPairs is EnumerateGoodPairsMasked with the survival
// probe pushed into the recursion: subtrees of the (τA, τB) generation whose
// every completion would fail the probe (no layer can contribute a Y edge)
// are pruned before their pairs materialise, instead of each pair being
// generated and then probed. The returned pairs are exactly the pairs of
// EnumerateGoodPairsMasked(p, aMask, bMask, limit) that pass oracle-backed
// ProbeY — same pairs, same order — and pruned counts the good pairs inside
// the limit window that were skipped as dead (the pairs the generate-then-
// probe loop would have built and rejected), so the two paths reconcile
// counter-for-counter. The limit window itself is measured in generated good
// pairs, pruned ones included: a pruned subtree's pair count is charged via
// a closed-form completion count, keeping the window — and therefore the
// surviving set — identical to the unpruned enumeration's prefix.
//
// The result is not memoised (the oracle's rows change every round), so
// callers pay one pruned recursion per (round, class); with a scratch the
// recursion reuses its arena and the returned pairs alias scratch storage
// (nil scratch allocates fresh).
func EnumerateSurvivingPairs(p Params, aMask, bMask uint64, limit int, o SurvivalOracle, s *PairScratch) (pairs []TauPair, pruned int) {
	p = p.WithDefaults()
	maxU, capU := p.Units()
	if maxU >= freeLBit {
		// Unit bits would collide with the free-L marker; the probe path
		// gates on this bound (IncView.Oracle), so reaching here is a
		// caller bug rather than a fallback case.
		panic("layered: discretisation too fine for survival-guided enumeration")
	}
	if s == nil {
		s = NewPairScratch()
	}
	okA := func(u int) bool { return aMask&(1<<uint(u)) != 0 }
	okB := func(u int) bool { return bMask&(1<<uint(u)) != 0 }

	// Column masks per position kind: bit v for a τA entry of unit v ≥ 1,
	// FreeLBit for a final entry of 0 (free L endpoint). Row masks mirror
	// them on the R side, where a first entry of 0 is probe row 0.
	unitBits := (uint64(1)<<uint(maxU+1) - 1)
	endRows := aMask & unitBits
	intRows := aMask & unitBits &^ 3 // interior entries are ≥ 2
	intCols := intRows
	endCols := aMask & unitBits &^ 1
	if okA(0) {
		endCols |= 1 << freeLBit
	}

	s.ensureDP(p, aMask, maxU, capU)

	// rowUnion[u] caches, per populated τB unit, the union of the oracle's
	// rows over the allowed row sets: what any layer of that unit could
	// reach with its R-side entry still free. The rows change every round,
	// so only the storage is reused.
	if cap(s.rowUnion) < maxU+1 {
		s.rowUnion = make([]pairUnions, maxU+1)
	}
	rowUnion := s.rowUnion[:maxU+1]
	for i := range rowUnion {
		rowUnion[i].ok = false
	}
	unionFor := func(u int) pairUnions {
		if !rowUnion[u].ok {
			var end, interior uint64
			for r := 0; r <= maxU; r++ {
				if endRows&(1<<uint(r)) == 0 && intRows&(1<<uint(r)) == 0 {
					continue
				}
				row := o.LayerRow(u, r)
				if endRows&(1<<uint(r)) != 0 {
					end |= row
				}
				if intRows&(1<<uint(r)) != 0 {
					interior |= row
				}
			}
			rowUnion[u] = pairUnions{end: end, interior: interior, ok: true}
		}
		return rowUnion[u]
	}

	s.pairs = s.pairs[:0]
	s.units = s.units[:0]
	generated := 0
	full := func() bool { return limit > 0 && generated >= limit }

	// Fast path for a fully dead class-round: if no populated τB unit can
	// contribute a Y edge in any (row kind, column kind) combination, every
	// good pair is dead — charge the closed-form good-pair count to the
	// window without recursing at all. On workloads where most classes see
	// no viable layer in most rounds, this collapses the per-(round, class)
	// enumeration to a handful of bit tests over the probe tables.
	anyAlive := false
	for u := 2; u <= maxU && !anyAlive; u++ {
		if bMask&(1<<uint(u)) == 0 {
			continue
		}
		un := unionFor(u)
		if (un.end|un.interior)&(endCols|intCols) != 0 {
			anyAlive = true
		}
	}
	if !anyAlive {
		s.ensureTotal(p, aMask, bMask, maxU, capU)
		n := s.total
		if limit > 0 && n > limit {
			n = limit
		}
		return s.pairs, n
	}

	maxK := p.MaxLayers - 1
	s.bs = growInts(s.bs, maxK)
	s.as = growInts(s.as, maxK+1)
	if cap(s.canFree) < maxK {
		s.canFree = make([]bool, maxK)
		s.suffixAny = make([]bool, maxK+2)
	}

	for k := 1; k <= maxK && !full(); k++ {
		if 2*k > capU {
			break // (D)+(E): k layers need Στ_B >= 2k
		}
		// ways[i*capU+s] counts the A-side completions of positions i..k
		// with sum ≤ s — the closed-form pair count of a pruned subtree.
		ways := s.dp[k-1]

		bs := s.bs[:k]
		as := s.as[:k+1]
		// colMask describes layer t's L-side freedom; it depends only on
		// the position kind, while canFree and suffixAny are recomputed per
		// τB assignment (they read the oracle's rows).
		colMask := func(t int) uint64 {
			if t+1 == k {
				return endCols
			}
			return intCols
		}
		canFree := s.canFree[:k]
		suffixAny := s.suffixAny[:k+2]

		var genA func(i, sumA, budget int, done bool)
		genA = func(i, sumA, budget int, done bool) {
			if sumA > budget || full() {
				return
			}
			// pending is the probe row of layer i−1, whose R-side entry
			// as[i−1] is already pinned while its L-side entry is the value
			// being chosen at this position.
			var pending uint64
			if !done && i >= 1 && i <= k {
				pending = o.LayerRow(bs[i-1], as[i-1])
			}
			if !done {
				// Could any completion still contribute a Y edge? Layer i−1
				// can reach only what pending allows; layers ≥ i are free.
				possible := suffixAny[i]
				if !possible && i >= 1 && i <= k {
					possible = pending&colMask(i-1) != 0
				}
				if !possible {
					// Dead subtree: charge its pairs to the limit window
					// without materialising them.
					n := ways[i*capU+budget-sumA]
					if limit > 0 && n > limit-generated {
						n = limit - generated
					}
					generated += n
					pruned += n
					return
				}
			}
			if i == k+1 {
				off := len(s.units)
				s.units = append(s.units, as...)
				s.units = append(s.units, bs...)
				s.pairs = append(s.pairs, TauPair{
					AUnits: s.units[off : off+k+1 : off+k+1],
					BUnits: s.units[off+k+1 : off+2*k+1 : off+2*k+1],
				})
				generated++
				return
			}
			lo := 0
			if i > 0 && i < k {
				lo = 2
			}
			for v := lo; v <= maxU && sumA+v <= budget && !full(); v++ {
				if !okA(v) {
					continue
				}
				nd := done
				if !nd && i >= 1 && i <= k {
					switch {
					case v > 0:
						nd = pending&(1<<uint(v)) != 0
					case i == k:
						nd = pending&(1<<freeLBit) != 0
					}
				}
				as[i] = v
				genA(i+1, sumA+v, budget, nd)
			}
		}
		var genB func(i, sumB int)
		genB = func(i, sumB int) {
			if full() {
				return
			}
			if i == k {
				for t := 0; t < k; t++ {
					un := unionFor(bs[t])
					rows := un.interior
					if t == 0 {
						rows = un.end
					}
					canFree[t] = rows&colMask(t) != 0
				}
				suffixAny[k] = false
				suffixAny[k+1] = false
				for t := k - 1; t >= 0; t-- {
					suffixAny[t] = canFree[t] || suffixAny[t+1]
				}
				genA(0, 0, sumB-1, false)
				return
			}
			for v := 2; v <= maxU && sumB+v+2*(k-1-i) <= capU; v++ {
				if !okB(v) {
					continue
				}
				bs[i] = v
				genB(i+1, sumB+v)
			}
		}
		genB(0, 0)
	}
	return s.pairs, pruned
}

// ensureDP (re)builds the per-k completion-count tables when the
// discretisation or the aMask changed since the last call: dp[k-1][i*capU+s]
// counts the ways to fill A-side positions i..k with sum ≤ s under the
// position constraints and the aMask filter.
func (s *PairScratch) ensureDP(p Params, aMask uint64, maxU, capU int) {
	if s.dpMask == aMask && s.dpMaxU == maxU && s.dpCapU == capU &&
		s.dpMaxLayers == p.MaxLayers {
		return
	}
	s.dpMask, s.dpMaxU, s.dpCapU, s.dpMaxLayers = aMask, maxU, capU, p.MaxLayers
	maxK := p.MaxLayers - 1
	if cap(s.dp) < maxK {
		s.dp = make([][]int, maxK)
	}
	s.dp = s.dp[:maxK]
	for k := 1; k <= maxK; k++ {
		ways := s.dp[k-1]
		if cap(ways) < (k+2)*capU {
			ways = make([]int, (k+2)*capU)
		}
		ways = ways[:(k+2)*capU]
		s.dp[k-1] = ways
		for sum := 0; sum < capU; sum++ {
			ways[(k+1)*capU+sum] = 1
		}
		for i := k; i >= 0; i-- {
			lo := 0
			if i > 0 && i < k {
				lo = 2
			}
			for sum := 0; sum < capU; sum++ {
				n := 0
				for v := lo; v <= maxU && v <= sum; v++ {
					if aMask&(1<<uint(v)) != 0 {
						n += ways[(i+1)*capU+sum-v]
					}
				}
				ways[i*capU+sum] = n
			}
		}
	}
}

// ensureTotal (re)computes the total good-pair count under the masks when
// they changed since the last call: the τB composition counts (one rolling
// DP pass per layer count) convolved with the A-side completion tables of
// ensureDP. It must be called after ensureDP with the same discretisation.
func (s *PairScratch) ensureTotal(p Params, aMask, bMask uint64, maxU, capU int) {
	if s.totOK && s.totAMask == aMask && s.totBMask == bMask {
		return
	}
	s.totOK, s.totAMask, s.totBMask = true, aMask, bMask
	maxK := p.MaxLayers - 1
	if cap(s.bcnt) < capU+1 {
		s.bcnt = make([]int, capU+1)
	}
	cur := s.bcnt[:capU+1]
	clear(cur)
	cur[0] = 1 // zero entries, sum 0
	total := 0
	for k := 1; k <= maxK && 2*k <= capU; k++ {
		// Advance the composition counts by one τB entry, in place: high
		// sums first, so cur[sum−v] still holds the (k−1)-entry counts.
		for sum := capU; sum >= 0; sum-- {
			n := 0
			for v := 2; v <= maxU && v <= sum; v++ {
				if bMask&(1<<uint(v)) != 0 {
					n += cur[sum-v]
				}
			}
			cur[sum] = n
		}
		ways := s.dp[k-1]
		for sum := 2 * k; sum <= capU; sum++ {
			if cur[sum] > 0 {
				total += cur[sum] * ways[sum-1] // A completions with Στ_A ≤ sum−1
			}
		}
	}
	s.total = total
}

func growInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

// pairCacheKey identifies one filtered enumeration: the discretisation, the
// populated-unit bitmasks (bit u set when the filter accepts unit u), and
// the generation limit.
type pairCacheKey struct {
	maxU, capU, maxLayers, limit int
	aMask, bMask                 uint64
}

var pairCache sync.Map // pairCacheKey -> []TauPair

// pairCacheLimit bounds the memo; distinct masks are few in practice (they
// follow the populated weight buckets of the instance), so hitting the limit
// means a pathological workload and we simply stop inserting.
const pairCacheLimit = 1 << 14

var pairCacheSize atomic.Int64

// EnumerateGoodPairsMasked is EnumerateGoodPairsLimited with the unit
// filters given as bitmasks (bit u accepts unit u; callers need maxU ≤ 63,
// see BucketIndex.Masks), memoised globally: the reduction re-enumerates
// the same populated-bucket signature for every class of every round, so
// the recursion runs once per distinct signature. The returned slice is
// shared — callers must not mutate it.
func EnumerateGoodPairsMasked(p Params, aMask, bMask uint64, limit int) []TauPair {
	p = p.WithDefaults()
	maxU, capU := p.Units()
	key := pairCacheKey{maxU: maxU, capU: capU, maxLayers: p.MaxLayers, limit: limit,
		aMask: aMask, bMask: bMask}
	if v, ok := pairCache.Load(key); ok {
		return v.([]TauPair)
	}
	pairs := EnumerateGoodPairsLimited(p,
		func(u int) bool { return aMask&(1<<uint(u)) != 0 },
		func(u int) bool { return bMask&(1<<uint(u)) != 0 },
		limit,
	)
	if pairCacheSize.Load() < pairCacheLimit {
		if _, loaded := pairCache.LoadOrStore(key, pairs); !loaded {
			pairCacheSize.Add(1)
		}
	}
	return pairs
}
