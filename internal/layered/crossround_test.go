package layered

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/graph"
)

// crossRoundSides draws a round's bipartition for the cross-round tests:
// mode 0 redraws every side uniformly (the production redraw — stability is
// incidental), mode 1 keeps the previous sides verbatim (maximal stability:
// the whole chain should carry over), and mode 2 flips a small random subset
// (partial stability — the interesting regime for the per-unit change
// clocks).
func crossRoundSides(prev []bool, mode int, rng *rand.Rand) []bool {
	side := make([]bool, len(prev))
	copy(side, prev)
	switch mode {
	case 0:
		for v := range side {
			side[v] = rng.Intn(2) == 1
		}
	case 2:
		for k := 0; k < 1+rng.Intn(3); k++ {
			v := rng.Intn(len(side))
			side[v] = !side[v]
		}
	}
	return side
}

// TestBuildDeltaCrossRound is the tentpole's differential: one scratch and
// chain tail per class survive a sequence of BeginRound redraws, so the
// first build of every class-round runs BuildDelta against the PREVIOUS
// round's last build — and every build in the chain, linked or round-local,
// must stay byte-identical to a from-scratch BuildIndexed of the same pair,
// with the DeltaInfo audit holding across the link. Aggregated over the
// trials the links must both happen and actually reuse segments (the
// keep-the-sides trials guarantee the latter deterministically).
func TestBuildDeltaCrossRound(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	crossLinks, crossReused := 0, 0
	for trial := 0; trial < 6; trial++ {
		n := 10 + rng.Intn(20)
		inst := graph.RandomGraph(n, 4*n, graph.Weight(1<<(3+rng.Intn(5))), rng)
		edges := inst.G.Edges()
		prm := Params{Granularity: []float64{0.5, 0.25, 0.125}[trial%3]}.WithDefaults()
		ws := testClassWeights(edges, prm)
		inc := NewIncIndex(n, edges, ws, prm)
		m := graph.NewMatching(n)
		enum := NewPairScratch()
		cutover := []int{0, 1, 2}[trial%3]
		sideMode := trial % 3

		// Per-class chain state surviving the round loop, exactly as core's
		// amortClassCtx carries it.
		scratches := make([]*Scratch, len(ws))
		tails := make([]*Layered, len(ws))
		tailSnaps := make([]*Layered, len(ws))

		side := make([]bool, n)
		for v := range side {
			side[v] = rng.Intn(2) == 1
		}
		for round := 0; round < 5; round++ {
			if round > 0 {
				side = crossRoundSides(side, sideMode, rng)
				if sideMode != 1 {
					for k := 0; k < rng.Intn(3); k++ {
						mutateMatching(m, edges[rng.Intn(len(edges))], byte(rng.Intn(256)))
					}
				}
			}
			par := ParametrizeWithSide(n, edges, m, side)
			if err := inc.BeginRound(par); err != nil {
				t.Fatal(err)
			}
			for c := range ws {
				v := inc.View(c)
				aMask, bMask, ok := v.Masks()
				if !ok {
					t.Fatal("masks unavailable at test granularity")
				}
				orc, ok := v.Oracle()
				if !ok {
					t.Fatal("oracle unavailable at test granularity")
				}
				pairs, _ := EnumerateSurvivingPairs(prm, aMask, bMask, 12, orc, enum)
				if len(pairs) == 0 {
					continue
				}
				if scratches[c] == nil {
					scratches[c] = NewScratch()
				}
				link := tails[c] != nil
				reused, tail, snap := deltaChainFrom(t, v, pairs, scratches[c], cutover,
					tails[c], tailSnaps[c])
				if link {
					crossLinks++
					crossReused += reused
				}
				tails[c], tailSnaps[c] = tail, snap
			}
		}
	}
	if crossLinks == 0 {
		t.Fatal("no chain ever crossed a round boundary; test is vacuous")
	}
	if crossReused == 0 {
		t.Error("no cross-round link reused any segment (keep-the-sides trials should)")
	}
}

// TestBuildDeltaCrossRoundGuards pins the link's refusal conditions: a
// baseline from an index that cannot vouch for cross-round stability (plain
// BucketIndex — no RoundChainer), and a baseline whose round epoch is ahead
// of the index's (a chain tail smuggled in from a longer-lived index), must
// both be refused with ErrDeltaMismatch rather than diffed across the redraw.
func TestBuildDeltaCrossRoundGuards(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 20
	inst := graph.PlantedMatching(n, 4*n, 50, 120, rng)
	edges := inst.G.Edges()
	prm := Params{}.WithDefaults()
	ws := testClassWeights(edges, prm)
	pairs := EnumerateGoodPairs(prm)
	if len(pairs) < 2 {
		t.Fatal("need at least 2 good pairs")
	}
	side := make([]bool, n)
	for v := range side {
		side[v] = rng.Intn(2) == 1
	}
	par1 := ParametrizeWithSide(n, edges, inst.Opt, side)
	side2 := crossRoundSides(side, 1, rng) // same sides, distinct Parametrized
	par2 := ParametrizeWithSide(n, edges, inst.Opt, side2)

	// BucketIndex baseline: same class weight and params, but the index
	// cannot prove any bucket stable across the redraw.
	c := len(ws) / 2
	s := NewScratch()
	s.EnableDeltaBaseline()
	ref1 := NewBucketIndex(par1, ws[c], prm)
	tail := BuildIndexed(ref1, pairs[0], s)
	ref2 := NewBucketIndex(par2, ws[c], prm)
	if _, _, err := BuildDelta(ref2, tail, pairs[1], s, 1); !errors.Is(err, ErrDeltaMismatch) {
		t.Fatalf("non-RoundChainer cross-round baseline: got %v, want ErrDeltaMismatch", err)
	}

	// Epoch regression: a tail built at epoch 2 of one IncIndex offered to a
	// fresh IncIndex sitting at epoch 1. The arena would accept the diff; the
	// epoch check must not.
	incA := NewIncIndex(n, edges, ws, prm)
	if err := incA.BeginRound(par1); err != nil {
		t.Fatal(err)
	}
	if err := incA.BeginRound(par2); err != nil {
		t.Fatal(err)
	}
	sA := NewScratch()
	sA.EnableDeltaBaseline()
	tailA := BuildIndexed(incA.View(c), pairs[0], sA)
	incB := NewIncIndex(n, edges, ws, prm)
	if err := incB.BeginRound(par1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := BuildDelta(incB.View(c), tailA, pairs[1], sA, 1); !errors.Is(err, ErrDeltaMismatch) {
		t.Fatalf("epoch-regressed baseline: got %v, want ErrDeltaMismatch", err)
	}
	// The refusals left the arena usable: the legitimate cross-round link on
	// incA still builds and matches from-scratch.
	if err := incA.BeginRound(par2); err != nil {
		t.Fatal(err)
	}
	got, _, err := BuildDelta(incA.View(c), tailA, pairs[1], sA, 1)
	if err != nil {
		t.Fatalf("legitimate cross-round link after refusals: %v", err)
	}
	assertSameLayered(t, "post-guard link", got, BuildIndexed(incA.View(c), pairs[1], nil))
}

// TestChainLinkFault drives the PR 7 hazard site: an injected fault at the
// cross-round chain link severs it (ErrDeltaStale) without touching the
// arena, and the caller's fallback — a from-scratch BuildIndexed restarting
// the chain round-locally — is byte-identical. The seed is searched so that
// the injector fires ChainLink's first call but not DeltaStale's (which sits
// earlier in BuildDelta and would mask the site entirely at saturation).
func TestChainLinkFault(t *testing.T) {
	seed := int64(-1)
	for s := int64(0); s < 1000; s++ {
		probe := faultinject.New(s, 0.5)
		dsFires := probeFire(probe, faultinject.DeltaStale)
		clFires := probeFire(probe, faultinject.ChainLink)
		if !dsFires && clFires {
			seed = s
			break
		}
	}
	if seed < 0 {
		t.Fatal("no seed fires ChainLink#1 without DeltaStale#1 at rate 0.5")
	}

	rng := rand.New(rand.NewSource(3))
	n := 18
	inst := graph.PlantedMatching(n, 4*n, 50, 120, rng)
	edges := inst.G.Edges()
	prm := Params{}.WithDefaults()
	ws := testClassWeights(edges, prm)
	pairs := EnumerateGoodPairs(prm)
	c := len(ws) / 2
	side := make([]bool, n)
	for v := range side {
		side[v] = rng.Intn(2) == 1
	}
	inc := NewIncIndex(n, edges, ws, prm)
	if err := inc.BeginRound(ParametrizeWithSide(n, edges, inst.Opt, side)); err != nil {
		t.Fatal(err)
	}
	s := NewScratch()
	s.EnableDeltaBaseline()
	tail := BuildIndexed(inc.View(c), pairs[0], s)
	par2 := ParametrizeWithSide(n, edges, inst.Opt, crossRoundSides(side, 1, rng))
	if err := inc.BeginRound(par2); err != nil {
		t.Fatal(err)
	}

	in := faultinject.New(seed, 0.5)
	faultinject.Activate(in)
	_, _, err := BuildDelta(inc.View(c), tail, pairs[1], s, 1)
	faultinject.Deactivate()
	if !errors.Is(err, ErrDeltaStale) {
		t.Fatalf("severed chain link: got %v, want ErrDeltaStale", err)
	}
	if in.Fired(faultinject.ChainLink) != 1 {
		t.Fatalf("ChainLink fired %d times, want 1", in.Fired(faultinject.ChainLink))
	}
	// Ladder response: restart the chain round-locally, bit-identically.
	restart := BuildIndexed(inc.View(c), pairs[1], s)
	assertSameLayered(t, "post-fault restart", restart, BuildIndexed(inc.View(c), pairs[1], nil))
	next, _, err := BuildDelta(inc.View(c), restart, pairs[2], s, 1)
	if err != nil {
		t.Fatalf("post-fault round-local delta: %v", err)
	}
	assertSameLayered(t, "post-fault delta", next, BuildIndexed(inc.View(c), pairs[2], nil))
}

// probeFire consults one site on a throwaway injector, for the seed search.
func probeFire(in *faultinject.Injector, s faultinject.Site) bool {
	fired := in.Fired(s)
	faultinject.Activate(in)
	faultinject.Fire(s)
	faultinject.Deactivate()
	return in.Fired(s) > fired
}

// TestBeginRoundBusy pins the misuse sentinel: a BeginRound entered while
// another holds the ownership stamp returns ErrBeginRoundBusy without
// touching the round state, and the index recovers fully once the stamp is
// released (core's reset rung absorbs the sentinel; see
// TestBeginRoundBusyAbsorbed there).
func TestBeginRoundBusy(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n := 12
	inst := graph.RandomGraph(n, 3*n, 1<<5, rng)
	edges := inst.G.Edges()
	prm := Params{}.WithDefaults()
	ws := testClassWeights(edges, prm)
	inc := NewIncIndex(n, edges, ws, prm)
	par := Parametrize(n, edges, graph.NewMatching(n), rng)

	inc.busy.Store(1) // a concurrent BeginRound holds the stamp
	if err := inc.BeginRound(par); !errors.Is(err, ErrBeginRoundBusy) {
		t.Fatalf("re-entered BeginRound: got %v, want ErrBeginRoundBusy", err)
	}
	inc.busy.Store(0)

	if err := inc.BeginRound(par); err != nil {
		t.Fatalf("BeginRound after release: %v", err)
	}
	// The round is fully usable: the refused call left no half-synced state.
	for c := range ws {
		ref := NewBucketIndex(par, ws[c], prm)
		v := inc.View(c)
		maxU, _ := prm.Units()
		for u := 1; u <= maxU; u++ {
			if v.ACount(u) != ref.ACount(u) {
				t.Fatalf("class %d unit %d: A counts diverge after busy refusal", c, u)
			}
			if u >= 2 && v.BCount(u) != ref.BCount(u) {
				t.Fatalf("class %d unit %d: B counts diverge after busy refusal", c, u)
			}
		}
	}
}
