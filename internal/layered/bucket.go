package layered

import (
	"math"

	"repro/internal/graph"
)

// AUnitOf returns the matched-window unit of weight wt at class weight w:
// the τA window of unit u is ((u−1)·g·W, u·g·W], so wt belongs to unit
// ceil(wt / (g·W)). Units above maxU (i.e. weights above W) fit no window.
func AUnitOf(wt graph.Weight, w float64, prm Params) int {
	return int(math.Ceil(float64(wt) / (prm.Granularity * w)))
}

// BUnitOf returns the unmatched-window unit of weight wt at class weight w:
// the τB window of unit u is [u·g·W, (u+1)·g·W), so wt belongs to unit
// floor(wt / (g·W)).
func BUnitOf(wt graph.Weight, w float64, prm Params) int {
	return int(math.Floor(float64(wt) / (prm.Granularity * w)))
}

// Index is the bucket view BuildIndexed and the Algorithm 4 viability
// filter consume: the parametrized edges of one class weight, grouped by τ
// unit. Two implementations exist: BucketIndex rebuilds the grouping from
// scratch per (round, class) — the naive path, kept as the differential
// oracle — and IncIndex amortises it across a whole Solve run. Both must
// return identical edge sequences for every unit the Table-1 enumeration
// can query (A units 1..maxU, B units 2..maxU); the differential and fuzz
// suites assert it.
type Index interface {
	// Parametrization returns the round's parametrized graph.
	Parametrization() *Parametrized
	// ClassWeight returns the augmentation-class weight W.
	ClassWeight() float64
	// Config returns the discretisation parameters.
	Config() Params
	// A returns the matched crossing edges whose weight lies in the unit-u
	// τA window, in par.A (matching-edge) order.
	A(u int) []graph.Edge
	// B returns the unmatched crossing edges whose weight lies in the
	// unit-u τB window, in par.B (graph-edge) order.
	B(u int) []graph.Edge
	// ACount and BCount return len(A(u)) and len(B(u)).
	ACount(u int) int
	BCount(u int) int
	// Masks summarises the populated units as bitmasks (see
	// BucketIndex.Masks); ok is false when the unit range exceeds 63 bits.
	Masks() (aMask, bMask uint64, ok bool)
}

// BucketIndex pre-buckets a parametrization's edges by τ unit for one class
// weight W, so that Build touches only the edges whose weights lie in each
// layer's window instead of rescanning all of par.A/par.B once per layer.
// The same counts drive the good-pair viability filter of Algorithm 4: a
// pair whose any window is empty cannot contribute (an empty matched window
// empties its layer and the vertex filter disconnects it; an empty unmatched
// window leaves no Y edges between two layers).
type BucketIndex struct {
	Par *Parametrized
	W   float64
	Prm Params

	// aBuckets[u] holds the matched crossing edges of unit u (window
	// ((u−1)gW, ugW]); bBuckets[u] the unmatched ones of unit u (window
	// [ugW, (u+1)gW)). Both are indexed 0..maxU; out-of-range edges are
	// dropped (they fit no τ window).
	aBuckets, bBuckets [][]graph.Edge
}

// NewBucketIndex buckets par's edges for class weight w. The arithmetic is
// exactly the viability bucketing of Algorithm 4 (ceil for matched windows,
// floor for unmatched ones), making the per-layer window test a slice lookup.
func NewBucketIndex(par *Parametrized, w float64, prm Params) *BucketIndex {
	ix := &BucketIndex{}
	ix.Reset(par, w, prm)
	return ix
}

// Reset re-buckets the index for a new (par, w), reusing the bucket storage.
func (ix *BucketIndex) Reset(par *Parametrized, w float64, prm Params) {
	prm = prm.WithDefaults()
	maxU, _ := prm.Units()
	ix.Par, ix.W, ix.Prm = par, w, prm
	ix.aBuckets = resetBuckets(ix.aBuckets, maxU+1)
	ix.bBuckets = resetBuckets(ix.bBuckets, maxU+1)
	for _, e := range par.A {
		if u := AUnitOf(e.W, w, prm); u >= 0 && u <= maxU {
			ix.aBuckets[u] = append(ix.aBuckets[u], e)
		}
	}
	for _, e := range par.B {
		if u := BUnitOf(e.W, w, prm); u >= 0 && u <= maxU {
			ix.bBuckets[u] = append(ix.bBuckets[u], e)
		}
	}
}

func resetBuckets(b [][]graph.Edge, n int) [][]graph.Edge {
	if cap(b) < n {
		nb := make([][]graph.Edge, n)
		copy(nb, b[:cap(b)])
		b = nb
	}
	b = b[:n]
	for i := range b {
		b[i] = b[i][:0]
	}
	return b
}

// Parametrization returns ix.Par (Index interface).
func (ix *BucketIndex) Parametrization() *Parametrized { return ix.Par }

// ClassWeight returns ix.W (Index interface).
func (ix *BucketIndex) ClassWeight() float64 { return ix.W }

// Config returns ix.Prm (Index interface).
func (ix *BucketIndex) Config() Params { return ix.Prm }

// A returns the matched edges whose weight lies in the unit-u τA window.
func (ix *BucketIndex) A(u int) []graph.Edge {
	if u < 0 || u >= len(ix.aBuckets) {
		return nil
	}
	return ix.aBuckets[u]
}

// B returns the unmatched edges whose weight lies in the unit-u τB window.
func (ix *BucketIndex) B(u int) []graph.Edge {
	if u < 0 || u >= len(ix.bBuckets) {
		return nil
	}
	return ix.bBuckets[u]
}

// ACount returns len(A(u)).
func (ix *BucketIndex) ACount(u int) int { return len(ix.A(u)) }

// BCount returns len(B(u)).
func (ix *BucketIndex) BCount(u int) int { return len(ix.B(u)) }

// Masks summarises the populated buckets as unit bitmasks for the memoised
// good-pair enumeration: bit u of aMask/bMask is set when the unit-u window
// holds at least one edge; bit 0 of aMask is always set (τA = 0 marks a free
// endpoint, not a weight window). ok is false when the unit range exceeds
// 63 bits and callers must fall back to EnumerateGoodPairsFiltered.
func (ix *BucketIndex) Masks() (aMask, bMask uint64, ok bool) {
	if len(ix.aBuckets) > 64 {
		return 0, 0, false
	}
	aMask = 1
	for u := 1; u < len(ix.aBuckets); u++ {
		if len(ix.aBuckets[u]) > 0 {
			aMask |= 1 << uint(u)
		}
	}
	for u := 0; u < len(ix.bBuckets); u++ {
		if len(ix.bBuckets[u]) > 0 {
			bMask |= 1 << uint(u)
		}
	}
	return aMask, bMask, true
}
