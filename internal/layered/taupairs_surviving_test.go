package layered

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// tableOracle is a synthetic SurvivalOracle over explicit probe rows:
// rows[bUnit][aUnit] exactly as IncIndex.probeRows would lay them out. It
// lets the differential and fuzz tests mutate crossing tables freely,
// covering corners no graph instance reaches easily (every bit pattern is a
// legal table).
type tableOracle struct {
	rows [][]uint64
}

func (o tableOracle) LayerRow(bUnit, aUnit int) uint64 { return o.rows[bUnit][aUnit] }

// refSurvives is the generate-then-probe twin of the pruned enumeration's
// layer test: a pair survives when some layer t has a table bit connecting
// its τA entries — the ProbeY predicate restated over an explicit table.
func refSurvives(tau TauPair, rows [][]uint64) bool {
	k := tau.K()
	for t := 0; t < k; t++ {
		ua, ub := tau.AUnits[t], tau.AUnits[t+1]
		var row uint64
		if ua > 0 || t == 0 {
			row = rows[tau.BUnits[t]][ua]
		}
		if row == 0 {
			continue
		}
		switch {
		case ub > 0:
			if row&(1<<uint(ub)) != 0 {
				return true
			}
		case t+1 == k:
			if row&(1<<freeLBit) != 0 {
				return true
			}
		}
	}
	return false
}

// assertSurvivingMatchesNaive checks the contract of EnumerateSurvivingPairs
// against the naive twin: same pairs in the same order as the masked
// enumeration filtered by the probe, with the pruned count reconciling the
// limit window pair-for-pair.
func assertSurvivingMatchesNaive(t *testing.T, p Params, aMask, bMask uint64, limit int, o tableOracle) {
	t.Helper()
	naive := EnumerateGoodPairsLimited(p,
		func(u int) bool { return aMask&(1<<uint(u)) != 0 },
		func(u int) bool { return bMask&(1<<uint(u)) != 0 },
		limit,
	)
	var want []TauPair
	for _, tau := range naive {
		if refSurvives(tau, o.rows) {
			want = append(want, tau)
		}
	}
	got, pruned := EnumerateSurvivingPairs(p, aMask, bMask, limit, o, nil)
	if len(got) != len(want) {
		t.Fatalf("aMask=%b bMask=%b limit=%d: %d surviving pairs, want %d",
			aMask, bMask, limit, len(got), len(want))
	}
	for i := range got {
		if !equalUnits(got[i].AUnits, want[i].AUnits) || !equalUnits(got[i].BUnits, want[i].BUnits) {
			t.Fatalf("pair %d: got %+v want %+v", i, got[i], want[i])
		}
	}
	if pruned != len(naive)-len(want) {
		t.Fatalf("pruned = %d, want %d (%d naive window − %d survivors)",
			pruned, len(naive)-len(want), len(naive), len(want))
	}
}

func equalUnits(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func randomTable(maxU int, rng *rand.Rand, density float64) tableOracle {
	rows := make([][]uint64, maxU+1)
	for u := range rows {
		rows[u] = make([]uint64, maxU+1)
		for r := range rows[u] {
			if rng.Float64() < density {
				rows[u][r] = rng.Uint64() & ((1 << uint(maxU+1)) - 1)
				if rng.Intn(4) == 0 {
					rows[u][r] |= 1 << freeLBit
				}
			}
		}
	}
	return tableOracle{rows: rows}
}

// TestEnumerateSurvivingPairsRandomTables sweeps granularities, masks,
// limits, and table densities: sparse tables force deep pruning, dense ones
// force the done-early fast path, and tight limits exercise the
// window-charging arithmetic at subtree boundaries.
func TestEnumerateSurvivingPairsRandomTables(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, gran := range []float64{0.5, 0.25, 0.125} {
		p := Params{Granularity: gran}.WithDefaults()
		maxU, _ := p.Units()
		for _, density := range []float64{0, 0.05, 0.3, 1} {
			for trial := 0; trial < 40; trial++ {
				o := randomTable(maxU, rng, density)
				aMask := (rng.Uint64() & ((1 << uint(maxU+1)) - 1)) | 1
				bMask := rng.Uint64() & ((1 << uint(maxU+1)) - 1) &^ 3
				limit := 0
				if trial%3 != 0 {
					limit = 1 + rng.Intn(60)
				}
				assertSurvivingMatchesNaive(t, p, aMask, bMask, limit, o)
			}
		}
	}
}

// TestEnumerateSurvivingPairsExtremes pins the two degenerate tables: the
// all-ones table must reproduce the masked enumeration verbatim with zero
// pruning, the all-zero table must prune every good pair.
func TestEnumerateSurvivingPairsExtremes(t *testing.T) {
	p := defaultParams()
	maxU, _ := p.Units()
	aMask := uint64(1<<uint(maxU+1)) - 1
	bMask := aMask &^ 3

	full := make([][]uint64, maxU+1)
	for u := range full {
		full[u] = make([]uint64, maxU+1)
		for r := range full[u] {
			full[u][r] = (1 << uint(maxU+1)) - 1 | 1<<freeLBit
		}
	}
	naive := EnumerateGoodPairsMasked(p, aMask, bMask, 0)
	got, pruned := EnumerateSurvivingPairs(p, aMask, bMask, 0, tableOracle{rows: full}, nil)
	if pruned != 0 || len(got) != len(naive) {
		t.Fatalf("all-ones table: %d pairs (%d pruned), want %d (0 pruned)",
			len(got), pruned, len(naive))
	}

	empty := make([][]uint64, maxU+1)
	for u := range empty {
		empty[u] = make([]uint64, maxU+1)
	}
	got, pruned = EnumerateSurvivingPairs(p, aMask, bMask, 0, tableOracle{rows: empty}, nil)
	if len(got) != 0 || pruned != len(naive) {
		t.Fatalf("all-zero table: %d pairs (%d pruned), want 0 (%d pruned)",
			len(got), pruned, len(naive))
	}
}

// TestEnumerateSurvivingPairsScratchReuse runs two different tables through
// one scratch and checks the second result is not corrupted by the first
// (the pairs alias scratch storage, so stale state would show immediately).
func TestEnumerateSurvivingPairsScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := defaultParams()
	maxU, _ := p.Units()
	s := NewPairScratch()
	for trial := 0; trial < 30; trial++ {
		o := randomTable(maxU, rng, 0.2)
		aMask := (rng.Uint64() & ((1 << uint(maxU+1)) - 1)) | 1
		bMask := rng.Uint64() & ((1 << uint(maxU+1)) - 1) &^ 3
		limit := 1 + rng.Intn(40)
		naive := EnumerateGoodPairsLimited(p,
			func(u int) bool { return aMask&(1<<uint(u)) != 0 },
			func(u int) bool { return bMask&(1<<uint(u)) != 0 },
			limit,
		)
		var want []TauPair
		for _, tau := range naive {
			if refSurvives(tau, o.rows) {
				want = append(want, tau)
			}
		}
		got, _ := EnumerateSurvivingPairs(p, aMask, bMask, limit, o, s)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d pairs, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if !equalUnits(got[i].AUnits, want[i].AUnits) || !equalUnits(got[i].BUnits, want[i].BUnits) {
				t.Fatalf("trial %d pair %d: got %+v want %+v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestEnumerateSurvivingPairsIncView closes the loop on the real oracle: an
// IncIndex over a random graph under a mutating matching must yield, per
// class, exactly the masked enumeration filtered by its own ProbeY.
func TestEnumerateSurvivingPairsIncView(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 6; trial++ {
		n := 14 + rng.Intn(12)
		inst := graph.RandomGraph(n, 3*n, 64, rng)
		edges := inst.G.Edges()
		prm := Params{Granularity: []float64{0.5, 0.25, 0.125}[trial%3]}.WithDefaults()
		ws := testClassWeights(edges, prm)
		inc := NewIncIndex(n, edges, ws, prm)
		m := graph.NewMatching(n)
		for round := 0; round < 3; round++ {
			for i := 0; i < 6; i++ {
				mutateMatching(m, edges[rng.Intn(len(edges))], byte(rng.Intn(256)))
			}
			par := Parametrize(n, edges, m, rng)
			inc.BeginRound(par)
			for c := 0; c < inc.Classes(); c++ {
				view := inc.View(c)
				orc, ok := view.Oracle()
				if !ok {
					t.Fatal("oracle unavailable at test granularity")
				}
				aMask, bMask, ok := view.Masks()
				if !ok {
					t.Fatal("masks unavailable at test granularity")
				}
				for _, limit := range []int{0, 7} {
					naive := EnumerateGoodPairsMasked(prm, aMask, bMask, limit)
					var want []TauPair
					for _, tau := range naive {
						if view.ProbeY(tau) {
							want = append(want, tau)
						}
					}
					got, pruned := EnumerateSurvivingPairs(prm, aMask, bMask, limit, orc, nil)
					if len(got) != len(want) || pruned != len(naive)-len(want) {
						t.Fatalf("class %d limit %d: %d pairs (%d pruned), want %d (%d)",
							c, limit, len(got), pruned, len(want), len(naive)-len(want))
					}
					for i := range got {
						if !equalUnits(got[i].AUnits, want[i].AUnits) || !equalUnits(got[i].BUnits, want[i].BUnits) {
							t.Fatalf("class %d pair %d: got %+v want %+v", c, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

// FuzzEnumerateGoodPairs mutates the crossing tables, masks, and limit and
// holds the pruned enumeration to its naive twin: identical surviving pairs
// in identical order, and a pruned count that reconciles the limit window.
func FuzzEnumerateGoodPairs(f *testing.F) {
	f.Add(int64(1), uint8(2), uint16(20), []byte{1, 2, 3})
	f.Add(int64(2), uint8(0), uint16(0), []byte{0xff, 0x80})
	f.Add(int64(3), uint8(1), uint16(5), []byte{})
	f.Fuzz(func(t *testing.T, seed int64, granSel uint8, limit uint16, table []byte) {
		rng := rand.New(rand.NewSource(seed))
		p := Params{Granularity: []float64{0.5, 0.25, 0.125, 0.0625}[granSel%4]}.WithDefaults()
		maxU, _ := p.Units()

		// The table bytes seed the probe rows; remaining bits are drawn from
		// the rng so every (bUnit, aUnit) cell gets a value.
		rows := make([][]uint64, maxU+1)
		bi := 0
		for u := range rows {
			rows[u] = make([]uint64, maxU+1)
			for r := range rows[u] {
				v := rng.Uint64()
				if bi < len(table) {
					v ^= uint64(table[bi]) << (8 * uint(bi%8))
					bi++
				}
				if rng.Intn(3) == 0 {
					v = 0 // sparse tables prune deeper
				}
				rows[u][r] = v & (((1 << uint(maxU+1)) - 1) | 1<<freeLBit)
			}
		}
		aMask := (rng.Uint64() & ((1 << uint(maxU+1)) - 1)) | 1
		bMask := rng.Uint64() & ((1 << uint(maxU+1)) - 1) &^ 3
		// Always bound the window: at fine granularity the naive twin would
		// otherwise enumerate millions of pairs per input (the unit tests
		// cover the unlimited case at coarse granularity).
		assertSurvivingMatchesNaive(t, p, aMask, bMask, 1+int(limit)%400, tableOracle{rows: rows})
	})
}
