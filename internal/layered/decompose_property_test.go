package layered

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// randomAlternatingWalk builds a random alternating walk over few vertices
// so that repeats (and thus cycle pops) are frequent.
func randomAlternatingWalk(rng *rand.Rand, steps int) Walk {
	n := 6
	w := Walk{Vertices: []int{rng.Intn(n)}}
	matched := rng.Intn(2) == 0
	for i := 0; i < steps; i++ {
		cur := w.Vertices[len(w.Vertices)-1]
		next := rng.Intn(n)
		for next == cur {
			next = rng.Intn(n)
		}
		w.Vertices = append(w.Vertices, next)
		w.Matched = append(w.Matched, matched)
		w.Weights = append(w.Weights, graph.Weight(1+rng.Intn(9)))
		matched = !matched
	}
	return w
}

// TestDecomposePreservesEdgesQuick: decomposition is a partition of the
// walk's edges — counts and total weight are preserved exactly.
func TestDecomposePreservesEdgesQuick(t *testing.T) {
	f := func(seed int64, stepsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		steps := int(stepsRaw)%20 + 1
		w := randomAlternatingWalk(rng, steps)
		comps := Decompose(w)

		var edges int
		var total graph.Weight
		for _, c := range comps {
			edges += len(c.Matched)
			for _, wt := range c.Weights {
				total += wt
			}
		}
		var wantTotal graph.Weight
		for _, wt := range w.Weights {
			wantTotal += wt
		}
		return edges == w.Len() && total == wantTotal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestDecomposeComponentsSimpleQuick: every component is simple — cycles
// visit each vertex once; paths repeat no vertex.
func TestDecomposeComponentsSimpleQuick(t *testing.T) {
	f := func(seed int64, stepsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		steps := int(stepsRaw)%24 + 1
		w := randomAlternatingWalk(rng, steps)
		for _, c := range Decompose(w) {
			seen := make(map[int]bool, len(c.Vertices))
			for _, v := range c.Vertices {
				if seen[v] {
					return false
				}
				seen[v] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestDecomposeAtMostOnePath: Lemma 4.11 promises a decomposition into
// cycles plus a single path.
func TestDecomposeAtMostOnePath(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		w := randomAlternatingWalk(rng, 1+rng.Intn(25))
		paths := 0
		for _, c := range Decompose(w) {
			if !c.IsCycle {
				paths++
			}
		}
		if paths > 1 {
			t.Fatalf("trial %d: %d path components", trial, paths)
		}
	}
}

// TestDecomposeAlternationPreserved: for walks whose repeats respect the
// bipartite orientation (as all layered-graph projections do), components
// alternate. We synthesise such walks by walking an alternating-weight
// even cycle.
func TestDecomposeAlternationPreserved(t *testing.T) {
	// Walk around a 6-cycle twice plus the closing matched edge.
	var w Walk
	w.Vertices = append(w.Vertices, 0)
	for rep := 0; rep < 2; rep++ {
		for i := 0; i < 6; i++ {
			w.Vertices = append(w.Vertices, (i+1)%6)
			w.Matched = append(w.Matched, i%2 == 0)
			w.Weights = append(w.Weights, graph.Weight(10+i%2))
		}
	}
	w.Vertices = append(w.Vertices, 1)
	w.Matched = append(w.Matched, true)
	w.Weights = append(w.Weights, 10)

	for _, c := range Decompose(w) {
		for i := 1; i < len(c.Matched); i++ {
			if c.Matched[i] == c.Matched[i-1] {
				t.Fatalf("component lost alternation: %+v", c)
			}
		}
		if c.IsCycle {
			if len(c.Matched)%2 != 0 {
				t.Fatalf("odd alternating cycle: %+v", c)
			}
			if c.Matched[0] == c.Matched[len(c.Matched)-1] {
				t.Fatalf("cycle seam does not alternate: %+v", c)
			}
		}
	}
}
