// Package layered implements the Section 4.3 machinery of
// Gamlath–Kale–Mitrović–Svensson (PODC 2019): random graph parametrization
// (Section 4.3.1), the good (τA, τB) pairs of Table 1, the layered graph of
// Definition 4.10 with its two-stage vertex filtering, and the Lemma 4.11
// decomposition of layered-graph alternating paths into alternating paths
// and even cycles of the original graph.
//
// The paper's constants are parameterised: the weight granularity ε¹² of the
// filtering becomes Params.Granularity and the maximum augmentation length
// 2/ε·16/ε+1 becomes Params.MaxLayers. See DESIGN.md ("Substitutions") for
// why this preserves the behaviour each experiment measures: the Table-1
// constraint Στ_B − Στ_A ≥ g guarantees positive gain for every captured
// augmentation at any granularity g.
//
// # Amortised construction
//
// Beyond the per-round construction, the package carries the differential
// machinery of the amortised pipeline. IncIndex maintains the per-class
// viability buckets across rounds, re-deriving only what a bipartition
// redraw, an augmentation, or a graph edit touched — edits arrive through
// the BeginEdits/Note*/EndEdits protocol and charge the same per-(class,
// unit) change clocks a redraw stamps, so downstream consumers need no new
// invariants. BuildDelta patches a previous Layered build into the next
// pair's (bit-identical to BuildIndexed by construction); its DeltaInfo
// names the baseline build and the byte-shared suffix of the L' edge list,
// which is exactly what bipartite.RepairHK needs to patch the matching
// solve on top. A baseline that cannot be proven fresh is rejected with
// one of the five ErrDelta* sentinels (NoBase, Detached, Scratch, Stale,
// Mismatch) and the caller rebuilds from scratch — the build rung of
// core's degradation ladder. The RoundChainer interface is the freshness
// oracle for baselines that survived a redraw: the index reports its epoch
// and per-(class, unit) stability spans, letting BuildDelta keep exactly
// the segments whose buckets provably did not change.
package layered

// Params collects the discretisation parameters of the layered-graph
// construction.
type Params struct {
	// Granularity g replaces the paper's ε¹²: τ values are multiples of g
	// and edge weights are bucketed to width g·W. Default 1/8.
	Granularity float64
	// MaxLayers bounds |τA|, the number of matched-edge layers (the paper's
	// 2/ε·16/ε + 1). Default 5.
	MaxLayers int
	// SumCap bounds Στ_B (the paper's 1+ε⁴; there the granularity ε¹² is so
	// much finer than the cap that rounding never bites). At coarse
	// granularity a cap of 2 leaves room for the cycle blow-up of Section
	// 1.1.2, matching Definition 4.6's allowance of edges up to 2W.
	// Default 2.
	SumCap float64
}

// WithDefaults fills zero fields with the default configuration.
func (p Params) WithDefaults() Params {
	if p.Granularity <= 0 || p.Granularity > 0.5 {
		p.Granularity = 0.125
	}
	if p.MaxLayers < 2 {
		p.MaxLayers = 5
	}
	if p.SumCap <= 0 {
		p.SumCap = 2
	}
	return p
}

// Units returns the maximum τ value in granularity units (τ ≤ 1) and the
// Στ_B cap in units.
func (p Params) Units() (maxU, capU int) {
	maxU = int(1/p.Granularity + 0.5)
	capU = int(p.SumCap/p.Granularity + 1e-9)
	return maxU, capU
}
