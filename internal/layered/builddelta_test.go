package layered

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// assertSameLayered fails unless got and want are byte-identical layered
// graphs: same compact-id decode tables, same X/Y/InteriorX sequences.
func assertSameLayered(t testing.TB, label string, got, want *Layered) {
	t.Helper()
	if got.K != want.K || got.NumV != want.NumV {
		t.Fatalf("%s: shape differs: K %d/%d NumV %d/%d", label, got.K, want.K, got.NumV, want.NumV)
	}
	for id := 0; id < want.NumV; id++ {
		if got.Orig(id) != want.Orig(id) || got.LayerOf(id) != want.LayerOf(id) {
			t.Fatalf("%s: id %d decodes (%d,%d), want (%d,%d)", label, id,
				got.LayerOf(id), got.Orig(id), want.LayerOf(id), want.Orig(id))
		}
	}
	if !edgeSlicesEqual(got.X, want.X) {
		t.Fatalf("%s: X differs:\n got %v\nwant %v", label, got.X, want.X)
	}
	if !edgeSlicesEqual(got.Y, want.Y) {
		t.Fatalf("%s: Y differs:\n got %v\nwant %v", label, got.Y, want.Y)
	}
	if !edgeSlicesEqual(got.InteriorX, want.InteriorX) {
		t.Fatalf("%s: InteriorX differs:\n got %v\nwant %v", label, got.InteriorX, want.InteriorX)
	}
}

// deltaChainCheck drives one class's surviving pairs through a delta chain
// on one shared scratch (BuildIndexed for the first pair, BuildDelta after)
// and asserts every build equals a from-scratch BuildIndexed over the same
// index. Returns the total segments reused, so callers can assert the chain
// actually chained.
func deltaChainCheck(t testing.TB, ix Index, pairs []TauPair, s *Scratch, cutover int) int {
	t.Helper()
	reused, _, _ := deltaChainFrom(t, ix, pairs, s, cutover, nil, nil)
	return reused
}

// deltaChainFrom is deltaChainCheck with an explicit chain seed: prev (and
// its arena-independent snapshot prevSnap) may be the tail of an earlier
// round's chain on the same scratch, in which case the first build of this
// call exercises the cross-round link of BuildDelta. It returns the chain's
// new tail alongside the reuse total so callers can thread it into the next
// round.
func deltaChainFrom(t testing.TB, ix Index, pairs []TauPair, s *Scratch, cutover int,
	prev, prevSnap *Layered) (int, *Layered, *Layered) {
	t.Helper()
	s.EnableDeltaBaseline()
	reusedTotal := 0
	for pi, tau := range pairs {
		want := BuildIndexed(ix, tau, nil)
		var got *Layered
		if prev == nil {
			got = BuildIndexed(ix, tau, s)
			if got.Delta.Valid {
				t.Fatalf("pair %d: from-scratch build claims a delta baseline", pi)
			}
		} else {
			var reused int
			var err error
			got, reused, err = BuildDelta(ix, prev, tau, s, cutover)
			if err != nil {
				t.Fatalf("pair %d: BuildDelta: %v", pi, err)
			}
			reusedTotal += reused
			assertDeltaInfo(t, pi, got, prevSnap, prev.BuildSeq())
		}
		assertSameLayered(t, "delta chain", got, want)
		prev = got
		// Snapshot for the next iteration's DeltaInfo audit: the arena
		// reuses prev's storage, so the baseline must be copied out.
		prevSnap = snapshotLayered(got)
	}
	return reusedTotal, prev, prevSnap
}

// snapshotLayered copies the build's solver-visible content out of the
// arena (the test-side analogue of Detach, without touching the build).
func snapshotLayered(l *Layered) *Layered {
	cp := &Layered{K: l.K, NumV: l.NumV}
	cp.X = append([]graph.Edge(nil), l.X...)
	cp.Y = append([]graph.Edge(nil), l.Y...)
	cp.InteriorX = append([]graph.Edge(nil), l.InteriorX...)
	cp.vertOrig = append([]int32(nil), l.vertOrig...)
	cp.vertLayer = append([]int32(nil), l.vertLayer...)
	return cp
}

// assertDeltaInfo audits the changed-suffix descriptor a delta build
// surfaces for the solver-side repair: every "kept" count must name a
// byte-identical prefix of the baseline (edges and compact-id decode
// tables alike), and every kept L' edge must keep both endpoints under
// KeptIDs — the contracts bipartite.RepairHK patches its CSR on.
func assertDeltaInfo(t testing.TB, pi int, got, base *Layered, baseSeq uint64) {
	t.Helper()
	d := got.Delta
	if !d.Valid || d.BaseSeq != baseSeq {
		t.Fatalf("pair %d: DeltaInfo %+v does not name baseline seq %d", pi, d, baseSeq)
	}
	check := func(what string, gotE, baseE []graph.Edge, kept int) {
		if kept < 0 || kept > len(gotE) || kept > len(baseE) {
			t.Fatalf("pair %d: Kept%s %d out of range (got %d, base %d)",
				pi, what, kept, len(gotE), len(baseE))
		}
		for i := 0; i < kept; i++ {
			if gotE[i] != baseE[i] {
				t.Fatalf("pair %d: %s[%d] = %v differs from baseline %v under Kept%s=%d",
					pi, what, i, gotE[i], baseE[i], what, kept)
			}
		}
	}
	check("X", got.X, base.X, d.KeptX)
	check("InteriorX", got.InteriorX, base.InteriorX, d.KeptInteriorX)
	check("Y", got.Y, base.Y, d.KeptY)
	if d.KeptIDs < 0 || d.KeptIDs > got.NumV || d.KeptIDs > base.NumV {
		t.Fatalf("pair %d: KeptIDs %d out of range (got %d, base %d)", pi, d.KeptIDs, got.NumV, base.NumV)
	}
	for id := 0; id < d.KeptIDs; id++ {
		if got.vertOrig[id] != base.vertOrig[id] || got.vertLayer[id] != base.vertLayer[id] {
			t.Fatalf("pair %d: kept id %d decodes (%d,%d), baseline (%d,%d)", pi, id,
				got.vertLayer[id], got.vertOrig[id], base.vertLayer[id], base.vertOrig[id])
		}
	}
	lp := make([]graph.Edge, 0, len(got.InteriorX)+len(got.Y))
	lp = append(lp, got.InteriorX...)
	lp = append(lp, got.Y...)
	baseLP := make([]graph.Edge, 0, len(base.InteriorX)+len(base.Y))
	baseLP = append(baseLP, base.InteriorX...)
	baseLP = append(baseLP, base.Y...)
	check("LPrime", lp, baseLP, d.KeptLPrime)
	for i := 0; i < d.KeptLPrime; i++ {
		if lp[i].U >= d.KeptIDs || lp[i].V >= d.KeptIDs {
			t.Fatalf("pair %d: kept L' edge %d = %v has an endpoint at or past KeptIDs %d",
				pi, i, lp[i], d.KeptIDs)
		}
	}
}

// TestBuildDeltaMatchesBuildIndexed is the unit-level differential: over
// random instances, evolving matchings, and fresh bipartitions, every
// delta-chained build — through the grouped IncView path and the filtered
// BucketIndex fallback alike, at several cutover thresholds — must be
// byte-identical to a from-scratch BuildIndexed of the same pair.
func TestBuildDeltaMatchesBuildIndexed(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	reusedTotal := 0
	for trial := 0; trial < 8; trial++ {
		n := 10 + rng.Intn(22)
		inst := graph.RandomGraph(n, 4*n, graph.Weight(1<<(3+rng.Intn(5))), rng)
		edges := inst.G.Edges()
		prm := Params{Granularity: []float64{0.5, 0.25, 0.125, 0.0625}[trial%4]}.WithDefaults()
		ws := testClassWeights(edges, prm)
		inc := NewIncIndex(n, edges, ws, prm)
		m := graph.NewMatching(n)
		sInc, sRef := NewScratch(), NewScratch()
		enum := NewPairScratch()
		cutover := []int{0, 1, 2, 5, 100}[trial%5]

		for round := 0; round < 4; round++ {
			for k := 0; k < 1+rng.Intn(4); k++ {
				mutateMatching(m, edges[rng.Intn(len(edges))], byte(rng.Intn(256)))
			}
			par := Parametrize(n, edges, m, rng)
			inc.BeginRound(par)
			for c, w := range ws {
				if c%3 != round%3 { // subsample classes per round for speed
					continue
				}
				v := inc.View(c)
				aMask, bMask, ok := v.Masks()
				if !ok {
					t.Fatal("masks unavailable at test granularity")
				}
				orc, ok := v.Oracle()
				if !ok {
					t.Fatal("oracle unavailable at test granularity")
				}
				pairs, _ := EnumerateSurvivingPairs(prm, aMask, bMask, 24, orc, enum)
				if len(pairs) < 2 {
					continue
				}
				// Grouped path over the incremental view.
				reusedTotal += deltaChainCheck(t, v, pairs, sInc, cutover)
				// Filtered-scan fallback over a naive BucketIndex.
				ref := NewBucketIndex(par, w, prm)
				deltaChainCheck(t, ref, pairs, sRef, cutover)
			}
		}
	}
	if reusedTotal == 0 {
		t.Error("no delta build reused any layer segment across all trials")
	}
}

// TestBuildDeltaScratchHazards is the regression net for the arena reuse
// hazard: a baseline that is stale (a later build reused its scratch),
// detached, foreign to the scratch, missing, or built from a different index
// state must be refused with the matching sentinel error — never silently
// diffed against overwritten storage — and the arena must remain usable.
func TestBuildDeltaScratchHazards(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	inst := graph.PlantedMatching(24, 96, 50, 120, rng)
	edges := inst.G.Edges()
	prm := Params{}.WithDefaults()
	par := Parametrize(24, edges, inst.Opt, rng)
	ix := NewBucketIndex(par, 128, prm)
	pairs := EnumerateGoodPairs(prm)
	if len(pairs) < 3 {
		t.Fatal("need at least 3 good pairs")
	}
	s := NewScratch()

	lay0 := BuildIndexed(ix, pairs[0], s)
	lay1 := BuildIndexed(ix, pairs[1], s) // lay0's storage is now overwritten

	if _, _, err := BuildDelta(ix, lay0, pairs[2], s, 1); !errors.Is(err, ErrDeltaStale) {
		t.Fatalf("stale baseline: got %v, want ErrDeltaStale", err)
	}
	if _, _, err := BuildDelta(ix, nil, pairs[2], s, 1); !errors.Is(err, ErrDeltaNoBase) {
		t.Fatalf("nil baseline: got %v, want ErrDeltaNoBase", err)
	}
	if _, _, err := BuildDelta(ix, lay1, pairs[2], NewScratch(), 1); !errors.Is(err, ErrDeltaScratch) {
		t.Fatalf("foreign scratch: got %v, want ErrDeltaScratch", err)
	}
	ix2 := NewBucketIndex(par, 64, prm)
	if _, _, err := BuildDelta(ix2, lay1, pairs[2], s, 1); !errors.Is(err, ErrDeltaMismatch) {
		t.Fatalf("index mismatch: got %v, want ErrDeltaMismatch", err)
	}
	detached := BuildIndexed(ix, pairs[1], s).Detach()
	if _, _, err := BuildDelta(ix, detached, pairs[2], s, 1); !errors.Is(err, ErrDeltaDetached) {
		t.Fatalf("detached baseline: got %v, want ErrDeltaDetached", err)
	}

	// A refused delta leaves the arena intact: the next builds (indexed and
	// delta-chained) still produce the from-scratch result.
	live := BuildIndexed(ix, pairs[0], s)
	assertSameLayered(t, "post-error rebuild", live, BuildIndexed(ix, pairs[0], nil))
	next, _, err := BuildDelta(ix, live, pairs[1], s, 1)
	if err != nil {
		t.Fatalf("post-error delta: %v", err)
	}
	assertSameLayered(t, "post-error delta", next, BuildIndexed(ix, pairs[1], nil))
}

// naiveClassDirty recomputes the dirty-class predicate from a from-scratch
// BucketIndex: dirty iff any crossing matched edge lands in a τA window
// (units 1..maxU) or any crossing unmatched edge in a τB window the
// enumeration can name (units 2..maxU).
func naiveClassDirty(ref *BucketIndex, prm Params) bool {
	maxU, _ := prm.Units()
	for u := 1; u <= maxU; u++ {
		if ref.ACount(u) > 0 {
			return true
		}
	}
	for u := 2; u <= maxU; u++ {
		if ref.BCount(u) > 0 {
			return true
		}
	}
	return false
}

// TestDirtyClassGate is the gate's property test: under randomized
// matchings and bipartitions, the round's dirty set must equal the naive
// per-class recomputation exactly, clean classes must enumerate zero good
// pairs under their naive BucketIndex masks (so skipping them cannot change
// any result), and DirtyClasses must count the set exactly.
func TestDirtyClassGate(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	sawClean := false
	for trial := 0; trial < 10; trial++ {
		n := 8 + rng.Intn(20)
		inst := graph.RandomGraph(n, 2*n, graph.Weight(1<<(3+rng.Intn(6))), rng)
		edges := inst.G.Edges()
		prm := Params{Granularity: []float64{0.5, 0.25, 0.125}[trial%3]}.WithDefaults()
		ws := testClassWeights(edges, prm)
		inc := NewIncIndex(n, edges, ws, prm)
		m := graph.NewMatching(n)
		for round := 0; round < 4; round++ {
			for k := 0; k < 1+rng.Intn(5); k++ {
				mutateMatching(m, edges[rng.Intn(len(edges))], byte(rng.Intn(256)))
			}
			par := Parametrize(n, edges, m, rng)
			inc.BeginRound(par)
			dirtyCnt := 0
			for c, w := range ws {
				ref := NewBucketIndex(par, w, prm)
				want := naiveClassDirty(ref, prm)
				if got := inc.RoundDirty(c); got != want {
					t.Fatalf("trial %d round %d class %d (W=%v): RoundDirty=%v, naive=%v",
						trial, round, c, w, got, want)
				}
				if want {
					dirtyCnt++
					continue
				}
				sawClean = true
				aMask, bMask, ok := ref.Masks()
				if !ok {
					t.Fatal("masks unavailable at test granularity")
				}
				if pairs := EnumerateGoodPairsMasked(prm, aMask, bMask, 0); len(pairs) != 0 {
					t.Fatalf("trial %d round %d class %d: clean class enumerated %d pairs",
						trial, round, c, len(pairs))
				}
			}
			if inc.DirtyClasses() != dirtyCnt {
				t.Fatalf("trial %d round %d: DirtyClasses=%d, counted %d",
					trial, round, inc.DirtyClasses(), dirtyCnt)
			}
		}
	}
	if !sawClean {
		t.Error("no clean class across all trials; gate never exercised")
	}
}

// FuzzBuildDelta mutates the matched windows (matching toggles with weight
// perturbation), the τ-masks (fresh bipartitions per round), and the delta
// cutover threshold, and holds every delta-chained build — grouped and
// fallback paths — byte-identical to the from-scratch BuildIndexed of the
// same pair over both index implementations. The grouped path's chains are
// carried ACROSS rounds (per-class scratch and tail, as core does under
// cross-round chaining), so a revisited class's first build exercises the
// crossing-status diff at the round link; the fallback path restarts
// round-locally, as a non-RoundChainer index must.
func FuzzBuildDelta(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(1), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(int64(2), uint8(1), uint8(0), []byte{0xff, 0x80, 0x10, 9, 9, 9})
	f.Add(int64(3), uint8(3), uint8(40), []byte{})
	// Cross-round seeds: empty first rounds keep the matching stable into
	// the revisit (pure crossing-status diffs at the link), and dense
	// mutation scripts flip matched windows right at it.
	f.Add(int64(7), uint8(0), uint8(2), []byte{0, 0, 0, 1, 0x41})
	f.Add(int64(11), uint8(2), uint8(1), []byte{5, 0x80, 2, 0x21, 0, 7, 0x10, 0, 3, 0xfe})
	f.Fuzz(func(t *testing.T, seed int64, granSel, cutSel uint8, script []byte) {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(14)
		inst := graph.RandomGraph(n, 3*n, 1<<6, rng)
		edges := inst.G.Edges()
		if len(edges) == 0 {
			t.Skip()
		}
		prm := Params{Granularity: []float64{0.5, 0.25, 0.125, 0.0625}[granSel%4]}.WithDefaults()
		cutover := int(cutSel%12) - 1 // -1..10: below, at, and past any real reuse
		ws := testClassWeights(edges, prm)
		inc := NewIncIndex(n, edges, ws, prm)
		m := graph.NewMatching(n)
		sRef := NewScratch()
		sIncs := make([]*Scratch, len(ws))
		tails := make([]*Layered, len(ws))
		tailSnaps := make([]*Layered, len(ws))
		enum := NewPairScratch()

		round := func(start int) int {
			i := start
			for ; i+1 < len(script) && script[i] != 0; i += 2 {
				mutateMatching(m, edges[int(script[i])%len(edges)], script[i+1])
			}
			return i + 1
		}
		pos := 0
		for r := 0; r < 4; r++ { // 4 rounds so r=3 revisits r=0's classes
			pos = round(pos)
			par := Parametrize(n, edges, m, rng)
			if err := inc.BeginRound(par); err != nil {
				t.Fatal(err)
			}
			for c, w := range ws {
				if c%3 != r%3 { // subsample classes per round for speed
					continue
				}
				v := inc.View(c)
				aMask, bMask, ok := v.Masks()
				if !ok {
					continue
				}
				orc, ok := v.Oracle()
				if !ok {
					continue
				}
				pairs, _ := EnumerateSurvivingPairs(prm, aMask, bMask, 16, orc, enum)
				if len(pairs) < 2 {
					continue
				}
				if sIncs[c] == nil {
					sIncs[c] = NewScratch()
				}
				_, tail, snap := deltaChainFrom(t, v, pairs, sIncs[c], cutover,
					tails[c], tailSnaps[c])
				tails[c], tailSnaps[c] = tail, snap
				deltaChainCheck(t, NewBucketIndex(par, w, prm), pairs, sRef, cutover)
			}
		}
	})
}
