package layered

// Edit protocol (PR 8): the mutation-diff half of the fully-dynamic
// pipeline. Between rounds, the graph may gain, lose, or reweight edges;
// the index absorbs each edit by maintaining its per-edge band storage and
// charging the touched (class, unit) buckets to the same change clocks
// BeginRound stamps for bipartition redraws. An edit is therefore "just
// another epoch bump": BuildDelta's stability gates (AStableSince /
// YStableSince) and the grouped-Y revalidation see edited buckets exactly
// as they see redrawn ones, and everything downstream — delta chaining,
// RepairHK, the solve cache — stays bit-identical to a cold index built on
// the post-edit graph, with no new invariants.
//
// The protocol is BeginEdits, then one Note* call per graph mutation in
// application order, then EndEdits:
//
//   - the graph (and, for matched edges, the matching) is mutated first;
//     the Note* call receives the post-edit edge slice and re-aliases it
//     (an append may have reallocated the backing array);
//   - matched-side effects need no Note at all: the matching is diffed by
//     the next BeginRound's merge pass, which charges aChg/vChg for
//     dropped, rematched, and reweighted entries — edits ride the same
//     path an augmentation does;
//   - only the unmatched window storage (bands, bAll lists, ePrev) needs
//     explicit maintenance, and that is what the three Note methods do.
//
// BeginEdits bumps the epoch once for the whole batch, so every charge
// lands strictly after the last round's builds and strictly before the
// next round's. The protocol has BeginRound's exclusivity contract and
// shares its busy guard: edits may not overlap a running BeginRound or
// another edit batch (BeginEdits returns ErrBeginRoundBusy, and the caller
// degrades through the ladder's reset rung).

import (
	"sort"

	"repro/internal/graph"
)

// BeginEdits opens a mutation batch: it advances the change clock by one
// epoch so the batch's charges invalidate exactly the builds that predate
// it. Returns ErrBeginRoundBusy — having mutated nothing — when a
// BeginRound or another edit batch is still running on the index.
func (x *IncIndex) BeginEdits() error {
	if !x.busy.CompareAndSwap(0, 1) {
		return ErrBeginRoundBusy
	}
	x.epoch++
	return nil
}

// EndEdits closes a mutation batch opened by BeginEdits and reclaims the
// band storage abandoned by deletes and reweights once dead slots dominate.
func (x *IncIndex) EndEdits() {
	x.maybeCompactBands()
	x.busy.Store(0)
}

// NoteInsert records an edge appended to the graph (graph.AddEdge); edges
// is the post-insert slice and the new edge is its last element. The new
// edge enters every bAll list at the maximal index, so the ascending
// bucket order a fresh index would produce is preserved, and its ePrev
// starts zero — the next BeginRound's liveness diff charges its buckets
// if and when it first crosses.
func (x *IncIndex) NoteInsert(edges []graph.Edge) {
	x.edges = edges
	i := len(edges) - 1
	start, units := x.bandOf(edges[i].W)
	x.bOff = append(x.bOff, int32(len(x.bUnits)))
	x.bStart = append(x.bStart, start)
	x.bLen = append(x.bLen, int32(len(units)))
	x.bUnits = append(x.bUnits, units...)
	x.ePrev = append(x.ePrev, 0)
	for k, u := range units {
		c := int(start) + k
		x.bAll[c][u] = append(x.bAll[c][u], int32(i))
	}
}

// NoteRemove records a swap-remove of the edge that lived at index i
// (graph.RemoveEdgeAt): moved is the pre-delete index of the edge now at i
// (-1 when i was last) and edges is the post-delete slice. The deleted
// edge's buckets are charged (their content shrinks), and the moved edge's
// buckets too — its set membership is unchanged but its position in the
// ascending bucket order moves from last place to slot i, and bucket order
// is part of the bit-identity contract. The deleted band's bUnits slots go
// dead; EndEdits reclaims them.
func (x *IncIndex) NoteRemove(i, moved int, edges []graph.Edge) {
	x.edges = edges
	last := len(x.bOff) - 1
	x.bumpBand(i)
	x.bAllRemoveBand(i, int32(i))
	x.bDead += int(x.bLen[i])
	if moved >= 0 {
		x.bumpBand(moved)
		x.bAllRemoveBand(moved, int32(moved))
		off, st := x.bOff[moved], int(x.bStart[moved])
		for k := int32(0); k < x.bLen[moved]; k++ {
			x.bAllInsert(st+int(k), x.bUnits[off+k], int32(i))
		}
		x.bOff[i] = x.bOff[last]
		x.bStart[i] = x.bStart[last]
		x.bLen[i] = x.bLen[last]
		x.ePrev[i] = x.ePrev[last]
	}
	x.bOff = x.bOff[:last]
	x.bStart = x.bStart[:last]
	x.bLen = x.bLen[:last]
	x.ePrev = x.ePrev[:last]
}

// NoteReweight records an in-place weight change of the edge at index i
// (graph.SetEdgeWeight); edges is the post-edit slice. The old band is
// charged and abandoned (its bUnits slots go dead, so bOff stops being
// monotone until EndEdits compacts), a fresh band for the new weight is
// appended, and the new band is charged too — the edge's weight is part of
// every bucket entry, so even a move within the same window invalidates.
// ePrev is untouched: liveness and orientation do not depend on weight,
// and the unconditional new-band charge covers re-entry after a spell
// outside all windows.
func (x *IncIndex) NoteReweight(i int, edges []graph.Edge) {
	x.edges = edges
	x.bumpBand(i)
	x.bAllRemoveBand(i, int32(i))
	x.bDead += int(x.bLen[i])
	start, units := x.bandOf(edges[i].W)
	x.bOff[i] = int32(len(x.bUnits))
	x.bStart[i] = start
	x.bLen[i] = int32(len(units))
	x.bUnits = append(x.bUnits, units...)
	for k, u := range units {
		x.bAllInsert(int(start)+k, u, int32(i))
	}
	x.bumpBand(i)
}

// bumpBand charges every (class, unit) bucket of the band stored at slot
// si to the current epoch's τB change clock.
func (x *IncIndex) bumpBand(si int) {
	off, st := x.bOff[si], int(x.bStart[si])
	for k := int32(0); k < x.bLen[si]; k++ {
		x.yChg[st+int(k)][x.bUnits[off+k]] = x.epoch
	}
}

// bAllRemoveBand removes edge index ei from every bAll list of the band
// stored at slot si. The lists are ascending, so each removal is a binary
// search plus a shift.
func (x *IncIndex) bAllRemoveBand(si int, ei int32) {
	off, st := x.bOff[si], int(x.bStart[si])
	for k := int32(0); k < x.bLen[si]; k++ {
		c, u := st+int(k), x.bUnits[off+k]
		list := x.bAll[c][u]
		j := sort.Search(len(list), func(j int) bool { return list[j] >= ei })
		if j < len(list) && list[j] == ei {
			x.bAll[c][u] = append(list[:j], list[j+1:]...)
		}
	}
}

// bAllInsert inserts edge index ei into the (c, u) bAll list at its sorted
// position.
func (x *IncIndex) bAllInsert(c int, u uint8, ei int32) {
	list := x.bAll[c][u]
	j := sort.Search(len(list), func(j int) bool { return list[j] >= ei })
	list = append(list, 0)
	copy(list[j+1:], list[j:])
	list[j] = ei
	x.bAll[c][u] = list
}

// maybeCompactBands rewrites bUnits without the slots abandoned by deletes
// and reweights once they outnumber the live ones. Offsets move but band
// contents do not, so no clock is charged.
func (x *IncIndex) maybeCompactBands() {
	if x.bDead == 0 || x.bDead*2 <= len(x.bUnits) {
		return
	}
	fresh := make([]uint8, 0, len(x.bUnits)-x.bDead)
	for i := range x.bOff {
		seg := x.bUnits[x.bOff[i] : x.bOff[i]+x.bLen[i]]
		x.bOff[i] = int32(len(fresh))
		fresh = append(fresh, seg...)
	}
	x.bUnits = fresh
	x.bDead = 0
}
