package layered

import (
	"errors"

	"repro/internal/faultinject"
	"repro/internal/graph"
)

// BuildDelta error conditions. All of them mean the caller broke the delta
// contract (prev must be the arena's live latest build over the same index
// state); the caller falls back to BuildIndexed.
var (
	// ErrDeltaNoBase: prev (or the scratch) is nil — there is nothing to
	// diff against; the first pair of a chain must use BuildIndexed.
	ErrDeltaNoBase = errors.New("layered: BuildDelta needs a previous scratch-backed build as baseline")
	// ErrDeltaDetached: prev was Detach()ed. A detached Layered is a copied
	// snapshot, not a live view of the arena, so diffing against it would
	// not describe the arena's current contents.
	ErrDeltaDetached = errors.New("layered: BuildDelta baseline was detached from its scratch")
	// ErrDeltaScratch: prev was built on a different arena than s.
	ErrDeltaScratch = errors.New("layered: BuildDelta baseline belongs to a different scratch")
	// ErrDeltaStale: a later build already ran on the arena, overwriting the
	// storage prev aliases. Retaining a Layered across builds requires
	// Detach(); chaining deltas requires prev to be the latest build.
	ErrDeltaStale = errors.New("layered: BuildDelta baseline is stale (a later build reused its scratch)")
	// ErrDeltaMismatch: prev was built from a different class weight or
	// discretisation than ix currently describes — or from a different
	// parametrization without the index offering the RoundChainer evidence
	// that would let per-bucket stability carry segments across the redraw —
	// so equal τ units would not imply equal buckets.
	ErrDeltaMismatch = errors.New("layered: BuildDelta baseline was built from a different index state")
)

// RoundChainer is the optional Index capability that lets BuildDelta chain
// across a bipartition redraw (PR 7): the index keeps a monotonic round
// clock (one tick per BeginRound) and, per bucket, the epoch of the last
// change that could alter a built segment's bytes. A baseline built at
// epoch E then still anchors a delta after any number of redraws — each
// kept segment individually requires its bucket to be unchanged since E,
// which makes the kept bytes (edges, compact ids, and side entries alike)
// identical to what a from-scratch build would emit this round. Implemented
// by IncView; indexes without it confine delta chains to a single round
// (BuildDelta reports ErrDeltaMismatch when the parametrization changed).
type RoundChainer interface {
	// RoundEpoch returns the current round clock (0 before the first round).
	RoundEpoch() uint64
	// AStableSince reports that the class's unit-u τA bucket — membership,
	// weights, and member orientation — is unchanged since the given epoch.
	AStableSince(u int, epoch uint64) bool
	// YStableSince reports that the class's unit-u τB bucket and the
	// survival classification of every in-window endpoint are unchanged
	// since the given epoch.
	YStableSince(u int, epoch uint64) bool
}

// YGrouper is the optional Index capability BuildDelta exploits for the Y
// stage: the unit-u unmatched crossing edges pre-partitioned by the survival
// classification of their endpoints (the same per-(class, unit) crossing
// tables the ProbeY survival probe reads), so one lookup returns exactly the
// edges that survive between a layer of matched unit row and a next layer of
// matched unit col — in bucket order, with the dead edges never touched.
// Implemented by IncView; indexes without it (BucketIndex) make BuildDelta
// fall back to the BuildIndexed-style filtered bucket scan.
type YGrouper interface {
	// YGroupsOK reports whether grouped lookup is available (the tables
	// need maxU < FreeLBit, the same bound as the survival probe).
	YGroupsOK() bool
	// YGroup returns the unit-u unmatched crossing edges whose R endpoint
	// carries a crossing matched edge of unit row (row 0: R free — only
	// meaningful for the first layer's τA = 0 rule) and whose L endpoint
	// carries one of unit col (col FreeLBit: L free — the last layer's
	// rule), oriented U = R endpoint, V = L endpoint, in bucket order.
	YGroup(u, row, col int) []graph.Edge
}

// DeltaInfo describes how a build relates to the build that preceded it on
// the same arena — the changed-suffix descriptor the solver-side repair
// (bipartite.RepairHK) consumes. BuildDelta fills it from the kept-prefix
// watermarks it already maintains; from-scratch builds leave it zero
// (Valid = false). All counts are relative to the baseline build named by
// BaseSeq, and "kept" means byte-identical: the same edges with the same
// compact ids, at the same positions of the arena's slices (Invariant 19).
type DeltaInfo struct {
	// Valid reports that the build was assembled by BuildDelta from a live
	// baseline, so the remaining fields describe a real shared prefix.
	Valid bool
	// BaseSeq is the BuildSeq of the baseline build the prefix is shared
	// with. Consumers chaining state across solves must check it against
	// the BuildSeq of the instance they last processed: a build in between
	// (a probe-rejected or cache-served pair is not one — those never
	// build) breaks the correspondence.
	BaseSeq uint64
	// KeptXLayers is the number of leading X layers kept verbatim (the
	// first rebuilt X-layer index); KeptYGaps the number of leading Y gaps
	// kept, which is non-zero only when the whole X stage was kept.
	KeptXLayers, KeptYGaps int
	// KeptIDs: compact ids [0, KeptIDs) decode identically in the baseline
	// and this build, and every edge of the kept prefixes below has both
	// endpoints under it.
	KeptIDs int
	// KeptX, KeptInteriorX, KeptY are the byte-shared prefix lengths of the
	// X / InteriorX / Y slices.
	KeptX, KeptInteriorX, KeptY int
	// KeptLPrime is the byte-shared prefix length of the L' edge list
	// (InteriorX followed by Y, the LPrimeEdges concatenation): the whole
	// InteriorX plus KeptY when the X stage was fully kept, KeptInteriorX
	// otherwise.
	KeptLPrime int
}

// BuildDelta constructs the layered graph of Definition 4.10 for tau by
// patching the arena state left behind by prev — the immediately preceding
// build on s for the same index state — instead of reconstructing every
// layer: the leading X layers whose τA units are unchanged keep their edge
// segments and compact ids verbatim (the arena is truncated back to the
// first changed layer, not rebuilt), and when the whole τA vector is
// unchanged the leading Y gaps with unchanged τB units are kept too. The
// rebuilt suffix reuses the arena's dense id tables without restamping, so
// reused copies keep their exact compact ids; the result is bit-identical to
// BuildIndexed(ix, tau, s) — same X/Y/InteriorX sequences, same ids — which
// the differential suite (TestBuildDeltaMatchesBuildIndexed, FuzzBuildDelta)
// asserts across every generator family.
//
// The baseline may come from an earlier round — a different parametrization
// of the same graph — when ix implements RoundChainer (PR 7): each kept
// segment then additionally requires its bucket unchanged since the
// baseline's build epoch, and unstable segments shrink the kept prefix
// (possibly to nothing, a full in-place rebuild) rather than erroring, so
// the chain survives the bipartition redraw without ever tripping the
// fallback rungs on a healthy run. Without RoundChainer a cross-round
// baseline is rejected with ErrDeltaMismatch, as before.
//
// cutover is the chaining gate: when fewer than cutover segments (X layers
// plus kept Y gaps) are reusable, the whole graph is rebuilt from scratch
// (reused = 0) rather than paying the diff bookkeeping; cutover ≤ 1 chains
// whenever anything is reusable.
//
// reused counts the segments carried over unchanged (Stats.DeltaLayersReused).
// A non-nil error means prev is not a valid baseline (see the ErrDelta*
// conditions); the arena is left untouched and the caller should build via
// BuildIndexed instead.
func BuildDelta(ix Index, prev *Layered, tau TauPair, s *Scratch, cutover int) (l *Layered, reused int, err error) {
	if prev == nil || s == nil {
		return nil, 0, ErrDeltaNoBase
	}
	// Hazard site (chaos testing): report the baseline stale before any
	// arena state is touched, exactly as a real staleness check would.
	if faultinject.Fire(faultinject.DeltaStale) {
		return nil, 0, ErrDeltaStale
	}
	if prev.scratch == nil {
		return nil, 0, ErrDeltaDetached
	}
	if prev.scratch != s {
		return nil, 0, ErrDeltaScratch
	}
	if prev != s.last {
		return nil, 0, ErrDeltaStale
	}
	par, w, prm := ix.Parametrization(), ix.ClassWeight(), ix.Config()
	if prev.W != w || prev.Prm != prm {
		return nil, 0, ErrDeltaMismatch
	}
	// chain is non-nil on the cross-round path: the baseline was built from
	// an earlier round's parametrization, and the index's change clock must
	// vouch for every kept segment individually. Note the asymmetry with the
	// same-round path: an unstable bucket is not an error — the segment is
	// simply not kept (px/q stop growing, down to a full in-place rebuild),
	// so a healthy run never touches the fallback rungs.
	var chain RoundChainer
	if prev.Par != par {
		rc, ok := ix.(RoundChainer)
		if !ok || prev.epoch == 0 || prev.Par == nil || prev.Par.N != par.N ||
			rc.RoundEpoch() < prev.epoch {
			return nil, 0, ErrDeltaMismatch
		}
		// Hazard site (chaos testing): sever the cross-round chain link —
		// report the baseline stale as a failed epoch validation would. The
		// caller falls back to BuildIndexed, restarting the chain
		// round-locally, bit-identically.
		if faultinject.Fire(faultinject.ChainLink) {
			return nil, 0, ErrDeltaStale
		}
		chain = rc
	}

	k, kp := tau.K(), prev.K
	n := par.N
	s.growDense((k + 1) * n)

	// px is the number of X layers kept from prev (their τA units match and
	// their boundary/interior status is identical in both builds: layers
	// 0..min(k, kp)−1 are interior-or-first in both, and the full vector
	// keeps the last layer too). q is the number of Y gaps kept, which
	// additionally requires the X stage to be byte-identical (gap edges and
	// their fresh ids depend on the whole X id assignment). Across a round
	// boundary each kept segment further requires its bucket unchanged since
	// the baseline's epoch (a τA = 0 layer holds no bucket content, so unit
	// equality alone suffices there).
	px, q := 0, 0
	if s.marksValid { // a baseline built without watermarks offers no prefix
		stableX := func(t int) bool {
			u := tau.AUnits[t]
			return chain == nil || u == 0 || chain.AStableSince(u, prev.epoch)
		}
		maxP := min(k, kp)
		for px < maxP && prev.Tau.AUnits[px] == tau.AUnits[px] && stableX(px) {
			px++
		}
		if k == kp && px == k && prev.Tau.AUnits[k] == tau.AUnits[k] && stableX(k) {
			px = k + 1
			for q < k && prev.Tau.BUnits[q] == tau.BUnits[q] &&
				(chain == nil || chain.YStableSince(tau.BUnits[q], prev.epoch)) {
				q++
			}
		}
	}
	if px+q < cutover {
		px, q = 0, 0
	}
	reused = px + q

	s.nextBad()
	s.recMarks = true // chaining implies the next baseline needs marks too
	s.layerIDEnd = ensureLen32(s.layerIDEnd, k+2)
	s.layerXEnd = ensureLen32(s.layerXEnd, k+2)
	s.layerIXEnd = ensureLen32(s.layerIXEnd, k+2)
	s.gapYEnd = ensureLen32(s.gapYEnd, k+1)
	s.gapIDEnd = ensureLen32(s.gapIDEnd, k+1)

	l = &Layered{Par: par, Tau: s.ownTau(tau), W: w, Prm: prm, K: k, scratch: s}
	if rc, ok := ix.(RoundChainer); ok {
		l.epoch = rc.RoundEpoch()
	}
	baseSeq := prev.seq
	s.buildSeq++
	l.seq = s.buildSeq
	s.last = l

	// lookup returns the compact id of the copy of v in layer t when the
	// arena's current arrays record one, or −1. Entries are validated
	// against the arrays rather than a fresh stamp: truncation discards
	// suffix ids, so a stale table entry either points past the live arrays
	// or at an id the rebuild reassigned to a different copy.
	lookup := func(t, v int) int32 {
		d := t*n + v
		if s.idMark[d] != s.stamp {
			return -1
		}
		id := s.idAt[d]
		if int(id) >= len(s.vertOrig) || s.vertLayer[id] != int32(t) || s.vertOrig[id] != int32(v) {
			return -1
		}
		return id
	}
	assign := func(t, v int) int32 {
		if id := lookup(t, v); id >= 0 {
			return id
		}
		id := int32(len(s.vertOrig))
		d := t*n + v
		s.idMark[d] = s.stamp
		s.idAt[d] = id
		s.vertOrig = append(s.vertOrig, int32(v))
		s.vertLayer = append(s.vertLayer, int32(t))
		return id
	}

	if px == k+1 {
		// Whole X stage kept: truncate back to the last kept gap.
		s.vertOrig = s.vertOrig[:s.gapIDEnd[q]]
		s.vertLayer = s.vertLayer[:s.gapIDEnd[q]]
		s.y = s.y[:s.gapYEnd[q]]
	} else {
		// Truncate to the kept X prefix and rebuild layers px..k. The
		// arena's stamp is NOT advanced: kept copies keep their table
		// entries (and so their ids), discarded ones fail the array check.
		if px == 0 { // watermarks may be unrecorded on this path
			s.layerIDEnd[0], s.layerXEnd[0], s.layerIXEnd[0] = 0, 0, 0
		}
		s.vertOrig = s.vertOrig[:s.layerIDEnd[px]]
		s.vertLayer = s.vertLayer[:s.layerIDEnd[px]]
		s.x = s.x[:s.layerXEnd[px]]
		s.ix = s.ix[:s.layerIXEnd[px]]
		s.y = s.y[:0]
		q = 0
		for t := px; t <= k; t++ {
			u := tau.AUnits[t]
			if u != 0 {
				for _, e := range ix.A(u) {
					le := graph.Edge{U: int(assign(t, e.U)), V: int(assign(t, e.V)), W: e.W}
					s.x = append(s.x, le)
					if t >= 1 && t <= k-1 {
						s.ix = append(s.ix, le)
					}
				}
			}
			s.layerIDEnd[t+1] = int32(len(s.vertOrig))
			s.layerXEnd[t+1] = int32(len(s.x))
			s.layerIXEnd[t+1] = int32(len(s.ix))
		}
		s.lastXIDs = len(s.vertOrig)
		s.gapIDEnd[0] = int32(s.lastXIDs)
		s.gapYEnd[0] = 0
	}
	xIDs := s.lastXIDs

	// survives mirrors BuildIndexed's vertex filter; "has an X edge" is
	// "was assigned an id during the X stage" (ids below the stage-1a
	// watermark), which holds for kept and rebuilt layers alike.
	survives := func(t, v int) bool {
		if id := lookup(t, v); id >= 0 && int(id) < xIDs {
			return true
		}
		d := t*n + v
		if s.badMark[d] == s.badStamp {
			return false
		}
		keep := false
		switch t {
		case 0:
			keep = par.Side[v] && !par.M.IsMatched(v) && tau.AUnits[0] == 0
		case k:
			keep = !par.Side[v] && !par.M.IsMatched(v) && tau.AUnits[k] == 0
		}
		if !keep {
			s.badMark[d] = s.badStamp
		}
		return keep
	}

	yg, grouped := ix.(YGrouper)
	grouped = grouped && yg.YGroupsOK()

	for t := q; t < k; t++ {
		if grouped {
			// One classified-group lookup replaces the filtered bucket
			// scan: the group holds exactly the survivors, in bucket order.
			row, col := -1, -1
			switch {
			case tau.AUnits[t] > 0:
				row = tau.AUnits[t]
			case t == 0:
				row = 0 // free R endpoints, the first-layer τA = 0 rule
			}
			switch {
			case tau.AUnits[t+1] > 0:
				col = tau.AUnits[t+1]
			case t+1 == k:
				col = FreeLBit // free L endpoints, the last-layer rule
			}
			if row >= 0 && col >= 0 {
				for _, e := range yg.YGroup(tau.BUnits[t], row, col) {
					s.y = append(s.y, graph.Edge{U: int(assign(t, e.U)), V: int(assign(t+1, e.V)), W: e.W})
				}
			}
		} else {
			for _, e := range ix.B(tau.BUnits[t]) {
				r, lv := e.U, e.V
				if !par.Side[r] {
					r, lv = lv, r
				}
				if !survives(t, r) || !survives(t+1, lv) {
					continue
				}
				s.y = append(s.y, graph.Edge{U: int(assign(t, r)), V: int(assign(t+1, lv)), W: e.W})
			}
		}
		s.gapYEnd[t+1] = int32(len(s.y))
		s.gapIDEnd[t+1] = int32(len(s.vertOrig))
	}

	s.marksValid = true
	l.NumV = len(s.vertOrig)
	l.vertOrig, l.vertLayer = s.vertOrig, s.vertLayer
	l.X, l.Y, l.InteriorX = s.x, s.y, s.ix

	// Surface the changed-suffix descriptor for the solver-side repair. The
	// watermark entries of the kept prefix survive the rebuild (the stages
	// above only write entries past px / q), so they still name the
	// baseline's — and hence the shared — prefix lengths.
	l.Delta = DeltaInfo{Valid: true, BaseSeq: baseSeq, KeptXLayers: px, KeptYGaps: q, KeptIDs: int(s.layerIDEnd[px])}
	if px == k+1 {
		l.Delta.KeptIDs = int(s.gapIDEnd[q])
		l.Delta.KeptX = len(s.x)
		l.Delta.KeptInteriorX = len(s.ix)
		l.Delta.KeptY = int(s.gapYEnd[q])
		l.Delta.KeptLPrime = len(s.ix) + int(s.gapYEnd[q])
	} else {
		l.Delta.KeptX = int(s.layerXEnd[px])
		l.Delta.KeptInteriorX = int(s.layerIXEnd[px])
		l.Delta.KeptLPrime = int(s.layerIXEnd[px])
	}
	return l, reused, nil
}
