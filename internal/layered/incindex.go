package layered

import (
	"errors"
	"math"
	"sync/atomic"

	"repro/internal/faultinject"
	"repro/internal/graph"
)

// ErrBeginRoundBusy: BeginRound was entered while another BeginRound on the
// same index was still running (concurrent or re-entrant use, which the type
// contract forbids). The entering call performed no mutation — the dirty
// digest, counts, and matched list are whatever the running call leaves —
// so the caller can absorb the sentinel through the degradation ladder's
// reset rung (core counts it in Stats.FallbackResets and rebuilds the
// amortised context) instead of risking a silently corrupted round setup.
var ErrBeginRoundBusy = errors.New("layered: concurrent or re-entrant IncIndex.BeginRound")

// IncIndex is the amortised form of the per-(round, class) BucketIndex
// rebuild: one edge-indexed structure owned by a whole Solve run. The
// expensive parts of bucketing — the per-edge floating-point window
// arithmetic and the per-class edge rescans — depend only on the static
// edge weights and the slowly-changing matched status, so they are computed
// once (unmatched windows) or maintained by matched/unmatched deltas
// (matched windows) instead of being redone for every (round, class):
//
//   - bSlots: for every graph edge, the classes whose unmatched window
//     [u·gW, (u+1)·gW) contains its weight with u in [2, maxU] — the only
//     units a good τB entry can name (Table 1 requires τB ≥ 2g). Computed
//     once per Solve; for weights in a bounded range each edge is live in
//     only the O(log) classes within a constant factor of its weight.
//   - matched list: the current matching's edges in par.A (ascending
//     smaller endpoint) order, each carrying its per-class τA units.
//     BeginRound merge-diffs it against the round's matching, recomputing
//     window arithmetic only for edges whose matched status changed.
//   - per-round viability counts and lazily materialised buckets: the
//     bipartition is redrawn every round, so crossing status is the one
//     per-edge input that cannot be amortised; BeginRound folds it into
//     exact per-(class, unit) counts with a single integer pass over the
//     live slots, and A(u)/B(u) buckets materialise on first use by a pair.
//
// Every materialised bucket reproduces the BucketIndex edge sequence
// bit-for-bit (same content, same order), so a Solve run over an IncIndex
// returns exactly the matching the naive path returns for a fixed seed; the
// differential suite and FuzzIncrementalIndex assert this. The only
// deliberate divergences are the units the enumeration can never query:
// IncView.A(0) and IncView.B(0), IncView.B(1) are empty (BuildIndexed skips
// τA = 0 layers and Table 1 forbids τB < 2g), so bMask lacks bits 0 and 1 —
// the memoised pair enumeration sees a different cache key but computes the
// identical pair list.
//
// An IncIndex is not safe for concurrent BeginRound use; within one round,
// distinct class views may be used from distinct goroutines (all per-class
// state is class-private and the shared round state is read-only after
// BeginRound).
type IncIndex struct {
	n     int
	edges []graph.Edge
	ws    []float64
	prm   Params
	maxU  int

	// bSlots, flattened: edge i is live for classes
	// bStart[i] .. bStart[i]+bLen[i]-1 with units
	// bUnits[bOff[i] : bOff[i]+bLen[i]]. Bands are edit-friendly (PR 8):
	// a reweight abandons its old bUnits segment and appends a fresh one,
	// so bOff is not monotone after edits; bDead counts abandoned slots and
	// maybeCompactBands reclaims them once they dominate.
	bOff    []int32
	bStart  []int32
	bLen    []int32
	bUnits  []uint8
	bDead   int
	bandBuf []uint8 // scratch for bandOf
	// bAll[c][u] lists the edge indices (ascending) whose class-c unmatched
	// unit is u; the static superset the per-round B buckets filter. Edits
	// keep the ascending order (bucket order is edge-index order, the order
	// a fresh index reproduces).
	bAll [][][]int32

	// matched is the delta-maintained matched-edge list in par.A order
	// (ascending smaller endpoint; each vertex has one mate, so the order
	// is total). units[c] is the class-c τA unit; the per-class units of an
	// edge form a prefix of the class list because class weights descend.
	matched []matchedEdge
	swap    []matchedEdge // ping-pong buffer for the merge-diff

	// Per-round state, versioned by stamp (wrap clears everything).
	stamp uint32
	par   *Parametrized
	aCnt  [][]int32
	bCnt  [][]int32
	aMask []uint64
	bMask []uint64

	// busy guards BeginRound against concurrent or re-entrant entry: the
	// cheap CAS twin of the ErrDeltaStale idiom. Views stay lock-free — only
	// the round setup is exclusive.
	busy atomic.Uint32

	// Cross-round change clock (PR 7): epoch counts BeginRound calls
	// monotonically (uint64 — unlike stamp it never wraps, so comparisons
	// spanning arbitrarily many rounds stay sound), and the Chg tables
	// record, per bucket or vertex, the epoch of its last relevant change.
	// BuildDelta keeps a segment across a bipartition redraw exactly when
	// its bucket's change epoch is at or before the baseline's build epoch.
	//
	//   - aChg[c][u]: last change to the (class c, unit u) τA bucket —
	//     membership (an edge entered/left the matching or flipped crossing
	//     status), an entry's weight, or the orientation (endpoint sides) of
	//     a member. Orientation matters because kept X layers also keep the
	//     baseline's side entries (Layered.Sides' kept-prefix reuse).
	//   - yChg[c][u]: last membership or orientation change to the (class c,
	//     unit u) τB bucket, maintained from the per-edge ePrev diff.
	//   - vChg[v]: last change to vertex v's survival classification inputs
	//     (matched status, matched-edge identity/weight, or the crossing
	//     status of its matched edge) — class-independent and conservative:
	//     one bump covers every class, trading reuse for O(1) bookkeeping.
	epoch uint64
	aChg  [][]uint64
	yChg  [][]uint64
	vChg  []uint64
	// ePrev[i] is edge i's previous-round τB-relevant state: bit 0 set when
	// the edge was live (crossing and unmatched), bit 1 its U endpoint's
	// side. A liveness or (live) orientation flip bumps yChg for every
	// (class, unit) slot of the edge.
	ePrev []uint8

	// Round-scoped dirty-class gate: dirty[c] is true when class c's τ
	// windows contain at least one crossing edge this round. Clean classes
	// skip the per-(class, unit) folding entirely — their counts are
	// logically zero (cntStamp[c] lags the round stamp) and their masks are
	// the empty-window constants — and provably enumerate zero surviving
	// pairs, so core.Runner skips them wholesale (Stats.ClassesSkippedDirty).
	dirty    []bool
	dirtyCnt int
	dirtySum uint64  // digest over (stamp, dirty[]) sealed by BeginRound
	dDiff    []int32 // class-range diff array for the dirty marking
	crossB   []int32 // crossing unmatched live edge indices, one round pass
	cntStamp []uint32

	// Grouped Y tables (YGrouper): per (class, τB unit), the bucket's
	// crossing edges partitioned by the survival classification of their
	// endpoints, lazily materialised per round like the probe rows — except
	// that a partition whose inputs are unchanged since it was last built
	// (ygEpoch at or after the bucket's effective change epoch, see
	// yEffEpoch) is revalidated across the round boundary instead of
	// rebuilt: the PR 7 keying of the survival tables by crossing-status
	// deltas rather than by round. Since PR 9 the spans live in a flat
	// open-addressed table (ygTab) instead of a map[uint16]ygSpan — the
	// YGroup lookup on the build hot path pays two array reads instead of
	// map hashing, and the table's key set doubles as the word-parallel
	// source for the survival probe rows (rowsFromSpans).
	ygStamp [][]uint32
	ygEpoch [][]uint64
	ygFlat  [][][]graph.Edge
	ygTabs  [][]ygTab

	// ysStamp/ysEff memoise yEffEpoch per (class, unit) within a round: the
	// max over the bucket's yChg and its in-window edges' endpoint vChg.
	ysStamp [][]uint32
	ysEff   [][]uint64

	// Lazily materialised buckets and their content digests; the digests
	// have their own stamps because they are computed only when a PairKey
	// first reads them (cache-disabled runs never pay the digesting).
	aStamp  [][]uint32
	bStamp  [][]uint32
	aBuf    [][][]graph.Edge
	bBuf    [][][]graph.Edge
	adStamp [][]uint32
	bdStamp [][]uint32
	aDig    [][]uint64
	bDig    [][]uint64

	// Per-class probe state: the τA unit of every matched crossing vertex
	// (a vertex has at most one matched edge, hence at most one unit).
	probeStamp []uint32
	vStamp     [][]uint32
	vUnit      [][]uint8

	// Probe rows, per (class, τB unit): pRows[c][u][ra] is a bitset over
	// the τA units la such that some unit-u unmatched crossing edge runs
	// from an R endpoint of matched unit ra to an L endpoint of matched
	// unit la. Row 0 collects edges whose R endpoint is free (the τA = 0
	// first-layer rule) and bit freeLBit the ones whose L endpoint is free
	// (the last-layer rule), so one AND answers "would layer t contribute a
	// Y edge" for any pair.
	prStamp [][]uint32
	pRows   [][][]uint64

	views []IncView
}

// freeLBit marks "L endpoint free" in a probe row; unit bits occupy
// 0..maxU, so the probe requires maxU < freeLBit and falls back to
// building every pair at finer discretisations.
const freeLBit = 63

type matchedEdge struct {
	e     graph.Edge // canonical U < V, weight from the matching
	units []uint8    // units[c] = class-c τA unit; live classes are a prefix
	// cross and sideU are the edge's crossing status and U-endpoint side as
	// of the last BeginRound — the previous-round state the cross-round
	// change clock diffs against (a crossing flip changes A-bucket
	// membership and endpoint classification; an orientation flip changes
	// the kept side entries). Fresh entries start false and are set by the
	// crossing pass of the round that admits them.
	cross bool
	sideU bool
}

// maxIncUnit is the largest τ unit the index's compact storage can hold:
// units live in uint8 slots (bUnits, matchedEdge.units, vUnit, the PairKey
// bytes). Discretisations finer than 1/255 overflow them, so callers gate
// on CanIndexIncrementally and fall back to the naive BucketIndex path.
const maxIncUnit = 255

// CanIndexIncrementally reports whether the discretisation fits the
// incremental index's compact unit storage. The masks and the survival
// probe have their own, tighter fallbacks (64 and 63 units); this bound is
// the hard one past which bucket contents themselves would silently wrap.
func CanIndexIncrementally(prm Params) bool {
	maxU, _ := prm.WithDefaults().Units()
	return maxU <= maxIncUnit
}

// NewIncIndex builds the static half of the index for the given class
// weights (descending, as ClassWeights returns them) and discretisation,
// which must satisfy CanIndexIncrementally (NewIncIndex panics otherwise:
// a wrapped unit would not fail loudly, it would return wrong buckets).
// The edge slice is aliased and must not change during the index's life
// except through the edit protocol (BeginEdits/Note*/EndEdits, which
// re-alias the post-edit slice); the reduction itself never mutates the
// graph mid-Solve.
func NewIncIndex(n int, edges []graph.Edge, ws []float64, prm Params) *IncIndex {
	prm = prm.WithDefaults()
	maxU, _ := prm.Units()
	if maxU > maxIncUnit {
		panic("layered: granularity too fine for IncIndex (gate on CanIndexIncrementally)")
	}
	x := &IncIndex{n: n, edges: edges, ws: ws, prm: prm, maxU: maxU}

	x.bOff = make([]int32, len(edges))
	x.bStart = make([]int32, len(edges))
	x.bLen = make([]int32, len(edges))
	x.bAll = make([][][]int32, len(ws))
	for c := range x.bAll {
		x.bAll[c] = make([][]int32, maxU+1)
	}
	for i, e := range edges {
		start, units := x.bandOf(e.W)
		x.bOff[i] = int32(len(x.bUnits))
		x.bStart[i] = start
		x.bLen[i] = int32(len(units))
		x.bUnits = append(x.bUnits, units...)
		for k, u := range units {
			x.bAll[int(start)+k][u] = append(x.bAll[int(start)+k][u], int32(i))
		}
	}

	x.aCnt = make([][]int32, len(ws))
	x.bCnt = make([][]int32, len(ws))
	x.aMask = make([]uint64, len(ws))
	x.bMask = make([]uint64, len(ws))
	x.aStamp = make([][]uint32, len(ws))
	x.bStamp = make([][]uint32, len(ws))
	x.aBuf = make([][][]graph.Edge, len(ws))
	x.bBuf = make([][][]graph.Edge, len(ws))
	x.adStamp = make([][]uint32, len(ws))
	x.bdStamp = make([][]uint32, len(ws))
	x.aDig = make([][]uint64, len(ws))
	x.bDig = make([][]uint64, len(ws))
	x.probeStamp = make([]uint32, len(ws))
	x.vStamp = make([][]uint32, len(ws))
	x.vUnit = make([][]uint8, len(ws))
	x.prStamp = make([][]uint32, len(ws))
	x.pRows = make([][][]uint64, len(ws))
	x.dirty = make([]bool, len(ws))
	x.dDiff = make([]int32, len(ws)+1)
	x.cntStamp = make([]uint32, len(ws))
	x.ygStamp = make([][]uint32, len(ws))
	x.ygEpoch = make([][]uint64, len(ws))
	x.ygFlat = make([][][]graph.Edge, len(ws))
	x.ygTabs = make([][]ygTab, len(ws))
	x.aChg = make([][]uint64, len(ws))
	x.yChg = make([][]uint64, len(ws))
	x.ysStamp = make([][]uint32, len(ws))
	x.ysEff = make([][]uint64, len(ws))
	x.vChg = make([]uint64, n)
	x.ePrev = make([]uint8, len(edges))
	for c := range ws {
		x.aCnt[c] = make([]int32, maxU+1)
		x.bCnt[c] = make([]int32, maxU+1)
		x.aStamp[c] = make([]uint32, maxU+1)
		x.bStamp[c] = make([]uint32, maxU+1)
		x.aBuf[c] = make([][]graph.Edge, maxU+1)
		x.bBuf[c] = make([][]graph.Edge, maxU+1)
		x.adStamp[c] = make([]uint32, maxU+1)
		x.bdStamp[c] = make([]uint32, maxU+1)
		x.aDig[c] = make([]uint64, maxU+1)
		x.bDig[c] = make([]uint64, maxU+1)
		x.vStamp[c] = make([]uint32, n)
		x.vUnit[c] = make([]uint8, n)
		x.prStamp[c] = make([]uint32, maxU+1)
		x.pRows[c] = make([][]uint64, maxU+1)
		x.ygStamp[c] = make([]uint32, maxU+1)
		x.ygEpoch[c] = make([]uint64, maxU+1)
		x.ygFlat[c] = make([][]graph.Edge, maxU+1)
		x.ygTabs[c] = make([]ygTab, maxU+1)
		x.aChg[c] = make([]uint64, maxU+1)
		x.yChg[c] = make([]uint64, maxU+1)
		x.ysStamp[c] = make([]uint32, maxU+1)
		x.ysEff[c] = make([]uint64, maxU+1)
	}
	x.views = make([]IncView, len(ws))
	for c := range x.views {
		x.views[c] = IncView{ix: x, c: c}
	}
	return x
}

// Classes returns the number of class weights the index covers.
func (x *IncIndex) Classes() int { return len(x.ws) }

// aUnitsOf computes the per-class τA units of a matched edge of weight w:
// ceil(w/(gW)) is nondecreasing as W descends, so the live classes (unit in
// [1, maxU]; unit ≥ 1 always holds for positive weights) are a prefix.
func (x *IncIndex) aUnitsOf(w graph.Weight, buf []uint8) []uint8 {
	buf = buf[:0]
	if w <= 0 {
		// Non-positive matched weights land in unit ≤ 0 for every class;
		// BuildIndexed skips τA = 0 layers, so they are dead everywhere.
		return buf
	}
	for _, cw := range x.ws {
		u := int(math.Ceil(float64(w) / (x.prm.Granularity * cw)))
		if u > x.maxU {
			break
		}
		buf = append(buf, uint8(u))
	}
	return buf
}

// bandOf computes the contiguous live-class band of an unmatched edge of
// weight w: floor(w/(gW)) is nondecreasing as W descends, so the classes
// whose unmatched window holds the weight with unit in [2, maxU] form one
// run. start is the first live class (-1 for an empty band); units aliases
// the index's scratch buffer and is valid until the next bandOf call.
func (x *IncIndex) bandOf(w graph.Weight) (start int32, units []uint8) {
	x.bandBuf = x.bandBuf[:0]
	start = -1
	for c, cw := range x.ws {
		u := int(math.Floor(float64(w) / (x.prm.Granularity * cw)))
		if u < 2 {
			continue
		}
		if u > x.maxU {
			break
		}
		if start < 0 {
			start = int32(c)
		}
		x.bandBuf = append(x.bandBuf, uint8(u))
	}
	return start, x.bandBuf
}

// BeginRound points the index at the round's parametrization: it
// merge-diffs the matched list against par.M (window arithmetic only for
// edges whose matched status or weight changed), then folds the fresh
// bipartition into exact per-(class, unit) viability counts and masks. All
// bucket materialisations and probe sets of the previous round are
// invalidated by a stamp bump; alongside, the cross-round change clock
// (epoch, aChg/yChg/vChg) records which buckets actually changed, so the
// grouped Y tables and BuildDelta can survive the redraw where nothing did.
//
// A non-nil error means the call performed no round setup: ErrBeginRoundBusy
// when another BeginRound was still running on the index (the misuse the
// type contract forbids — returned as a sentinel rather than silently
// corrupting the dirty digest, so core's reset rung can absorb it).
func (x *IncIndex) BeginRound(par *Parametrized) error {
	if !x.busy.CompareAndSwap(0, 1) {
		return ErrBeginRoundBusy
	}
	defer x.busy.Store(0)
	x.par = par
	x.stamp++
	x.epoch++
	if x.stamp == 0 { // wrapped: stale stamps could collide
		for c := range x.ws {
			clear(x.aStamp[c])
			clear(x.bStamp[c])
			clear(x.adStamp[c])
			clear(x.bdStamp[c])
			clear(x.vStamp[c])
			clear(x.prStamp[c])
			clear(x.ygStamp[c])
			clear(x.ysStamp[c])
		}
		clear(x.probeStamp)
		clear(x.cntStamp)
		x.stamp = 1
	}

	// Merge-diff the sorted matched list against par.M's edges (ascending
	// smaller endpoint, the m.Edges() order): unchanged edges carry their
	// unit prefixes over, changed ones recompute. Every entry that leaves
	// the list — skipped past, replaced, or trailing — is recorded on the
	// change clock before its storage is reused (dropOld reads the unit
	// prefix the departing entry still holds).
	next := x.swap[:0]
	old := x.matched
	oi := 0
	for u := 0; u < par.M.N(); u++ {
		v := par.M.Mate(u)
		if v <= u {
			continue
		}
		w := par.M.EdgeWeightAt(u)
		for oi < len(old) && old[oi].e.U < u {
			x.dropOld(&old[oi]) // dropped from the matching
			oi++
		}
		if oi < len(old) && old[oi].e.U == u && old[oi].e.V == v && old[oi].e.W == w {
			next = append(next, old[oi])
			oi++
			continue
		}
		var units []uint8
		if oi < len(old) && old[oi].e.U == u {
			x.dropOld(&old[oi])
			units = old[oi].units // reuse the changed entry's storage
			oi++
		}
		x.vChg[u] = x.epoch
		x.vChg[v] = x.epoch
		next = append(next, matchedEdge{
			e:     graph.Edge{U: u, V: v, W: w},
			units: x.aUnitsOf(w, units),
		})
	}
	for ; oi < len(old); oi++ {
		x.dropOld(&old[oi]) // trailing entries: matching shrank at the top
	}
	x.matched, x.swap = next, old[:0]

	// Crossing-status diff over the matched list: a crossing flip moves the
	// edge in or out of every A bucket of its unit prefix and flips its
	// endpoints' survival classification; an orientation flip (crossing in
	// both rounds, sides swapped) keeps membership and classification but
	// invalidates the kept side entries, so it charges the buckets only.
	// Fresh entries enter with cross = false, so their first crossing round
	// is recorded as a flip here.
	for mi := range x.matched {
		me := &x.matched[mi]
		crossNow := par.Side[me.e.U] != par.Side[me.e.V]
		sideUNow := par.Side[me.e.U]
		if len(me.units) > 0 {
			switch {
			case crossNow != me.cross:
				for c, uu := range me.units {
					x.aChg[c][uu] = x.epoch
				}
				x.vChg[me.e.U] = x.epoch
				x.vChg[me.e.V] = x.epoch
			case crossNow && sideUNow != me.sideU:
				for c, uu := range me.units {
					x.aChg[c][uu] = x.epoch
				}
			}
		}
		me.cross, me.sideU = crossNow, sideUNow
	}

	// Dirty marking: one crossing pass over the edges, charging each
	// crossing edge's contiguous live-class band (and each crossing matched
	// edge's unit prefix) to a class-range diff array. Classes no crossing
	// edge touches are clean and skip all per-(class, unit) work below.
	// The same pass diffs each in-window edge's liveness and orientation
	// against its previous-round state (ePrev) and charges changes to the
	// τB change clock — the B-side half of the cross-round keying.
	clear(x.dDiff)
	x.crossB = x.crossB[:0]
	for i, e := range x.edges {
		if x.bLen[i] == 0 {
			continue // in no class's τB window
		}
		live := par.Side[e.U] != par.Side[e.V] && !par.M.Has(e.U, e.V)
		var now uint8
		if live {
			now = 1
			if par.Side[e.U] {
				now |= 2
			}
		}
		if prev := x.ePrev[i]; prev&1 != now&1 || (now&1 != 0 && prev&2 != now&2) {
			for k := int32(0); k < x.bLen[i]; k++ {
				c := int(x.bStart[i]) + int(k)
				x.yChg[c][x.bUnits[x.bOff[i]+k]] = x.epoch
			}
			x.ePrev[i] = now
		}
		if !live {
			continue
		}
		x.crossB = append(x.crossB, int32(i))
		x.dDiff[x.bStart[i]]++
		x.dDiff[int(x.bStart[i])+int(x.bLen[i])]--
	}
	for mi := range x.matched {
		me := &x.matched[mi]
		if len(me.units) == 0 || par.Side[me.e.U] == par.Side[me.e.V] {
			continue
		}
		x.dDiff[0]++
		x.dDiff[len(me.units)]--
	}
	x.dirtyCnt = 0
	run := int32(0)
	for c := range x.ws {
		run += x.dDiff[c]
		x.dirty[c] = run > 0
		if x.dirty[c] {
			x.dirtyCnt++
			clear(x.aCnt[c])
			clear(x.bCnt[c])
			x.cntStamp[c] = x.stamp
		}
	}

	// Fold the crossing edges into exact per-(class, unit) counts. Every
	// increment lands in a dirty class by construction (a crossing in-window
	// edge is what dirties a class), so clean classes keep their stale
	// buffers — the cntStamp gate makes ACount/BCount read them as zero.
	for _, ei := range x.crossB {
		i := int(ei)
		for k := int32(0); k < x.bLen[i]; k++ {
			c := int(x.bStart[i]) + int(k)
			x.bCnt[c][x.bUnits[x.bOff[i]+k]]++
		}
	}
	for mi := range x.matched {
		me := &x.matched[mi]
		if par.Side[me.e.U] == par.Side[me.e.V] {
			continue
		}
		for c, u := range me.units {
			x.aCnt[c][u]++
		}
	}

	for c := range x.ws {
		if !x.dirty[c] {
			x.aMask[c], x.bMask[c] = 1, 0 // empty windows: only the τA = 0 free marker
			continue
		}
		aMask, bMask := uint64(1), uint64(0)
		if x.maxU < 64 {
			for u := 1; u <= x.maxU; u++ {
				if x.aCnt[c][u] > 0 {
					aMask |= 1 << uint(u)
				}
				if x.bCnt[c][u] > 0 {
					bMask |= 1 << uint(u)
				}
			}
		}
		x.aMask[c], x.bMask[c] = aMask, bMask
	}

	// Seal the dirty bitmap under a digest: DirtyGateOK re-derives it, so
	// any corruption of the bitmap between here and the skip decisions is
	// detected and the round degrades to a full sweep instead of skipping a
	// class whose windows do hold crossing edges. The masks above were
	// computed before the seal, so a post-seal flip can only change skip
	// decisions, never bucket contents.
	x.dirtySum = x.dirtyDigest()

	// Hazard site (chaos testing): flip the first dirty class's bit to
	// clean — the dangerous direction, a skip that would silently lose that
	// class's augmentations if the digest did not catch it. With no dirty
	// class, flip class 0 to dirty instead (running a clean class is
	// provably harmless, but the digest must still detect the corruption).
	if faultinject.Fire(faultinject.DirtyGate) && len(x.dirty) > 0 {
		flip := 0
		for c, d := range x.dirty {
			if d {
				flip = c
				break
			}
		}
		x.dirty[flip] = !x.dirty[flip]
	}
	return nil
}

// dropOld records a matched-list entry's departure on the change clock: its
// endpoints' classification changes (matched → free, or rematched by the
// replacing entry), and — when the departing edge was crossing — every A
// bucket of its unit prefix loses a member. Must run before the entry's
// units storage is reused by a replacement (aUnitsOf overwrites it in
// place).
func (x *IncIndex) dropOld(me *matchedEdge) {
	if me.cross {
		for c, u := range me.units {
			x.aChg[c][u] = x.epoch
		}
	}
	x.vChg[me.e.U] = x.epoch
	x.vChg[me.e.V] = x.epoch
}

// dirtyDigest hashes the round stamp and the dirty bitmap (FNV-1a).
func (x *IncIndex) dirtyDigest() uint64 {
	h := uint64(14695981039346656037)
	h = (h ^ uint64(x.stamp)) * 1099511628211
	for _, d := range x.dirty {
		b := uint64(0)
		if d {
			b = 1
		}
		h = (h ^ b) * 1099511628211
	}
	return h
}

// DirtyGateOK re-derives the dirty-bitmap digest sealed by BeginRound and
// compares it: false means the bitmap was corrupted after round setup (or
// BeginRound never ran this round) and no skip decision may be trusted —
// the caller must run the full class sweep, which is always safe (a clean
// class enumerates zero pairs; see RoundDirty). core.Runner checks it once
// per round and counts distrusted rounds in Stats.FallbackSweeps.
func (x *IncIndex) DirtyGateOK() bool { return x.dirtyDigest() == x.dirtySum }

// RoundDirty reports whether class c's τ windows contain any crossing edge
// in the current round. A clean class provably enumerates zero surviving
// (τA, τB) pairs — every good pair needs at least one populated τB window
// (unit ≥ 2), and a clean class has none — so callers may skip its per-class
// sweep wholesale; core.Runner counts those skips in
// Stats.ClassesSkippedDirty, and the dirty-gate property test cross-checks
// the set against naive BucketIndex rebuilds.
func (x *IncIndex) RoundDirty(c int) bool { return x.dirty[c] }

// DirtyClasses returns the number of dirty classes in the current round.
func (x *IncIndex) DirtyClasses() int { return x.dirtyCnt }

// View returns the class-c bucket view for the current round. Views from
// distinct classes may be used concurrently; a single view may not.
func (x *IncIndex) View(c int) *IncView { return &x.views[c] }

// IncView adapts one class of an IncIndex to the Index interface and adds
// the amortised extras: the survival probe and the content digests the
// cross-class solve cache keys on.
type IncView struct {
	ix *IncIndex
	c  int
}

// Parametrization returns the current round's parametrized graph.
func (v *IncView) Parametrization() *Parametrized { return v.ix.par }

// ClassWeight returns the class weight W of this view.
func (v *IncView) ClassWeight() float64 { return v.ix.ws[v.c] }

// Config returns the discretisation parameters.
func (v *IncView) Config() Params { return v.ix.prm }

// A returns the matched crossing edges of the unit-u τA window, in par.A
// order, materialising (and digesting) the bucket on first use this round.
func (v *IncView) A(u int) []graph.Edge {
	if u < 1 || u > v.ix.maxU {
		return nil
	}
	return v.ix.aLive(v.c, u)
}

func (x *IncIndex) aLive(c, u int) []graph.Edge {
	if x.aStamp[c][u] != x.stamp {
		x.aStamp[c][u] = x.stamp
		buf := x.aBuf[c][u][:0]
		for mi := range x.matched {
			me := &x.matched[mi]
			if c >= len(me.units) || int(me.units[c]) != u {
				continue
			}
			if x.par.Side[me.e.U] == x.par.Side[me.e.V] {
				continue
			}
			buf = append(buf, me.e)
		}
		x.aBuf[c][u] = buf
	}
	return x.aBuf[c][u]
}

// aDigest returns the content digest of the unit-u τA bucket, digesting the
// materialised bucket on first use this round (only cache-keyed runs reach
// here, so cache-disabled runs never pay the hashing).
func (x *IncIndex) aDigest(c, u int) uint64 {
	if x.adStamp[c][u] != x.stamp {
		x.adStamp[c][u] = x.stamp
		h := uint64(fnvOffset)
		for _, e := range x.aLive(c, u) {
			h = digestEdge(h, e)
		}
		x.aDig[c][u] = h
	}
	return x.aDig[c][u]
}

// B returns the unmatched crossing edges of the unit-u τB window, in par.B
// order, materialising (and digesting) the bucket on first use this round.
func (v *IncView) B(u int) []graph.Edge {
	if u < 2 || u > v.ix.maxU {
		return nil
	}
	return v.ix.bLive(v.c, u)
}

func (x *IncIndex) bLive(c, u int) []graph.Edge {
	if x.bStamp[c][u] != x.stamp {
		x.bStamp[c][u] = x.stamp
		buf := x.bBuf[c][u][:0]
		for _, ei := range x.bAll[c][u] {
			e := x.edges[ei]
			if x.par.Side[e.U] == x.par.Side[e.V] || x.par.M.Has(e.U, e.V) {
				continue
			}
			buf = append(buf, e)
		}
		x.bBuf[c][u] = buf
	}
	return x.bBuf[c][u]
}

// bDigest is aDigest for the unit-u τB bucket.
func (x *IncIndex) bDigest(c, u int) uint64 {
	if x.bdStamp[c][u] != x.stamp {
		x.bdStamp[c][u] = x.stamp
		h := uint64(fnvOffset)
		for _, e := range x.bLive(c, u) {
			h = digestEdge(h, e)
		}
		x.bDig[c][u] = h
	}
	return x.bDig[c][u]
}

// ACount returns the exact crossing-filtered count of the unit-u τA window.
// Clean classes (no crossing edge in any window) skip the round's count
// folding; the stamp gate reads their untouched buffers as zero.
func (v *IncView) ACount(u int) int {
	if u < 1 || u > v.ix.maxU || v.ix.cntStamp[v.c] != v.ix.stamp {
		return 0
	}
	return int(v.ix.aCnt[v.c][u])
}

// BCount returns the exact crossing-filtered count of the unit-u τB window.
func (v *IncView) BCount(u int) int {
	if u < 2 || u > v.ix.maxU || v.ix.cntStamp[v.c] != v.ix.stamp {
		return 0
	}
	return int(v.ix.bCnt[v.c][u])
}

// Masks returns the populated-unit bitmasks (see BucketIndex.Masks). The
// bMask omits bits 0 and 1, which no good τB entry can name.
func (v *IncView) Masks() (aMask, bMask uint64, ok bool) {
	if v.ix.maxU+1 > 64 {
		return 0, 0, false
	}
	return v.ix.aMask[v.c], v.ix.bMask[v.c], true
}

// ensureProbe materialises the class's survival set: for every matched
// crossing vertex, the τA unit of its matched edge (at most one per vertex).
func (x *IncIndex) ensureProbe(c int) {
	if x.probeStamp[c] == x.stamp {
		return
	}
	x.probeStamp[c] = x.stamp
	for mi := range x.matched {
		me := &x.matched[mi]
		if c >= len(me.units) {
			continue
		}
		if x.par.Side[me.e.U] == x.par.Side[me.e.V] {
			continue
		}
		u := me.units[c]
		x.vStamp[c][me.e.U] = x.stamp
		x.vUnit[c][me.e.U] = u
		x.vStamp[c][me.e.V] = x.stamp
		x.vUnit[c][me.e.V] = u
	}
}

// probeRows materialises the class's unit-u probe table for the round: one
// pass over the unit-u unmatched bucket classifying each edge by the
// matched units (or freeness) of its R and L endpoints. The table encodes
// exactly BuildIndexed's survives() predicate — a Y edge of a pair with
// τA = (…, ua at layer t, ub at layer t+1, …) survives iff its R endpoint
// carries a crossing matched edge of unit ua (or is free with ua = 0 in the
// first layer) and symmetrically for L — so a single bit test per layer
// answers whether any unit-u edge survives.
func (x *IncIndex) probeRows(c, u int) []uint64 {
	if x.prStamp[c][u] == x.stamp {
		return x.pRows[c][u]
	}
	x.prStamp[c][u] = x.stamp
	x.ensureProbe(c)
	rows := x.pRows[c][u]
	if rows == nil {
		rows = make([]uint64, x.maxU+1)
		x.pRows[c][u] = rows
	} else {
		clear(rows)
	}
	for _, e := range x.bLive(c, u) {
		// classifyY is the one copy of the endpoint survival rule, shared
		// with the grouped Y tables so the probe and YGroup cannot drift.
		key, _, ok := x.classifyY(c, e)
		if !ok {
			continue // an endpoint matched off the bipartition: dead
		}
		rows[key>>8] |= 1 << uint(key&0xff)
	}
	return rows
}

// ProbeY reports whether the pair's layered graph would contain at least
// one Y edge — the exact condition under which classAugmentations consults
// it (an empty Y yields no augmenting structure and the build is skipped).
// The probe applies the same window and vertex filters as BuildIndexed but
// shares the per-(class, unit) survival tables across every pair of the
// class, so a doomed pair costs O(layers) bit tests instead of a full
// build. At discretisations too fine for the bit tables (maxU ≥ 63) the
// probe conservatively keeps every pair.
func (v *IncView) ProbeY(tau TauPair) bool {
	x, c := v.ix, v.c
	if x.maxU >= freeLBit {
		return true
	}
	k := tau.K()
	for t := 0; t < k; t++ {
		rows := x.probeRows(c, tau.BUnits[t])
		ua, ub := tau.AUnits[t], tau.AUnits[t+1]
		var row uint64
		if ua > 0 || t == 0 {
			row = rows[ua]
		}
		if row == 0 {
			continue
		}
		switch {
		case ub > 0:
			if row&(1<<uint(ub)) != 0 {
				return true
			}
		case t+1 == k:
			if row&(1<<freeLBit) != 0 {
				return true
			}
		}
	}
	return false
}

// LayerRow returns the probe row of the unit-b unmatched window at matched-
// unit row a (SurvivalOracle interface): the same per-(class, unit) crossing
// tables ProbeY consults, exposed so the pair enumeration can prune dead
// subtrees during generation. Callers must gate on Oracle (the rows exist
// only while maxU < FreeLBit).
func (v *IncView) LayerRow(bUnit, aUnit int) uint64 {
	return v.ix.probeRows(v.c, bUnit)[aUnit]
}

// Oracle returns the view as a SurvivalOracle for probe-guided enumeration,
// or ok = false at discretisations too fine for the bit tables (maxU ≥ 63,
// where ProbeY likewise degrades to keeping every pair).
func (v *IncView) Oracle() (SurvivalOracle, bool) {
	if v.ix.maxU >= freeLBit {
		return nil, false
	}
	return v, true
}

// ygSpan locates one survival group inside a flattened unit bucket:
// flat[off : off+n] holds the group's edges; fill is the materialisation
// cursor and equals n once the table is built.
type ygSpan struct{ off, n, fill int32 }

// ygTab is a flat open-addressed hash table from packed (row, col)
// survival keys to ygSpan — the PR 9 replacement for map[uint16]ygSpan on
// the YGroup hot path. keys holds key+1 (0 = empty, so reset is a memclr);
// spans is the parallel value array. Linear probing over a power-of-two
// slot count; the key universe is bounded (row ≤ maxU < FreeLBit, col ≤
// FreeLBit, so < 64·64 distinct keys), which keeps even a saturated table
// small and the load factor capped by grow().
type ygTab struct {
	keys  []uint32
	spans []ygSpan
	used  int
}

// ygHash spreads a packed key over the table: Fibonacci multiplicative
// hashing, high bits taken by the caller's mask via >> is unnecessary —
// the multiplier is odd so the low bits are already a bijection, and
// linear probing tolerates the residual clustering.
func ygHash(key uint16) uint32 { return uint32(key) * 0x9E3779B1 }

// reset clears the table in place, growing the slot array to hold at
// least hint entries below a ½ load factor. The hint is capped at the key
// universe (64·64): a bucket can hold far more edges than there are
// distinct classifications, and slots beyond the universe can never fill.
func (t *ygTab) reset(hint int) {
	if hint > 64*64 {
		hint = 64 * 64
	}
	want := 16
	for want < 2*hint {
		want <<= 1
	}
	if cap(t.keys) >= want {
		t.keys = t.keys[:cap(t.keys)]
		t.spans = t.spans[:cap(t.keys)]
		clear(t.keys)
		clear(t.spans)
	} else {
		t.keys = make([]uint32, want)
		t.spans = make([]ygSpan, want)
	}
	t.used = 0
}

// ref returns the span slot for key, inserting an empty one if absent.
func (t *ygTab) ref(key uint16) *ygSpan {
	if 2*(t.used+1) > len(t.keys) {
		t.grow()
	}
	mask := uint32(len(t.keys) - 1)
	for i := ygHash(key) & mask; ; i = (i + 1) & mask {
		switch t.keys[i] {
		case uint32(key) + 1:
			return &t.spans[i]
		case 0:
			t.keys[i] = uint32(key) + 1
			t.used++
			return &t.spans[i]
		}
	}
}

// get returns the span for key, or ok = false.
func (t *ygTab) get(key uint16) (ygSpan, bool) {
	if len(t.keys) == 0 {
		return ygSpan{}, false
	}
	mask := uint32(len(t.keys) - 1)
	for i := ygHash(key) & mask; ; i = (i + 1) & mask {
		switch t.keys[i] {
		case uint32(key) + 1:
			return t.spans[i], true
		case 0:
			return ygSpan{}, false
		}
	}
}

// grow doubles the slot array and rehashes the occupied slots.
func (t *ygTab) grow() {
	oldK, oldS := t.keys, t.spans
	want := 2 * len(oldK)
	if want < 16 {
		want = 16
	}
	t.keys = make([]uint32, want)
	t.spans = make([]ygSpan, want)
	mask := uint32(want - 1)
	for i, k := range oldK {
		if k == 0 {
			continue
		}
		for j := ygHash(uint16(k-1)) & mask; ; j = (j + 1) & mask {
			if t.keys[j] == 0 {
				t.keys[j] = k
				t.spans[j] = oldS[i]
				break
			}
		}
	}
}

// ygKey packs a (row, col) survival classification; rows and cols fit a
// byte (units ≤ maxIncUnit and the FreeLBit marker).
func ygKey(row, col int) uint16 { return uint16(row)<<8 | uint16(col) }

// classifyY orients a crossing unmatched edge R→L and classifies it by the
// matched units (or freeness) of its endpoints — the single copy of the
// endpoint survival rule, consumed bitwise by probeRows and as edge lists
// by the grouped Y tables. ok is false for dead edges (an endpoint matched
// off the bipartition survives in no layer).
func (x *IncIndex) classifyY(c int, e graph.Edge) (key uint16, re graph.Edge, ok bool) {
	r, l := e.U, e.V
	if !x.par.Side[r] {
		r, l = l, r
	}
	var row, col int
	switch {
	case x.vStamp[c][r] == x.stamp:
		row = int(x.vUnit[c][r]) // matched crossing, unit ≥ 1
	case !x.par.M.IsMatched(r):
		row = 0 // free: the first-layer τA = 0 rule
	default:
		return 0, re, false
	}
	switch {
	case x.vStamp[c][l] == x.stamp:
		col = int(x.vUnit[c][l])
	case !x.par.M.IsMatched(l):
		col = freeLBit // free: the last-layer τA = 0 rule
	default:
		return 0, re, false
	}
	return ygKey(row, col), graph.Edge{U: r, V: l, W: e.W}, true
}

// yEffEpoch returns the epoch of the last change relevant to the (c, u)
// grouped Y partition: the bucket's own membership/orientation epoch joined
// with the classification epochs of every in-window edge's endpoints. The
// scan runs over the static bAll superset, so it is conservative — a dead
// edge's endpoint can invalidate a partition it does not participate in —
// which errs toward rebuilding, never toward stale reuse. Memoised per
// (round, class, unit); cost is one pass over the in-window edge list.
func (x *IncIndex) yEffEpoch(c, u int) uint64 {
	if x.ysStamp[c][u] == x.stamp {
		return x.ysEff[c][u]
	}
	x.ysStamp[c][u] = x.stamp
	eff := x.yChg[c][u]
	for _, ei := range x.bAll[c][u] {
		e := x.edges[ei]
		if v := x.vChg[e.U]; v > eff {
			eff = v
		}
		if v := x.vChg[e.V]; v > eff {
			eff = v
		}
	}
	x.ysEff[c][u] = eff
	return eff
}

// RoundEpoch returns the index's BeginRound count — the round clock the
// cross-round delta chain keys on (RoundChainer interface). Zero means
// BeginRound has never run.
func (v *IncView) RoundEpoch() uint64 { return v.ix.epoch }

// AStableSince reports whether this class's unit-u τA bucket — membership,
// entry weights, and member orientation — is unchanged since the given
// epoch (RoundChainer interface): a kept X layer of a build from that epoch
// is byte-identical to what a fresh build would emit now, side entries
// included.
func (v *IncView) AStableSince(u int, epoch uint64) bool {
	if u < 1 || u > v.ix.maxU {
		return false
	}
	return v.ix.aChg[v.c][u] <= epoch
}

// YStableSince reports whether this class's unit-u grouped Y partition
// inputs — τB bucket membership and orientation plus every in-window
// endpoint's survival classification — are unchanged since the given epoch
// (RoundChainer interface).
func (v *IncView) YStableSince(u int, epoch uint64) bool {
	if u < 2 || u > v.ix.maxU {
		return false
	}
	return v.ix.yEffEpoch(v.c, u) <= epoch
}

// ensureYGroups materialises the class's unit-u survival partition for the
// round: the unit-u crossing bucket, dead edges dropped, survivors grouped
// by (row, col) classification with bucket order preserved inside each
// group. Cost is two passes over the bucket, paid once per (class, unit) —
// and, since PR 7, not even per round: a partition whose inputs are
// unchanged since it was built (yEffEpoch at or before its ygEpoch) is
// revalidated across the BeginRound redraw instead of rebuilt, keyed by the
// crossing-status delta clock rather than the round stamp.
func (x *IncIndex) ensureYGroups(c, u int) (*ygTab, []graph.Edge) {
	tab := &x.ygTabs[c][u]
	if x.ygStamp[c][u] == x.stamp {
		return tab, x.ygFlat[c][u]
	}
	if tab.keys != nil && x.ygEpoch[c][u] > 0 && x.yEffEpoch(c, u) <= x.ygEpoch[c][u] {
		// Cross-round reuse: nothing the partition depends on changed since
		// it was last (re)built, so last round's grouping is this round's,
		// bit for bit. The probe rows ride along: the retained table's key
		// set rebuilds them word-parallel without touching the bucket.
		x.ygStamp[c][u] = x.stamp
		x.ygEpoch[c][u] = x.epoch
		x.rowsFromSpans(c, u, tab)
		return tab, x.ygFlat[c][u]
	}
	x.ygStamp[c][u] = x.stamp
	x.ygEpoch[c][u] = x.epoch
	x.ensureProbe(c)
	bucket := x.bLive(c, u)
	tab.reset(len(bucket))
	flat := x.ygFlat[c][u]
	if cap(flat) < len(bucket) {
		flat = make([]graph.Edge, len(bucket))
	}
	kept := 0
	for _, e := range bucket {
		key, _, ok := x.classifyY(c, e)
		if !ok {
			continue
		}
		tab.ref(key).n++
		kept++
	}
	flat = flat[:kept]
	off := int32(0)
	for i, k := range tab.keys {
		if k == 0 {
			continue
		}
		tab.spans[i].off = off
		off += tab.spans[i].n
	}
	for _, e := range bucket {
		key, re, ok := x.classifyY(c, e)
		if !ok {
			continue
		}
		sp := tab.ref(key)
		flat[sp.off+sp.fill] = re
		sp.fill++
	}
	x.ygFlat[c][u] = flat
	// Same-pass probe rows: the table's key set is exactly the bit set the
	// per-edge probe build would produce, so the unit's survival rows come
	// for free here — one OR per distinct classification.
	x.rowsFromSpans(c, u, tab)
	return tab, flat
}

// rowsFromSpans rebuilds the (c, u) survival probe rows word-parallel from
// a current grouped-Y span table: one bit-OR per occupied slot instead of
// one classifyY per bucket edge. The bits are identical to probeRows' own
// per-edge build because both sides derive from the same classifyY calls
// over the same live bucket (the table keeps exactly the classifications
// with at least one surviving edge). No-op if the rows already carry this
// round's stamp.
func (x *IncIndex) rowsFromSpans(c, u int, tab *ygTab) {
	if x.prStamp[c][u] == x.stamp {
		return
	}
	x.prStamp[c][u] = x.stamp
	rows := x.pRows[c][u]
	if rows == nil {
		rows = make([]uint64, x.maxU+1)
		x.pRows[c][u] = rows
	} else {
		clear(rows)
	}
	for _, k := range tab.keys {
		if k == 0 {
			continue
		}
		key := uint16(k - 1)
		rows[key>>8] |= 1 << uint(key&0xff)
	}
}

// YGroupsOK reports whether the grouped Y lookup is available (YGrouper
// interface); the classification shares the survival probe's unit-bit
// bound, so it degrades exactly when ProbeY does.
func (v *IncView) YGroupsOK() bool { return v.ix.maxU < freeLBit }

// YGroup returns the unit-u unmatched crossing edges surviving between a
// layer of matched unit row and a successor layer of matched unit col
// (YGrouper interface; row 0 = free R, col FreeLBit = free L), oriented
// U = R endpoint, V = L endpoint, in bucket order.
func (v *IncView) YGroup(u, row, col int) []graph.Edge {
	if u < 2 || u > v.ix.maxU || row < 0 || row > 0xff || col < 0 || col > 0xff {
		return nil
	}
	tab, flat := v.ix.ensureYGroups(v.c, u)
	sp, ok := tab.get(ygKey(row, col))
	if !ok {
		return nil
	}
	return flat[sp.off : sp.off+sp.n]
}

// PairKey appends a cache key identifying the pair's layered graph up to
// bucket contents: the τ units plus the content digests of every window the
// build would read. Two (class, pair) combinations with equal keys build
// identical layered graphs — the weight W itself is deliberately absent, so
// anchored and geometric classes whose windows coincide share one solve.
// The free-vertex sets of τA = 0 boundary layers are class-independent
// within a round, so the unit value alone covers them.
func (v *IncView) PairKey(tau TauPair, key []byte) []byte {
	x, c := v.ix, v.c
	key = append(key, byte(tau.K()))
	for _, u := range tau.AUnits {
		key = append(key, byte(u))
		if u > 0 {
			key = appendDigest(key, x.aDigest(c, u))
		}
	}
	for _, u := range tau.BUnits {
		key = append(key, byte(u))
		key = appendDigest(key, x.bDigest(c, u))
	}
	return key
}

// FNV-1a over the edge coordinates; collisions across distinct bucket
// contents are the cache's only unsoundness and carry ~2^-64 probability
// per content pair (the differential suite cross-checks end to end).
const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

func digestEdge(h uint64, e graph.Edge) uint64 {
	for _, x := range [3]uint64{uint64(e.U), uint64(e.V), uint64(e.W)} {
		for i := 0; i < 8; i++ {
			h ^= (x >> (8 * i)) & 0xff
			h *= fnvPrime
		}
	}
	return h
}

func appendDigest(key []byte, h uint64) []byte {
	for i := 0; i < 8; i++ {
		key = append(key, byte(h>>(8*i)))
	}
	return key
}
