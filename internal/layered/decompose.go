package layered

import (
	"repro/internal/graph"
)

// Walk is an alternating walk in the original graph G obtained by projecting
// a layered-graph alternating path (replacing each layered vertex by its
// original vertex). It may visit vertices and even edges repeatedly — the
// cycle blow-up of Section 1.1.2 relies on exactly that.
type Walk struct {
	// Vertices has one more entry than the edge arrays.
	Vertices []int
	// Matched[i] reports whether the i-th edge of the walk is a matching
	// edge (an X edge of the layered graph).
	Matched []bool
	Weights []graph.Weight
}

// Len returns the number of edges.
func (w Walk) Len() int { return len(w.Matched) }

// ProjectComponent converts an alternating component of the symmetric
// difference ML' Δ M' (over layered ids) into a Walk over original vertices.
// InFirst entries mark ML' (matched) edges.
func (l *Layered) ProjectComponent(c graph.AlternatingComponent) Walk {
	w := Walk{
		Vertices: make([]int, len(c.Vertices)),
		Matched:  make([]bool, len(c.InFirst)),
		Weights:  make([]graph.Weight, len(c.Weights)),
	}
	for i, id := range c.Vertices {
		w.Vertices[i] = l.Orig(id)
	}
	copy(w.Matched, c.InFirst)
	copy(w.Weights, c.Weights)
	return w
}

// Component is one element of the Lemma 4.11 decomposition: a simple
// alternating path or even alternating cycle in G.
type Component struct {
	Vertices []int
	Matched  []bool
	Weights  []graph.Weight
	IsCycle  bool
}

// AddEdges returns the component's unmatched edges — the edges an
// augmentation would add to the matching. They are vertex-disjoint because
// the component alternates.
func (c Component) AddEdges() []graph.Edge {
	var out []graph.Edge
	for i, matched := range c.Matched {
		if matched {
			continue
		}
		u := c.Vertices[i]
		v := c.Vertices[(i+1)%len(c.Vertices)]
		out = append(out, graph.Edge{U: u, V: v, W: c.Weights[i]})
	}
	return out
}

// Decompose implements Lemma 4.11: the walk, viewed in the orientation
// induced by the bipartition (in-layer arcs run L→R, between-layer arcs run
// R→L of the next layer), decomposes into simple alternating cycles plus one
// simple alternating path. The proof observes that at every vertex all
// in-arcs share a type and all out-arcs share the other type, so cutting the
// walk at any repeated vertex keeps both pieces alternating; the standard
// stack construction below realises exactly that.
func Decompose(w Walk) []Component {
	if w.Len() == 0 {
		return nil
	}
	type stackEntry struct {
		v       int
		matched bool // edge leading *out* of v (set when the next edge is pushed)
		weight  graph.Weight
	}
	var comps []Component
	stack := []stackEntry{{v: w.Vertices[0]}}
	// Walks are short (bounded by the layer count), so a linear scan for
	// the repeated vertex beats maintaining a position map.
	onStack := func(v int) int {
		for j := len(stack) - 1; j >= 0; j-- {
			if stack[j].v == v {
				return j
			}
		}
		return -1
	}

	for i := 0; i < w.Len(); i++ {
		stack[len(stack)-1].matched = w.Matched[i]
		stack[len(stack)-1].weight = w.Weights[i]
		next := w.Vertices[i+1]
		if j := onStack(next); j >= 0 {
			// Pop the cycle stack[j..top] closed by the current edge.
			cycle := Component{IsCycle: true}
			for idx := j; idx < len(stack); idx++ {
				cycle.Vertices = append(cycle.Vertices, stack[idx].v)
				cycle.Matched = append(cycle.Matched, stack[idx].matched)
				cycle.Weights = append(cycle.Weights, stack[idx].weight)
			}
			comps = append(comps, cycle)
			stack = stack[:j+1]
			stack[j].matched = false
			stack[j].weight = 0
			continue
		}
		stack = append(stack, stackEntry{v: next})
	}

	if len(stack) > 1 {
		path := Component{}
		for idx, se := range stack {
			path.Vertices = append(path.Vertices, se.v)
			if idx < len(stack)-1 {
				path.Matched = append(path.Matched, se.matched)
				path.Weights = append(path.Weights, se.weight)
			}
		}
		comps = append(comps, path)
	}
	return comps
}

// BestAugmentation decomposes the walk and returns the component with the
// largest gain with respect to m (Algorithm 4 lines 10–11), as a ready
// augmentation. ok is false when no component has positive gain.
func BestAugmentation(m *graph.Matching, w Walk) (graph.Augmentation, graph.Weight, bool) {
	var best graph.Augmentation
	var bestGain graph.Weight
	found := false
	for _, c := range Decompose(w) {
		add := c.AddEdges()
		if len(add) == 0 {
			continue
		}
		if !disjointAdds(add) {
			continue
		}
		aug := graph.PathAugmentation(m, add)
		if gain := aug.Gain(); gain > 0 && (!found || gain > bestGain) {
			best, bestGain, found = aug, gain, true
		}
	}
	return best, bestGain, found
}

// disjointAdds reports whether the edges share no vertex. Components from
// Decompose always satisfy this; the check guards against degenerate inputs.
func disjointAdds(edges []graph.Edge) bool {
	seen := make(map[int]struct{}, 2*len(edges))
	for _, e := range edges {
		if _, ok := seen[e.U]; ok {
			return false
		}
		if _, ok := seen[e.V]; ok {
			return false
		}
		seen[e.U] = struct{}{}
		seen[e.V] = struct{}{}
	}
	return true
}
