package layered

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func defaultParams() Params { return Params{}.WithDefaults() }

func TestEnumerateGoodPairsAllGood(t *testing.T) {
	p := defaultParams()
	pairs := EnumerateGoodPairs(p)
	if len(pairs) == 0 {
		t.Fatal("no good pairs enumerated")
	}
	for i, tp := range pairs {
		if !tp.IsGood(p) {
			t.Fatalf("pair %d fails IsGood: %+v", i, tp)
		}
	}
	t.Logf("enumerated %d good pairs at g=%v, maxLayers=%d", len(pairs), p.Granularity, p.MaxLayers)
}

func TestEnumerateGoodPairsCoversAllLengths(t *testing.T) {
	p := defaultParams()
	pairs := EnumerateGoodPairs(p)
	lengths := make(map[int]int)
	for _, tp := range pairs {
		lengths[tp.K()]++
	}
	if lengths[1] == 0 {
		t.Error("no k=1 pairs (single-edge augmentations)")
	}
	if lengths[2] == 0 {
		t.Error("no k=2 pairs (3-augmentations)")
	}
}

func TestEnumerateCountGrowsWithGranularity(t *testing.T) {
	// E9 shape: finer granularity => more pairs.
	coarse := len(EnumerateGoodPairs(Params{Granularity: 0.25}))
	fine := len(EnumerateGoodPairs(Params{Granularity: 0.125}))
	if fine <= coarse {
		t.Errorf("pairs: coarse=%d fine=%d; want growth", coarse, fine)
	}
}

func TestIsGoodRejections(t *testing.T) {
	p := defaultParams()
	tests := []struct {
		name string
		tp   TauPair
	}{
		{"length mismatch", TauPair{AUnits: []int{0, 2, 0}, BUnits: []int{4}}},
		{"too long", TauPair{AUnits: []int{0, 2, 2, 2, 2, 0}, BUnits: []int{4, 4, 4, 4, 4}}},
		{"B below 2g", TauPair{AUnits: []int{0, 0}, BUnits: []int{1}}},
		{"interior A below 2g", TauPair{AUnits: []int{0, 1, 0}, BUnits: []int{4, 4}}},
		{"sum cap exceeded", TauPair{AUnits: []int{0, 0}, BUnits: []int{12}}},
		{"no gain slack", TauPair{AUnits: []int{2, 2}, BUnits: []int{4}}},
		{"negative", TauPair{AUnits: []int{-1, 0}, BUnits: []int{4}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.tp.IsGood(p) {
				t.Errorf("pair accepted: %+v", tt.tp)
			}
		})
	}
	good := TauPair{AUnits: []int{0, 3, 0}, BUnits: []int{2, 2}}
	if !good.IsGood(p) {
		t.Errorf("valid pair rejected: %+v", good)
	}
}

func TestParametrize(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	inst := graph.PlantedMatching(40, 100, 50, 100, rng)
	par := Parametrize(inst.G.N(), inst.G.Edges(), inst.Opt, rng)
	for _, e := range par.A {
		if par.Side[e.U] == par.Side[e.V] {
			t.Fatalf("A edge does not cross: %v", e)
		}
		if !inst.Opt.Has(e.U, e.V) {
			t.Fatalf("A edge not matched: %v", e)
		}
	}
	for _, e := range par.B {
		if par.Side[e.U] == par.Side[e.V] {
			t.Fatalf("B edge does not cross: %v", e)
		}
		if inst.Opt.Has(e.U, e.V) {
			t.Fatalf("B edge matched: %v", e)
		}
	}
}

// pathSetup builds the Figure-1-style instance: matching {c-d w=5}, side
// edges a-c (4) and d-f (4): the 3-augmentation has gain 3.
func pathSetup(t *testing.T) (*Parametrized, *graph.Matching) {
	t.Helper()
	g := graph.New(4) // a=0, c=1, d=2, f=3
	g.MustAddEdge(1, 2, 5)
	g.MustAddEdge(0, 1, 4)
	g.MustAddEdge(2, 3, 4)
	m := graph.NewMatching(4)
	if err := m.Add(graph.Edge{U: 1, V: 2, W: 5}); err != nil {
		t.Fatal(err)
	}
	// Bipartition: c in R, d in L so that a-c enters c from the left side
	// copy... orientation: Y edges run R(layer t) -> L(layer t+1). Place
	// a(L), c(R), d(L)... but c-d must cross: c in R, d in L; a in L (edge
	// a-c crosses), f in R (edge d-f crosses).
	side := []bool{false, true, false, true}
	return ParametrizeWithSide(4, g.Edges(), m, side), m
}

func TestBuildCapturesThreeAugmentation(t *testing.T) {
	par, _ := pathSetup(t)
	p := Params{Granularity: 0.125, MaxLayers: 5}.WithDefaults()
	// W = 8: matched 5 -> unit ceil(5/1)=5; unmatched 4 -> unit 4.
	// Pair: tauA = (0, 5/8, 0), tauB = (4/8, 4/8): sumB-sumA = 3/8 >= 1/8.
	tau := TauPair{AUnits: []int{0, 5, 0}, BUnits: []int{4, 4}}
	if !tau.IsGood(p) {
		t.Fatal("constructed pair not good")
	}
	lay := Build(par, tau, 8, p)
	if len(lay.Y) != 2 {
		t.Fatalf("Y edges = %d, want 2 (%v)", len(lay.Y), lay.Y)
	}
	// The middle layer keeps the matched copy of c-d.
	if len(lay.X) != 1 {
		t.Fatalf("X edges = %v, want the single middle copy", lay.X)
	}
	if lay.LayerOf(lay.X[0].U) != 1 {
		t.Fatalf("X edge in layer %d, want 1", lay.LayerOf(lay.X[0].U))
	}
	// Free endpoints a (L) in layer 2 and f (R) in layer 0 must survive
	// (each carries a Y edge, so it holds a compact id); intermediate
	// unmatched vertices must be removed.
	if !lay.Has(0, 3) {
		t.Error("free R vertex f removed from first layer")
	}
	if !lay.Has(2, 0) {
		t.Error("free L vertex a removed from last layer")
	}
	if lay.Has(1, 0) || lay.Has(1, 3) {
		t.Error("unmatched intermediate copies not removed")
	}
}

func TestBuildBipartiteness(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	inst := graph.PlantedMatching(30, 200, 60, 120, rng)
	par := Parametrize(inst.G.N(), inst.G.Edges(), inst.Opt, rng)
	p := defaultParams()
	for _, tau := range EnumerateGoodPairs(p)[:50] {
		lay := Build(par, tau, 100, p)
		side := lay.Sides()
		for _, e := range append(append([]graph.Edge{}, lay.X...), lay.Y...) {
			if side[e.U] == side[e.V] {
				t.Fatalf("layered edge does not cross bipartition: %v", e)
			}
		}
	}
}

func TestBuildYOrientation(t *testing.T) {
	// Every Y edge must run from an R vertex in layer t to an L vertex in
	// layer t+1.
	rng := rand.New(rand.NewSource(3))
	inst := graph.PlantedMatching(30, 200, 60, 120, rng)
	par := Parametrize(inst.G.N(), inst.G.Edges(), inst.Opt, rng)
	p := defaultParams()
	for _, tau := range EnumerateGoodPairs(p)[:80] {
		lay := Build(par, tau, 64, p)
		for _, e := range lay.Y {
			if !par.Side[lay.Orig(e.U)] {
				t.Fatalf("Y edge tail not in R: %v", e)
			}
			if par.Side[lay.Orig(e.V)] {
				t.Fatalf("Y edge head not in L: %v", e)
			}
			if lay.LayerOf(e.V) != lay.LayerOf(e.U)+1 {
				t.Fatalf("Y edge skips layers: %v", e)
			}
		}
	}
}

func TestDecomposeSimplePath(t *testing.T) {
	w := Walk{
		Vertices: []int{0, 1, 2, 3},
		Matched:  []bool{false, true, false},
		Weights:  []graph.Weight{4, 5, 4},
	}
	comps := Decompose(w)
	if len(comps) != 1 {
		t.Fatalf("components = %d, want 1", len(comps))
	}
	if comps[0].IsCycle {
		t.Error("path reported as cycle")
	}
	adds := comps[0].AddEdges()
	if len(adds) != 2 {
		t.Fatalf("adds = %v", adds)
	}
}

func TestDecomposePaperNonSimpleWalk(t *testing.T) {
	// The Section 4.3 example: bold path a-b-c-d-b-a is non-simple; the
	// decomposition must produce the cycle b-c-d-b and the path a-b... in
	// our stack formulation: walk a(0) b(1) c(2) d(3) b(1) a(0) closes two
	// cycles.
	w := Walk{
		Vertices: []int{0, 1, 2, 3, 1, 0},
		Matched:  []bool{true, false, true, false, true},
		Weights:  []graph.Weight{1, 2, 1, 2, 1},
	}
	comps := Decompose(w)
	var cycles, paths int
	for _, c := range comps {
		if c.IsCycle {
			cycles++
		} else {
			paths++
		}
	}
	if cycles == 0 {
		t.Errorf("no cycle extracted from non-simple walk: %+v", comps)
	}
	// Total edge count preserved.
	total := 0
	for _, c := range comps {
		total += len(c.Matched)
	}
	if total != 5 {
		t.Errorf("edges after decomposition = %d, want 5", total)
	}
}

func TestDecomposeCycleBlowUp(t *testing.T) {
	// The Section 1.1.2 blow-up: 4-cycle (e1,o1,e2,o2) traversed twice.
	// Vertices 0-1 (e1), 2-3 (e2); walk 0,1,2,3,0,1,2,3,0.
	w := Walk{
		Vertices: []int{0, 1, 2, 3, 0, 1, 2, 3, 0},
		Matched:  []bool{true, false, true, false, true, false, true, false},
		Weights:  []graph.Weight{3, 4, 3, 4, 3, 4, 3, 4},
	}
	comps := Decompose(w)
	for _, c := range comps {
		if !c.IsCycle {
			t.Fatalf("pure cycle walk produced a path: %+v", c)
		}
		if len(c.Matched)%2 != 0 {
			t.Fatalf("odd cycle extracted: %+v", c)
		}
	}
	if len(comps) != 2 {
		t.Errorf("components = %d, want 2 copies of the 4-cycle", len(comps))
	}
}

func TestBestAugmentationPicksPositive(t *testing.T) {
	m := graph.NewMatching(4)
	if err := m.Add(graph.Edge{U: 1, V: 2, W: 5}); err != nil {
		t.Fatal(err)
	}
	w := Walk{
		Vertices: []int{0, 1, 2, 3},
		Matched:  []bool{false, true, false},
		Weights:  []graph.Weight{4, 5, 4},
	}
	aug, gain, ok := BestAugmentation(m, w)
	if !ok {
		t.Fatal("no augmentation found")
	}
	if gain != 3 {
		t.Errorf("gain = %d, want 3", gain)
	}
	realised, err := graph.Apply(m, aug)
	if err != nil {
		t.Fatal(err)
	}
	if realised != 3 {
		t.Errorf("realised gain = %d", realised)
	}
}

func TestBestAugmentationRejectsLossy(t *testing.T) {
	m := graph.NewMatching(4)
	if err := m.Add(graph.Edge{U: 1, V: 2, W: 50}); err != nil {
		t.Fatal(err)
	}
	w := Walk{
		Vertices: []int{0, 1, 2, 3},
		Matched:  []bool{false, true, false},
		Weights:  []graph.Weight{4, 50, 4},
	}
	if _, _, ok := BestAugmentation(m, w); ok {
		t.Error("negative-gain walk produced an augmentation")
	}
}
