package layered

import (
	"math/rand"

	"repro/internal/graph"
)

// Parametrized is the Section 4.3.1 object G_P = (L, R, A, B): a uniformly
// random bipartition of the vertices into L (Side=false) and R (Side=true),
// with A the matched and B the unmatched edges crossing the bipartition.
type Parametrized struct {
	N    int
	Side []bool
	M    *graph.Matching
	// A holds the crossing matched edges; B the crossing unmatched edges.
	A, B []graph.Edge
}

// Parametrize draws a uniform bipartition and splits the edges. Edges whose
// endpoint pair is matched in m are treated as matching edges regardless of
// their stored weight (the graph is simple, so the pair identifies the edge).
func Parametrize(n int, edges []graph.Edge, m *graph.Matching, rng *rand.Rand) *Parametrized {
	side := make([]bool, n)
	for v := range side {
		side[v] = rng.Intn(2) == 1
	}
	return ParametrizeWithSide(n, edges, m, side)
}

// ParametrizeWithSide is Parametrize with a fixed bipartition, used by tests
// and by Lemma 4.12-style constructions that need a specific assignment.
func ParametrizeWithSide(n int, edges []graph.Edge, m *graph.Matching, side []bool) *Parametrized {
	p := &Parametrized{N: n, Side: side, M: m}
	for _, e := range m.Edges() {
		if side[e.U] != side[e.V] {
			p.A = append(p.A, e)
		}
	}
	for _, e := range edges {
		if side[e.U] == side[e.V] || m.Has(e.U, e.V) {
			continue
		}
		p.B = append(p.B, e)
	}
	return p
}
