package layered

import (
	"repro/internal/graph"
)

// This file is the allocation-free fast path from a solved layered graph to
// weighted augmentations: extract the augmenting paths of ML' Δ M' directly
// (instead of materialising every alternating component of the symmetric
// difference), and scan the Lemma 4.11 decomposition for the best-gain
// component before constructing only that one augmentation.

// AugmentingWalks invokes fn for every augmenting path of ML' Δ M' (M' the
// solver's matching over compact layered ids), projected to original
// vertices as a Walk — the Algorithm 4 line 8-9 step. A component of the
// symmetric difference is an augmenting path exactly when both of its end
// edges belong to M', i.e. both endpoints are free in ML' and matched in
// M'; the extraction walks only from such endpoints, so alternating cycles
// and half-augmenting paths are never materialised. The Walk's slices are
// reused between invocations: fn must not retain them.
func (l *Layered) AugmentingWalks(mPrime *graph.Matching, fn func(Walk)) {
	s := l.scratch
	if s == nil {
		s = NewScratch()
	}
	if len(l.InteriorX) == 0 {
		// No interior matched edges: ML' is empty, so every M' edge is by
		// itself an augmenting path. Emitting each from its smaller
		// endpoint reproduces the generic extraction's walks in its order
		// (the ascending scan reaches the smaller endpoint first) without
		// building ML' or the visited set.
		for v := 0; v < l.NumV; v++ {
			u := mPrime.Mate(v)
			if u <= v { // unmatched (-1) or already emitted from u
				continue
			}
			s.walkMatched = append(s.walkMatched[:0], false)
			s.walkWeights = append(s.walkWeights[:0], mPrime.EdgeWeightAt(v))
			s.walkOrig = append(s.walkOrig[:0], l.Orig(v), l.Orig(u))
			fn(Walk{Vertices: s.walkOrig, Matched: s.walkMatched, Weights: s.walkWeights})
		}
		return
	}
	mlp := l.MatchingLPrime()
	if cap(s.visited) < l.NumV {
		s.visited = make([]bool, l.NumV)
	}
	visited := s.visited[:l.NumV]
	clear(visited)

	for v := 0; v < l.NumV; v++ {
		if visited[v] || mlp.IsMatched(v) || !mPrime.IsMatched(v) {
			continue
		}
		// v is one end of an augmenting-path candidate. Alternate
		// M'-edge, ML'-edge, ... skipping edges present in both matchings
		// (they cancel in the symmetric difference; at an endpoint the
		// first edge never cancels because v is free in ML').
		verts := s.walkVerts[:0]
		matched := s.walkMatched[:0]
		weights := s.walkWeights[:0]
		verts = append(verts, int32(v))
		visited[v] = true
		cur, inPrime := v, true
		for {
			var nxt int
			if inPrime {
				nxt = mPrime.Mate(cur)
				if nxt == mlp.Mate(cur) {
					nxt = graph.Unmatched
				}
			} else {
				nxt = mlp.Mate(cur)
				if nxt == mPrime.Mate(cur) {
					nxt = graph.Unmatched
				}
			}
			if nxt == graph.Unmatched {
				break
			}
			if inPrime {
				weights = append(weights, mPrime.EdgeWeightAt(cur))
			} else {
				weights = append(weights, mlp.EdgeWeightAt(cur))
			}
			matched = append(matched, !inPrime)
			verts = append(verts, int32(nxt))
			visited[nxt] = true
			cur, inPrime = nxt, !inPrime
		}
		s.walkVerts, s.walkMatched, s.walkWeights = verts, matched, weights
		// The walk ended because cur has no further diff edge. It is an
		// augmenting path for ML' exactly when its last edge came from M':
		// inPrime now names the edge type that was missing, so a true value
		// means the walk ended after an ML' edge and is not augmenting.
		if len(matched) == 0 || inPrime {
			continue
		}
		// Project to original vertices in place.
		if cap(s.walkOrig) < len(verts) {
			s.walkOrig = make([]int, 0, 2*len(verts))
		}
		orig := s.walkOrig[:0]
		for _, id := range verts {
			orig = append(orig, l.Orig(int(id)))
		}
		s.walkOrig = orig
		fn(Walk{Vertices: orig, Matched: matched, Weights: weights})
	}
}

// BestAugmentation is the scratch-arena variant of the package-level
// BestAugmentation: it decomposes the walk into the arena (Lemma 4.11),
// scans component gains without building augmentations, and constructs only
// the winning component's augmentation. The returned Augmentation owns its
// slices; everything else lives in the arena.
func (s *Scratch) BestAugmentation(m *graph.Matching, w Walk) (graph.Augmentation, graph.Weight, bool) {
	if w.Len() == 0 {
		return graph.Augmentation{}, 0, false
	}
	s.decompose(w)

	bestGain := graph.Weight(0)
	best := -1
	for c := 0; c+1 < len(s.compOff); c++ {
		gain, ok := s.componentGain(m, c)
		if ok && gain > 0 && (best < 0 || gain > bestGain) {
			best, bestGain = c, gain
		}
	}
	if best < 0 {
		return graph.Augmentation{}, 0, false
	}
	add := make([]graph.Edge, 0, s.compLen(best)/2+1)
	s.eachAdd(best, func(e graph.Edge) {
		add = append(add, e)
	})
	return graph.PathAugmentation(m, add), bestGain, true
}

// decompose runs the Lemma 4.11 stack decomposition of Decompose, flattening
// the resulting components into the arena: component c occupies positions
// [compOff[c], compOff[c+1]) of compV/compM/compW, with compCycle[c] marking
// cycles. Paths store len(V) = len(M)+1 entries of compV; cycles store
// len(V) = len(M) (the first vertex is not repeated).
func (s *Scratch) decompose(w Walk) {
	s.compV, s.compM, s.compW = s.compV[:0], s.compM[:0], s.compW[:0]
	s.compOff, s.compCycle = s.compOff[:0], s.compCycle[:0]
	s.compOff = append(s.compOff, 0)
	s.stackV = s.stackV[:0]
	s.stackM = s.stackM[:0]
	s.stackW = s.stackW[:0]

	push := func(v int) {
		s.stackV = append(s.stackV, v)
		s.stackM = append(s.stackM, false)
		s.stackW = append(s.stackW, 0)
	}
	push(w.Vertices[0])
	for i := 0; i < w.Len(); i++ {
		top := len(s.stackV) - 1
		s.stackM[top] = w.Matched[i]
		s.stackW[top] = w.Weights[i]
		next := w.Vertices[i+1]
		// Walks are short (bounded by the layer count), so a linear scan
		// for the repeated vertex beats maintaining a position map.
		j := -1
		for idx := top; idx >= 0; idx-- {
			if s.stackV[idx] == next {
				j = idx
				break
			}
		}
		if j >= 0 {
			// Pop the cycle stack[j..top] closed by the current edge.
			for idx := j; idx < len(s.stackV); idx++ {
				s.compV = append(s.compV, s.stackV[idx])
				s.compM = append(s.compM, s.stackM[idx])
				s.compW = append(s.compW, s.stackW[idx])
			}
			s.compOff = append(s.compOff, len(s.compV))
			s.compCycle = append(s.compCycle, true)
			s.stackV = s.stackV[:j+1]
			s.stackM[j] = false
			s.stackW[j] = 0
			continue
		}
		push(next)
	}
	if len(s.stackV) > 1 {
		s.compV = append(s.compV, s.stackV...)
		s.compM = append(s.compM, s.stackM[:len(s.stackM)-1]...)
		s.compW = append(s.compW, s.stackW[:len(s.stackW)-1]...)
		s.compOff = append(s.compOff, len(s.compV))
		s.compCycle = append(s.compCycle, false)
	}
}

// compLen returns the number of stored vertices of component c.
func (s *Scratch) compLen(c int) int { return s.compOff[c+1] - s.compOff[c] }

// eachAdd yields the unmatched (to-add) edges of component c, in order.
func (s *Scratch) eachAdd(c int, fn func(graph.Edge)) {
	off, end := s.compOff[c], s.compOff[c+1]
	nv := end - off
	edges := nv // cycle: one edge per vertex
	if !s.compCycle[c] {
		edges = nv - 1
	}
	for i := 0; i < edges; i++ {
		if s.compM[off+i] {
			continue
		}
		u := s.compV[off+i]
		v := s.compV[off+(i+1)%nv]
		fn(graph.Edge{U: u, V: v, W: s.compW[off+i]})
	}
}

// componentGain computes the gain of applying component c to m — exactly
// PathAugmentation(m, adds).Gain() — without building the augmentation: the
// removed set is every distinct matched edge of m incident to an add-edge
// endpoint, deduplicated by counting an edge at its smaller endpoint when
// both endpoints belong to the component's add edges. ok is false when the
// add edges are not vertex-disjoint (degenerate input guard, as in
// BestAugmentation).
func (s *Scratch) componentGain(m *graph.Matching, c int) (graph.Weight, bool) {
	var gain graph.Weight
	adds := 0
	disjoint := true
	isAddEndpoint := func(v int) bool {
		found := false
		s.eachAdd(c, func(e graph.Edge) {
			if e.U == v || e.V == v {
				found = true
			}
		})
		return found
	}
	var endpoints [2]int
	s.eachAdd(c, func(e graph.Edge) {
		adds++
		gain += e.W
		endpoints[0], endpoints[1] = e.U, e.V
		for _, v := range endpoints {
			u := m.Mate(v)
			if u == graph.Unmatched {
				continue
			}
			// Count the removed edge once: skip at the larger endpoint
			// when its mate is also an add endpoint.
			if v > u && isAddEndpoint(u) {
				continue
			}
			gain -= m.EdgeWeightAt(v)
		}
	})
	if adds == 0 {
		return 0, false
	}
	// Vertex-disjointness guard, quadratic over the (short) add list.
	s.eachAdd(c, func(e graph.Edge) {
		seen := 0
		s.eachAdd(c, func(f graph.Edge) {
			for _, v := range [2]int{e.U, e.V} {
				if f.U == v || f.V == v {
					seen++
				}
			}
		})
		// Each endpoint of e appears exactly once across all add edges
		// (its own); a higher count means sharing.
		if seen != 2 {
			disjoint = false
		}
	})
	if !disjoint {
		return 0, false
	}
	return gain, true
}
