package layered

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// coord is a layered vertex in builder-independent coordinates.
type coord struct {
	layer, orig int
}

// fastEdgeCoords maps a fast-build edge to builder-independent coordinates.
func fastEdgeCoords(l *Layered, e graph.Edge) (coord, coord, graph.Weight) {
	return coord{l.LayerOf(e.U), l.Orig(e.U)}, coord{l.LayerOf(e.V), l.Orig(e.V)}, e.W
}

// refEdgeCoords maps a reference-build edge to the same coordinates.
func refEdgeCoords(r *ReferenceLayered, e graph.Edge) (coord, coord, graph.Weight) {
	return coord{r.LayerOf(e.U), r.Orig(e.U)}, coord{r.LayerOf(e.V), r.Orig(e.V)}, e.W
}

// assertSameEdges compares an edge list of the fast builder with the
// reference builder's elementwise (both emit edges in the same layer-major,
// input-edge-order sequence).
func assertSameEdges(t *testing.T, what string, l *Layered, fast []graph.Edge, r *ReferenceLayered, ref []graph.Edge) {
	t.Helper()
	if len(fast) != len(ref) {
		t.Fatalf("%s: fast has %d edges, reference %d", what, len(fast), len(ref))
	}
	for i := range fast {
		fu, fv, fw := fastEdgeCoords(l, fast[i])
		ru, rv, rw := refEdgeCoords(r, ref[i])
		if fu != ru || fv != rv || fw != rw {
			t.Fatalf("%s edge %d: fast (%v,%v,w=%d) != reference (%v,%v,w=%d)",
				what, i, fu, fv, fw, ru, rv, rw)
		}
	}
}

// TestBuildMatchesReference is the equivalence property of the optimised
// pipeline: over random graphs, random bipartitions, and every enumerated
// good pair at several class weights, the bucketed compact-id Build must
// produce exactly the layered graph of the naive reference builder, up to
// the id relabeling (compared in (layer, original-vertex) coordinates).
func TestBuildMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	prm := Params{}.WithDefaults()
	pairs := EnumerateGoodPairs(prm)

	for trial := 0; trial < 12; trial++ {
		n := 10 + rng.Intn(40)
		m := n * (2 + rng.Intn(4))
		maxW := graph.Weight(1 << (4 + rng.Intn(6)))
		inst := graph.PlantedMatching(n, m, maxW/2, maxW, rng)
		par := Parametrize(inst.G.N(), inst.G.Edges(), inst.Opt, rng)

		// Class weights around the instance scale, including an anchored
		// one that puts edge weights exactly on window boundaries.
		ws := []float64{float64(maxW), float64(maxW) * 1.7, float64(maxW) / 3,
			float64(maxW) / (prm.Granularity * 3)}
		scratch := NewScratch()
		for _, w := range ws {
			ix := scratch.Index(par, w, prm)
			for pi, tau := range pairs {
				if pi%7 != trial%7 { // subsample pairs per trial for speed
					continue
				}
				fast := BuildIndexed(ix, tau, scratch)
				ref := BuildReference(par, tau, w, prm)

				assertSameEdges(t, "X", fast, fast.X, ref, ref.X)
				assertSameEdges(t, "Y", fast, fast.Y, ref, ref.Y)
				assertSameEdges(t, "InteriorX", fast, fast.InteriorX, ref, ref.InteriorX)

				// Compact ids must cover exactly the endpoints of surviving
				// edges, each decoding to a live (layer, vertex) copy.
				live := make(map[coord]bool)
				for _, e := range ref.X {
					live[coord{ref.LayerOf(e.U), ref.Orig(e.U)}] = true
					live[coord{ref.LayerOf(e.V), ref.Orig(e.V)}] = true
				}
				for _, e := range ref.Y {
					live[coord{ref.LayerOf(e.U), ref.Orig(e.U)}] = true
					live[coord{ref.LayerOf(e.V), ref.Orig(e.V)}] = true
				}
				if fast.NumV != len(live) {
					t.Fatalf("NumV = %d, want %d live endpoints", fast.NumV, len(live))
				}
				for id := 0; id < fast.NumV; id++ {
					c := coord{fast.LayerOf(id), fast.Orig(id)}
					if !live[c] {
						t.Fatalf("compact id %d decodes to %v, which the reference removed", id, c)
					}
					if ref.Removed[ref.ID(c.layer, c.orig)] {
						t.Fatalf("compact id %d decodes to %v, marked Removed by reference", id, c)
					}
					if got := fast.ID(c.layer, c.orig); got != id {
						t.Fatalf("ID(%d,%d) = %d, want %d", c.layer, c.orig, got, id)
					}
				}
			}
		}
	}
}

// TestBuildScratchReuseIsStable re-runs the same build twice through one
// scratch arena with other builds in between, checking the arena leaks no
// state across (τ, W) pairs.
func TestBuildScratchReuseIsStable(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	inst := graph.PlantedMatching(30, 120, 50, 100, rng)
	par := Parametrize(inst.G.N(), inst.G.Edges(), inst.Opt, rng)
	prm := Params{}.WithDefaults()
	pairs := EnumerateGoodPairs(prm)

	scratch := NewScratch()
	ix := scratch.Index(par, 100, prm)
	snapshot := func(l *Layered) ([]graph.Edge, []graph.Edge, int) {
		return append([]graph.Edge(nil), l.X...), append([]graph.Edge(nil), l.Y...), l.NumV
	}
	firstX, firstY, firstN := snapshot(BuildIndexed(ix, pairs[0], scratch))
	for _, tau := range pairs[1:40] {
		BuildIndexed(ix, tau, scratch)
	}
	againX, againY, againN := snapshot(BuildIndexed(ix, pairs[0], scratch))
	if firstN != againN || len(firstX) != len(againX) || len(firstY) != len(againY) {
		t.Fatalf("scratch reuse changed shape: (%d,%d,%d) vs (%d,%d,%d)",
			firstN, len(firstX), len(firstY), againN, len(againX), len(againY))
	}
	for i := range firstX {
		if firstX[i] != againX[i] {
			t.Fatalf("X[%d] differs after reuse: %v vs %v", i, firstX[i], againX[i])
		}
	}
	for i := range firstY {
		if firstY[i] != againY[i] {
			t.Fatalf("Y[%d] differs after reuse: %v vs %v", i, firstY[i], againY[i])
		}
	}
}

// TestDetachOutlivesScratch checks Detach deep-copies a scratch-backed
// Layered before the arena is rebuilt.
func TestDetachOutlivesScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	inst := graph.PlantedMatching(20, 80, 50, 100, rng)
	par := Parametrize(inst.G.N(), inst.G.Edges(), inst.Opt, rng)
	prm := Params{}.WithDefaults()
	pairs := EnumerateGoodPairs(prm)

	scratch := NewScratch()
	ix := scratch.Index(par, 100, prm)
	kept := BuildIndexed(ix, pairs[0], scratch).Detach()
	wantX := append([]graph.Edge(nil), kept.X...)
	for _, tau := range pairs[1:20] {
		BuildIndexed(ix, tau, scratch)
	}
	for i := range wantX {
		if kept.X[i] != wantX[i] {
			t.Fatalf("detached X[%d] mutated by later builds", i)
		}
	}
}
