package layered

import (
	"repro/internal/graph"
)

// ReferenceLayered is the output of BuildReference: the layered graph in the
// dense id space (layer t, vertex v) ↦ t·n+v, built by the direct
// transcription of Definition 4.10. It is retained as the oracle for
// property tests of the bucketed, compact-id Build and is not used on any
// hot path.
type ReferenceLayered struct {
	K, N int
	// Removed marks dense layered ids deleted by the Definition 4.10
	// filtering steps.
	Removed []bool
	// X, Y, InteriorX are the surviving edges in dense layered ids.
	X, Y, InteriorX []graph.Edge
}

// ID returns the dense layered id of vertex v in layer t.
func (r *ReferenceLayered) ID(t, v int) int { return t*r.N + v }

// Orig returns the original vertex of a dense layered id.
func (r *ReferenceLayered) Orig(id int) int { return id % r.N }

// LayerOf returns the layer of a dense layered id.
func (r *ReferenceLayered) LayerOf(id int) int { return id / r.N }

// BuildReference constructs the layered graph by scanning the full edge
// lists once per layer and filtering with a dense Removed array — the
// pre-optimisation construction, kept as the semantics oracle. Window
// membership uses the same unit arithmetic as the bucket index (AUnitOf /
// BUnitOf), so the two builders agree exactly, including on weights that
// fall on window boundaries.
func BuildReference(par *Parametrized, tau TauPair, w float64, prm Params) *ReferenceLayered {
	prm = prm.WithDefaults()
	k := tau.K()
	n := par.N
	r := &ReferenceLayered{K: k, N: n, Removed: make([]bool, (k+1)*n)}

	// Stage 1: edge filters.
	hasX := make([]bool, (k+1)*n)
	for t := 0; t <= k; t++ {
		if tau.AUnits[t] == 0 {
			continue // window ((0−g)W, 0] holds no positive weight
		}
		for _, e := range par.A {
			if AUnitOf(e.W, w, prm) != tau.AUnits[t] {
				continue
			}
			le := graph.Edge{U: r.ID(t, e.U), V: r.ID(t, e.V), W: e.W}
			r.X = append(r.X, le)
			hasX[le.U] = true
			hasX[le.V] = true
		}
	}
	for t := 0; t < k; t++ {
		for _, e := range par.B {
			if BUnitOf(e.W, w, prm) != tau.BUnits[t] {
				continue
			}
			// Orient from the R endpoint in layer t to the L endpoint in
			// layer t+1.
			rv, lv := e.U, e.V
			if !par.Side[rv] {
				rv, lv = lv, rv
			}
			r.Y = append(r.Y, graph.Edge{U: r.ID(t, rv), V: r.ID(t+1, lv), W: e.W})
		}
	}

	// Stage 2: vertex filters.
	for v := 0; v < n; v++ {
		for t := 1; t < k; t++ {
			if !hasX[r.ID(t, v)] {
				r.Removed[r.ID(t, v)] = true
			}
		}
		if !hasX[r.ID(0, v)] {
			keep := par.Side[v] && !par.M.IsMatched(v) && tau.AUnits[0] == 0
			if !keep {
				r.Removed[r.ID(0, v)] = true
			}
		}
		if !hasX[r.ID(k, v)] {
			keep := !par.Side[v] && !par.M.IsMatched(v) && tau.AUnits[k] == 0
			if !keep {
				r.Removed[r.ID(k, v)] = true
			}
		}
	}

	// Drop edges incident to removed vertices; collect interior X.
	r.X = r.filterEdges(r.X)
	r.Y = r.filterEdges(r.Y)
	for _, e := range r.X {
		t := r.LayerOf(e.U)
		if t >= 1 && t <= k-1 {
			r.InteriorX = append(r.InteriorX, e)
		}
	}
	return r
}

func (r *ReferenceLayered) filterEdges(edges []graph.Edge) []graph.Edge {
	out := edges[:0]
	for _, e := range edges {
		if !r.Removed[e.U] && !r.Removed[e.V] {
			out = append(out, e)
		}
	}
	return out
}
