package layered

import (
	"repro/internal/graph"
)

// Layered is the layered graph L(τA, τB, W, G_P) of Definition 4.10.
//
// Layered vertices use compact ids: only the (layer, vertex) copies incident
// to a surviving X or Y edge receive an id, assigned densely in edge
// discovery order. This shrinks every downstream array (bipartition sides,
// ML', Hopcroft–Karp state) from O((K+1)·n) to O(active vertices). Kept but
// isolated copies (free endpoints with no surviving incident edge) get no
// id; they cannot participate in any augmenting path. X edges live inside
// layers (copies of matched edges passing the τA filter); Y edges connect an
// R vertex of layer t to an L vertex of layer t+1 (unmatched edges passing
// the τB filter).
type Layered struct {
	Par *Parametrized
	Tau TauPair
	W   float64
	Prm Params

	// K is the number of Y layers; there are K+1 X layers.
	K int
	// NumV is the number of compact layered vertex ids.
	NumV int
	// X contains the surviving in-layer matched edges and Y the surviving
	// between-layer unmatched edges, both in compact layered ids with
	// original weights.
	X, Y []graph.Edge
	// InteriorX is the subset of X in layers 1..K-1 (0-indexed), i.e. the
	// matched edges that remain in L' after the first and last layers'
	// edges are dropped (Algorithm 4 line 4).
	InteriorX []graph.Edge

	// Delta describes the byte-shared prefix with the arena's previous
	// build when this Layered was assembled by BuildDelta (Valid = false on
	// from-scratch builds). Solver-side consumers key incremental state on
	// it; see DeltaInfo.
	Delta DeltaInfo

	// seq is the arena's build counter at this build; it identifies the
	// build among all builds on the same Scratch (BuildSeq).
	seq uint64

	// epoch is the index's round clock (RoundChainer.RoundEpoch) at build
	// time, or 0 when the index does not implement the chaining interface.
	// BuildDelta consults it to decide whether a baseline from an earlier
	// round can still anchor a delta: a bucket unchanged since this epoch
	// yields byte-identical kept segments across the bipartition redraw.
	epoch uint64

	// vertOrig[id] and vertLayer[id] decode a compact id.
	vertOrig  []int32
	vertLayer []int32

	// idOf is the lazy inverse of (vertLayer, vertOrig), built on the first
	// ID call; the hot path never needs it.
	idOf map[int64]int32

	// scratch-backed Layereds reuse the arena's side and ML' buffers.
	scratch *Scratch
}

// BuildSeq returns the arena build counter stamped on this Layered: every
// build (BuildIndexed or BuildDelta) on one Scratch gets the next value, so
// equal BuildSeq means the same build. Consumers chaining per-solve state
// across builds (the Hopcroft–Karp repair in core) compare it against
// DeltaInfo.BaseSeq to verify the baseline they retained is the one the
// delta was diffed against. Detached and nil-scratch builds report 0.
func (l *Layered) BuildSeq() uint64 { return l.seq }

// Orig returns the original vertex of a compact layered id.
func (l *Layered) Orig(id int) int { return int(l.vertOrig[id]) }

// LayerOf returns the layer of a compact layered id.
func (l *Layered) LayerOf(id int) int { return int(l.vertLayer[id]) }

// ID returns the compact id of vertex v in layer t, or -1 when that layer
// copy has no surviving incident edge. Not safe for concurrent use (the
// inverse index is built lazily).
func (l *Layered) ID(t, v int) int {
	if l.idOf == nil {
		l.idOf = make(map[int64]int32, l.NumV)
		for id := 0; id < l.NumV; id++ {
			l.idOf[int64(l.vertLayer[id])*int64(l.Par.N)+int64(l.vertOrig[id])] = int32(id)
		}
	}
	id, ok := l.idOf[int64(t)*int64(l.Par.N)+int64(v)]
	if !ok {
		return -1
	}
	return int(id)
}

// Has reports whether the copy of v in layer t survives with at least one
// incident edge.
func (l *Layered) Has(t, v int) bool { return l.ID(t, v) >= 0 }

// Scratch is a reusable arena for Build: the stamped dense lookup tables and
// the edge/vertex slices that would otherwise be reallocated per (τA, τB)
// pair. A Layered built with a Scratch aliases the arena's storage and is
// valid only until the next build (BuildIndexed or BuildDelta) on the same
// Scratch; build with a nil scratch (or call Detach) for a Layered that must
// outlive the arena. In particular, a Layered retained across builds is NOT
// a valid BuildDelta baseline — BuildDelta verifies the baseline is the
// arena's latest build and returns ErrDeltaStale instead of silently
// reading overwritten storage.
// A Scratch is not safe for concurrent use; use one per worker.
type Scratch struct {
	// stamp versions the dense id tables so they need no per-build clearing.
	// BuildIndexed advances it every call; BuildDelta keeps it (reused
	// prefix entries must stay valid) and relies on array-validity checks
	// for staleness instead.
	stamp   uint32
	hasX    []uint32 // dense (t·n+v): stamped when the copy has an X edge
	idMark  []uint32 // dense: stamped when a compact id is assigned
	idAt    []int32  // dense: the compact id, valid when idMark is stamped
	badMark []uint32 // dense: stamped when the copy is known removed
	// badStamp versions badMark separately from the id tables: the survival
	// memo is invalidated every build (τ boundary rules change per pair)
	// while the id tables survive delta chains.
	badStamp uint32

	// last is the Layered the latest build on this arena returned — the
	// only valid BuildDelta baseline (the staleness check: any earlier
	// build's storage has been overwritten).
	last *Layered

	// buildSeq counts builds on this arena (Layered.BuildSeq); sidesSeq and
	// lprimeSeq record which build's Sides / LPrimeEdges the reusable
	// buffers currently hold, so a delta build can keep the kept-prefix
	// entries instead of refilling them.
	buildSeq  uint64
	sidesSeq  uint64
	lprimeSeq uint64

	// Watermarks of the latest build, recorded so BuildDelta can truncate
	// the arena back to the segments shared with the previous pair:
	// layerIDEnd[t] / layerXEnd[t] / layerIXEnd[t] are the id / X-edge /
	// interior-X counts after X layers 0..t-1, gapYEnd[t] / gapIDEnd[t] the
	// Y-edge / id counts after Y gaps 0..t-1 (gapIDEnd[0] = lastXIDs, the
	// id count when the X stage finished). Recording is opt-in
	// (EnableDeltaBaseline): the naive build pays none of the bookkeeping;
	// marksValid tracks whether the watermarks describe the latest build,
	// and a BuildDelta whose baseline lacks them rebuilds in full (reusing
	// nothing) before chaining normally.
	recMarks   bool
	marksValid bool
	layerIDEnd []int32
	layerXEnd  []int32
	layerIXEnd []int32
	gapYEnd    []int32
	gapIDEnd   []int32
	lastXIDs   int

	// tauBuf double-buffers arena-owned copies of the τ units of the two
	// most recent baseline-recording builds. A caller's TauPair routinely
	// aliases a pair-enumeration scratch whose storage is overwritten by
	// the NEXT enumeration — harmless while chains lived inside one
	// class-round, but a cross-round baseline (PR 7) outlives that arena,
	// and BuildDelta's keep loops compare prev.Tau byte-for-byte. Two slots
	// suffice: prev is always exactly the last build (the staleness check
	// guarantees it), so the current build writes the slot prev is not
	// reading from.
	tauBufA [2][]int
	tauBufB [2][]int
	tauFlip int

	vertOrig  []int32
	vertLayer []int32
	x, y, ix  []graph.Edge
	sides     []bool
	lprime    []graph.Edge
	mlp       *graph.Matching
	index     BucketIndex

	// augmenting-walk extraction buffers (walks.go).
	visited     []bool
	walkVerts   []int32
	walkMatched []bool
	walkWeights []graph.Weight
	walkOrig    []int

	// flattened Lemma 4.11 decomposition (walks.go).
	compV     []int
	compM     []bool
	compW     []graph.Weight
	compOff   []int
	compCycle []bool
	stackV    []int
	stackM    []bool
	stackW    []graph.Weight
}

// NewScratch returns an empty arena.
func NewScratch() *Scratch { return &Scratch{} }

// EnableDeltaBaseline makes subsequent BuildIndexed calls on this arena
// record the per-layer watermarks BuildDelta diffs against (BuildDelta
// itself always records them). Off by default so the naive build path pays
// no bookkeeping; the amortised class sweep enables it on its worker arenas.
func (s *Scratch) EnableDeltaBaseline() { s.recMarks = true }

// ownTau copies tau's unit vectors into arena-owned storage (see tauBuf):
// a build that may serve as a delta baseline must not retain the caller's
// slices, which typically belong to a reusable pair-enumeration scratch.
func (s *Scratch) ownTau(tau TauPair) TauPair {
	i := s.tauFlip & 1
	s.tauFlip++
	s.tauBufA[i] = append(s.tauBufA[i][:0], tau.AUnits...)
	s.tauBufB[i] = append(s.tauBufB[i][:0], tau.BUnits...)
	return TauPair{AUnits: s.tauBufA[i], BUnits: s.tauBufB[i]}
}

// Index re-buckets the arena's bucket index for (par, w) and returns it.
func (s *Scratch) Index(par *Parametrized, w float64, prm Params) *BucketIndex {
	s.index.Reset(par, w, prm)
	return &s.index
}

// next advances the stamp and sizes the dense arrays for sz entries.
func (s *Scratch) next(sz int) {
	if len(s.hasX) < sz {
		s.hasX = make([]uint32, sz)
		s.idMark = make([]uint32, sz)
		s.badMark = make([]uint32, sz)
		s.idAt = make([]int32, sz)
		s.stamp = 0
		s.badStamp = 0
	}
	s.stamp++
	if s.stamp == 0 { // wrapped: old stamps could collide, clear everything
		clear(s.hasX)
		clear(s.idMark)
		s.stamp = 1
	}
	s.nextBad()
}

// nextBad advances the survival-memo stamp (every build, delta or not).
func (s *Scratch) nextBad() {
	s.badStamp++
	if s.badStamp == 0 {
		clear(s.badMark)
		s.badStamp = 1
	}
}

// growDense widens the dense tables to sz entries preserving their contents,
// so a delta build with more layers than its baseline keeps the reused
// prefix's id entries valid.
func (s *Scratch) growDense(sz int) {
	if len(s.hasX) >= sz {
		return
	}
	s.hasX = append(make([]uint32, 0, sz), s.hasX...)[:sz:sz]
	s.idMark = append(make([]uint32, 0, sz), s.idMark...)[:sz:sz]
	s.badMark = append(make([]uint32, 0, sz), s.badMark...)[:sz:sz]
	s.idAt = append(make([]int32, 0, sz), s.idAt...)[:sz:sz]
}

// ensureLen32 returns buf resized to n entries, preserving the prefix across
// reallocation (entries beyond the previous length are stale until written).
func ensureLen32(buf []int32, n int) []int32 {
	if cap(buf) >= n {
		return buf[:n]
	}
	nb := make([]int32, n, n+4)
	copy(nb, buf)
	return nb
}

// Build constructs the layered graph for one good pair and weight W
// following Definition 4.10. It buckets the parametrized edges for W first;
// hot loops that try many pairs per class should bucket once via
// NewBucketIndex (or Scratch.Index) and call BuildIndexed.
func Build(par *Parametrized, tau TauPair, w float64, prm Params) *Layered {
	return BuildIndexed(NewBucketIndex(par, w, prm), tau, nil)
}

// BuildIndexed constructs the layered graph of Definition 4.10 from a
// pre-bucketed parametrization: edge filtering by τ windows first (a bucket
// lookup per layer), then the two-stage vertex filtering (intermediate
// layers keep only matched vertices; the first layer keeps a free R vertex
// only when it is free in M and τA_1 = 0, symmetrically for L vertices in
// the last layer). When s is non-nil its storage is reused and the returned
// Layered is valid only until the next build on s.
func BuildIndexed(ix Index, tau TauPair, s *Scratch) *Layered {
	if s == nil {
		s = NewScratch()
	}
	par, w, prm := ix.Parametrization(), ix.ClassWeight(), ix.Config()
	k := tau.K()
	n := par.N
	s.next((k + 1) * n)
	s.vertOrig = s.vertOrig[:0]
	s.vertLayer = s.vertLayer[:0]
	s.x, s.y, s.ix = s.x[:0], s.y[:0], s.ix[:0]
	if s.recMarks {
		s.layerIDEnd = ensureLen32(s.layerIDEnd, k+2)
		s.layerXEnd = ensureLen32(s.layerXEnd, k+2)
		s.layerIXEnd = ensureLen32(s.layerIXEnd, k+2)
		s.gapYEnd = ensureLen32(s.gapYEnd, k+1)
		s.gapIDEnd = ensureLen32(s.gapIDEnd, k+1)
		s.layerIDEnd[0], s.layerXEnd[0], s.layerIXEnd[0] = 0, 0, 0
	} else {
		s.marksValid = false
	}

	stored := tau
	if s.recMarks {
		stored = s.ownTau(tau)
	}
	l := &Layered{Par: par, Tau: stored, W: w, Prm: prm, K: k, scratch: s}
	if rc, ok := ix.(RoundChainer); ok {
		l.epoch = rc.RoundEpoch()
	}
	s.buildSeq++
	l.seq = s.buildSeq
	s.last = l

	// assign returns the compact id of the copy of v in layer t, creating
	// it on first use.
	assign := func(t, v int) int32 {
		d := t*n + v
		if s.idMark[d] == s.stamp {
			return s.idAt[d]
		}
		id := int32(len(s.vertOrig))
		s.idMark[d] = s.stamp
		s.idAt[d] = id
		s.vertOrig = append(s.vertOrig, int32(v))
		s.vertLayer = append(s.vertLayer, int32(t))
		return id
	}

	// Stage 1a: matched-edge windows. X endpoints always pass the vertex
	// filter (they are matched within their layer), so ids are final here.
	for t := 0; t <= k; t++ {
		u := tau.AUnits[t]
		if u != 0 { // a zero window ((0−g)W, 0] holds no positive weight
			for _, e := range ix.A(u) {
				le := graph.Edge{U: int(assign(t, e.U)), V: int(assign(t, e.V)), W: e.W}
				s.hasX[t*n+e.U] = s.stamp
				s.hasX[t*n+e.V] = s.stamp
				s.x = append(s.x, le)
				if t >= 1 && t <= k-1 {
					s.ix = append(s.ix, le)
				}
			}
		}
		if s.recMarks {
			s.layerIDEnd[t+1] = int32(len(s.vertOrig))
			s.layerXEnd[t+1] = int32(len(s.x))
			s.layerIXEnd[t+1] = int32(len(s.ix))
		}
	}
	if s.recMarks {
		s.lastXIDs = len(s.vertOrig)
		s.gapIDEnd[0] = int32(s.lastXIDs)
		s.gapYEnd[0] = 0
	}

	// survives applies the Definition 4.10 vertex filter to the copy of v
	// in layer t, memoising negative answers (positive ones are implied by
	// an id or an X stamp).
	survives := func(t, v int) bool {
		d := t*n + v
		if s.hasX[d] == s.stamp {
			return true
		}
		if s.badMark[d] == s.badStamp {
			return false
		}
		keep := false
		switch t {
		case 0:
			// First layer: an R vertex with no X edge survives only when
			// free in M and τA_1 = 0. An L vertex with no X edge is
			// isolated (no Y edge reaches layer-0 L vertices).
			keep = par.Side[v] && !par.M.IsMatched(v) && tau.AUnits[0] == 0
		case k:
			// Last layer: symmetric with L vertices.
			keep = !par.Side[v] && !par.M.IsMatched(v) && tau.AUnits[k] == 0
		default:
			// Intermediate layers: unmatched-in-X vertices are removed.
		}
		if !keep {
			s.badMark[d] = s.badStamp
		}
		return keep
	}

	// Stage 1b + 2: unmatched-edge windows, filtered by endpoint survival.
	for t := 0; t < k; t++ {
		for _, e := range ix.B(tau.BUnits[t]) {
			// Orient from the R endpoint in layer t to the L endpoint in
			// layer t+1.
			r, lv := e.U, e.V
			if !par.Side[r] {
				r, lv = lv, r
			}
			if !survives(t, r) || !survives(t+1, lv) {
				continue
			}
			s.y = append(s.y, graph.Edge{U: int(assign(t, r)), V: int(assign(t+1, lv)), W: e.W})
		}
		if s.recMarks {
			s.gapYEnd[t+1] = int32(len(s.y))
			s.gapIDEnd[t+1] = int32(len(s.vertOrig))
		}
	}
	if s.recMarks {
		s.marksValid = true
	}

	l.NumV = len(s.vertOrig)
	l.vertOrig, l.vertLayer = s.vertOrig, s.vertLayer
	l.X, l.Y, l.InteriorX = s.x, s.y, s.ix
	return l
}

// Detach copies the Layered's storage out of its scratch arena so it remains
// valid after the arena is reused. Any Layered retained across builds on the
// same Scratch must be Detach()ed first — its slices alias storage the next
// build overwrites. A detached Layered is a snapshot, not a live view of the
// arena, so it is no longer usable as a BuildDelta baseline (BuildDelta
// reports ErrDeltaDetached rather than diffing against copied storage).
func (l *Layered) Detach() *Layered {
	if l.scratch == nil {
		return l
	}
	l.vertOrig = append([]int32(nil), l.vertOrig...)
	l.vertLayer = append([]int32(nil), l.vertLayer...)
	l.X = append([]graph.Edge(nil), l.X...)
	l.Y = append([]graph.Edge(nil), l.Y...)
	l.InteriorX = append([]graph.Edge(nil), l.InteriorX...)
	l.scratch = nil
	return l
}

// LPrimeEdges returns the edge set of L': the layered graph with the first
// and last layers' matched edges removed (Algorithm 4 line 4), i.e. the
// interior X edges plus all Y edges. Scratch-backed Layereds reuse the
// arena's buffer.
func (l *Layered) LPrimeEdges() []graph.Edge {
	if l.scratch == nil {
		out := make([]graph.Edge, 0, len(l.InteriorX)+len(l.Y))
		out = append(out, l.InteriorX...)
		out = append(out, l.Y...)
		return out
	}
	s := l.scratch
	out := s.lprime[:0]
	// A delta build whose baseline filled this buffer keeps the shared
	// prefix in place: entries [0, KeptLPrime) are byte-identical by
	// DeltaInfo, so only the rebuilt suffix is recopied.
	if keep := l.Delta.KeptLPrime; l.Delta.Valid && s.lprimeSeq == l.Delta.BaseSeq && keep <= cap(out) {
		out = out[:keep]
		if keep <= len(l.InteriorX) {
			out = append(out, l.InteriorX[keep:]...)
			out = append(out, l.Y...)
		} else {
			out = append(out, l.Y[keep-len(l.InteriorX):]...)
		}
	} else {
		out = append(out, l.InteriorX...)
		out = append(out, l.Y...)
	}
	s.lprime = out
	s.lprimeSeq = l.seq
	return out
}

// SideOf returns the bipartition side of a layered vertex; layer copies
// inherit the side of the original vertex, which makes the layered graph
// bipartite (every X and Y edge crosses).
func (l *Layered) SideOf(id int) bool { return l.Par.Side[l.Orig(id)] }

// Sides materialises the side array over the compact ids. Scratch-backed
// Layereds reuse the arena's buffer.
func (l *Layered) Sides() []bool {
	if l.scratch == nil {
		side := make([]bool, l.NumV)
		for id := range side {
			side[id] = l.SideOf(id)
		}
		return side
	}
	s := l.scratch
	if cap(s.sides) < l.NumV {
		s.sides = make([]bool, l.NumV)
		s.sidesSeq = 0 // fresh storage holds no baseline prefix
	}
	side := s.sides[:l.NumV]
	start := 0
	// A delta build whose baseline filled this buffer keeps the kept ids'
	// entries: ids [0, KeptIDs) decode identically, so their sides do too.
	if l.Delta.Valid && s.sidesSeq == l.Delta.BaseSeq {
		start = l.Delta.KeptIDs
	}
	for id := start; id < l.NumV; id++ {
		side[id] = l.SideOf(id)
	}
	s.sidesSeq = l.seq
	return side
}

// MatchingLPrime returns ML', the current matching restricted to L' (the
// interior X edges), over compact layered ids. Scratch-backed Layereds
// reuse the arena's matching.
func (l *Layered) MatchingLPrime() *graph.Matching {
	var m *graph.Matching
	if l.scratch != nil {
		if l.scratch.mlp == nil {
			l.scratch.mlp = graph.NewMatching(l.NumV)
		} else {
			l.scratch.mlp.Reset(l.NumV)
		}
		m = l.scratch.mlp
	} else {
		m = graph.NewMatching(l.NumV)
	}
	for _, e := range l.InteriorX {
		// Interior X edges of one layer are a subset of a matching and
		// layers are vertex-disjoint, so Add cannot fail.
		if err := m.Add(e); err != nil {
			panic(err)
		}
	}
	return m
}
