package layered

import (
	"repro/internal/graph"
)

// Layered is the layered graph L(τA, τB, W, G_P) of Definition 4.10.
// Layered vertex (v, t) has id t·N + v for layer t in [0, K] (0-indexed; the
// paper's layer t+1). X edges live inside layers (copies of matched edges
// passing the τA filter); Y edges connect an R vertex of layer t to an L
// vertex of layer t+1 (unmatched edges passing the τB filter).
type Layered struct {
	Par *Parametrized
	Tau TauPair
	W   float64
	Prm Params

	// K is the number of Y layers; there are K+1 X layers.
	K      int
	TotalV int
	// Removed marks layered vertices deleted by the Definition 4.10
	// filtering steps.
	Removed []bool
	// X contains the surviving in-layer matched edges and Y the surviving
	// between-layer unmatched edges, both in layered ids with original
	// weights.
	X, Y []graph.Edge
	// InteriorX is the subset of X in layers 1..K-1 (0-indexed), i.e. the
	// matched edges that remain in L' after the first and last layers'
	// edges are dropped (Algorithm 4 line 4).
	InteriorX []graph.Edge
}

// ID returns the layered id of vertex v in layer t.
func (l *Layered) ID(t, v int) int { return t*l.Par.N + v }

// Orig returns the original vertex of a layered id.
func (l *Layered) Orig(id int) int { return id % l.Par.N }

// LayerOf returns the layer of a layered id.
func (l *Layered) LayerOf(id int) int { return id / l.Par.N }

// Build constructs the layered graph for one good pair and weight W
// following Definition 4.10: edge filtering by τ windows first, then the
// two-stage vertex filtering (intermediate layers keep only matched
// vertices; the first layer keeps a free R vertex only when it is free in M
// and τA_1 = 0, symmetrically for L vertices in the last layer).
func Build(par *Parametrized, tau TauPair, w float64, prm Params) *Layered {
	prm = prm.WithDefaults()
	k := tau.K()
	n := par.N
	l := &Layered{
		Par: par, Tau: tau, W: w, Prm: prm,
		K: k, TotalV: (k + 1) * n,
		Removed: make([]bool, (k+1)*n),
	}
	g := prm.Granularity

	// Stage 1: edge filters.
	hasX := make([]bool, l.TotalV)
	for t := 0; t <= k; t++ {
		tA := tau.TauA(t, prm)
		if tA == 0 {
			continue // window ((0-g)W, 0] holds no positive weight
		}
		lo, hi := (tA-g)*w, tA*w
		for _, e := range par.A {
			we := float64(e.W)
			if we > lo && we <= hi {
				le := graph.Edge{U: l.ID(t, e.U), V: l.ID(t, e.V), W: e.W}
				l.X = append(l.X, le)
				hasX[le.U] = true
				hasX[le.V] = true
			}
		}
	}
	for t := 0; t < k; t++ {
		tB := tau.TauB(t, prm)
		lo, hi := tB*w, (tB+g)*w
		for _, e := range par.B {
			we := float64(e.W)
			if we < lo || we >= hi {
				continue
			}
			// Orient from the R endpoint in layer t to the L endpoint in
			// layer t+1.
			r, lv := e.U, e.V
			if !par.Side[r] {
				r, lv = lv, r
			}
			l.Y = append(l.Y, graph.Edge{U: l.ID(t, r), V: l.ID(t+1, lv), W: e.W})
		}
	}

	// Stage 2: vertex filters.
	for v := 0; v < n; v++ {
		// Intermediate layers: unmatched-in-X vertices are removed.
		for t := 1; t < k; t++ {
			if !hasX[l.ID(t, v)] {
				l.Removed[l.ID(t, v)] = true
			}
		}
		// First layer: R vertices without an X edge survive only when free
		// in M and τA_1 = 0. L vertices without an X edge are isolated
		// (no Y edge reaches layer-0 L vertices) and are removed too.
		if !hasX[l.ID(0, v)] {
			keep := par.Side[v] && !par.M.IsMatched(v) && tau.AUnits[0] == 0
			if !keep {
				l.Removed[l.ID(0, v)] = true
			}
		}
		// Last layer: symmetric with L vertices.
		if !hasX[l.ID(k, v)] {
			keep := !par.Side[v] && !par.M.IsMatched(v) && tau.AUnits[k] == 0
			if !keep {
				l.Removed[l.ID(k, v)] = true
			}
		}
	}

	// Drop edges incident to removed vertices; collect interior X.
	l.X = l.filterEdges(l.X)
	l.Y = l.filterEdges(l.Y)
	for _, e := range l.X {
		t := l.LayerOf(e.U)
		if t >= 1 && t <= k-1 {
			l.InteriorX = append(l.InteriorX, e)
		}
	}
	return l
}

func (l *Layered) filterEdges(edges []graph.Edge) []graph.Edge {
	out := edges[:0]
	for _, e := range edges {
		if !l.Removed[e.U] && !l.Removed[e.V] {
			out = append(out, e)
		}
	}
	return out
}

// LPrimeEdges returns the edge set of L': the layered graph with the first
// and last layers' matched edges removed (Algorithm 4 line 4), i.e. the
// interior X edges plus all Y edges.
func (l *Layered) LPrimeEdges() []graph.Edge {
	out := make([]graph.Edge, 0, len(l.InteriorX)+len(l.Y))
	out = append(out, l.InteriorX...)
	out = append(out, l.Y...)
	return out
}

// SideOf returns the bipartition side of a layered vertex; layer copies
// inherit the side of the original vertex, which makes the layered graph
// bipartite (every X and Y edge crosses).
func (l *Layered) SideOf(id int) bool { return l.Par.Side[l.Orig(id)] }

// Sides materialises the side array over all layered ids.
func (l *Layered) Sides() []bool {
	side := make([]bool, l.TotalV)
	for id := range side {
		side[id] = l.SideOf(id)
	}
	return side
}

// MatchingLPrime returns ML', the current matching restricted to L' (the
// interior X edges), over layered ids.
func (l *Layered) MatchingLPrime() *graph.Matching {
	m := graph.NewMatching(l.TotalV)
	for _, e := range l.InteriorX {
		// Interior X edges of one layer are a subset of a matching and
		// layers are vertex-disjoint, so Add cannot fail.
		if err := m.Add(e); err != nil {
			panic(err)
		}
	}
	return m
}
