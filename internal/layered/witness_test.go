package layered

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestBlowUp(t *testing.T) {
	cycle := Walk{
		Vertices: []int{0, 1, 2, 3},
		Matched:  []bool{true, false, true, false},
		Weights:  []graph.Weight{24, 32, 24, 32},
	}
	blown, err := BlowUp(cycle, 2)
	if err != nil {
		t.Fatal(err)
	}
	if blown.Len() != 9 {
		t.Fatalf("blown length = %d, want 9 (2 traversals + closing edge)", blown.Len())
	}
	// Must alternate and both end edges are matched.
	for i := 1; i < blown.Len(); i++ {
		if blown.Matched[i] == blown.Matched[i-1] {
			t.Fatal("blow-up broke alternation")
		}
	}
	if !blown.Matched[0] || !blown.Matched[blown.Len()-1] {
		t.Fatal("blow-up must start and end with matched edges")
	}
}

func TestBlowUpRejectsOdd(t *testing.T) {
	odd := Walk{
		Vertices: []int{0, 1, 2},
		Matched:  []bool{true, false, true},
		Weights:  []graph.Weight{1, 2, 1},
	}
	if _, err := BlowUp(odd, 2); !errors.Is(err, ErrNotAlternating) {
		t.Errorf("odd cycle accepted: %v", err)
	}
}

// cycleSetup returns the canonical Section 1.1.2 instance.
func cycleSetup(t *testing.T) (*graph.Graph, *graph.Matching, Walk) {
	t.Helper()
	g := graph.New(4)
	g.MustAddEdge(0, 1, 24)
	g.MustAddEdge(1, 2, 32)
	g.MustAddEdge(2, 3, 24)
	g.MustAddEdge(3, 0, 32)
	m := graph.NewMatching(4)
	if err := m.Add(graph.Edge{U: 0, V: 1, W: 24}); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(graph.Edge{U: 2, V: 3, W: 24}); err != nil {
		t.Fatal(err)
	}
	cycle := Walk{
		Vertices: []int{0, 1, 2, 3},
		Matched:  []bool{true, false, true, false},
		Weights:  []graph.Weight{24, 32, 24, 32},
	}
	return g, m, cycle
}

func TestBuildWitnessCycleBlowUp(t *testing.T) {
	// Lemma 4.12, cycle case: the blown-up walk of the canonical 4-cycle is
	// captured at W=64 with the derived pair (3,3,3,3,3)/(4,4,4,4).
	g, m, cycle := cycleSetup(t)
	blown, err := BlowUp(cycle, 2)
	if err != nil {
		t.Fatal(err)
	}
	wit, err := BuildWitness(g.N(), g.Edges(), m, blown, 64, Params{})
	if err != nil {
		t.Fatal(err)
	}
	wantA := []int{3, 3, 3, 3, 3}
	wantB := []int{4, 4, 4, 4}
	if len(wit.Tau.AUnits) != len(wantA) {
		t.Fatalf("AUnits = %v", wit.Tau.AUnits)
	}
	for i := range wantA {
		if wit.Tau.AUnits[i] != wantA[i] {
			t.Fatalf("AUnits = %v, want %v", wit.Tau.AUnits, wantA)
		}
	}
	for i := range wantB {
		if wit.Tau.BUnits[i] != wantB[i] {
			t.Fatalf("BUnits = %v, want %v", wit.Tau.BUnits, wantB)
		}
	}
	// Alternating side assignment around the cycle.
	if wit.Side[0] == wit.Side[1] || wit.Side[1] == wit.Side[2] || wit.Side[2] == wit.Side[3] {
		t.Errorf("sides not alternating: %v", wit.Side)
	}
}

func TestBuildWitnessPath(t *testing.T) {
	// Lemma 4.12, path case (the Figure 1 instance): walk a-c-d-f with a, f
	// free; derived pair has zero end entries.
	g := graph.New(4) // a=0, c=1, d=2, f=3
	g.MustAddEdge(1, 2, 40)
	g.MustAddEdge(0, 1, 32)
	g.MustAddEdge(2, 3, 32)
	m := graph.NewMatching(4)
	if err := m.Add(graph.Edge{U: 1, V: 2, W: 40}); err != nil {
		t.Fatal(err)
	}
	walk := Walk{
		Vertices: []int{0, 1, 2, 3},
		Matched:  []bool{false, true, false},
		Weights:  []graph.Weight{32, 40, 32},
	}
	wit, err := BuildWitness(g.N(), g.Edges(), m, walk, 64, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if wit.Tau.AUnits[0] != 0 || wit.Tau.AUnits[2] != 0 {
		t.Errorf("end AUnits = %v, want zeros", wit.Tau.AUnits)
	}
	if wit.Tau.AUnits[1] != 5 { // ceil(40/8)
		t.Errorf("middle AUnit = %d, want 5", wit.Tau.AUnits[1])
	}
	if wit.Tau.BUnits[0] != 4 || wit.Tau.BUnits[1] != 4 { // floor(32/8)
		t.Errorf("BUnits = %v, want [4 4]", wit.Tau.BUnits)
	}
}

func TestBuildWitnessRejectsLossyWalk(t *testing.T) {
	// A walk whose rounding slack is non-positive must be refused as not
	// good — the soundness half of the construction.
	g := graph.New(4)
	g.MustAddEdge(1, 2, 40)
	g.MustAddEdge(0, 1, 16)
	g.MustAddEdge(2, 3, 16)
	m := graph.NewMatching(4)
	if err := m.Add(graph.Edge{U: 1, V: 2, W: 40}); err != nil {
		t.Fatal(err)
	}
	walk := Walk{
		Vertices: []int{0, 1, 2, 3},
		Matched:  []bool{false, true, false},
		Weights:  []graph.Weight{16, 40, 16}, // gain -8: must not be good
	}
	if _, err := BuildWitness(g.N(), g.Edges(), m, walk, 64, Params{}); !errors.Is(err, ErrNotGood) {
		t.Errorf("lossy walk accepted: %v", err)
	}
}

func TestBuildWitnessRejectsNonAlternating(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 1, 8)
	g.MustAddEdge(1, 2, 8)
	m := graph.NewMatching(3)
	walk := Walk{
		Vertices: []int{0, 1, 2},
		Matched:  []bool{false, false},
		Weights:  []graph.Weight{8, 8},
	}
	if _, err := BuildWitness(g.N(), g.Edges(), m, walk, 16, Params{}); !errors.Is(err, ErrNotAlternating) {
		t.Errorf("non-alternating walk accepted: %v", err)
	}
}

func TestBuildWitnessRandomPlantedOneAugs(t *testing.T) {
	// Property: every planted single-edge augmentation (free endpoints,
	// weight aligned to the grid) admits a witness, and the witness layered
	// graph yields exactly that augmenting edge.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		n := 10
		g := graph.New(n)
		u := rng.Intn(n)
		v := (u + 1 + rng.Intn(n-1)) % n
		w := graph.Weight(8 * (1 + rng.Intn(8))) // multiples of 8 for W=64
		g.MustAddEdge(u, v, w)
		m := graph.NewMatching(n)
		walk := Walk{
			Vertices: []int{u, v},
			Matched:  []bool{false},
			Weights:  []graph.Weight{w},
		}
		wit, err := BuildWitness(n, g.Edges(), m, walk, 64, Params{})
		if w < 16 {
			// One-unit edges are not good (τB >= 2g); skip.
			continue
		}
		if err != nil {
			t.Fatalf("trial %d (w=%d): %v", trial, w, err)
		}
		if len(wit.Layered.Y) != 1 {
			t.Fatalf("trial %d: Y edges = %v", trial, wit.Layered.Y)
		}
	}
}
