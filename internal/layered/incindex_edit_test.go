package layered

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// applyRandomEdit performs one graph mutation — insert, delete, or
// reweight — through the full protocol: graph first, matching in lockstep
// for matched edges, then the matching Note* call on the index.
func applyRandomEdit(t testing.TB, g *graph.Graph, m *graph.Matching, inc *IncIndex, maxW graph.Weight, rng *rand.Rand) {
	t.Helper()
	op := rng.Intn(3)
	if g.M() == 0 {
		op = 0
	}
	switch op {
	case 0: // insert
		u := rng.Intn(g.N())
		v := rng.Intn(g.N())
		if u == v {
			return
		}
		e := graph.Edge{U: u, V: v, W: 1 + graph.Weight(rng.Int63n(int64(maxW)))}
		if err := g.AddEdge(e); err != nil {
			t.Fatal(err)
		}
		inc.NoteInsert(g.Edges())
	case 1: // delete
		i := rng.Intn(g.M())
		e := g.EdgeAt(i)
		if m.Has(e.U, e.V) {
			if err := m.Remove(e.U, e.V); err != nil {
				t.Fatal(err)
			}
		}
		moved, err := g.RemoveEdgeAt(i)
		if err != nil {
			t.Fatal(err)
		}
		inc.NoteRemove(i, moved, g.Edges())
	case 2: // reweight
		i := rng.Intn(g.M())
		e := g.EdgeAt(i)
		w := 1 + graph.Weight(rng.Int63n(int64(maxW)))
		if err := g.SetEdgeWeight(i, w); err != nil {
			t.Fatal(err)
		}
		if m.Has(e.U, e.V) {
			if err := m.Reweight(e.U, e.V, w); err != nil {
				t.Fatal(err)
			}
		}
		inc.NoteReweight(i, g.Edges())
	}
}

// assertYGroupsMatch compares the grouped-Y partitions of two views over
// the full classification grid — content and order. The edited index may
// be revalidating a partition across rounds and edits; the fresh index
// builds it cold, so any unsound reuse (a missed change-clock charge, a
// stale bucket order after a swap-remove) shows up here.
func assertYGroupsMatch(t testing.TB, edited, fresh *IncView, maxU int) {
	t.Helper()
	cols := make([]int, 0, maxU+2)
	for c := 0; c <= maxU; c++ {
		cols = append(cols, c)
	}
	cols = append(cols, freeLBit)
	for u := 2; u <= maxU; u++ {
		for row := 0; row <= maxU; row++ {
			for _, col := range cols {
				got := edited.YGroup(u, row, col)
				want := fresh.YGroup(u, row, col)
				if !edgeSlicesEqual(got, want) {
					t.Fatalf("YGroup(%d,%d,%d): edited %v != fresh %v", u, row, col, got, want)
				}
			}
		}
	}
}

// TestIncIndexEditsMatchFresh drives an IncIndex through rounds with a
// random mutation batch between each pair of rounds and asserts that every
// class view is bit-identical to (a) a naive BucketIndex rebuild and (b) a
// fresh IncIndex built cold on the post-edit graph — buckets, counts,
// masks, and the grouped-Y partitions whose cross-round reuse the edit
// charges must invalidate. Sides are frozen on alternate rounds so the
// reuse path actually fires and the edits are what invalidates it.
func TestIncIndexEditsMatchFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 6; trial++ {
		n := 8 + rng.Intn(16)
		maxW := graph.Weight(1 << (3 + rng.Intn(4)))
		inst := graph.RandomGraph(n, 2*n, maxW, rng)
		g := inst.G
		prm := Params{Granularity: []float64{0.5, 0.25}[trial%2]}.WithDefaults()
		maxU, _ := prm.Units()
		ws := testClassWeights(g.Edges(), prm)
		inc := NewIncIndex(n, g.Edges(), ws, prm)
		m := graph.NewMatching(n)
		side := make([]bool, n)

		for round := 0; round < 6; round++ {
			for k := 0; k < 1+rng.Intn(3); k++ {
				if g.M() > 0 {
					mutateMatching(m, g.EdgeAt(rng.Intn(g.M())), byte(rng.Intn(256)))
				}
			}
			if err := inc.BeginEdits(); err != nil {
				t.Fatal(err)
			}
			for k := 0; k < rng.Intn(4); k++ {
				applyRandomEdit(t, g, m, inc, maxW, rng)
			}
			inc.EndEdits()

			if round%2 == 0 { // redraw; odd rounds keep the frozen sides
				for v := range side {
					side[v] = rng.Intn(2) == 1
				}
			}
			par := ParametrizeWithSide(n, g.Edges(), m, side)
			fresh := NewIncIndex(n, g.Edges(), ws, prm)
			if err := inc.BeginRound(par); err != nil {
				t.Fatal(err)
			}
			if err := fresh.BeginRound(par); err != nil {
				t.Fatal(err)
			}
			for c, w := range ws {
				ref := NewBucketIndex(par, w, prm)
				assertViewMatchesBucket(t, inc.View(c), ref, prm)
				if maxU < freeLBit {
					assertYGroupsMatch(t, inc.View(c), fresh.View(c), maxU)
				}
			}
		}
	}
}

// TestIncIndexBandCompaction hammers one index with reweights until the
// abandoned band slots dominate, and checks that EndEdits reclaims them
// without changing any bucket.
func TestIncIndexBandCompaction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 12
	inst := graph.RandomGraph(n, 3*n, 64, rng)
	g := inst.G
	prm := Params{Granularity: 0.25}.WithDefaults()
	ws := testClassWeights(g.Edges(), prm)
	inc := NewIncIndex(n, g.Edges(), ws, prm)
	m := graph.NewMatching(n)

	compacted := false
	for batch := 0; batch < 40; batch++ {
		if err := inc.BeginEdits(); err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 4; k++ {
			i := rng.Intn(g.M())
			w := 1 + graph.Weight(rng.Int63n(64))
			if err := g.SetEdgeWeight(i, w); err != nil {
				t.Fatal(err)
			}
			inc.NoteReweight(i, g.Edges())
		}
		dead := inc.bDead
		inc.EndEdits()
		if dead > 0 && inc.bDead == 0 {
			compacted = true
		}
	}
	if !compacted {
		t.Fatal("40 reweight batches never triggered a band compaction")
	}
	par := Parametrize(n, g.Edges(), m, rng)
	if err := inc.BeginRound(par); err != nil {
		t.Fatal(err)
	}
	for c, w := range ws {
		assertViewMatchesBucket(t, inc.View(c), NewBucketIndex(par, w, prm), prm)
	}
}

// TestBeginEditsBusy checks the exclusivity guard: an edit batch may not
// open while a round (or another batch) holds the index.
func TestBeginEditsBusy(t *testing.T) {
	g := graph.New(4)
	g.MustAddEdge(0, 1, 8)
	prm := Params{}.WithDefaults()
	inc := NewIncIndex(4, g.Edges(), testClassWeights(g.Edges(), prm), prm)
	if err := inc.BeginEdits(); err != nil {
		t.Fatal(err)
	}
	if err := inc.BeginEdits(); err != ErrBeginRoundBusy {
		t.Fatalf("nested BeginEdits: err = %v; want ErrBeginRoundBusy", err)
	}
	par := Parametrize(4, g.Edges(), graph.NewMatching(4), rand.New(rand.NewSource(1)))
	if err := inc.BeginRound(par); err != ErrBeginRoundBusy {
		t.Fatalf("BeginRound during edits: err = %v; want ErrBeginRoundBusy", err)
	}
	inc.EndEdits()
	if err := inc.BeginRound(par); err != nil {
		t.Fatalf("BeginRound after EndEdits: %v", err)
	}
}
