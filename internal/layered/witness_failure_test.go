package layered

import (
	"errors"
	"testing"

	"repro/internal/graph"
)

// Failure-path coverage for the Lemma 4.12 witness construction: every
// sentinel error must be reachable and returned for the malformed input it
// documents (the happy paths live in witness_test.go).

func TestBuildWitnessRejectsEmptyWalk(t *testing.T) {
	g := graph.New(2)
	m := graph.NewMatching(2)
	if _, err := BuildWitness(2, g.Edges(), m, Walk{}, 16, Params{}); !errors.Is(err, ErrNotAlternating) {
		t.Errorf("empty walk accepted: %v", err)
	}
}

func TestBuildWitnessRejectsSideConflict(t *testing.T) {
	// The triangle walk 0-1-2-0 with unmatched first and last edges needs
	// vertex 0 in R (tail of edge 0-1) and in L (head of edge 2-0) at once.
	g := graph.New(3)
	g.MustAddEdge(0, 1, 32)
	g.MustAddEdge(1, 2, 24)
	g.MustAddEdge(2, 0, 32)
	m := graph.NewMatching(3)
	if err := m.Add(graph.Edge{U: 1, V: 2, W: 24}); err != nil {
		t.Fatal(err)
	}
	walk := Walk{
		Vertices: []int{0, 1, 2, 0},
		Matched:  []bool{false, true, false},
		Weights:  []graph.Weight{32, 24, 32},
	}
	if _, err := BuildWitness(3, g.Edges(), m, walk, 64, Params{}); !errors.Is(err, ErrSideConflict) {
		t.Errorf("side-conflicted walk accepted: %v", err)
	}
}

func TestBuildWitnessRejectsUncapturedWalk(t *testing.T) {
	// The walk claims its middle edge is matched, but the matching is
	// empty: the middle layer keeps no vertex copy, so the walk's edges
	// cannot all survive and the certificate must fail as not captured.
	g := graph.New(4)
	g.MustAddEdge(0, 1, 32)
	g.MustAddEdge(1, 2, 40)
	g.MustAddEdge(2, 3, 32)
	m := graph.NewMatching(4)
	walk := Walk{
		Vertices: []int{0, 1, 2, 3},
		Matched:  []bool{false, true, false},
		Weights:  []graph.Weight{32, 40, 32},
	}
	if _, err := BuildWitness(4, g.Edges(), m, walk, 64, Params{}); !errors.Is(err, ErrNotCaptured) {
		t.Errorf("uncaptured walk accepted: %v", err)
	}
}

func TestBuildWitnessRejectsOverweightMatched(t *testing.T) {
	// A matched weight above W rounds to a unit past maxU, violating the
	// Table-1 range constraint (C): the derived pair is not good.
	g := graph.New(4)
	g.MustAddEdge(0, 1, 32)
	g.MustAddEdge(1, 2, 100)
	g.MustAddEdge(2, 3, 32)
	m := graph.NewMatching(4)
	if err := m.Add(graph.Edge{U: 1, V: 2, W: 100}); err != nil {
		t.Fatal(err)
	}
	walk := Walk{
		Vertices: []int{0, 1, 2, 3},
		Matched:  []bool{false, true, false},
		Weights:  []graph.Weight{32, 100, 32},
	}
	if _, err := BuildWitness(4, g.Edges(), m, walk, 64, Params{}); !errors.Is(err, ErrNotGood) {
		t.Errorf("overweight matched edge accepted: %v", err)
	}
}

func TestBlowUpRejectsUnmatchedStart(t *testing.T) {
	cycle := Walk{
		Vertices: []int{0, 1, 2, 3},
		Matched:  []bool{false, true, false, true},
		Weights:  []graph.Weight{32, 24, 32, 24},
	}
	if _, err := BlowUp(cycle, 2); !errors.Is(err, ErrNotAlternating) {
		t.Errorf("unmatched-start cycle accepted: %v", err)
	}
}

func TestBlowUpRejectsEmptyCycle(t *testing.T) {
	if _, err := BlowUp(Walk{Vertices: []int{0}}, 2); !errors.Is(err, ErrNotAlternating) {
		t.Errorf("empty cycle accepted: %v", err)
	}
}
