package layered

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// testClassWeights builds a descending class-weight list around the
// instance scale: the geometric sweep plus the anchored family, the same
// shape core.ClassWeights produces (not imported to keep the package
// dependency direction).
func testClassWeights(edges []graph.Edge, prm Params) []float64 {
	maxW, minW := 0.0, 0.0
	for _, e := range edges {
		w := float64(e.W)
		if w > maxW {
			maxW = w
		}
		if minW == 0 || w < minW {
			minW = w
		}
	}
	if maxW <= 0 {
		return nil
	}
	var ws []float64
	for w := maxW * float64(prm.MaxLayers+1); w >= minW/4; w /= 2 {
		ws = append(ws, w)
	}
	maxU, _ := prm.Units()
	for u := 2; u <= maxU; u++ {
		ws = append(ws, maxW/(prm.Granularity*float64(u)))
	}
	// Descending order is the one structural requirement of IncIndex (the
	// per-edge live classes must form contiguous bands).
	for i := 1; i < len(ws); i++ {
		for j := i; j > 0 && ws[j] > ws[j-1]; j-- {
			ws[j], ws[j-1] = ws[j-1], ws[j]
		}
	}
	return ws
}

// assertViewMatchesBucket compares one class view of the incremental index
// against a freshly rebuilt BucketIndex: identical edge sequences for every
// unit the enumeration can query, identical counts, and identical masks up
// to the documented bMask bits 0 and 1.
func assertViewMatchesBucket(t testing.TB, v *IncView, ref *BucketIndex, prm Params) {
	t.Helper()
	maxU, _ := prm.Units()
	for u := 1; u <= maxU; u++ {
		if got, want := v.A(u), ref.A(u); !edgeSlicesEqual(got, want) {
			t.Fatalf("A(%d): incremental %v != rebuild %v", u, got, want)
		}
		if got, want := v.ACount(u), ref.ACount(u); got != want {
			t.Fatalf("ACount(%d): %d != %d", u, got, want)
		}
	}
	for u := 2; u <= maxU; u++ {
		if got, want := v.B(u), ref.B(u); !edgeSlicesEqual(got, want) {
			t.Fatalf("B(%d): incremental %v != rebuild %v", u, got, want)
		}
		if got, want := v.BCount(u), ref.BCount(u); got != want {
			t.Fatalf("BCount(%d): %d != %d", u, got, want)
		}
	}
	ia, ib, iok := v.Masks()
	ra, rb, rok := ref.Masks()
	if iok != rok {
		t.Fatalf("Masks ok: %v != %v", iok, rok)
	}
	if iok {
		if ia != ra {
			t.Fatalf("aMask: %b != %b", ia, ra)
		}
		if ib != rb&^0b11 {
			t.Fatalf("bMask: %b != %b (bits >= 2)", ib, rb&^0b11)
		}
	}
}

func edgeSlicesEqual(a, b []graph.Edge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// mutateMatching toggles the matched status of edge e: a matched pair is
// removed, a pair with both endpoints free is added — occasionally with a
// perturbed weight, exercising the convention that the matching's weight,
// not the graph's, feeds the τA windows.
func mutateMatching(m *graph.Matching, e graph.Edge, perturb byte) {
	if m.Has(e.U, e.V) {
		if err := m.Remove(e.U, e.V); err != nil {
			panic(err)
		}
		return
	}
	if m.IsMatched(e.U) || m.IsMatched(e.V) {
		return
	}
	if perturb%4 == 0 {
		e.W = graph.Weight(perturb) + 1
	}
	if err := m.Add(e); err != nil {
		panic(err)
	}
}

// TestIncIndexMatchesBucketIndex drives an IncIndex through simulated
// rounds — matching deltas, fresh bipartitions — and asserts every class
// view equals a from-scratch BucketIndex rebuild, and that BuildIndexed
// over the view reproduces the rebuild's layered graph exactly.
func TestIncIndexMatchesBucketIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 8; trial++ {
		n := 8 + rng.Intn(24)
		inst := graph.RandomGraph(n, 3*n, graph.Weight(1<<(3+rng.Intn(5))), rng)
		edges := inst.G.Edges()
		prm := Params{Granularity: []float64{0.5, 0.25, 0.125, 0.0625}[trial%4]}.WithDefaults()
		ws := testClassWeights(edges, prm)
		inc := NewIncIndex(n, edges, ws, prm)
		m := graph.NewMatching(n)

		for round := 0; round < 5; round++ {
			for k := 0; k < 1+rng.Intn(4); k++ {
				mutateMatching(m, edges[rng.Intn(len(edges))], byte(rng.Intn(256)))
			}
			par := Parametrize(n, edges, m, rng)
			inc.BeginRound(par)
			for c, w := range ws {
				ref := NewBucketIndex(par, w, prm)
				v := inc.View(c)
				assertViewMatchesBucket(t, v, ref, prm)

				aMask, bMask, ok := ref.Masks()
				if !ok {
					continue
				}
				pairs := EnumerateGoodPairsMasked(prm, aMask, bMask, 40)
				for _, tau := range pairs {
					layRef := BuildIndexed(ref, tau, nil)
					if got, want := v.ProbeY(tau), len(layRef.Y) > 0; got != want {
						t.Fatalf("trial %d round %d class %d: ProbeY=%v, want %v (tau %+v)",
							trial, round, c, got, want, tau)
					}
					layInc := BuildIndexed(v, tau, nil)
					if layInc.NumV != layRef.NumV ||
						!edgeSlicesEqual(layInc.X, layRef.X) ||
						!edgeSlicesEqual(layInc.Y, layRef.Y) ||
						!edgeSlicesEqual(layInc.InteriorX, layRef.InteriorX) {
						t.Fatalf("trial %d round %d class %d tau %+v: layered graphs differ",
							trial, round, c, tau)
					}
				}
			}
		}
	}
}

// TestIncIndexPairKeySharing checks the cache-key contract on a workload
// engineered to produce cross-class duplicates (a single repeated weight):
// equal PairKeys must mean equal layered graphs, and at least one pair of
// classes must actually share a key.
func TestIncIndexPairKeySharing(t *testing.T) {
	g := graph.New(8)
	for i := 0; i < 8; i += 2 {
		g.MustAddEdge(i, i+1, 64)
		g.MustAddEdge(i, (i+3)%8, 64)
	}
	edges := g.Edges()
	prm := Params{}.WithDefaults()
	// W=64 and W=60 put weight-64 edges in the same unmatched unit
	// (floor(64/8) = floor(64/7.5) = 8), so their single good pair shares
	// one layered graph; W=128 windows the edges at unit 4 and must not.
	ws := []float64{128, 64, 60}
	inc := NewIncIndex(8, edges, ws, prm)
	m := graph.NewMatching(8)
	rng := rand.New(rand.NewSource(3))
	par := Parametrize(8, edges, m, rng)
	inc.BeginRound(par)

	type keyed struct {
		c   int
		tau TauPair
	}
	byKey := map[string][]keyed{}
	for c := range ws {
		v := inc.View(c)
		aMask, bMask, _ := v.Masks()
		for _, tau := range EnumerateGoodPairsMasked(prm, aMask, bMask, 100) {
			key := string(v.PairKey(tau, nil))
			byKey[key] = append(byKey[key], keyed{c: c, tau: tau})
		}
	}
	shared := false
	for _, ks := range byKey {
		classes := map[int]bool{}
		for _, k := range ks {
			classes[k.c] = true
		}
		if len(classes) > 1 {
			shared = true
		}
		first := BuildIndexed(inc.View(ks[0].c), ks[0].tau, nil)
		for _, k := range ks[1:] {
			lay := BuildIndexed(inc.View(k.c), k.tau, nil)
			if lay.NumV != first.NumV ||
				!edgeSlicesEqual(lay.X, first.X) ||
				!edgeSlicesEqual(lay.Y, first.Y) {
				t.Fatalf("equal PairKey but different layered graphs (classes %d vs %d)",
					ks[0].c, k.c)
			}
		}
	}
	if !shared {
		t.Error("uniform-weight workload produced no cross-class key sharing")
	}
}

// FuzzIncrementalIndex mutates edge weights and matched status and
// cross-checks the three builders against each other: the incremental
// views against from-scratch BucketIndex rebuilds, and BuildIndexed over
// both against the dense-id reference builder of reference.go.
func FuzzIncrementalIndex(f *testing.F) {
	f.Add(int64(1), uint8(2), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(int64(2), uint8(1), []byte{0xff, 0x80, 0x10, 9, 9, 9})
	f.Add(int64(3), uint8(3), []byte{})
	f.Fuzz(func(t *testing.T, seed int64, granSel uint8, script []byte) {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(14)
		inst := graph.RandomGraph(n, 2*n, 1<<6, rng)
		edges := inst.G.Edges()
		if len(edges) == 0 {
			t.Skip()
		}
		prm := Params{Granularity: []float64{0.5, 0.25, 0.125, 0.0625}[granSel%4]}.WithDefaults()
		ws := testClassWeights(edges, prm)
		inc := NewIncIndex(n, edges, ws, prm)
		m := graph.NewMatching(n)

		// The script drives rounds: each byte pair toggles one edge's
		// matched status (with occasional weight perturbation), a zero byte
		// ends the round.
		round := func(start int) int {
			i := start
			for ; i+1 < len(script) && script[i] != 0; i += 2 {
				mutateMatching(m, edges[int(script[i])%len(edges)], script[i+1])
			}
			return i + 1
		}
		pos := 0
		for r := 0; r < 4; r++ {
			pos = round(pos)
			side := make([]bool, n)
			for v := range side {
				side[v] = rng.Intn(2) == 1
			}
			par := ParametrizeWithSide(n, edges, m, side)
			inc.BeginRound(par)
			for c, w := range ws {
				if c%3 != r%3 { // subsample classes per round for speed
					continue
				}
				ref := NewBucketIndex(par, w, prm)
				v := inc.View(c)
				assertViewMatchesBucket(t, v, ref, prm)

				aMask, bMask, ok := ref.Masks()
				if !ok {
					continue
				}
				for _, tau := range EnumerateGoodPairsMasked(prm, aMask, bMask, 12) {
					layRef := BuildIndexed(ref, tau, nil)
					if got, want := v.ProbeY(tau), len(layRef.Y) > 0; got != want {
						t.Fatalf("ProbeY=%v, want %v (tau %+v, W=%v)", got, want, tau, w)
					}
					layInc := BuildIndexed(v, tau, nil)
					if layInc.NumV != layRef.NumV ||
						!edgeSlicesEqual(layInc.X, layRef.X) ||
						!edgeSlicesEqual(layInc.Y, layRef.Y) {
						t.Fatalf("incremental build differs (tau %+v, W=%v)", tau, w)
					}
					dense := BuildReference(par, tau, w, prm)
					assertSameEdges(t, "X", layRef, layRef.X, dense, dense.X)
					assertSameEdges(t, "Y", layRef, layRef.Y, dense, dense.Y)
					assertSameEdges(t, "InteriorX", layRef, layRef.InteriorX, dense, dense.InteriorX)
				}
			}
		}
	})
}
