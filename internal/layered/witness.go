package layered

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/graph"
)

// This file implements the constructive content of Lemma 4.12: given a
// short weighted augmentation (an alternating path, or a cycle presented as
// its blown-up walk, Section 1.1.2), produce the bipartition, the good
// (τA, τB) pair, and verify that the resulting layered graph contains the
// walk. Tests and the E8 experiment use it to check that every structured
// augmentation is capturable, which is the coverage half of Theorem 4.8.

// Witness is a constructed Lemma 4.12 certificate.
type Witness struct {
	Side []bool
	Tau  TauPair
	W    float64
	// Layered is the graph built from the witness; it contains every edge
	// of the walk in its designated layer.
	Layered *Layered
}

var (
	// ErrNotAlternating is returned when the walk does not alternate
	// matched/unmatched edges.
	ErrNotAlternating = errors.New("layered: walk does not alternate")
	// ErrSideConflict is returned when no bipartition orients every
	// unmatched edge forward (cannot happen for simple alternating paths
	// and even-cycle blow-ups; it guards malformed inputs).
	ErrSideConflict = errors.New("layered: inconsistent side assignment")
	// ErrNotGood is returned when the derived τ pair violates Table 1 —
	// at coarse granularity the rounding slack of the walk is too small
	// (the paper's fine granularity makes this vanish).
	ErrNotGood = errors.New("layered: derived tau pair is not good")
	// ErrNotCaptured is returned when an edge of the walk is filtered out
	// of its designated layer.
	ErrNotCaptured = errors.New("layered: walk edge missing from layered graph")
)

// BlowUp repeats an alternating cycle d times and closes with its first
// matched edge, producing the repeated walk of Section 1.1.2 whose layered
// representation captures the augmenting cycle. The input walk must start
// with a matched edge and have even length (an alternating cycle
// m, u, m, u, ...), with Vertices listing the cycle once without repeating
// the start.
func BlowUp(cycle Walk, d int) (Walk, error) {
	t := cycle.Len()
	if t == 0 || t%2 != 0 {
		return Walk{}, fmt.Errorf("%w: cycle length %d", ErrNotAlternating, t)
	}
	if !cycle.Matched[0] {
		return Walk{}, fmt.Errorf("%w: cycle must start with a matched edge", ErrNotAlternating)
	}
	var out Walk
	out.Vertices = append(out.Vertices, cycle.Vertices[0])
	for rep := 0; rep < d; rep++ {
		for i := 0; i < t; i++ {
			out.Vertices = append(out.Vertices, cycle.Vertices[(i+1)%len(cycle.Vertices)])
			out.Matched = append(out.Matched, cycle.Matched[i])
			out.Weights = append(out.Weights, cycle.Weights[i])
		}
	}
	// Close with the first matched edge once more: e1 o1 e2 o2 ... e1.
	out.Vertices = append(out.Vertices, cycle.Vertices[1])
	out.Matched = append(out.Matched, cycle.Matched[0])
	out.Weights = append(out.Weights, cycle.Weights[0])
	return out, nil
}

// BuildWitness derives the Lemma 4.12 certificate for an alternating walk
// at class weight w: the bipartition that orients every unmatched edge
// forward, the τ pair obtained by rounding matched weights up and unmatched
// weights down to the granularity grid, and the layered graph built from
// them. The walk must alternate and begin and end with matched edges
// (pad free endpoints by omission: a walk starting with an unmatched edge
// gets τA_1 = 0, which requires its first vertex to be free in m).
func BuildWitness(n int, edges []graph.Edge, m *graph.Matching, walk Walk, w float64, prm Params) (*Witness, error) {
	prm = prm.WithDefaults()
	if walk.Len() == 0 {
		return nil, fmt.Errorf("%w: empty walk", ErrNotAlternating)
	}
	for i := 1; i < walk.Len(); i++ {
		if walk.Matched[i] == walk.Matched[i-1] {
			return nil, fmt.Errorf("%w: edges %d and %d", ErrNotAlternating, i-1, i)
		}
	}

	side, err := orientSides(n, walk)
	if err != nil {
		return nil, err
	}
	tau, err := deriveTau(walk, w, prm)
	if err != nil {
		return nil, err
	}
	if !tau.IsGood(prm) {
		return nil, fmt.Errorf("%w: %+v at W=%v", ErrNotGood, tau, w)
	}

	par := ParametrizeWithSide(n, edges, m, side)
	lay := Build(par, tau, w, prm)
	if err := verifyCaptured(lay, walk, tau); err != nil {
		return nil, err
	}
	return &Witness{Side: side, Tau: tau, W: w, Layered: lay}, nil
}

// orientSides assigns L/R so every unmatched edge runs R→L in walk order
// (the proof's alternating assignment). Vertices off the walk default to L.
func orientSides(n int, walk Walk) ([]bool, error) {
	side := make([]bool, n)
	assigned := make(map[int]bool, len(walk.Vertices))
	set := func(v int, r bool) error {
		if prev, ok := assigned[v]; ok {
			if prev != r {
				return fmt.Errorf("%w: vertex %d", ErrSideConflict, v)
			}
			return nil
		}
		assigned[v] = r
		side[v] = r
		return nil
	}
	for i := 0; i < walk.Len(); i++ {
		u, v := walk.Vertices[i], walk.Vertices[i+1]
		if walk.Matched[i] {
			continue // matched edges only need to cross; fixed by others
		}
		if err := set(u, true); err != nil { // tail in R
			return nil, err
		}
		if err := set(v, false); err != nil { // head in L
			return nil, err
		}
	}
	// Matched edges must cross: fix any endpoint not yet assigned.
	for i := 0; i < walk.Len(); i++ {
		if !walk.Matched[i] {
			continue
		}
		u, v := walk.Vertices[i], walk.Vertices[i+1]
		au, okU := assigned[u]
		av, okV := assigned[v]
		switch {
		case okU && okV:
			if au == av {
				return nil, fmt.Errorf("%w: matched edge %d-%d", ErrSideConflict, u, v)
			}
		case okU:
			if err := set(v, !au); err != nil {
				return nil, err
			}
		case okV:
			if err := set(u, !av); err != nil {
				return nil, err
			}
		default:
			if err := set(u, false); err != nil {
				return nil, err
			}
			if err := set(v, true); err != nil {
				return nil, err
			}
		}
	}
	return side, nil
}

// deriveTau rounds the walk's matched weights up and unmatched weights down
// to the grid, as in the Lemma 4.12 proof. Leading/trailing unmatched edges
// get flanking τA = 0 entries (free endpoints).
func deriveTau(walk Walk, w float64, prm Params) (TauPair, error) {
	gw := prm.Granularity * w
	var tau TauPair
	if !walk.Matched[0] {
		tau.AUnits = append(tau.AUnits, 0)
	}
	for i := 0; i < walk.Len(); i++ {
		if walk.Matched[i] {
			tau.AUnits = append(tau.AUnits, int(math.Ceil(float64(walk.Weights[i])/gw)))
		} else {
			tau.BUnits = append(tau.BUnits, int(math.Floor(float64(walk.Weights[i])/gw)))
		}
	}
	if !walk.Matched[walk.Len()-1] {
		tau.AUnits = append(tau.AUnits, 0)
	}
	if len(tau.AUnits) != len(tau.BUnits)+1 {
		return tau, fmt.Errorf("%w: %d matched vs %d unmatched layers",
			ErrNotAlternating, len(tau.AUnits), len(tau.BUnits))
	}
	return tau, nil
}

// verifyCaptured checks that every walk edge survives the filters in its
// designated layer of lay.
func verifyCaptured(lay *Layered, walk Walk, tau TauPair) error {
	hasX := make(map[graph.Edge]bool, len(lay.X))
	for _, e := range lay.X {
		hasX[e.Canonical()] = true
	}
	hasY := make(map[graph.Edge]bool, len(lay.Y))
	for _, e := range lay.Y {
		hasY[e.Canonical()] = true
	}
	// Matched edges live inside the current layer; each unmatched edge
	// advances to the next layer. A walk starting with an unmatched edge
	// leaves the implicit τA_1 = 0 layer, which holds no matched edges.
	layer := 0
	for i := 0; i < walk.Len(); i++ {
		u, v := walk.Vertices[i], walk.Vertices[i+1]
		if walk.Matched[i] {
			le := graph.Edge{U: lay.ID(layer, u), V: lay.ID(layer, v), W: walk.Weights[i]}.Canonical()
			if !hasX[le] {
				return fmt.Errorf("%w: matched edge %d-%d in layer %d", ErrNotCaptured, u, v, layer)
			}
		} else {
			le := graph.Edge{U: lay.ID(layer, u), V: lay.ID(layer+1, v), W: walk.Weights[i]}.Canonical()
			if !hasY[le] {
				return fmt.Errorf("%w: unmatched edge %d-%d between layers %d,%d",
					ErrNotCaptured, u, v, layer, layer+1)
			}
			layer++
		}
	}
	return nil
}
