package unwaug

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/stream"
)

func TestRecoversPlantedPaths(t *testing.T) {
	// All planted paths vertex-disjoint; the stream contains exactly the
	// support edges, so the finder must recover a large fraction.
	rng := rand.New(rand.NewSource(1))
	for _, beta := range []float64{0.25, 0.5, 1.0} {
		inst, m0 := graph.ThreeAugWorkload(100, beta, 0, rng)
		f := New(m0, beta)
		s := stream.RandomOrder(inst.G, rng)
		for e, ok := s.Next(); ok; e, ok = s.Next() {
			if !m0.Has(e.U, e.V) {
				f.Feed(e)
			}
		}
		paths := f.Finalize()
		want := int(beta * beta / 32 * float64(m0.Size()))
		if len(paths) < want {
			t.Errorf("beta=%v: recovered %d paths, lemma requires >= %d", beta, len(paths), want)
		}
		// On this noiseless workload the support set contains every planted
		// path, so recovery should in fact be perfect.
		planted := int(beta * float64(100))
		if len(paths) != planted {
			t.Errorf("beta=%v: recovered %d, planted %d", beta, len(paths), planted)
		}
	}
}

func TestPathsAreVertexDisjointAndApply(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	inst, m0 := graph.ThreeAugWorkload(60, 0.7, 200, rng)
	f := New(m0, 0.7)
	s := stream.RandomOrder(inst.G, rng)
	for e, ok := s.Next(); ok; e, ok = s.Next() {
		if !m0.Has(e.U, e.V) {
			f.Feed(e)
		}
	}
	paths := f.Finalize()
	seen := make(map[int]bool)
	m := m0.Clone()
	for _, p := range paths {
		for _, v := range [4]int{p.A, p.U, p.V, p.B} {
			if seen[v] {
				t.Fatalf("vertex %d reused across paths", v)
			}
			seen[v] = true
		}
		if _, err := graph.Apply(m, p.Augmentation()); err != nil {
			t.Fatalf("path does not apply: %v", err)
		}
	}
	if m.Size() != m0.Size()+len(paths) {
		t.Errorf("size %d, want %d", m.Size(), m0.Size()+len(paths))
	}
}

func TestSpaceBound(t *testing.T) {
	// |S| <= 4|M| regardless of stream length (each matched vertex keeps at
	// most 2 support edges).
	rng := rand.New(rand.NewSource(3))
	inst, m0 := graph.ThreeAugWorkload(50, 1.0, 5000, rng)
	f := New(m0, 0.5)
	for _, e := range inst.G.Edges() {
		if !m0.Has(e.U, e.V) {
			f.Feed(e)
		}
	}
	if f.SupportSize() > 4*m0.Size() {
		t.Errorf("|S| = %d exceeds 4|M| = %d", f.SupportSize(), 4*m0.Size())
	}
}

func TestIgnoresNonCandidateEdges(t *testing.T) {
	m := graph.NewMatching(6)
	if err := m.Add(graph.Edge{U: 0, V: 1, W: 1}); err != nil {
		t.Fatal(err)
	}
	f := New(m, 0.5)
	f.Feed(graph.Edge{U: 0, V: 1, W: 1}) // matched-matched
	f.Feed(graph.Edge{U: 2, V: 3, W: 1}) // free-free
	if f.SupportSize() != 0 {
		t.Errorf("support = %d, want 0", f.SupportSize())
	}
	f.Feed(graph.Edge{U: 2, V: 0, W: 1}) // free-matched: kept
	if f.SupportSize() != 1 {
		t.Errorf("support = %d, want 1", f.SupportSize())
	}
	if f.FedEdges() != 3 {
		t.Errorf("fed = %d", f.FedEdges())
	}
}

func TestDegreeCaps(t *testing.T) {
	// Matched vertex keeps at most 2 support edges; a free vertex at most
	// lambda.
	m := graph.NewMatching(20)
	if err := m.Add(graph.Edge{U: 0, V: 1, W: 1}); err != nil {
		t.Fatal(err)
	}
	f := New(m, 1.0) // lambda = 8
	for free := 2; free < 12; free++ {
		f.Feed(graph.Edge{U: free, V: 0, W: 1})
	}
	if got := len(f.support[0]); got != 2 {
		t.Errorf("matched vertex kept %d support edges, want 2", got)
	}
	// A single free vertex hammering many matched vertices is capped at
	// lambda.
	m2 := graph.NewMatching(40)
	for i := 0; i < 19; i++ {
		if err := m2.Add(graph.Edge{U: 2 * i, V: 2*i + 1, W: 1}); err != nil {
			t.Fatal(err)
		}
	}
	f2 := New(m2, 1.0) // lambda = 8
	free := 39         // unmatched (19 edges cover 0..37)
	for i := 0; i < 19; i++ {
		f2.Feed(graph.Edge{U: free, V: 2 * i, W: 1})
	}
	if f2.degS[free] != 8 {
		t.Errorf("free vertex degree = %d, want lambda=8", f2.degS[free])
	}
}

func TestBadBetaDefaults(t *testing.T) {
	m := graph.NewMatching(2)
	f := New(m, -3)
	if f.lambda < 2 {
		t.Errorf("lambda = %d", f.lambda)
	}
	f = New(m, 2.5)
	if f.lambda != 8 {
		t.Errorf("lambda = %d, want 8 for clamped beta=1", f.lambda)
	}
}
