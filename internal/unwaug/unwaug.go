// Package unwaug implements Unw-3-Aug-Paths, the streaming algorithm of
// Lemma 3.1 (based on Kale–Tirodkar [KT17]): initialised with a matching M
// and a parameter β, it watches a stream of edges and maintains a bounded
// support set S; if the stream contains at least β·|M| vertex-disjoint
// 3-augmenting paths, finalisation returns at least (β²/32)·|M| of them
// using O(|M|) space.
package unwaug

import (
	"repro/internal/graph"
	"repro/internal/matchutil"
	"repro/internal/stream"
)

// Finder is one Unw-3-Aug-Paths instance. Construct with New, or revive a
// used one with Reset (the degree array and support table are arenas that
// survive reuse across runs).
type Finder struct {
	m      *graph.Matching
	lambda int
	// degS[v] = number of support edges incident to v. Unmatched vertices
	// are capped at lambda, matched vertices at 2 (the Appendix A.1 rule).
	degS []int
	// support[v] holds the support edges kept at matched vertex v (at most
	// 2 each), so |S| <= 4|M| and total space is O(|M|) + O(active free
	// vertices), as in the lemma.
	support map[int][]graph.Edge
	fed     int
	acct    *stream.Accountant
}

// New returns a finder for matching m with parameter beta in (0, 1].
// Following the proof of Lemma 3.1 it uses lambda = 8/beta.
func New(m *graph.Matching, beta float64) *Finder {
	f := &Finder{}
	f.Reset(m, beta)
	return f
}

// Reset reinitialises f around m and beta, keeping its arenas. Reusing a
// finder across runs (the per-weight-class pools of Wgt-Aug-Paths) avoids
// re-allocating the O(n) degree array and the support table every run.
func (f *Finder) Reset(m *graph.Matching, beta float64) {
	if beta <= 0 || beta > 1 {
		beta = 1
	}
	lambda := int(8 / beta)
	if lambda < 2 {
		lambda = 2
	}
	f.m = m
	f.lambda = lambda
	if cap(f.degS) < m.N() {
		f.degS = make([]int, m.N())
	} else {
		f.degS = f.degS[:m.N()]
		clear(f.degS)
	}
	if f.support == nil {
		f.support = make(map[int][]graph.Edge, m.Size()*2)
	} else {
		clear(f.support)
	}
	f.fed = 0
	f.acct = nil
}

// SetAccountant registers a as the resource-accounting authority: every
// kept support edge is charged to it as one held word (the |S| <= 4|M|
// space of Lemma 3.1).
func (f *Finder) SetAccountant(a *stream.Accountant) { f.acct = a }

// Matching returns the initial matching the finder was built around.
func (f *Finder) Matching() *graph.Matching { return f.m }

// Feed offers one stream edge. Edges between two matched or two unmatched
// vertices are ignored; an unmatched–matched edge (u, v) joins the support
// set when deg_S(u) < lambda and deg_S(v) < 2.
func (f *Finder) Feed(e graph.Edge) {
	f.fed++
	um, vm := f.m.IsMatched(e.U), f.m.IsMatched(e.V)
	if um == vm {
		return
	}
	free, matched := e.U, e.V
	if um {
		free, matched = e.V, e.U
	}
	if f.degS[free] >= f.lambda || f.degS[matched] >= 2 {
		return
	}
	f.degS[free]++
	f.degS[matched]++
	f.support[matched] = append(f.support[matched], e)
	if f.acct != nil {
		f.acct.Hold(1)
	}
}

// SupportSize returns |S|, the number of stored support edges.
func (f *Finder) SupportSize() int {
	total := 0
	for _, edges := range f.support {
		total += len(edges)
	}
	return total
}

// FedEdges returns how many edges have been offered.
func (f *Finder) FedEdges() int { return f.fed }

// Finalize greedily extracts vertex-disjoint 3-augmenting paths a–u–v–b from
// S ∪ M: (u,v) in M, a–u and v–b in S, a ≠ b, all four vertices unused by
// previously selected paths.
func (f *Finder) Finalize() []matchutil.ThreeAugPath {
	used := make(map[int]bool, 4*f.m.Size())
	var out []matchutil.ThreeAugPath
	for u := 0; u < f.m.N(); u++ {
		v := f.m.Mate(u)
		if v == graph.Unmatched || v < u || used[u] || used[v] {
			continue
		}
		a, wa := f.pickFree(u, -1, used)
		b, wb := f.pickFree(v, a, used)
		if a < 0 || b < 0 {
			// Try the symmetric orientation: the only free neighbour of u
			// might be needed at v's side instead.
			a, wa = f.pickFree(v, -1, used)
			b, wb = f.pickFree(u, a, used)
			if a < 0 || b < 0 {
				continue
			}
			out = append(out, matchutil.ThreeAugPath{
				A: a, U: v, V: u, B: b,
				WA: wa, WM: f.m.EdgeWeightAt(u), WB: wb,
			})
			used[a], used[u], used[v], used[b] = true, true, true, true
			continue
		}
		out = append(out, matchutil.ThreeAugPath{
			A: a, U: u, V: v, B: b,
			WA: wa, WM: f.m.EdgeWeightAt(u), WB: wb,
		})
		used[a], used[u], used[v], used[b] = true, true, true, true
	}
	return out
}

// pickFree returns a free (unmatched, unused) support neighbour of matched
// vertex v other than exclude, with the support edge weight.
func (f *Finder) pickFree(v, exclude int, used map[int]bool) (int, graph.Weight) {
	for _, e := range f.support[v] {
		free := e.Other(v)
		if free != exclude && !used[free] && !f.m.IsMatched(free) {
			return free, e.W
		}
	}
	return -1, 0
}
