package stream_test

// The FileStream differential net: a disk-backed stream must be
// bit-indistinguishable from a SliceStream over the same edges — same
// edges in the same order, same Len, and the same Passes() trajectory
// under any interleaving of Next and Reset — and a damaged file must
// degrade to an error at Open, never to a wrong stream (Invariant 27,
// stream half; DESIGN.md PR 10).

import (
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/graph"
	"repro/internal/solvertest"
	"repro/internal/stream"
)

func writeTempStream(t *testing.T, n int, edges []graph.Edge) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "s.estream")
	if err := stream.WriteFileEdges(path, n, edges); err != nil {
		t.Fatalf("WriteFileEdges: %v", err)
	}
	return path
}

func drain(t *testing.T, s stream.EdgeStream) []graph.Edge {
	t.Helper()
	var out []graph.Edge
	for e, ok := s.Next(); ok; e, ok = s.Next() {
		out = append(out, e)
	}
	return out
}

// TestFileStreamMatchesSliceStream is the differential harness over the
// solvertest families: every family's edge list round-trips through disk
// and the two stream kinds stay bit-identical over multiple passes,
// including a mid-pass Reset.
func TestFileStreamMatchesSliceStream(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, w := range solvertest.Workloads(rng) {
		t.Run(w.Name, func(t *testing.T) {
			edges := w.G.Edges()
			path := writeTempStream(t, w.G.N(), edges)
			fs, err := stream.OpenFile(path)
			if err != nil {
				t.Fatalf("OpenFile: %v", err)
			}
			defer fs.Close()
			ss := stream.FromEdges(edges)

			if fs.Len() != ss.Len() {
				t.Fatalf("Len: file %d slice %d", fs.Len(), ss.Len())
			}
			if fs.N() != w.G.N() {
				t.Fatalf("N: got %d want %d", fs.N(), w.G.N())
			}
			for pass := 0; pass < 3; pass++ {
				fe, se := drain(t, fs), drain(t, ss)
				if len(fe) != len(se) {
					t.Fatalf("pass %d: file %d edges, slice %d", pass, len(fe), len(se))
				}
				for i := range fe {
					if fe[i] != se[i] {
						t.Fatalf("pass %d edge %d: file %v slice %v", pass, i, fe[i], se[i])
					}
				}
				if fs.Passes() != ss.Passes() {
					t.Fatalf("pass %d: Passes file %d slice %d", pass, fs.Passes(), ss.Passes())
				}
				fs.Reset()
				ss.Reset()
			}

			// Mid-pass Reset must not advance either counter differently.
			fs.Next()
			ss.Next()
			fs.Reset()
			ss.Reset()
			fs.Next()
			ss.Next()
			if fs.Passes() != ss.Passes() {
				t.Fatalf("after mid-pass reset: Passes file %d slice %d", fs.Passes(), ss.Passes())
			}
			if err := fs.Err(); err != nil {
				t.Fatalf("Err: %v", err)
			}
		})
	}
}

// TestWriteFileUnknownCount exercises the reserve-and-patch header path:
// the generator's edge count is not known up front, yet the opened file
// declares it exactly.
func TestWriteFileUnknownCount(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	path := filepath.Join(t.TempDir(), "gen.estream")
	const n, m = 50, 777
	wrote, err := stream.WriteFile(path, n, graph.RandomEdgeSource(n, m, 100, rng))
	if err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if wrote != m {
		t.Fatalf("wrote %d edges, want %d", wrote, m)
	}
	fs, err := stream.OpenFile(path)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	defer fs.Close()
	if fs.Len() != m || fs.N() != n {
		t.Fatalf("geometry: Len=%d N=%d, want %d/%d", fs.Len(), fs.N(), m, n)
	}
	if got := len(drain(t, fs)); got != m {
		t.Fatalf("drained %d edges, want %d", got, m)
	}
}

// TestFileStreamEveryByteFlip is the AUGSNAP corruption contract applied
// to stream files: flipping any single byte of a valid file must make
// OpenFile fail — header, geometry, records, or trailer, no byte is
// unprotected.
func TestFileStreamEveryByteFlip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	inst := graph.RandomGraph(12, 20, 50, rng)
	path := writeTempStream(t, inst.G.N(), inst.G.Edges())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mut := filepath.Join(t.TempDir(), "mut.estream")
	for i := range data {
		corrupt := append([]byte(nil), data...)
		corrupt[i] ^= 0x40
		if err := os.WriteFile(mut, corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		if fs, err := stream.OpenFile(mut); err == nil {
			fs.Close()
			t.Fatalf("byte %d/%d: flip not detected", i, len(data))
		}
	}
}

// TestFileStreamTruncation: a file cut anywhere must fail verification.
func TestFileStreamTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	inst := graph.RandomGraph(10, 15, 50, rng)
	path := writeTempStream(t, inst.G.N(), inst.G.Edges())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mut := filepath.Join(t.TempDir(), "trunc.estream")
	for _, cut := range []int{0, 1, 3, 4, len(data) / 2, len(data) - 9, len(data) - 1} {
		if err := os.WriteFile(mut, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if fs, err := stream.OpenFile(mut); err == nil {
			fs.Close()
			t.Fatalf("truncation at %d/%d not detected", cut, len(data))
		}
	}
}

func sortedEdges(edges []graph.Edge) []graph.Edge {
	cp := append([]graph.Edge(nil), edges...)
	sort.Slice(cp, func(i, j int) bool {
		if cp[i].U != cp[j].U {
			return cp[i].U < cp[j].U
		}
		if cp[i].V != cp[j].V {
			return cp[i].V < cp[j].V
		}
		return cp[i].W < cp[j].W
	})
	return cp
}

// TestShuffleToFilePermutation: the external-memory shuffle must produce
// a permutation of the input (multi-chunk merge path), deterministic for
// a fixed seed and different across seeds.
func TestShuffleToFilePermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	inst := graph.RandomGraph(40, 500, 1000, rng)
	edges := inst.G.Edges()
	dir := t.TempDir()

	read := func(seed int64, chunk int) []graph.Edge {
		path := filepath.Join(dir, "shuf.estream")
		wrote, err := stream.ShuffleToFile(path, inst.G.N(), stream.SliceSource(edges),
			rand.New(rand.NewSource(seed)), chunk)
		if err != nil {
			t.Fatalf("ShuffleToFile: %v", err)
		}
		if wrote != len(edges) {
			t.Fatalf("wrote %d, want %d", wrote, len(edges))
		}
		fs, err := stream.OpenFile(path)
		if err != nil {
			t.Fatalf("OpenFile: %v", err)
		}
		defer fs.Close()
		return drain(t, fs)
	}

	// chunk=64 forces ~8 spill files through the weighted merge.
	got := read(1, 64)
	want := sortedEdges(edges)
	if gotSorted := sortedEdges(got); len(gotSorted) != len(want) {
		t.Fatalf("shuffle changed edge count: %d vs %d", len(gotSorted), len(want))
	} else {
		for i := range want {
			if gotSorted[i] != want[i] {
				t.Fatalf("shuffle is not a permutation at sorted index %d", i)
			}
		}
	}
	same := read(1, 64)
	for i := range got {
		if got[i] != same[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	other := read(2, 64)
	diff := false
	for i := range got {
		if got[i] != other[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced the same permutation")
	}

	// Single-chunk fast path is also a permutation.
	small := read(3, 0)
	smallSorted := sortedEdges(small)
	for i := range want {
		if smallSorted[i] != want[i] {
			t.Fatalf("single-chunk shuffle not a permutation at %d", i)
		}
	}

	// No spill chunks may be left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "shuf.estream" {
			t.Fatalf("leftover temp file %q", e.Name())
		}
	}
}

// TestShuffleToFileUniform is a coarse uniformity check on the merge: over
// many seeds, each of 4 distinct edges lands in position 0 roughly equally
// often (chunked so every draw crosses the Fenwick merge).
func TestShuffleToFileUniform(t *testing.T) {
	edges := []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}, {U: 2, V: 3, W: 3}, {U: 3, V: 0, W: 4},
	}
	dir := t.TempDir()
	counts := map[graph.Edge]int{}
	const trials = 400
	for seed := int64(0); seed < trials; seed++ {
		path := filepath.Join(dir, "u.estream")
		if _, err := stream.ShuffleToFile(path, 4, stream.SliceSource(edges),
			rand.New(rand.NewSource(seed)), 2); err != nil {
			t.Fatal(err)
		}
		fs, err := stream.OpenFile(path)
		if err != nil {
			t.Fatal(err)
		}
		first, _ := fs.Next()
		fs.Close()
		counts[first]++
	}
	for _, e := range edges {
		if c := counts[e]; c < trials/8 || c > trials/2 {
			t.Fatalf("edge %v first %d/%d times — merge looks biased (%v)", e, c, trials, counts)
		}
	}
}

// FuzzFileStream: arbitrary bytes never panic the opener and never yield
// an inconsistent stream — Open either rejects the file or returns a
// stream whose passes repeat bit-identically and agree with Len.
func FuzzFileStream(f *testing.F) {
	rng := rand.New(rand.NewSource(20))
	inst := graph.RandomGraph(8, 12, 30, rng)
	path := filepath.Join(f.TempDir(), "seed.estream")
	if err := stream.WriteFileEdges(path, inst.G.N(), inst.G.Edges()); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0xff
	f.Add(flipped)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	empty := filepath.Join(f.TempDir(), "empty.estream")
	if err := stream.WriteFileEdges(empty, 1, nil); err != nil {
		f.Fatal(err)
	}
	emptyBytes, err := os.ReadFile(empty)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(emptyBytes)

	f.Fuzz(func(t *testing.T, data []byte) {
		p := filepath.Join(t.TempDir(), "fuzz.estream")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Skip()
		}
		fs, err := stream.OpenFile(p)
		if err != nil {
			return // rejected; the only other acceptable outcome
		}
		defer fs.Close()
		first := drain(t, fs)
		if len(first) != fs.Len() {
			t.Fatalf("accepted stream drained %d edges, Len says %d", len(first), fs.Len())
		}
		fs.Reset()
		second := drain(t, fs)
		if len(second) != len(first) {
			t.Fatalf("pass 2 drained %d edges, pass 1 %d", len(second), len(first))
		}
		for i := range first {
			if first[i] != second[i] {
				t.Fatalf("passes diverge at %d: %v vs %v", i, first[i], second[i])
			}
		}
		if fs.Passes() != 2 {
			t.Fatalf("Passes = %d after two drains, want 2", fs.Passes())
		}
	})
}
