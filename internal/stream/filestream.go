package stream

// Disk-backed edge streams: the out-of-core substrate of the streaming
// tier. A stream file is a small AUGSNAP-container header (so header
// corruption is detected exactly the way snapshot corruption is, see
// internal/graph/snapshot.go), followed by fixed-width binary edge
// records, followed by a CRC64-ECMA trailer over the record bytes. Open
// verifies the header and scans the payload checksum before handing out a
// single edge, so a damaged file degrades to an error, never to a wrong
// stream. Multi-pass reads are buffered sequential scans; memory is O(1)
// records regardless of file size, which is what lets the E20 ledger run
// 10^7-edge streams that genuinely never fit in RAM.
//
// The companion writer ShuffleToFile materialises a uniformly random
// arrival order (the Theorem 1.1 model) in external memory: edges are
// spilled in Fisher–Yates-shuffled chunks and merged by remaining-count
// weighted draws, which yields a uniform permutation while holding only
// one chunk plus one buffered reader per chunk in RAM.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"math/rand"
	"os"
	"path/filepath"

	"repro/internal/graph"
)

const (
	// fileStreamVersion is the newest stream-file format this reader
	// understands; the AUGSNAP container rejects files declaring more.
	fileStreamVersion = 1
	// recordSize is the fixed width of one edge record: u uint32, v
	// uint32, w int64, little-endian.
	recordSize = 16
	// headerSection names the container section carrying the stream
	// geometry (n, m, record width as three int64s).
	headerSection = "estream"
	// DefaultShuffleChunk is the in-RAM chunk size (in edges) of
	// ShuffleToFile when the caller passes chunkEdges <= 0. 1<<16 edges
	// is 1 MiB of records — small enough that a 10^7-edge shuffle holds
	// well under 1% of the stream in memory at a time.
	DefaultShuffleChunk = 1 << 16
)

var fileCRC = crc64.MakeTable(crc64.ECMA)

// Stream-file error conditions. All of them mean the file must not be
// trusted as a stream; callers report the error instead of running on
// partial or corrupt data.
var (
	// ErrFileStreamHeader: the header region is not a valid stream header
	// (wraps the graph.ErrSnapshot* cause when the container detected it).
	ErrFileStreamHeader = errors.New("stream: bad stream-file header")
	// ErrFileStreamPayload: the record region fails its CRC64 trailer or
	// its declared length — at least one bit changed since the write.
	ErrFileStreamPayload = errors.New("stream: stream-file payload corrupt")
)

// encodeRecord writes e into buf (len >= recordSize).
func encodeRecord(buf []byte, e graph.Edge) {
	binary.LittleEndian.PutUint32(buf[0:], uint32(e.U))
	binary.LittleEndian.PutUint32(buf[4:], uint32(e.V))
	binary.LittleEndian.PutUint64(buf[8:], uint64(e.W))
}

// decodeRecord reads one edge from buf (len >= recordSize).
func decodeRecord(buf []byte) graph.Edge {
	return graph.Edge{
		U: int(binary.LittleEndian.Uint32(buf[0:])),
		V: int(binary.LittleEndian.Uint32(buf[4:])),
		W: graph.Weight(binary.LittleEndian.Uint64(buf[8:])),
	}
}

// headerBytes renders the length-prefixed header for a stream of m edges
// over n vertices. The layout is deterministic and fixed-size for fixed
// field widths, which is what lets WriteFile reserve the header region
// up front and patch it once m is known.
func headerBytes(n, m int) []byte {
	payload := make([]byte, 0, 24)
	payload = binary.LittleEndian.AppendUint64(payload, uint64(n))
	payload = binary.LittleEndian.AppendUint64(payload, uint64(m))
	payload = binary.LittleEndian.AppendUint64(payload, uint64(recordSize))
	snap := graph.EncodeSnapshot(fileStreamVersion, []graph.SnapshotSection{
		{Name: headerSection, Data: payload},
	})
	out := make([]byte, 0, 4+len(snap))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(snap)))
	return append(out, snap...)
}

// WriteFile writes the edges produced by next (called until it reports
// ok=false) to path in the stream-file format and returns the number of
// records written. Memory is O(1) records: the edge count need not be
// known up front — a fixed-size header region is reserved and patched
// after the records and CRC trailer land.
func WriteFile(path string, n int, next func() (graph.Edge, bool)) (int, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()

	// Reserve the header region; the length is independent of m.
	placeholder := headerBytes(n, 0)
	if _, err := f.Write(placeholder); err != nil {
		return 0, err
	}

	w := bufio.NewWriterSize(f, 1<<20)
	crc := crc64.New(fileCRC)
	var rec [recordSize]byte
	m := 0
	for {
		e, ok := next()
		if !ok {
			break
		}
		encodeRecord(rec[:], e)
		if _, err := w.Write(rec[:]); err != nil {
			return 0, err
		}
		crc.Write(rec[:])
		m++
	}
	var trailer [8]byte
	binary.LittleEndian.PutUint64(trailer[:], crc.Sum64())
	if _, err := w.Write(trailer[:]); err != nil {
		return 0, err
	}
	if err := w.Flush(); err != nil {
		return 0, err
	}
	header := headerBytes(n, m)
	if len(header) != len(placeholder) {
		return 0, fmt.Errorf("stream: header size drifted (%d vs %d bytes)", len(header), len(placeholder))
	}
	if _, err := f.WriteAt(header, 0); err != nil {
		return 0, err
	}
	return m, f.Sync()
}

// WriteFileEdges writes an in-RAM edge slice to path in the stream-file
// format, preserving the slice order.
func WriteFileEdges(path string, n int, edges []graph.Edge) error {
	i := 0
	_, err := WriteFile(path, n, func() (graph.Edge, bool) {
		if i >= len(edges) {
			return graph.Edge{}, false
		}
		e := edges[i]
		i++
		return e, true
	})
	return err
}

// SliceSource adapts an edge slice to the generator form WriteFile and
// ShuffleToFile consume.
func SliceSource(edges []graph.Edge) func() (graph.Edge, bool) {
	i := 0
	return func() (graph.Edge, bool) {
		if i >= len(edges) {
			return graph.Edge{}, false
		}
		e := edges[i]
		i++
		return e, true
	}
}

// FileStream is a disk-backed EdgeStream over a file written by WriteFile
// or ShuffleToFile. Passes are buffered sequential scans; Reset seeks back
// to the first record. The stream holds O(1) records in memory.
//
// Next cannot return an error by signature, so a mid-pass read fault ends
// the pass early (ok=false) and parks the cause on Err; drivers that care
// check Err after draining. Corrupt files never get this far: OpenFile
// verifies the header and the payload CRC before returning.
type FileStream struct {
	f       *os.File
	r       *bufio.Reader
	n, m    int
	dataOff int64
	pos     int
	passes  int
	err     error
}

var _ EdgeStream = (*FileStream)(nil)

// OpenFile opens and fully verifies a stream file: the AUGSNAP header
// (magic, version ceiling, CRC), the declared geometry against the file
// size, and the CRC64 trailer over every record byte (one buffered
// sequential scan). A file that fails any check yields an error and no
// stream — corruption degrades to an error, never to wrong edges.
func OpenFile(path string) (*FileStream, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	s, err := openVerified(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

func openVerified(f *os.File) (*FileStream, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(f, lenBuf[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFileStreamHeader, err)
	}
	headerLen := binary.LittleEndian.Uint32(lenBuf[:])
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if int64(headerLen) > st.Size()-4 || headerLen > 1<<16 {
		return nil, fmt.Errorf("%w: declared header of %d bytes", ErrFileStreamHeader, headerLen)
	}
	header := make([]byte, headerLen)
	if _, err := io.ReadFull(f, header); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFileStreamHeader, err)
	}
	_, sections, err := graph.DecodeSnapshot(header, fileStreamVersion)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFileStreamHeader, err)
	}
	geom, ok := graph.FindSection(sections, headerSection)
	if !ok || len(geom) != 24 {
		return nil, fmt.Errorf("%w: missing %q section", ErrFileStreamHeader, headerSection)
	}
	n := int(binary.LittleEndian.Uint64(geom[0:]))
	m := int(binary.LittleEndian.Uint64(geom[8:]))
	rec := int(binary.LittleEndian.Uint64(geom[16:]))
	if rec != recordSize || n < 0 || m < 0 {
		return nil, fmt.Errorf("%w: geometry n=%d m=%d rec=%d", ErrFileStreamHeader, n, m, rec)
	}
	dataOff := int64(4 + headerLen)
	want := dataOff + int64(m)*recordSize + 8
	if st.Size() != want {
		return nil, fmt.Errorf("%w: %d bytes on disk, header declares %d", ErrFileStreamPayload, st.Size(), want)
	}

	// Verify the payload checksum in one buffered scan.
	if _, err := f.Seek(dataOff, io.SeekStart); err != nil {
		return nil, err
	}
	crc := crc64.New(fileCRC)
	if _, err := io.CopyN(crc, bufio.NewReaderSize(f, 1<<20), int64(m)*recordSize); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFileStreamPayload, err)
	}
	var trailer [8]byte
	if _, err := f.ReadAt(trailer[:], st.Size()-8); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFileStreamPayload, err)
	}
	if crc.Sum64() != binary.LittleEndian.Uint64(trailer[:]) {
		return nil, fmt.Errorf("%w: record checksum mismatch", ErrFileStreamPayload)
	}

	s := &FileStream{f: f, n: n, m: m, dataOff: dataOff}
	s.rewind()
	return s, nil
}

func (s *FileStream) rewind() {
	if _, err := s.f.Seek(s.dataOff, io.SeekStart); err != nil {
		s.err = err
		return
	}
	if s.r == nil {
		s.r = bufio.NewReaderSize(s.f, 1<<20)
	} else {
		s.r.Reset(s.f)
	}
	s.pos = 0
}

// Next implements EdgeStream. Pass counting mirrors SliceStream exactly
// (a pass is counted when its first record is requested) so the two
// stream kinds report bit-identical Passes() under the same driver.
func (s *FileStream) Next() (graph.Edge, bool) {
	if s.pos == 0 {
		s.passes++
	}
	if s.pos >= s.m || s.err != nil {
		return graph.Edge{}, false
	}
	var rec [recordSize]byte
	if _, err := io.ReadFull(s.r, rec[:]); err != nil {
		s.err = fmt.Errorf("%w: %v", ErrFileStreamPayload, err)
		return graph.Edge{}, false
	}
	s.pos++
	return decodeRecord(rec[:]), true
}

// Reset implements EdgeStream.
func (s *FileStream) Reset() { s.rewind() }

// Len implements EdgeStream.
func (s *FileStream) Len() int { return s.m }

// Passes implements EdgeStream.
func (s *FileStream) Passes() int { return s.passes }

// N returns the vertex count recorded in the header.
func (s *FileStream) N() int { return s.n }

// Err returns the first mid-pass read fault, if any. A verified file on a
// healthy disk never sets it.
func (s *FileStream) Err() error { return s.err }

// Close releases the underlying file.
func (s *FileStream) Close() error { return s.f.Close() }

// ShuffleToFile writes a uniformly random permutation of the edges
// produced by next into path, using O(chunkEdges) edges of RAM however
// large the stream is. It returns the number of edges written.
//
// Two external-memory phases: (1) spill — consecutive chunks of
// chunkEdges edges are Fisher–Yates shuffled in RAM and written to
// temporary files next to path; (2) merge — the output repeatedly draws
// its next edge from a chunk chosen with probability proportional to the
// chunk's remaining count (a Fenwick tree makes the weighted draw
// O(log chunks)). Each chunk is an independent uniform permutation of its
// contents and the interleaving is an independent uniform choice among
// all interleavings, so the composition is a uniform permutation of the
// whole stream — the arrival model of Theorem 1.1 at any scale.
func ShuffleToFile(path string, n int, next func() (graph.Edge, bool), rng *rand.Rand, chunkEdges int) (int, error) {
	if chunkEdges <= 0 {
		chunkEdges = DefaultShuffleChunk
	}
	dir := filepath.Dir(path)

	// Phase 1: spill shuffled chunks.
	var chunkFiles []*os.File
	var counts []int
	defer func() {
		for _, cf := range chunkFiles {
			cf.Close()
			os.Remove(cf.Name())
		}
	}()
	buf := make([]graph.Edge, 0, chunkEdges)
	total := 0
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		rng.Shuffle(len(buf), func(i, j int) { buf[i], buf[j] = buf[j], buf[i] })
		cf, err := os.CreateTemp(dir, "eshuffle-*.chunk")
		if err != nil {
			return err
		}
		w := bufio.NewWriterSize(cf, 1<<20)
		var rec [recordSize]byte
		for _, e := range buf {
			encodeRecord(rec[:], e)
			if _, err := w.Write(rec[:]); err != nil {
				cf.Close()
				os.Remove(cf.Name())
				return err
			}
		}
		if err := w.Flush(); err != nil {
			cf.Close()
			os.Remove(cf.Name())
			return err
		}
		chunkFiles = append(chunkFiles, cf)
		counts = append(counts, len(buf))
		total += len(buf)
		buf = buf[:0]
		return nil
	}
	for {
		e, ok := next()
		if !ok {
			break
		}
		buf = append(buf, e)
		if len(buf) == chunkEdges {
			if err := flush(); err != nil {
				return 0, err
			}
		}
	}

	// Single-chunk fast path: the whole stream fit in one chunk's RAM —
	// shuffle in place and write directly.
	if len(chunkFiles) == 0 {
		rng.Shuffle(len(buf), func(i, j int) { buf[i], buf[j] = buf[j], buf[i] })
		return WriteFile(path, n, SliceSource(buf))
	}
	if err := flush(); err != nil {
		return 0, err
	}

	// Phase 2: weighted merge of the shuffled chunks.
	readers := make([]*bufio.Reader, len(chunkFiles))
	for i, cf := range chunkFiles {
		if _, err := cf.Seek(0, io.SeekStart); err != nil {
			return 0, err
		}
		readers[i] = bufio.NewReaderSize(cf, 1<<16)
	}
	fen := newFenwick(counts)
	remaining := total
	var mergeErr error
	m, err := WriteFile(path, n, func() (graph.Edge, bool) {
		if remaining == 0 || mergeErr != nil {
			return graph.Edge{}, false
		}
		c := fen.selectNth(rng.Intn(remaining))
		fen.add(c, -1)
		remaining--
		var rec [recordSize]byte
		if _, err := io.ReadFull(readers[c], rec[:]); err != nil {
			mergeErr = err
			return graph.Edge{}, false
		}
		return decodeRecord(rec[:]), true
	})
	if err != nil {
		return 0, err
	}
	if mergeErr != nil {
		return 0, mergeErr
	}
	return m, nil
}

// fenwick is a Fenwick (binary indexed) tree over per-chunk remaining
// counts, supporting point updates and "find the chunk containing the
// k-th remaining edge" in O(log chunks).
type fenwick struct {
	tree []int // 1-indexed
}

func newFenwick(counts []int) *fenwick {
	f := &fenwick{tree: make([]int, len(counts)+1)}
	for i, c := range counts {
		f.add(i, c)
	}
	return f
}

func (f *fenwick) add(i, delta int) {
	for i++; i < len(f.tree); i += i & (-i) {
		f.tree[i] += delta
	}
}

// selectNth returns the smallest chunk index such that the prefix sum of
// remaining counts exceeds k (0-based).
func (f *fenwick) selectNth(k int) int {
	idx := 0
	bit := 1
	for bit<<1 < len(f.tree) {
		bit <<= 1
	}
	for ; bit > 0; bit >>= 1 {
		next := idx + bit
		if next < len(f.tree) && f.tree[next] <= k {
			idx = next
			k -= f.tree[next]
		}
	}
	return idx // 0-based chunk index (idx is the count of full prefixes)
}
