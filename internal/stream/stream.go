// Package stream models the (semi-)streaming computation model of
// Feigenbaum et al. [FKM+05] as used in Section 2 of the paper: edges arrive
// one at a time, algorithms may take one or more passes, and memory is
// restricted to O(n polylog n). The package provides edge streams with
// controllable arrival order (random for Theorem 1.1, adversarial for
// contrast experiments), a pass counter, and a peak-memory accountant so
// experiments can verify the paper's space claims empirically.
package stream

import (
	"math/rand"

	"repro/internal/graph"
)

// EdgeStream delivers the edges of a graph one at a time and can be rewound
// for multi-pass algorithms.
type EdgeStream interface {
	// Next returns the next edge of the current pass; ok is false at the
	// end of the pass.
	Next() (e graph.Edge, ok bool)
	// Reset rewinds to the start of a new pass over the same order.
	Reset()
	// Len returns the number of edges in one full pass.
	Len() int
	// Passes returns the number of passes started so far. The stream's own
	// counter is the authority on pass complexity: drivers report
	// differences of Passes() around their scans instead of hand-counting
	// next to Reset calls (the two were observed to drift in review).
	Passes() int
}

// SliceStream streams a fixed edge slice in order. It records the number of
// completed plus started passes so drivers can report pass complexity.
type SliceStream struct {
	edges  []graph.Edge
	pos    int
	passes int
}

var _ EdgeStream = (*SliceStream)(nil)

// FromEdges builds a stream over a copy of edges, in the given order.
func FromEdges(edges []graph.Edge) *SliceStream {
	cp := make([]graph.Edge, len(edges))
	copy(cp, edges)
	return &SliceStream{edges: cp}
}

// FromGraph streams g's edges in their insertion (adversarial) order.
func FromGraph(g *graph.Graph) *SliceStream {
	return FromEdges(g.Edges())
}

// RandomOrder returns a stream over a uniformly random permutation of g's
// edges, the arrival model of Theorem 1.1.
func RandomOrder(g *graph.Graph, rng *rand.Rand) *SliceStream {
	edges := g.CopyEdges()
	rng.Shuffle(len(edges), func(i, j int) {
		edges[i], edges[j] = edges[j], edges[i]
	})
	return &SliceStream{edges: edges}
}

// Next implements EdgeStream.
func (s *SliceStream) Next() (graph.Edge, bool) {
	if s.pos == 0 {
		s.passes++
	}
	if s.pos >= len(s.edges) {
		return graph.Edge{}, false
	}
	e := s.edges[s.pos]
	s.pos++
	return e, true
}

// Reset implements EdgeStream.
func (s *SliceStream) Reset() { s.pos = 0 }

// Len implements EdgeStream.
func (s *SliceStream) Len() int { return len(s.edges) }

// Passes returns the number of passes started so far.
func (s *SliceStream) Passes() int { return s.passes }

// Edges exposes the streamed order (for tests). Callers must not mutate it.
func (s *SliceStream) Edges() []graph.Edge { return s.edges }

// Accountant tracks the peak number of edges an algorithm holds at once,
// the empirical counterpart of the paper's O(n polylog n) space bounds
// (Lemmas 3.3, 3.12, 3.15). Stored items are counted in edges because the
// semi-streaming model measures memory in units of Θ(log n)-bit words and
// an edge occupies O(1) of them.
//
// The Accountant is the single resource-accounting authority of the
// streaming tier: every streaming algorithm (bipartite.Streaming,
// randarrival.RandArrMatching, the localratio stack, the unwaug support
// set) charges the accountant it is handed instead of hand-rolling its own
// peak counters, so the E20 ledger's "peak words" column is one number
// with one meaning. Fixed O(n)-word working arrays (potentials, mark bits,
// path tips) are not charged — the model grants Θ(n) words for free and
// the interesting quantity is the stream-dependent surplus.
type Accountant struct {
	current int
	peak    int
}

// Hold records that delta more edges are now stored (delta may be negative).
func (a *Accountant) Hold(delta int) {
	a.current += delta
	if a.current > a.peak {
		a.peak = a.current
	}
}

// Current returns the number of edges currently held.
func (a *Accountant) Current() int { return a.current }

// Peak returns the maximum simultaneous edge count observed.
func (a *Accountant) Peak() int { return a.peak }

// Reset clears the accountant for reuse across runs.
func (a *Accountant) Reset() { a.current, a.peak = 0, 0 }
