package stream

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New(6)
	for i := 0; i < 5; i++ {
		g.MustAddEdge(i, i+1, graph.Weight(i+1))
	}
	return g
}

func TestSliceStreamOrderAndReset(t *testing.T) {
	g := testGraph(t)
	s := FromGraph(g)
	if s.Len() != 5 {
		t.Fatalf("Len = %d", s.Len())
	}
	var got []graph.Edge
	for e, ok := s.Next(); ok; e, ok = s.Next() {
		got = append(got, e)
	}
	if len(got) != 5 {
		t.Fatalf("streamed %d edges", len(got))
	}
	for i, e := range got {
		if e != g.Edges()[i] {
			t.Fatalf("edge %d = %v, want %v", i, e, g.Edges()[i])
		}
	}
	if s.Passes() != 1 {
		t.Errorf("passes = %d, want 1", s.Passes())
	}
	s.Reset()
	if e, ok := s.Next(); !ok || e != g.Edges()[0] {
		t.Error("Reset did not rewind")
	}
	if s.Passes() != 2 {
		t.Errorf("passes after reset = %d, want 2", s.Passes())
	}
}

func TestRandomOrderIsPermutation(t *testing.T) {
	g := testGraph(t)
	rng := rand.New(rand.NewSource(1))
	s := RandomOrder(g, rng)
	seen := make(map[graph.Key]int)
	for e, ok := s.Next(); ok; e, ok = s.Next() {
		seen[e.EdgeKey()]++
	}
	if len(seen) != 5 {
		t.Fatalf("saw %d distinct edges", len(seen))
	}
	for k, c := range seen {
		if c != 1 {
			t.Fatalf("edge %v seen %d times", k, c)
		}
	}
	// Original graph order untouched.
	if g.Edges()[0].W != 1 {
		t.Error("RandomOrder mutated the graph")
	}
}

func TestRandomOrderVariesBySeed(t *testing.T) {
	g := graph.New(40)
	for i := 0; i < 39; i++ {
		g.MustAddEdge(i, i+1, 1)
	}
	a := RandomOrder(g, rand.New(rand.NewSource(1))).Edges()
	b := RandomOrder(g, rand.New(rand.NewSource(2))).Edges()
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("two seeds produced identical orders (astronomically unlikely)")
	}
}

func TestFromEdgesCopies(t *testing.T) {
	edges := []graph.Edge{{U: 0, V: 1, W: 1}}
	s := FromEdges(edges)
	edges[0].W = 99
	if e, _ := s.Next(); e.W != 1 {
		t.Error("FromEdges aliases caller slice")
	}
}

func TestAccountant(t *testing.T) {
	var a Accountant
	a.Hold(5)
	a.Hold(3)
	a.Hold(-6)
	a.Hold(2)
	if a.Peak() != 8 {
		t.Errorf("peak = %d, want 8", a.Peak())
	}
	if a.Current() != 4 {
		t.Errorf("current = %d, want 4", a.Current())
	}
}
