package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text edge format is one header line "p <n> <m>" followed by m lines
// "<u> <v> <w>". It is the interchange format of cmd/auggen and cmd/augrun.

// WriteTo writes g in the text edge format.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var total int64
	n, err := fmt.Fprintf(bw, "p %d %d\n", g.n, len(g.edges))
	total += int64(n)
	if err != nil {
		return total, err
	}
	for _, e := range g.edges {
		n, err = fmt.Fprintf(bw, "%d %d %d\n", e.U, e.V, e.W)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, bw.Flush()
}

// Read parses a graph in the text edge format.
func Read(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var g *Graph
	expect := 0
	for line := 1; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if g == nil {
			if len(fields) != 3 || fields[0] != "p" {
				return nil, fmt.Errorf("graph: line %d: want header \"p <n> <m>\", got %q", line, text)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad n: %w", line, err)
			}
			m, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad m: %w", line, err)
			}
			g = New(n)
			expect = m
			continue
		}
		if len(fields) != 3 {
			return nil, fmt.Errorf("graph: line %d: want \"<u> <v> <w>\", got %q", line, text)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad u: %w", line, err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad v: %w", line, err)
		}
		w, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad w: %w", line, err)
		}
		if err := g.AddEdge(Edge{U: u, V: v, W: w}); err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("graph: empty input")
	}
	if len(g.edges) != expect {
		return nil, fmt.Errorf("graph: header declared %d edges, read %d", expect, len(g.edges))
	}
	return g, nil
}
