package graph

import (
	"errors"
	"fmt"
)

// Matching is a set of vertex-disjoint weighted edges over vertices [0, n).
// It maintains the mate of every matched vertex, the weight of the matched
// edge at each vertex, the matching size, and the total weight, all in O(1)
// per update.
//
// The zero value is not usable; construct with NewMatching.
type Matching struct {
	mate  []int
	w     []Weight
	size  int
	total Weight
}

// Unmatched is the mate value of an unmatched vertex.
const Unmatched = -1

// NewMatching returns an empty matching over n vertices.
func NewMatching(n int) *Matching {
	m := &Matching{
		mate: make([]int, n),
		w:    make([]Weight, n),
	}
	for i := range m.mate {
		m.mate[i] = Unmatched
	}
	return m
}

// N returns the number of vertices the matching is defined over.
func (m *Matching) N() int { return len(m.mate) }

// Size returns the number of matched edges.
func (m *Matching) Size() int { return m.size }

// Weight returns the total weight of the matching.
func (m *Matching) Weight() Weight { return m.total }

// Mate returns the vertex matched to v, or Unmatched.
func (m *Matching) Mate(v int) int { return m.mate[v] }

// IsMatched reports whether v is matched.
func (m *Matching) IsMatched(v int) bool { return m.mate[v] != Unmatched }

// EdgeWeightAt returns the weight of the matched edge incident to v, or 0
// when v is unmatched. This is the paper's w(M(v)) convention (Section 3.2):
// unmatched vertices behave as if matched by a zero-weight artificial edge.
func (m *Matching) EdgeWeightAt(v int) Weight {
	if m.mate[v] == Unmatched {
		return 0
	}
	return m.w[v]
}

// Has reports whether the pair (u, v) is a matched edge.
func (m *Matching) Has(u, v int) bool { return u != v && m.mate[u] == v }

var (
	// ErrConflict is returned when adding an edge whose endpoint is already matched.
	ErrConflict = errors.New("matching: endpoint already matched")
	// ErrNotMatched is returned when removing a pair that is not matched.
	ErrNotMatched = errors.New("matching: pair not matched")
)

// Add inserts edge e. Both endpoints must currently be unmatched.
func (m *Matching) Add(e Edge) error {
	if e.U == e.V {
		return fmt.Errorf("%w: %v", ErrSelfLoop, e)
	}
	if m.mate[e.U] != Unmatched || m.mate[e.V] != Unmatched {
		return fmt.Errorf("%w: %v", ErrConflict, e)
	}
	m.mate[e.U], m.mate[e.V] = e.V, e.U
	m.w[e.U], m.w[e.V] = e.W, e.W
	m.size++
	m.total += e.W
	return nil
}

// FillFromSolver resets m to n vertices and installs the matching described
// by a bipartite solver's internal arrays in one pass: side[v] names v's
// bipartition side, matchL[v] / matchR[v] the mate of a left / right vertex
// (-1 = unmatched), matchEdge[l] the matched edge index at left vertex l,
// and edges the instance's edge list the weights are read from. The arrays
// must describe a valid matching (the solver's construction invariant) —
// nothing is re-validated. One write per vertex replaces the
// Reset-then-Add double pass of the former conversion.
func (m *Matching) FillFromSolver(n int, side []bool, matchL, matchR, matchEdge []int32, edges []Edge) {
	if cap(m.mate) < n {
		m.mate = make([]int, n)
		m.w = make([]Weight, n)
	}
	m.mate, m.w = m.mate[:n], m.w[:n]
	size := 0
	var total Weight
	for v := 0; v < n; v++ {
		l, u := int32(v), matchL[v]
		if side[v] {
			u = matchR[v]
			l = u
		}
		m.mate[v] = int(u)
		if u < 0 {
			m.w[v] = 0
			continue
		}
		wv := edges[matchEdge[l]].W
		m.w[v] = wv
		if !side[v] {
			size++
			total += wv
		}
	}
	m.size = size
	m.total = total
}

// AddForced inserts edge e, first removing any matched edges that conflict
// with it. It returns the net weight change.
func (m *Matching) AddForced(e Edge) Weight {
	var removed Weight
	if mu := m.mate[e.U]; mu != Unmatched {
		removed += m.w[e.U]
		m.remove(e.U, mu)
	}
	if mv := m.mate[e.V]; mv != Unmatched {
		removed += m.w[e.V]
		m.remove(e.V, mv)
	}
	// Both endpoints are now free; Add cannot fail except on a self loop,
	// which AddForced callers must exclude.
	m.mate[e.U], m.mate[e.V] = e.V, e.U
	m.w[e.U], m.w[e.V] = e.W, e.W
	m.size++
	m.total += e.W
	return e.W - removed
}

// Remove deletes the matched pair (u, v).
func (m *Matching) Remove(u, v int) error {
	if u == v || m.mate[u] != v {
		return fmt.Errorf("%w: (%d,%d)", ErrNotMatched, u, v)
	}
	m.remove(u, v)
	return nil
}

func (m *Matching) remove(u, v int) {
	m.total -= m.w[u]
	m.size--
	m.mate[u], m.mate[v] = Unmatched, Unmatched
	m.w[u], m.w[v] = 0, 0
}

// Edges returns the matched edges with U < V, in ascending order of U.
func (m *Matching) Edges() []Edge {
	out := make([]Edge, 0, m.size)
	for u, v := range m.mate {
		if v > u {
			out = append(out, Edge{U: u, V: v, W: m.w[u]})
		}
	}
	return out
}

// Reset reinitialises m to the empty matching over n vertices, reusing the
// existing storage when it is large enough. It lets scratch arenas recycle
// matchings across hot-loop iterations without reallocating.
func (m *Matching) Reset(n int) {
	if cap(m.mate) < n {
		m.mate = make([]int, n)
		m.w = make([]Weight, n)
	}
	m.mate = m.mate[:n]
	m.w = m.w[:n]
	for i := range m.mate {
		m.mate[i] = Unmatched
		m.w[i] = 0
	}
	m.size = 0
	m.total = 0
}

// Clone returns a deep copy.
func (m *Matching) Clone() *Matching {
	c := &Matching{
		mate:  make([]int, len(m.mate)),
		w:     make([]Weight, len(m.w)),
		size:  m.size,
		total: m.total,
	}
	copy(c.mate, m.mate)
	copy(c.w, m.w)
	return c
}

// Validate checks internal consistency: symmetry of mates, weight agreement,
// and that size/total match the edge set. It is used by tests and by the
// invariant checks that guard every augmentation application.
func (m *Matching) Validate() error {
	var size int
	var total Weight
	for u, v := range m.mate {
		if v == Unmatched {
			if m.w[u] != 0 {
				return fmt.Errorf("matching: unmatched vertex %d has weight %d", u, m.w[u])
			}
			continue
		}
		if v < 0 || v >= len(m.mate) {
			return fmt.Errorf("matching: mate of %d out of range: %d", u, v)
		}
		if m.mate[v] != u {
			return fmt.Errorf("matching: asymmetric mates %d->%d->%d", u, v, m.mate[v])
		}
		if m.w[u] != m.w[v] {
			return fmt.Errorf("matching: weight mismatch on (%d,%d): %d vs %d", u, v, m.w[u], m.w[v])
		}
		if m.w[u] <= 0 {
			return fmt.Errorf("matching: non-positive weight on (%d,%d)", u, v)
		}
		if v > u {
			size++
			total += m.w[u]
		}
	}
	if size != m.size {
		return fmt.Errorf("matching: size cache %d != actual %d", m.size, size)
	}
	if total != m.total {
		return fmt.Errorf("matching: total cache %d != actual %d", m.total, total)
	}
	return nil
}

// MatchingFromEdges builds a matching over n vertices from the given edges,
// erroring if they are not vertex disjoint.
func MatchingFromEdges(n int, edges []Edge) (*Matching, error) {
	m := NewMatching(n)
	for _, e := range edges {
		if err := m.Add(e); err != nil {
			return nil, err
		}
	}
	return m, nil
}
