package graph

import (
	"math/rand"
	"testing"
)

func TestEdgeOther(t *testing.T) {
	e := Edge{U: 3, V: 7, W: 5}
	if got := e.Other(3); got != 7 {
		t.Errorf("Other(3) = %d, want 7", got)
	}
	if got := e.Other(7); got != 3 {
		t.Errorf("Other(7) = %d, want 3", got)
	}
	if got := e.Other(1); got != -1 {
		t.Errorf("Other(1) = %d, want -1", got)
	}
}

func TestEdgeCanonicalAndKey(t *testing.T) {
	e := Edge{U: 9, V: 2, W: 4}
	c := e.Canonical()
	if c.U != 2 || c.V != 9 || c.W != 4 {
		t.Errorf("Canonical() = %v", c)
	}
	if e.EdgeKey() != (Key{U: 2, V: 9}) {
		t.Errorf("EdgeKey() = %v", e.EdgeKey())
	}
	if KeyOf(2, 9) != KeyOf(9, 2) {
		t.Error("KeyOf is not symmetric")
	}
}

func TestGraphAddEdgeValidation(t *testing.T) {
	g := New(4)
	tests := []struct {
		name string
		e    Edge
		ok   bool
	}{
		{"valid", Edge{U: 0, V: 1, W: 3}, true},
		{"self loop", Edge{U: 2, V: 2, W: 1}, false},
		{"negative vertex", Edge{U: -1, V: 1, W: 1}, false},
		{"vertex too large", Edge{U: 0, V: 4, W: 1}, false},
		{"zero weight", Edge{U: 0, V: 2, W: 0}, false},
		{"negative weight", Edge{U: 0, V: 2, W: -5}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := g.AddEdge(tt.e)
			if (err == nil) != tt.ok {
				t.Errorf("AddEdge(%v) error = %v, want ok=%v", tt.e, err, tt.ok)
			}
		})
	}
}

func TestFromEdges(t *testing.T) {
	g, err := FromEdges(3, []Edge{{U: 0, V: 1, W: 2}, {U: 1, V: 2, W: 3}})
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Errorf("N=%d M=%d, want 3, 2", g.N(), g.M())
	}
	if g.TotalWeight() != 5 {
		t.Errorf("TotalWeight = %d, want 5", g.TotalWeight())
	}
	if g.MaxWeight() != 3 {
		t.Errorf("MaxWeight = %d, want 3", g.MaxWeight())
	}
	if _, err := FromEdges(2, []Edge{{U: 0, V: 5, W: 1}}); err == nil {
		t.Error("FromEdges accepted out-of-range vertex")
	}
}

func TestAdjacency(t *testing.T) {
	g, err := FromEdges(4, []Edge{
		{U: 0, V: 1, W: 1},
		{U: 0, V: 2, W: 2},
		{U: 2, V: 3, W: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	adj := g.Adjacency()
	if len(adj[0]) != 2 {
		t.Errorf("deg(0) = %d, want 2", len(adj[0]))
	}
	if len(adj[1]) != 1 || adj[1][0].To != 0 || adj[1][0].W != 1 {
		t.Errorf("adj[1] = %v", adj[1])
	}
	if len(adj[3]) != 1 || adj[3][0].EdgeIndex != 2 {
		t.Errorf("adj[3] = %v", adj[3])
	}
}

func TestAdjacencyCachedAndInvalidated(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 5)
	first := g.Adjacency()
	if again := g.Adjacency(); &again[0] != &first[0] {
		t.Error("repeated Adjacency calls did not share the cached lists")
	}
	// AddEdge must invalidate: the next materialisation sees the new edge.
	g.MustAddEdge(1, 2, 7)
	adj := g.Adjacency()
	if len(adj[1]) != 2 {
		t.Fatalf("deg(1) after AddEdge = %d, want 2", len(adj[1]))
	}
	if adj[1][1].To != 2 || adj[1][1].W != 7 || adj[1][1].EdgeIndex != 1 {
		t.Errorf("adj[1][1] = %+v", adj[1][1])
	}
}

func TestSortedEdges(t *testing.T) {
	g, err := FromEdges(4, []Edge{
		{U: 0, V: 1, W: 1},
		{U: 2, V: 3, W: 9},
		{U: 1, V: 2, W: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := g.SortedEdges()
	if s[0].W != 9 || s[1].W != 5 || s[2].W != 1 {
		t.Errorf("SortedEdges = %v", s)
	}
	// Original order untouched.
	if g.Edges()[0].W != 1 {
		t.Error("SortedEdges mutated the graph")
	}
}

func TestIsBipartiteWith(t *testing.T) {
	g, err := FromEdges(4, []Edge{{U: 0, V: 2, W: 1}, {U: 1, V: 3, W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsBipartiteWith([]bool{false, false, true, true}) {
		t.Error("valid bipartition rejected")
	}
	if g.IsBipartiteWith([]bool{false, false, false, true}) {
		t.Error("invalid bipartition accepted")
	}
	if g.IsBipartiteWith([]bool{false}) {
		t.Error("short side slice accepted")
	}
}

func TestRandomGraphProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	inst := RandomGraph(50, 200, 100, rng)
	g := inst.G
	if g.M() != 200 {
		t.Fatalf("M = %d, want 200", g.M())
	}
	seen := make(map[Key]struct{})
	for _, e := range g.Edges() {
		if e.U == e.V {
			t.Fatalf("self loop %v", e)
		}
		if e.W < 1 || e.W > 100 {
			t.Fatalf("weight out of range: %v", e)
		}
		k := e.EdgeKey()
		if _, dup := seen[k]; dup {
			t.Fatalf("duplicate edge %v", e)
		}
		seen[k] = struct{}{}
	}
}

func TestPlantedMatchingIsOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	inst := PlantedMatching(12, 30, 100, 200, rng)
	if !inst.OptExact {
		t.Fatal("planted instance must be exact")
	}
	if err := inst.Opt.Validate(); err != nil {
		t.Fatalf("planted opt invalid: %v", err)
	}
	if inst.Opt.Weight() != inst.OptWeight {
		t.Fatalf("opt weight mismatch: %d vs %d", inst.Opt.Weight(), inst.OptWeight)
	}
	if inst.Opt.Size() != inst.G.N()/2 {
		t.Fatalf("planted matching not perfect: size %d", inst.Opt.Size())
	}
	// Noise weights must be small enough to keep the planted matching optimal.
	for _, e := range inst.G.Edges() {
		if !inst.Opt.Has(e.U, e.V) && e.W > 100/4 {
			t.Fatalf("noise edge too heavy: %v", e)
		}
	}
}

func TestWeightedCyclePaperExample(t *testing.T) {
	// The paper's 4-cycle with weights (3,4,3,4): matching of 3s has weight
	// 6; optimum takes the 4s for weight 8 (Section 1.1.2).
	inst := WeightedCycle(2, 3, 4)
	if inst.G.N() != 4 || inst.G.M() != 4 {
		t.Fatalf("n=%d m=%d", inst.G.N(), inst.G.M())
	}
	if inst.OptWeight != 8 {
		t.Fatalf("OptWeight = %d, want 8", inst.OptWeight)
	}
	if err := inst.Opt.Validate(); err != nil {
		t.Fatal(err)
	}
	if inst.Opt.Size() != 2 {
		t.Fatalf("opt size = %d, want 2", inst.Opt.Size())
	}
}

func TestAugmentingChain(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	inst := AugmentingChain(5, 3, 4, rng)
	if inst.OptWeight != 5*6 {
		t.Fatalf("OptWeight = %d, want 30", inst.OptWeight)
	}
	if err := inst.Opt.Validate(); err != nil {
		t.Fatal(err)
	}
	// Each segment contributes 3 edges.
	if inst.G.M() != 15 {
		t.Fatalf("M = %d, want 15", inst.G.M())
	}
}

func TestThreeAugWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	inst, m0 := ThreeAugWorkload(20, 0.5, 10, rng)
	if err := m0.Validate(); err != nil {
		t.Fatalf("m0: %v", err)
	}
	if err := inst.Opt.Validate(); err != nil {
		t.Fatalf("opt: %v", err)
	}
	if m0.Size() != 20 {
		t.Fatalf("m0 size = %d, want 20", m0.Size())
	}
	// Opt applies 10 augmentations, each a net +1 edge.
	if inst.Opt.Size() != 30 {
		t.Fatalf("opt size = %d, want 30", inst.Opt.Size())
	}
}

func TestGeometricWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	inst := GeometricWeights(30, 100, 2, 10, rng)
	classes := make(map[Weight]bool)
	for _, e := range inst.G.Edges() {
		classes[e.W] = true
	}
	if len(classes) < 4 {
		t.Errorf("expected several weight classes, got %d", len(classes))
	}
}
