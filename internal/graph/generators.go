package graph

import (
	"math/rand"
)

// Generators produce the workloads used by tests and the experiment harness.
// Families with a planted optimal matching expose the optimum weight so that
// approximation ratios can be measured exactly at scales where exact solvers
// are infeasible. All generators take an explicit *rand.Rand so that every
// experiment is reproducible from its seed.

// Instance couples a graph with a known-optimal matching weight. OptWeight
// is exact for planted families and a certified lower bound otherwise (see
// the individual generators).
type Instance struct {
	G *Graph
	// OptWeight is the weight of a maximum weight matching when OptExact,
	// and a lower bound on it otherwise.
	OptWeight Weight
	// OptExact records whether OptWeight is exactly optimal.
	OptExact bool
	// Opt is a maximum weight matching achieving OptWeight when OptExact
	// (nil otherwise).
	Opt *Matching
}

// randomSimple rejection-samples a random simple graph on n vertices with m
// distinct edges (clamped to the complete graph), drawing each accepted
// edge's weight from the callback — the shared body of the random families.
func randomSimple(n, m int, rng *rand.Rand, weight func() Weight) *Graph {
	g := New(n)
	if max := n * (n - 1) / 2; m > max {
		m = max
	}
	seen := make(map[Key]struct{}, m)
	for len(g.edges) < m {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		k := KeyOf(u, v)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		g.edges = append(g.edges, Edge{U: u, V: v, W: weight()})
	}
	return g
}

// RandomGraph returns a random simple graph on n vertices with (up to) m
// distinct edges and integer weights uniform in [1, maxW]. OPT is unknown;
// the instance reports OptExact=false with OptWeight 0.
func RandomGraph(n, m int, maxW Weight, rng *rand.Rand) Instance {
	return Instance{G: randomSimple(n, m, rng, func() Weight {
		return 1 + Weight(rng.Int63n(int64(maxW)))
	})}
}

// RandomEdgeSource returns a generator producing m random edges on n
// vertices with weights uniform in [1, maxW], one edge per call, holding
// O(1) state. Unlike RandomGraph it does not deduplicate (the stream is a
// multigraph sample), which is exactly what makes it usable for streams
// far larger than RAM: the out-of-core writers consume the generator
// directly and no in-RAM graph ever exists.
func RandomEdgeSource(n, m int, maxW Weight, rng *rand.Rand) func() (Edge, bool) {
	emitted := 0
	return func() (Edge, bool) {
		if emitted >= m || n < 2 {
			return Edge{}, false
		}
		emitted++
		u := rng.Intn(n)
		v := rng.Intn(n - 1)
		if v >= u {
			v++
		}
		return Edge{U: u, V: v, W: 1 + Weight(rng.Int63n(int64(maxW)))}, true
	}
}

// RandomBipartite returns a random bipartite graph with nl left vertices
// (ids [0, nl)) and nr right vertices (ids [nl, nl+nr)), m edges, and
// weights uniform in [1, maxW].
func RandomBipartite(nl, nr, m int, maxW Weight, rng *rand.Rand) Instance {
	g := New(nl + nr)
	seen := make(map[Key]struct{}, m)
	if m > nl*nr {
		m = nl * nr
	}
	for len(g.edges) < m {
		u := rng.Intn(nl)
		v := nl + rng.Intn(nr)
		k := KeyOf(u, v)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		g.edges = append(g.edges, Edge{U: u, V: v, W: 1 + Weight(rng.Int63n(int64(maxW)))})
	}
	return Instance{G: g}
}

// PlantedMatching returns a graph with a known optimal matching. It pairs up
// the (even) n vertices into n/2 planted edges of weight in
// [heavyLow, heavyHigh], then adds noise edges whose weights are capped so
// that no matching can beat the planted one: every noise edge weight is at
// most minHeavy/2 divided by 1, and since a matching contains at most n/2
// edges while the planted matching is perfect with every edge at least
// minHeavy, any matching that deviates on k vertices loses more than it can
// recover. Concretely we cap noise weights at heavyLow/4, which makes the
// planted perfect matching strictly optimal.
func PlantedMatching(n, noiseEdges int, heavyLow, heavyHigh Weight, rng *rand.Rand) Instance {
	if n%2 != 0 {
		n++
	}
	if heavyHigh < heavyLow {
		heavyHigh = heavyLow
	}
	g := New(n)
	perm := rng.Perm(n)
	opt := NewMatching(n)
	var optW Weight
	seen := make(map[Key]struct{}, n/2+noiseEdges)
	for i := 0; i < n; i += 2 {
		u, v := perm[i], perm[i+1]
		w := heavyLow + Weight(rng.Int63n(int64(heavyHigh-heavyLow+1)))
		e := Edge{U: u, V: v, W: w}
		g.edges = append(g.edges, e)
		seen[e.EdgeKey()] = struct{}{}
		// Construction guarantees disjointness, so Add cannot fail.
		if err := opt.Add(e); err != nil {
			panic(err)
		}
		optW += w
	}
	noiseCap := heavyLow / 4
	if noiseCap < 1 {
		noiseCap = 1
	}
	for added := 0; added < noiseEdges; {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		k := KeyOf(u, v)
		if _, dup := seen[k]; dup {
			added++ // avoid livelock on dense requests
			continue
		}
		seen[k] = struct{}{}
		g.edges = append(g.edges, Edge{U: u, V: v, W: 1 + Weight(rng.Int63n(int64(noiseCap)))})
		added++
	}
	return Instance{G: g, OptWeight: optW, OptExact: true, Opt: opt}
}

// BandedWeights returns a random simple graph whose weights are uniform in
// the single octave [low, 2·low) (high is clamped to 2·low−1). Every weight
// then falls within a factor two of every other, so the augmentation classes
// whose windows cover the band see many populated τ units at once: the good-
// pair enumeration yields its largest viable sets and every pair's layered
// graph draws from large buckets. This is the solver-bound E13 family —
// sized up, Hopcroft–Karp dominates round time instead of the bucketing.
// OPT is unknown (OptExact=false).
func BandedWeights(n, m int, low Weight, rng *rand.Rand) Instance {
	if low < 1 {
		low = 1
	}
	span := int64(low) // weights in [low, low+span) = [low, 2*low)
	return Instance{G: randomSimple(n, m, rng, func() Weight {
		return low + Weight(rng.Int63n(span))
	})}
}

// UniformWeights returns a random simple graph with every edge of weight w:
// weighted matching degenerates to maximum cardinality, each augmentation
// class collapses to a handful of good pairs, and every one of those pairs'
// layered graphs spans the full crossing subgraph — the whole round is one
// heavy class handed to the unweighted solver. This is the E14 family; with
// warm starts the consecutive pairs of a class share almost their entire
// layered graph. OPT is unknown (OptExact=false).
func UniformWeights(n, m int, w Weight, rng *rand.Rand) Instance {
	if w < 1 {
		w = 1
	}
	return Instance{G: randomSimple(n, m, rng, func() Weight { return w })}
}

// AugmentingChain builds the classic hard instance for greedy matching: a
// path v0-v1-...-v_{3k} where greedy picks the middle edges of each length-3
// segment first (they are slightly heavier), leaving the optimal outer edges
// unpicked. The optimal matching takes 2k outer edges, greedy takes k middle
// edges — every greedy edge lies on a 3-augmenting path. The instance
// returns the exact optimum.
//
// segments is k, the number of length-3 path segments; midWeight > outWeight
// makes greedy prefer the middle edge.
func AugmentingChain(segments int, outWeight, midWeight Weight, rng *rand.Rand) Instance {
	n := 4 * segments
	g := New(n)
	opt := NewMatching(n)
	var optW Weight
	for s := 0; s < segments; s++ {
		a, b, c, d := 4*s, 4*s+1, 4*s+2, 4*s+3
		g.MustAddEdge(a, b, outWeight)
		g.MustAddEdge(b, c, midWeight)
		g.MustAddEdge(c, d, outWeight)
		if 2*outWeight > midWeight {
			mustAdd(opt, Edge{U: a, V: b, W: outWeight})
			mustAdd(opt, Edge{U: c, V: d, W: outWeight})
			optW += 2 * outWeight
		} else {
			mustAdd(opt, Edge{U: b, V: c, W: midWeight})
			optW += midWeight
		}
	}
	_ = rng
	return Instance{G: g, OptWeight: optW, OptExact: true, Opt: opt}
}

// WeightedCycle builds a single even cycle alternating weights (a, b, a, b,
// ...), the paper's canonical augmenting-cycle example from Section 1.1.2
// (e.g. 3,4,3,4: the weight-3 edges form a perfect matching of weight 6 but
// the optimum is 8 and is reachable only through an augmenting cycle).
// halfLen is the number of edges of each weight; the cycle has 2*halfLen
// edges. The returned Opt takes the b edges when b > a.
func WeightedCycle(halfLen int, a, b Weight) Instance {
	n := 2 * halfLen
	g := New(n)
	opt := NewMatching(n)
	var optW Weight
	wa, wb := a, b
	if wb < wa {
		wa, wb = wb, wa
	}
	for i := 0; i < n; i++ {
		w := a
		if i%2 == 1 {
			w = b
		}
		g.MustAddEdge(i, (i+1)%n, w)
	}
	for i := 0; i < n; i++ {
		if (i%2 == 1) == (b >= a) {
			mustAdd(opt, Edge{U: i, V: (i + 1) % n, W: wb})
			optW += wb
		}
	}
	return Instance{G: g, OptWeight: optW, OptExact: true, Opt: opt}
}

// ThreeAugWorkload builds an unweighted-style instance for Lemma 3.1: a
// matching M of size k where a beta fraction of the matched edges each sit
// on a planted vertex-disjoint 3-augmenting path (two extra free vertices
// with one edge to each endpoint), plus distractor edges between matched
// endpoints. Weights are all 1. The returned Opt is the matching after
// applying every planted augmentation.
func ThreeAugWorkload(k int, beta float64, distractors int, rng *rand.Rand) (Instance, *Matching) {
	augCount := int(beta * float64(k))
	n := 2*k + 2*augCount
	g := New(n)
	m0 := NewMatching(n)
	for i := 0; i < k; i++ {
		g.MustAddEdge(2*i, 2*i+1, 1)
		mustAdd(m0, Edge{U: 2 * i, V: 2*i + 1, W: 1})
	}
	opt := m0.Clone()
	var optW Weight
	order := rng.Perm(k)
	for j := 0; j < augCount; j++ {
		i := order[j]
		a := 2*k + 2*j
		b := 2*k + 2*j + 1
		g.MustAddEdge(a, 2*i, 1)
		g.MustAddEdge(2*i+1, b, 1)
		// Apply the planted augmentation to opt: remove (2i, 2i+1), add both.
		if err := opt.Remove(2*i, 2*i+1); err != nil {
			panic(err)
		}
		mustAdd(opt, Edge{U: a, V: 2 * i, W: 1})
		mustAdd(opt, Edge{U: 2*i + 1, V: b, W: 1})
	}
	seen := make(map[Key]struct{})
	for _, e := range g.edges {
		seen[e.EdgeKey()] = struct{}{}
	}
	for d := 0; d < distractors; d++ {
		u := rng.Intn(2 * k)
		v := rng.Intn(2 * k)
		if u == v {
			continue
		}
		k2 := KeyOf(u, v)
		if _, dup := seen[k2]; dup {
			continue
		}
		seen[k2] = struct{}{}
		g.edges = append(g.edges, Edge{U: u, V: v, W: 1})
	}
	optW = opt.Weight()
	return Instance{G: g, OptWeight: optW, OptExact: true, Opt: opt}, m0
}

// GeometricWeights returns a graph where edge weights span many geometric
// weight classes (powers of base up to maxClass), stressing the
// weight-class machinery of Algorithm 1 and Algorithm 3.
func GeometricWeights(n, m int, base, maxClass int, rng *rand.Rand) Instance {
	g := New(n)
	seen := make(map[Key]struct{}, m)
	for len(g.edges) < m {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		k := KeyOf(u, v)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		w := Weight(1)
		for c := rng.Intn(maxClass); c > 0; c-- {
			w *= Weight(base)
		}
		g.edges = append(g.edges, Edge{U: u, V: v, W: w})
	}
	return Instance{G: g}
}

func mustAdd(m *Matching, e Edge) {
	if err := m.Add(e); err != nil {
		panic(err)
	}
}
