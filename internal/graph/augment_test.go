package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAugmentationGain(t *testing.T) {
	a := Augmentation{
		Remove: []Edge{{U: 0, V: 1, W: 5}},
		Add:    []Edge{{U: 1, V: 2, W: 4}, {U: 0, V: 3, W: 3}},
	}
	if g := a.Gain(); g != 2 {
		t.Errorf("Gain = %d, want 2", g)
	}
}

func TestApplyPath(t *testing.T) {
	// 3-augmentation: matching {1-2}; add {0-1, 2-3}; remove {1-2}.
	m := NewMatching(4)
	mustAdd(m, Edge{U: 1, V: 2, W: 5})
	a := Augmentation{
		Remove: []Edge{{U: 1, V: 2, W: 5}},
		Add:    []Edge{{U: 0, V: 1, W: 4}, {U: 2, V: 3, W: 4}},
	}
	gain, err := Apply(m, a)
	if err != nil {
		t.Fatal(err)
	}
	if gain != 3 {
		t.Errorf("gain = %d, want 3", gain)
	}
	if m.Weight() != 8 || m.Size() != 2 {
		t.Errorf("weight=%d size=%d", m.Weight(), m.Size())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyRejectsInvalid(t *testing.T) {
	m := NewMatching(4)
	mustAdd(m, Edge{U: 0, V: 1, W: 5})

	tests := []struct {
		name string
		a    Augmentation
	}{
		{"remove missing", Augmentation{Remove: []Edge{{U: 2, V: 3, W: 1}}}},
		{"add conflicts", Augmentation{Add: []Edge{{U: 1, V: 2, W: 9}}}},
		{"add self loop", Augmentation{Add: []Edge{{U: 2, V: 2, W: 9}}}},
		{"adds share vertex", Augmentation{Add: []Edge{{U: 2, V: 3, W: 1}, {U: 3, V: 2, W: 1}}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			before := m.Weight()
			if _, err := Apply(m, tt.a); err == nil {
				t.Error("invalid augmentation accepted")
			}
			if m.Weight() != before {
				t.Error("failed Apply mutated the matching")
			}
			if err := m.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestApplyCycle(t *testing.T) {
	// The paper's 4-cycle (3,4,3,4): swap the 3s for the 4s.
	inst := WeightedCycle(2, 3, 4)
	m := NewMatching(4)
	mustAdd(m, Edge{U: 0, V: 1, W: 3})
	mustAdd(m, Edge{U: 2, V: 3, W: 3})
	a := Augmentation{
		Remove: []Edge{{U: 0, V: 1, W: 3}, {U: 2, V: 3, W: 3}},
		Add:    []Edge{{U: 1, V: 2, W: 4}, {U: 3, V: 0, W: 4}},
	}
	gain, err := Apply(m, a)
	if err != nil {
		t.Fatal(err)
	}
	if gain != 2 {
		t.Errorf("gain = %d, want 2", gain)
	}
	if m.Weight() != inst.OptWeight {
		t.Errorf("weight = %d, want %d", m.Weight(), inst.OptWeight)
	}
}

func TestApplyDisjointSkipsConflicts(t *testing.T) {
	m := NewMatching(6)
	augs := []Augmentation{
		{Add: []Edge{{U: 0, V: 1, W: 5}}},
		{Add: []Edge{{U: 1, V: 2, W: 9}}}, // conflicts with first
		{Add: []Edge{{U: 3, V: 4, W: 2}}},
	}
	gain, applied := ApplyDisjoint(m, augs)
	if applied != 2 || gain != 7 {
		t.Errorf("applied=%d gain=%d, want 2, 7", applied, gain)
	}
}

func TestApplyDisjointSkipsDuplicateRemove(t *testing.T) {
	// A Remove pair listed twice must be skipped as invalid (the legacy
	// Apply-based loop rejected it with an error), not crash mid-apply.
	m := NewMatching(4)
	mustAdd(m, Edge{U: 0, V: 1, W: 3})
	augs := []Augmentation{
		{
			Remove: []Edge{{U: 0, V: 1, W: 3}, {U: 1, V: 0, W: 3}},
			Add:    []Edge{{U: 1, V: 2, W: 9}},
		},
		{Add: []Edge{{U: 2, V: 3, W: 4}}},
	}
	gain, applied := ApplyDisjoint(m, augs)
	if applied != 1 || gain != 4 {
		t.Errorf("applied=%d gain=%d, want 1, 4", applied, gain)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPathAugmentationDerivesRemovals(t *testing.T) {
	m := NewMatching(6)
	mustAdd(m, Edge{U: 1, V: 2, W: 5})
	mustAdd(m, Edge{U: 3, V: 4, W: 6})
	// Adding 2-3 must evict both matched edges.
	a := PathAugmentation(m, []Edge{{U: 2, V: 3, W: 20}})
	if len(a.Remove) != 2 {
		t.Fatalf("removals = %v", a.Remove)
	}
	if a.Gain() != 20-11 {
		t.Errorf("gain = %d, want 9", a.Gain())
	}
	if GainOf(m, []Edge{{U: 2, V: 3, W: 20}}) != 9 {
		t.Error("GainOf disagrees")
	}
	gain, err := Apply(m, a)
	if err != nil {
		t.Fatal(err)
	}
	if gain != 9 {
		t.Errorf("realised gain = %d", gain)
	}
}

func TestConflictsWith(t *testing.T) {
	a := Augmentation{Add: []Edge{{U: 0, V: 1, W: 1}}}
	b := Augmentation{Add: []Edge{{U: 1, V: 2, W: 1}}}
	c := Augmentation{Add: []Edge{{U: 3, V: 4, W: 1}}}
	if !a.ConflictsWith(b) {
		t.Error("a and b share vertex 1")
	}
	if a.ConflictsWith(c) {
		t.Error("a and c are disjoint")
	}
}

// quick-check invariant 2 of DESIGN.md: Apply either errors (leaving m
// intact) or increases weight by exactly the augmentation's Gain and keeps
// the matching valid.
func TestApplyGainExactQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 16
		m := NewMatching(n)
		for i := 0; i < 5; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				_ = m.Add(Edge{U: u, V: v, W: Weight(1 + rng.Intn(9))})
			}
		}
		// Random candidate augmentation from random add edges.
		var add []Edge
		for i := 0; i < 3; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				add = append(add, Edge{U: u, V: v, W: Weight(1 + rng.Intn(9))})
			}
		}
		a := PathAugmentation(m, add)
		before := m.Weight()
		snapshot := m.Clone()
		gain, err := Apply(m, a)
		if err != nil {
			// m must be unchanged.
			if m.Weight() != before {
				return false
			}
			for v := 0; v < n; v++ {
				if m.Mate(v) != snapshot.Mate(v) {
					return false
				}
			}
			return m.Validate() == nil
		}
		if gain != a.Gain() {
			return false
		}
		if m.Weight() != before+gain {
			return false
		}
		return m.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
