package graph

import (
	"math/rand"
	"testing"
)

func TestSymmetricDifferencePath(t *testing.T) {
	// a: {1-2}; b: {0-1, 2-3} -> one path 0-1-2-3.
	a := NewMatching(4)
	mustAdd(a, Edge{U: 1, V: 2, W: 5})
	b := NewMatching(4)
	mustAdd(b, Edge{U: 0, V: 1, W: 4})
	mustAdd(b, Edge{U: 2, V: 3, W: 4})

	comps := SymmetricDifference(a, b)
	if len(comps) != 1 {
		t.Fatalf("components = %d, want 1", len(comps))
	}
	c := comps[0]
	if c.IsCycle {
		t.Error("path reported as cycle")
	}
	if c.EdgeCount() != 3 {
		t.Fatalf("edges = %d, want 3", c.EdgeCount())
	}
	if ComponentGain(c) != 3 {
		t.Errorf("gain = %d, want 3", ComponentGain(c))
	}
	// Alternation: edges must alternate between the matchings.
	for i := 1; i < len(c.InFirst); i++ {
		if c.InFirst[i] == c.InFirst[i-1] {
			t.Fatalf("edges %d and %d from same matching", i-1, i)
		}
	}
}

func TestSymmetricDifferenceCycle(t *testing.T) {
	a := NewMatching(4)
	mustAdd(a, Edge{U: 0, V: 1, W: 3})
	mustAdd(a, Edge{U: 2, V: 3, W: 3})
	b := NewMatching(4)
	mustAdd(b, Edge{U: 1, V: 2, W: 4})
	mustAdd(b, Edge{U: 3, V: 0, W: 4})

	comps := SymmetricDifference(a, b)
	if len(comps) != 1 {
		t.Fatalf("components = %d, want 1", len(comps))
	}
	c := comps[0]
	if !c.IsCycle {
		t.Fatal("cycle not detected")
	}
	if c.EdgeCount() != 4 {
		t.Fatalf("edges = %d, want 4", c.EdgeCount())
	}
	if ComponentGain(c) != 2 {
		t.Errorf("gain = %d, want 2", ComponentGain(c))
	}
}

func TestSymmetricDifferenceSharedEdgesCancel(t *testing.T) {
	a := NewMatching(4)
	mustAdd(a, Edge{U: 0, V: 1, W: 3})
	b := NewMatching(4)
	mustAdd(b, Edge{U: 0, V: 1, W: 3})
	if comps := SymmetricDifference(a, b); len(comps) != 0 {
		t.Errorf("shared edge produced components: %v", comps)
	}
}

func TestSymmetricDifferenceGainSumsToWeightDelta(t *testing.T) {
	// Property: sum of component gains equals w(b) - w(a) when shared edges
	// have equal weights. Random matchings on a shared vertex set.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 20
		a := NewMatching(n)
		b := NewMatching(n)
		wOf := make(map[Key]Weight)
		weightFor := func(u, v int) Weight {
			k := KeyOf(u, v)
			if w, ok := wOf[k]; ok {
				return w
			}
			w := Weight(1 + rng.Intn(20))
			wOf[k] = w
			return w
		}
		for i := 0; i < 12; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			_ = a.Add(Edge{U: u, V: v, W: weightFor(u, v)})
			u, v = rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			_ = b.Add(Edge{U: u, V: v, W: weightFor(u, v)})
		}
		var sum Weight
		for _, c := range SymmetricDifference(a, b) {
			sum += ComponentGain(c)
		}
		if sum != b.Weight()-a.Weight() {
			t.Fatalf("trial %d: gains sum to %d, weight delta %d", trial, sum, b.Weight()-a.Weight())
		}
	}
}
