package graph

import (
	"errors"
	"fmt"
)

// Augmentation describes a modification of a matching: remove the Remove
// edges (which must all be matched) and then add the Add edges (whose
// endpoints must be free after the removals). This is the "applying an
// augmentation" operation of Definition 4.4 in the paper, generalised to
// arbitrary edge sets so that alternating paths, alternating cycles, and
// single-edge insertions share one representation.
type Augmentation struct {
	Remove []Edge
	Add    []Edge
}

// Gain returns w(Add) - w(Remove), the weight increase of applying the
// augmentation (Definition 4.5).
func (a Augmentation) Gain() Weight {
	var g Weight
	for _, e := range a.Add {
		g += e.W
	}
	for _, e := range a.Remove {
		g -= e.W
	}
	return g
}

// Vertices returns the set of vertices touched by the augmentation.
func (a Augmentation) Vertices() map[int]struct{} {
	vs := make(map[int]struct{}, 2*(len(a.Add)+len(a.Remove)))
	for _, e := range a.Add {
		vs[e.U] = struct{}{}
		vs[e.V] = struct{}{}
	}
	for _, e := range a.Remove {
		vs[e.U] = struct{}{}
		vs[e.V] = struct{}{}
	}
	return vs
}

// ConflictsWith reports whether the two augmentations touch a common vertex.
func (a Augmentation) ConflictsWith(b Augmentation) bool {
	vs := a.Vertices()
	for _, e := range b.Add {
		if _, ok := vs[e.U]; ok {
			return true
		}
		if _, ok := vs[e.V]; ok {
			return true
		}
	}
	for _, e := range b.Remove {
		if _, ok := vs[e.U]; ok {
			return true
		}
		if _, ok := vs[e.V]; ok {
			return true
		}
	}
	return false
}

// ErrInvalidAugmentation is returned by Apply when the augmentation does not
// fit the matching (a Remove edge is absent, or an Add edge conflicts).
var ErrInvalidAugmentation = errors.New("graph: invalid augmentation")

// Apply applies a to m, returning the realised gain. On error m is left
// unchanged.
func Apply(m *Matching, a Augmentation) (Weight, error) {
	for _, e := range a.Remove {
		if !m.Has(e.U, e.V) {
			return 0, fmt.Errorf("%w: remove edge %v not in matching", ErrInvalidAugmentation, e)
		}
	}
	// Validate the add set against a simulated post-removal state.
	removed := make(map[int]struct{}, 2*len(a.Remove))
	for _, e := range a.Remove {
		removed[e.U] = struct{}{}
		removed[e.V] = struct{}{}
	}
	used := make(map[int]struct{}, 2*len(a.Add))
	for _, e := range a.Add {
		if e.U == e.V {
			return 0, fmt.Errorf("%w: self loop %v", ErrInvalidAugmentation, e)
		}
		for _, v := range [2]int{e.U, e.V} {
			if _, dup := used[v]; dup {
				return 0, fmt.Errorf("%w: add edges share vertex %d", ErrInvalidAugmentation, v)
			}
			used[v] = struct{}{}
			if _, freed := removed[v]; !freed && m.IsMatched(v) {
				return 0, fmt.Errorf("%w: add edge %v conflicts at vertex %d", ErrInvalidAugmentation, e, v)
			}
		}
	}
	var gain Weight
	for _, e := range a.Remove {
		gain -= e.W
		// Has was verified above, so Remove cannot fail.
		if err := m.Remove(e.U, e.V); err != nil {
			return 0, err
		}
	}
	for _, e := range a.Add {
		gain += e.W
		if err := m.Add(e); err != nil {
			return 0, err
		}
	}
	return gain, nil
}

// Applies reports whether a fits m (every Remove edge matched, Add edges
// vertex-disjoint and free after the removals) — the Apply precondition
// without the cost of constructing rejection errors. The greedy
// conflict-resolution loops reject most of their candidates, so the
// rejection path must not allocate; augmentations are short (bounded by the
// layer count), so the quadratic endpoint scans beat building sets.
func Applies(m *Matching, a Augmentation) bool {
	for i, e := range a.Remove {
		if !m.Has(e.U, e.V) {
			return false
		}
		// A pair listed twice would make the second removal fail mid-apply
		// (distinct matched pairs cannot share an endpoint, so duplicate
		// pairs are the only overlap to guard).
		for _, prev := range a.Remove[:i] {
			if KeyOf(prev.U, prev.V) == KeyOf(e.U, e.V) {
				return false
			}
		}
	}
	freed := func(v int) bool {
		for _, e := range a.Remove {
			if e.U == v || e.V == v {
				return true
			}
		}
		return false
	}
	for i, e := range a.Add {
		if e.U == e.V || e.W <= 0 {
			return false
		}
		for _, v := range [2]int{e.U, e.V} {
			for _, prev := range a.Add[:i] {
				if prev.U == v || prev.V == v {
					return false
				}
			}
			if m.IsMatched(v) && !freed(v) {
				return false
			}
		}
	}
	return true
}

// ApplyDisjoint applies each augmentation that does not conflict with the
// current matching state (greedily, in order), skipping those that fail
// validation. It returns the total realised gain and the number applied.
// This is the greedy conflict-resolution step shared by Algorithm 1's
// Finalize and Algorithm 3's final loop.
func ApplyDisjoint(m *Matching, augs []Augmentation) (Weight, int) {
	var total Weight
	applied := 0
	for _, a := range augs {
		if !Applies(m, a) {
			continue
		}
		var gain Weight
		for _, e := range a.Remove {
			gain -= e.W
			// Applies verified membership; Remove cannot fail.
			if err := m.Remove(e.U, e.V); err != nil {
				panic(err)
			}
		}
		for _, e := range a.Add {
			gain += e.W
			if err := m.Add(e); err != nil {
				panic(err)
			}
		}
		total += gain
		applied++
	}
	return total, applied
}

// PathAugmentation builds the augmentation corresponding to an alternating
// path or cycle C (a sequence of edges alternating between non-matching and
// matching edges of m), together with the matching neighbourhood CM of
// Definition 4.3: every matched edge incident to a vertex of C is removed,
// and the non-matching edges of C are added.
//
// The caller supplies only the edges to add (the non-matching edges); the
// removals are derived from m. The add edges must be vertex disjoint.
func PathAugmentation(m *Matching, add []Edge) Augmentation {
	removeSet := make(map[Key]Edge)
	for _, e := range add {
		for _, v := range [2]int{e.U, e.V} {
			if u := m.Mate(v); u != Unmatched {
				me := Edge{U: v, V: u, W: m.EdgeWeightAt(v)}.Canonical()
				removeSet[me.EdgeKey()] = me
			}
		}
	}
	remove := make([]Edge, 0, len(removeSet))
	for _, e := range removeSet {
		remove = append(remove, e)
	}
	return Augmentation{Remove: remove, Add: add}
}

// GainOf computes the gain of adding the given vertex-disjoint edge set to m
// after evicting the conflicting matched edges (the w+ of Definition 4.5 for
// the induced augmentation).
func GainOf(m *Matching, add []Edge) Weight {
	return PathAugmentation(m, add).Gain()
}
