package graph

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// sampleSections is a small but representative snapshot body: an empty
// section, a binary section, and a text section.
func sampleSections() []SnapshotSection {
	return []SnapshotSection{
		{Name: "empty", Data: nil},
		{Name: "bin", Data: []byte{0, 1, 2, 0xff, 0xfe, 7}},
		{Name: "text", Data: []byte("round=3\nstalled=0\n")},
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	enc := EncodeSnapshot(3, sampleSections())
	version, sections, err := DecodeSnapshot(enc, 3)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if version != 3 {
		t.Fatalf("version = %d, want 3", version)
	}
	want := sampleSections()
	if len(sections) != len(want) {
		t.Fatalf("got %d sections, want %d", len(sections), len(want))
	}
	for i, s := range sections {
		if s.Name != want[i].Name || !bytes.Equal(s.Data, want[i].Data) {
			t.Errorf("section %d = %q/%v, want %q/%v", i, s.Name, s.Data, want[i].Name, want[i].Data)
		}
	}
	if _, ok := FindSection(sections, "text"); !ok {
		t.Errorf("FindSection(text) missed")
	}
	if _, ok := FindSection(sections, "absent"); ok {
		t.Errorf("FindSection(absent) hit")
	}
}

// TestSnapshotDetectsEveryByteFlip is the CRC64 guarantee made concrete:
// flipping any single byte anywhere in the file — header, section table,
// payload, trailer — must turn decoding into an error, never into silently
// different state.
func TestSnapshotDetectsEveryByteFlip(t *testing.T) {
	enc := EncodeSnapshot(1, sampleSections())
	for i := range enc {
		for _, flip := range []byte{0x01, 0x80} {
			mut := append([]byte(nil), enc...)
			mut[i] ^= flip
			if _, _, err := DecodeSnapshot(mut, 1); err == nil {
				t.Fatalf("flip 0x%02x at byte %d/%d decoded cleanly", flip, i, len(enc))
			}
		}
	}
}

// TestSnapshotDetectsEveryTruncation: every proper prefix must be rejected
// (an interrupted write can stop anywhere).
func TestSnapshotDetectsEveryTruncation(t *testing.T) {
	enc := EncodeSnapshot(1, sampleSections())
	for i := 0; i < len(enc); i++ {
		if _, _, err := DecodeSnapshot(enc[:i], 1); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded cleanly", i, len(enc))
		}
	}
}

func TestSnapshotVersionSkew(t *testing.T) {
	enc := EncodeSnapshot(2, sampleSections())
	if _, _, err := DecodeSnapshot(enc, 1); !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("decoding v2 with a v1 reader: err = %v, want ErrSnapshotVersion", err)
	}
	if _, _, err := DecodeSnapshot(enc, 2); err != nil {
		t.Fatalf("decoding v2 with a v2 reader: %v", err)
	}
	// Older versions stay readable: the reader cap is a ceiling, not a pin.
	old := EncodeSnapshot(1, sampleSections())
	if _, _, err := DecodeSnapshot(old, 2); err != nil {
		t.Fatalf("decoding v1 with a v2 reader: %v", err)
	}
}

func TestSnapshotErrorTaxonomy(t *testing.T) {
	enc := EncodeSnapshot(1, sampleSections())
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrSnapshotMagic},
		{"text file", []byte("p 4 2\n0 1 5\n2 3 7\n"), ErrSnapshotMagic},
		{"magic only", enc[:8], ErrSnapshotTruncated},
		// With the trailer cut off, the last 8 content bytes are read as the
		// trailer and cannot match the shifted window: reported as checksum.
		{"missing trailer", enc[:len(enc)-8], ErrSnapshotChecksum},
	}
	for _, tc := range cases {
		if _, _, err := DecodeSnapshot(tc.data, 1); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
	// A payload flip specifically reports the checksum (structure intact).
	mut := append([]byte(nil), enc...)
	mut[len(mut)-12] ^= 0x40
	if _, _, err := DecodeSnapshot(mut, 1); !errors.Is(err, ErrSnapshotChecksum) {
		t.Errorf("payload flip: err = %v, want ErrSnapshotChecksum", err)
	}
}

func TestGraphSectionRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := RandomGraph(40, 120, 50, rng).G
	dec, err := DecodeGraphSection(EncodeGraphSection(g))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if dec.N() != g.N() || dec.M() != g.M() {
		t.Fatalf("decoded %d/%d, want %d/%d", dec.N(), dec.M(), g.N(), g.M())
	}
	for i, e := range dec.Edges() {
		if e != g.Edges()[i] {
			t.Fatalf("edge %d = %v, want %v", i, e, g.Edges()[i])
		}
	}
}

func TestMatchingSectionRoundTrip(t *testing.T) {
	m := NewMatching(6)
	mustAdd(m, Edge{U: 0, V: 3, W: 5})
	mustAdd(m, Edge{U: 1, V: 2, W: 9})
	dec, err := DecodeMatchingSection(EncodeMatchingSection(m))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if dec.N() != m.N() || dec.Size() != m.Size() || dec.Weight() != m.Weight() {
		t.Fatalf("decoded n=%d size=%d w=%d, want n=%d size=%d w=%d",
			dec.N(), dec.Size(), dec.Weight(), m.N(), m.Size(), m.Weight())
	}
	if err := dec.Validate(); err != nil {
		t.Fatalf("decoded matching invalid: %v", err)
	}
}

// TestSectionRejectsInvalidPayloads: checksum-valid bytes still re-validate
// semantically — a hand-crafted section cannot smuggle in an illegal graph
// or matching.
func TestSectionRejectsInvalidPayloads(t *testing.T) {
	selfLoop := append([]byte(nil), EncodeGraphSection(New(4))...)
	// Rewrite header to declare 1 edge and append a self loop 2-2.
	selfLoop[4] = 1
	selfLoop = append(selfLoop, 2, 0, 0, 0, 2, 0, 0, 0, 3, 0, 0, 0, 0, 0, 0, 0)
	if _, err := DecodeGraphSection(selfLoop); !errors.Is(err, ErrSnapshotSection) {
		t.Errorf("self-loop graph: err = %v, want ErrSnapshotSection", err)
	}

	m := NewMatching(4)
	mustAdd(m, Edge{U: 0, V: 1, W: 2})
	enc := EncodeMatchingSection(m)
	outOfRange := append([]byte(nil), enc...)
	outOfRange[8] = 9 // edge endpoint 9 over n=4
	if _, err := DecodeMatchingSection(outOfRange); !errors.Is(err, ErrSnapshotSection) {
		t.Errorf("out-of-range matching: err = %v, want ErrSnapshotSection", err)
	}
	short := enc[:len(enc)-4]
	if _, err := DecodeMatchingSection(short); !errors.Is(err, ErrSnapshotSection) {
		t.Errorf("short matching payload: err = %v, want ErrSnapshotSection", err)
	}
}

// FuzzSnapshotRoundTrip drives DecodeSnapshot over arbitrary bytes: it must
// never panic, and any input it accepts must re-encode to an equivalent
// snapshot that decodes to the same sections (the container is closed under
// its own round trip).
func FuzzSnapshotRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("p 4 2\n0 1 5\n2 3 7\n"))
	f.Add(EncodeSnapshot(1, nil))
	f.Add(EncodeSnapshot(1, sampleSections()))
	f.Add(EncodeSnapshot(7, []SnapshotSection{{Name: "graph", Data: EncodeGraphSection(New(3))}}))
	trunc := EncodeSnapshot(1, sampleSections())
	f.Add(trunc[:len(trunc)-3])
	f.Fuzz(func(t *testing.T, data []byte) {
		version, sections, err := DecodeSnapshot(data, 1<<31)
		if err != nil {
			return
		}
		re := EncodeSnapshot(version, sections)
		version2, sections2, err := DecodeSnapshot(re, 1<<31)
		if err != nil {
			t.Fatalf("re-encoded snapshot rejected: %v", err)
		}
		if version2 != version || len(sections2) != len(sections) {
			t.Fatalf("round trip changed shape: v%d/%d sections vs v%d/%d",
				version, len(sections), version2, len(sections2))
		}
		for i := range sections {
			if sections[i].Name != sections2[i].Name || !bytes.Equal(sections[i].Data, sections2[i].Data) {
				t.Fatalf("round trip changed section %d", i)
			}
		}
	})
}
