package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatchingBasics(t *testing.T) {
	m := NewMatching(6)
	if m.Size() != 0 || m.Weight() != 0 {
		t.Fatal("new matching not empty")
	}
	if err := m.Add(Edge{U: 0, V: 1, W: 5}); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(Edge{U: 2, V: 3, W: 7}); err != nil {
		t.Fatal(err)
	}
	if m.Size() != 2 || m.Weight() != 12 {
		t.Fatalf("size=%d weight=%d", m.Size(), m.Weight())
	}
	if m.Mate(0) != 1 || m.Mate(1) != 0 {
		t.Error("mate bookkeeping wrong")
	}
	if m.EdgeWeightAt(2) != 7 {
		t.Errorf("EdgeWeightAt(2) = %d", m.EdgeWeightAt(2))
	}
	if m.EdgeWeightAt(4) != 0 {
		t.Errorf("EdgeWeightAt(4) = %d for unmatched", m.EdgeWeightAt(4))
	}
	if !m.Has(0, 1) || !m.Has(1, 0) || m.Has(0, 2) {
		t.Error("Has wrong")
	}
	if err := m.Add(Edge{U: 1, V: 4, W: 1}); err == nil {
		t.Error("conflicting Add accepted")
	}
	if err := m.Remove(0, 1); err != nil {
		t.Fatal(err)
	}
	if m.Size() != 1 || m.Weight() != 7 {
		t.Fatalf("after remove: size=%d weight=%d", m.Size(), m.Weight())
	}
	if err := m.Remove(0, 1); err == nil {
		t.Error("double remove accepted")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMatchingAddForced(t *testing.T) {
	m := NewMatching(6)
	mustAdd(m, Edge{U: 0, V: 1, W: 5})
	mustAdd(m, Edge{U: 2, V: 3, W: 3})
	// Force edge (1,2): evicts both existing edges.
	delta := m.AddForced(Edge{U: 1, V: 2, W: 10})
	if delta != 10-8 {
		t.Errorf("delta = %d, want 2", delta)
	}
	if m.Size() != 1 || m.Weight() != 10 {
		t.Errorf("size=%d weight=%d", m.Size(), m.Weight())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMatchingEdgesAndClone(t *testing.T) {
	m := NewMatching(6)
	mustAdd(m, Edge{U: 4, V: 5, W: 2})
	mustAdd(m, Edge{U: 0, V: 3, W: 9})
	edges := m.Edges()
	if len(edges) != 2 {
		t.Fatalf("Edges len = %d", len(edges))
	}
	if edges[0].U != 0 || edges[0].V != 3 {
		t.Errorf("edge order: %v", edges)
	}
	c := m.Clone()
	if err := c.Remove(0, 3); err != nil {
		t.Fatal(err)
	}
	if !m.Has(0, 3) {
		t.Error("Clone shares state with original")
	}
}

func TestMatchingFromEdges(t *testing.T) {
	if _, err := MatchingFromEdges(4, []Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}}); err == nil {
		t.Error("overlapping edges accepted")
	}
	m, err := MatchingFromEdges(4, []Edge{{U: 0, V: 1, W: 1}, {U: 2, V: 3, W: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Weight() != 3 {
		t.Errorf("weight = %d", m.Weight())
	}
}

// quick-check invariant 1 of DESIGN.md: under any sequence of random
// AddForced operations the matching stays internally consistent.
func TestMatchingInvariantQuick(t *testing.T) {
	f := func(seed int64, opsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20
		m := NewMatching(n)
		ops := int(opsRaw)%100 + 1
		for i := 0; i < ops; i++ {
			u := rng.Intn(n)
			v := rng.Intn(n)
			if u == v {
				continue
			}
			w := Weight(1 + rng.Intn(50))
			switch rng.Intn(3) {
			case 0:
				_ = m.Add(Edge{U: u, V: v, W: w}) // may legitimately fail
			case 1:
				m.AddForced(Edge{U: u, V: v, W: w})
			case 2:
				if mv := m.Mate(u); mv != Unmatched {
					_ = m.Remove(u, mv)
				}
			}
			if err := m.Validate(); err != nil {
				t.Logf("invariant broken after op %d: %v", i, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
