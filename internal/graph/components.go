package graph

// AlternatingComponent is one connected component of the symmetric
// difference of two matchings: a simple path or an even cycle whose edges
// alternate between the two matchings.
type AlternatingComponent struct {
	// Vertices in path/cycle order. For cycles the first vertex is not
	// repeated at the end.
	Vertices []int
	// InFirst[i] reports whether the i-th edge of the component belongs to
	// the first matching passed to SymmetricDifference.
	InFirst []bool
	// Weights[i] is the weight of the i-th edge.
	Weights []Weight
	IsCycle bool
}

// EdgeCount returns the number of edges on the component.
func (c AlternatingComponent) EdgeCount() int { return len(c.InFirst) }

// Edge returns the i-th edge of the component.
func (c AlternatingComponent) Edge(i int) Edge {
	u := c.Vertices[i]
	v := c.Vertices[(i+1)%len(c.Vertices)]
	return Edge{U: u, V: v, W: c.Weights[i]}
}

// SymmetricDifference decomposes the symmetric difference of two matchings
// over the same vertex set into its alternating paths and cycles. Edges
// present in both matchings (same pair) cancel and do not appear.
//
// This is the structural object behind Fact 1.3 and Lemma 4.9: the
// components are exactly the candidate augmentations between a current
// matching and an optimal one.
func SymmetricDifference(a, b *Matching) []AlternatingComponent {
	n := a.N()
	if b.N() != n {
		return nil
	}
	type arc struct {
		to      int
		w       Weight
		inFirst bool
	}
	adj := make([][]arc, n)
	addEdge := func(u, v int, w Weight, inFirst bool) {
		adj[u] = append(adj[u], arc{to: v, w: w, inFirst: inFirst})
		adj[v] = append(adj[v], arc{to: u, w: w, inFirst: inFirst})
	}
	for u := 0; u < n; u++ {
		if v := a.Mate(u); v > u && !b.Has(u, v) {
			addEdge(u, v, a.EdgeWeightAt(u), true)
		}
		if v := b.Mate(u); v > u && !a.Has(u, v) {
			addEdge(u, v, b.EdgeWeightAt(u), false)
		}
	}

	visited := make([]bool, n)
	var comps []AlternatingComponent

	// Every vertex has degree at most 2 in the symmetric difference (at most
	// one edge from each matching), and there are no parallel edges, so each
	// component is a simple path or a cycle of length >= 4 and can be walked
	// by never stepping back to the previous vertex.
	walk := func(start int) AlternatingComponent {
		comp := AlternatingComponent{Vertices: []int{start}}
		visited[start] = true
		cur, prev := start, -1
		for {
			var next *arc
			for i := range adj[cur] {
				e := &adj[cur][i]
				if e.to != prev {
					next = e
					break
				}
			}
			if next == nil {
				return comp
			}
			comp.InFirst = append(comp.InFirst, next.inFirst)
			comp.Weights = append(comp.Weights, next.w)
			if next.to == start {
				comp.IsCycle = true
				return comp
			}
			visited[next.to] = true
			comp.Vertices = append(comp.Vertices, next.to)
			prev = cur
			cur = next.to
		}
	}

	deg := make([]int, n)
	for v := range adj {
		deg[v] = len(adj[v])
	}
	// Paths first: start walks from degree-1 endpoints so that paths are
	// traversed end to end.
	for v := 0; v < n; v++ {
		if !visited[v] && deg[v] == 1 {
			comps = append(comps, walk(v))
		}
	}
	// Remaining components are cycles.
	for v := 0; v < n; v++ {
		if !visited[v] && deg[v] > 0 {
			comps = append(comps, walk(v))
		}
	}
	return comps
}

// ComponentGain returns the gain of switching the component from its
// first-matching edges to its second-matching edges: w(edges in b) minus
// w(edges in a).
func ComponentGain(c AlternatingComponent) Weight {
	var g Weight
	for i, inFirst := range c.InFirst {
		if inFirst {
			g -= c.Weights[i]
		} else {
			g += c.Weights[i]
		}
	}
	return g
}
