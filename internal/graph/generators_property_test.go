package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: PlantedMatching's planted matching is truly optimal — verified
// against brute force on small instances.
func TestPlantedMatchingOptimalQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := PlantedMatching(8, 10, 40, 80, rng)
		best := bruteForceMaxWeight(inst.G)
		return best == inst.OptWeight
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// bruteForceMaxWeight enumerates all matchings over the edge set (feasible
// for tiny m) and returns the maximum weight.
func bruteForceMaxWeight(g *Graph) Weight {
	edges := g.Edges()
	var best Weight
	var rec func(i int, used map[int]bool, w Weight)
	rec = func(i int, used map[int]bool, w Weight) {
		if w > best {
			best = w
		}
		for j := i; j < len(edges); j++ {
			e := edges[j]
			if used[e.U] || used[e.V] {
				continue
			}
			used[e.U], used[e.V] = true, true
			rec(j+1, used, w+e.W)
			delete(used, e.U)
			delete(used, e.V)
		}
	}
	rec(0, make(map[int]bool), 0)
	return best
}

// Property: AugmentingChain's reported optimum matches brute force for both
// weight regimes (outer-pair wins vs middle wins).
func TestAugmentingChainOptimalQuick(t *testing.T) {
	f := func(seed int64, outRaw, midRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		out := Weight(outRaw%20 + 1)
		mid := Weight(midRaw%20 + 1)
		inst := AugmentingChain(3, out, mid, rng)
		return bruteForceMaxWeight(inst.G) == inst.OptWeight
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: WeightedCycle's optimum matches brute force for any weight pair.
func TestWeightedCycleOptimalQuick(t *testing.T) {
	f := func(aRaw, bRaw uint8, halfRaw uint8) bool {
		a := Weight(aRaw%30 + 1)
		b := Weight(bRaw%30 + 1)
		half := int(halfRaw%3) + 2
		inst := WeightedCycle(half, a, b)
		return bruteForceMaxWeight(inst.G) == inst.OptWeight
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: ThreeAugWorkload's opt matching applies exactly the planted
// augmentations (size k + planted count) and validates.
func TestThreeAugWorkloadConsistencyQuick(t *testing.T) {
	f := func(seed int64, betaRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		beta := float64(betaRaw%10+1) / 10
		k := 20
		inst, m0 := ThreeAugWorkload(k, beta, 15, rng)
		if m0.Validate() != nil || inst.Opt.Validate() != nil {
			return false
		}
		return inst.Opt.Size() == k+int(beta*float64(k))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: every generator emits structurally valid graphs (validated by
// re-adding all edges through the checking constructor).
func TestGeneratorsEmitValidGraphsQuick(t *testing.T) {
	f := func(seed int64, pick uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var inst Instance
		switch pick % 5 {
		case 0:
			inst = RandomGraph(20, 40, 50, rng)
		case 1:
			inst = RandomBipartite(8, 9, 30, 50, rng)
		case 2:
			inst = PlantedMatching(12, 20, 40, 80, rng)
		case 3:
			inst = GeometricWeights(15, 30, 2, 8, rng)
		case 4:
			inst = AugmentingChain(4, 3, 4, rng)
		}
		_, err := FromEdges(inst.G.N(), inst.G.Edges())
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
