package graph

import (
	"errors"
	"testing"
)

func TestFindEdge(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 5)
	g.MustAddEdge(2, 3, 7)
	g.MustAddEdge(1, 2, 3)

	if i, ok := g.FindEdge(1, 0); !ok || i != 0 {
		t.Fatalf("FindEdge(1,0) = %d,%t; want 0,true", i, ok)
	}
	if i, ok := g.FindEdge(2, 3); !ok || i != 1 {
		t.Fatalf("FindEdge(2,3) = %d,%t; want 1,true", i, ok)
	}
	if _, ok := g.FindEdge(0, 3); ok {
		t.Fatal("FindEdge(0,3) found a nonexistent edge")
	}
}

func TestSetEdgeWeight(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 5)
	g.Adjacency() // materialise the cache so the test can observe invalidation

	if err := g.SetEdgeWeight(0, 9); err != nil {
		t.Fatal(err)
	}
	if w := g.EdgeAt(0).W; w != 9 {
		t.Fatalf("weight after reweight = %d; want 9", w)
	}
	if got := g.Adjacency()[0][0].W; got != 9 {
		t.Fatalf("adjacency cache not invalidated: weight %d; want 9", got)
	}
	if err := g.SetEdgeWeight(0, 0); !errors.Is(err, ErrNonPositiveWeight) {
		t.Fatalf("reweight to 0: err = %v; want ErrNonPositiveWeight", err)
	}
	if err := g.SetEdgeWeight(5, 1); err == nil {
		t.Fatal("reweight out of range: want error")
	}
}

func TestRemoveEdgeAtSwapSemantics(t *testing.T) {
	g := New(5)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 2)
	g.MustAddEdge(2, 3, 3)
	g.MustAddEdge(3, 4, 4)

	moved, err := g.RemoveEdgeAt(1)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 3 {
		t.Fatalf("moved = %d; want 3 (last edge into slot 1)", moved)
	}
	want := []Edge{{U: 0, V: 1, W: 1}, {U: 3, V: 4, W: 4}, {U: 2, V: 3, W: 3}}
	if got := g.Edges(); len(got) != len(want) {
		t.Fatalf("edges = %v; want %v", got, want)
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("edges[%d] = %v; want %v", i, got[i], want[i])
			}
		}
	}

	// Removing the last edge moves nothing.
	moved, err = g.RemoveEdgeAt(2)
	if err != nil {
		t.Fatal(err)
	}
	if moved != -1 {
		t.Fatalf("moved = %d; want -1 for the last slot", moved)
	}
	if g.M() != 2 {
		t.Fatalf("m = %d; want 2", g.M())
	}
	if _, err := g.RemoveEdgeAt(7); err == nil {
		t.Fatal("remove out of range: want error")
	}
}

func TestGraphClone(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 5)
	c := g.Clone()
	g.MustAddEdge(1, 2, 7)
	if err := g.SetEdgeWeight(0, 9); err != nil {
		t.Fatal(err)
	}
	if c.M() != 1 || c.EdgeAt(0).W != 5 {
		t.Fatalf("clone mutated alongside original: %v", c.Edges())
	}
}

func TestMatchingReweight(t *testing.T) {
	m := NewMatching(4)
	if err := m.Add(Edge{U: 0, V: 1, W: 5}); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(Edge{U: 2, V: 3, W: 3}); err != nil {
		t.Fatal(err)
	}
	if err := m.Reweight(1, 0, 9); err != nil {
		t.Fatal(err)
	}
	if m.Weight() != 12 {
		t.Fatalf("weight = %d; want 12", m.Weight())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := m.Reweight(0, 2, 1); !errors.Is(err, ErrNotMatched) {
		t.Fatalf("reweight of unmatched pair: err = %v; want ErrNotMatched", err)
	}
	if err := m.Reweight(0, 1, 0); !errors.Is(err, ErrNonPositiveWeight) {
		t.Fatalf("reweight to 0: err = %v; want ErrNonPositiveWeight", err)
	}
}
