package graph

// Snapshot container: the repository's one persistent-state format. A
// snapshot is a magic header, a format version, a list of named binary
// sections, and a CRC64-ECMA trailer over everything that precedes it.
// Sections keep the container schema-free — each subsystem owns its
// sections' encodings (internal/core composes graph, matching, driver and
// stats sections into a solve checkpoint) — while the container guarantees
// the robustness properties every consumer needs: a truncated file, a
// flipped bit anywhere, or a future-version file is detected and reported
// as an error, never parsed into wrong state. CRC64 detects every
// single-bit and single-byte error outright (and longer burst errors up to
// its design bound), which is what lets the error-path tests demand "flip
// any byte → error" rather than sampling.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
)

// snapshotMagic opens every snapshot; the trailing NUL keeps it from ever
// prefixing the text edge-list format ("p <n> <m>").
var snapshotMagic = [8]byte{'A', 'U', 'G', 'S', 'N', 'A', 'P', 0}

var snapshotCRC = crc64.MakeTable(crc64.ECMA)

// Snapshot error conditions. All of them mean the bytes must not be
// trusted; callers degrade (typically to a cold start) instead of parsing.
var (
	// ErrSnapshotMagic: the bytes do not start with the snapshot magic —
	// not a snapshot at all, or one whose header was damaged.
	ErrSnapshotMagic = errors.New("graph: not a snapshot (bad magic)")
	// ErrSnapshotTruncated: the bytes end before the declared structure
	// does (an interrupted write, a partial copy).
	ErrSnapshotTruncated = errors.New("graph: snapshot truncated")
	// ErrSnapshotChecksum: the CRC64 trailer does not match the content —
	// at least one bit of the file changed since it was written.
	ErrSnapshotChecksum = errors.New("graph: snapshot checksum mismatch")
	// ErrSnapshotVersion: the format version is newer than this reader —
	// written by a later build; refuse rather than guess at the layout.
	ErrSnapshotVersion = errors.New("graph: unsupported snapshot version")
	// ErrSnapshotSection: a section payload does not decode under its
	// declared schema (only reachable on checksum-valid bytes, i.e. a
	// buggy or adversarial writer, not in-flight corruption).
	ErrSnapshotSection = errors.New("graph: malformed snapshot section")
)

// SnapshotSection is one named payload of a snapshot. Names are short ASCII
// identifiers owned by the writer; the container imposes no schema on Data.
type SnapshotSection struct {
	Name string
	Data []byte
}

// FindSection returns the payload of the first section with the given name.
func FindSection(sections []SnapshotSection, name string) ([]byte, bool) {
	for _, s := range sections {
		if s.Name == name {
			return s.Data, true
		}
	}
	return nil, false
}

// snapshot layout bounds: sanity limits that keep a checksum-valid but
// hostile header from driving huge allocations.
const (
	maxSnapshotSections = 1 << 10
	maxSectionName      = 1 << 6
)

// EncodeSnapshot serialises sections under the given format version:
// magic, version, section count, each section as (name length, name, data
// length, data), then the CRC64-ECMA of all preceding bytes. All integers
// are little-endian and fixed-width.
func EncodeSnapshot(version uint32, sections []SnapshotSection) []byte {
	size := len(snapshotMagic) + 4 + 4 + 8
	for _, s := range sections {
		size += 4 + len(s.Name) + 8 + len(s.Data)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, snapshotMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, version)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(sections)))
	for _, s := range sections {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Name)))
		buf = append(buf, s.Name...)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(len(s.Data)))
		buf = append(buf, s.Data...)
	}
	return binary.LittleEndian.AppendUint64(buf, crc64.Checksum(buf, snapshotCRC))
}

// DecodeSnapshot parses and verifies a snapshot: magic, then checksum over
// the whole body, then structure. maxVersion is the newest format version
// the caller understands; a snapshot declaring a higher one is rejected
// with ErrSnapshotVersion (version skew), since its sections may follow a
// layout this reader predates. The returned section payloads alias data.
func DecodeSnapshot(data []byte, maxVersion uint32) (version uint32, sections []SnapshotSection, err error) {
	header := len(snapshotMagic) + 4 + 4
	if len(data) < len(snapshotMagic) || string(data[:len(snapshotMagic)]) != string(snapshotMagic[:]) {
		return 0, nil, ErrSnapshotMagic
	}
	if len(data) < header+8 {
		return 0, nil, ErrSnapshotTruncated
	}
	body, trailer := data[:len(data)-8], data[len(data)-8:]
	if crc64.Checksum(body, snapshotCRC) != binary.LittleEndian.Uint64(trailer) {
		return 0, nil, ErrSnapshotChecksum
	}
	version = binary.LittleEndian.Uint32(data[len(snapshotMagic):])
	if version > maxVersion {
		return 0, nil, fmt.Errorf("%w: snapshot v%d, reader caps at v%d", ErrSnapshotVersion, version, maxVersion)
	}
	nsect := binary.LittleEndian.Uint32(data[len(snapshotMagic)+4:])
	if nsect > maxSnapshotSections {
		return 0, nil, fmt.Errorf("%w: %d sections exceeds the container bound", ErrSnapshotSection, nsect)
	}
	rest := body[header:]
	sections = make([]SnapshotSection, 0, nsect)
	for i := uint32(0); i < nsect; i++ {
		if len(rest) < 4 {
			return 0, nil, ErrSnapshotTruncated
		}
		nameLen := binary.LittleEndian.Uint32(rest)
		rest = rest[4:]
		if nameLen > maxSectionName {
			return 0, nil, fmt.Errorf("%w: section name of %d bytes", ErrSnapshotSection, nameLen)
		}
		if uint32(len(rest)) < nameLen+8 {
			return 0, nil, ErrSnapshotTruncated
		}
		name := string(rest[:nameLen])
		dataLen := binary.LittleEndian.Uint64(rest[nameLen:])
		rest = rest[nameLen+8:]
		if uint64(len(rest)) < dataLen {
			return 0, nil, ErrSnapshotTruncated
		}
		sections = append(sections, SnapshotSection{Name: name, Data: rest[:dataLen]})
		rest = rest[dataLen:]
	}
	if len(rest) != 0 {
		return 0, nil, fmt.Errorf("%w: %d bytes after the last section", ErrSnapshotSection, len(rest))
	}
	return version, sections, nil
}

// EncodeGraphSection serialises g as a snapshot section payload: vertex
// count, edge count, then each edge as (U, V, W) fixed-width little-endian.
func EncodeGraphSection(g *Graph) []byte {
	buf := make([]byte, 0, 8+16*g.M())
	buf = binary.LittleEndian.AppendUint32(buf, uint32(g.N()))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(g.M()))
	for _, e := range g.Edges() {
		buf = appendEdge(buf, e)
	}
	return buf
}

// DecodeGraphSection rebuilds a graph from EncodeGraphSection's payload,
// re-validating every edge (range, self-loop, weight) on the way in.
func DecodeGraphSection(data []byte) (*Graph, error) {
	n, edges, err := decodeEdgeList(data, "graph")
	if err != nil {
		return nil, err
	}
	g, err := FromEdges(n, edges)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshotSection, err)
	}
	return g, nil
}

// EncodeMatchingSection serialises m as a snapshot section payload: vertex
// count, matched-edge count, then the matched edges as (U, V, W).
func EncodeMatchingSection(m *Matching) []byte {
	edges := m.Edges()
	buf := make([]byte, 0, 8+16*len(edges))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.N()))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(edges)))
	for _, e := range edges {
		buf = appendEdge(buf, e)
	}
	return buf
}

// DecodeMatchingSection rebuilds a matching from EncodeMatchingSection's
// payload, re-validating vertex ranges and disjointness on the way in.
func DecodeMatchingSection(data []byte) (*Matching, error) {
	n, edges, err := decodeEdgeList(data, "matching")
	if err != nil {
		return nil, err
	}
	for _, e := range edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return nil, fmt.Errorf("%w: matching edge %v outside n=%d", ErrSnapshotSection, e, n)
		}
	}
	m, err := MatchingFromEdges(n, edges)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshotSection, err)
	}
	return m, nil
}

func appendEdge(buf []byte, e Edge) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(e.U))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(e.V))
	return binary.LittleEndian.AppendUint64(buf, uint64(e.W))
}

// decodeEdgeList parses the shared (n, count, edges...) payload layout of
// the graph and matching sections.
func decodeEdgeList(data []byte, what string) (n int, edges []Edge, err error) {
	if len(data) < 8 {
		return 0, nil, fmt.Errorf("%w: %s header short", ErrSnapshotSection, what)
	}
	n = int(int32(binary.LittleEndian.Uint32(data)))
	count := binary.LittleEndian.Uint32(data[4:])
	rest := data[8:]
	if n < 0 || uint64(len(rest)) != 16*uint64(count) {
		return 0, nil, fmt.Errorf("%w: %s declares %d edges over %d payload bytes", ErrSnapshotSection, what, count, len(rest))
	}
	edges = make([]Edge, count)
	for i := range edges {
		edges[i] = Edge{
			U: int(int32(binary.LittleEndian.Uint32(rest))),
			V: int(int32(binary.LittleEndian.Uint32(rest[4:]))),
			W: Weight(binary.LittleEndian.Uint64(rest[8:])),
		}
		rest = rest[16:]
	}
	return n, edges, nil
}
