// Package graph provides the weighted-graph and matching substrate used by
// every algorithm in this repository.
//
// Vertices are integers in [0, n). Edges carry positive integer weights
// (the paper assumes integral weights bounded by poly(n); see Section 3.2
// of Gamlath–Kale–Mitrović–Svensson, PODC 2019). The package also contains
// workload generators with planted optimal matchings so that approximation
// ratios can be measured exactly at scales where exact solvers are
// infeasible.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Weight is the edge-weight type used throughout the repository. The paper
// assumes positive integer weights bounded by poly(n), which int64 covers
// for every feasible instance size.
type Weight = int64

// Edge is an undirected weighted edge between vertices U and V.
type Edge struct {
	U, V int
	W    Weight
}

// Other returns the endpoint of e that is not v. It returns -1 when v is not
// an endpoint of e.
func (e Edge) Other(v int) int {
	switch v {
	case e.U:
		return e.V
	case e.V:
		return e.U
	default:
		return -1
	}
}

// Canonical returns a copy of e with U <= V so that edges can be used as map
// keys irrespective of endpoint order.
func (e Edge) Canonical() Edge {
	if e.U > e.V {
		e.U, e.V = e.V, e.U
	}
	return e
}

// Key identifies an undirected vertex pair; it is the canonical map key for
// an edge irrespective of weight.
type Key struct {
	U, V int
}

// KeyOf returns the canonical key of the pair (u, v).
func KeyOf(u, v int) Key {
	if u > v {
		u, v = v, u
	}
	return Key{U: u, V: v}
}

// EdgeKey returns the canonical key of e.
func (e Edge) EdgeKey() Key { return KeyOf(e.U, e.V) }

// String implements fmt.Stringer.
func (e Edge) String() string {
	return fmt.Sprintf("{%d-%d w=%d}", e.U, e.V, e.W)
}

// Graph is a simple undirected weighted graph with a fixed vertex count.
// The zero value is an empty graph on zero vertices; use New for a graph
// with vertices.
type Graph struct {
	n     int
	edges []Edge
	// adj caches Adjacency(); AddEdge invalidates it.
	adj [][]IncidentEdge
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	return &Graph{n: n}
}

// FromEdges builds a graph on n vertices with a copy of the given edges.
// It returns an error if any edge is a self loop, references a vertex
// outside [0, n), or has non-positive weight.
func FromEdges(n int, edges []Edge) (*Graph, error) {
	g := New(n)
	for _, e := range edges {
		if err := g.AddEdge(e); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// Edges returns the graph's edge slice. Callers must not mutate it; use
// CopyEdges for a private copy.
func (g *Graph) Edges() []Edge { return g.edges }

// CopyEdges returns a fresh copy of the edge slice.
func (g *Graph) CopyEdges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

var (
	// ErrSelfLoop is returned when an edge connects a vertex to itself.
	ErrSelfLoop = errors.New("graph: self loop")
	// ErrVertexRange is returned when an edge references a vertex outside [0, n).
	ErrVertexRange = errors.New("graph: vertex out of range")
	// ErrNonPositiveWeight is returned for edges of weight <= 0.
	ErrNonPositiveWeight = errors.New("graph: non-positive edge weight")
)

// AddEdge appends an edge after validating it.
func (g *Graph) AddEdge(e Edge) error {
	if e.U == e.V {
		return fmt.Errorf("%w: %v", ErrSelfLoop, e)
	}
	if e.U < 0 || e.U >= g.n || e.V < 0 || e.V >= g.n {
		return fmt.Errorf("%w: %v (n=%d)", ErrVertexRange, e, g.n)
	}
	if e.W <= 0 {
		return fmt.Errorf("%w: %v", ErrNonPositiveWeight, e)
	}
	g.edges = append(g.edges, e)
	g.adj = nil
	return nil
}

// MustAddEdge is AddEdge for construction sites where the inputs are
// compile-time constants (tests, examples). It panics on invalid edges.
func (g *Graph) MustAddEdge(u, v int, w Weight) {
	if err := g.AddEdge(Edge{U: u, V: v, W: w}); err != nil {
		panic(err)
	}
}

// IncidentEdge is an adjacency entry: the neighbour and the index of the
// underlying edge in Edges().
type IncidentEdge struct {
	To        int
	W         Weight
	EdgeIndex int
}

// Adjacency materialises adjacency lists. The result is cached until the
// next AddEdge, so repeated callers share one materialisation; callers must
// not mutate the returned lists (use Adjacency only for reads, or copy).
// The cache is not synchronised — confine concurrent use to reads after a
// first materialising call.
func (g *Graph) Adjacency() [][]IncidentEdge {
	if g.adj != nil {
		return g.adj
	}
	deg := make([]int, g.n)
	for _, e := range g.edges {
		deg[e.U]++
		deg[e.V]++
	}
	adj := make([][]IncidentEdge, g.n)
	for v := range adj {
		adj[v] = make([]IncidentEdge, 0, deg[v])
	}
	for i, e := range g.edges {
		adj[e.U] = append(adj[e.U], IncidentEdge{To: e.V, W: e.W, EdgeIndex: i})
		adj[e.V] = append(adj[e.V], IncidentEdge{To: e.U, W: e.W, EdgeIndex: i})
	}
	g.adj = adj
	return adj
}

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() Weight {
	var total Weight
	for _, e := range g.edges {
		total += e.W
	}
	return total
}

// MaxWeight returns the largest edge weight, or 0 on an edgeless graph.
func (g *Graph) MaxWeight() Weight {
	var maxW Weight
	for _, e := range g.edges {
		if e.W > maxW {
			maxW = e.W
		}
	}
	return maxW
}

// IsBipartiteWith reports whether side (a 0/1 colouring of the vertices)
// 2-colours the graph: every edge must cross sides.
func (g *Graph) IsBipartiteWith(side []bool) bool {
	if len(side) != g.n {
		return false
	}
	for _, e := range g.edges {
		if side[e.U] == side[e.V] {
			return false
		}
	}
	return true
}

// SortedEdges returns a copy of the edges sorted by descending weight,
// breaking ties by (U, V) for determinism.
func (g *Graph) SortedEdges() []Edge {
	out := g.CopyEdges()
	sort.Slice(out, func(i, j int) bool {
		if out[i].W != out[j].W {
			return out[i].W > out[j].W
		}
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}
