package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	inst := RandomGraph(20, 50, 30, rng)
	var buf bytes.Buffer
	if _, err := inst.G.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != inst.G.N() || g2.M() != inst.G.M() {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d", g2.N(), g2.M(), inst.G.N(), inst.G.M())
	}
	for i, e := range g2.Edges() {
		if e != inst.G.Edges()[i] {
			t.Fatalf("edge %d changed: %v vs %v", i, e, inst.G.Edges()[i])
		}
	}
}

func TestReadErrors(t *testing.T) {
	tests := []struct {
		name, in string
	}{
		{"empty", ""},
		{"bad header", "q 3 1\n0 1 2\n"},
		{"bad n", "p x 1\n0 1 2\n"},
		{"bad edge arity", "p 3 1\n0 1\n"},
		{"edge count mismatch", "p 3 2\n0 1 2\n"},
		{"out of range", "p 2 1\n0 5 2\n"},
		{"zero weight", "p 2 1\n0 1 0\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Read(strings.NewReader(tt.in)); err == nil {
				t.Errorf("Read(%q) succeeded, want error", tt.in)
			}
		})
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := "# comment\n\np 2 1\n# another\n0 1 7\n"
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 || g.Edges()[0].W != 7 {
		t.Errorf("parsed %v", g.Edges())
	}
}
