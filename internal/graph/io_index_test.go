package graph_test

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/layered"
)

// TestRoundTripPreservesIncIndexState checks the text edge format carries
// everything the incremental viability index derives from a graph: an
// IncIndex built on the re-read graph must be indistinguishable — same
// buckets, counts, masks, and survival probe — from one built on the
// original, across matching deltas and bipartition redraws. This is the
// round-trip property the persistence paths (cmd/auggen | cmd/augrun)
// rely on when an amortised Solve runs on a deserialised instance.
func TestRoundTripPreservesIncIndexState(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	inst := graph.RandomGraph(24, 90, 200, rng)

	var buf bytes.Buffer
	if _, err := inst.G.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := graph.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}

	prm := layered.Params{}.WithDefaults()
	ws := []float64{400, 256, 100, 64, 33}
	ixA := layered.NewIncIndex(inst.G.N(), inst.G.Edges(), ws, prm)
	ixB := layered.NewIncIndex(g2.N(), g2.Edges(), ws, prm)
	maxU, _ := prm.Units()

	m := graph.NewMatching(inst.G.N())
	for round := 0; round < 4; round++ {
		// Advance the matching with a few graph edges, then draw one shared
		// bipartition for both indexes.
		for k := 0; k < 3; k++ {
			e := inst.G.Edges()[rng.Intn(inst.G.M())]
			if !m.IsMatched(e.U) && !m.IsMatched(e.V) {
				if err := m.Add(e); err != nil {
					t.Fatal(err)
				}
			}
		}
		side := make([]bool, inst.G.N())
		for v := range side {
			side[v] = rng.Intn(2) == 1
		}
		ixA.BeginRound(layered.ParametrizeWithSide(inst.G.N(), inst.G.Edges(), m, side))
		ixB.BeginRound(layered.ParametrizeWithSide(g2.N(), g2.Edges(), m, side))

		for c := range ws {
			vA, vB := ixA.View(c), ixB.View(c)
			for u := 0; u <= maxU; u++ {
				a1, a2 := vA.A(u), vB.A(u)
				if len(a1) != len(a2) {
					t.Fatalf("round %d class %d: A(%d) sizes %d vs %d", round, c, u, len(a1), len(a2))
				}
				for i := range a1 {
					if a1[i] != a2[i] {
						t.Fatalf("round %d class %d: A(%d)[%d] %v vs %v", round, c, u, i, a1[i], a2[i])
					}
				}
				b1, b2 := vA.B(u), vB.B(u)
				if len(b1) != len(b2) {
					t.Fatalf("round %d class %d: B(%d) sizes %d vs %d", round, c, u, len(b1), len(b2))
				}
				for i := range b1 {
					if b1[i] != b2[i] {
						t.Fatalf("round %d class %d: B(%d)[%d] %v vs %v", round, c, u, i, b1[i], b2[i])
					}
				}
			}
			ma1, mb1, ok1 := vA.Masks()
			ma2, mb2, ok2 := vB.Masks()
			if ma1 != ma2 || mb1 != mb2 || ok1 != ok2 {
				t.Fatalf("round %d class %d: masks differ", round, c)
			}
			aMask, bMask, _ := vA.Masks()
			for _, tau := range layered.EnumerateGoodPairsMasked(prm, aMask, bMask, 25) {
				if vA.ProbeY(tau) != vB.ProbeY(tau) {
					t.Fatalf("round %d class %d: probe differs for %+v", round, c, tau)
				}
				kA := vA.PairKey(tau, nil)
				kB := vB.PairKey(tau, nil)
				if !bytes.Equal(kA, kB) {
					t.Fatalf("round %d class %d: pair keys differ for %+v", round, c, tau)
				}
			}
		}
	}
}
