package graph

// Mutable edge store: the graph-side half of the fully-dynamic mutation
// stream (PR 8). A Graph's edge slice is append-ordered and most of the
// repository treats that order as canonical — bucket contents, layered
// builds, and the differential suite's bit-identity claims are all stated
// relative to it — so the mutation primitives commit to simple,
// deterministic order semantics:
//
//   - insert appends (AddEdge, unchanged),
//   - delete swap-removes (the last edge moves into the deleted slot),
//   - reweight edits in place (no reorder).
//
// A "cold solve on the post-edit graph" therefore means a solve over
// exactly the edge sequence these semantics leave behind; callers keeping
// derived per-edge state in sync (layered.IncIndex) are told which index
// moved so they can remap in O(band).
//
// Index-validity contract (audited PR 9): an edge index is valid only
// until the next RemoveEdgeAt — the swap moves the last edge into the
// freed slot, so a held index may silently address a different edge
// afterwards. Every caller therefore re-resolves FindEdge per op against
// the current slice instead of carrying indices across ops
// (core.ApplyMutations, the solvertest/bench batch simulators); the
// delete-then-reweight-same-batch regression
// (solvertest.TestEditStreamDeleteThenReweightSwapSlot) pins the pattern
// that would misfire if a caller pre-resolved a batch's indices up front.

import "fmt"

// EdgeAt returns the edge at index i of Edges().
func (g *Graph) EdgeAt(i int) Edge { return g.edges[i] }

// FindEdge returns the index of the first edge joining u and v (in either
// orientation), or ok = false when no such edge exists. With parallel
// edges the lowest index wins — the same edge a delete or reweight by
// endpoints addresses.
func (g *Graph) FindEdge(u, v int) (i int, ok bool) {
	for i, e := range g.edges {
		if (e.U == u && e.V == v) || (e.U == v && e.V == u) {
			return i, true
		}
	}
	return -1, false
}

// SetEdgeWeight replaces the weight of the edge at index i, validating it
// like AddEdge would. The edge keeps its index, so derived per-edge state
// needs no remap — only the weight-dependent parts (class windows) change.
func (g *Graph) SetEdgeWeight(i int, w Weight) error {
	if i < 0 || i >= len(g.edges) {
		return fmt.Errorf("%w: edge index %d (m=%d)", ErrVertexRange, i, len(g.edges))
	}
	if w <= 0 {
		return fmt.Errorf("%w: reweight to %d", ErrNonPositiveWeight, w)
	}
	g.edges[i].W = w
	g.adj = nil
	return nil
}

// RemoveEdgeAt deletes the edge at index i by swap-remove: the last edge
// moves into slot i (unless i was last) and the slice shrinks by one.
// moved is the pre-delete index of the edge now living at i, or -1 when no
// edge moved — the remap notification derived per-edge state (the
// incremental index's window slots) consumes.
func (g *Graph) RemoveEdgeAt(i int) (moved int, err error) {
	if i < 0 || i >= len(g.edges) {
		return -1, fmt.Errorf("%w: edge index %d (m=%d)", ErrVertexRange, i, len(g.edges))
	}
	last := len(g.edges) - 1
	moved = -1
	if i != last {
		g.edges[i] = g.edges[last]
		moved = last
	}
	g.edges = g.edges[:last]
	g.adj = nil
	return moved, nil
}

// Clone returns a deep copy of the graph (the adjacency cache is not
// copied; it re-materialises on first use).
func (g *Graph) Clone() *Graph {
	return &Graph{n: g.n, edges: g.CopyEdges()}
}

// Reweight updates the stored weight of the matched pair (u, v) to w,
// keeping the total in sync — the matching-side companion of
// Graph.SetEdgeWeight for edges that are currently matched. It errors when
// the pair is not matched or w is non-positive.
func (m *Matching) Reweight(u, v int, w Weight) error {
	if u == v || m.mate[u] != v {
		return fmt.Errorf("%w: (%d,%d)", ErrNotMatched, u, v)
	}
	if w <= 0 {
		return fmt.Errorf("%w: reweight to %d", ErrNonPositiveWeight, w)
	}
	m.total += w - m.w[u]
	m.w[u], m.w[v] = w, w
	return nil
}
