package mpc

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 10); err == nil {
		t.Error("zero machines accepted")
	}
	if _, err := New(2, 0); err == nil {
		t.Error("zero memory accepted")
	}
	s, err := New(4, 100)
	if err != nil {
		t.Fatal(err)
	}
	if s.Machines() != 4 || s.MemPerMachine() != 100 {
		t.Error("config not stored")
	}
}

func TestRoundsAndLoads(t *testing.T) {
	s, err := New(2, 50)
	if err != nil {
		t.Fatal(err)
	}
	s.NextRound()
	if err := s.Use(30); err != nil {
		t.Fatal(err)
	}
	s.NextRound()
	if err := s.Use(45); err != nil {
		t.Fatal(err)
	}
	if s.Rounds() != 2 {
		t.Errorf("rounds = %d, want 2", s.Rounds())
	}
	if s.PeakLoad() != 45 {
		t.Errorf("peak = %d, want 45", s.PeakLoad())
	}
	err = s.Use(51)
	if !errors.Is(err, ErrMemoryExceeded) {
		t.Errorf("overload error = %v", err)
	}
	if s.PeakLoad() != 51 {
		t.Errorf("peak after overload = %d, want 51", s.PeakLoad())
	}
}

func TestPartitionEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	edges := make([]graph.Edge, 103)
	for i := range edges {
		edges[i] = graph.Edge{U: i, V: i + 1, W: 1}
	}
	parts := PartitionEdges(edges, 4, rng)
	if len(parts) != 4 {
		t.Fatalf("parts = %d", len(parts))
	}
	total := 0
	seen := make(map[graph.Key]bool)
	for _, p := range parts {
		total += len(p)
		if len(p) < 103/4-1 || len(p) > 103/4+2 {
			t.Errorf("unbalanced part of size %d", len(p))
		}
		for _, e := range p {
			if seen[e.EdgeKey()] {
				t.Fatalf("edge %v duplicated across parts", e)
			}
			seen[e.EdgeKey()] = true
		}
	}
	if total != 103 {
		t.Errorf("total = %d", total)
	}
}

func TestPartitionEdgesDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	parts := PartitionEdges(nil, 0, rng)
	if len(parts) != 1 || len(parts[0]) != 0 {
		t.Errorf("degenerate partition = %v", parts)
	}
}

func TestMachinesFor(t *testing.T) {
	if MachinesFor(1000, 100) != 10 {
		t.Error("m/n = 10 expected")
	}
	if MachinesFor(5, 100) != 1 {
		t.Error("floor at 1 expected")
	}
	if MachinesFor(5, 0) != 1 {
		t.Error("n=0 floor at 1 expected")
	}
}

func TestCommAccounting(t *testing.T) {
	s, err := New(2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Send(40); err != nil {
		t.Fatal(err)
	}
	if err := s.Send(30); err != nil {
		t.Fatal(err)
	}
	s.NextRound()
	if err := s.Send(10); err != nil {
		t.Fatal(err)
	}
	if s.TotalComm() != 80 {
		t.Errorf("total comm = %d, want 80", s.TotalComm())
	}
	if s.PeakRoundComm() != 70 {
		t.Errorf("peak round comm = %d, want 70", s.PeakRoundComm())
	}
	if err := s.Send(200); !errors.Is(err, ErrCommExceeded) {
		t.Errorf("oversized send error = %v", err)
	}
}
