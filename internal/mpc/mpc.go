// Package mpc simulates the Massively Parallel Computation model of
// Section 2 of the paper (Karloff–Suri–Vassilvitskii [KSV10] and
// refinements): Γ machines with S bits of memory each compute in synchronous
// rounds; between rounds every machine sends and receives at most S bits.
// The simulator executes algorithms in-process while counting rounds and
// validating per-machine memory loads, so the paper's round-complexity and
// memory claims (Theorem 1.2(1)) become measurable quantities.
//
// Memory is accounted in words (one edge or one vertex id = one word),
// matching the convention that S = Θ~(n) words in the near-linear regime the
// paper targets.
package mpc

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// ErrMemoryExceeded is returned when a machine's declared load exceeds its
// per-machine memory S.
var ErrMemoryExceeded = errors.New("mpc: per-machine memory exceeded")

// Simulator tracks rounds, memory, and communication for one MPC execution.
type Simulator struct {
	machines  int
	mem       int
	rounds    int
	peak      int
	totalComm int
	roundComm int
	peakComm  int
}

// New returns a simulator with the given machine count and per-machine
// memory (in words).
func New(machines, memPerMachine int) (*Simulator, error) {
	if machines < 1 {
		return nil, fmt.Errorf("mpc: need at least 1 machine, got %d", machines)
	}
	if memPerMachine < 1 {
		return nil, fmt.Errorf("mpc: need positive memory, got %d", memPerMachine)
	}
	return &Simulator{machines: machines, mem: memPerMachine}, nil
}

// Machines returns Γ.
func (s *Simulator) Machines() int { return s.machines }

// MemPerMachine returns S in words.
func (s *Simulator) MemPerMachine() int { return s.mem }

// Rounds returns the number of completed rounds.
func (s *Simulator) Rounds() int { return s.rounds }

// PeakLoad returns the largest per-machine load observed.
func (s *Simulator) PeakLoad() int { return s.peak }

// NextRound advances the round counter. Algorithms call it once per
// synchronous communication round.
func (s *Simulator) NextRound() {
	s.rounds++
	if s.roundComm > s.peakComm {
		s.peakComm = s.roundComm
	}
	s.roundComm = 0
}

// Use declares that some machine holds load words during the current round.
func (s *Simulator) Use(load int) error {
	if load > s.peak {
		s.peak = load
	}
	if load > s.mem {
		return fmt.Errorf("%w: load %d > S %d", ErrMemoryExceeded, load, s.mem)
	}
	return nil
}

// ErrCommExceeded is returned when a machine sends or receives more than S
// words in one round (the Section 2 communication constraint).
var ErrCommExceeded = errors.New("mpc: per-machine communication exceeded")

// Send declares that some machine transfers words in the current round.
// Per the model, a machine sends and receives at most S words per round.
func (s *Simulator) Send(words int) error {
	s.totalComm += words
	s.roundComm += words
	if words > s.mem {
		return fmt.Errorf("%w: %d words > S %d", ErrCommExceeded, words, s.mem)
	}
	return nil
}

// TotalComm returns the total words communicated across all rounds.
func (s *Simulator) TotalComm() int { return s.totalComm }

// PeakRoundComm returns the largest per-round communication volume seen at
// a completed round boundary.
func (s *Simulator) PeakRoundComm() int {
	if s.roundComm > s.peakComm {
		return s.roundComm
	}
	return s.peakComm
}

// PartitionEdges splits edges into k balanced parts uniformly at random (the
// "no structure assumed" input distribution of Section 2). The input slice
// is not modified.
func PartitionEdges(edges []graph.Edge, k int, rng *rand.Rand) [][]graph.Edge {
	if k < 1 {
		k = 1
	}
	perm := rng.Perm(len(edges))
	parts := make([][]graph.Edge, k)
	per := (len(edges) + k - 1) / k
	for i := range parts {
		parts[i] = make([]graph.Edge, 0, per)
	}
	for i, idx := range perm {
		parts[i%k] = append(parts[i%k], edges[idx])
	}
	return parts
}

// MachinesFor returns the paper's machine count O(m/n) for an instance with
// m edges and n vertices, at least 1.
func MachinesFor(m, n int) int {
	if n <= 0 {
		return 1
	}
	k := m / n
	if k < 1 {
		k = 1
	}
	return k
}
