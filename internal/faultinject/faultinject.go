// Package faultinject is the deterministic fault-injection harness behind
// the degradation-ladder chaos tests (internal/solvertest, PR 6): a set of
// injection points compiled into the amortised pipeline's hazard sites —
// the places where retained cross-round state (delta-chain arenas, repair
// CSRs, cache digests, the dirty-class bitmap) could go stale or corrupt —
// plus a seed-keyed injector that fires each site at a configured rate.
//
// Every injected fault is DETECTABLE by construction: a site either raises
// one of the ladder's eight recoverable sentinels (the five
// layered.ErrDelta* baseline rejections and the three bipartite.ErrRepair*
// ones), corrupts state that a checksum self-check covers (cache digests,
// the dirty bitmap), or panics where the worker pool recovers. The degradation
// ladder in internal/core must then quarantine the damaged state and
// re-run the affected pair/class/round through the cold path, so a chaos
// run returns the bit-identical matching of an uninjected run — which is
// exactly what the chaos suite asserts at every rate.
//
// The injector is deterministic per (seed, site, nth-call-at-site): a
// fixed seed and a sequential sweep replay the same fault schedule. Under
// a parallel class sweep the per-site call order — and so the fired set —
// is scheduling-dependent, but the ladder's fallbacks are bit-identical,
// so results stay deterministic even when the schedule is not.
//
// Production builds pay one atomic pointer load per hazard site: with no
// injector activated, Fire returns false immediately.
package faultinject

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Site names one compiled-in hazard point of the amortised pipeline.
type Site uint8

const (
	// DeltaStale fires inside layered.BuildDelta: the baseline build is
	// reported stale (ErrDeltaStale) as if a later build had reused its
	// arena. Ladder response: rebuild the pair via BuildIndexed.
	DeltaStale Site = iota
	// DirtyGate fires inside layered.IncIndex.BeginRound, after the
	// dirty-bitmap digest is sealed: one class's dirty bit is flipped,
	// modelling post-setup corruption of the round-scoped gate. Ladder
	// response: the digest self-check fails and the round runs the full
	// sweep instead of trusting any skip.
	DirtyGate
	// RepairToken fires inside bipartite.RepairHK: the retained CSR's
	// solve token is reported mismatched (ErrRepairStale) as if a foreign
	// solve had overwritten the arena. Ladder response: full retained
	// solve.
	RepairToken
	// RepairInfo fires on core's repair path: the DeltaInfo changed-suffix
	// descriptor is corrupted before it reaches RepairHK, which detects
	// the out-of-bounds kept prefix (ErrRepairInfo). Ladder response: full
	// retained solve.
	RepairInfo
	// CacheDigest fires inside core's cross-class pair cache: the stored
	// entry checksum has a bit flipped, modelling corruption of a cached
	// candidate set. Ladder response: the hit's checksum self-check fails,
	// the entry is evicted, and the pair is re-solved.
	CacheDigest
	// WorkerPanic fires at the top of an amortised per-class sweep: the
	// worker panics mid-class. Ladder response: the pool recovers, the
	// class's amortised state is quarantined, and the class re-runs cold.
	WorkerPanic
	// ChainLink fires inside layered.BuildDelta at the cross-round chain
	// link — a delta build whose baseline was assembled in an earlier round
	// (PR 7): the link is reported severed (ErrDeltaStale) as if the
	// baseline's round epoch could not be validated. Ladder response: the
	// caller falls back to a from-scratch BuildIndexed, restarting the chain
	// round-locally — bit-identical by construction.
	ChainLink

	numSites
)

var siteNames = [numSites]string{
	DeltaStale:  "delta-stale",
	DirtyGate:   "dirty-gate",
	RepairToken: "repair-token",
	RepairInfo:  "repair-info",
	CacheDigest: "cache-digest",
	WorkerPanic: "worker-panic",
	ChainLink:   "chain-link",
}

func (s Site) String() string {
	if int(s) < len(siteNames) {
		return siteNames[s]
	}
	return fmt.Sprintf("site-%d", uint8(s))
}

// Sites returns every hazard site, for harnesses that iterate them.
func Sites() []Site {
	out := make([]Site, numSites)
	for i := range out {
		out[i] = Site(i)
	}
	return out
}

// Injector fires hazard sites deterministically: call n at site s fires iff
// hash(seed, s, n) falls under the rate threshold. Counters are atomic so
// the parallel class sweep can consult one injector without locking.
type Injector struct {
	seed      uint64
	threshold uint64
	calls     [numSites]atomic.Uint64
	fired     [numSites]atomic.Uint64
}

// New returns an injector that fires each site on the given fraction of its
// calls (clamped to [0, 1]), keyed by seed: same seed, same per-site fault
// schedule.
func New(seed int64, rate float64) *Injector {
	switch {
	case rate <= 0 || math.IsNaN(rate):
		rate = 0
	case rate >= 1:
		rate = 1
	}
	in := &Injector{seed: splitmix(uint64(seed))}
	if rate == 1 {
		in.threshold = math.MaxUint64
	} else {
		in.threshold = uint64(rate * float64(1<<63) * 2)
	}
	return in
}

// splitmix is splitmix64, the avalanche mix the fire decisions hash with.
func splitmix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// fire decides call n of site s.
func (in *Injector) fire(s Site) bool {
	n := in.calls[s].Add(1)
	if splitmix(in.seed^(uint64(s)<<56)^n) >= in.threshold {
		return false
	}
	in.fired[s].Add(1)
	return true
}

// Fired reports how many times site s has fired on this injector.
func (in *Injector) Fired(s Site) uint64 { return in.fired[s].Load() }

// Calls reports how many times site s has been consulted.
func (in *Injector) Calls(s Site) uint64 { return in.calls[s].Load() }

// FiredTotal reports the total faults injected across all sites.
func (in *Injector) FiredTotal() uint64 {
	var t uint64
	for s := Site(0); s < numSites; s++ {
		t += in.fired[s].Load()
	}
	return t
}

// active is the process-wide injector consulted by the hazard sites; nil
// (the default) disables injection entirely.
var active atomic.Pointer[Injector]

// Activate installs in as the process-wide injector. Chaos harnesses
// activate around the run under test and must Deactivate afterwards;
// concurrent harnesses own distinct processes, not distinct injectors.
func Activate(in *Injector) { active.Store(in) }

// Deactivate removes the process-wide injector.
func Deactivate() { active.Store(nil) }

// Enabled reports whether an injector is active.
func Enabled() bool { return active.Load() != nil }

// Fire consults the active injector for site s. With no injector active it
// is a single atomic load returning false — the production fast path.
func Fire(s Site) bool {
	in := active.Load()
	if in == nil {
		return false
	}
	return in.fire(s)
}
