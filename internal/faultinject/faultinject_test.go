package faultinject

import "testing"

// TestDeterministicSchedule pins the injector's core contract: the same
// (seed, rate) replays the same per-site fire schedule, call for call.
func TestDeterministicSchedule(t *testing.T) {
	const n = 10_000
	for _, rate := range []float64{0.01, 0.1, 0.5} {
		a, b := New(7, rate), New(7, rate)
		for _, s := range Sites() {
			for i := 0; i < n; i++ {
				if a.fire(s) != b.fire(s) {
					t.Fatalf("rate %v site %v call %d: schedules diverge", rate, s, i)
				}
			}
		}
	}
}

// TestRateIsApproximate checks the fired fraction lands near the configured
// rate (the hash is uniform, so 10k draws bound the error tightly), and
// that distinct seeds produce distinct schedules.
func TestRateIsApproximate(t *testing.T) {
	const n = 10_000
	for _, rate := range []float64{0.01, 0.1} {
		in := New(1, rate)
		for i := 0; i < n; i++ {
			in.fire(DeltaStale)
		}
		got := float64(in.Fired(DeltaStale)) / n
		if got < rate/2 || got > rate*2 {
			t.Fatalf("rate %v: fired fraction %v out of band", rate, got)
		}
	}
	a, b := New(1, 0.5), New(2, 0.5)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.fire(CacheDigest) == b.fire(CacheDigest) {
			same++
		}
	}
	if same == 1000 {
		t.Fatal("seeds 1 and 2 produced identical schedules")
	}
}

// TestRateExtremes: rate 0 never fires, rate 1 always fires, and malformed
// rates clamp to never.
func TestRateExtremes(t *testing.T) {
	never := New(3, 0)
	always := New(3, 1)
	nan := New(3, -5)
	for i := 0; i < 1000; i++ {
		if never.fire(WorkerPanic) {
			t.Fatal("rate 0 fired")
		}
		if !always.fire(WorkerPanic) {
			t.Fatal("rate 1 did not fire")
		}
		if nan.fire(WorkerPanic) {
			t.Fatal("negative rate fired")
		}
	}
	if got := always.FiredTotal(); got != 1000 {
		t.Fatalf("FiredTotal = %d, want 1000", got)
	}
	if got := always.Calls(WorkerPanic); got != 1000 {
		t.Fatalf("Calls = %d, want 1000", got)
	}
}

// TestGlobalActivation: Fire is inert without an injector and routes to the
// active one with it.
func TestGlobalActivation(t *testing.T) {
	if Enabled() {
		t.Fatal("injector active at test start")
	}
	if Fire(DeltaStale) {
		t.Fatal("inert Fire fired")
	}
	in := New(1, 1)
	Activate(in)
	defer Deactivate()
	if !Enabled() {
		t.Fatal("Enabled false after Activate")
	}
	if !Fire(DeltaStale) {
		t.Fatal("rate-1 global Fire did not fire")
	}
	Deactivate()
	if Fire(DeltaStale) {
		t.Fatal("Fire fired after Deactivate")
	}
	if in.Fired(DeltaStale) != 1 {
		t.Fatalf("Fired = %d, want 1", in.Fired(DeltaStale))
	}
}

// TestSiteNames: every site has a distinct printable name (the chaos
// reports key on them).
func TestSiteNames(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range Sites() {
		name := s.String()
		if name == "" || seen[name] {
			t.Fatalf("site %d: bad or duplicate name %q", s, name)
		}
		seen[name] = true
	}
	if Site(200).String() != "site-200" {
		t.Fatalf("out-of-range site name = %q", Site(200).String())
	}
}
