// Package matchutil provides baseline matching algorithms and exact test
// oracles: greedy maximal matching (the 1/2-approximation both Section 3
// algorithms must beat), greedy weighted matching, an exact maximum-weight
// matching solver for small instances (bitmask dynamic program), and an
// offline 3-augmenting-path finder used to calibrate Lemma 3.1 experiments.
package matchutil

import (
	"repro/internal/graph"
)

// GreedyMaximal builds a maximal matching by scanning edges in the given
// order and adding every edge whose endpoints are both free. On unweighted
// (unit-weight) graphs this is the classic 1/2-approximation; under random
// edge order it is the baseline that Theorem 3.4 improves on.
func GreedyMaximal(n int, edges []graph.Edge) *graph.Matching {
	m := graph.NewMatching(n)
	for _, e := range edges {
		if !m.IsMatched(e.U) && !m.IsMatched(e.V) {
			// Endpoints checked free, so Add cannot fail.
			if err := m.Add(e); err != nil {
				panic(err)
			}
		}
	}
	return m
}

// GreedyWeighted sorts edges by descending weight and adds greedily. This is
// the classic offline 1/2-approximation for maximum weight matching.
func GreedyWeighted(g *graph.Graph) *graph.Matching {
	return GreedyMaximal(g.N(), g.SortedEdges())
}

// IsMaximal reports whether m is maximal in g: no edge of g has both
// endpoints free.
func IsMaximal(g *graph.Graph, m *graph.Matching) bool {
	for _, e := range g.Edges() {
		if !m.IsMatched(e.U) && !m.IsMatched(e.V) {
			return false
		}
	}
	return true
}

// Ratio returns w(m)/opt as a float, or 0 when opt is 0.
func Ratio(m *graph.Matching, opt graph.Weight) float64 {
	if opt == 0 {
		return 0
	}
	return float64(m.Weight()) / float64(opt)
}
