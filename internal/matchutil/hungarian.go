package matchutil

import (
	"fmt"

	"repro/internal/graph"
)

// MaxWeightBipartite computes an exact maximum weight matching of a
// bipartite graph with the Hungarian algorithm (Jonker–Volgenant style
// shortest augmenting paths with potentials), in O(n³). It is the exact
// weighted oracle at scales where the bitmask DP cannot reach; side[v]
// false puts v on the left.
//
// The matching maximises total weight over all matchings (not only perfect
// ones): edges never force negative contributions.
func MaxWeightBipartite(g *graph.Graph, side []bool) (*graph.Matching, error) {
	n := g.N()
	if len(side) != n {
		return nil, fmt.Errorf("matchutil: side has %d entries for n=%d", len(side), n)
	}
	var left, right []int
	for v := 0; v < n; v++ {
		if side[v] {
			right = append(right, v)
		} else {
			left = append(left, v)
		}
	}
	// Pad to a square cost matrix; the assignment problem maximises total
	// weight with zero-weight dummy edges standing for "leave unmatched".
	size := len(left)
	if len(right) > size {
		size = len(right)
	}
	if size == 0 {
		return graph.NewMatching(n), nil
	}
	weightAt := make([][]graph.Weight, size)
	for i := range weightAt {
		weightAt[i] = make([]graph.Weight, size)
	}
	leftIdx := make(map[int]int, len(left))
	for i, v := range left {
		leftIdx[v] = i
	}
	rightIdx := make(map[int]int, len(right))
	for j, v := range right {
		rightIdx[v] = j
	}
	for _, e := range g.Edges() {
		l, r := e.U, e.V
		if side[l] {
			l, r = r, l
		}
		if side[l] == side[r] {
			return nil, fmt.Errorf("matchutil: edge %v does not cross the bipartition", e)
		}
		i, j := leftIdx[l], rightIdx[r]
		if e.W > weightAt[i][j] {
			weightAt[i][j] = e.W
		}
	}

	assignment := solveAssignment(weightAt)

	m := graph.NewMatching(n)
	for i, j := range assignment {
		if i >= len(left) || j < 0 || j >= len(right) {
			continue
		}
		w := weightAt[i][j]
		if w <= 0 {
			continue // dummy pairing
		}
		if err := m.Add(graph.Edge{U: left[i], V: right[j], W: w}); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// solveAssignment solves the square max-weight assignment problem and
// returns the column assigned to each row. Standard O(n³) Hungarian
// algorithm on the negated (minimisation) matrix with potentials.
func solveAssignment(w [][]graph.Weight) []int {
	n := len(w)
	const inf = int64(1) << 62
	// cost = max - w  (minimisation form, all costs >= 0).
	var maxW graph.Weight
	for i := range w {
		for j := range w[i] {
			if w[i][j] > maxW {
				maxW = w[i][j]
			}
		}
	}
	cost := func(i, j int) int64 { return int64(maxW - w[i][j]) }

	u := make([]int64, n+1)
	v := make([]int64, n+1)
	p := make([]int, n+1) // p[j] = row matched to column j (1-based)
	way := make([]int, n+1)
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]int64, n+1)
		used := make([]bool, n+1)
		for j := 0; j <= n; j++ {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost(i0-1, j-1) - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	assignment := make([]int, n)
	for j := 1; j <= n; j++ {
		if p[j] > 0 {
			assignment[p[j]-1] = j - 1
		}
	}
	return assignment
}
