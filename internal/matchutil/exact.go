package matchutil

import (
	"fmt"
	"math/bits"

	"repro/internal/graph"
)

// MaxExactVertices is the largest vertex count MaxWeightExact accepts. The
// bitmask dynamic program uses O(2^n) memory; 22 vertices costs 32 MiB.
const MaxExactVertices = 22

// MaxWeightExact computes a maximum weight matching by dynamic programming
// over vertex subsets. It is the exact oracle for approximation-ratio tests
// on small instances (general graphs, not just bipartite). For unweighted
// maximum matching, call it on a unit-weight copy of the graph.
//
// Running time O(2^n · n), memory O(2^n); it errors for n > MaxExactVertices.
func MaxWeightExact(g *graph.Graph) (*graph.Matching, error) {
	n := g.N()
	if n > MaxExactVertices {
		return nil, fmt.Errorf("matchutil: exact solver limited to %d vertices, got %d", MaxExactVertices, n)
	}
	// wAt[u][v] = max weight among parallel (u,v) edges; -1 if absent.
	wAt := make([][]graph.Weight, n)
	for i := range wAt {
		wAt[i] = make([]graph.Weight, n)
		for j := range wAt[i] {
			wAt[i][j] = -1
		}
	}
	for _, e := range g.Edges() {
		if e.W > wAt[e.U][e.V] {
			wAt[e.U][e.V] = e.W
			wAt[e.V][e.U] = e.W
		}
	}

	size := 1 << n
	best := make([]graph.Weight, size)
	choice := make([]int32, size) // matched partner of the lowest set bit, or -1
	for mask := 1; mask < size; mask++ {
		v := bits.TrailingZeros(uint(mask))
		rest := mask &^ (1 << v)
		// Option 1: leave v unmatched.
		best[mask] = best[rest]
		choice[mask] = -1
		// Option 2: match v with some u in rest.
		for um := rest; um != 0; {
			u := bits.TrailingZeros(uint(um))
			um &^= 1 << u
			if wAt[v][u] < 0 {
				continue
			}
			cand := wAt[v][u] + best[rest&^(1<<u)]
			if cand > best[mask] {
				best[mask] = cand
				choice[mask] = int32(u)
			}
		}
	}

	m := graph.NewMatching(n)
	mask := size - 1
	for mask != 0 {
		v := bits.TrailingZeros(uint(mask))
		u := choice[mask]
		if u < 0 {
			mask &^= 1 << v
			continue
		}
		if err := m.Add(graph.Edge{U: v, V: int(u), W: wAt[v][u]}); err != nil {
			return nil, err
		}
		mask &^= (1 << v) | (1 << int(u))
	}
	return m, nil
}

// MaxCardinalityExact computes a maximum cardinality matching exactly by
// running MaxWeightExact on a unit-weight view of g.
func MaxCardinalityExact(g *graph.Graph) (*graph.Matching, error) {
	unit := graph.New(g.N())
	for _, e := range g.Edges() {
		e.W = 1
		if err := unit.AddEdge(e); err != nil {
			return nil, err
		}
	}
	return MaxWeightExact(unit)
}
