package matchutil

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestGreedyMaximalIsMaximalAndValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		inst := graph.RandomGraph(30, 80, 50, rng)
		m := GreedyMaximal(inst.G.N(), inst.G.Edges())
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
		if !IsMaximal(inst.G, m) {
			t.Fatal("greedy matching not maximal")
		}
	}
}

func TestGreedyWeightedHalfApprox(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 25; trial++ {
		inst := graph.RandomGraph(14, 40, 100, rng)
		greedy := GreedyWeighted(inst.G)
		opt, err := MaxWeightExact(inst.G)
		if err != nil {
			t.Fatal(err)
		}
		if greedy.Weight()*2 < opt.Weight() {
			t.Fatalf("trial %d: greedy %d < half of opt %d", trial, greedy.Weight(), opt.Weight())
		}
	}
}

func TestMaxWeightExactKnownInstances(t *testing.T) {
	tests := []struct {
		name  string
		build func() (*graph.Graph, graph.Weight)
	}{
		{
			"triangle takes heaviest edge",
			func() (*graph.Graph, graph.Weight) {
				g := graph.New(3)
				g.MustAddEdge(0, 1, 5)
				g.MustAddEdge(1, 2, 7)
				g.MustAddEdge(2, 0, 6)
				return g, 7
			},
		},
		{
			"paper 4-cycle 3,4,3,4",
			func() (*graph.Graph, graph.Weight) {
				return graph.WeightedCycle(2, 3, 4).G, 8
			},
		},
		{
			"path prefers outer edges",
			func() (*graph.Graph, graph.Weight) {
				// 4-2: weight 4+4 beats middle 5.
				g := graph.New(4)
				g.MustAddEdge(0, 1, 4)
				g.MustAddEdge(1, 2, 5)
				g.MustAddEdge(2, 3, 4)
				return g, 8
			},
		},
		{
			"single heavy edge beats two light",
			func() (*graph.Graph, graph.Weight) {
				g := graph.New(4)
				g.MustAddEdge(0, 1, 2)
				g.MustAddEdge(1, 2, 10)
				g.MustAddEdge(2, 3, 2)
				return g, 10
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g, want := tt.build()
			m, err := MaxWeightExact(g)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Validate(); err != nil {
				t.Fatal(err)
			}
			if m.Weight() != want {
				t.Errorf("weight = %d, want %d", m.Weight(), want)
			}
		})
	}
}

func TestMaxWeightExactMatchesPlanted(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 15; trial++ {
		inst := graph.PlantedMatching(12, 20, 100, 150, rng)
		m, err := MaxWeightExact(inst.G)
		if err != nil {
			t.Fatal(err)
		}
		if m.Weight() != inst.OptWeight {
			t.Fatalf("trial %d: exact %d != planted opt %d", trial, m.Weight(), inst.OptWeight)
		}
	}
}

func TestMaxWeightExactRejectsLarge(t *testing.T) {
	g := graph.New(MaxExactVertices + 1)
	if _, err := MaxWeightExact(g); err == nil {
		t.Error("large instance accepted")
	}
}

func TestMaxCardinalityExact(t *testing.T) {
	// Perfect matching on a 6-cycle has 3 edges.
	g := graph.New(6)
	for i := 0; i < 6; i++ {
		g.MustAddEdge(i, (i+1)%6, graph.Weight(1+i)) // weights must not matter
	}
	m, err := MaxCardinalityExact(g)
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() != 3 {
		t.Errorf("size = %d, want 3", m.Size())
	}
}

// Property: exact DP is optimal — no single augmentation (edge swap) can
// improve it on random small graphs.
func TestMaxWeightExactNoImprovingEdgeQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := graph.RandomGraph(10, 20, 30, rng)
		m, err := MaxWeightExact(inst.G)
		if err != nil {
			return false
		}
		for _, e := range inst.G.Edges() {
			if graph.GainOf(m, []graph.Edge{e}) > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFindThreeAugPathsOnPlanted(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	inst, m0 := graph.ThreeAugWorkload(30, 0.5, 0, rng)
	paths := FindThreeAugPaths(inst.G, m0)
	// All 15 planted paths are vertex-disjoint, so greedy must find all.
	if len(paths) != 15 {
		t.Fatalf("found %d paths, want 15", len(paths))
	}
	m := m0.Clone()
	for _, p := range paths {
		if _, err := graph.Apply(m, p.Augmentation()); err != nil {
			t.Fatalf("augmentation failed: %v", err)
		}
	}
	if m.Size() != 45 {
		t.Errorf("size after augmenting = %d, want 45", m.Size())
	}
}

func TestFindThreeAugPathsReverseOrientation(t *testing.T) {
	// Free neighbour only reachable when scanning from the higher endpoint
	// first: a–v–u–b with a adjacent to v only and b adjacent to u only.
	g := graph.New(4)
	g.MustAddEdge(1, 2, 1) // matched u=1, v=2
	g.MustAddEdge(0, 2, 1) // free 0 adjacent to v
	g.MustAddEdge(1, 3, 1) // free 3 adjacent to u
	m := graph.NewMatching(4)
	if err := m.Add(graph.Edge{U: 1, V: 2, W: 1}); err != nil {
		t.Fatal(err)
	}
	paths := FindThreeAugPaths(g, m)
	if len(paths) != 1 {
		t.Fatalf("found %d paths, want 1", len(paths))
	}
}

func TestCountThreeAugmentable(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	inst, m0 := graph.ThreeAugWorkload(20, 0.4, 0, rng)
	if got := CountThreeAugmentable(inst.G, m0); got != 8 {
		t.Errorf("CountThreeAugmentable = %d, want 8", got)
	}
}

func TestRatio(t *testing.T) {
	m := graph.NewMatching(2)
	if err := m.Add(graph.Edge{U: 0, V: 1, W: 5}); err != nil {
		t.Fatal(err)
	}
	if r := Ratio(m, 10); r != 0.5 {
		t.Errorf("Ratio = %v", r)
	}
	if r := Ratio(m, 0); r != 0 {
		t.Errorf("Ratio with 0 opt = %v", r)
	}
}

func TestMaxCardinalityAgainstExact(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 40; trial++ {
		inst := graph.RandomGraph(14, 30, 5, rng)
		got := MaxCardinality(inst.G)
		if err := got.Validate(); err != nil {
			t.Fatal(err)
		}
		want, err := MaxCardinalityExact(inst.G)
		if err != nil {
			t.Fatal(err)
		}
		if got.Size() != want.Size() {
			t.Fatalf("trial %d: blossom %d != exact %d", trial, got.Size(), want.Size())
		}
	}
}

func TestMaxCardinalityOddCycles(t *testing.T) {
	// Blossoms proper: odd cycles force contraction. Two triangles joined
	// by a bridge have a perfect-but-one matching of size 3.
	g := graph.New(6)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 0, 1)
	g.MustAddEdge(2, 3, 1)
	g.MustAddEdge(3, 4, 1)
	g.MustAddEdge(4, 5, 1)
	g.MustAddEdge(5, 3, 1)
	m := MaxCardinality(g)
	if m.Size() != 3 {
		t.Errorf("size = %d, want 3", m.Size())
	}
}

func TestMaxCardinalityPetersenLike(t *testing.T) {
	// 5-cycle with a pendant on each vertex: maximum matching is 5 (each
	// pendant edge), requiring the algorithm to reject the odd cycle edges.
	g := graph.New(10)
	for i := 0; i < 5; i++ {
		g.MustAddEdge(i, (i+1)%5, 1)
		g.MustAddEdge(i, 5+i, 1)
	}
	m := MaxCardinality(g)
	if m.Size() != 5 {
		t.Errorf("size = %d, want 5", m.Size())
	}
}

func TestLemma32ThreeAugmentableBound(t *testing.T) {
	// Lemma 3.2 ([KMM12] Lemma 1): for a maximal matching M' with
	// |M'| <= (1/2+a)|M*|, at least (1/2-3a)|M*| edges of M' are
	// 3-augmentable and at most 4a|M*| are not.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		inst := graph.RandomGraph(40, 120, 1, rng)
		mPrime := GreedyMaximal(inst.G.N(), inst.G.Edges())
		mStar := MaxCardinality(inst.G)
		alpha := float64(mPrime.Size())/float64(mStar.Size()) - 0.5
		if alpha < 0 {
			continue // lemma hypothesis |M'| <= (1/2+a)|M*| with a >= 0
		}
		augmentable := CountThreeAugmentable(inst.G, mPrime)
		lower := (0.5 - 3*alpha) * float64(mStar.Size())
		if float64(augmentable) < lower-1e-9 {
			t.Fatalf("trial %d: %d 3-augmentable edges below Lemma 3.2 bound %.2f (alpha=%.3f)",
				trial, augmentable, lower, alpha)
		}
		nonAug := mPrime.Size() - augmentable
		upper := 4 * alpha * float64(mStar.Size())
		if float64(nonAug) > upper+1e-9 {
			t.Fatalf("trial %d: %d non-3-augmentable edges above Lemma 3.2 bound %.2f",
				trial, nonAug, upper)
		}
	}
}
