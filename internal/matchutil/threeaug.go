package matchutil

import (
	"repro/internal/graph"
)

// ThreeAugPath is a length-3 augmenting path a–u–v–b with respect to a
// matching: (u,v) is matched, a and b are free, and a != b.
type ThreeAugPath struct {
	A, U, V, B int
	WA, WM, WB graph.Weight // weights of a–u, u–v, v–b
}

// Augmentation converts the path to a graph.Augmentation.
func (p ThreeAugPath) Augmentation() graph.Augmentation {
	return graph.Augmentation{
		Remove: []graph.Edge{{U: p.U, V: p.V, W: p.WM}},
		Add: []graph.Edge{
			{U: p.A, V: p.U, W: p.WA},
			{U: p.V, V: p.B, W: p.WB},
		},
	}
}

// FindThreeAugPaths greedily extracts a maximal set of vertex-disjoint
// 3-augmenting paths of m inside g (offline; used as the calibration oracle
// for Lemma 3.1 experiments and the final extraction step of the streaming
// algorithm). Cardinality semantics: any free–matched–matched–free path
// qualifies regardless of weights.
func FindThreeAugPaths(g *graph.Graph, m *graph.Matching) []ThreeAugPath {
	n := g.N()
	adj := g.Adjacency()
	used := make([]bool, n)
	var out []ThreeAugPath
	for u := 0; u < n; u++ {
		v := m.Mate(u)
		if v == graph.Unmatched || v < u || used[u] || used[v] {
			continue
		}
		a, wa := freeNeighbour(adj, m, used, u, -1)
		if a < 0 {
			continue
		}
		b, wb := freeNeighbour(adj, m, used, v, a)
		if b < 0 {
			// a might also be the only free neighbour of v; try the
			// symmetric orientation before giving up.
			a2, wa2 := freeNeighbour(adj, m, used, v, -1)
			if a2 < 0 {
				continue
			}
			b2, wb2 := freeNeighbour(adj, m, used, u, a2)
			if b2 < 0 {
				continue
			}
			out = append(out, ThreeAugPath{A: a2, U: v, V: u, B: b2, WA: wa2, WM: m.EdgeWeightAt(u), WB: wb2})
			used[a2], used[u], used[v], used[b2] = true, true, true, true
			continue
		}
		out = append(out, ThreeAugPath{A: a, U: u, V: v, B: b, WA: wa, WM: m.EdgeWeightAt(u), WB: wb})
		used[a], used[u], used[v], used[b] = true, true, true, true
	}
	return out
}

func freeNeighbour(adj [][]graph.IncidentEdge, m *graph.Matching, used []bool, v, exclude int) (int, graph.Weight) {
	for _, ie := range adj[v] {
		if ie.To != exclude && !used[ie.To] && !m.IsMatched(ie.To) {
			return ie.To, ie.W
		}
	}
	return -1, 0
}

// CountThreeAugmentable returns the number of matched edges of m that lie on
// at least one 3-augmenting path in g (ignoring vertex-disjointness). This
// is the quantity bounded by Lemma 3.2.
func CountThreeAugmentable(g *graph.Graph, m *graph.Matching) int {
	n := g.N()
	adj := g.Adjacency()
	count := 0
	for u := 0; u < n; u++ {
		v := m.Mate(u)
		if v == graph.Unmatched || v < u {
			continue
		}
		a, _ := freeNeighbour(adj, m, make([]bool, n), u, -1)
		if a < 0 {
			continue
		}
		b, _ := freeNeighbour(adj, m, make([]bool, n), v, a)
		if b >= 0 {
			count++
			continue
		}
		a2, _ := freeNeighbour(adj, m, make([]bool, n), v, -1)
		if a2 < 0 {
			continue
		}
		if b2, _ := freeNeighbour(adj, m, make([]bool, n), u, a2); b2 >= 0 {
			count++
		}
	}
	return count
}
