package matchutil

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func bipSide(nl, nr int) []bool {
	side := make([]bool, nl+nr)
	for v := nl; v < nl+nr; v++ {
		side[v] = true
	}
	return side
}

func TestMaxWeightBipartiteAgainstExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		inst := graph.RandomBipartite(7, 7, 25, 50, rng)
		side := bipSide(7, 7)
		got, err := MaxWeightBipartite(inst.G, side)
		if err != nil {
			t.Fatal(err)
		}
		if err := got.Validate(); err != nil {
			t.Fatal(err)
		}
		want, err := MaxWeightExact(inst.G)
		if err != nil {
			t.Fatal(err)
		}
		if got.Weight() != want.Weight() {
			t.Fatalf("trial %d: hungarian %d != exact %d", trial, got.Weight(), want.Weight())
		}
	}
}

func TestMaxWeightBipartiteUnbalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	inst := graph.RandomBipartite(4, 9, 20, 30, rng)
	side := bipSide(4, 9)
	got, err := MaxWeightBipartite(inst.G, side)
	if err != nil {
		t.Fatal(err)
	}
	want, err := MaxWeightExact(inst.G)
	if err != nil {
		t.Fatal(err)
	}
	if got.Weight() != want.Weight() {
		t.Fatalf("hungarian %d != exact %d", got.Weight(), want.Weight())
	}
}

func TestMaxWeightBipartitePrefersPartialMatching(t *testing.T) {
	// Leaving vertices unmatched must be allowed: a single heavy edge beats
	// a perfect matching of light ones here only if partial matchings win.
	g := graph.New(4) // left 0,1; right 2,3
	g.MustAddEdge(0, 2, 100)
	g.MustAddEdge(0, 3, 1)
	g.MustAddEdge(1, 2, 1)
	side := []bool{false, false, true, true}
	m, err := MaxWeightBipartite(g, side)
	if err != nil {
		t.Fatal(err)
	}
	if m.Weight() != 100 {
		t.Errorf("weight = %d, want 100 (partial matching)", m.Weight())
	}
}

func TestMaxWeightBipartiteValidation(t *testing.T) {
	g := graph.New(2)
	g.MustAddEdge(0, 1, 5)
	if _, err := MaxWeightBipartite(g, []bool{false}); err == nil {
		t.Error("short side accepted")
	}
	if _, err := MaxWeightBipartite(g, []bool{false, false}); err == nil {
		t.Error("non-crossing edge accepted")
	}
	empty, err := MaxWeightBipartite(graph.New(0), nil)
	if err != nil || empty.Size() != 0 {
		t.Error("empty graph mishandled")
	}
}

func TestMaxWeightBipartiteQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nl, nr := 2+rng.Intn(6), 2+rng.Intn(6)
		inst := graph.RandomBipartite(nl, nr, nl*nr/2+1, 40, rng)
		got, err := MaxWeightBipartite(inst.G, bipSide(nl, nr))
		if err != nil {
			return false
		}
		want, err := MaxWeightExact(inst.G)
		if err != nil {
			return false
		}
		return got.Weight() == want.Weight() && got.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
