package matchutil

import (
	"repro/internal/graph"
)

// MaxCardinality computes a maximum cardinality matching in a general
// (non-bipartite) graph with Edmonds' blossom algorithm in O(V^3). It is the
// exact unweighted oracle used by the Section 3.1 algorithm's "stored"
// branch (maximum matching among the M0-free vertices) and by tests at
// scales where the bitmask DP does not reach.
func MaxCardinality(g *graph.Graph) *graph.Matching {
	n := g.N()
	adj := make([][]int, n)
	weightOf := make(map[graph.Key]graph.Weight, g.M())
	for _, e := range g.Edges() {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
		k := e.EdgeKey()
		if w, ok := weightOf[k]; !ok || e.W > w {
			weightOf[k] = e.W
		}
	}

	b := blossomState{
		n:     n,
		adj:   adj,
		match: make([]int, n),
		p:     make([]int, n),
		base:  make([]int, n),
		used:  make([]bool, n),
		flag:  make([]bool, n),
	}
	for i := range b.match {
		b.match[i] = -1
	}
	for v := 0; v < n; v++ {
		if b.match[v] == -1 {
			b.findPath(v)
		}
	}

	m := graph.NewMatching(n)
	for v := 0; v < n; v++ {
		u := b.match[v]
		if u > v {
			// match is symmetric and self-loop free, so Add cannot fail.
			if err := m.Add(graph.Edge{U: v, V: u, W: weightOf[graph.KeyOf(v, u)]}); err != nil {
				panic(err)
			}
		}
	}
	return m
}

type blossomState struct {
	n     int
	adj   [][]int
	match []int
	p     []int
	base  []int
	used  []bool
	flag  []bool // blossom marks during contraction
}

func (b *blossomState) lca(a, v int) int {
	inPath := make([]bool, b.n)
	for {
		a = b.base[a]
		inPath[a] = true
		if b.match[a] == -1 {
			break
		}
		a = b.p[b.match[a]]
	}
	for {
		v = b.base[v]
		if inPath[v] {
			return v
		}
		v = b.p[b.match[v]]
	}
}

func (b *blossomState) markPath(v, base, child int) {
	for b.base[v] != base {
		b.flag[b.base[v]] = true
		b.flag[b.base[b.match[v]]] = true
		b.p[v] = child
		child = b.match[v]
		v = b.p[b.match[v]]
	}
}

func (b *blossomState) findPath(root int) bool {
	for i := 0; i < b.n; i++ {
		b.used[i] = false
		b.p[i] = -1
		b.base[i] = i
	}
	b.used[root] = true
	queue := make([]int, 0, b.n)
	queue = append(queue, root)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, to := range b.adj[v] {
			if b.base[v] == b.base[to] || b.match[v] == to {
				continue
			}
			if to == root || (b.match[to] != -1 && b.p[b.match[to]] != -1) {
				// Odd cycle: contract the blossom.
				curBase := b.lca(v, to)
				for i := range b.flag {
					b.flag[i] = false
				}
				b.markPath(v, curBase, to)
				b.markPath(to, curBase, v)
				for i := 0; i < b.n; i++ {
					if b.flag[b.base[i]] {
						b.base[i] = curBase
						if !b.used[i] {
							b.used[i] = true
							queue = append(queue, i)
						}
					}
				}
			} else if b.p[to] == -1 {
				b.p[to] = v
				if b.match[to] == -1 {
					b.augment(to)
					return true
				}
				b.used[b.match[to]] = true
				queue = append(queue, b.match[to])
			}
		}
	}
	return false
}

func (b *blossomState) augment(v int) {
	for v != -1 {
		pv := b.p[v]
		ppv := b.match[pv]
		b.match[v] = pv
		b.match[pv] = v
		v = ppv
	}
}
