package solvertest

// Edit-stream differential net (PR 8): the Invariant-24 bit-identity
// family extended to fully-dynamic workloads. A persistent amortised
// Runner absorbs mutation batches between rounds through the index's edit
// protocol; its cold rebuild twin applies the same batches to a second
// graph and runs every round through a fresh Runner (a from-scratch index
// on the post-edit graph). The two must agree every round on gain and
// matching (edges and weights) — if an edit charge were ever missed, a
// stale delta baseline or grouped-Y partition would survive and the
// matchings would diverge within a round or two.
//
// Cumulative solver phases are part of the bit-identity triple too, with
// one carve-out: the cross-class cache's hit-rate gate accumulates lookup
// counts "for the rest of the Solve" (Options.CacheGate), so a held runner
// and a fresh-per-round twin legitimately disagree on which pairs are
// genuinely solved versus replayed from cache — the cache is transparent,
// so the matchings stay identical while SolverPhases (which counts only
// genuine solves) drifts by a handful. With the gate disabled
// (CacheGate < 0) that lifecycle dependence vanishes and the harness
// asserts strict phase equality as well; the family sweep runs both
// configurations.

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// RandomBatch generates k random edits — inserts, deletes, reweights —
// valid against g's current state. Generation tracks a scratch clone so a
// batch never deletes the same edge twice; the batch itself is not applied
// to g. New weights stay within [1, maxW].
func RandomBatch(g *graph.Graph, k int, maxW graph.Weight, rng *rand.Rand) *core.MutationBatch {
	sim := g.Clone()
	b := &core.MutationBatch{}
	for j := 0; j < k; j++ {
		op := rng.Intn(3)
		if sim.M() == 0 {
			op = 0
		}
		switch op {
		case 0: // insert
			u, v := rng.Intn(sim.N()), rng.Intn(sim.N())
			if u == v {
				continue
			}
			w := 1 + graph.Weight(rng.Int63n(int64(maxW)))
			b.InsertEdge(u, v, w)
			if err := sim.AddEdge(graph.Edge{U: u, V: v, W: w}); err != nil {
				panic(err)
			}
		case 1: // delete (by endpoints: first match, the FindEdge order)
			e := sim.EdgeAt(rng.Intn(sim.M()))
			b.DeleteEdge(e.U, e.V)
			i, _ := sim.FindEdge(e.U, e.V)
			if _, err := sim.RemoveEdgeAt(i); err != nil {
				panic(err)
			}
		case 2: // reweight
			e := sim.EdgeAt(rng.Intn(sim.M()))
			w := 1 + graph.Weight(rng.Int63n(int64(maxW)))
			b.ReweightEdge(e.U, e.V, w)
			i, _ := sim.FindEdge(e.U, e.V)
			if err := sim.SetEdgeWeight(i, w); err != nil {
				panic(err)
			}
		}
	}
	return b
}

// EditHarness pairs a persistent mutated Runner (A) with its cold rebuild
// twin (B): the same batches applied to a second graph, every B round run
// through a fresh Runner on it. Step drives both one round and asserts
// bit-identity; scripted tests build precise batches (a matched-edge
// delete, a window-crossing reweight) against Graph()/Matching().
type EditHarness struct {
	t      *testing.T
	w      Workload
	rA     *core.Runner
	gA, gB *graph.Graph
	mA, mB *graph.Matching
	optsB  core.Options
	sA, sB core.Stats
	round  int
	// phasesStrict asserts cumulative SolverPhases equality. Only sound
	// when the cache's hit-rate gate is disabled (CacheGate < 0): the gate
	// counts lookups across the whole Solve, so a held runner and the
	// fresh-per-round twin otherwise diverge on solved-versus-replayed
	// pairs (and hence phases) while the matchings stay bit-identical.
	phasesStrict bool
}

// NewEditHarness clones the workload for both sides and seeds both Rngs
// with seed, so the two runs draw identical bipartitions.
func NewEditHarness(t *testing.T, w Workload, opts core.Options, seed int64) *EditHarness {
	optsA, optsB := opts, opts
	optsA.Rng = rand.New(rand.NewSource(seed))
	optsB.Rng = rand.New(rand.NewSource(seed))
	h := &EditHarness{
		t: t, w: w,
		gA: w.G.Clone(), gB: w.G.Clone(),
		mA: w.cloneInitial(), mB: w.cloneInitial(),
		optsB:        optsB,
		phasesStrict: opts.CacheGate < 0,
	}
	h.rA = core.NewRunner(h.gA, optsA)
	return h
}

// Graph returns the mutated side's graph (for scripting batches).
func (h *EditHarness) Graph() *graph.Graph { return h.gA }

// Matching returns the mutated side's current matching.
func (h *EditHarness) Matching() *graph.Matching { return h.mA }

// Stats returns the accumulated stats of the mutated run and the cold twin.
func (h *EditHarness) Stats() (mutated, cold core.Stats) { return h.sA, h.sB }

// Step applies batch (nil or empty for a pure round) to both sides, runs
// one round on each — the mutated runner versus a fresh Runner on the
// twin's post-edit graph — and asserts gain and matching equality (plus
// cumulative solver phases when the options disable the cache gate; see
// phasesStrict).
func (h *EditHarness) Step(batch *core.MutationBatch) {
	h.t.Helper()
	name, round := h.w.Name, h.round
	if batch.Len() > 0 {
		if err := h.rA.ApplyMutations(batch, h.mA, &h.sA); err != nil {
			h.t.Fatalf("%s round %d: ApplyMutations: %v", name, round, err)
		}
		// Cold side: a throwaway naive Runner applies the identical order
		// semantics (append, swap-remove, in-place) and counters to gB.
		if err := core.NewRunner(h.gB, core.Options{}).ApplyMutations(batch, h.mB, &h.sB); err != nil {
			h.t.Fatalf("%s round %d: cold-twin batch: %v", name, round, err)
		}
	}
	gainA, err := h.rA.Round(h.mA, &h.sA)
	if err != nil {
		h.t.Fatalf("%s round %d (mutated): %v", name, round, err)
	}
	gainB, err := core.Round(h.gB, h.mB, h.optsB, &h.sB)
	if err != nil {
		h.t.Fatalf("%s round %d (cold twin): %v", name, round, err)
	}
	if gainA != gainB {
		h.t.Fatalf("%s round %d: gain %d (mutated) vs %d (cold twin)", name, round, gainA, gainB)
	}
	if err := equalMatchings(h.mA, h.mB); err != nil {
		h.t.Fatalf("%s round %d: %v", name, round, err)
	}
	if err := h.mA.Validate(); err != nil {
		h.t.Fatalf("%s round %d: invalid matching: %v", name, round, err)
	}
	if h.phasesStrict && h.sA.SolverPhases != h.sB.SolverPhases {
		h.t.Fatalf("%s round %d: phases %d (mutated) vs %d (cold twin)",
			name, round, h.sA.SolverPhases, h.sB.SolverPhases)
	}
	h.round++
}

// AssertEditStreamBitIdentical drives opts on w with a random mutation
// batch of batchSize edits applied every editEvery rounds, comparing the
// persistent mutated runner against the cold rebuild twin after every
// round. The edit stream comes from its own rng derived from seed, so a
// fixed seed reproduces the run exactly. Returns both stats for counter
// gating.
func AssertEditStreamBitIdentical(t *testing.T, w Workload, opts core.Options, seed int64, rounds, editEvery, batchSize int) (core.Stats, core.Stats) {
	t.Helper()
	h := NewEditHarness(t, w, opts, seed)
	editRng := rand.New(rand.NewSource(seed ^ 0x5bf03635))
	maxW := h.gA.MaxWeight()
	if maxW <= 0 {
		maxW = 1
	}
	for round := 0; round < rounds; round++ {
		var batch *core.MutationBatch
		if editEvery > 0 && round > 0 && round%editEvery == 0 {
			batch = RandomBatch(h.gA, batchSize, maxW, editRng)
		}
		h.Step(batch)
	}
	return h.Stats()
}
