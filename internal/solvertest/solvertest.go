// Package solvertest is the differential net over the amortised solving
// pipeline: it drives the naive (rebuild-every-round) and amortised
// (incremental index + survival probe + cross-class cache) configurations
// of the Theorem 1.2 driver round-by-round over the generator families of
// the E1–E12 experiments and asserts that every round produces the
// bit-identical matching. The equivalence-critical rewrites of the hot path
// (see internal/layered.IncIndex and core.Options.Amortize) are accepted
// only while this net stays green.
package solvertest

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/layered"
)

// Workload names one differential instance: a graph and an optional
// initial matching.
type Workload struct {
	Name    string
	G       *graph.Graph
	Initial *graph.Matching
}

// Workloads returns one instance per generator family used across the
// E1–E15 experiments, at differential-test scale (a few rounds of each
// must stay well under a second). The rng drives every family, so a fixed
// seed reproduces the exact instances.
func Workloads(rng *rand.Rand) []Workload {
	random := graph.RandomGraph(40, 160, 64, rng)
	bip := graph.RandomBipartite(24, 24, 120, 32, rng)
	planted := graph.PlantedMatching(60, 300, 100, 200, rng)
	chain := graph.AugmentingChain(6, 40, 9, rng)
	cycle := graph.WeightedCycle(3, 24, 32)
	three, threeM := graph.ThreeAugWorkload(20, 0.5, 60, rng)
	geo := graph.GeometricWeights(40, 160, 2, 8, rng)
	banded := graph.BandedWeights(40, 200, 100, rng)
	uniform := graph.UniformWeights(36, 150, 64, rng)
	// The E15 build-bound shape: the E13 one-octave band at 8n density, so
	// surviving layered builds dominate round time and the differential
	// builder (BuildDelta) is on the hot path at test scale.
	bandedDense := graph.BandedWeights(32, 8*32, 100, rng)

	// Start the cycle workload from its perfect-but-suboptimal matching so
	// the augmenting-cycle machinery (the Section 1.1.2 blow-up) is on the
	// differential path, not just path augmentations.
	cycleM := graph.NewMatching(cycle.G.N())
	for i := 0; i < cycle.G.N(); i += 2 {
		e := graph.Edge{U: i, V: (i + 1) % cycle.G.N(), W: 24}
		if err := cycleM.Add(e); err != nil {
			panic(err)
		}
	}

	return []Workload{
		{Name: "random", G: random.G},
		{Name: "bipartite", G: bip.G},
		{Name: "planted", G: planted.G},
		{Name: "chain", G: chain.G},
		{Name: "cycle", G: cycle.G, Initial: cycleM},
		{Name: "threeaug", G: three.G, Initial: threeM},
		{Name: "geometric", G: geo.G},
		{Name: "banded", G: banded.G},
		{Name: "uniform", G: uniform.G},
		{Name: "bandeddense", G: bandedDense.G},
	}
}

// cloneInitial returns a private copy of the workload's starting matching.
func (w Workload) cloneInitial() *graph.Matching {
	if w.Initial == nil {
		return graph.NewMatching(w.G.N())
	}
	return w.Initial.Clone()
}

// AssertBitIdentical runs optsA and optsB on the workload round-by-round
// for the given number of rounds and fails the test on the first round
// whose matchings differ in any edge or weight. Both options structs
// receive private Rngs seeded with seed, so the two runs draw identical
// bipartitions.
func AssertBitIdentical(t *testing.T, w Workload, optsA, optsB core.Options, seed int64, rounds int) (core.Stats, core.Stats) {
	t.Helper()
	optsA.Rng = rand.New(rand.NewSource(seed))
	optsB.Rng = rand.New(rand.NewSource(seed))
	mA, mB := w.cloneInitial(), w.cloneInitial()
	rA := core.NewRunner(w.G, optsA)
	rB := core.NewRunner(w.G, optsB)
	var sA, sB core.Stats
	for round := 0; round < rounds; round++ {
		gainA, err := rA.Round(mA, &sA)
		if err != nil {
			t.Fatalf("%s round %d (A): %v", w.Name, round, err)
		}
		gainB, err := rB.Round(mB, &sB)
		if err != nil {
			t.Fatalf("%s round %d (B): %v", w.Name, round, err)
		}
		if gainA != gainB {
			t.Fatalf("%s round %d: gain %d (A) vs %d (B)", w.Name, round, gainA, gainB)
		}
		if err := equalMatchings(mA, mB); err != nil {
			t.Fatalf("%s round %d: %v", w.Name, round, err)
		}
		if err := mA.Validate(); err != nil {
			t.Fatalf("%s round %d: invalid matching: %v", w.Name, round, err)
		}
	}
	return sA, sB
}

// NaiveSurvivingPairs is the generate-then-probe differential twin of
// layered.EnumerateSurvivingPairs: the memoised masked enumeration followed
// by a per-pair ProbeY filter — exactly the pair pipeline the amortised path
// ran before pruning moved into the generation recursion. It returns the
// surviving pairs and the count of window pairs the probe rejected; the
// pruned enumeration must reproduce both, pair-for-pair and in order, on
// every workload family.
func NaiveSurvivingPairs(prm layered.Params, aMask, bMask uint64, limit int, view *layered.IncView) (pairs []layered.TauPair, rejected int) {
	for _, tau := range layered.EnumerateGoodPairsMasked(prm, aMask, bMask, limit) {
		if view.ProbeY(tau) {
			pairs = append(pairs, tau)
		} else {
			rejected++
		}
	}
	return pairs, rejected
}

// equalMatchings reports the first difference between two matchings,
// comparing the full edge sets including weights.
func equalMatchings(a, b *graph.Matching) error {
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		return errMismatch("size", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			return errMismatch("edge", ea[i], eb[i])
		}
	}
	if a.Weight() != b.Weight() {
		return errMismatch("weight", a.Weight(), b.Weight())
	}
	return nil
}

type mismatchError struct {
	what string
	a, b any
}

func (e mismatchError) Error() string {
	return fmt.Sprintf("matchings differ (%s): %v vs %v", e.what, e.a, e.b)
}

func errMismatch(what string, a, b any) error { return mismatchError{what: what, a: a, b: b} }
