package solvertest

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/layered"
)

// TestAmortizedMatchesNaive is the headline differential: the amortised
// pipeline (incremental index + survival probe + cross-class cache) must
// return the bit-identical matching of the naive per-(round, class) rebuild
// after every round, on every generator family, at several seeds.
func TestAmortizedMatchesNaive(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		for _, w := range Workloads(rand.New(rand.NewSource(seed))) {
			sN, sA := AssertBitIdentical(t, w,
				core.Options{},
				core.Options{Amortize: true},
				seed+10, 6)
			// The probe rejects exactly the pairs the naive loop builds and
			// then skips for an empty Y, and every cache hit replaces one
			// solver call, so the call accounting must reconcile.
			if sN.LayeredBuilt != sA.LayeredBuilt {
				t.Errorf("%s seed %d: LayeredBuilt %d (naive) vs %d (amortised)",
					w.Name, seed, sN.LayeredBuilt, sA.LayeredBuilt)
			}
			if sN.SolverCalls != sA.SolverCalls+sA.CacheHits {
				t.Errorf("%s seed %d: SolverCalls %d (naive) vs %d+%d hits (amortised)",
					w.Name, seed, sN.SolverCalls, sA.SolverCalls, sA.CacheHits)
			}
			if sN.ProbeSkips != 0 || sN.CacheHits != 0 {
				t.Errorf("%s seed %d: naive stats carry amortised counters: %+v", w.Name, seed, sN)
			}
		}
	}
}

// TestAmortizedMatchesNaiveParallel repeats the differential with the class
// sweep on a worker pool: amortisation and parallelism must compose without
// disturbing the deterministic merge.
func TestAmortizedMatchesNaiveParallel(t *testing.T) {
	for _, w := range Workloads(rand.New(rand.NewSource(4))) {
		AssertBitIdentical(t, w,
			core.Options{Workers: 3},
			core.Options{Amortize: true, Workers: 3},
			14, 5)
	}
}

// TestRebuildMatchesMaintained pits the two halves of the incremental
// index against each other: a Runner held across rounds applies only
// matching deltas to its index, while a fresh Runner per round rebuilds the
// same index from scratch (the package-level core.Round path). The
// maintained state must be indistinguishable from the rebuild.
func TestRebuildMatchesMaintained(t *testing.T) {
	for _, w := range Workloads(rand.New(rand.NewSource(5))) {
		opts := core.Options{Amortize: true}
		seed := int64(15)

		held := core.NewRunner(w.G, optsWithRng(opts, seed))
		mHeld := w.cloneInitial()
		mFresh := w.cloneInitial()
		freshOpts := optsWithRng(opts, seed) // shared Rng across fresh Runners
		var sHeld, sFresh core.Stats
		for round := 0; round < 6; round++ {
			if _, err := held.Round(mHeld, &sHeld); err != nil {
				t.Fatalf("%s round %d (maintained): %v", w.Name, round, err)
			}
			if _, err := core.Round(w.G, mFresh, freshOpts, &sFresh); err != nil {
				t.Fatalf("%s round %d (rebuild): %v", w.Name, round, err)
			}
			if err := equalMatchings(mHeld, mFresh); err != nil {
				t.Fatalf("%s round %d: %v", w.Name, round, err)
			}
		}
	}
}

// TestCacheTransparent isolates the cross-class cache: installing an
// explicit exact Solver disables the cache (and nothing else the solver
// touches differs from the scratch-backed default), so equal matchings here
// mean cached candidate replay is indistinguishable from re-solving.
func TestCacheTransparent(t *testing.T) {
	for _, w := range Workloads(rand.New(rand.NewSource(6))) {
		sOn, sOff := AssertBitIdentical(t, w,
			core.Options{Amortize: true},
			core.Options{Amortize: true, Solver: core.ExactSolver()},
			16, 6)
		if sOff.CacheHits != 0 {
			t.Errorf("%s: explicit solver still hit the cache %d times", w.Name, sOff.CacheHits)
		}
		_ = sOn
	}
}

// TestWarmStartQuality holds the warm-started configuration to the
// guarantees it actually makes: every round yields a valid matching, the
// weight never decreases, and the converged weight is not materially worse
// than the cold run's (the seed shifts tie-breaking, not the approximation
// argument: each solve is still exactly maximum).
func TestWarmStartQuality(t *testing.T) {
	for _, w := range Workloads(rand.New(rand.NewSource(7))) {
		cold, err := core.Solve(w.G, w.Initial, optsWithRng(core.Options{
			Amortize: true, MaxRounds: 10, Patience: 10}, 17))
		if err != nil {
			t.Fatalf("%s cold: %v", w.Name, err)
		}
		warm, err := core.Solve(w.G, w.Initial, optsWithRng(core.Options{
			Amortize: true, WarmStart: true, MaxRounds: 10, Patience: 10}, 17))
		if err != nil {
			t.Fatalf("%s warm: %v", w.Name, err)
		}
		if err := warm.M.Validate(); err != nil {
			t.Fatalf("%s warm: invalid matching: %v", w.Name, err)
		}
		if warm.Stats.CacheHits != 0 {
			t.Errorf("%s warm: cache active despite warm start (%d hits)", w.Name, warm.Stats.CacheHits)
		}
		coldW, warmW := float64(cold.M.Weight()), float64(warm.M.Weight())
		if coldW > 0 && warmW < 0.9*coldW {
			t.Errorf("%s: warm weight %v below 90%% of cold %v", w.Name, warmW, coldW)
		}
	}
}

// TestPrunedEnumerationMatchesProbe is the enumeration-level differential
// over every E1–E14 generator family: on matchings evolved by real reduction
// rounds, the probe-guided enumeration must return, class by class, exactly
// the pairs of the naive generate-then-probe twin (NaiveSurvivingPairs) —
// same pairs, same order, reconciling rejected counts — at several limits
// including the unlimited window.
func TestPrunedEnumerationMatchesProbe(t *testing.T) {
	prm := layered.Params{}.WithDefaults()
	for _, w := range Workloads(rand.New(rand.NewSource(21))) {
		weights := core.ClassWeights(w.G, 2, prm)
		if len(weights) == 0 {
			continue
		}
		inc := layered.NewIncIndex(w.G.N(), w.G.Edges(), weights, prm)
		m := w.cloneInitial()
		runner := core.NewRunner(w.G, optsWithRng(core.Options{}, 22))
		parRng := rand.New(rand.NewSource(23))
		var stats core.Stats
		for round := 0; round < 3; round++ {
			if _, err := runner.Round(m, &stats); err != nil {
				t.Fatalf("%s round %d: %v", w.Name, round, err)
			}
			par := layered.Parametrize(w.G.N(), w.G.Edges(), m, parRng)
			inc.BeginRound(par)
			for c := 0; c < inc.Classes(); c++ {
				view := inc.View(c)
				orc, ok := view.Oracle()
				if !ok {
					t.Fatalf("%s: oracle unavailable at default granularity", w.Name)
				}
				aMask, bMask, ok := view.Masks()
				if !ok {
					t.Fatalf("%s: masks unavailable at default granularity", w.Name)
				}
				for _, limit := range []int{0, 1, 13, 800} {
					naive, rejected := NaiveSurvivingPairs(prm, aMask, bMask, limit, view)
					pruned, prunedCount := layered.EnumerateSurvivingPairs(prm, aMask, bMask, limit, orc, nil)
					if len(pruned) != len(naive) || prunedCount != rejected {
						t.Fatalf("%s class %d limit %d: %d pairs (%d pruned) vs naive %d (%d rejected)",
							w.Name, c, limit, len(pruned), prunedCount, len(naive), rejected)
					}
					for i := range pruned {
						if !equalTauPairs(pruned[i], naive[i]) {
							t.Fatalf("%s class %d limit %d pair %d: %+v vs %+v",
								w.Name, c, limit, i, pruned[i], naive[i])
						}
					}
				}
			}
		}
	}
}

// TestBuildDeltaMatchesBuildIndexed is the differential suite over the
// differential layered-graph builder, sweeping every E1–E15 generator
// family: on matchings evolved by real reduction rounds, every surviving
// (τA, τB) pair of every class is built twice — delta-chained through one
// scratch arena (BuildIndexed for the first pair, BuildDelta patching the
// previous build after) and from scratch — and the X/Y/NumV snapshots must
// be byte-identical, id for id and edge for edge (Invariant 19). The
// end-to-end halves of the invariant (bit-identical matchings with
// Options.Amortize on/off while the amortised path delta-chains) are
// TestAmortizedMatchesNaive and TestDeltaDisabledBitIdentical.
func TestBuildDeltaMatchesBuildIndexed(t *testing.T) {
	prm := layered.Params{}.WithDefaults()
	chained, reused := 0, 0
	for _, w := range Workloads(rand.New(rand.NewSource(31))) {
		weights := core.ClassWeights(w.G, 2, prm)
		if len(weights) == 0 {
			continue
		}
		inc := layered.NewIncIndex(w.G.N(), w.G.Edges(), weights, prm)
		m := w.cloneInitial()
		runner := core.NewRunner(w.G, optsWithRng(core.Options{}, 32))
		parRng := rand.New(rand.NewSource(33))
		scratch := layered.NewScratch()
		scratch.EnableDeltaBaseline()
		enum := layered.NewPairScratch()
		var stats core.Stats
		for round := 0; round < 3; round++ {
			if _, err := runner.Round(m, &stats); err != nil {
				t.Fatalf("%s round %d: %v", w.Name, round, err)
			}
			par := layered.Parametrize(w.G.N(), w.G.Edges(), m, parRng)
			inc.BeginRound(par)
			for c := 0; c < inc.Classes(); c++ {
				view := inc.View(c)
				aMask, bMask, ok := view.Masks()
				if !ok {
					t.Fatalf("%s: masks unavailable at default granularity", w.Name)
				}
				orc, ok := view.Oracle()
				if !ok {
					t.Fatalf("%s: oracle unavailable at default granularity", w.Name)
				}
				pairs, _ := layered.EnumerateSurvivingPairs(prm, aMask, bMask, 800, orc, enum)
				var prev *layered.Layered
				for pi, tau := range pairs {
					want := layered.BuildIndexed(view, tau, nil)
					var got *layered.Layered
					if prev == nil {
						got = layered.BuildIndexed(view, tau, scratch)
					} else {
						var segs int
						var err error
						got, segs, err = layered.BuildDelta(view, prev, tau, scratch, 1)
						if err != nil {
							t.Fatalf("%s round %d class %d pair %d: BuildDelta: %v",
								w.Name, round, c, pi, err)
						}
						chained++
						reused += segs
					}
					prev = got
					if err := equalLayered(got, want); err != nil {
						t.Fatalf("%s round %d class %d pair %d (tau %+v): %v",
							w.Name, round, c, pi, tau, err)
					}
				}
			}
		}
	}
	if chained == 0 || reused == 0 {
		t.Fatalf("delta chain never exercised: %d chained builds, %d segments reused", chained, reused)
	}
}

// equalLayered reports the first difference between two layered graphs,
// comparing the full snapshot: compact-id decode tables and the X, Y, and
// InteriorX edge sequences.
func equalLayered(got, want *layered.Layered) error {
	if got.K != want.K || got.NumV != want.NumV {
		return errMismatch("shape", [2]int{got.K, got.NumV}, [2]int{want.K, want.NumV})
	}
	for id := 0; id < want.NumV; id++ {
		if got.Orig(id) != want.Orig(id) || got.LayerOf(id) != want.LayerOf(id) {
			return errMismatch("id decode",
				[2]int{got.LayerOf(id), got.Orig(id)}, [2]int{want.LayerOf(id), want.Orig(id)})
		}
	}
	for _, s := range []struct {
		name      string
		got, want []graph.Edge
	}{{"X", got.X, want.X}, {"Y", got.Y, want.Y}, {"InteriorX", got.InteriorX, want.InteriorX}} {
		if len(s.got) != len(s.want) {
			return errMismatch(s.name+" size", len(s.got), len(s.want))
		}
		for i := range s.got {
			if s.got[i] != s.want[i] {
				return errMismatch(s.name+" edge", s.got[i], s.want[i])
			}
		}
	}
	return nil
}

// TestDeltaDisabledBitIdentical isolates the differential builder inside
// the amortised pipeline: DeltaCutover = −1 rebuilds every surviving pair
// from scratch while everything else (index, probe, cache) stays on, so
// equal matchings here mean the delta chain itself — not the surrounding
// pipeline — is output-transparent. The enabled run must actually chain.
func TestDeltaDisabledBitIdentical(t *testing.T) {
	deltaBuilds := 0
	for _, w := range Workloads(rand.New(rand.NewSource(34))) {
		sOff, sOn := AssertBitIdentical(t, w,
			core.Options{Amortize: true, DeltaCutover: -1},
			core.Options{Amortize: true},
			35, 5)
		if sOff.DeltaBuilds != 0 {
			t.Errorf("%s: DeltaCutover=-1 still delta-built %d graphs", w.Name, sOff.DeltaBuilds)
		}
		deltaBuilds += sOn.DeltaBuilds
		// The gate skips the same clean classes either way.
		if sOff.ClassesSkippedDirty != sOn.ClassesSkippedDirty {
			t.Errorf("%s: ClassesSkippedDirty %d (delta off) vs %d (delta on)",
				w.Name, sOff.ClassesSkippedDirty, sOn.ClassesSkippedDirty)
		}
	}
	if deltaBuilds == 0 {
		t.Fatal("no workload exercised the delta chain")
	}
}

// TestCrossRoundBitIdentical is the PR 7 differential over the whole
// generator matrix: chaining delta baselines across the bipartition redraw
// (the default) must be bit-identical — matching bytes, gain, and the full
// phase/call counts — to the round-local chain (CrossRoundCutover = −1) on
// every family, while actually crossing a round boundary somewhere in the
// matrix. The baseline's cross counters must stay zero, pinning the knob's
// off semantics (Invariant 24).
func TestCrossRoundBitIdentical(t *testing.T) {
	crossBuilds := 0
	for _, w := range Workloads(rand.New(rand.NewSource(61))) {
		sOn, sOff := AssertBitIdentical(t, w,
			core.Options{Amortize: true},
			core.Options{Amortize: true, CrossRoundCutover: -1},
			62, 6)
		if sOn.SolverPhases != sOff.SolverPhases || sOn.SolverCalls != sOff.SolverCalls {
			t.Errorf("%s: solver effort diverged: phases %d/%d calls %d/%d",
				w.Name, sOn.SolverPhases, sOff.SolverPhases, sOn.SolverCalls, sOff.SolverCalls)
		}
		if sOff.CrossRoundDeltaBuilds != 0 || sOff.CrossRoundRepairs != 0 {
			t.Errorf("%s: CrossRoundCutover=-1 still linked across rounds: %+v", w.Name, sOff)
		}
		crossBuilds += sOn.CrossRoundDeltaBuilds
	}
	if crossBuilds == 0 {
		t.Fatal("no workload's chain survived the bipartition redraw")
	}
}

// TestClassesSkippedDirtyExact pins the dirty-gate counter: for every round
// the amortised Runner executes, a twin Rng replays the identical
// bipartition and recomputes, class by class from from-scratch BucketIndex
// rebuilds, which classes have no crossing edge in any τ window — the
// skipped count must match exactly (Invariant 20's accounting half).
func TestClassesSkippedDirtyExact(t *testing.T) {
	prm := layered.Params{}.WithDefaults()
	maxU, _ := prm.Units()
	skipped := 0
	for _, w := range Workloads(rand.New(rand.NewSource(36))) {
		weights := core.ClassWeights(w.G, 2, prm)
		runner := core.NewRunner(w.G, optsWithRng(core.Options{Amortize: true}, 37))
		twin := rand.New(rand.NewSource(37))
		m := w.cloneInitial()
		var stats core.Stats
		for round := 0; round < 4; round++ {
			// The twin draws the round's bipartition from an identically
			// seeded Rng before the Runner consumes its own copy.
			par := layered.Parametrize(w.G.N(), w.G.Edges(), m, twin)
			expect := 0
			for _, cw := range weights {
				ref := layered.NewBucketIndex(par, cw, prm)
				dirty := false
				for u := 1; u <= maxU && !dirty; u++ {
					dirty = ref.ACount(u) > 0 || (u >= 2 && ref.BCount(u) > 0)
				}
				if !dirty {
					expect++
				}
			}
			before := stats.ClassesSkippedDirty
			if _, err := runner.Round(m, &stats); err != nil {
				t.Fatalf("%s round %d: %v", w.Name, round, err)
			}
			if got := stats.ClassesSkippedDirty - before; got != expect {
				t.Fatalf("%s round %d: ClassesSkippedDirty=%d, naive recount %d",
					w.Name, round, got, expect)
			}
			skipped += stats.ClassesSkippedDirty - before
		}
	}
	if skipped == 0 {
		t.Log("no clean classes on any workload this seed; gate counted zero skips exactly")
	}
}

func equalTauPairs(a, b layered.TauPair) bool {
	if len(a.AUnits) != len(b.AUnits) || len(a.BUnits) != len(b.BUnits) {
		return false
	}
	for i := range a.AUnits {
		if a.AUnits[i] != b.AUnits[i] {
			return false
		}
	}
	for i := range a.BUnits {
		if a.BUnits[i] != b.BUnits[i] {
			return false
		}
	}
	return true
}

// TestAmortizeFineGranularityFallback pins the fallback past the
// incremental index's compact unit storage: at granularity 1/300 the
// amortised configuration must silently use the naive path (no amortised
// counters) and still return the naive matchings — not wrap τ units.
func TestAmortizeFineGranularityFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	inst := graph.PlantedMatching(8, 12, 100, 200, rng)
	w := Workload{Name: "fine-granularity", G: inst.G}
	fine := layered.Params{Granularity: 1.0 / 300}
	_, sA := AssertBitIdentical(t, w,
		core.Options{Layered: fine, MaxPairsPerClass: 10},
		core.Options{Layered: fine, MaxPairsPerClass: 10, Amortize: true},
		19, 2)
	if sA.ProbeSkips != 0 || sA.CacheHits != 0 {
		t.Errorf("fine granularity still ran the amortised pipeline: %+v", sA)
	}
}

// TestWarmStartMonotone checks Invariant 9 (weight never decreases across
// rounds) on the warm path, which replaces the solver rather than the
// round structure.
func TestWarmStartMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	inst := graph.PlantedMatching(40, 200, 50, 120, rng)
	m := graph.NewMatching(inst.G.N())
	r := core.NewRunner(inst.G, core.Options{WarmStart: true, Rng: rng})
	var stats core.Stats
	prev := m.Weight()
	for round := 0; round < 8; round++ {
		if _, err := r.Round(m, &stats); err != nil {
			t.Fatal(err)
		}
		if m.Weight() < prev {
			t.Fatalf("round %d decreased weight %d -> %d", round, prev, m.Weight())
		}
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
		prev = m.Weight()
	}
}

func optsWithRng(opts core.Options, seed int64) core.Options {
	opts.Rng = rand.New(rand.NewSource(seed))
	return opts
}

// TestRepairMatchesFromScratch is the acceptance differential of the
// incremental Hopcroft–Karp repair (Invariant 21, repair-equals-fresh): on
// every generator family, at every RepairCutover setting, the repaired runs
// must match the repair-disabled run round-by-round in the full matching,
// and at the end of the budget in every phase-visible counter — phases,
// solver calls, and applied augmentations — because a repaired solve is
// bit-for-bit the cold solve of the same instance.
func TestRepairMatchesFromScratch(t *testing.T) {
	for _, w := range Workloads(rand.New(rand.NewSource(6))) {
		for _, cutover := range []int{0, 1, 4} {
			off := core.Options{Amortize: true, RepairCutover: -1}
			on := core.Options{Amortize: true, RepairCutover: cutover}
			sOff, sOn := AssertBitIdentical(t, w, off, on, 21, 5)
			if sOff.RepairSolves != 0 {
				t.Errorf("%s: disabled run repaired %d times", w.Name, sOff.RepairSolves)
			}
			if sOn.SolverPhases != sOff.SolverPhases {
				t.Errorf("%s cutover %d: phases %d (repair) vs %d (scratch)",
					w.Name, cutover, sOn.SolverPhases, sOff.SolverPhases)
			}
			if sOn.SolverCalls != sOff.SolverCalls {
				t.Errorf("%s cutover %d: solver calls %d vs %d",
					w.Name, cutover, sOn.SolverCalls, sOff.SolverCalls)
			}
			if sOn.AppliedAugmentations != sOff.AppliedAugmentations {
				t.Errorf("%s cutover %d: applied %d vs %d",
					w.Name, cutover, sOn.AppliedAugmentations, sOff.AppliedAugmentations)
			}
		}
	}
}

// TestRepairMatchesNaive closes the triangle: a repair-enabled amortised
// run against the naive per-round rebuild — the repair must be invisible
// through the whole pipeline, not just against its own scratch twin.
func TestRepairMatchesNaive(t *testing.T) {
	for _, w := range Workloads(rand.New(rand.NewSource(7))) {
		AssertBitIdentical(t, w,
			core.Options{},
			core.Options{Amortize: true, RepairCutover: 0},
			33, 5)
	}
}
