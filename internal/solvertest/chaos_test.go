package solvertest

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/faultinject"
)

// TestChaosLadderBitIdentical is the chaos gate: every E1–E16 generator
// family, under fault injection at several rates (including saturation,
// where every reachable site fires on every call), must neither error nor
// panic and must produce the naive reference's bit-identical matching
// every round. Six rounds mean every class's delta chain spans five
// bipartition redraws (cross-round chaining is on by default), so the
// matrix also drives the PR 7 ChainLink hazard at the round links. The
// Fallback* gate below ("faults actually flowed through the build and
// solve rungs") is asserted over the aggregate, since which sites get
// exercised shifts with the rate — at saturation the injected worker
// panics quarantine every class before the deeper rungs are reached, and
// ChainLink is provably unreachable there (DeltaStale sits earlier in
// BuildDelta and fires on every call first), so its gate aggregates over
// the sub-saturation rates.
func TestChaosLadderBitIdentical(t *testing.T) {
	var agg core.Stats
	var fired, chainFired uint64
	for _, rate := range []float64{0.01, 0.10, 1.0} {
		rate := rate
		t.Run(fmt.Sprintf("rate=%g", rate), func(t *testing.T) {
			rng := rand.New(rand.NewSource(99))
			var rateFired uint64
			for wi, w := range Workloads(rng) {
				inj := faultinject.New(int64(1000*rate)+int64(wi), rate)
				ref := core.Options{}
				chaos := core.Options{Amortize: true}
				_, sC := AssertChaosBitIdentical(t, w, ref, chaos, 7+int64(wi), 6, inj)
				agg.FallbackBuilds += sC.FallbackBuilds
				agg.FallbackSolves += sC.FallbackSolves
				agg.FallbackCacheDrops += sC.FallbackCacheDrops
				agg.FallbackClasses += sC.FallbackClasses
				agg.FallbackSweeps += sC.FallbackSweeps
				agg.FallbackResets += sC.FallbackResets
				rateFired += inj.FiredTotal()
				if rate < 1 {
					chainFired += inj.Fired(faultinject.ChainLink)
				}
			}
			if rateFired == 0 {
				t.Errorf("rate %g: injector never fired — hazard sites unreachable?", rate)
			}
			fired += rateFired
		})
	}
	if fired == 0 {
		t.Fatal("no faults injected across the whole matrix")
	}
	// The acceptance gate: faults flowed through the build and solve rungs
	// (not only the panic/sweep rungs) somewhere in the matrix.
	if agg.FallbackBuilds+agg.FallbackSolves == 0 {
		t.Errorf("no build/solve-rung fallbacks across the matrix: %+v", agg)
	}
	if agg.FallbackClasses == 0 {
		t.Errorf("no class-rung fallbacks across the matrix (worker panics not exercised): %+v", agg)
	}
	if agg.FallbackSweeps == 0 {
		t.Errorf("no sweep-rung fallbacks across the matrix (dirty-gate damage not exercised): %+v", agg)
	}
	if chainFired == 0 {
		t.Errorf("ChainLink never fired at the sub-saturation rates — cross-round links not exercised: %+v", agg)
	}
}

// TestChaosParallelWorkers re-runs a slice of the matrix with a worker
// pool: injected worker panics must be recovered inside the pool
// goroutines (a panic there would kill the whole test binary, not just
// fail this test) and the sweep must stay bit-identical to the sequential
// reference. The CI chaos job additionally runs this under -race.
func TestChaosParallelWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for wi, w := range Workloads(rng) {
		if wi%2 == 1 {
			continue // every other family: keep the -race run brisk
		}
		inj := faultinject.New(int64(77+wi), 0.10)
		ref := core.Options{}
		chaos := core.Options{Amortize: true, Workers: 4}
		_, sC := AssertChaosBitIdentical(t, w, ref, chaos, 13+int64(wi), 5, inj)
		if inj.FiredTotal() > 0 && inj.Fired(faultinject.WorkerPanic) > 0 && sC.FallbackClasses == 0 {
			t.Errorf("%s: worker panics fired but no class fallbacks recorded", w.Name)
		}
	}
}

// TestChaosInjectionFreeIsClean pins the harness's own baseline: with a
// zero-rate injector the chaos path is exactly the amortised path, and the
// ladder's counters all stay zero (no rung fires without a fault).
func TestChaosInjectionFreeIsClean(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	w := Workloads(rng)[0]
	inj := faultinject.New(1, 0)
	_, sC := AssertChaosBitIdentical(t, w, core.Options{}, core.Options{Amortize: true}, 3, 6, inj)
	if inj.FiredTotal() != 0 {
		t.Errorf("zero-rate injector fired %d times", inj.FiredTotal())
	}
	if n := sC.FallbackBuilds + sC.FallbackSolves + sC.FallbackCacheDrops +
		sC.FallbackClasses + sC.FallbackSweeps + sC.FallbackResets; n != 0 {
		t.Errorf("fallback counters nonzero on a healthy run: %+v", sC)
	}
}
