package solvertest

import (
	"bufio"
	"bytes"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
)

// tieBreakGeneration names the solver tie-break epoch the committed witness
// snapshot was generated under. PR 9's iterator-per-phase DFS is generation
// 9 — provably bit-identical to the cursor-free generation it replaced
// (Invariant 26), so the re-baseline regenerated the witness to assert,
// not to change, the pinned bytes. Any future change that shifts which
// augmenting paths are found first (DFS order, adjacency layout, Rng
// consumption) must bump this constant and regenerate the witness in the
// same commit:
//
//	UPDATE_GOLDEN=1 go test ./internal/solvertest/ -run TestWitnessGolden
//
// TestWitnessGenerationCurrent fails loudly if a stale-generation pin
// survives, so the two cannot drift apart silently.
const tieBreakGeneration = 9

const witnessPath = "testdata/witness.golden"

// witnessLines runs the full amortised pipeline over every generator
// family at a fixed seed and reduces each run to one line: final weight,
// matched-edge count, and an FNV-1a hash over the per-round gains and the
// final edge list. Any tie-break drift anywhere in the reduction perturbs
// at least one line.
func witnessLines() []string {
	lines := make([]string, 0, 16)
	for _, w := range Workloads(rand.New(rand.NewSource(90))) {
		opts := core.Options{Amortize: true}
		opts.Rng = rand.New(rand.NewSource(91))
		r := core.NewRunner(w.G, opts)
		m := w.cloneInitial()
		h := fnv.New64a()
		var stats core.Stats
		for round := 0; round < 5; round++ {
			gain, err := r.Round(m, &stats)
			if err != nil {
				panic(fmt.Sprintf("%s round %d: %v", w.Name, round, err))
			}
			fmt.Fprintf(h, "g%d=%d;", round, gain)
		}
		for _, e := range m.Edges() {
			fmt.Fprintf(h, "%d-%d:%d;", e.U, e.V, e.W)
		}
		lines = append(lines, fmt.Sprintf("%s weight=%d edges=%d hash=%016x",
			w.Name, m.Weight(), len(m.Edges()), h.Sum64()))
	}
	return lines
}

// TestWitnessGolden pins the solver's observable output — weights, sizes,
// and an order-sensitive hash of the matched edges per family — against
// the committed witness. This is the cross-PR anchor the re-baseline
// regenerates deliberately: a diff here means the tie-break epoch moved,
// which demands a generation bump (see tieBreakGeneration) and a witness
// regeneration in the same change, never an in-place golden edit.
func TestWitnessGolden(t *testing.T) {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "# solver output witness · tie-break generation %d (iterator-per-phase DFS)\n",
		tieBreakGeneration)
	for _, l := range witnessLines() {
		buf.WriteString(l)
		buf.WriteByte('\n')
	}
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(witnessPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(witnessPath)
	if err != nil {
		t.Fatalf("%v (regenerate with UPDATE_GOLDEN=1)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("solver witness drifted from %s — if the tie-break change is intentional, bump tieBreakGeneration and regenerate with UPDATE_GOLDEN=1:\n--- got ---\n%s--- want ---\n%s",
			witnessPath, buf.Bytes(), want)
	}
}

// TestWitnessGenerationCurrent is the stale-pin guard of the PR 9
// re-baseline: the committed witness must declare the generation the code
// is at. A golden regenerated under an older tie-break epoch (or an epoch
// bump that forgot the regeneration) fails here with the recovery path
// spelled out, instead of surfacing as an inscrutable hash mismatch — or
// worse, not surfacing at all because the stale pin happened to coincide.
func TestWitnessGenerationCurrent(t *testing.T) {
	f, err := os.Open(witnessPath)
	if err != nil {
		t.Fatalf("%v (regenerate with UPDATE_GOLDEN=1 go test ./internal/solvertest/ -run TestWitnessGolden)", err)
	}
	defer f.Close()
	header, err := bufio.NewReader(f).ReadString('\n')
	if err != nil {
		t.Fatalf("reading witness header: %v", err)
	}
	const prefix = "# solver output witness · tie-break generation "
	if !strings.HasPrefix(header, prefix) {
		t.Fatalf("witness header %q lacks the generation prefix %q — regenerate with UPDATE_GOLDEN=1", header, prefix)
	}
	rest := strings.TrimPrefix(header, prefix)
	gen, err := strconv.Atoi(strings.Fields(rest)[0])
	if err != nil {
		t.Fatalf("witness header %q: unparseable generation: %v", header, err)
	}
	if gen != tieBreakGeneration {
		t.Fatalf("witness pinned at tie-break generation %d but the code is at generation %d — a stale pin survived the re-baseline; regenerate with UPDATE_GOLDEN=1 go test ./internal/solvertest/ -run TestWitnessGolden",
			gen, tieBreakGeneration)
	}
}
