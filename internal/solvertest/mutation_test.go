package solvertest

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/faultinject"
)

// TestEditStreamBitIdenticalAllFamilies is the edit-stream extension of
// the Invariant-24 differential family: every workload family, driven with
// a mixed insert/delete/reweight batch every other round, must stay
// bit-identical — matching, weight, phases — to a cold Solve on the
// post-edit graph, round by round. The default configuration exercises the
// cache's hit-rate gate (whose whole-Solve lookup counts make phase totals
// a lifecycle observable, so only gain and matching are compared there);
// the gate-off configuration pins the full triple including cumulative
// solver phases.
func TestEditStreamBitIdenticalAllFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for wi, w := range Workloads(rng) {
		w, wi := w, wi
		t.Run(w.Name, func(t *testing.T) {
			AssertEditStreamBitIdentical(t, w, core.Options{Amortize: true}, 100+int64(wi), 10, 2, 3)
		})
		t.Run(w.Name+"/phases-strict", func(t *testing.T) {
			AssertEditStreamBitIdentical(t, w,
				core.Options{Amortize: true, CacheGate: -1}, 100+int64(wi), 10, 2, 3)
		})
	}
}

// TestEditStreamCounters gates the edit regime's headline counters on the
// build-bound tier: edits were applied, the delta chains crossed redraws
// (links dominate builds is only possible if links exist at all), and at
// least one chain link crossed a mutation boundary — the baseline predated
// the batch and survived it through the stability gates.
func TestEditStreamCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for _, w := range Workloads(rng) {
		if w.Name != "bandeddense" {
			continue
		}
		sA, _ := AssertEditStreamBitIdentical(t, w, core.Options{Amortize: true}, 200, 12, 2, 2)
		if sA.MutationsApplied == 0 {
			t.Error("edit stream applied no mutations")
		}
		if sA.CrossRoundDeltaBuilds == 0 {
			t.Errorf("edit tier produced no cross-round delta builds: %+v", sA)
		}
		if sA.MutationDeltaBuilds == 0 {
			t.Errorf("no delta build crossed a mutation boundary: %+v", sA)
		}
	}
}

// TestEditStreamMutationEdgeCases pins the three documented edge cases,
// each at Workers=4 (the CI race job re-runs this under -race): a delete
// of a currently-matched edge, a reweight that crosses class-window
// boundaries (in both the in-place regime and the ladder-moving regime
// that forces an index rebuild), and an empty batch, which must be a
// strict no-op.
func TestEditStreamMutationEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	var w Workload
	for _, c := range Workloads(rng) {
		if c.Name == "banded" {
			w = c
		}
	}
	opts := core.Options{Amortize: true, Workers: 4}

	t.Run("delete-matched-edge", func(t *testing.T) {
		h := NewEditHarness(t, w, opts, 51)
		h.Step(nil)
		h.Step(nil)
		me := h.Matching().Edges()
		if len(me) == 0 {
			t.Fatal("no matched edges after two rounds")
		}
		b := &core.MutationBatch{}
		b.DeleteEdge(me[0].U, me[0].V)
		b.DeleteEdge(me[len(me)-1].U, me[len(me)-1].V)
		h.Step(b)
		h.Step(nil)
		sA, _ := h.Stats()
		if sA.MutationsApplied != 2 {
			t.Errorf("MutationsApplied = %d, want 2", sA.MutationsApplied)
		}
	})

	t.Run("reweight-across-window-boundary", func(t *testing.T) {
		h := NewEditHarness(t, w, opts, 52)
		h.Step(nil)
		g := h.Graph()
		// In-place regime: move an interior-weight edge to a different
		// interior weight — its per-class units (window membership) change
		// while the ladder's min/max witnesses stay put.
		minW, maxW := g.EdgeAt(0).W, g.MaxWeight()
		for i := 0; i < g.M(); i++ {
			if w := g.EdgeAt(i).W; w < minW {
				minW = w
			}
		}
		pick := -1
		for i := 0; i < g.M(); i++ {
			if w := g.EdgeAt(i).W; w > minW && w < maxW {
				pick = i
				break
			}
		}
		if pick < 0 {
			t.Fatal("no interior-weight edge to reweight")
		}
		e := g.EdgeAt(pick)
		newW := minW + (maxW-minW)/2
		if newW == e.W {
			newW++
		}
		b := &core.MutationBatch{}
		b.ReweightEdge(e.U, e.V, newW)
		h.Step(b)
		h.Step(nil)

		// Ladder-moving regime: push one edge far above the old maximum;
		// the class ladder is derived from min/max, so the amortised
		// context must rebuild (MutationIndexResets) — and stay
		// bit-identical through it.
		e2 := h.Graph().EdgeAt(0)
		b2 := &core.MutationBatch{}
		b2.ReweightEdge(e2.U, e2.V, 4*maxW)
		h.Step(b2)
		h.Step(nil)
		sA, sB := h.Stats()
		if sA.MutationIndexResets == 0 {
			t.Errorf("ladder-moving reweight forced no index reset: %+v", sA)
		}
		if sA.MutationIndexResets != sB.MutationIndexResets {
			t.Errorf("index resets diverge: %d (mutated) vs %d (cold twin)",
				sA.MutationIndexResets, sB.MutationIndexResets)
		}
	})

	t.Run("empty-batch-tick", func(t *testing.T) {
		h := NewEditHarness(t, w, opts, 53)
		h.Step(nil)
		pre, _ := h.Stats()
		h.Step(&core.MutationBatch{})
		h.Step(nil)
		post, _ := h.Stats()
		if post.MutationsApplied != pre.MutationsApplied {
			t.Errorf("empty batch applied mutations: %d -> %d", pre.MutationsApplied, post.MutationsApplied)
		}
		if post.MutationIndexResets != pre.MutationIndexResets || post.FallbackResets != pre.FallbackResets {
			t.Errorf("empty batch disturbed the amortised context: %+v", post)
		}
	})
}

// TestEditStreamDeleteThenReweightSwapSlot is the swap-remove moved-index
// regression (PR 9 audit of the graph/mutate.go contract): a batch that
// deletes an edge and then reweights the edge that swap-remove moved into
// the freed slot must hit the moved edge, not the slot. The contract held
// at every call site because ops never carry indices across each other —
// ApplyMutations re-resolves FindEdge per op against the post-edit slice —
// and this test keeps it that way: it scripts exactly the batch that would
// misfire if anyone "optimised" the per-op resolution into a pre-resolved
// index list.
func TestEditStreamDeleteThenReweightSwapSlot(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	var w Workload
	for _, c := range Workloads(rng) {
		if c.Name == "banded" {
			w = c
		}
	}
	h := NewEditHarness(t, w, core.Options{Amortize: true, Workers: 4}, 54)
	h.Step(nil)
	g := h.Graph()
	// The victim is the last edge (the one swap-remove relocates); the
	// deleted edge is the earliest one whose endpoint pair is unique and
	// differs from the victim's, so both endpoint addresses are unambiguous.
	last := g.M() - 1
	victim := g.EdgeAt(last)
	if i, _ := g.FindEdge(victim.U, victim.V); i != last {
		t.Skipf("last edge has a parallel twin at %d; endpoint addressing would not isolate the moved edge", i)
	}
	del, delAt := victim, -1
	for i := 0; i < last; i++ {
		e := g.EdgeAt(i)
		if first, _ := g.FindEdge(e.U, e.V); first == i &&
			!(e.U == victim.U && e.V == victim.V) && !(e.U == victim.V && e.V == victim.U) {
			del, delAt = e, i
			break
		}
	}
	if delAt < 0 {
		t.Fatal("no uniquely-addressed edge to delete")
	}
	newW := victim.W + 1
	b := &core.MutationBatch{}
	b.DeleteEdge(del.U, del.V)
	b.ReweightEdge(victim.U, victim.V, newW)
	h.Step(b) // bit-identity vs the cold twin asserts the pipeline half

	// Direct half: the victim now lives in the freed slot with the new
	// weight, and the deleted endpoints resolve to nothing (or to a
	// different edge — never the victim's slot with the old weight).
	i, ok := g.FindEdge(victim.U, victim.V)
	if !ok {
		t.Fatalf("victim edge (%d,%d) vanished with the deleted slot", victim.U, victim.V)
	}
	if i != delAt {
		t.Fatalf("victim edge at index %d, want the freed slot %d", i, delAt)
	}
	if got := g.EdgeAt(i).W; got != newW {
		t.Fatalf("victim weight %d after reweight-by-endpoints, want %d — the reweight hit the slot, not the moved edge", got, newW)
	}
	h.Step(nil)
	sA, _ := h.Stats()
	if sA.MutationsApplied != 2 {
		t.Errorf("MutationsApplied = %d, want 2", sA.MutationsApplied)
	}
}

// TestChaosEditStream extends the chaos matrix with an edit-stream family:
// mutation batches flow through the amortised runner while the injector
// fires in its rounds, and the run must neither error nor panic and must
// stay bit-identical to the injection-free naive reference absorbing the
// same batches.
func TestChaosEditStream(t *testing.T) {
	defer faultinject.Deactivate()
	rng := rand.New(rand.NewSource(61))
	ws := Workloads(rng)
	var fired uint64
	for wi, w := range ws {
		if w.Name != "banded" && w.Name != "bandeddense" {
			continue // the chain-heavy tiers, where edits meet live baselines
		}
		inj := faultinject.New(int64(300+wi), 0.10)
		refOpts := core.Options{Rng: rand.New(rand.NewSource(19 + int64(wi)))}
		chaosOpts := core.Options{Amortize: true, Rng: rand.New(rand.NewSource(19 + int64(wi)))}
		gR, gC := w.G.Clone(), w.G.Clone()
		mR, mC := w.cloneInitial(), w.cloneInitial()
		rR := core.NewRunner(gR, refOpts)
		rC := core.NewRunner(gC, chaosOpts)
		editRng := rand.New(rand.NewSource(91 + int64(wi)))
		var sR, sC core.Stats
		for round := 0; round < 6; round++ {
			if round > 0 && round%2 == 0 {
				batch := RandomBatch(gR, 3, gR.MaxWeight(), editRng)
				if err := rR.ApplyMutations(batch, mR, &sR); err != nil {
					t.Fatalf("%s round %d: reference batch: %v", w.Name, round, err)
				}
				faultinject.Activate(inj)
				err := rC.ApplyMutations(batch, mC, &sC)
				faultinject.Deactivate()
				if err != nil {
					t.Fatalf("%s round %d: chaos batch must absorb faults, got %v", w.Name, round, err)
				}
			}
			gainR, err := rR.Round(mR, &sR)
			if err != nil {
				t.Fatalf("%s round %d (reference): %v", w.Name, round, err)
			}
			faultinject.Activate(inj)
			gainC, err := chaosRound(rC, &sC, mC)
			faultinject.Deactivate()
			if err != nil {
				t.Fatalf("%s round %d (chaos): %v", w.Name, round, err)
			}
			if gainR != gainC {
				t.Fatalf("%s round %d: gain %d (reference) vs %d (chaos)", w.Name, round, gainR, gainC)
			}
			if err := equalMatchings(mR, mC); err != nil {
				t.Fatalf("%s round %d: %v", w.Name, round, err)
			}
		}
		fired += inj.FiredTotal()
	}
	if fired == 0 {
		t.Error("injector never fired across the edit-stream chaos family")
	}
}
