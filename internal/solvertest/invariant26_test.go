package solvertest

import (
	"math/rand"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/graph"
)

// iterFactory and rescanFactory install the two DFS strategies of the PR 9
// solver pass as phase-reporting solver factories, so the full reduction
// pipeline — bipartition draw, class sweep, every solve — runs once per
// strategy over identical Rng streams. Both sides set a factory, which
// matters: Options.hasFactory switches the per-class Rng seeding, so a
// factory run is only stream-identical to another factory run.
func iterFactory(*rand.Rand) core.PhasedSolver {
	hk := bipartite.NewScratch()
	return func(b *bipartite.Bip) (*graph.Matching, int, error) {
		res := bipartite.HopcroftKarpScratch(b, hk)
		return res.M, res.Phases, nil
	}
}

func rescanFactory(*rand.Rand) core.PhasedSolver {
	hk := bipartite.NewScratch()
	return func(b *bipartite.Bip) (*graph.Matching, int, error) {
		res := bipartite.HopcroftKarpRescanScratch(b, hk)
		return res.M, res.Phases, nil
	}
}

// TestIteratorDFSPipelineBitIdentical is the pipeline half of Invariant 26:
// the iterator-per-phase DFS must be bit-identical to the retained
// cursor-free reference through the WHOLE reduction — every generator
// family, the amortised pipeline on, Workers 1 and 4 — matching bytes,
// gain, phase counts, and solver-call counts all equal round by round.
// The bipartite-level halves (cold, seeded, arena-reuse, repair) live in
// internal/bipartite's TestIteratorDFS* and TestFunnelBip; the delta /
// repair / cross-round / mutation / chaos suites re-assert the iterator
// path against their own references since the default solver now runs it.
func TestIteratorDFSPipelineBitIdentical(t *testing.T) {
	for _, workers := range []int{1, 4} {
		for _, w := range Workloads(rand.New(rand.NewSource(26))) {
			sIter, sRef := AssertBitIdentical(t, w,
				core.Options{Amortize: true, Workers: workers, PhasedSolverFactory: iterFactory},
				core.Options{Amortize: true, Workers: workers, PhasedSolverFactory: rescanFactory},
				27, 5)
			if sIter.SolverPhases != sRef.SolverPhases {
				t.Errorf("%s workers %d: phases %d (iterator) vs %d (rescan)",
					w.Name, workers, sIter.SolverPhases, sRef.SolverPhases)
			}
			if sIter.SolverCalls != sRef.SolverCalls {
				t.Errorf("%s workers %d: solver calls %d (iterator) vs %d (rescan)",
					w.Name, workers, sIter.SolverCalls, sRef.SolverCalls)
			}
		}
	}
}
