package solvertest

// Chaos net over the degradation ladder: the differential suite's
// bit-identity assertions re-run with deterministic fault injection
// (internal/faultinject) active on the amortised run. Every injected fault
// — stale delta baselines, corrupted repair descriptors, flipped cache
// digests, dirty-gate bitmap damage, worker panics — must be absorbed by a
// ladder rung: the run may not error, may not crash, and must still
// produce the naive reference's bit-identical matching every round (the
// fallbacks re-run the damaged unit through the cold path, which is
// bit-identical by the differential-suite equivalences). The injection
// sites live exclusively on amortised fast paths, so the naive reference
// runner is injection-free by construction even while the injector is
// globally active; the harness still scopes activation to the chaos
// runner's rounds as belt and braces.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/graph"
)

// AssertChaosBitIdentical drives the reference options (injection-free)
// and the chaos options (with inj active during its rounds) round-by-round
// on w, failing on the first error, panic, or diverging matching. It
// returns both runs' stats so callers can gate on the Fallback* counters.
func AssertChaosBitIdentical(t *testing.T, w Workload, ref, chaos core.Options, seed int64, rounds int, inj *faultinject.Injector) (core.Stats, core.Stats) {
	t.Helper()
	defer faultinject.Deactivate()

	ref.Rng = rand.New(rand.NewSource(seed))
	chaos.Rng = rand.New(rand.NewSource(seed))
	mR, mC := w.cloneInitial(), w.cloneInitial()
	rR := core.NewRunner(w.G, ref)
	rC := core.NewRunner(w.G, chaos)
	var sR, sC core.Stats
	for round := 0; round < rounds; round++ {
		gainR, err := rR.Round(mR, &sR)
		if err != nil {
			t.Fatalf("%s round %d (reference): %v", w.Name, round, err)
		}
		faultinject.Activate(inj)
		gainC, err := chaosRound(rC, &sC, mC)
		faultinject.Deactivate()
		if err != nil {
			t.Fatalf("%s round %d (chaos): Solve must absorb injected faults, got %v", w.Name, round, err)
		}
		if gainR != gainC {
			t.Fatalf("%s round %d: gain %d (reference) vs %d (chaos)", w.Name, round, gainR, gainC)
		}
		if err := equalMatchings(mR, mC); err != nil {
			t.Fatalf("%s round %d: %v", w.Name, round, err)
		}
		if err := mC.Validate(); err != nil {
			t.Fatalf("%s round %d: invalid chaos matching: %v", w.Name, round, err)
		}
	}
	return sR, sC
}

// chaosRound runs one round of the chaos runner, converting an escaped
// panic into an error so the assertion failure names the workload and
// round instead of killing the test binary. (The ladder's contract is that
// no panic escapes Round; this recover is the net that reports a breach.)
func chaosRound(r *core.Runner, stats *core.Stats, m *graph.Matching) (gain graph.Weight, err error) {
	defer func() {
		if p := recover(); p != nil {
			gain, err = 0, fmt.Errorf("panic escaped Round: %v", p)
		}
	}()
	return r.Round(m, stats)
}
