package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/graph"
)

// cycleSource is a rand.Source whose stream repeats with a fixed period. A
// Runner that draws its per-round bipartition from one redraws the IDENTICAL
// sides every round (the default solver consumes exactly n Intn(2) draws per
// Parametrize and nothing in between) — the cross-round chain's best case,
// bracketing the uniform-redraw rows from above.
type cycleSource struct {
	vals []int64
	i    int
}

func (s *cycleSource) Int63() int64 {
	v := s.vals[s.i%len(s.vals)]
	s.i++
	return v
}
func (s *cycleSource) Seed(int64) {}

// E17CrossRound measures the PR 7 tentpole: chaining each class's delta
// baseline across the bipartition redraw instead of restarting the chain
// every BeginRound. The bed is the E13 band (solver-bound, thousands of tiny
// solves per round) under two redraw regimes — the honest uniform redraw,
// where every round flips about half the crossing statuses, and a
// side-stable redraw (period-n Rng), the chain's best case. Each regime runs
// chained (the default) against round-local (CrossRoundCutover = −1, exactly
// the PR 4–6 behaviour). Outputs are bit-identical by construction
// (Invariant 24; asserted per-family by solvertest.TestCrossRoundBitIdentical),
// so the ms/round ratio isolates what surviving the redraw is worth; the
// cross-build and cross-repair counters show how much of each round's first
// build actually crossed the boundary rather than rebuilding from scratch.
func E17CrossRound(cfg Config) []Table {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	nBand, rounds := 240, 6
	if cfg.Quick {
		nBand, rounds = 60, 3
	}
	g := graph.BandedWeights(nBand, 8*nBand, 100, rng).G
	opts := core.Options{Amortize: true, MaxPairsPerClass: 2000}

	stable := make([]int64, g.N())
	stableRng := rand.New(rand.NewSource(cfg.Seed + 7))
	for i := range stable {
		stable[i] = stableRng.Int63()
	}
	seed := cfg.Seed + int64(rng.Intn(1<<20)) // shared: both configs draw identical rounds
	regimes := []struct {
		label string
		src   func() rand.Source
	}{
		{"E13 band, uniform redraw", func() rand.Source { return rand.NewSource(seed) }},
		{"E13 band, stable redraw", func() rand.Source { return &cycleSource{vals: stable} }},
	}

	t := Table{
		ID:    "E17",
		Title: "cross-round delta chaining across the bipartition redraw",
		Claim: "chaining the per-class baseline past BeginRound beats restarting it each round",
		Header: []string{"workload", "config", "ms/round", "delta builds", "cross builds",
			"cross repairs", "HK phases", "final weight"},
	}
	for _, reg := range regimes {
		for _, c := range []struct {
			label   string
			cutover int
		}{{"chained", 0}, {"round-local", -1}} {
			o := opts
			o.CrossRoundCutover = c.cutover
			o.Rng = rand.New(reg.src())
			o.MaxRounds = rounds
			o.Patience = rounds
			r, err := runSolverBound(g, o, c.label, seed, rounds)
			if err != nil {
				continue
			}
			perRound := 0.0
			if r.stats.Rounds > 0 {
				perRound = float64(r.elapsed.Microseconds()) / 1000 / float64(r.stats.Rounds)
			}
			t.Rows = append(t.Rows, []string{
				reg.label,
				c.label,
				fmt.Sprintf("%.2f", perRound),
				fi(r.stats.DeltaBuilds),
				fi(r.stats.CrossRoundDeltaBuilds),
				fi(r.stats.CrossRoundRepairs),
				fi(r.stats.SolverPhases),
				fi64(int64(r.weight)),
			})
		}
	}
	return []Table{t}
}
