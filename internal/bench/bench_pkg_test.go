package bench

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestRegistryComplete(t *testing.T) {
	ids := IDs()
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19", "E20"}
	if len(ids) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(ids), len(want))
	}
	for i, id := range want {
		if ids[i] != id {
			t.Errorf("ids[%d] = %s, want %s", i, ids[i], id)
		}
	}
}

func TestAllExperimentsRunQuick(t *testing.T) {
	cfg := Config{Seed: 1, Trials: 2, Quick: true}
	for id, run := range Registry() {
		id, run := id, run
		t.Run(id, func(t *testing.T) {
			tables := run(cfg)
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tb := range tables {
				if len(tb.Rows) == 0 {
					t.Errorf("table %s has no rows", tb.ID)
				}
				var buf bytes.Buffer
				tb.Render(&buf)
				if !strings.Contains(buf.String(), tb.ID) {
					t.Error("render missing table id")
				}
			}
		})
	}
}

func TestE7ReportsZeroDecreases(t *testing.T) {
	tables := E7FilterSoundness(Config{Seed: 2, Trials: 2, Quick: true})
	row := tables[0].Rows[0]
	if row[2] != "0" {
		t.Errorf("E7 found %s weight decreases, want 0", row[2])
	}
	if row[3] != "0" {
		t.Errorf("E7 found %s validation failures, want 0", row[3])
	}
}

func TestE9AllGood(t *testing.T) {
	tables := E9TauPairs(Config{Quick: true})
	for _, row := range tables[0].Rows {
		if row[3] != "yes" {
			t.Errorf("E9 row %v reports bad pairs", row)
		}
	}
}

func TestRunAllRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	RunAll(Config{Seed: 1, Trials: 1, Quick: true}, &buf)
	out := buf.String()
	for _, id := range IDs() {
		if !strings.Contains(out, "== "+id) {
			t.Errorf("output missing experiment %s", id)
		}
	}
}

// TestE17CrossRoundHonest pins the E17 table's two invariants: within each
// redraw regime the chained and round-local rows end at the identical final
// weight (bit-identity is asserted family-wide in solvertest; here we keep
// the published table honest), and the chained rows actually crossed round
// boundaries (cross builds > 0) while the round-local rows never did.
func TestE17CrossRoundHonest(t *testing.T) {
	tables := E17CrossRound(Config{Seed: 1, Trials: 1, Quick: true})
	rows := tables[0].Rows
	if len(rows)%2 != 0 || len(rows) == 0 {
		t.Fatalf("E17 rows not in chained/round-local pairs: %d rows", len(rows))
	}
	for i := 0; i < len(rows); i += 2 {
		chained, local := rows[i], rows[i+1]
		if chained[1] != "chained" || local[1] != "round-local" {
			t.Fatalf("row order drifted: %q then %q", chained[1], local[1])
		}
		if chained[7] != local[7] {
			t.Errorf("%s: final weight diverged: %s vs %s", chained[0], chained[7], local[7])
		}
		if chained[4] == "0" {
			t.Errorf("%s: chained run crossed no round boundary", chained[0])
		}
		if local[4] != "0" || local[5] != "0" {
			t.Errorf("%s: round-local run has cross counters %s/%s", local[0], local[4], local[5])
		}
	}
}

// TestE12bCountersComplete is the reflection audit of the augbench counter
// table: every core.Stats field must have its own E12b column, so a future
// counter cannot be silently missing from the harness ledger.
func TestE12bCountersComplete(t *testing.T) {
	tables := E12Convergence(Config{Seed: 1, Trials: 1, Quick: true, Amortize: true})
	var counters *Table
	for i := range tables {
		if tables[i].ID == "E12b" {
			counters = &tables[i]
		}
	}
	if counters == nil {
		t.Fatal("E12b table missing")
	}
	have := map[string]bool{}
	for _, h := range counters.Header {
		have[h] = true
	}
	for _, f := range (core.Stats{}).Fields() {
		if !have[f.Name] {
			t.Errorf("E12b lacks a column for core.Stats counter %q", f.Name)
		}
	}
	if len(counters.Rows) == 0 || len(counters.Rows[0]) != len(counters.Header) {
		t.Fatal("E12b rows do not match its header")
	}
}

// TestE18EditStreamHonest keeps the E18 table honest: rows come in
// persistent/rebuild pairs that agree on the final weight (the harness
// surfaces a divergence as an extra DIVERGED row, which must never
// appear), and the persistent side of every regime absorbed at least one
// edit through a surviving cross-round chain (MutationDeltaBuilds > 0)
// rather than resetting per update.
func TestE18EditStreamHonest(t *testing.T) {
	tables := E18EditStream(Config{Seed: 1, Trials: 1, Quick: true})
	rows := tables[0].Rows
	if len(rows)%2 != 0 || len(rows) == 0 {
		t.Fatalf("E18 rows not in persistent/rebuild pairs: %d rows", len(rows))
	}
	for i := 0; i < len(rows); i += 2 {
		pers, reb := rows[i], rows[i+1]
		if pers[1] == "DIVERGED" || reb[1] == "DIVERGED" {
			t.Fatalf("%s: configurations diverged", pers[0])
		}
		if pers[1] != "persistent" || reb[1] != "rebuild" {
			t.Fatalf("row order drifted: %q then %q", pers[1], reb[1])
		}
		if pers[7] != reb[7] {
			t.Errorf("%s: final weight diverged: %s vs %s", pers[0], pers[7], reb[7])
		}
		if pers[5] == "0" {
			t.Errorf("%s: persistent run absorbed no edit through a cross-round chain", pers[0])
		}
	}
}
