package bench

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/graph"
)

// E19SolverMicroarch measures the PR 9 solver microarchitecture pass with
// the cursor-free DFS kept alive as the in-tree reference (HopcroftKarpRescan*),
// so every number is a same-run A/B — the only comparison benchguard gates
// (docs/OPERATIONS.md, "Benchmark gate policy").
//
// Two tiers:
//
//   - micro: the DFS strategies head-to-head on the funnel gadget
//     (bipartite.FunnelInstance — m re-entries of one interior vertex per
//     phase, the shape where rescans are Θ(m·p + m²)) and on a flat random
//     instance, where re-entrance is rare and the deferred cursor write
//     must keep the iterator at parity. The funnel ratio is the CI gate
//     (≥ 1.15× same-run); the random ratio is the honesty row — the
//     iterator's win is workload-shaped, not universal, and the table says
//     so.
//   - pipeline: the whole reduction on the E13 band with the DFS strategy
//     the only difference, both sides installed as PhasedSolverFactory so
//     the Rng streams — and therefore the instances solved — are identical
//     (the same setup Invariant 26's differential uses). Weight and phase
//     columns prove the runs did not diverge; the ratio isolates what the
//     cursor is worth end-to-end, diluted by everything that is not DFS.
//
// The pass's other two candidates (the flat open-addressed grouped-Y span
// table and the word-parallel probe rows fed from it) replaced their map
// predecessor outright — there is no live reference to A/B against, so
// their effect is carried by the cross-tree E13/E14/E18 windows in
// BENCH_pr9.json and the ROADMAP perf ledger, not by this table.
func E19SolverMicroarch(cfg Config) []Table {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	funnelM, funnelP, randN, randDeg, reps := 512, 512, 2048, 8, 40
	nBand, rounds := 240, 3
	if cfg.Quick {
		funnelM, funnelP, randN, reps = 128, 128, 512, 10
		nBand, rounds = 60, 2
	}

	micro := Table{
		ID:     "E19",
		Title:  "iterator-per-phase DFS vs cursor-free rescan (micro)",
		Claim:  "the cursor removes re-entrant rescans: large win on funnel shapes, parity on flat ones",
		Header: []string{"instance", "config", "us/solve", "speedup", "phases"},
	}
	type dfsForm struct {
		label string
		solve func(b *bipartite.Bip, s *bipartite.Scratch, seeds []bipartite.Seed) bipartite.Result
	}
	forms := []dfsForm{
		{"iterator", func(b *bipartite.Bip, s *bipartite.Scratch, seeds []bipartite.Seed) bipartite.Result {
			if seeds != nil {
				return bipartite.HopcroftKarpSeeded(b, s, seeds)
			}
			return bipartite.HopcroftKarpScratch(b, s)
		}},
		{"rescan", func(b *bipartite.Bip, s *bipartite.Scratch, seeds []bipartite.Seed) bipartite.Result {
			if seeds != nil {
				return bipartite.HopcroftKarpRescanSeeded(b, s, seeds)
			}
			return bipartite.HopcroftKarpRescanScratch(b, s)
		}},
	}
	funnel, funnelSeeds := bipartite.FunnelInstance(funnelM, funnelP)
	flat := randomFlatBip(randN, randDeg, cfg.Seed)
	for _, inst := range []struct {
		label string
		b     *bipartite.Bip
		seeds []bipartite.Seed
	}{
		{fmt.Sprintf("funnel m=%d p=%d", funnelM, funnelP), funnel, funnelSeeds},
		{fmt.Sprintf("random n=%d deg=%d", randN, randDeg), flat, nil},
	} {
		var times [2]float64
		var phases [2]int
		for k, form := range forms {
			s := bipartite.NewScratch()
			res := form.solve(inst.b, s, inst.seeds) // warm the arena
			start := time.Now()
			for r := 0; r < reps; r++ {
				res = form.solve(inst.b, s, inst.seeds)
			}
			times[k] = float64(time.Since(start).Microseconds()) / float64(reps)
			phases[k] = res.Phases
		}
		for k, form := range forms {
			speedup := "1.00x (ref)"
			if k == 0 && times[0] > 0 {
				speedup = fmt.Sprintf("%.2fx", times[1]/times[0])
			}
			micro.Rows = append(micro.Rows, []string{
				inst.label, form.label,
				fmt.Sprintf("%.1f", times[k]), speedup, fi(phases[k]),
			})
		}
	}

	pipeline := Table{
		ID:     "E19",
		Title:  "iterator-per-phase DFS vs rescan through the full reduction (E13 band)",
		Claim:  "identical Rng streams, identical outputs; the ratio isolates the DFS share of round time",
		Header: []string{"config", "ms/round", "speedup", "solver calls", "HK phases", "final weight"},
	}
	g := graph.BandedWeights(nBand, 8*nBand, 100, rng).G
	seed := cfg.Seed + int64(rng.Intn(1<<20))
	factories := []struct {
		label   string
		factory func(*rand.Rand) core.PhasedSolver
	}{
		{"iterator", func(*rand.Rand) core.PhasedSolver {
			hk := bipartite.NewScratch()
			return func(b *bipartite.Bip) (*graph.Matching, int, error) {
				res := bipartite.HopcroftKarpScratch(b, hk)
				return res.M, res.Phases, nil
			}
		}},
		{"rescan", func(*rand.Rand) core.PhasedSolver {
			hk := bipartite.NewScratch()
			return func(b *bipartite.Bip) (*graph.Matching, int, error) {
				res := bipartite.HopcroftKarpRescanScratch(b, hk)
				return res.M, res.Phases, nil
			}
		}},
	}
	var perRound [2]float64
	for k, f := range factories {
		opts := core.Options{Amortize: true, MaxPairsPerClass: 2000, PhasedSolverFactory: f.factory}
		r, err := runSolverBound(g, opts, f.label, seed, rounds)
		if err != nil {
			continue
		}
		if r.stats.Rounds > 0 {
			perRound[k] = float64(r.elapsed.Microseconds()) / 1000 / float64(r.stats.Rounds)
		}
		speedup := "1.00x (ref)"
		if k == 1 && perRound[0] > 0 {
			// Rows render in order; patch the iterator row's ratio now that
			// both sides are measured.
			pipeline.Rows[0][2] = fmt.Sprintf("%.2fx", perRound[1]/perRound[0])
		}
		pipeline.Rows = append(pipeline.Rows, []string{
			f.label,
			fmt.Sprintf("%.2f", perRound[k]),
			speedup,
			fi(r.stats.SolverCalls),
			fi(r.stats.SolverPhases),
			fi64(int64(r.weight)),
		})
	}
	return []Table{micro, pipeline}
}

// randomFlatBip is a plain random near-square bipartite instance (no
// adversarial structure) for the micro tier's parity row.
func randomFlatBip(n, degree int, seed int64) *bipartite.Bip {
	rng := rand.New(rand.NewSource(seed))
	side := make([]bool, 2*n)
	for i := n; i < 2*n; i++ {
		side[i] = true
	}
	b := &bipartite.Bip{N: 2 * n, Side: side}
	seen := make(map[[2]int]bool, n*degree)
	for len(b.Edges) < n*degree {
		u := rng.Intn(n)
		v := n + rng.Intn(n)
		if seen[[2]int{u, v}] {
			continue
		}
		seen[[2]int{u, v}] = true
		b.Edges = append(b.Edges, graph.Edge{U: u, V: v, W: 1})
	}
	return b
}
