package bench

import (
	"math"
	"testing"
)

// TestE20Quick smokes the whole E20 runner at quick scale and checks the
// A/B table's bit-identity column — the in-harness Invariant 27 witness.
func TestE20Quick(t *testing.T) {
	tables := E20StreamScale(Config{Seed: 1, Trials: 2, Quick: true})
	if len(tables) != 3 {
		t.Fatalf("E20 returned %d tables, want 3", len(tables))
	}
	ab := tables[1]
	for _, row := range ab.Rows {
		if row[len(row)-1] != "true" {
			t.Fatalf("A/B row %v: arena and naive outputs diverged", row)
		}
	}
	for _, row := range tables[0].Rows {
		if row[3] != "1" {
			t.Fatalf("scale row %v: not single-pass", row)
		}
	}
}

// TestStreamScaleBigDiskResident is the PR 10 scale gate: a 10^7-edge
// random-order stream, written and shuffled in external memory, solved
// end-to-end by Algorithm 2 off disk. The stream never exists in RAM as a
// slice; the in-test assertions are the Lemma 3.15 shape — one pass, peak
// held words within a small constant of n·ln n and far below m — plus the
// certified (LP-dual) approximation ratio staying above 1/2.
//
// Measured on the reference run (seed 42): peak/n·ln n ≈ 0.55, peak/m ≈
// 0.06, certified ratio ≈ 0.569, ~5s wall. Skipped under -short and under
// the race detector (raceEnabled), where the 10^7 instrumented arrivals
// blow the time budget without adding coverage.
func TestStreamScaleBigDiskResident(t *testing.T) {
	if testing.Short() {
		t.Skip("10^7-edge disk-resident run skipped in -short")
	}
	if raceEnabled {
		t.Skip("10^7-edge disk-resident run skipped under race")
	}
	const n, m = 100_000, 10_000_000
	st, err := RunStreamScaleRow(t.TempDir(), n, m, 1000, 42)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("per-arrival %.1f ns, passes %d, peak %d words, cert ratio %.4f",
		st.PerArrivalNS, st.Passes, st.PeakWords, st.CertifiedRatio())
	if st.Edges != m {
		t.Fatalf("stream carried %d edges, want %d", st.Edges, m)
	}
	if st.Passes != 1 {
		t.Fatalf("Algorithm 2 consumed %d passes, want 1", st.Passes)
	}
	nlnn := float64(n) * math.Log(float64(n))
	if fp := float64(st.PeakWords); fp > 8*nlnn {
		t.Errorf("peak %d words exceeds 8·n·ln n = %.0f", st.PeakWords, 8*nlnn)
	}
	if st.PeakWords*10 > m {
		t.Errorf("peak %d words is not far below m = %d — the run is not out-of-core",
			st.PeakWords, m)
	}
	if r := st.CertifiedRatio(); r < 0.5 {
		t.Errorf("certified ratio %.4f below 1/2", r)
	}
}

// TestQualityLedgerPinnedRatios pins the realised approximation ratios of
// the E20 quality ledger on a fixed seed (satellite of PR 10): streaming
// vs exact optimum, random vs adversarial arrival, within declared bounds.
// The bounds have deliberate daylight below the measured values (recorded
// in BENCH_pr10.json) so they fail on algorithmic regressions, not on
// numeric jitter — the runs themselves are deterministic in (seed, trials).
func TestQualityLedgerPinnedRatios(t *testing.T) {
	rows := QualityLedger(1, 3, true)
	bounds := map[string]struct{ random, adversarial float64 }{
		"planted": {0.95, 0.95},
		"chain":   {0.70, 0.95},
		"cycle":   {0.90, 0.95},
	}
	for _, r := range rows {
		b, ok := bounds[r.Family]
		if !ok {
			t.Fatalf("unexpected family %q", r.Family)
		}
		t.Logf("%s: random %.4f adversarial %.4f", r.Family, r.RatioRandom, r.RatioAdversarial)
		if r.RatioRandom < b.random {
			t.Errorf("%s: random-order ratio %.4f below pinned %.2f", r.Family, r.RatioRandom, b.random)
		}
		if r.RatioAdversarial < b.adversarial {
			t.Errorf("%s: adversarial ratio %.4f below pinned %.2f", r.Family, r.RatioAdversarial, b.adversarial)
		}
		if r.RatioRandom > 1.0000001 || r.RatioAdversarial > 1.0000001 {
			t.Errorf("%s: ratio above 1 (%v) — optimum bookkeeping broken", r.Family, r)
		}
	}
	if len(rows) != 3 {
		t.Fatalf("ledger has %d rows, want 3", len(rows))
	}
}
