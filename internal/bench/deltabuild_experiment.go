package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/graph"
)

// E15DeltaBuild measures the differential layered-graph builder and the
// round-scoped dirty-class gate on the build-bound tier: the E13 band shape
// (one weight octave at 8n density), where surviving BuildIndexed calls
// dominate the amortised round (~57% per the ROADMAP ledger), plus the E12
// convergence shape where they are ~24%. Each instance runs the amortised
// pipeline twice with identical seeds — delta chaining on (every surviving
// pair after a class-round's first patches the previous build) and off
// (DeltaCutover = −1, every pair from scratch) — so the ratio isolates the
// builder; outputs are bit-identical by construction (differential suite).
// The counters keep the verdict honest: DeltaBuilds/DeltaLayersReused show
// how much structure was actually shared, ClassesSkippedDirty how many
// class sweeps the dirty gate removed outright.
func E15DeltaBuild(cfg Config) []Table {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	nBand, nPlant, rounds := 240, 120, 3
	if cfg.Quick {
		nBand, nPlant, rounds = 60, 40, 2
	}
	instances := []struct {
		label string
		g     *graph.Graph
		opts  core.Options
	}{
		{
			label: "E13 band (build-bound)",
			g:     graph.BandedWeights(nBand, 8*nBand, 100, rng).G,
			opts:  core.Options{Amortize: true, MaxPairsPerClass: 2000},
		},
		{
			label: "E12 planted (bucket-bound)",
			g:     graph.PlantedMatching(nPlant, 5*nPlant, 100, 200, rng).G,
			opts:  core.Options{Amortize: true},
		},
	}

	t := Table{
		ID:    "E15",
		Title: "differential layered-graph builder (BuildDelta) + dirty-class gate",
		Claim: "delta-chained builds are bit-identical and cheaper where builds dominate",
		Header: []string{"workload", "config", "ms/round", "pairs", "delta builds",
			"layers reused", "classes skipped", "solver calls", "final weight"},
	}
	for _, inst := range instances {
		seed := cfg.Seed + int64(rng.Intn(1<<20)) // shared: both configs draw identical rounds
		for _, c := range []struct {
			label   string
			cutover int
		}{{"delta", 0}, {"scratch", -1}} {
			opts := inst.opts
			opts.DeltaCutover = c.cutover
			r, err := runSolverBound(inst.g, opts, c.label, seed, rounds)
			if err != nil {
				continue
			}
			perRound := 0.0
			if r.stats.Rounds > 0 {
				perRound = float64(r.elapsed.Microseconds()) / 1000 / float64(r.stats.Rounds)
			}
			t.Rows = append(t.Rows, []string{
				inst.label,
				c.label,
				fmt.Sprintf("%.2f", perRound),
				fi(r.stats.LayeredBuilt),
				fi(r.stats.DeltaBuilds),
				fi(r.stats.DeltaLayersReused),
				fi(r.stats.ClassesSkippedDirty),
				fi(r.stats.SolverCalls),
				fi64(int64(r.weight)),
			})
		}
	}
	return []Table{t}
}
