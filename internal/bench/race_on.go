//go:build race

package bench

// raceEnabled reports whether the race detector is compiled in; the
// disk-resident scale test skips under race (10^7 instrumented arrivals
// blow the CI time budget without adding coverage — the differential
// suites run under race instead).
const raceEnabled = true
