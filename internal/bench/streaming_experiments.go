package bench

import (
	"math"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/localratio"
	"repro/internal/matchutil"
	"repro/internal/randarrival"
	"repro/internal/stream"
	"repro/internal/unwaug"
)

// E1RandomArrivalWeighted probes Theorem 1.1: Rand-Arr-Matching beats the
// 1/2 barrier for weighted matching under random edge arrivals. Baselines:
// the sorted greedy (offline 1/2-approx) and the local-ratio algorithm run
// over the same random stream ([PS17], also a 1/2-approx).
func E1RandomArrivalWeighted(cfg Config) []Table {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	sizes := []int{200, 500, 1000}
	if cfg.Quick {
		sizes = []int{100}
	}
	t := Table{
		ID:     "E1",
		Title:  "Theorem 1.1 — single-pass weighted matching, random arrivals",
		Claim:  "(1/2+c)-approx in expectation; baselines stall at 1/2",
		Header: []string{"n", "m", "greedy", "local-ratio", "rand-arr (Thm 1.1)", "|S|", "|T|"},
	}
	for _, n := range sizes {
		m := 8 * n
		var gSum, lrSum, raSum float64
		var sSum, tSum int
		for trial := 0; trial < cfg.Trials; trial++ {
			inst := graph.PlantedMatching(n, m-n/2, 1000, 2000, rng)
			order := stream.RandomOrder(inst.G, rng)

			greedy := matchutil.GreedyWeighted(inst.G)
			lr := localratio.Run(inst.G.N(), order.Edges())
			res := randarrival.RandArrMatching(inst.G.N(), stream.FromEdges(order.Edges()),
				randarrival.WeightedOptions{Rng: rng})

			gSum += matchutil.Ratio(greedy, inst.OptWeight)
			lrSum += matchutil.Ratio(lr, inst.OptWeight)
			raSum += matchutil.Ratio(res.M, inst.OptWeight)
			sSum += res.StackSize
			tSum += res.TSize
		}
		k := float64(cfg.Trials)
		t.Rows = append(t.Rows, []string{
			fi(n), fi(m), f3(gSum / k), f3(lrSum / k), f3(raSum / k),
			fi(sSum / cfg.Trials), fi(tSum / cfg.Trials),
		})
	}

	// Second table: the greedy-trap chains where the sorted greedy is stuck
	// near 1/2 (mid = out+1 per length-3 segment); breaking the barrier
	// requires recovering the outer edges via weighted 3-augmentations.
	trap := Table{
		ID:     "E1b",
		Title:  "Theorem 1.1 — greedy-trap chains (mid=51, out=50)",
		Claim:  "sorted greedy stuck near 0.51; Thm 1.1 algorithm recovers more",
		Header: []string{"segments", "sorted greedy", "local-ratio (rand)", "rand-arr (Thm 1.1)"},
	}
	segs := []int{200, 800}
	if cfg.Quick {
		segs = []int{100}
	}
	for _, k := range segs {
		inst := graph.AugmentingChain(k, 50, 51, rng)
		var gSum, lrSum, raSum float64
		for trial := 0; trial < cfg.Trials; trial++ {
			order := stream.RandomOrder(inst.G, rng)
			greedy := matchutil.GreedyWeighted(inst.G)
			lr := localratio.Run(inst.G.N(), order.Edges())
			res := randarrival.RandArrMatching(inst.G.N(), stream.FromEdges(order.Edges()),
				randarrival.WeightedOptions{Rng: rng})
			gSum += matchutil.Ratio(greedy, inst.OptWeight)
			lrSum += matchutil.Ratio(lr, inst.OptWeight)
			raSum += matchutil.Ratio(res.M, inst.OptWeight)
		}
		kk := float64(cfg.Trials)
		trap.Rows = append(trap.Rows, []string{
			fi(k), f3(gSum / kk), f3(lrSum / kk), f3(raSum / kk),
		})
	}
	return []Table{t, trap}
}

// E2RandomArrivalUnweighted probes Theorem 3.4: the one-pass unweighted
// algorithm beats greedy's 1/2 on hard instances (chains of 3-augmenting
// paths) under random arrivals.
func E2RandomArrivalUnweighted(cfg Config) []Table {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	segs := []int{100, 300, 1000}
	if cfg.Quick {
		segs = []int{60}
	}
	t := Table{
		ID:     "E2",
		Title:  "Theorem 3.4 — single-pass unweighted matching, random arrivals",
		Claim:  "0.506-approx in expectation vs greedy's 1/2 (hard chains)",
		Header: []string{"segments", "n", "greedy", "Thm 3.4 alg", "lift"},
	}
	for _, k := range segs {
		inst := graph.AugmentingChain(k, 1, 1, rng)
		opt := float64(2 * k)
		var gSum, aSum float64
		for trial := 0; trial < cfg.Trials; trial++ {
			order := stream.RandomOrder(inst.G, rng)
			g := randarrival.GreedyRandomArrival(inst.G.N(), stream.FromEdges(order.Edges()))
			a := randarrival.UnweightedRandomArrival(inst.G.N(), stream.FromEdges(order.Edges()),
				randarrival.UnweightedOptions{Beta: 0.5})
			gSum += float64(g.Size()) / opt
			aSum += float64(a.M.Size()) / opt
		}
		kk := float64(cfg.Trials)
		t.Rows = append(t.Rows, []string{
			fi(k), fi(inst.G.N()), f3(gSum / kk), f3(aSum / kk), f3(aSum/kk - gSum/kk),
		})
	}
	return []Table{t}
}

// E3ThreeAugPaths probes Lemma 3.1: with beta*|M| planted vertex-disjoint
// 3-augmenting paths in the stream, Unw-3-Aug-Paths recovers at least
// (beta^2/32)*|M| using O(|M|) space.
func E3ThreeAugPaths(cfg Config) []Table {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	k := 400
	if cfg.Quick {
		k = 100
	}
	t := Table{
		ID:     "E3",
		Title:  "Lemma 3.1 — streaming 3-augmenting path recovery",
		Claim:  "recovered >= (beta^2/32)|M| with |S| <= 4|M|",
		Header: []string{"beta", "|M|", "planted", "recovered", "bound", "|S|", "4|M|"},
	}
	for _, beta := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		var recSum, sSum int
		planted := int(beta * float64(k))
		for trial := 0; trial < cfg.Trials; trial++ {
			inst, m0 := graph.ThreeAugWorkload(k, beta, 5*k, rng)
			f := unwaug.New(m0, beta)
			s := stream.RandomOrder(inst.G, rng)
			for e, ok := s.Next(); ok; e, ok = s.Next() {
				if !m0.Has(e.U, e.V) {
					f.Feed(e)
				}
			}
			recSum += len(f.Finalize())
			sSum += f.SupportSize()
		}
		bound := int(beta * beta / 32 * float64(k))
		t.Rows = append(t.Rows, []string{
			f3(beta), fi(k), fi(planted), fi(recSum / cfg.Trials), fi(bound),
			fi(sSum / cfg.Trials), fi(4 * k),
		})
	}
	return []Table{t}
}

// E6SpaceUsage probes Lemma 3.15: under random arrival both the local-ratio
// stack S and the post-freeze set T hold O(n log n) edges, while adversarial
// (ascending weight) order blows the stack up towards m.
func E6SpaceUsage(cfg Config) []Table {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	sizes := []int{100, 200, 400}
	if cfg.Quick {
		sizes = []int{80}
	}
	t := Table{
		ID:    "E6",
		Title: "Lemma 3.15 — local-ratio stack and T-set space",
		Claim: "|S|, |T| in O(n polylog n) whp under random arrival; " +
			"[PS17] bounding rescues adversarial order",
		Header: []string{"n", "m", "|S| random", "|S| adversarial", "|S| adv bounded [PS17]", "|T| random", "n·ln n"},
	}
	for _, n := range sizes {
		m := n * n / 4
		var sRand, sAdv, sBnd, tRand int
		for trial := 0; trial < cfg.Trials; trial++ {
			inst := graph.RandomGraph(n, m, 1<<20, rng)

			res := randarrival.RandArrMatching(n, stream.RandomOrder(inst.G, rng),
				randarrival.WeightedOptions{Rng: rng})
			sRand += res.StackSize
			tRand += res.TSize

			// Adversarial: ascending weights force every edge into the
			// stack of a plain local-ratio run; the [PS17] bounded variant
			// keeps the stack near n·log W.
			asc := inst.G.SortedEdges()
			for i, j := 0, len(asc)-1; i < j; i, j = i+1, j-1 {
				asc[i], asc[j] = asc[j], asc[i]
			}
			p := localratio.New(n)
			pb := localratio.NewBounded(n, 0.2)
			for _, e := range asc {
				p.Process(e)
				pb.Process(e)
			}
			sAdv += p.PeakStackLen()
			sBnd += pb.PeakStackLen()
		}
		t.Rows = append(t.Rows, []string{
			fi(n), fi(m), fi(sRand / cfg.Trials), fi(sAdv / cfg.Trials),
			fi(sBnd / cfg.Trials),
			fi(tRand / cfg.Trials), f1(float64(n) * math.Log(float64(n))),
		})
	}
	return []Table{t}
}
