package bench

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/layered"
	"repro/internal/matchutil"
)

// E4MultipassWeighted probes Theorem 1.2(2): the reduction reaches a
// (1−ε)-style ratio in the multi-pass streaming model with a per-round pass
// budget independent of n, and the ratio improves as the granularity
// (effective ε) shrinks.
func E4MultipassWeighted(cfg Config) []Table {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	sizes := []int{60, 120, 240}
	if cfg.Quick {
		sizes = []int{50}
	}
	main := Table{
		ID:     "E4",
		Title:  "Theorem 1.2(2) — multi-pass streaming (1-ε) weighted matching",
		Claim:  "ratio -> 1, passes O_ε(1) independent of n, memory ~ n polylog n",
		Header: []string{"n", "ratio", "total passes", "max passes/round", "subroutine passes", "peak words"},
	}
	for _, n := range sizes {
		var rSum float64
		var passSum, maxRound, subPasses, peak int
		for trial := 0; trial < cfg.Trials; trial++ {
			inst := graph.PlantedMatching(n, 5*n, 100, 200, rng)
			res, err := core.SolveStreaming(inst.G, nil, core.StreamingOptions{
				Core: core.Options{Rng: rng, MaxRounds: 20, Patience: 4},
			})
			if err != nil {
				continue
			}
			rSum += matchutil.Ratio(res.M, inst.OptWeight)
			passSum += res.TotalPasses
			if res.MaxRoundPasses > maxRound {
				maxRound = res.MaxRoundPasses
			}
			if res.SubroutinePasses > subPasses {
				subPasses = res.SubroutinePasses
			}
			if res.PeakStored > peak {
				peak = res.PeakStored
			}
		}
		main.Rows = append(main.Rows, []string{
			fi(n), f3(rSum / float64(cfg.Trials)), fi(passSum / cfg.Trials),
			fi(maxRound), fi(subPasses), fi(peak),
		})
	}

	abl := Table{
		ID:     "E4b",
		Title:  "ε-ablation — granularity vs offline reduction quality",
		Claim:  "finer granularity (smaller effective ε) => better ratio",
		Header: []string{"granularity", "avg ratio", "worst ratio", "solver calls"},
	}
	grans := []float64{0.25, 0.125, 0.0625}
	trials := cfg.Trials
	if cfg.Quick {
		grans = []float64{0.25, 0.125}
		trials = 2
	}
	for _, g := range grans {
		rng2 := rand.New(rand.NewSource(cfg.Seed))
		var sum float64
		worst := 1.0
		calls := 0
		for trial := 0; trial < trials; trial++ {
			inst := graph.RandomGraph(14, 40, 64, rng2)
			opt, err := matchutil.MaxWeightExact(inst.G)
			if err != nil {
				continue
			}
			res, err := core.Solve(inst.G, nil, core.Options{
				Rng:      rng2,
				Layered:  layered.Params{Granularity: g},
				Amortize: cfg.Amortize,
			})
			if err != nil {
				continue
			}
			r := matchutil.Ratio(res.M, opt.Weight())
			sum += r
			if r < worst {
				worst = r
			}
			calls += res.Stats.SolverCalls
		}
		abl.Rows = append(abl.Rows, []string{
			f3(g), f3(sum / float64(trials)), f3(worst), fi(calls / trials),
		})
	}
	return []Table{main, abl}
}

// E5MPCWeighted probes Theorem 1.2(1): the reduction in the MPC model with
// O(m/n) machines and near-linear per-machine memory; rounds are counted by
// the simulator.
func E5MPCWeighted(cfg Config) []Table {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	sizes := []int{60, 120, 240}
	if cfg.Quick {
		sizes = []int{50}
	}
	t := Table{
		ID:     "E5",
		Title:  "Theorem 1.2(1) — MPC (1-ε) weighted matching",
		Claim:  "O_ε(U_M) rounds, near-linear memory per machine",
		Header: []string{"n", "ratio", "total rounds", "max rounds/round", "U_M (subroutine)", "peak load"},
	}
	for _, n := range sizes {
		var rSum float64
		var roundSum, maxRound, um, peak int
		for trial := 0; trial < cfg.Trials; trial++ {
			inst := graph.PlantedMatching(n, 5*n, 100, 200, rng)
			res, err := core.SolveMPC(inst.G, nil, core.MPCOptions{
				Core: core.Options{Rng: rng, MaxRounds: 20, Patience: 4},
			})
			if err != nil {
				continue
			}
			rSum += matchutil.Ratio(res.M, inst.OptWeight)
			roundSum += res.TotalRounds
			if res.MaxRoundRounds > maxRound {
				maxRound = res.MaxRoundRounds
			}
			if res.SubroutineRounds > um {
				um = res.SubroutineRounds
			}
			if res.PeakLoad > peak {
				peak = res.PeakLoad
			}
		}
		t.Rows = append(t.Rows, []string{
			fi(n), f3(rSum / float64(cfg.Trials)), fi(roundSum / cfg.Trials),
			fi(maxRound), fi(um), fi(peak),
		})
	}
	return []Table{t}
}

// E8LayeredCapture probes Figure 3/4, Lemma 4.12 and the Section 1.1.2
// cycle blow-up: the 4-cycle (24,32,24,32) whose perfect matching can only
// be improved through an augmenting cycle is captured by the layered graphs
// with the predicted frequency, and the full driver solves alternating
// cycles of growing length.
func E8LayeredCapture(cfg Config) []Table {
	cfg = cfg.withDefaults()
	cap4 := Table{
		ID:     "E8",
		Title:  "Lemma 4.12 / Sec 1.1.2 — augmenting-cycle capture",
		Claim:  "4-cycle captured per bipartition draw with constant probability (alternating sides: 1/8)",
		Header: []string{"draws", "captures", "empirical prob"},
	}
	g := graph.New(4)
	g.MustAddEdge(0, 1, 24)
	g.MustAddEdge(1, 2, 32)
	g.MustAddEdge(2, 3, 24)
	g.MustAddEdge(3, 0, 32)
	m := graph.NewMatching(4)
	mustAdd(m, graph.Edge{U: 0, V: 1, W: 24})
	mustAdd(m, graph.Edge{U: 2, V: 3, W: 24})
	draws := 200
	if cfg.Quick {
		draws = 40
	}
	opts := core.Options{Rng: rand.New(rand.NewSource(cfg.Seed))}
	var stats core.Stats
	captures := 0
	for i := 0; i < draws; i++ {
		augs, err := core.FindClassAugmentations(g, m, 64, opts, &stats)
		if err != nil {
			continue
		}
		for _, a := range augs {
			if a.Gain() == 16 {
				captures++
				break
			}
		}
	}
	cap4.Rows = append(cap4.Rows, []string{
		fi(draws), fi(captures), f3(float64(captures) / float64(draws)),
	})

	cyc := Table{
		ID:     "E8b",
		Title:  "end-to-end augmenting cycles — WeightedCycle family",
		Claim:  "perfect-but-suboptimal matchings improved to optimum via cycles",
		Header: []string{"cycle edges", "start weight", "final weight", "optimum"},
	}
	lens := []int{2, 4}
	cycleRounds := 900 // the 8-cycle's bipartition probability is 1/128
	if cfg.Quick {
		cycleRounds = 250
	}
	for _, half := range lens {
		inst := graph.WeightedCycle(half, 24, 32)
		start := graph.NewMatching(inst.G.N())
		for i := 0; i < inst.G.N(); i += 2 {
			mustAdd(start, graph.Edge{U: i, V: (i + 1) % inst.G.N(), W: 24})
		}
		res, err := core.Solve(inst.G, start, core.Options{
			Rng:       rand.New(rand.NewSource(cfg.Seed)),
			MaxRounds: cycleRounds,
			Patience:  cycleRounds,
			Amortize:  cfg.Amortize,
			Layered:   layered.Params{MaxLayers: 2*half + 1, SumCap: float64(half) + 1},
		})
		if err != nil {
			continue
		}
		cyc.Rows = append(cyc.Rows, []string{
			fi(2 * half), fi64(int64(start.Weight())), fi64(int64(res.M.Weight())),
			fi64(int64(inst.OptWeight)),
		})
	}
	return []Table{cap4, cyc}
}

// E10Overhead probes the central complexity claim of Theorem 4.1: the
// weighted reduction costs only a constant factor over the unweighted
// subroutine, independent of n — measured as total MPC rounds divided by
// the subroutine's own round count.
func E10Overhead(cfg Config) []Table {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	sizes := []int{50, 100, 200}
	if cfg.Quick {
		sizes = []int{40, 80}
	}
	t := Table{
		ID:     "E10",
		Title:  "Theorem 4.1 — reduction overhead over the unweighted subroutine",
		Claim:  "total rounds / U_M is a constant in n (O_ε(1) factor)",
		Header: []string{"n", "total rounds", "U_M", "overhead factor"},
	}
	for _, n := range sizes {
		var total, um int
		for trial := 0; trial < cfg.Trials; trial++ {
			inst := graph.PlantedMatching(n, 5*n, 100, 200, rng)
			res, err := core.SolveMPC(inst.G, nil, core.MPCOptions{
				Core: core.Options{Rng: rng, MaxRounds: 15, Patience: 3},
			})
			if err != nil {
				continue
			}
			total += res.TotalRounds
			if res.SubroutineRounds > um {
				um = res.SubroutineRounds
			}
		}
		avgTotal := float64(total) / float64(cfg.Trials)
		factor := 0.0
		if um > 0 {
			factor = avgTotal / float64(um)
		}
		t.Rows = append(t.Rows, []string{
			fi(n), f1(avgTotal), fi(um), f1(factor),
		})
	}
	return []Table{t}
}

func mustAdd(m *graph.Matching, e graph.Edge) {
	if err := m.Add(e); err != nil {
		panic(err)
	}
}
