package bench

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/layered"
)

// E11Ablations measures the two documented implementation choices that
// deviate from the paper's literal statement (DESIGN.md, substitutions):
//
//  1. granularity (the stand-in for ε¹²) — already swept in E4b; here the
//     layer budget MaxLayers (the stand-in for the O(1/ε²) augmentation
//     length) is swept instead, and
//  2. the class-weight family — geometric sweep only vs geometric plus the
//     anchored weights that align bucket boundaries with the heaviest edge.
//
// The workload is the cycle family, which is maximally sensitive to both
// choices (augmenting cycles need long blown-up walks and exact bucket
// alignment at coarse granularity).
func E11Ablations(cfg Config) []Table {
	cfg = cfg.withDefaults()

	layersTable := Table{
		ID:     "E11",
		Title:  "ablation — layer budget vs augmenting-cycle recovery",
		Claim:  "a 2t-cycle needs t+1 matched layers; capture probability per round is 2^(1-2t)",
		Header: []string{"max layers", "4-cycle solved", "8-cycle solved"},
	}
	// Round budgets honour the 2^(1-|C|) bipartition probability: the
	// 8-cycle alternates with probability 1/128 per draw, so it needs on
	// the order of several hundred rounds to be captured whp.
	rounds := 900
	if cfg.Quick {
		rounds = 250
	}
	for _, maxLayers := range []int{3, 5, 9} {
		row := []string{fi(maxLayers)}
		for _, half := range []int{2, 4} {
			inst := graph.WeightedCycle(half, 24, 32)
			start := graph.NewMatching(inst.G.N())
			for i := 0; i < inst.G.N(); i += 2 {
				mustAdd(start, graph.Edge{U: i, V: (i + 1) % inst.G.N(), W: 24})
			}
			res, err := core.Solve(inst.G, start, core.Options{
				Rng:       rand.New(rand.NewSource(cfg.Seed)),
				MaxRounds: rounds,
				Patience:  rounds,
				Layered:   layered.Params{MaxLayers: maxLayers, SumCap: float64(half) + 1},
			})
			solved := "no"
			if err == nil && res.M.Weight() == inst.OptWeight {
				solved = "yes"
			}
			row = append(row, solved)
		}
		layersTable.Rows = append(layersTable.Rows, row)
	}

	anchor := Table{
		ID:     "E11b",
		Title:  "ablation — anchored class weights",
		Claim:  "at coarse granularity, anchored W classes recover cycle gains the geometric sweep misses",
		Header: []string{"class family", "4-cycle final weight", "optimum"},
	}
	inst := graph.WeightedCycle(2, 24, 32)
	for _, anchored := range []bool{false, true} {
		start := graph.NewMatching(4)
		mustAdd(start, graph.Edge{U: 0, V: 1, W: 24})
		mustAdd(start, graph.Edge{U: 2, V: 3, W: 24})
		m := start.Clone()
		opts := core.Options{Rng: rand.New(rand.NewSource(cfg.Seed)), MaxRounds: 60, Patience: 60}
		opts = fillDefaults(opts)
		var stats core.Stats
		weights := core.ClassWeights(inst.G, opts.ClassBase, opts.Layered)
		if !anchored {
			// Keep only the pure geometric sweep: drop weights that are
			// not of the form minW/2 · base^i.
			weights = geometricOnly(inst.G, opts.ClassBase, opts.Layered)
		}
		for r := 0; r < 60; r++ {
			gain := runRoundWithWeights(inst.G, m, weights, opts, &stats)
			if gain > 0 {
				break
			}
		}
		name := "geometric only"
		if anchored {
			name = "geometric + anchored"
		}
		anchor.Rows = append(anchor.Rows, []string{
			name, fi64(int64(m.Weight())), fi64(int64(inst.OptWeight)),
		})
	}
	return []Table{layersTable, anchor}
}

func fillDefaults(o core.Options) core.Options {
	if o.ClassBase <= 1 {
		o.ClassBase = 2
	}
	o.Layered = o.Layered.WithDefaults()
	return o
}

func geometricOnly(g *graph.Graph, base float64, prm layered.Params) []float64 {
	prm = prm.WithDefaults()
	minW := float64(g.MaxWeight())
	for _, e := range g.Edges() {
		if w := float64(e.W); w < minW {
			minW = w
		}
	}
	top := float64(g.MaxWeight()) * float64(prm.MaxLayers+1)
	var out []float64
	for w := minW / 2; w <= top; w *= base {
		out = append(out, w)
	}
	return out
}

// runRoundWithWeights replays the Algorithm 3 round with a fixed class
// family by probing each class through FindClassAugmentations (which draws
// a fresh bipartition each time), then applying disjointly.
func runRoundWithWeights(
	g *graph.Graph,
	m *graph.Matching,
	weights []float64,
	opts core.Options,
	stats *core.Stats,
) graph.Weight {
	var all []graph.Augmentation
	for _, w := range weights {
		augs, err := core.FindClassAugmentations(g, m, w, opts, stats)
		if err != nil {
			continue
		}
		all = append(all, augs...)
	}
	gain, _ := graph.ApplyDisjoint(m, all)
	return gain
}
