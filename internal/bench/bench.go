// Package bench contains the experiment harness that regenerates the
// paper's quantitative claims (the experiment index of DESIGN.md and
// EXPERIMENTS.md). Each experiment Ek returns one or more tables whose rows
// are the measured counterparts of a theorem, lemma, table, or figure of
// Gamlath–Kale–Mitrović–Svensson (PODC 2019).
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Config scales an experiment run.
type Config struct {
	// Seed makes every experiment deterministic.
	Seed int64
	// Trials is the number of repetitions averaged per row (default 5).
	Trials int
	// Quick shrinks instance sizes for use inside testing.B loops.
	Quick bool
	// Amortize routes the reduction-driven experiments through the
	// cross-round amortised pipeline (core.Options.Amortize). Results are
	// bit-identical to the naive path; the E12 counters table additionally
	// reports the probe and cache activity.
	Amortize bool
}

func (c Config) withDefaults() Config {
	if c.Trials <= 0 {
		c.Trials = 5
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Table is a rendered experiment result.
type Table struct {
	ID     string
	Title  string
	Claim  string // the paper claim this table probes
	Header []string
	Rows   [][]string
}

// Render pretty-prints the table.
func (t Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(w, "   paper: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "   %s\n", strings.Join(parts, "  "))
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

func pad(s string, n int) string {
	if len(s) >= n {
		return s
	}
	return s + strings.Repeat(" ", n-len(s))
}

// Runner is one experiment.
type Runner func(Config) []Table

// Registry maps experiment ids to runners.
func Registry() map[string]Runner {
	return map[string]Runner{
		"E1":  E1RandomArrivalWeighted,
		"E2":  E2RandomArrivalUnweighted,
		"E3":  E3ThreeAugPaths,
		"E4":  E4MultipassWeighted,
		"E5":  E5MPCWeighted,
		"E6":  E6SpaceUsage,
		"E7":  E7FilterSoundness,
		"E8":  E8LayeredCapture,
		"E9":  E9TauPairs,
		"E10": E10Overhead,
		"E11": E11Ablations,
		"E12": E12Convergence,
		"E13": E13SolverBound,
		"E14": E14UniformClass,
		"E15": E15DeltaBuild,
		"E16": E16RepairHK,
		"E17": E17CrossRound,
		"E18": E18EditStream,
		"E19": E19SolverMicroarch,
		"E20": E20StreamScale,
	}
}

// IDs returns the experiment ids in order.
func IDs() []string {
	reg := Registry()
	ids := make([]string, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if len(ids[i]) != len(ids[j]) {
			return len(ids[i]) < len(ids[j])
		}
		return ids[i] < ids[j]
	})
	return ids
}

// RunAll executes every experiment and renders to w.
func RunAll(cfg Config, w io.Writer) {
	reg := Registry()
	for _, id := range IDs() {
		for _, t := range reg[id](cfg) {
			t.Render(w)
		}
	}
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func fi(v int) string     { return fmt.Sprintf("%d", v) }
func fi64(v int64) string { return fmt.Sprintf("%d", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
