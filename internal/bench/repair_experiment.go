package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/graph"
)

// E16RepairHK measures the incremental Hopcroft–Karp repair — the
// solver-side twin of the PR 4 delta builder — on the same two shapes the
// E15 table uses: the E13 band (build- and solver-bound: thousands of tiny
// solves per round) and the E12 planted shape (bucket-bound control). Each
// instance runs the amortised pipeline with identical seeds under three
// configurations: repair with the default gate (patch whenever anything is
// shared), repair gated to prefixes of at least 4 shared edges (the
// cutover sensitivity probe), and repair disabled (RepairCutover = −1,
// every solve a fresh HopcroftKarpScratch — the PR 4 baseline). Outputs are bit-identical by construction (Invariant 21;
// asserted across families by the solvertest differential suite), so the
// ratio isolates the solver setup cost. The counters keep the verdict
// honest: RepairSolves/RepairEdgesKept show how much adjacency was actually
// patched rather than rebuilt, and the final weight column proves the runs
// did not diverge.
func E16RepairHK(cfg Config) []Table {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	nBand, nPlant, rounds := 240, 120, 3
	if cfg.Quick {
		nBand, nPlant, rounds = 60, 40, 2
	}
	instances := []struct {
		label string
		g     *graph.Graph
		opts  core.Options
	}{
		{
			label: "E13 band (solver-bound)",
			g:     graph.BandedWeights(nBand, 8*nBand, 100, rng).G,
			opts:  core.Options{Amortize: true, MaxPairsPerClass: 2000},
		},
		{
			label: "E12 planted (bucket-bound)",
			g:     graph.PlantedMatching(nPlant, 5*nPlant, 100, 200, rng).G,
			opts:  core.Options{Amortize: true},
		},
	}

	t := Table{
		ID:    "E16",
		Title: "incremental Hopcroft-Karp repair (RepairHK) over the delta chain",
		Claim: "patching the retained CSR beats per-solve rebuilds where solves dominate",
		Header: []string{"workload", "config", "ms/round", "solver calls", "repair solves",
			"edges kept", "HK phases", "final weight"},
	}
	for _, inst := range instances {
		seed := cfg.Seed + int64(rng.Intn(1<<20)) // shared: all configs draw identical rounds
		for _, c := range []struct {
			label   string
			cutover int
		}{{"repair", 0}, {"repair-c4", 4}, {"scratch", -1}} {
			opts := inst.opts
			opts.RepairCutover = c.cutover
			r, err := runSolverBound(inst.g, opts, c.label, seed, rounds)
			if err != nil {
				continue
			}
			perRound := 0.0
			if r.stats.Rounds > 0 {
				perRound = float64(r.elapsed.Microseconds()) / 1000 / float64(r.stats.Rounds)
			}
			t.Rows = append(t.Rows, []string{
				inst.label,
				c.label,
				fmt.Sprintf("%.2f", perRound),
				fi(r.stats.SolverCalls),
				fi(r.stats.RepairSolves),
				fi(r.stats.RepairEdgesKept),
				fi(r.stats.SolverPhases),
				fi64(int64(r.weight)),
			})
		}
	}
	return []Table{t}
}
