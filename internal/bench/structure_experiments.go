package bench

import (
	"math/rand"

	"repro/internal/graph"
	"repro/internal/layered"
	"repro/internal/randarrival"
	"repro/internal/stream"
)

// E7FilterSoundness probes the Figure 1 invariant (Section 1.1.1): every
// edge that passes the τ-filter of Wgt-Aug-Paths yields a weight-positive
// augmentation, so the count of filter-passing-but-lossy augmentations must
// be zero; it also reports how selective the filter is.
func E7FilterSoundness(cfg Config) []Table {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := Table{
		ID:     "E7",
		Title:  "Figure 1 — τ-filter soundness for 3-augmentations",
		Claim:  "every filtered unweighted augmenting path is weight-positive",
		Header: []string{"trials", "finalize runs", "weight decreases", "validation failures"},
	}
	trials := 20 * cfg.Trials
	if cfg.Quick {
		trials = 4 * cfg.Trials
	}
	decreases, invalid := 0, 0
	for trial := 0; trial < trials; trial++ {
		inst := graph.PlantedMatching(20, 60, 50, 150, rng)
		s := stream.RandomOrder(inst.G, rng)
		m0 := graph.NewMatching(inst.G.N())
		for i := 0; i < inst.G.M()/2; i++ {
			e, _ := s.Next()
			if !m0.IsMatched(e.U) && !m0.IsMatched(e.V) {
				mustAdd(m0, e)
			}
		}
		wap := randarrival.NewWgtAugPaths(m0, 0.5, rng)
		for e, ok := s.Next(); ok; e, ok = s.Next() {
			wap.Feed(e)
		}
		before := m0.Weight()
		m := wap.Finalize()
		if m.Weight() < before {
			decreases++
		}
		if err := m.Validate(); err != nil {
			invalid++
		}
	}
	t.Rows = append(t.Rows, []string{fi(trials), fi(trials), fi(decreases), fi(invalid)})
	return []Table{t}
}

// E9TauPairs probes Table 1: the number of good (τA, τB) pairs as a
// function of granularity and layer budget, and the soundness of the
// enumeration (every pair satisfies all six constraints).
func E9TauPairs(cfg Config) []Table {
	cfg = cfg.withDefaults()
	t := Table{
		ID:     "E9",
		Title:  "Table 1 — good (τA, τB) pair enumeration",
		Claim:  "count grows with 1/g and layer budget; all pairs satisfy (A)-(F)",
		Header: []string{"granularity", "max layers", "pairs", "all good"},
	}
	type pt struct {
		g float64
		l int
	}
	points := []pt{{0.25, 3}, {0.25, 5}, {0.125, 3}, {0.125, 5}, {0.0625, 3}}
	if cfg.Quick {
		points = points[:3]
	}
	for _, p := range points {
		prm := layered.Params{Granularity: p.g, MaxLayers: p.l}
		pairs := layered.EnumerateGoodPairs(prm)
		allGood := true
		for _, tp := range pairs {
			if !tp.IsGood(prm) {
				allGood = false
				break
			}
		}
		ok := "yes"
		if !allGood {
			ok = "NO"
		}
		t.Rows = append(t.Rows, []string{f3(p.g), fi(p.l), fi(len(pairs)), ok})
	}
	return []Table{t}
}
