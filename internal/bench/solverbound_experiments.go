package bench

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
)

// The E13/E14 experiments probe the solver-bound regime of the reduction:
// instance families whose layered graphs are dense enough that the
// unweighted Hopcroft–Karp subroutine — not the bucketing or enumeration —
// dominates round time. They are the measurement bed for the warm-started
// solver (core.Options.WarmStart), whose phase savings only show against
// solver-bound rounds; on bucket-bound workloads like E12 warming is a
// measured net loss (see the ROADMAP perf ledger).

// solverBoundRun executes one fixed-budget Solve and reports the wall time
// alongside the pipeline counters.
type solverBoundRun struct {
	label   string
	elapsed time.Duration
	stats   core.Stats
	weight  graph.Weight
}

func runSolverBound(g *graph.Graph, opts core.Options, label string, seed int64, rounds int) (solverBoundRun, error) {
	if opts.Rng == nil {
		opts.Rng = rand.New(rand.NewSource(seed))
	}
	opts.MaxRounds = rounds
	opts.Patience = rounds
	start := time.Now()
	res, err := core.Solve(g, nil, opts)
	if err != nil {
		return solverBoundRun{}, err
	}
	return solverBoundRun{
		label:   label,
		elapsed: time.Since(start),
		stats:   res.Stats,
		weight:  res.M.Weight(),
	}, nil
}

func solverBoundTable(id, title, claim string, runs []solverBoundRun) Table {
	t := Table{
		ID:     id,
		Title:  title,
		Claim:  claim,
		Header: []string{"config", "ms/round", "solver calls", "HK phases", "pairs", "enum pruned", "cache hits", "final weight"},
	}
	for _, r := range runs {
		perRound := 0.0
		if r.stats.Rounds > 0 {
			perRound = float64(r.elapsed.Milliseconds()) / float64(r.stats.Rounds)
		}
		t.Rows = append(t.Rows, []string{
			r.label,
			fmt.Sprintf("%.2f", perRound),
			fi(r.stats.SolverCalls),
			fi(r.stats.SolverPhases),
			fi(r.stats.LayeredBuilt),
			fi(r.stats.EnumPruned),
			fi(r.stats.CacheHits),
			fi64(int64(r.weight)),
		})
	}
	return t
}

// E13SolverBound probes the dense-band solver-bound family: one weight
// octave, so the covering classes see many populated τ units at once and the
// good-pair enumeration yields large viable sets over large buckets. Run
// with a raised MaxPairsPerClass so the pair limit does not clip the dense
// classes. Cold and warm-started Hopcroft–Karp run the same budget; their
// ratio is the ledger's warm-start sign on this tier.
func E13SolverBound(cfg Config) []Table {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	n, rounds := 240, 3
	if cfg.Quick {
		n, rounds = 60, 2
	}
	inst := graph.BandedWeights(n, 8*n, 100, rng)
	base := core.Options{Amortize: true, MaxPairsPerClass: 2000}
	seed := cfg.Seed + int64(rng.Intn(1<<20)) // shared: cold and warm draw identical bipartitions
	var runs []solverBoundRun
	for _, c := range []struct {
		label string
		warm  bool
	}{{"cold", false}, {"warm", true}} {
		opts := base
		opts.WarmStart = c.warm
		r, err := runSolverBound(inst.G, opts, c.label, seed, rounds)
		if err != nil {
			continue
		}
		runs = append(runs, r)
	}
	return []Table{solverBoundTable(
		"E13",
		"solver-bound tier — dense one-octave band (warm vs cold HK)",
		"L' graphs dense enough that Hopcroft-Karp dominates round time",
		runs,
	)}
}

// E14UniformClass probes the uniform-heavy-class family: every edge the same
// weight, so each covering class collapses to a handful of good pairs whose
// layered graphs each span the full crossing subgraph — the round is
// effectively repeated maximum-cardinality solves. Consecutive pairs of a
// class share almost their whole layered graph, the warm path's best case.
func E14UniformClass(cfg Config) []Table {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	n, rounds := 1000, 8
	if cfg.Quick {
		n, rounds = 80, 2
	}
	inst := graph.UniformWeights(n, 6*n, 128, rng)
	base := core.Options{Amortize: true}
	seed := cfg.Seed + int64(rng.Intn(1<<20)) // shared: all configs draw identical bipartitions
	var runs []solverBoundRun
	for _, c := range []struct {
		label string
		warm  bool
		gate  int
	}{
		{"cold", false, 0},
		// The hit-rate gate's before/after: uniform tiers never hit the
		// cross-class cache, so cold rounds used to digest large buckets
		// for nothing — the no-gate row is that pre-gate behaviour.
		{"cold nogate", false, -1},
		{"warm", true, 0},
	} {
		opts := base
		opts.WarmStart = c.warm
		opts.CacheGate = c.gate
		r, err := runSolverBound(inst.G, opts, c.label, seed, rounds)
		if err != nil {
			continue
		}
		runs = append(runs, r)
	}
	return []Table{solverBoundTable(
		"E14",
		"solver-bound tier — uniform heavy class (warm vs cold HK)",
		"uniform weights collapse each class to few pairs over the full crossing subgraph",
		runs,
	)}
}
