package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
)

// genUpdates pre-generates count single-op mutation batches of the given
// regime, validated against a scratch clone so deletes and reweights always
// name a live edge. Pre-generation (rather than drawing per side) keeps the
// persistent and rebuild configurations on the identical update stream.
func genUpdates(g *graph.Graph, regime string, count int, maxW graph.Weight, rng *rand.Rand) []*core.MutationBatch {
	sim := g.Clone()
	updates := make([]*core.MutationBatch, 0, count)
	for len(updates) < count {
		b := &core.MutationBatch{}
		op := regime
		if regime == "mixed" {
			op = []string{"insert", "delete", "reweight"}[rng.Intn(3)]
		}
		if sim.M() == 0 {
			op = "insert"
		}
		switch op {
		case "insert":
			u, v := rng.Intn(sim.N()), rng.Intn(sim.N())
			if u == v {
				continue
			}
			w := 1 + graph.Weight(rng.Int63n(int64(maxW)))
			b.InsertEdge(u, v, w)
			if err := sim.AddEdge(graph.Edge{U: u, V: v, W: w}); err != nil {
				panic(err)
			}
		case "delete":
			e := sim.EdgeAt(rng.Intn(sim.M()))
			b.DeleteEdge(e.U, e.V)
			i, _ := sim.FindEdge(e.U, e.V)
			if _, err := sim.RemoveEdgeAt(i); err != nil {
				panic(err)
			}
		case "reweight":
			e := sim.EdgeAt(rng.Intn(sim.M()))
			w := 1 + graph.Weight(rng.Int63n(int64(maxW)))
			b.ReweightEdge(e.U, e.V, w)
			i, _ := sim.FindEdge(e.U, e.V)
			if err := sim.SetEdgeWeight(i, w); err != nil {
				panic(err)
			}
		}
		updates = append(updates, b)
	}
	return updates
}

// editStreamResult is one configuration's run over an update stream.
type editStreamResult struct {
	p50, p99 time.Duration
	stats    core.Stats
	weight   graph.Weight
}

// runEditStream converges a matching on g, then applies the update stream
// one batch per tick, timing each ApplyMutations+re-converge cycle. With
// persistent=false the Runner — and with it the whole amortised context —
// is rebuilt from scratch before every update: the from-scratch dynamic
// baseline the mutation-diff layer is measured against. Both configurations
// are bit-identical by the rebuild-twin equivalence, so the latency ratio
// isolates what absorbing the edit in place is worth.
func runEditStream(g *graph.Graph, opts core.Options, seed int64, updates []*core.MutationBatch, persistent bool) (editStreamResult, error) {
	gc := g.Clone()
	o := opts
	o.Rng = rand.New(rand.NewSource(seed))
	m := graph.NewMatching(gc.N())
	var stats core.Stats
	runner := core.NewRunner(gc, o)
	if _, err := runner.Tick(m, nil, &stats); err != nil {
		return editStreamResult{}, err
	}
	lats := make([]time.Duration, 0, len(updates))
	for _, b := range updates {
		start := time.Now()
		if !persistent {
			runner = core.NewRunner(gc, o)
		}
		if _, err := runner.Tick(m, b, &stats); err != nil {
			return editStreamResult{}, err
		}
		lats = append(lats, time.Since(start))
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p int) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		return lats[(len(lats)-1)*p/100]
	}
	return editStreamResult{p50: pct(50), p99: pct(99), stats: stats, weight: m.Weight()}, nil
}

// E18EditStream measures the PR 8 tentpole: the fully-dynamic mutation
// stream over the epoch-keyed pipeline. The bed is the E13/E17 banded tier
// with a converged matching absorbing a stream of single-edit updates —
// insert-only, delete-only, reweight-only, and mixed regimes — where each
// update is one ApplyMutations plus the rounds to re-converge. The
// persistent configuration absorbs each edit through the index's edit
// protocol (the same change clocks BeginRound stamps); the rebuild baseline
// reconstructs the amortised context from scratch per update. Outputs are
// bit-identical by construction (the edit-stream differential suite in
// internal/solvertest asserts it per family), so the p50/p99 update-latency
// columns isolate the mutation-diff layer's worth; the counter columns show
// the edits riding the cross-round chains (MutationDeltaBuilds) instead of
// resetting them.
func E18EditStream(cfg Config) []Table {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	nBand, count := 240, 50
	if cfg.Quick {
		nBand, count = 60, 10
	}
	g := graph.BandedWeights(nBand, 8*nBand, 100, rng).G
	opts := core.Options{Amortize: true, MaxPairsPerClass: 2000}
	seed := cfg.Seed + int64(rng.Intn(1<<20))

	t := Table{
		ID:    "E18",
		Title: "fully-dynamic edit stream over the amortised pipeline",
		Claim: "absorbing an edit through the index's change clocks beats rebuilding the context per update",
		Header: []string{"regime", "config", "updates", "p50 ms", "p99 ms",
			"mut delta builds", "index resets", "final weight"},
	}
	for _, regime := range []string{"insert", "delete", "reweight", "mixed"} {
		updates := genUpdates(g, regime, count, 100, rand.New(rand.NewSource(cfg.Seed+int64(len(regime)))))
		var weights []graph.Weight
		for _, c := range []struct {
			label      string
			persistent bool
		}{{"persistent", true}, {"rebuild", false}} {
			r, err := runEditStream(g, opts, seed, updates, c.persistent)
			if err != nil {
				continue
			}
			weights = append(weights, r.weight)
			t.Rows = append(t.Rows, []string{
				regime,
				c.label,
				fi(count),
				fmt.Sprintf("%.2f", float64(r.p50.Microseconds())/1000),
				fmt.Sprintf("%.2f", float64(r.p99.Microseconds())/1000),
				fi(r.stats.MutationDeltaBuilds),
				fi(r.stats.MutationIndexResets),
				fi64(int64(r.weight)),
			})
		}
		// The two configurations are one algorithm: a weight divergence is a
		// harness bug worth surfacing in the table rather than hiding.
		if len(weights) == 2 && weights[0] != weights[1] {
			t.Rows = append(t.Rows, []string{regime, "DIVERGED", "", "", "", "", "", ""})
		}
	}
	return []Table{t}
}
