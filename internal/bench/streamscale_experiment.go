package bench

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"repro/internal/graph"
	"repro/internal/localratio"
	"repro/internal/matchutil"
	"repro/internal/randarrival"
	"repro/internal/stream"
)

// ScaleStats is one row of the E20 out-of-core ledger: Algorithm 2 run
// end-to-end over a disk-resident random-order stream.
type ScaleStats struct {
	// Edges is the number of records the shuffled stream file holds.
	Edges int
	// PerArrivalNS is wall time of the matching run divided by Edges —
	// the amortised per-arrival cost including stream IO.
	PerArrivalNS float64
	// Passes is the stream's own pass count over the run (Algorithm 2 is
	// single-pass, so 1).
	Passes int
	// PeakWords is the Accountant peak: every stream-dependent word the
	// run held at once (stack + T + marked classes + support sets).
	PeakWords int
	// StackSize and TSize are the Lemma 3.15 quantities.
	StackSize, TSize int
	// Weight is the output matching weight; CoverBound is the LP-dual
	// certificate Σα from a full local-ratio pass, an upper bound on OPT,
	// so Weight/CoverBound lower-bounds the realised approximation ratio.
	Weight     graph.Weight
	CoverBound graph.Weight
}

// CertifiedRatio returns Weight/CoverBound (a certified lower bound on the
// realised approximation ratio), or 0 when the bound is empty.
func (s ScaleStats) CertifiedRatio() float64 {
	if s.CoverBound == 0 {
		return 0
	}
	return float64(s.Weight) / float64(s.CoverBound)
}

// RunStreamScaleRow materialises an m-edge uniformly-shuffled stream on
// disk under dir (via the external-memory shuffle, so no in-RAM graph or
// edge slice ever exists), verifies and opens it, runs Rand-Arr-Matching
// out of core with the accountant and arena installed, then takes one more
// pass to compute the cover-bound certificate. The stream file is removed
// before returning.
func RunStreamScaleRow(dir string, n, m int, maxw int64, seed int64) (ScaleStats, error) {
	rng := rand.New(rand.NewSource(seed))
	path := filepath.Join(dir, fmt.Sprintf("e20-n%d-m%d.estream", n, m))
	defer os.Remove(path)
	wrote, err := stream.ShuffleToFile(path, n, graph.RandomEdgeSource(n, m, graph.Weight(maxw), rng), rng, 0)
	if err != nil {
		return ScaleStats{}, err
	}
	fs, err := stream.OpenFile(path)
	if err != nil {
		return ScaleStats{}, err
	}
	defer fs.Close()

	var acct stream.Accountant
	start := time.Now()
	res := randarrival.RandArrMatching(n, fs, randarrival.WeightedOptions{
		Rng:     rng,
		Account: &acct,
		Arena:   &randarrival.Arena{},
	})
	elapsed := time.Since(start)
	if err := fs.Err(); err != nil {
		return ScaleStats{}, err
	}

	cover := localratio.New(n)
	fs.Reset()
	for e, ok := fs.Next(); ok; e, ok = fs.Next() {
		cover.Process(e)
	}
	if err := fs.Err(); err != nil {
		return ScaleStats{}, err
	}

	return ScaleStats{
		Edges:        wrote,
		PerArrivalNS: float64(elapsed.Nanoseconds()) / float64(wrote),
		Passes:       res.Passes,
		PeakWords:    res.PeakWords,
		StackSize:    res.StackSize,
		TSize:        res.TSize,
		Weight:       res.M.Weight(),
		CoverBound:   cover.CoverBound(),
	}, nil
}

// E20StreamScale is the PR 10 quality/scale ledger for the amortised
// streaming tier. Three tables:
//
//   - scale: Algorithm 2 end-to-end over disk-resident random-order
//     streams built by the external-memory shuffle — per-arrival ns
//     (including IO), single-pass check, and the Accountant peak against
//     the Lemma 3.15 O(n log n) bound, with the cover-bound certificate
//     standing in for the exact optimum where exact is infeasible.
//   - per-arrival: the arena-backed hot path vs the retained naive forms,
//     same-run A/B on identical streams (the only comparison benchguard
//     gates); the "identical" column is the Invariant 27 check inlined.
//   - quality: realised approximation ratio vs the exact optimum on
//     families where it is known, random vs adversarial arrival order —
//     the regression surface the pinned-ratio test asserts.
func E20StreamScale(cfg Config) []Table {
	cfg = cfg.withDefaults()

	scale := Table{
		ID:    "E20",
		Title: "out-of-core scale ledger — disk-resident random-order streams",
		Claim: "single pass, peak words O(n log n) (Lemma 3.15), certified ratio > 1/2 at any scale",
		Header: []string{
			"n", "m", "ns/edge", "passes", "peak words", "n·ln n", "peak/nlnn", "cert. ratio",
		},
	}
	type scaleCfg struct{ n, m int }
	rows := []scaleCfg{{10_000, 100_000}, {100_000, 1_000_000}}
	if cfg.Quick {
		rows = []scaleCfg{{1_000, 10_000}}
	}
	if dir, err := os.MkdirTemp("", "e20-"); err == nil {
		defer os.RemoveAll(dir)
		for _, rc := range rows {
			st, err := RunStreamScaleRow(dir, rc.n, rc.m, 1<<20, cfg.Seed)
			if err != nil {
				scale.Rows = append(scale.Rows, []string{fi(rc.n), fi(rc.m), "error: " + err.Error()})
				continue
			}
			nlnn := float64(rc.n) * math.Log(float64(rc.n))
			scale.Rows = append(scale.Rows, []string{
				fi(rc.n), fi(st.Edges), f1(st.PerArrivalNS), fi(st.Passes),
				fi(st.PeakWords), f1(nlnn), f3(float64(st.PeakWords) / nlnn),
				f3(st.CertifiedRatio()),
			})
		}
	}

	ab := Table{
		ID:    "E20",
		Title: "per-arrival hot path — arena forms vs retained naive forms (same-run)",
		Claim: "flat class table + arena slices beat the map-backed path; outputs bit-identical (Invariant 27)",
		Header: []string{
			"n", "m", "ns/arrival arena", "ns/arrival naive", "speedup", "identical",
		},
	}
	abSizes := []scaleCfg{{2_000, 16_000}, {5_000, 40_000}}
	reps := 6
	if cfg.Quick {
		abSizes = []scaleCfg{{500, 4_000}}
		reps = 2
	}
	for _, rc := range abSizes {
		genRng := rand.New(rand.NewSource(cfg.Seed))
		inst := graph.PlantedMatching(rc.n, rc.m-rc.n/2, 1000, 2000, genRng)
		order := stream.RandomOrder(inst.G, genRng)
		edges := order.Edges()
		identical := true
		var times [2]float64
		for k, naive := range []bool{false, true} {
			arena := &randarrival.Arena{}
			var elapsed time.Duration
			var weight graph.Weight
			for rep := 0; rep < reps; rep++ {
				s := stream.FromEdges(edges)
				opts := randarrival.WeightedOptions{
					Rng:   rand.New(rand.NewSource(cfg.Seed + int64(rep))),
					Naive: naive,
				}
				if !naive {
					opts.Arena = arena
				}
				start := time.Now()
				res := randarrival.RandArrMatching(rc.n, s, opts)
				elapsed += time.Since(start)
				weight = res.M.Weight()
				if k == 1 && rep == reps-1 {
					// Re-run the arena form on the final rep's rng stream to
					// compare outputs directly.
					again := randarrival.RandArrMatching(rc.n, stream.FromEdges(edges), randarrival.WeightedOptions{
						Rng: rand.New(rand.NewSource(cfg.Seed + int64(rep))),
					})
					identical = identical && again.M.Weight() == weight
				}
			}
			times[k] = float64(elapsed.Nanoseconds()) / float64(reps*len(edges))
		}
		ab.Rows = append(ab.Rows, []string{
			fi(rc.n), fi(len(edges)), f1(times[0]), f1(times[1]),
			fmt.Sprintf("%.2fx", times[1]/times[0]),
			fmt.Sprintf("%v", identical),
		})
	}

	quality := Table{
		ID:    "E20",
		Title: "quality ledger — realised ratio vs exact optimum, random vs adversarial order",
		Claim: "random arrival sustains > 1/2 on known-optimum families; adversarial order is the contrast column",
		Header: []string{
			"family", "n", "m", "ratio random", "ratio adversarial",
		},
	}
	for _, row := range QualityLedger(cfg.Seed, cfg.Trials, cfg.Quick) {
		quality.Rows = append(quality.Rows, []string{
			row.Family, fi(row.N), fi(row.M), f3(row.RatioRandom), f3(row.RatioAdversarial),
		})
	}

	return []Table{scale, ab, quality}
}

// QualityRow is one family of the E20 quality ledger.
type QualityRow struct {
	Family           string
	N, M             int
	RatioRandom      float64
	RatioAdversarial float64
}

// QualityLedger measures Rand-Arr-Matching's realised approximation ratio
// against the exact optimum on the known-optimum families, under random
// and adversarial (insertion) arrival order, averaged over trials. The
// pinned-ratio regression test asserts these stay inside declared bounds
// on fixed seeds; the E20 table renders the same numbers.
func QualityLedger(seed int64, trials int, quick bool) []QualityRow {
	if trials <= 0 {
		trials = 5
	}
	rng := rand.New(rand.NewSource(seed))
	type family struct {
		name string
		inst graph.Instance
	}
	n := 600
	if quick {
		n = 200
	}
	families := []family{
		{"planted", graph.PlantedMatching(n, 4*n, 1000, 2000, rng)},
		{"chain", graph.AugmentingChain(n/4, 50, 51, rng)},
		{"cycle", graph.WeightedCycle(n/2, 75, 100)},
	}
	out := make([]QualityRow, 0, len(families))
	for _, f := range families {
		row := QualityRow{Family: f.name, N: f.inst.G.N(), M: len(f.inst.G.Edges())}
		var randSum, advSum float64
		for trial := 0; trial < trials; trial++ {
			trialRng := rand.New(rand.NewSource(seed + int64(trial)))
			res := randarrival.RandArrMatching(f.inst.G.N(), stream.RandomOrder(f.inst.G, trialRng),
				randarrival.WeightedOptions{Rng: trialRng})
			randSum += matchutil.Ratio(res.M, f.inst.OptWeight)
			adv := randarrival.RandArrMatching(f.inst.G.N(), stream.FromGraph(f.inst.G),
				randarrival.WeightedOptions{Rng: trialRng})
			advSum += matchutil.Ratio(adv.M, f.inst.OptWeight)
		}
		row.RatioRandom = randSum / float64(trials)
		row.RatioAdversarial = advSum / float64(trials)
		out = append(out, row)
	}
	return out
}
