package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/graph"
)

// E12Convergence records the per-round convergence curve of the Theorem 1.2
// driver: the expected-gain argument of Theorem 4.8 implies geometric
// convergence toward the optimum (each round closes a constant expected
// fraction of the remaining gap while the matching is not (1−ε)-optimal).
func E12Convergence(cfg Config) []Table {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := 120
	if cfg.Quick {
		n = 50
	}
	inst := graph.PlantedMatching(n, 5*n, 100, 200, rng)

	t := Table{
		ID:     "E12",
		Title:  "Theorem 4.8 — per-round convergence of the reduction",
		Claim:  "each round closes a constant expected fraction of the remaining gap",
		Header: []string{"round", "weight", "ratio", "remaining gap"},
	}
	var curve []graph.Weight
	res, err := core.Solve(inst.G, nil, core.Options{
		Rng:       rng,
		MaxRounds: 12,
		Patience:  12,
		Amortize:  cfg.Amortize,
		Trace: func(round int, w graph.Weight) {
			curve = append(curve, w)
		},
	})
	if err != nil {
		return []Table{t}
	}
	for round, w := range curve {
		gap := inst.OptWeight - w
		t.Rows = append(t.Rows, []string{
			fi(round + 1),
			fi64(int64(w)),
			f3(float64(w) / float64(inst.OptWeight)),
			fi64(int64(gap)),
		})
	}

	// The amortised-pipeline ledger: how much of the round work the
	// cross-round machinery absorbed. On the naive path the probe, cache,
	// delta, and repair columns are structurally zero; the builds and
	// solver-call columns are directly comparable between the two
	// configurations (bit-identical matchings, see internal/solvertest).
	// The columns come from core.Stats itself (Stats.Fields), so a counter
	// added by a future PR appears here without anyone remembering to add
	// it — TestE12bCountersComplete pins the correspondence.
	counters := Table{
		ID:     "E12b",
		Title:  "amortised-pipeline counters over the E12 run",
		Claim:  "probe-guided enumeration prunes most pairs before generation; matchings stay bit-identical",
		Header: []string{"amortize"},
	}
	row := []string{fmt.Sprintf("%v", cfg.Amortize)}
	for _, f := range res.Stats.Fields() {
		counters.Header = append(counters.Header, f.Name)
		row = append(row, fmt.Sprintf("%d", f.Value))
	}
	counters.Header = append(counters.Header, "final weight")
	row = append(row, fi64(int64(res.M.Weight())))
	counters.Rows = append(counters.Rows, row)
	return []Table{t, counters}
}
