package core

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
)

// TestCountingSourceReplay pins the property the whole Rng-persistence
// story rests on: math/rand's seeded source advances exactly one internal
// step per Int63 or Uint64 call, so a replay that burns the recorded draw
// count with Uint64 alone lands in the identical state no matter which mix
// of calls produced the count.
func TestCountingSourceReplay(t *testing.T) {
	const seed = 42
	cs := NewCountingSource(seed)
	rng := rand.New(cs)
	// A deliberately mixed draw history, as the driver produces (Intn for
	// bipartitions, Int63 for factory seeds, Float64 internally).
	for i := 0; i < 57; i++ {
		switch i % 4 {
		case 0:
			rng.Int63()
		case 1:
			rng.Intn(97)
		case 2:
			rng.Uint64()
		default:
			rng.Float64()
		}
	}
	draws := cs.Draws()
	if draws == 0 {
		t.Fatal("no draws counted")
	}
	replay := rand.New(ReplayCountingSource(seed, draws))
	for i := 0; i < 32; i++ {
		if a, b := rng.Int63(), replay.Int63(); a != b {
			t.Fatalf("draw %d after replay: %d vs %d", i, a, b)
		}
	}
}

// TestCountingSourceTransparent: wrapping the source must not change the
// stream — a checkpointed run and a plain run share every random decision.
func TestCountingSourceTransparent(t *testing.T) {
	a := rand.New(NewCountingSource(7))
	b := rand.New(rand.NewSource(7))
	for i := 0; i < 64; i++ {
		if x, y := a.Int63(), b.Int63(); x != y {
			t.Fatalf("draw %d: counting %d vs plain %d", i, x, y)
		}
	}
}

func snapshotTestInstance(t *testing.T) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(1234))
	return graph.RandomGraph(60, 200, 64, rng).G
}

func snapshotTestOptions() Options {
	return Options{Amortize: true, MaxRounds: 12, Patience: 4}
}

func TestCheckpointRoundTrip(t *testing.T) {
	g := snapshotTestInstance(t)
	m := graph.NewMatching(g.N())
	if err := m.Add(g.Edges()[0]); err != nil {
		t.Fatal(err)
	}
	cp := &Checkpoint{
		Graph: g, M: m,
		Round: 5, Stalled: 2,
		Stats:   Stats{Rounds: 5, SolverCalls: 321, FallbackSolves: 2, Gain: 777},
		RngSeed: -9, RngDraws: 12345,
		Meta: metaOf(snapshotTestOptions()),
	}
	dec, err := DecodeCheckpoint(EncodeCheckpoint(cp))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if dec.Round != cp.Round || dec.Stalled != cp.Stalled ||
		dec.RngSeed != cp.RngSeed || dec.RngDraws != cp.RngDraws {
		t.Fatalf("driver state %+v, want %+v", dec, cp)
	}
	if dec.Stats != cp.Stats {
		t.Fatalf("stats %+v, want %+v", dec.Stats, cp.Stats)
	}
	if dec.Meta != cp.Meta {
		t.Fatalf("meta %+v, want %+v", dec.Meta, cp.Meta)
	}
	if dec.Graph.N() != g.N() || dec.Graph.M() != g.M() {
		t.Fatalf("graph %d/%d, want %d/%d", dec.Graph.N(), dec.Graph.M(), g.N(), g.M())
	}
	if !equalMatchings(dec.M, m) {
		t.Fatal("matching changed across the round trip")
	}
}

func equalMatchings(a, b *graph.Matching) bool {
	if a.N() != b.N() || a.Size() != b.Size() || a.Weight() != b.Weight() {
		return false
	}
	for v := 0; v < a.N(); v++ {
		if a.Mate(v) != b.Mate(v) || a.EdgeWeightAt(v) != b.EdgeWeightAt(v) {
			return false
		}
	}
	return true
}

// TestSolveCheckpointedMatchesSolve: threading the Rng through the counting
// source and saving checkpoints is free of behaviour change — matching and
// stats equal a plain Solve on the same seed.
func TestSolveCheckpointedMatchesSolve(t *testing.T) {
	g := snapshotTestInstance(t)
	const seed = 5
	opts := snapshotTestOptions()

	plain := opts
	plain.Rng = rand.New(rand.NewSource(seed))
	want, err := Solve(g, nil, plain)
	if err != nil {
		t.Fatal(err)
	}

	saves := 0
	got, err := SolveCheckpointed(g, nil, opts, seed, func(cp *Checkpoint) error {
		saves++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if saves == 0 {
		t.Fatal("save callback never ran")
	}
	if !equalMatchings(got.M, want.M) {
		t.Fatalf("checkpointed matching differs: weight %d vs %d", got.M.Weight(), want.M.Weight())
	}
	if got.Stats != want.Stats {
		t.Fatalf("checkpointed stats differ:\n got %+v\nwant %+v", got.Stats, want.Stats)
	}
}

// TestKillResumeBitIdentical is the headline snapshot property: kill a
// Solve after any round, decode the bytes it last persisted, resume in a
// "new process", and the final matching and stats are bit-identical to the
// uninterrupted run — warm in the sense that completed rounds are not
// re-run (the resumed stats count each round exactly once). The one
// carve-out is the chain-effort counters (see chainEffortNormalized): the
// cross-round delta/repair baselines live in RAM arenas a checkpoint cannot
// carry, so a resumed run restarts each class chain and may count fewer —
// never more — chained builds while producing the identical matching.
func TestKillResumeBitIdentical(t *testing.T) {
	g := snapshotTestInstance(t)
	const seed = 11
	opts := snapshotTestOptions()

	full, err := SolveCheckpointed(g, nil, opts, seed, func(*Checkpoint) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if full.Stats.Rounds < 3 {
		t.Fatalf("test instance converged in %d rounds; need 3+ for a mid-run kill", full.Stats.Rounds)
	}

	for _, killAfter := range []int{1, 2, full.Stats.Rounds - 1} {
		var persisted []byte
		_, err := SolveCheckpointed(g, nil, opts, seed, func(cp *Checkpoint) error {
			if cp.Round <= killAfter {
				persisted = EncodeCheckpoint(cp)
			}
			if cp.Round == killAfter {
				return errors.New("killed")
			}
			return nil
		})
		if err == nil {
			t.Fatalf("killAfter=%d: run was not killed", killAfter)
		}

		cp, err := DecodeCheckpoint(persisted)
		if err != nil {
			t.Fatalf("killAfter=%d: decode: %v", killAfter, err)
		}
		resumed, err := ResumeSolve(cp, opts, nil)
		if err != nil {
			t.Fatalf("killAfter=%d: resume: %v", killAfter, err)
		}
		if !equalMatchings(resumed.M, full.M) {
			t.Fatalf("killAfter=%d: resumed matching differs: weight %d vs %d",
				killAfter, resumed.M.Weight(), full.M.Weight())
		}
		if chainEffortNormalized(resumed.Stats) != chainEffortNormalized(full.Stats) {
			t.Fatalf("killAfter=%d: resumed stats differ:\n got %+v\nwant %+v",
				killAfter, resumed.Stats, full.Stats)
		}
		// Losing the in-memory chain can only cost reuse, never invent it.
		if resumed.Stats.DeltaBuilds > full.Stats.DeltaBuilds ||
			resumed.Stats.CrossRoundDeltaBuilds > full.Stats.CrossRoundDeltaBuilds ||
			resumed.Stats.RepairSolves > full.Stats.RepairSolves {
			t.Fatalf("killAfter=%d: resumed run chained MORE than the uninterrupted one:\n got %+v\nwant %+v",
				killAfter, resumed.Stats, full.Stats)
		}
	}
}

// chainEffortNormalized zeroes the amortisation-effort counters that depend
// on retained in-memory arenas (the delta and repair chains, PR 7's
// cross-round baselines included): a resumed run restarts every class chain
// at the checkpoint boundary, so these may fall short of the uninterrupted
// run's while all result-bearing fields stay bit-identical.
func chainEffortNormalized(s Stats) Stats {
	s.DeltaBuilds = 0
	s.DeltaLayersReused = 0
	s.RepairSolves = 0
	s.RepairEdgesKept = 0
	s.CrossRoundDeltaBuilds = 0
	s.CrossRoundRepairs = 0
	return s
}

// TestResumeRejectsForeignOptions: a checkpoint only resumes under the
// configuration it was taken with (Workers excepted — results are
// worker-count invariant, so the pool may be rescaled).
func TestResumeRejectsForeignOptions(t *testing.T) {
	g := snapshotTestInstance(t)
	opts := snapshotTestOptions()
	var persisted []byte
	_, err := SolveCheckpointed(g, nil, opts, 3, func(cp *Checkpoint) error {
		persisted = EncodeCheckpoint(cp)
		return errors.New("stop after first round")
	})
	if err == nil {
		t.Fatal("run was not stopped")
	}
	cp, err := DecodeCheckpoint(persisted)
	if err != nil {
		t.Fatal(err)
	}

	foreign := opts
	foreign.ClassBase = 3
	if _, err := ResumeSolve(cp, foreign, nil); !errors.Is(err, ErrCheckpointOptions) {
		t.Fatalf("foreign options: err = %v, want ErrCheckpointOptions", err)
	}

	rescaled := opts
	rescaled.Workers = 4
	if _, err := ResumeSolve(cp, rescaled, nil); err != nil {
		t.Fatalf("rescaled workers: %v", err)
	}
}

// TestCorruptCheckpointRejected: any single flipped byte in a persisted
// checkpoint is caught (the container checksum), so a damaged snapshot can
// only ever degrade a restart to cold — never resume into wrong state.
func TestCorruptCheckpointRejected(t *testing.T) {
	g := snapshotTestInstance(t)
	opts := snapshotTestOptions()
	var persisted []byte
	SolveCheckpointed(g, nil, opts, 3, func(cp *Checkpoint) error {
		persisted = EncodeCheckpoint(cp)
		return errors.New("stop")
	})
	if persisted == nil {
		t.Fatal("no checkpoint persisted")
	}
	step := len(persisted)/97 + 1
	for i := 0; i < len(persisted); i += step {
		mut := append([]byte(nil), persisted...)
		mut[i] ^= 0x20
		if _, err := DecodeCheckpoint(mut); err == nil {
			t.Fatalf("flip at byte %d/%d decoded cleanly", i, len(persisted))
		}
	}
}

// TestSaveLoadCheckpointFile covers the file wrappers, including the
// atomic-replace path and load-time verification.
func TestSaveLoadCheckpointFile(t *testing.T) {
	g := snapshotTestInstance(t)
	path := filepath.Join(t.TempDir(), "solve.snap")
	cp := &Checkpoint{
		Graph: g, M: graph.NewMatching(g.N()),
		Round: 1, RngSeed: 2, RngDraws: 3,
		Meta: metaOf(snapshotTestOptions()),
	}
	if err := SaveCheckpoint(path, cp); err != nil {
		t.Fatal(err)
	}
	if err := SaveCheckpoint(path, cp); err != nil { // overwrite via rename
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Round != 1 || got.RngSeed != 2 || got.RngDraws != 3 {
		t.Fatalf("loaded %+v", got)
	}

	data, _ := os.ReadFile(path)
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); err == nil {
		t.Fatal("truncated file loaded cleanly")
	}
}
