package core

import (
	"math/rand"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/graph"
	"repro/internal/layered"
)

func sameMatching(t *testing.T, label string, a, b *graph.Matching) {
	t.Helper()
	ae, be := a.Edges(), b.Edges()
	if len(ae) != len(be) {
		t.Fatalf("%s: %d edges vs %d", label, len(ae), len(be))
	}
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("%s: edge %d differs: %v vs %v", label, i, ae[i], be[i])
		}
	}
}

// TestParallelRoundDeterministic is the acceptance property of the parallel
// class sweep: for a fixed Options.Rng seed, Round with any worker count
// produces bit-for-bit the matching, gain, and stats of the sequential
// sweep, across several consecutive rounds.
func TestParallelRoundDeterministic(t *testing.T) {
	inst := graph.PlantedMatching(80, 400, 100, 200, rand.New(rand.NewSource(3)))
	for _, workers := range []int{2, 4, 7} {
		seqRng := rand.New(rand.NewSource(21))
		parRng := rand.New(rand.NewSource(21))
		mSeq := graph.NewMatching(inst.G.N())
		mPar := graph.NewMatching(inst.G.N())
		var statsSeq, statsPar Stats
		for round := 0; round < 5; round++ {
			gainSeq, err := Round(inst.G, mSeq, Options{Rng: seqRng}, &statsSeq)
			if err != nil {
				t.Fatal(err)
			}
			gainPar, err := Round(inst.G, mPar, Options{Rng: parRng, Workers: workers}, &statsPar)
			if err != nil {
				t.Fatal(err)
			}
			if gainSeq != gainPar {
				t.Fatalf("workers=%d round %d: gain %d vs sequential %d", workers, round, gainPar, gainSeq)
			}
			sameMatching(t, "after round", mSeq, mPar)
		}
		if statsSeq != statsPar {
			t.Fatalf("workers=%d: stats %+v vs sequential %+v", workers, statsPar, statsSeq)
		}
	}
}

// TestParallelRoundDeterministicWithFactory exercises the per-class Rng
// split: a factory-built solver whose behaviour depends on its class Rng
// must still make the parallel sweep reproduce the sequential one exactly,
// because seeds are drawn up-front in class order.
func TestParallelRoundDeterministicWithFactory(t *testing.T) {
	inst := graph.PlantedMatching(60, 300, 100, 200, rand.New(rand.NewSource(4)))
	factory := func(rng *rand.Rand) Solver {
		return func(b *bipartite.Bip) (*graph.Matching, error) {
			// Class-seeded randomness decides the oracle quality, so any
			// scheduling dependence would surface as a different matching.
			if rng.Intn(2) == 0 {
				return bipartite.HopcroftKarp(b).M, nil
			}
			return bipartite.Approx(b, 0.5).M, nil
		}
	}
	seqRng := rand.New(rand.NewSource(33))
	parRng := rand.New(rand.NewSource(33))
	mSeq := graph.NewMatching(inst.G.N())
	mPar := graph.NewMatching(inst.G.N())
	var statsSeq, statsPar Stats
	for round := 0; round < 4; round++ {
		if _, err := Round(inst.G, mSeq, Options{Rng: seqRng, SolverFactory: factory}, &statsSeq); err != nil {
			t.Fatal(err)
		}
		if _, err := Round(inst.G, mPar, Options{Rng: parRng, SolverFactory: factory, Workers: 5}, &statsPar); err != nil {
			t.Fatal(err)
		}
		sameMatching(t, "factory round", mSeq, mPar)
	}
	if statsSeq != statsPar {
		t.Fatalf("stats %+v vs sequential %+v", statsPar, statsSeq)
	}
}

// TestSolveParallelMatchesSequential runs the full driver at several worker
// counts and checks the end matching is identical to the sequential run.
func TestSolveParallelMatchesSequential(t *testing.T) {
	inst := graph.PlantedMatching(50, 250, 100, 200, rand.New(rand.NewSource(6)))
	ref, err := Solve(inst.G, nil, Options{Rng: rand.New(rand.NewSource(9)), MaxRounds: 10, Patience: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{3, 8} {
		res, err := Solve(inst.G, nil, Options{
			Rng: rand.New(rand.NewSource(9)), MaxRounds: 10, Patience: 10, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		sameMatching(t, "solve", ref.M, res.M)
		if res.Stats != ref.Stats {
			t.Fatalf("workers=%d: stats %+v vs sequential %+v", workers, res.Stats, ref.Stats)
		}
	}
}

// TestParallelRoundColdCache runs the parallel sweep at a granularity no
// other test uses, so the workers race to insert fresh entries into the
// global τ-pair memo — under -race this covers the cache's synchronisation
// (a sequential warm-up round would mask it by pre-populating the cache).
func TestParallelRoundColdCache(t *testing.T) {
	inst := graph.PlantedMatching(60, 300, 100, 200, rand.New(rand.NewSource(5)))
	m := graph.NewMatching(inst.G.N())
	var stats Stats
	opts := Options{
		Rng:     rand.New(rand.NewSource(11)),
		Workers: 8,
		Layered: layered.Params{Granularity: 0.1},
	}
	if _, err := Round(inst.G, m, opts, &stats); err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestCustomSolverForcesSequential documents the safety rule: a bare Solver
// closure (no factory) disables the pool, so stateful driver closures (the
// streaming and MPC drivers accumulate pass/round counts) stay data-race
// free even when Workers is set.
func TestCustomSolverForcesSequential(t *testing.T) {
	inst := graph.PlantedMatching(30, 120, 50, 100, rand.New(rand.NewSource(7)))
	calls := 0 // mutated without synchronisation: the sweep must be sequential
	solver := func(b *bipartite.Bip) (*graph.Matching, error) {
		calls++
		return bipartite.HopcroftKarp(b).M, nil
	}
	m := graph.NewMatching(inst.G.N())
	var stats Stats
	if _, err := Round(inst.G, m, Options{Rng: rand.New(rand.NewSource(8)), Solver: solver, Workers: 8}, &stats); err != nil {
		t.Fatal(err)
	}
	if calls != stats.SolverCalls {
		t.Fatalf("solver closure saw %d calls, stats recorded %d", calls, stats.SolverCalls)
	}
}
