package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/matchutil"
)

func TestSolveStreamingQualityAndPasses(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	inst := graph.PlantedMatching(50, 250, 100, 200, rng)
	res, err := SolveStreaming(inst.G, nil, StreamingOptions{
		Core:  Options{Rng: rng, MaxRounds: 25, Patience: 4},
		Delta: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.M.Validate(); err != nil {
		t.Fatal(err)
	}
	if ratio := matchutil.Ratio(res.M, inst.OptWeight); ratio < 0.85 {
		t.Errorf("streaming ratio = %.4f", ratio)
	}
	if res.TotalPasses == 0 || res.MaxRoundPasses == 0 {
		t.Error("pass accounting missing")
	}
	if res.SubroutinePasses > res.MaxRoundPasses {
		t.Error("subroutine passes exceed round passes")
	}
}

func TestSolveStreamingPassesIndependentOfN(t *testing.T) {
	// Theorem 1.2(2) shape: the per-round pass cost is O_ε(U_S), a
	// constant in n. Compare two sizes.
	var maxRound []int
	for i, n := range []int{40, 120} {
		rng := rand.New(rand.NewSource(int64(10 + i)))
		inst := graph.PlantedMatching(n, 4*n, 100, 200, rng)
		res, err := SolveStreaming(inst.G, nil, StreamingOptions{
			Core:  Options{Rng: rng, MaxRounds: 10, Patience: 3},
			Delta: 0.25,
		})
		if err != nil {
			t.Fatal(err)
		}
		maxRound = append(maxRound, res.MaxRoundPasses)
	}
	if maxRound[1] > 3*maxRound[0]+5 {
		t.Errorf("per-round passes grew with n: %v", maxRound)
	}
}

func TestSolveMPCQualityAndRounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	inst := graph.PlantedMatching(50, 250, 100, 200, rng)
	res, err := SolveMPC(inst.G, nil, MPCOptions{
		Core:  Options{Rng: rng, MaxRounds: 25, Patience: 4},
		Delta: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.M.Validate(); err != nil {
		t.Fatal(err)
	}
	if ratio := matchutil.Ratio(res.M, inst.OptWeight); ratio < 0.85 {
		t.Errorf("MPC ratio = %.4f", ratio)
	}
	if res.TotalRounds == 0 || res.SubroutineRounds == 0 {
		t.Error("round accounting missing")
	}
	if res.PeakLoad == 0 {
		t.Error("no memory loads recorded")
	}
}

func TestSolveMPCRespectsTinyMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	inst := graph.PlantedMatching(40, 400, 100, 200, rng)
	_, err := SolveMPC(inst.G, nil, MPCOptions{
		Core:          Options{Rng: rng, MaxRounds: 3},
		MemPerMachine: 3, // absurd: must trip the accountant
		Machines:      2,
	})
	if err == nil {
		t.Error("tiny per-machine memory accepted")
	}
}

func TestDriversMatchOfflineQuality(t *testing.T) {
	// The model drivers use approximate subroutines; their output should
	// land near the offline exact-subroutine reduction on the same
	// instance.
	rng := rand.New(rand.NewSource(4))
	inst := graph.PlantedMatching(40, 160, 100, 150, rng)

	off, err := Solve(inst.G, nil, Options{Rng: rand.New(rand.NewSource(5))})
	if err != nil {
		t.Fatal(err)
	}
	st, err := SolveStreaming(inst.G, nil, StreamingOptions{
		Core: Options{Rng: rand.New(rand.NewSource(5))},
	})
	if err != nil {
		t.Fatal(err)
	}
	mp, err := SolveMPC(inst.G, nil, MPCOptions{
		Core: Options{Rng: rand.New(rand.NewSource(5))},
	})
	if err != nil {
		t.Fatal(err)
	}
	offR := matchutil.Ratio(off.M, inst.OptWeight)
	stR := matchutil.Ratio(st.M, inst.OptWeight)
	mpR := matchutil.Ratio(mp.M, inst.OptWeight)
	if stR < offR-0.1 {
		t.Errorf("streaming ratio %.4f far below offline %.4f", stR, offR)
	}
	if mpR < offR-0.1 {
		t.Errorf("MPC ratio %.4f far below offline %.4f", mpR, offR)
	}
}
