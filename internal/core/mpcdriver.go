package core

import (
	"math/rand"

	"repro/internal/bipartite"
	"repro/internal/graph"
	"repro/internal/mpc"
)

// MPCOptions configures SolveMPC, the Theorem 1.2(1) driver.
type MPCOptions struct {
	// Core carries the reduction parameters; its Solver field is ignored.
	Core Options
	// Delta is the (1−δ) target handed to the unweighted MPC subroutine.
	// Default 0.2.
	Delta float64
	// Machines per subroutine instance; 0 means the paper's O(m/n) of the
	// instance's layered graph.
	Machines int
	// MemPerMachine in words; 0 derives a near-linear default from the
	// instance size.
	MemPerMachine int
}

// MPCResult reports the matching with the round accounting of the MPC model.
type MPCResult struct {
	M     *graph.Matching
	Stats Stats
	// TotalRounds sums, over reduction rounds, one distribution round plus
	// the maximum subroutine round count (instances run in parallel on
	// disjoint machine groups, as in the paper).
	TotalRounds int
	// MaxRoundRounds is the largest per-reduction-round cost.
	MaxRoundRounds int
	// SubroutineRounds is the maximum MPC round count of any single
	// Unw-Bip-Matching instance (the U_M of the theorem).
	SubroutineRounds int
	// PeakLoad is the largest per-machine memory load observed (words).
	PeakLoad int
}

// SolveMPC runs the reduction in the simulated MPC model: every (W, τ-pair)
// instance solves its layered graph with the round-counted MPC bipartite
// matcher, rounds are charged as the per-reduction-round maximum across
// instances (they run on disjoint machines in parallel), and per-machine
// memory loads are validated by the simulator.
func SolveMPC(g *graph.Graph, initial *graph.Matching, opts MPCOptions) (MPCResult, error) {
	if opts.Delta <= 0 || opts.Delta > 1 {
		opts.Delta = 0.2
	}
	res := MPCResult{}
	roundRounds := 0
	rng := opts.Core.Rng
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}

	coreOpts := opts.Core
	coreOpts.Rng = rng
	coreOpts.Solver = func(b *bipartite.Bip) (*graph.Matching, error) {
		machines := opts.Machines
		if machines <= 0 {
			machines = mpc.MachinesFor(len(b.Edges), b.N)
		}
		mem := opts.MemPerMachine
		if mem <= 0 {
			// Near-linear default: partition share plus O(n) state plus
			// the coordinator's merge buffer.
			mem = 2*len(b.Edges)/machines + (machines+2)*b.N + 16
		}
		mr, err := bipartite.MPC(b, opts.Delta, machines, mem, rng)
		if err != nil {
			return nil, err
		}
		if r := mr.Sim.Rounds(); r > roundRounds {
			roundRounds = r
		}
		if r := mr.Sim.Rounds(); r > res.SubroutineRounds {
			res.SubroutineRounds = r
		}
		if p := mr.Sim.PeakLoad(); p > res.PeakLoad {
			res.PeakLoad = p
		}
		return mr.M, nil
	}
	coreOpts = coreOpts.withDefaults()

	m := graph.NewMatching(g.N())
	if initial != nil {
		m = initial.Clone()
	}
	maxRounds, patience := effectiveBudget(g.N(), coreOpts)
	stalled := 0
	for r := 0; r < maxRounds && stalled < patience; r++ {
		roundRounds = 0
		gain, err := Round(g, m, coreOpts, &res.Stats)
		if err != nil {
			return res, err
		}
		// One round distributes the bipartition and bucket index; the
		// instances then run in parallel.
		res.TotalRounds += 1 + roundRounds
		if 1+roundRounds > res.MaxRoundRounds {
			res.MaxRoundRounds = 1 + roundRounds
		}
		if gain == 0 {
			stalled++
		} else {
			stalled = 0
		}
	}
	res.M = m
	return res, nil
}
