package core

import (
	"repro/internal/bipartite"
	"repro/internal/graph"
	"repro/internal/stream"
)

// StreamingOptions configures SolveStreaming, the Theorem 1.2(2) driver.
type StreamingOptions struct {
	// Core carries the reduction parameters; its Solver field is ignored
	// (the streaming bipartite solver is installed).
	Core Options
	// Delta is the (1−δ) target handed to the unweighted streaming
	// subroutine. Default 0.2.
	Delta float64
	// Account, when non-nil, is the resource-accounting authority handed to
	// every subroutine instance; each instance's holds are balanced at its
	// exit so Peak meters the largest single instance.
	Account *stream.Accountant
}

// StreamingResult reports the matching with the pass accounting of the
// multi-pass streaming model.
type StreamingResult struct {
	M     *graph.Matching
	Stats Stats
	// TotalPasses is the number of passes over the input stream: per
	// reduction round, all (W, τ-pair) subroutine instances run in
	// parallel on the same passes (as in the paper), so a round costs one
	// bucketing pass plus the maximum pass count over its instances.
	TotalPasses int
	// MaxRoundPasses is the most passes any single round needed; the
	// O_ε(U_S) claim of Theorem 1.2(2) is about this quantity.
	MaxRoundPasses int
	// SubroutinePasses is the maximum pass count of any single
	// Unw-Bip-Matching instance (the U_S of the theorem).
	SubroutinePasses int
	// PeakStored is the peak word count held by any subroutine instance.
	PeakStored int
}

// SolveStreaming runs the reduction in the multi-pass semi-streaming model:
// the unweighted subroutine is the layer-growing streaming matcher of
// internal/bipartite, every instance's stream is the τ-filtered projection
// of the input stream (consumed in parallel across instances, so passes are
// counted as the per-round maximum), and rounds repeat until the gain
// stalls, as in Solve.
func SolveStreaming(g *graph.Graph, initial *graph.Matching, opts StreamingOptions) (StreamingResult, error) {
	if opts.Delta <= 0 || opts.Delta > 1 {
		opts.Delta = 0.2
	}
	res := StreamingResult{}
	roundPasses := 0

	coreOpts := opts.Core
	scratch := &bipartite.StreamScratch{}
	coreOpts.Solver = func(b *bipartite.Bip) (*graph.Matching, error) {
		// In the model, this instance reads the global stream and keeps
		// only its layered edges; the SliceStream below is that filtered
		// view, and its pass count is the instance's pass count over the
		// global stream. Instances share one scratch arena (they run
		// sequentially here even though the model charges them as parallel).
		s := stream.FromEdges(b.Edges)
		sr := bipartite.StreamingOpts(b.N, b.Side, s, opts.Delta, bipartite.StreamOptions{
			Account: opts.Account,
			Scratch: scratch,
		})
		if sr.Passes > roundPasses {
			roundPasses = sr.Passes
		}
		if sr.Passes > res.SubroutinePasses {
			res.SubroutinePasses = sr.Passes
		}
		if sr.PeakStored > res.PeakStored {
			res.PeakStored = sr.PeakStored
		}
		return sr.M, nil
	}
	coreOpts = coreOpts.withDefaults()

	m := graph.NewMatching(g.N())
	if initial != nil {
		m = initial.Clone()
	}
	maxRounds, patience := effectiveBudget(g.N(), coreOpts)
	stalled := 0
	for r := 0; r < maxRounds && stalled < patience; r++ {
		roundPasses = 0
		gain, err := Round(g, m, coreOpts, &res.Stats)
		if err != nil {
			return res, err
		}
		// One pass buckets edge weights for the viability index and feeds
		// the parametrization; the instances then share roundPasses passes.
		res.TotalPasses += 1 + roundPasses
		if 1+roundPasses > res.MaxRoundPasses {
			res.MaxRoundPasses = 1 + roundPasses
		}
		if gain == 0 {
			stalled++
		} else {
			stalled = 0
		}
	}
	res.M = m
	return res, nil
}
