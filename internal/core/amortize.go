package core

// This file holds the amortised cross-round machinery a Runner threads
// through Algorithm 3 when Options.Amortize or Options.WarmStart is set.
// Each piece keeps its naive twin alive as the differential oracle: the
// incremental index against the per-(round, class) BucketIndex rebuild, the
// cross-class cache against an uncached sweep, and the warm-started solver
// against a cold Hopcroft–Karp — see internal/solvertest and the core
// differential tests for the equivalences each pair is held to.

import (
	"runtime/debug"
	"sync"

	"repro/internal/bipartite"
	"repro/internal/faultinject"
	"repro/internal/graph"
	"repro/internal/layered"
)

// candidate is one projected augmentation with its gain, the unit the
// per-class conflict resolution and the cross-class cache both handle.
type candidate struct {
	aug  graph.Augmentation
	gain graph.Weight
}

// amortizer is the cross-round state of an amortised run: the incremental
// viability index and the per-round cross-class solve cache.
type amortizer struct {
	weights []float64
	inc     *layered.IncIndex
	cache   *pairCache
	ctxs    []amortClassCtx
}

func newAmortizer(g *graph.Graph, opts Options) *amortizer {
	weights := ClassWeights(g, opts.ClassBase, opts.Layered)
	am := &amortizer{
		weights: weights,
		inc:     layered.NewIncIndex(g.N(), g.Edges(), weights, opts.Layered),
	}
	// The cache replays a pair's candidates without consulting the solver,
	// which is only sound when the solver is the stateless deterministic
	// default: a caller-installed Solver may count passes or draw
	// randomness, and a warm-started solver depends on the seed history the
	// cache key does not cover.
	if !opts.customSolver() && !opts.WarmStart {
		am.cache = &pairCache{m: make(map[string]cacheEntry)}
	}
	am.ctxs = make([]amortClassCtx, len(weights))
	for i := range am.ctxs {
		am.ctxs[i] = amortClassCtx{
			view:  am.inc.View(i),
			cache: am.cache,
			enum:  layered.NewPairScratch(),
		}
		// Cross-round warm state only for the seedable default solver (the
		// same gate newClassWorker applies on the naive path).
		if opts.WarmStart && !opts.customSolver() {
			am.ctxs[i].warm = newWarmState(bipartite.NewScratch())
		}
	}
	return am
}

// beginRound syncs the index to the round's parametrization and drops the
// previous round's cache (a fresh bipartition invalidates every layered
// graph — though the per-class delta chains now survive it, see
// amortClassCtx). A non-nil error (ErrBeginRoundBusy: a concurrent or
// re-entrant BeginRound caught by the index's ownership stamp) leaves the
// round un-synced; the caller must treat it like a setup panic.
func (am *amortizer) beginRound(par *layered.Parametrized) error {
	if testBeginRoundPanic != nil {
		testBeginRoundPanic()
	}
	if testBeginRoundErr != nil {
		if err := testBeginRoundErr(); err != nil {
			return err
		}
	}
	if err := am.inc.BeginRound(par); err != nil {
		return err
	}
	if am.cache != nil {
		am.cache.reset()
	}
	return nil
}

// testBeginRoundPanic, when set by a test, runs at the top of beginRound —
// the hook the reset-rung tests use to fault the round-scoped setup.
var testBeginRoundPanic func()

// testBeginRoundErr, when set by a test, can make beginRound return an
// error without panicking — the hook the reset-rung tests use to inject
// the index's misuse sentinels (layered.ErrBeginRoundBusy) at the exact
// point a real concurrent BeginRound would surface them.
var testBeginRoundErr func() error

// safeBeginRound is the ladder's wrapper around beginRound: a panic out of
// the amortised round setup is recovered into a PanicError (Class -1) for
// Round's reset rung instead of escaping to the Solve caller.
func (am *amortizer) safeBeginRound(par *layered.Parametrized) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &PanicError{Class: -1, Value: p, Stack: debug.Stack()}
		}
	}()
	return am.beginRound(par)
}

// amortClassCtx is the per-class slice of the amortised state handed to
// classAugmentations; nil means the naive path. The enum scratch backs the
// probe-guided pair enumeration of its class, and warm (Options.WarmStart)
// carries the class's Hopcroft–Karp warm state across rounds — the class
// list is fixed for a Solve run, so "the previous pair of this class" may
// live in the previous round, where a near-converged matching means the old
// solution seeds most of the new one. All of it is class-private state, so
// the sweep's worker pool needs no locking and results stay invariant under
// the worker count.
type amortClassCtx struct {
	view  *layered.IncView
	cache *pairCache
	enum  *layered.PairScratch
	warm  *warmState

	// Cross-round delta chaining (Options.CrossRoundCutover ≥ 0): the
	// class's build arena, its last build, and its repair arena live here —
	// per class, Solve-lifetime — instead of on the round-scoped worker,
	// so the chain's baseline survives the bipartition redraw. prevLay
	// points into scratch's retained build; both are lazily created by the
	// class's first sweep. rep shadows the worker's repairState under the
	// same precedence warm uses. All class-private, so worker-count
	// invariance is preserved exactly as for warm.
	scratch *layered.Scratch
	prevLay *layered.Layered
	rep     *repairState

	// quarantined marks the class's amortised context as damaged (a
	// recovered sweep panic or an escaped corruption sentinel): Round's
	// fallback pass sets it, and every later sweep of the class runs cold
	// (ac == nil) for the rest of the Solve. The lazy per-class state left
	// behind is stamp-guarded and simply never consulted again.
	quarantined bool

	// Hit-rate gate state (Options.CacheGate): lookups and hits of this
	// class across the whole Solve; once cacheOff flips, the class stops
	// computing pair keys (and digesting buckets) for good. The state is
	// class-private, but under a worker pool whether a lookup hits depends
	// on which worker's put landed first, so hit counts — and hence gate
	// timing — are scheduling-dependent at Workers > 1. Results are not:
	// the cache (and so the gate) is transparent by construction.
	cacheLooks int
	cacheHits  int
	cacheOff   bool
}

// cacheGate resolves Options.CacheGate: the lookup budget after which a
// hitless class stops keying the cache (0 picks the default, negative
// disables the gate).
func cacheGate(opts Options) int {
	switch {
	case opts.CacheGate < 0:
		return 0
	case opts.CacheGate == 0:
		return 8
	default:
		return opts.CacheGate
	}
}

// pairCache shares pair solves across the classes of one round, keyed by
// the layered graph's content (τ units plus window digests, see
// IncView.PairKey): anchored and geometric classes whose windows coincide
// solve identical layered graphs, so the first solve's candidates serve
// every twin. Values are pure functions of the key, so the worker pool can
// populate it in any order without disturbing the deterministic merge.
type pairCache struct {
	mu sync.Mutex
	m  map[string]cacheEntry
}

// cacheEntry is one cached pair solve plus the checksum sealed at put time.
// The checksum is the cache rung's self-check: a hit is only served after
// cacheSum re-derives it, so corrupted candidates are evicted and re-solved
// (FallbackCacheDrops) instead of merged into the matching.
type cacheEntry struct {
	cands []candidate
	sum   uint64
}

// cacheSum digests a cache entry — the key bytes and every candidate's gain
// and edge lists — with FNV-1a. Any flipped byte in either the key mapping
// or the stored candidates changes the digest.
func cacheSum(key string, cands []candidate) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(x uint64) {
		for s := 0; s < 64; s += 8 {
			h = (h ^ (x >> s & 0xff)) * prime64
		}
	}
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * prime64
	}
	mixEdges := func(es []graph.Edge) {
		mix(uint64(len(es)))
		for _, e := range es {
			mix(uint64(e.U))
			mix(uint64(e.V))
			mix(uint64(e.W))
		}
	}
	for _, c := range cands {
		mix(uint64(c.gain))
		mixEdges(c.aug.Remove)
		mixEdges(c.aug.Add)
	}
	return h
}

func (pc *pairCache) reset() {
	pc.mu.Lock()
	clear(pc.m)
	pc.mu.Unlock()
}

// get serves a checksum-verified hit. corrupt reports that an entry existed
// but failed its self-check and was evicted — the caller counts the fallback
// and re-solves the pair as if it had missed.
func (pc *pairCache) get(key []byte) (cands []candidate, ok, corrupt bool) {
	pc.mu.Lock()
	v, ok := pc.m[string(key)]
	if ok && v.sum != cacheSum(string(key), v.cands) {
		delete(pc.m, string(key))
		pc.mu.Unlock()
		return nil, false, true
	}
	pc.mu.Unlock()
	return v.cands, ok, false
}

func (pc *pairCache) put(key []byte, cands []candidate) {
	// Copy: the caller's slice is re-sorted by the class-level conflict
	// resolution, which would scramble a shared backing array.
	cp := append([]candidate(nil), cands...)
	sum := cacheSum(string(key), cp)
	// Hazard site (chaos testing): seal the entry with a wrong digest, as a
	// bit flip in the stored candidates would. The next get detects it,
	// evicts, and the pair re-solves.
	if faultinject.Fire(faultinject.CacheDigest) {
		sum ^= 1
	}
	pc.mu.Lock()
	pc.m[string(key)] = cacheEntry{cands: cp, sum: sum}
	pc.mu.Unlock()
}

// repairState carries a worker's incremental Hopcroft–Karp repair chain
// (Options.RepairCutover): the retained bipartite arena plus the identity
// of the instance it last solved — the solve token the arena issued and the
// BuildSeq of the layered graph the instance came from. A solve whose
// layered graph was delta-built directly over that instance
// (DeltaInfo.BaseSeq matches) patches the retained CSR; everything else
// runs a full retained solve. Both paths return the bit-identical matching
// and phase count of a fresh HopcroftKarpScratch (Invariant 21), so the
// sweep's results are invariant under the worker count even though the
// chain itself is worker-local.
type repairState struct {
	hk *bipartite.Scratch
	// baseTok is the arena's SolveToken after the last retained solve;
	// baseSeq the BuildSeq of the layered build that solve's instance was
	// derived from. Both zero until the first retained solve.
	baseTok uint64
	baseSeq uint64
}

// solve runs the retained/repaired exact solver on the pair's bipartite
// view. The returned matching is arena-owned and valid only until the next
// solve on this worker — classAugmentations consumes it within the
// iteration.
func (rs *repairState) solve(lay *layered.Layered, bip *bipartite.Bip, cutover int, stats *Stats) (*graph.Matching, int) {
	if d := lay.Delta; d.Valid && rs.baseTok != 0 && d.BaseSeq == rs.baseSeq {
		// Default gate: patch whenever anything is shared — the E16 table
		// measured the patch-always extreme at or slightly ahead of
		// fraction gates on both shapes (the single-scan patch never costs
		// meaningfully more than prepare).
		min := cutover
		if min <= 0 {
			min = 1
		}
		if d.KeptLPrime >= min {
			info := bipartite.RepairInfo{
				BaseToken: rs.baseTok,
				KeptVerts: d.KeptIDs,
				KeptEdges: d.KeptLPrime,
			}
			// Hazard site (chaos testing): corrupt the kept-prefix
			// descriptor the way a damaged DeltaInfo would. RepairHK's
			// bounds check rejects it (ErrRepairInfo) before touching the
			// arena, so the fall-through below takes over.
			if faultinject.Fire(faultinject.RepairInfo) {
				info.KeptEdges = int(^uint32(0) >> 1)
			}
			if res, err := bipartite.RepairHK(bip, rs.hk, info); err == nil {
				stats.RepairSolves++
				stats.RepairEdgesKept += d.KeptLPrime
				rs.record(lay)
				return res.M, res.Phases
			}
			// Solve rung of the ladder: a rejected baseline (ErrRepair*,
			// real or injected) degrades to the full retained solve below,
			// never to a wrong matching or an error.
			stats.FallbackSolves++
		}
	}
	res := bipartite.HopcroftKarpRetained(bip, rs.hk)
	rs.record(lay)
	return res.M, res.Phases
}

func (rs *repairState) record(lay *layered.Layered) {
	rs.baseTok = rs.hk.SolveToken()
	rs.baseSeq = lay.BuildSeq()
}

// warmState carries one class's Hopcroft–Karp warm start: the previous
// (τA, τB) pair's matching in (layer, original-vertex) coordinates, mapped
// onto the next pair's surviving edges as solver seeds. The state resets at
// every class boundary, so results stay invariant under the worker count
// (a worker's previous class leaks nothing into the next).
type warmState struct {
	hk    *bipartite.Scratch
	prev  []warmEdge
	seeds []bipartite.Seed
}

// warmEdge is one matched edge of the previous pair's solution, endpoint
// copies identified by (layer, original vertex) — the coordinates that
// survive from one layered graph to the next while compact ids do not.
type warmEdge struct {
	tu, u, tv, v int32
}

func newWarmState(hk *bipartite.Scratch) *warmState {
	return &warmState{hk: hk}
}

func (ws *warmState) resetClass() { ws.prev = ws.prev[:0] }

// solve runs the seeded exact solver on the pair's bipartite view: the
// previous pair's matching is restricted to the edges that survive in this
// build (both endpoint copies present), installed as endpoint seeds — the
// solver resolves each against its adjacency and drops pairs whose edge did
// not survive into L' — and the result recorded for the next pair. It
// returns the phase count alongside the matching (Stats.SolverPhases).
func (ws *warmState) solve(lay *layered.Layered, bip *bipartite.Bip) (*graph.Matching, int) {
	seeds := ws.seeds[:0]
	for _, pe := range ws.prev {
		lu := lay.ID(int(pe.tu), int(pe.u))
		lv := lay.ID(int(pe.tv), int(pe.v))
		if lu < 0 || lv < 0 {
			continue
		}
		l, r := lu, lv
		if bip.Side[l] {
			l, r = r, l
		}
		seeds = append(seeds, bipartite.Seed{L: int32(l), R: int32(r), EdgeIndex: -1})
	}
	ws.seeds = seeds
	res := bipartite.HopcroftKarpSeeded(bip, ws.hk, seeds)
	ws.prev = ws.prev[:0]
	for _, e := range res.M.Edges() {
		ws.prev = append(ws.prev, warmEdge{
			tu: int32(lay.LayerOf(e.U)), u: int32(lay.Orig(e.U)),
			tv: int32(lay.LayerOf(e.V)), v: int32(lay.Orig(e.V)),
		})
	}
	return res.M, res.Phases
}
