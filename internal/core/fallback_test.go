package core

import (
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/faultinject"
	"repro/internal/graph"
	"repro/internal/layered"
)

func fallbackTestInstance() *graph.Graph {
	rng := rand.New(rand.NewSource(555))
	return graph.RandomGraph(50, 180, 64, rng).G
}

// panickyFactory returns a SolverFactory whose produced solvers panic while
// *arm is nonzero (decrementing it per panic), and solve exactly like the
// default solver otherwise. The panic is side-effect-free, so a ladder
// re-run of the class reproduces the clean run's result bit-for-bit.
func panickyFactory(arm *atomic.Int64) func(*rand.Rand) Solver {
	return func(*rand.Rand) Solver {
		return func(b *bipartite.Bip) (*graph.Matching, error) {
			if arm.Load() > 0 && arm.Add(-1) >= 0 {
				panic("installed solver blew up")
			}
			return bipartite.HopcroftKarp(b).M, nil
		}
	}
}

// TestWorkerPanicRecoveredAtWorkers4 is the satellite-1 regression: before
// the ladder, a panic inside a pool goroutine at Workers > 1 killed the
// whole process (goroutine panics cannot be recovered by the caller). Now
// the pool recovers it, the class re-runs cold, and — the panic being
// transient — the run finishes error-free and bit-identical to the clean
// run, with the recovery visible in FallbackClasses.
func TestWorkerPanicRecoveredAtWorkers4(t *testing.T) {
	g := fallbackTestInstance()
	var noArm atomic.Int64
	clean := Options{Workers: 4, MaxRounds: 6, SolverFactory: panickyFactory(&noArm),
		Rng: rand.New(rand.NewSource(9))}
	want, err := Solve(g, nil, clean)
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}

	var arm atomic.Int64
	arm.Store(1) // exactly the first solver call panics
	faulty := Options{Workers: 4, MaxRounds: 6, SolverFactory: panickyFactory(&arm),
		Rng: rand.New(rand.NewSource(9))}
	got, err := Solve(g, nil, faulty)
	if err != nil {
		t.Fatalf("faulty run must recover, got error: %v", err)
	}
	if arm.Load() > 0 {
		t.Fatal("panic never armed — test exercised nothing")
	}
	if got.Stats.FallbackClasses < 1 {
		t.Errorf("FallbackClasses = %d, want >= 1", got.Stats.FallbackClasses)
	}
	if !equalMatchings(got.M, want.M) {
		t.Errorf("recovered run diverged: weight %d vs %d", got.M.Weight(), want.M.Weight())
	}
}

// TestPersistentPanicSurfacesAsError: a solver that panics deterministically
// panics in the cold re-run too — that is a solver bug, not a state fault,
// and must surface to the Solve caller as an error (never as a crash).
func TestPersistentPanicSurfacesAsError(t *testing.T) {
	g := fallbackTestInstance()
	var arm atomic.Int64
	arm.Store(1 << 40)
	opts := Options{Workers: 4, MaxRounds: 3, SolverFactory: panickyFactory(&arm),
		Rng: rand.New(rand.NewSource(2))}
	done := make(chan struct{})
	var solveErr error
	go func() {
		// A separate goroutine: if the pool failed to recover, the panic
		// would kill the process and the failure mode is unmistakable.
		defer close(done)
		_, solveErr = Solve(g, nil, opts)
	}()
	<-done
	if solveErr == nil {
		t.Fatal("persistently panicking solver returned no error")
	}
	var pe *PanicError
	if !errors.As(solveErr, &pe) {
		t.Fatalf("err = %v, want *PanicError", solveErr)
	}
	if pe.Class < 0 || len(pe.Stack) == 0 {
		t.Errorf("PanicError missing context: class %d, %d stack bytes", pe.Class, len(pe.Stack))
	}
}

// TestBeginRoundPanicResets covers the reset rung: a transient panic in the
// amortised round setup rebuilds the context (bit-identically, by the
// rebuild-twin equivalence); a persistent one disables amortisation. Both
// finish error-free with the clean run's matching.
func TestBeginRoundPanicResets(t *testing.T) {
	g := fallbackTestInstance()
	clean := Options{Amortize: true, MaxRounds: 6, Rng: rand.New(rand.NewSource(4))}
	want, err := Solve(g, nil, clean)
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}

	t.Run("transient", func(t *testing.T) {
		calls := 0
		testBeginRoundPanic = func() {
			calls++
			if calls == 1 {
				panic("amortised setup fault")
			}
		}
		defer func() { testBeginRoundPanic = nil }()
		opts := Options{Amortize: true, MaxRounds: 6, Rng: rand.New(rand.NewSource(4))}
		got, err := Solve(g, nil, opts)
		if err != nil {
			t.Fatalf("transient setup fault must recover, got: %v", err)
		}
		if got.Stats.FallbackResets != 1 {
			t.Errorf("FallbackResets = %d, want 1", got.Stats.FallbackResets)
		}
		if !equalMatchings(got.M, want.M) {
			t.Errorf("reset run diverged: weight %d vs %d", got.M.Weight(), want.M.Weight())
		}
	})

	t.Run("persistent", func(t *testing.T) {
		testBeginRoundPanic = func() { panic("amortised setup permanently broken") }
		defer func() { testBeginRoundPanic = nil }()
		opts := Options{Amortize: true, MaxRounds: 6, Rng: rand.New(rand.NewSource(4))}
		got, err := Solve(g, nil, opts)
		if err != nil {
			t.Fatalf("persistent setup fault must disable amortisation, got: %v", err)
		}
		if got.Stats.FallbackResets != 2 {
			t.Errorf("FallbackResets = %d, want 2 (rebuild once, then disable)", got.Stats.FallbackResets)
		}
		if !equalMatchings(got.M, want.M) {
			t.Errorf("de-amortised run diverged: weight %d vs %d", got.M.Weight(), want.M.Weight())
		}
	})
}

// TestSentinelsNeverEscapeSolve is the satellite-2 audit pin: every
// ErrDelta*/ErrRepair* producing site inside the solve pipeline converts
// the sentinel into an inline fallback. Saturated injection fires every
// reachable hazard site on every call; if any call site still propagated
// its sentinel, Solve would return it here.
func TestSentinelsNeverEscapeSolve(t *testing.T) {
	g := fallbackTestInstance()
	for _, rate := range []float64{0.5, 1.0} {
		faultinject.Activate(faultinject.New(31, rate))
		res, err := Solve(g, nil, Options{Amortize: true, MaxRounds: 4,
			Rng: rand.New(rand.NewSource(6))})
		faultinject.Deactivate()
		if err != nil {
			t.Fatalf("rate %g: Solve returned %v", rate, err)
		}
		for _, s := range stateFaultSentinels {
			if errors.Is(err, s) {
				t.Errorf("rate %g: sentinel %v escaped to the Solve caller", rate, s)
			}
		}
		total := res.Stats.FallbackBuilds + res.Stats.FallbackSolves +
			res.Stats.FallbackCacheDrops + res.Stats.FallbackClasses +
			res.Stats.FallbackSweeps + res.Stats.FallbackResets
		if total == 0 {
			t.Errorf("rate %g: saturated injection produced no fallbacks: %+v", rate, res.Stats)
		}
	}
}

// TestRecoverableFaultTaxonomy pins the ladder's error classification: all
// eight corruption sentinels and recovered panics are absorbable; anything
// else (a solver's contract error) is not.
func TestRecoverableFaultTaxonomy(t *testing.T) {
	for _, s := range []error{
		layered.ErrDeltaNoBase, layered.ErrDeltaDetached, layered.ErrDeltaScratch,
		layered.ErrDeltaStale, layered.ErrDeltaMismatch,
		bipartite.ErrRepairNoBase, bipartite.ErrRepairStale, bipartite.ErrRepairInfo,
	} {
		if !recoverableFault(s) {
			t.Errorf("sentinel %v not classified recoverable", s)
		}
	}
	if !recoverableFault(&PanicError{Class: 3, Value: "boom"}) {
		t.Error("PanicError not classified recoverable")
	}
	if recoverableFault(errors.New("solver contract violation")) {
		t.Error("foreign error classified recoverable")
	}
	if recoverableFault(nil) {
		t.Error("nil classified recoverable")
	}
}
