// Package core implements the paper's primary contribution: the reduction
// from (1−ε)-approximate maximum weighted matching in general graphs to
// (1−δ)-approximate maximum unweighted matching in bipartite graphs
// (Section 4, Theorems 4.1, 4.7 and 4.8 of
// Gamlath–Kale–Mitrović–Svensson, PODC 2019).
//
// One Round of the reduction is Algorithm 3: for every augmentation-class
// weight W (geometric steps), Algorithm 4 builds the layered graphs of all
// good (τA, τB) pairs over a random bipartition, runs the black-box
// unweighted bipartite matching subroutine on each, translates the
// augmenting paths back to weighted augmentations of G via the Lemma 4.11
// decomposition, and finally the per-class augmentation sets are applied
// greedily from the heaviest class down. Iterating rounds until the gain
// stalls yields the (1−ε)-approximation of Theorem 1.2.
package core

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/bipartite"
	"repro/internal/graph"
	"repro/internal/layered"
)

// Solver is the Unw-Bip-Matching black box of Algorithm 4: any algorithm
// returning a large matching of a bipartite graph. The reduction only
// consumes its (1−δ) guarantee.
type Solver func(b *bipartite.Bip) (*graph.Matching, error)

// ExactSolver adapts Hopcroft–Karp (δ = 0).
func ExactSolver() Solver {
	return func(b *bipartite.Bip) (*graph.Matching, error) {
		return bipartite.HopcroftKarp(b).M, nil
	}
}

// ApproxSolver adapts the bounded-phase (1−δ)-approximation.
func ApproxSolver(delta float64) Solver {
	return func(b *bipartite.Bip) (*graph.Matching, error) {
		return bipartite.Approx(b, delta).M, nil
	}
}

// Options configures the reduction.
type Options struct {
	// Layered carries the granularity parameters (see layered.Params).
	Layered layered.Params
	// ClassBase is the geometric step between augmentation-class weights
	// (the paper's 1+ε⁴). Default 2.
	ClassBase float64
	// Solver is the unweighted subroutine. Default ExactSolver.
	Solver Solver
	// Rng drives the random bipartitions. Defaults to a fixed seed for
	// reproducibility.
	Rng *rand.Rand
	// MaxRounds caps reduction rounds (the paper repeats (1/ε)^O(1/ε²)
	// times; we stop early when gain stalls). Default 40.
	MaxRounds int
	// Patience is the number of consecutive zero-gain rounds tolerated
	// before stopping (each round draws a fresh bipartition, so one zero
	// round is not conclusive). Default 6.
	Patience int
	// MaxPairsPerClass caps how many good (τA, τB) pairs are tried per
	// augmentation class, bounding per-round work on instances with many
	// populated weight buckets. Default 800.
	MaxPairsPerClass int
	// Trace, when non-nil, receives the matching weight after every round
	// (convergence curves for the E12 experiment).
	Trace func(round int, weight graph.Weight)
}

func (o Options) withDefaults() Options {
	o.Layered = o.Layered.WithDefaults()
	if o.ClassBase <= 1 {
		o.ClassBase = 2
	}
	if o.Solver == nil {
		o.Solver = ExactSolver()
	}
	if o.Rng == nil {
		o.Rng = rand.New(rand.NewSource(1))
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 40
	}
	if o.Patience <= 0 {
		o.Patience = 6
	}
	if o.MaxPairsPerClass <= 0 {
		o.MaxPairsPerClass = 800
	}
	return o
}

// Stats accumulates resource usage across a Solve run.
type Stats struct {
	// Rounds is the number of Algorithm 3 rounds executed.
	Rounds int
	// SolverCalls counts Unw-Bip-Matching invocations (one per surviving
	// (W, τ-pair) combination).
	SolverCalls int
	// LayeredBuilt counts layered graphs constructed (= SolverCalls plus
	// those skipped for having no augmenting structure).
	LayeredBuilt int
	// AppliedAugmentations counts augmentations applied to the matching.
	AppliedAugmentations int
	// Gain is the total weight gained over the initial matching.
	Gain graph.Weight
}

// ClassWeights returns the augmentation-class weights, the Algorithm 3
// line-1/2 enumeration, in descending order (Algorithm 3 applies the
// heaviest class first). Two families are produced:
//
//   - the geometric sweep W = base^i covering [minW/2, maxW·(maxLayers+1)],
//     as in the paper, and
//   - anchored weights W = maxW/(g·u) for units u = 2..1/g, which align a
//     bucket boundary with the heaviest edge weight. At the paper's
//     granularity ε¹² the geometric sweep alone suffices (rounding losses
//     are negligible); at coarse granularity the anchored classes recover
//     augmentations — notably augmenting cycles — whose gain would otherwise
//     drown in bucket rounding (see DESIGN.md, substitutions).
func ClassWeights(g *graph.Graph, base float64, prm layered.Params) []float64 {
	prm = prm.WithDefaults()
	maxW := float64(g.MaxWeight())
	if maxW <= 0 {
		return nil
	}
	minW := math.Inf(1)
	for _, e := range g.Edges() {
		if w := float64(e.W); w < minW {
			minW = w
		}
	}
	top := maxW * float64(prm.MaxLayers+1)
	var out []float64
	for w := minW / 2; w <= top; w *= base {
		out = append(out, w)
	}
	maxU, _ := prm.Units()
	for u := 2; u <= maxU; u++ {
		out = append(out, maxW/(prm.Granularity*float64(u)))
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	// Deduplicate near-identical weights.
	dedup := out[:0]
	for i, w := range out {
		if i == 0 || w < dedup[len(dedup)-1]*0.999 {
			dedup = append(dedup, w)
		}
	}
	return dedup
}

// Round executes one Algorithm 3 round on m: compute AW for every class
// weight (Algorithm 4), then greedily apply non-conflicting augmentations
// from the heaviest class down. It returns the realised gain.
func Round(g *graph.Graph, m *graph.Matching, opts Options, stats *Stats) (graph.Weight, error) {
	opts = opts.withDefaults()
	weights := ClassWeights(g, opts.ClassBase, opts.Layered)

	// One random bipartition per round, shared by every class (the paper
	// parametrises per run of Algorithm 4; sharing only correlates classes,
	// not the per-class analysis).
	par := layered.Parametrize(g.N(), g.Edges(), m, opts.Rng)

	var all []graph.Augmentation
	for _, w := range weights {
		augs, err := classAugmentations(par, m, w, opts, stats)
		if err != nil {
			return 0, err
		}
		all = append(all, augs...)
	}
	gain, applied := graph.ApplyDisjoint(m, all)
	stats.AppliedAugmentations += applied
	stats.Gain += gain
	stats.Rounds++
	return gain, nil
}

// FindClassAugmentations is Algorithm 4 as a standalone entry point: it
// draws a fresh random bipartition and returns the augmentation set AW for
// the single augmentation class W. Exposed for experiments that probe one
// class (e.g. the paper's 4-cycle example).
func FindClassAugmentations(
	g *graph.Graph,
	m *graph.Matching,
	w float64,
	opts Options,
	stats *Stats,
) ([]graph.Augmentation, error) {
	opts = opts.withDefaults()
	par := layered.Parametrize(g.N(), g.Edges(), m, opts.Rng)
	return classAugmentations(par, m, w, opts, stats)
}

// classAugmentations is Algorithm 4 for one augmentation class W: over all
// good pairs whose weight windows are populated, build the layered graph,
// solve unweighted matching in L', project each augmenting path to G,
// decompose (Lemma 4.11), and keep the best component per path. The
// vertex-disjoint union across pairs is returned.
//
// Note: Algorithm 4 as analysed returns only the single best pair's set
// A(τA,τB); the union with a shared conflict set is pointwise at least as
// good and converges far faster at coarse granularity, so we take it (every
// element still has positive gain and disjointness is enforced).
func classAugmentations(
	par *layered.Parametrized,
	m *graph.Matching,
	w float64,
	opts Options,
	stats *Stats,
) ([]graph.Augmentation, error) {
	idx := buildViability(par, w, opts.Layered)
	pairs := layered.EnumerateGoodPairsFiltered(opts.Layered,
		func(u int) bool { return u == 0 || (u < len(idx.aCount) && idx.aCount[u] > 0) },
		func(u int) bool { return u < len(idx.bCount) && idx.bCount[u] > 0 },
	)
	if len(pairs) > opts.MaxPairsPerClass {
		pairs = pairs[:opts.MaxPairsPerClass]
	}
	var chosen []graph.Augmentation
	used := make(map[int]struct{})

	for _, tau := range pairs {
		lay := layered.Build(par, tau, w, opts.Layered)
		stats.LayeredBuilt++
		if len(lay.Y) == 0 {
			continue
		}
		lp := lay.LPrimeEdges()
		if len(lp) == 0 {
			continue
		}
		bip := &bipartite.Bip{N: lay.TotalV, Side: lay.Sides(), Edges: lp}
		stats.SolverCalls++
		mPrime, err := opts.Solver(bip)
		if err != nil {
			return nil, err
		}
		mlp := lay.MatchingLPrime()

		for _, c := range graph.SymmetricDifference(mlp, mPrime) {
			if !isAugmentingPath(c) {
				continue
			}
			walk := lay.ProjectComponent(c)
			aug, _, ok := layered.BestAugmentation(m, walk)
			if !ok || conflictsUsed(aug, used) {
				continue
			}
			markUsed(aug, used)
			chosen = append(chosen, aug)
		}
	}
	return chosen, nil
}

// viability pre-buckets the parametrized edges by τ unit for one (W, g) so
// that the good-pair enumeration only emits pairs whose every weight window
// holds at least one edge: an empty matched window empties its layer and the
// vertex filter then disconnects it, and an empty unmatched window leaves no
// Y edges between two layers, so such pairs cannot contribute.
type viability struct {
	aCount, bCount []int
}

func buildViability(par *layered.Parametrized, w float64, prm layered.Params) viability {
	maxU, _ := prm.Units()
	v := viability{
		aCount: make([]int, maxU+1),
		bCount: make([]int, maxU+1),
	}
	g := prm.Granularity
	for _, e := range par.A {
		// Matched window for unit u is ((u-1)gW, ugW], so e belongs to
		// unit ceil(w(e)/(gW)).
		u := int(math.Ceil(float64(e.W) / (g * w)))
		if u >= 0 && u <= maxU {
			v.aCount[u]++
		}
	}
	for _, e := range par.B {
		// Unmatched window for unit u is [ugW, (u+1)gW): unit floor.
		u := int(math.Floor(float64(e.W) / (g * w)))
		if u >= 0 && u <= maxU {
			v.bCount[u]++
		}
	}
	return v
}

// isAugmentingPath reports whether a symmetric-difference component is an
// augmenting path for ML' (a path whose both end edges come from M', i.e.
// InFirst false at the extremes).
func isAugmentingPath(c graph.AlternatingComponent) bool {
	if c.IsCycle || c.EdgeCount() == 0 {
		return false
	}
	return !c.InFirst[0] && !c.InFirst[c.EdgeCount()-1]
}

func conflictsUsed(a graph.Augmentation, used map[int]struct{}) bool {
	for v := range a.Vertices() {
		if _, ok := used[v]; ok {
			return true
		}
	}
	return false
}

func markUsed(a graph.Augmentation, used map[int]struct{}) {
	for v := range a.Vertices() {
		used[v] = struct{}{}
	}
}

// Result is the outcome of Solve.
type Result struct {
	M     *graph.Matching
	Stats Stats
}

// effectiveBudget widens the round budget on tiny graphs: an augmentation
// on |C| vertices survives a bipartition draw with probability 2^(1-|C|)
// (Lemma 4.12), so when n itself is small a few dozen cheap extra draws
// make capture near-certain, whereas the default patience would stall
// flakily.
func effectiveBudget(n int, opts Options) (maxRounds, patience int) {
	maxRounds, patience = opts.MaxRounds, opts.Patience
	if n <= 12 {
		if patience < 48 {
			patience = 48
		}
		if maxRounds < 64 {
			maxRounds = 64
		}
	}
	return maxRounds, patience
}

// Solve runs the Theorem 1.2 driver: start from the empty matching (or
// initial if non-nil) and iterate Algorithm 3 rounds until MaxRounds or
// until Patience consecutive rounds yield no gain.
func Solve(g *graph.Graph, initial *graph.Matching, opts Options) (Result, error) {
	opts = opts.withDefaults()
	m := graph.NewMatching(g.N())
	if initial != nil {
		m = initial.Clone()
	}
	var stats Stats
	maxRounds, patience := effectiveBudget(g.N(), opts)
	stalled := 0
	for r := 0; r < maxRounds && stalled < patience; r++ {
		gain, err := Round(g, m, opts, &stats)
		if err != nil {
			return Result{M: m, Stats: stats}, err
		}
		if opts.Trace != nil {
			opts.Trace(r, m.Weight())
		}
		if gain == 0 {
			stalled++
		} else {
			stalled = 0
		}
	}
	return Result{M: m, Stats: stats}, nil
}
