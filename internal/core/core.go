// Package core implements the paper's primary contribution: the reduction
// from (1−ε)-approximate maximum weighted matching in general graphs to
// (1−δ)-approximate maximum unweighted matching in bipartite graphs
// (Section 4, Theorems 4.1, 4.7 and 4.8 of
// Gamlath–Kale–Mitrović–Svensson, PODC 2019).
//
// One Round of the reduction is Algorithm 3: for every augmentation-class
// weight W (geometric steps), Algorithm 4 builds the layered graphs of all
// good (τA, τB) pairs over a random bipartition, runs the black-box
// unweighted bipartite matching subroutine on each, translates the
// augmenting paths back to weighted augmentations of G via the Lemma 4.11
// decomposition, and finally the per-class augmentation sets are applied
// greedily from the heaviest class down. Iterating rounds until the gain
// stalls yields the (1−ε)-approximation of Theorem 1.2.
//
// # The amortised pipeline
//
// With Options.Amortize a persistent Runner maintains cross-round state
// that makes every round after the first differential: the incremental
// viability index (layered.IncIndex) re-derives only the buckets a redraw
// or an augmentation touched; within and across rounds each class chains
// its layered-graph builds through layered.BuildDelta, patching the
// previous build instead of rebuilding (the layered.RoundChainer interface
// is how BuildDelta proves a cross-round baseline fresh); and the default
// exact solver retains its adjacency CSR per class so a delta-built pair
// repairs the previous solve (bipartite.RepairHK) instead of re-solving.
// Every differential layer is bit-identical to its from-scratch
// counterpart by construction, and the differential suite in
// internal/solvertest asserts it family by family.
//
// # The degradation ladder
//
// Retained state can go stale or corrupt (and the chaos suite forces it
// to): each amortised layer checks its baseline and degrades one rung —
// never to an error. A rejected delta baseline (the five layered.ErrDelta*
// sentinels) rebuilds from scratch; a rejected repair baseline (the three
// bipartite.ErrRepair* sentinels) re-solves cold; a cache entry failing
// its checksum is evicted and re-solved; a poisoned class context is
// quarantined for the rest of the Solve; a worker panic resets the whole
// amortised context. The eight sentinels are the recoverable contract:
// Stats.Fallback* counters record every rung taken, and results stay
// bit-identical because each rung's cold path is the definition the warm
// path is proved against.
//
// # Dynamic graphs and restarts
//
// Between rounds the graph may change: Runner.ApplyMutations applies a
// MutationBatch (inserts, deletes, reweights) through the index's edit
// protocol, charging the same per-(class, unit) change clocks a
// bipartition redraw stamps, so the next Round is bit-identical to a cold
// solve on the post-edit graph; Runner.Tick is the service loop step
// (apply a batch, re-converge). Checkpoint/ResumeSolve persist a run's
// generators — graph, matching, counters, Rng stream position — and
// rebuild the amortised context on resume, the same rebuild-twin
// equivalence the ladder's reset rung relies on.
package core

import (
	"math"
	"math/rand"
	"reflect"
	"runtime/debug"
	"slices"
	"sort"
	"sync"

	"repro/internal/bipartite"
	"repro/internal/faultinject"
	"repro/internal/graph"
	"repro/internal/layered"
)

// Solver is the Unw-Bip-Matching black box of Algorithm 4: any algorithm
// returning a large matching of a bipartite graph. The reduction only
// consumes its (1−δ) guarantee.
type Solver func(b *bipartite.Bip) (*graph.Matching, error)

// ExactSolver adapts Hopcroft–Karp (δ = 0).
func ExactSolver() Solver {
	return func(b *bipartite.Bip) (*graph.Matching, error) {
		return bipartite.HopcroftKarp(b).M, nil
	}
}

// ApproxSolver adapts the bounded-phase (1−δ)-approximation.
func ApproxSolver(delta float64) Solver {
	return func(b *bipartite.Bip) (*graph.Matching, error) {
		return bipartite.Approx(b, delta).M, nil
	}
}

// PhasedSolver is a Solver that additionally reports the subroutine phase
// count of the call — the unit Stats.SolverPhases accumulates. Installed
// via Options.PhasedSolverFactory; a plain Solver or SolverFactory closure
// has no channel for its phase counts, which leaves the ledger's phase
// column silently zero (the bug this type fixes).
type PhasedSolver func(b *bipartite.Bip) (*graph.Matching, int, error)

// ExactPhasedSolver returns a scratch-backed exact Hopcroft–Karp
// PhasedSolver: the factory-path equivalent of the default solver, phase
// counts included. Each call to ExactPhasedSolver owns a private arena, so
// a PhasedSolverFactory returning one per class is worker-safe.
func ExactPhasedSolver() PhasedSolver {
	hk := bipartite.NewScratch()
	return func(b *bipartite.Bip) (*graph.Matching, int, error) {
		res := bipartite.HopcroftKarpScratch(b, hk)
		return res.M, res.Phases, nil
	}
}

// Options configures the reduction.
type Options struct {
	// Layered carries the granularity parameters (see layered.Params).
	Layered layered.Params
	// ClassBase is the geometric step between augmentation-class weights
	// (the paper's 1+ε⁴). Default 2.
	ClassBase float64
	// Solver is the unweighted subroutine. Default ExactSolver.
	Solver Solver
	// Rng drives the random bipartitions. Defaults to a fixed seed for
	// reproducibility.
	Rng *rand.Rand
	// MaxRounds caps reduction rounds (the paper repeats (1/ε)^O(1/ε²)
	// times; we stop early when gain stalls). Default 40.
	MaxRounds int
	// Patience is the number of consecutive zero-gain rounds tolerated
	// before stopping (each round draws a fresh bipartition, so one zero
	// round is not conclusive). Default 6.
	Patience int
	// MaxPairsPerClass caps how many good (τA, τB) pairs are tried per
	// augmentation class, bounding per-round work on instances with many
	// populated weight buckets. Default 800.
	MaxPairsPerClass int
	// Workers bounds the worker pool of Round's per-class sweep
	// (augmentation classes are independent until the final merge). 0 or 1
	// runs the sweep sequentially. The sweep is forced sequential when a
	// single Solver closure is installed without a SolverFactory — one
	// closure cannot safely serve several workers. Results are merged in
	// descending class-weight order, so for a fixed Rng seed the outcome is
	// bit-for-bit identical at any worker count.
	Workers int
	// SolverFactory, when set, takes precedence over Solver: it is invoked
	// once per augmentation class with that class's private Rng (split
	// deterministically from Options.Rng in class order) and returns the
	// Solver for the class. It is how randomized or stateful subroutines
	// stay reproducible under the parallel sweep. When neither Solver nor
	// SolverFactory is set, each worker uses an exact Hopcroft–Karp solver
	// backed by its own scratch arena.
	SolverFactory func(rng *rand.Rand) Solver
	// PhasedSolverFactory, when set, takes precedence over SolverFactory
	// and Solver: like SolverFactory, but the returned solver reports each
	// call's phase count, which the sweep folds into Stats.SolverPhases
	// (per worker, then merged — no atomics on the hot path). This is how
	// installed subroutines keep the phase ledger honest; with a plain
	// SolverFactory the field stays 0.
	PhasedSolverFactory func(rng *rand.Rand) PhasedSolver
	// Amortize enables the cross-round amortised pipeline: the incremental
	// viability index (window bucketing computed once per edge and
	// maintained by matched/unmatched deltas instead of rebuilt per round
	// and class), the probe-guided pair enumeration (doomed (τA, τB)
	// subtrees are pruned during generation, see Stats.EnumPruned), and the
	// per-round cross-class solve cache (classes whose windows coincide
	// share one solve). The amortised path returns the bit-identical
	// matching of the naive path for a fixed Rng seed; the differential
	// suite (internal/solvertest, TestAmortizedRoundBitIdentical) asserts
	// it. Stats.LayeredBuilt counts probe-rejected pairs as built so the
	// two paths stay comparable. Granularities finer than 1/255 exceed the
	// index's compact unit storage and silently fall back to the naive
	// path (layered.CanIndexIncrementally).
	Amortize bool
	// DeltaCutover tunes the differential layered-graph builder the
	// amortised path chains within each class-round: consecutive surviving
	// (τA, τB) pairs share most of their layers, so every pair after the
	// first is built by layered.BuildDelta — patching only the layers whose
	// windows changed against the previous pair's build — whenever at least
	// DeltaCutover layer segments are reusable (see Stats.DeltaBuilds /
	// DeltaLayersReused). 0 uses the default gate (chain always; the
	// grouped Y-stage lookup pays off even with nothing to reuse), negative
	// disables delta chaining entirely (every pair rebuilds from scratch) —
	// the measurement baseline of the E15 experiment. The delta builds are
	// bit-identical to from-scratch builds by construction, asserted by
	// TestBuildDeltaMatchesBuildIndexed and FuzzBuildDelta.
	DeltaCutover int
	// RepairCutover tunes the incremental Hopcroft–Karp repair, the
	// solver-side twin of the delta chain: with the default exact solver,
	// every solve retains its adjacency CSR and result arena
	// (bipartite.HopcroftKarpRetained), and a solve whose layered graph was
	// delta-built over the instance of the previous solve patches the
	// retained CSR (bipartite.RepairHK) instead of rebuilding it — whenever
	// at least RepairCutover edges of the L' list are byte-shared with the
	// baseline (DeltaInfo.KeptLPrime). 0 uses the default gate (patch
	// whenever anything is shared; the retained arena saves the per-solve
	// allocations either way), negative disables the repair path
	// entirely (every solve is a fresh HopcroftKarpScratch) — the
	// measurement baseline of the E16 experiment. The repaired solve is
	// bit-identical to the fresh one — same matching, same phase count —
	// because the patched CSR is byte-identical to the rebuilt one
	// (Invariant 21); see Stats.RepairSolves / RepairEdgesKept. Ignored
	// when a Solver/SolverFactory/PhasedSolverFactory closure or WarmStart
	// is installed — only the default exact solver retains repair state.
	RepairCutover int
	// CrossRoundCutover gates the cross-round extension of the delta chain
	// (PR 7): with it enabled each class's builds chain on a class-private
	// arena that survives the round boundary, so the first build of a
	// class-round is delta-built over the previous round's last build — the
	// chain crosses the bipartition redraw, keeping exactly the segments
	// whose buckets the incremental index proves unchanged
	// (layered.RoundChainer) — and the incremental Hopcroft–Karp repair
	// extends across rounds with it (DeltaInfo already names the base
	// build). 0 uses the default gate (chain across the redraw whenever
	// anything is reusable); a positive value requires at least that many
	// reusable segments at the round link before chaining (below it the
	// link build rebuilds in place, exactly as a too-small same-round delta
	// does); negative disables the extension — every class chain restarts at
	// each BeginRound, the round-local behaviour of PRs 4–6 and the
	// measurement baseline of the E17 experiment. Cross-round chained builds
	// and repairs are bit-identical to round-local ones by construction
	// (Invariant 24); see Stats.CrossRoundDeltaBuilds / CrossRoundRepairs.
	// Ignored unless Amortize is set and DeltaCutover ≥ 0.
	CrossRoundCutover int
	// CacheGate tunes the per-class hit-rate gate on the cross-class solve
	// cache: a class whose cache lookups have produced zero hits after
	// CacheGate lookups stops computing pair keys (and so stops digesting
	// buckets) for the rest of the Solve — on uniform tiers (E14) the cache
	// never hits yet digested large buckets on every cold round. 0 uses
	// the default budget (8 lookups), negative disables the gate (every
	// lookup keys and digests, the pre-gate behaviour). The cache is
	// transparent either way, so results are unchanged at any setting.
	CacheGate int
	// WarmStart seeds the exact Hopcroft–Karp solver with the previous
	// (τA, τB) pair's matching restricted to the surviving edges, within
	// each class. Consecutive pairs of a class share most of their layered
	// graph, so the warm solve pays only the phases that augment the
	// difference; with Amortize the warm state lives on the per-class
	// amortised context and additionally persists across rounds (without
	// it, state resets at each class boundary of the sweep). Either way it
	// never crosses classes, so results stay invariant under the worker
	// count. The result is still an exact maximum matching, but not
	// necessarily the same one a cold solve returns (the seed shifts which
	// augmenting paths are found first), so warm runs are held to the
	// cardinality and quality equivalences rather than bit-identity, and
	// the cross-class cache is disabled while warm-starting (its key does
	// not cover the seed history). Ignored when Solver or SolverFactory is
	// installed — only the default exact solver is seedable. Measured sign
	// per workload tier in the ROADMAP ledger (E12/E13/E14).
	WarmStart bool
	// Trace, when non-nil, receives the matching weight after every round
	// (convergence curves for the E12 experiment).
	Trace func(round int, weight graph.Weight)
}

// hasFactory reports whether a per-class solver factory (phased or plain)
// is installed; customSolver whether any caller-installed subroutine is —
// the configurations that disable the default solver's warm/repair/cache
// machinery.
func (o Options) hasFactory() bool {
	return o.SolverFactory != nil || o.PhasedSolverFactory != nil
}

func (o Options) customSolver() bool { return o.Solver != nil || o.hasFactory() }

func (o Options) withDefaults() Options {
	o.Layered = o.Layered.WithDefaults()
	if o.ClassBase <= 1 {
		o.ClassBase = 2
	}
	// Solver deliberately stays nil when unset: Round distinguishes "no
	// solver configured" (scratch-backed exact solver per worker) from a
	// caller-installed closure (forces the sweep sequential).
	if o.Workers < 1 {
		o.Workers = 1
	}
	if o.Rng == nil {
		o.Rng = rand.New(rand.NewSource(1))
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 40
	}
	if o.Patience <= 0 {
		o.Patience = 6
	}
	if o.MaxPairsPerClass <= 0 {
		o.MaxPairsPerClass = 800
	}
	return o
}

// Stats accumulates resource usage across a Solve run.
type Stats struct {
	// Rounds is the number of Algorithm 3 rounds executed.
	Rounds int
	// SolverCalls counts Unw-Bip-Matching invocations (one per surviving
	// (W, τ-pair) combination).
	SolverCalls int
	// SolverPhases accumulates the Hopcroft–Karp phase counts of those
	// invocations — the unit of work a warm start saves. Tracked only for
	// the default (scratch-backed or warm-started) exact solvers; installed
	// Solver/SolverFactory closures leave it 0.
	SolverPhases int
	// LayeredBuilt counts layered graphs constructed (= SolverCalls plus
	// those skipped for having no augmenting structure). Amortised runs
	// count probe-rejected pairs here too, so the field is comparable
	// between the naive and amortised paths.
	LayeredBuilt int
	// ProbeSkips counts (τA, τB) pairs the amortised survival probe
	// rejected without constructing their layered graph (always 0 on the
	// naive path).
	ProbeSkips int
	// EnumPruned counts the subset of ProbeSkips the probe-guided
	// enumeration pruned during pair generation — dead pairs that were
	// never materialised at all, only charged to the per-class pair limit
	// by their closed-form subtree count (always 0 on the naive path and
	// at discretisations past the probe's bit tables).
	EnumPruned int
	// CacheHits counts pair solves served by the per-round cross-class
	// cache instead of the solver (always 0 on the naive path).
	CacheHits int
	// DeltaBuilds counts layered graphs assembled by the differential
	// builder (layered.BuildDelta) from the previous pair's build instead
	// of from scratch (always 0 on the naive path).
	DeltaBuilds int
	// DeltaLayersReused accumulates the layer segments (X layers plus kept
	// Y gaps) the differential builder carried over unchanged across all
	// DeltaBuilds.
	DeltaLayersReused int
	// RepairSolves counts solver calls served by the incremental repair
	// path (layered.DeltaInfo handed to bipartite.RepairHK: CSR patched
	// from the previous solve instead of rebuilt — bit-identical result,
	// always 0 on the naive path and at RepairCutover < 0).
	RepairSolves int
	// RepairEdgesKept accumulates the byte-shared L' edge-list prefix
	// lengths across all RepairSolves — the adjacency entries the repair
	// reused instead of re-deriving. (The ISSUE sketched this counter as
	// "matches kept"; the shipped repair keeps the adjacency, not the
	// matches — see DESIGN.md PR 5 for why seeding was rejected.)
	RepairEdgesKept int
	// CrossRoundDeltaBuilds counts delta builds whose baseline was the
	// class's last build of a PREVIOUS round: the chain crossed a
	// bipartition redraw instead of restarting at BeginRound (always 0 on
	// the naive path and at CrossRoundCutover < 0). Every such build is
	// also counted in DeltaBuilds.
	CrossRoundDeltaBuilds int
	// CrossRoundRepairs counts RepairSolves whose patched baseline solve
	// belonged to a previous round — the repair chain extended across the
	// redraw together with the build chain (always 0 unless both the
	// repair path and cross-round chaining are on).
	CrossRoundRepairs int
	// ClassesSkippedDirty counts (round, class) combinations the
	// round-scoped dirty gate skipped outright: classes whose τ windows
	// contained no crossing edge, which provably enumerate zero surviving
	// pairs (always 0 on the naive path).
	ClassesSkippedDirty int
	// FallbackBuilds counts delta-chain builds that degraded to a
	// from-scratch BuildIndexed after the baseline was rejected (ErrDelta*
	// sentinel or injected staleness) — the build rung of the degradation
	// ladder. Always 0 while the chain is healthy.
	FallbackBuilds int
	// FallbackSolves counts repair-path solver calls that degraded to a
	// full retained solve after the baseline or descriptor was rejected
	// (ErrRepair* sentinel or injected corruption) — the solve rung of the
	// ladder. Always 0 while the repair chain is healthy.
	FallbackSolves int
	// FallbackCacheDrops counts cross-class cache hits discarded because
	// the entry failed its checksum self-check: the entry is evicted and
	// the pair re-solved, so a corrupted cached candidate set can never
	// reach the matching.
	FallbackCacheDrops int
	// FallbackClasses counts per-class sweeps re-run through the cold path
	// (naive bucket index, fresh worker arena) after a recovered worker
	// panic or an escaped state-fault sentinel; the class's amortised state
	// is quarantined for the rest of the Solve.
	FallbackClasses int
	// FallbackSweeps counts rounds that ran the full class sweep because
	// the dirty-gate bitmap failed its digest self-check — no skip decision
	// was trusted that round.
	FallbackSweeps int
	// FallbackResets counts rebuilds of the whole amortised context
	// (incremental index, per-class state, cache) after a fault escaped the
	// per-class rungs; a second failure disables amortisation for the rest
	// of the Solve rather than erroring.
	FallbackResets int
	// MutationsApplied counts graph edits — inserts, deletes, reweights —
	// applied through Runner.ApplyMutations (the fully-dynamic mutation
	// stream; always 0 for a static Solve).
	MutationsApplied int
	// MutationDeltaBuilds counts the subset of CrossRoundDeltaBuilds whose
	// chain crossed a mutation boundary: delta builds in the first round
	// after a non-empty batch, whose baseline predates the edits and
	// survived them through the stability gates. This is the "links
	// dominate builds" signal of the edit regime.
	MutationDeltaBuilds int
	// MutationIndexResets counts amortised-state rebuilds forced by an edit
	// that moved the class-weight ladder (the graph's minimum or maximum
	// edge weight changed): the whole index geometry derives from the
	// ladder, so absorbing such an edit in place would be unsound. Counted
	// on the naive path too (as a ladder recomputation) so the counter is
	// comparable between paths.
	MutationIndexResets int
	// AppliedAugmentations counts augmentations applied to the matching.
	AppliedAugmentations int
	// Gain is the total weight gained over the initial matching.
	Gain graph.Weight
}

// StatField is one Stats counter as a name/value pair (see Stats.Fields).
type StatField struct {
	// Name is the kebab-case form of the struct field name (SolverCalls →
	// solver-calls), the spelling the CLIs print.
	Name  string
	Value int64
}

// Fields returns every Stats counter in struct order with kebab-case
// names, via reflection — the single source the CLIs print from, so a
// future Stats field can never be silently dropped from the ledgers (the
// printer tests in cmd/augrun and internal/bench enumerate the struct the
// same way and fail on any mismatch).
func (s Stats) Fields() []StatField {
	v := reflect.ValueOf(s)
	out := make([]StatField, 0, v.NumField())
	for i := 0; i < v.NumField(); i++ {
		name := v.Type().Field(i).Name
		var kebab []byte
		for j := 0; j < len(name); j++ {
			c := name[j]
			if c >= 'A' && c <= 'Z' {
				if j > 0 {
					kebab = append(kebab, '-')
				}
				c += 'a' - 'A'
			}
			kebab = append(kebab, c)
		}
		out = append(out, StatField{Name: string(kebab), Value: v.Field(i).Int()})
	}
	return out
}

// accumulate folds every counter of other into s, field by field via
// reflection — the merge twin of Fields, so a future Stats counter can no
// more be silently dropped from Round's per-class merge than from the
// printers. Round-level fields (Rounds, AppliedAugmentations, Gain) are
// always zero on per-class stats, so folding them too is harmless.
func (s *Stats) accumulate(other Stats) {
	sv := reflect.ValueOf(s).Elem()
	ov := reflect.ValueOf(other)
	for i := 0; i < sv.NumField(); i++ {
		f := sv.Field(i)
		f.SetInt(f.Int() + ov.Field(i).Int())
	}
}

// ClassWeights returns the augmentation-class weights, the Algorithm 3
// line-1/2 enumeration, in descending order (Algorithm 3 applies the
// heaviest class first). Two families are produced:
//
//   - the geometric sweep W = base^i covering [minW/2, maxW·(maxLayers+1)],
//     as in the paper, and
//   - anchored weights W = maxW/(g·u) for units u = 2..1/g, which align a
//     bucket boundary with the heaviest edge weight. At the paper's
//     granularity ε¹² the geometric sweep alone suffices (rounding losses
//     are negligible); at coarse granularity the anchored classes recover
//     augmentations — notably augmenting cycles — whose gain would otherwise
//     drown in bucket rounding (see DESIGN.md, substitutions).
func ClassWeights(g *graph.Graph, base float64, prm layered.Params) []float64 {
	prm = prm.WithDefaults()
	maxW := float64(g.MaxWeight())
	if maxW <= 0 {
		return nil
	}
	minW := math.Inf(1)
	for _, e := range g.Edges() {
		if w := float64(e.W); w < minW {
			minW = w
		}
	}
	top := maxW * float64(prm.MaxLayers+1)
	var out []float64
	for w := minW / 2; w <= top; w *= base {
		out = append(out, w)
	}
	maxU, _ := prm.Units()
	for u := 2; u <= maxU; u++ {
		out = append(out, maxW/(prm.Granularity*float64(u)))
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	// Deduplicate near-identical weights.
	dedup := out[:0]
	for i, w := range out {
		if i == 0 || w < dedup[len(dedup)-1]*0.999 {
			dedup = append(dedup, w)
		}
	}
	return dedup
}

// classWorker is the per-worker state of Round's class sweep: one layered
// scratch arena, a stamped conflict set, and the solver source, so parallel
// workers share nothing.
type classWorker struct {
	scratch   *layered.Scratch
	newSolver func(rng *rand.Rand) Solver

	// warm, when non-nil, replaces the solver with the seeded exact solver
	// carrying the previous pair's matching (Options.WarmStart with the
	// default solver configuration).
	warm *warmState

	// repair, when non-nil, replaces the solver with the retained exact
	// solver that patches the previous solve's CSR for delta-built
	// instances (Options.RepairCutover ≥ 0 with the default solver
	// configuration; mutually exclusive with warm, which changes outputs
	// while repair is bit-identical).
	repair *repairState

	// used is the class-level conflict set as a stamp array over original
	// vertices (advancing the stamp clears it in O(1) between classes).
	used      []uint32
	usedStamp uint32

	// lastPhases is the phase count of the most recent default-solver call,
	// recorded by the solver closure for Stats.SolverPhases (installed
	// solvers leave it 0).
	lastPhases int
}

func (w *classWorker) resetUsed(n int) {
	if cap(w.used) < n {
		w.used = make([]uint32, n)
		w.usedStamp = 0
	}
	w.used = w.used[:n]
	w.usedStamp++
	if w.usedStamp == 0 {
		clear(w.used)
		w.usedStamp = 1
	}
}

func (w *classWorker) conflicts(a graph.Augmentation) bool {
	for _, e := range a.Add {
		if w.used[e.U] == w.usedStamp || w.used[e.V] == w.usedStamp {
			return true
		}
	}
	for _, e := range a.Remove {
		if w.used[e.U] == w.usedStamp || w.used[e.V] == w.usedStamp {
			return true
		}
	}
	return false
}

func (w *classWorker) mark(a graph.Augmentation) {
	for _, e := range a.Add {
		w.used[e.U] = w.usedStamp
		w.used[e.V] = w.usedStamp
	}
	for _, e := range a.Remove {
		w.used[e.U] = w.usedStamp
		w.used[e.V] = w.usedStamp
	}
}

func newClassWorker(opts Options) *classWorker {
	w := &classWorker{scratch: layered.NewScratch()}
	switch {
	case opts.PhasedSolverFactory != nil:
		// Phase-reporting factory: the adapter records each call's phase
		// count on the worker, where classAugmentations folds it into the
		// per-class stats (merged per class afterwards, so the totals are
		// worker-count invariant).
		w.newSolver = func(rng *rand.Rand) Solver {
			ps := opts.PhasedSolverFactory(rng)
			return func(b *bipartite.Bip) (*graph.Matching, error) {
				m, phases, err := ps(b)
				w.lastPhases = phases
				return m, err
			}
		}
	case opts.SolverFactory != nil:
		w.newSolver = opts.SolverFactory
	case opts.Solver != nil:
		w.newSolver = func(*rand.Rand) Solver { return opts.Solver }
	default:
		// Default oracle: exact Hopcroft–Karp over a worker-private arena,
		// so the hundreds of solver calls per round stop allocating their
		// adjacency and search state.
		hk := bipartite.NewScratch()
		solver := Solver(func(b *bipartite.Bip) (*graph.Matching, error) {
			res := bipartite.HopcroftKarpScratch(b, hk)
			w.lastPhases = res.Phases
			return res.M, nil
		})
		w.newSolver = func(*rand.Rand) Solver { return solver }
		switch {
		case opts.WarmStart:
			w.warm = newWarmState(hk)
		case opts.RepairCutover >= 0:
			w.repair = &repairState{hk: hk}
		}
	}
	return w
}

// Runner executes Algorithm 3 rounds against one graph, carrying the
// cross-round amortised state (Options.Amortize) between them: the inner
// loop of Solve, exposed so that incremental workloads and the differential
// suite can drive rounds one at a time. A Runner is not safe for concurrent
// use; the graph must not change during the runner's life except through
// ApplyMutations between rounds (the incremental index aliases its edge
// slice and absorbs edits via the change clocks), and the matching passed
// to Round must be the one the previous Round (or ApplyMutations) mutated
// — the incremental index syncs to it by delta.
type Runner struct {
	g       *graph.Graph
	opts    Options
	weights []float64
	am      *amortizer

	// mutPending is set by ApplyMutations after a non-empty batch and
	// cleared by the next Round, which attributes that round's cross-round
	// delta builds to Stats.MutationDeltaBuilds (their baselines predate
	// the edits, so every link crossed the mutation boundary).
	mutPending bool
}

// NewRunner prepares a round runner for g. With opts.Amortize the
// incremental viability index is built here, once, and every subsequent
// Round applies only the matching deltas.
func NewRunner(g *graph.Graph, opts Options) *Runner {
	opts = opts.withDefaults()
	r := &Runner{g: g, opts: opts}
	// Discretisations finer than the incremental index's compact unit
	// storage fall back to the naive path rather than wrap units silently;
	// the amortised pipeline is an optimisation, never a behaviour change.
	if opts.Amortize && layered.CanIndexIncrementally(opts.Layered) {
		r.am = newAmortizer(g, opts)
		r.weights = r.am.weights
	} else {
		r.weights = ClassWeights(g, opts.ClassBase, opts.Layered)
	}
	return r
}

// Round executes one Algorithm 3 round on m: compute AW for every class
// weight (Algorithm 4), then greedily apply non-conflicting augmentations
// from the heaviest class down. It returns the realised gain.
//
// Classes only read (par, m) and are merged by class index, so with
// Workers > 1 the sweep runs on a bounded pool while staying bit-for-bit
// identical to the sequential sweep for a fixed Options.Rng seed.
func Round(g *graph.Graph, m *graph.Matching, opts Options, stats *Stats) (graph.Weight, error) {
	// A fresh Runner per call: with opts.Amortize this rebuilds the
	// incremental index from scratch — the rebuild twin the differential
	// suite compares against a Solve-held Runner's delta-maintained index.
	return NewRunner(g, opts).Round(m, stats)
}

// Round is one Algorithm 3 round through the runner's (possibly amortised)
// state; see the package-level Round.
func (r *Runner) Round(m *graph.Matching, stats *Stats) (graph.Weight, error) {
	g, opts, weights := r.g, r.opts, r.weights

	// First round after a mutation batch: every cross-round link this round
	// has a baseline predating the edits, so the round's CrossRoundDeltaBuilds
	// delta is exactly the chain traffic that crossed the mutation boundary.
	mutBoundary := r.mutPending
	preMutCRDB := stats.CrossRoundDeltaBuilds
	r.mutPending = false

	// One random bipartition per round, shared by every class (the paper
	// parametrises per run of Algorithm 4; sharing only correlates classes,
	// not the per-class analysis).
	par := layered.Parametrize(g.N(), g.Edges(), m, opts.Rng)
	if r.am != nil {
		// Round rung of the degradation ladder: a panic while syncing the
		// amortised context means none of its cross-round state can be
		// trusted, so rebuild the whole context from scratch (bit-identical
		// by the rebuild-twin equivalence the differential suite pins); a
		// second failure disables amortisation for the rest of the run. A
		// Solve never crashes or errors for it either way.
		if err := r.am.safeBeginRound(par); err != nil {
			stats.FallbackResets++
			r.am = newAmortizer(g, opts)
			if err := r.am.safeBeginRound(par); err != nil {
				stats.FallbackResets++
				r.am = nil
			}
		}
	}

	// Split the Rng per class up-front, in class order, so a factory-built
	// solver sees the same stream no matter which worker runs its class.
	// Without a factory the default solvers consume no randomness and the
	// split is skipped to keep the Rng stream (and thus all fixed-seed
	// results) identical to the sequential code path.
	var seeds []int64
	if opts.hasFactory() {
		seeds = make([]int64, len(weights))
		for i := range seeds {
			seeds[i] = opts.Rng.Int63()
		}
	}

	workers := opts.Workers
	if !opts.hasFactory() && opts.Solver != nil {
		workers = 1
	}
	if workers > len(weights) {
		workers = len(weights)
	}

	perClass := make([][]graph.Augmentation, len(weights))
	perStats := make([]Stats, len(weights))
	perErr := make([]error, len(weights))
	runClass := func(w *classWorker, i int) {
		var rng *rand.Rand
		if seeds != nil {
			rng = rand.New(rand.NewSource(seeds[i]))
		}
		var ac *amortClassCtx
		if r.am != nil {
			ac = &r.am.ctxs[i]
			if ac.quarantined {
				// A previous fault quarantined this class's amortised
				// state; it runs the cold path for the rest of the Solve.
				ac = nil
			}
		}
		perClass[i], perErr[i] = classAugmentations(
			par, m, weights[i], w.newSolver(rng), w, opts, &perStats[i], ac)
	}
	// safeRunClass contains a worker panic: the recovered value is recorded
	// as a *PanicError for the fallback pass below, and ok = false tells
	// the caller to discard the worker — its arenas may be mid-mutation.
	// This is what keeps a panicking solver (or an injected chaos panic)
	// from killing the process under Workers > 1.
	safeRunClass := func(w *classWorker, i int) (ok bool) {
		defer func() {
			if p := recover(); p != nil {
				perErr[i] = &PanicError{Class: i, Value: p, Stack: debug.Stack()}
				ok = false
			}
		}()
		runClass(w, i)
		return true
	}
	// Round-scoped dirty gate: a class whose τ windows contain no crossing
	// edge this round enumerates zero surviving pairs (the windows hold no
	// τB candidate at all), so its whole per-class sweep — enumeration,
	// builds, solves — is skipped without changing the merged result. The
	// dirty-gate property tests cross-check the skipped set against naive
	// BucketIndex rebuilds every round. The gate is trusted only while its
	// bitmap passes the digest self-check; a corrupted bitmap degrades the
	// round to the full sweep (always safe — running a clean class yields
	// zero pairs) instead of risking a wrong skip.
	gateOK := true
	if r.am != nil && !r.am.inc.DirtyGateOK() {
		gateOK = false
		stats.FallbackSweeps++
	}
	skipClean := func(i int) bool {
		if r.am == nil || !gateOK || r.am.inc.RoundDirty(i) {
			return false
		}
		stats.ClassesSkippedDirty++
		return true
	}
	if workers <= 1 {
		w := newClassWorker(opts)
		for i := range weights {
			if skipClean(i) {
				continue
			}
			if !safeRunClass(w, i) {
				w = newClassWorker(opts)
			}
		}
	} else {
		var wg sync.WaitGroup
		classes := make(chan int)
		for n := 0; n < workers; n++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				w := newClassWorker(opts)
				for i := range classes {
					if !safeRunClass(w, i) {
						w = newClassWorker(opts)
					}
				}
			}()
		}
		for i := range weights {
			if skipClean(i) {
				continue
			}
			classes <- i
		}
		close(classes)
		wg.Wait()
	}

	// Fallback pass (class rung of the ladder): a recoverable state fault —
	// a recovered panic or an escaped corruption sentinel — quarantines the
	// class's amortised state and re-runs the class through the cold path
	// (naive bucket index, fresh worker arena, replayed class Rng), whose
	// result is bit-identical to a healthy amortised sweep by the
	// differential-suite equivalences. A fault that survives the cold
	// re-run too (e.g. a deterministically panicking installed solver) is
	// not a state fault and propagates as an error — never a crash.
	for i := range weights {
		if perErr[i] == nil || !recoverableFault(perErr[i]) {
			continue
		}
		if r.am != nil {
			r.am.ctxs[i].quarantined = true
		}
		perStats[i] = Stats{FallbackClasses: 1}
		perClass[i], perErr[i] = r.classFallback(par, m, i, seeds, &perStats[i])
	}

	// Deterministic merge: class results concatenate in descending-W
	// (enumeration) order before the greedy disjoint application.
	var all []graph.Augmentation
	for i := range weights {
		stats.accumulate(perStats[i])
		all = append(all, perClass[i]...)
	}
	for i := range weights {
		if perErr[i] != nil {
			return 0, perErr[i]
		}
	}
	gain, applied := graph.ApplyDisjoint(m, all)
	stats.AppliedAugmentations += applied
	stats.Gain += gain
	stats.Rounds++
	if mutBoundary {
		stats.MutationDeltaBuilds += stats.CrossRoundDeltaBuilds - preMutCRDB
	}
	return gain, nil
}

// classFallback is the cold re-run of one class after a recoverable fault:
// a fresh worker arena, the naive bucket index (no amortised context), and
// the class's replayed Rng stream, contained against a second panic. For
// the default solver configuration the result is bit-identical to the
// healthy sweep's; a persistent fault (the re-run failing too) is returned
// as an error for the caller to surface.
func (r *Runner) classFallback(
	par *layered.Parametrized,
	m *graph.Matching,
	i int,
	seeds []int64,
	st *Stats,
) (augs []graph.Augmentation, err error) {
	defer func() {
		if p := recover(); p != nil {
			augs, err = nil, &PanicError{Class: i, Value: p, Stack: debug.Stack()}
		}
	}()
	w := newClassWorker(r.opts)
	var rng *rand.Rand
	if seeds != nil {
		rng = rand.New(rand.NewSource(seeds[i]))
	}
	return classAugmentations(par, m, r.weights[i], w.newSolver(rng), w, r.opts, st, nil)
}

// FindClassAugmentations is Algorithm 4 as a standalone entry point: it
// draws a fresh random bipartition and returns the augmentation set AW for
// the single augmentation class W. Exposed for experiments that probe one
// class (e.g. the paper's 4-cycle example).
func FindClassAugmentations(
	g *graph.Graph,
	m *graph.Matching,
	w float64,
	opts Options,
	stats *Stats,
) ([]graph.Augmentation, error) {
	opts = opts.withDefaults()
	par := layered.Parametrize(g.N(), g.Edges(), m, opts.Rng)
	cw := newClassWorker(opts)
	var rng *rand.Rand
	if opts.hasFactory() {
		rng = rand.New(rand.NewSource(opts.Rng.Int63()))
	}
	return classAugmentations(par, m, w, cw.newSolver(rng), cw, opts, stats, nil)
}

// oracleOf unwraps the class context's survival oracle: non-nil only on the
// amortised path at discretisations the probe's bit tables cover.
func oracleOf(ac *amortClassCtx) (layered.SurvivalOracle, bool) {
	if ac == nil {
		return nil, false
	}
	return ac.view.Oracle()
}

// classAugmentations is Algorithm 4 for one augmentation class W: over all
// good pairs whose weight windows are populated (a bucket-count lookup —
// the same buckets the layered builds then iterate), build the layered
// graph, solve unweighted matching in L', project each augmenting path to
// G, decompose (Lemma 4.11), and keep the best component per path. The
// vertex-disjoint union across pairs is returned.
//
// With an amortised class context, three short-circuits precede the
// build+solve, none of which changes the returned set: the survival probe
// rejects pairs whose layered graph would have no Y edge (exactly the
// pairs the naive loop builds and then skips), the cross-class cache
// replays the candidates of an identical layered graph solved earlier this
// round, and a warm solver seeds Hopcroft–Karp from the previous pair.
//
// Note: Algorithm 4 as analysed returns only the single best pair's set
// A(τA,τB); the union with a shared conflict set is pointwise at least as
// good and converges far faster at coarse granularity, so we take it (every
// element still has positive gain and disjointness is enforced).
func classAugmentations(
	par *layered.Parametrized,
	m *graph.Matching,
	w float64,
	solver Solver,
	cw *classWorker,
	opts Options,
	stats *Stats,
	ac *amortClassCtx,
) ([]graph.Augmentation, error) {
	scratch := cw.scratch
	// Hazard site (chaos testing): panic at the top of an amortised class
	// sweep. The pool recovers it, the fallback pass quarantines the class,
	// and the cold re-run (ac == nil, so this site cannot re-fire) must
	// reproduce the healthy result bit-for-bit.
	if ac != nil && faultinject.Fire(faultinject.WorkerPanic) {
		panic("faultinject: injected worker panic in class sweep")
	}
	var ix layered.Index
	crossRound := false
	if ac != nil {
		ix = ac.view
		if opts.DeltaCutover >= 0 {
			if opts.CrossRoundCutover >= 0 {
				// Cross-round chaining: the class's delta chain lives on a
				// class-private arena so its baseline survives the round
				// boundary (worker arenas are recreated every Round and
				// shuffle between classes under the pool). Lazy — a class
				// that never sweeps never pays for one.
				if ac.scratch == nil {
					ac.scratch = layered.NewScratch()
				}
				scratch = ac.scratch
				crossRound = true
			}
			// The sweep delta-chains this class's builds, so the first
			// pair's from-scratch build must record the diff watermarks.
			scratch.EnableDeltaBaseline()
		}
	} else {
		ix = scratch.Index(par, w, opts.Layered)
	}
	var pairs []layered.TauPair
	preFiltered := false
	if aMask, bMask, ok := ix.Masks(); ok {
		if orc, probeOK := oracleOf(ac); probeOK {
			// Probe-guided enumeration: dead pairs are pruned inside the
			// generation recursion instead of generated and then probed.
			// The pruned count is exactly the set ProbeY would have
			// rejected, so the naive/amortised stats still reconcile.
			var pruned int
			pairs, pruned = layered.EnumerateSurvivingPairs(
				opts.Layered, aMask, bMask, opts.MaxPairsPerClass, orc, ac.enum)
			stats.LayeredBuilt += pruned
			stats.ProbeSkips += pruned
			stats.EnumPruned += pruned
			preFiltered = true
		} else {
			pairs = layered.EnumerateGoodPairsMasked(opts.Layered, aMask, bMask, opts.MaxPairsPerClass)
		}
	} else {
		pairs = layered.EnumerateGoodPairsLimited(opts.Layered,
			func(u int) bool { return u == 0 || ix.ACount(u) > 0 },
			func(u int) bool { return ix.BCount(u) > 0 },
			opts.MaxPairsPerClass,
		)
	}
	if len(pairs) > opts.MaxPairsPerClass {
		pairs = pairs[:opts.MaxPairsPerClass]
	}
	// Warm state: the amortised context's (per class, carried across rounds)
	// takes precedence over the worker's (reset at each class boundary).
	warm := cw.warm
	if ac != nil && ac.warm != nil {
		warm = ac.warm
	} else if warm != nil {
		warm.resetClass()
	}
	rep := cw.repair
	if rep != nil && crossRound {
		// Like the build arena, the repair baseline must be class-private to
		// survive the round boundary; the worker's arena would hand class A's
		// retained CSR to class B next round (the token check would catch it,
		// but every link solve would then fall back cold).
		if ac.rep == nil {
			ac.rep = &repairState{hk: bipartite.NewScratch()}
		}
		rep = ac.rep
	}
	if warm != nil {
		rep = nil
	}
	var cands []candidate
	var key []byte

	// prevLay chains the class-round's builds through the differential
	// builder: every surviving pair after the first patches the previous
	// pair's build (bit-identical to a from-scratch build by construction).
	// Pairs served by the cache never build, so prevLay stays the arena's
	// latest build across hits. Under cross-round chaining it is seeded
	// from the class context, so the first build of a class-round deltas
	// over the previous round's last build — across the redraw.
	var prevLay *layered.Layered
	if crossRound {
		prevLay = ac.prevLay
	}
	for _, tau := range pairs {
		stats.LayeredBuilt++
		keyed := false
		if ac != nil {
			if !preFiltered && !ac.view.ProbeY(tau) {
				stats.ProbeSkips++
				continue
			}
			// Hit-rate gate: a class whose lookups never hit stops paying
			// for keys (and so for bucket digests) for the rest of the
			// Solve. The cache is transparent, so gating cannot change the
			// result — only where the time goes (the E14 uniform tier
			// digested large buckets for a cache that never hit).
			if ac.cache != nil && !ac.cacheOff {
				key = ac.view.PairKey(tau, key[:0])
				keyed = true
				ac.cacheLooks++
				hit, ok, corrupt := ac.cache.get(key)
				if ok {
					ac.cacheHits++
					stats.CacheHits++
					cands = append(cands, hit...)
					continue
				}
				if corrupt {
					// Cache rung of the ladder: the entry failed its
					// checksum self-check and was evicted; the pair falls
					// through to a fresh build + solve (and re-puts a
					// healthy entry below).
					stats.FallbackCacheDrops++
				}
				if gate := cacheGate(opts); gate > 0 && ac.cacheHits == 0 && ac.cacheLooks >= gate {
					ac.cacheOff = true
				}
			}
		}
		var lay *layered.Layered
		crossBuilt := false
		if ac != nil && prevLay != nil && opts.DeltaCutover >= 0 {
			cut := opts.DeltaCutover
			if cut == 0 {
				cut = 1
			}
			link := prevLay.Par != par // baseline from a previous round
			if link && opts.CrossRoundCutover > cut {
				cut = opts.CrossRoundCutover
			}
			if dl, reusedSegs, derr := layered.BuildDelta(ix, prevLay, tau, scratch, cut); derr == nil {
				lay = dl
				stats.DeltaBuilds++
				stats.DeltaLayersReused += reusedSegs
				if link {
					stats.CrossRoundDeltaBuilds++
					crossBuilt = true
				}
			} else {
				// Build rung of the ladder: a rejected baseline (ErrDelta*,
				// real or injected) degrades to the from-scratch build
				// below — bit-identical by construction, never an error.
				stats.FallbackBuilds++
			}
		}
		if lay == nil {
			lay = layered.BuildIndexed(ix, tau, scratch)
		}
		prevLay = lay
		if len(lay.Y) == 0 {
			continue
		}
		lp := lay.LPrimeEdges()
		if len(lp) == 0 {
			continue
		}
		bip := &bipartite.Bip{N: lay.NumV, Side: lay.Sides(), Edges: lp}
		stats.SolverCalls++
		var mPrime *graph.Matching
		switch {
		case warm != nil:
			var phases int
			mPrime, phases = warm.solve(lay, bip)
			stats.SolverPhases += phases
		case rep != nil:
			var phases int
			repairedBefore := stats.RepairSolves
			mPrime, phases = rep.solve(lay, bip, opts.RepairCutover, stats)
			if crossBuilt && stats.RepairSolves > repairedBefore {
				// The patched baseline solve belonged to the previous
				// round: the repair chain crossed the redraw too.
				stats.CrossRoundRepairs++
			}
			stats.SolverPhases += phases
		default:
			cw.lastPhases = 0
			var err error
			mPrime, err = solver(bip)
			if err != nil {
				return nil, err
			}
			stats.SolverPhases += cw.lastPhases
		}
		start := len(cands)
		lay.AugmentingWalks(mPrime, func(walk layered.Walk) {
			if aug, gain, ok := scratch.BestAugmentation(m, walk); ok {
				cands = append(cands, candidate{aug: aug, gain: gain})
			}
		})
		if keyed {
			ac.cache.put(key, cands[start:])
		}
	}
	if crossRound {
		// Hand the chain tail to the class context so next round's first
		// build can link onto it across the redraw.
		ac.prevLay = prevLay
	}

	// Resolve the class's shared conflict set greedily by descending gain
	// (stable, so equal gains keep discovery order and the sweep stays
	// deterministic): all pairs see the same matching, so their candidate
	// sets are independent and best-first dominates discovery order.
	slices.SortStableFunc(cands, func(a, b candidate) int {
		switch {
		case a.gain > b.gain:
			return -1
		case a.gain < b.gain:
			return 1
		}
		return 0
	})
	var chosen []graph.Augmentation
	cw.resetUsed(par.N)
	for _, c := range cands {
		if cw.conflicts(c.aug) {
			continue
		}
		cw.mark(c.aug)
		chosen = append(chosen, c.aug)
	}
	return chosen, nil
}

// Result is the outcome of Solve.
type Result struct {
	M     *graph.Matching
	Stats Stats
}

// effectiveBudget widens the round budget on small graphs: an augmentation
// on |C| vertices survives a bipartition draw with probability 2^(1-|C|)
// (Lemma 4.12), so when n itself is small a few dozen cheap extra draws
// make capture near-certain, whereas the default patience would stall
// flakily. The budget is graded: the smaller the graph, the longer the
// optimal augmentations are relative to n, and the more zero-gain draws a
// single remaining augmentation can survive.
func effectiveBudget(n int, opts Options) (maxRounds, patience int) {
	maxRounds, patience = opts.MaxRounds, opts.Patience
	switch {
	case n <= 12:
		if patience < 48 {
			patience = 48
		}
		if maxRounds < 64 {
			maxRounds = 64
		}
	case n <= 16:
		if patience < 24 {
			patience = 24
		}
		if maxRounds < 64 {
			maxRounds = 64
		}
	}
	return maxRounds, patience
}

// Solve runs the Theorem 1.2 driver: start from the empty matching (or
// initial if non-nil) and iterate Algorithm 3 rounds until MaxRounds or
// until Patience consecutive rounds yield no gain.
func Solve(g *graph.Graph, initial *graph.Matching, opts Options) (Result, error) {
	opts = opts.withDefaults()
	m := graph.NewMatching(g.N())
	if initial != nil {
		m = initial.Clone()
	}
	var stats Stats
	maxRounds, patience := effectiveBudget(g.N(), opts)
	runner := NewRunner(g, opts)
	stalled := 0
	for r := 0; r < maxRounds && stalled < patience; r++ {
		gain, err := runner.Round(m, &stats)
		if err != nil {
			return Result{M: m, Stats: stats}, err
		}
		if opts.Trace != nil {
			opts.Trace(r, m.Weight())
		}
		if gain == 0 {
			stalled++
		} else {
			stalled = 0
		}
	}
	return Result{M: m, Stats: stats}, nil
}
