package core

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/graph"
)

// repairTestSolve runs a fixed-budget amortised Solve on the banded shape
// with the given repair cutover.
func repairTestSolve(t *testing.T, g *graph.Graph, cutover, workers int) Result {
	t.Helper()
	res, err := Solve(g, nil, Options{
		Amortize:      true,
		RepairCutover: cutover,
		Workers:       workers,
		Rng:           rand.New(rand.NewSource(17)),
		MaxRounds:     4,
		Patience:      4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestRepairSolveBitIdentical is the core-level repair differential: at
// every cutover setting the final matching, the phase counts, and the
// applied augmentations equal the repair-disabled run's (Invariant 21).
// The family-wide sweep lives in internal/solvertest.
func TestRepairSolveBitIdentical(t *testing.T) {
	inst := graph.BandedWeights(48, 8*48, 100, rand.New(rand.NewSource(4)))
	ref := repairTestSolve(t, inst.G, -1, 1)
	if ref.Stats.RepairSolves != 0 {
		t.Fatalf("disabled run recorded %d repair solves", ref.Stats.RepairSolves)
	}
	for _, cutover := range []int{0, 1, 4} {
		got := repairTestSolve(t, inst.G, cutover, 1)
		sameMatching(t, "repair vs scratch", ref.M, got.M)
		if got.Stats.SolverPhases != ref.Stats.SolverPhases {
			t.Fatalf("cutover %d: phases %d, want %d", cutover, got.Stats.SolverPhases, ref.Stats.SolverPhases)
		}
		if got.Stats.AppliedAugmentations != ref.Stats.AppliedAugmentations {
			t.Fatalf("cutover %d: applied %d, want %d", cutover, got.Stats.AppliedAugmentations, ref.Stats.AppliedAugmentations)
		}
	}
	if got := repairTestSolve(t, inst.G, 0, 1); got.Stats.RepairSolves == 0 {
		t.Fatal("default cutover never repaired on the banded shape")
	}
}

// TestRepairParallelWorkers pins worker-count invariance of the repair
// path — chains are worker-local, results must not be — and, run under
// -race in CI, is the concurrency net for the per-worker retained arenas
// at Workers=4. The cross-class cache's hit placement is scheduling-
// dependent under a worker pool (values are pure, so results are not), so
// the assertion covers the matching and the scheduling-independent
// counters, with SolverCalls+CacheHits invariant as a sum.
func TestRepairParallelWorkers(t *testing.T) {
	inst := graph.BandedWeights(48, 8*48, 100, rand.New(rand.NewSource(4)))
	ref := repairTestSolve(t, inst.G, 0, 1)
	for _, workers := range []int{2, 4} {
		got := repairTestSolve(t, inst.G, 0, workers)
		sameMatching(t, "parallel repair", ref.M, got.M)
		if got.Stats.Gain != ref.Stats.Gain ||
			got.Stats.AppliedAugmentations != ref.Stats.AppliedAugmentations ||
			got.Stats.Rounds != ref.Stats.Rounds ||
			got.Stats.LayeredBuilt != ref.Stats.LayeredBuilt ||
			got.Stats.EnumPruned != ref.Stats.EnumPruned ||
			got.Stats.ClassesSkippedDirty != ref.Stats.ClassesSkippedDirty {
			t.Fatalf("workers=%d: stats %+v, want %+v", workers, got.Stats, ref.Stats)
		}
		if s, r := got.Stats.SolverCalls+got.Stats.CacheHits, ref.Stats.SolverCalls+ref.Stats.CacheHits; s != r {
			t.Fatalf("workers=%d: solves+hits %d, want %d", workers, s, r)
		}
		if got.Stats.RepairSolves == 0 {
			t.Fatalf("workers=%d: repair never engaged", workers)
		}
	}
}

// TestPhasedSolverFactoryCountsPhases pins the satellite bugfix: an
// installed factory used to leave Stats.SolverPhases silently 0; a
// PhasedSolverFactory must reproduce the default path's phase ledger
// exactly, sequentially and across worker counts.
func TestPhasedSolverFactoryCountsPhases(t *testing.T) {
	inst := graph.PlantedMatching(60, 300, 100, 200, rand.New(rand.NewSource(8)))
	run := func(opts Options) Stats {
		t.Helper()
		opts.Rng = rand.New(rand.NewSource(23))
		opts.MaxRounds, opts.Patience = 4, 4
		res, err := Solve(inst.G, nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats
	}
	// Ground truth: a sequential run whose solvers also accumulate their
	// phase counts into a test-side counter — Stats.SolverPhases must be
	// exactly that sum, not a silent zero. (Factory runs draw per-class
	// Rng seeds, so their rounds are not comparable to the default
	// config's; parity is asserted within the factory world.)
	truth := 0
	counting := func(*rand.Rand) PhasedSolver {
		ps := ExactPhasedSolver()
		return func(b *bipartite.Bip) (*graph.Matching, int, error) {
			m, phases, err := ps(b)
			truth += phases // sequential sweep: no synchronisation needed
			return m, phases, err
		}
	}
	seq := run(Options{PhasedSolverFactory: counting})
	if seq.SolverPhases == 0 {
		t.Fatal("factory-path phases still 0 — the counting never happened")
	}
	if seq.SolverPhases != truth {
		t.Fatalf("factory phases %d, solvers observed %d", seq.SolverPhases, truth)
	}
	par := run(Options{PhasedSolverFactory: func(*rand.Rand) PhasedSolver { return ExactPhasedSolver() }, Workers: 4})
	if par != seq {
		t.Fatalf("parallel factory stats %+v, sequential %+v", par, seq)
	}

	// The plain SolverFactory's silent zero is the documented gap the
	// phased variant closes; pin it so the doc stays true.
	plain := run(Options{SolverFactory: func(*rand.Rand) Solver {
		hk := bipartite.NewScratch()
		return func(b *bipartite.Bip) (*graph.Matching, error) {
			return bipartite.HopcroftKarpScratch(b, hk).M, nil
		}
	}})
	if plain.SolverPhases != 0 {
		t.Fatalf("plain factory phases = %d, expected the documented 0", plain.SolverPhases)
	}
}

// TestCacheGateTransparent pins the satellite-2 contract: gating the
// cross-class cache by hit rate — at any budget, including the immediate
// gate — never changes the result, only how often the cache is consulted.
func TestCacheGateTransparent(t *testing.T) {
	inst := graph.PlantedMatching(60, 300, 100, 200, rand.New(rand.NewSource(12)))
	run := func(gate int) (Result, Stats) {
		t.Helper()
		res, err := Solve(inst.G, nil, Options{
			Amortize:  true,
			CacheGate: gate,
			Rng:       rand.New(rand.NewSource(31)),
			MaxRounds: 5,
			Patience:  5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, res.Stats
	}
	ref, refStats := run(-1) // gate disabled: every lookup keys and digests
	for _, gate := range []int{0, 1, 4} {
		got, gotStats := run(gate)
		sameMatching(t, "gated cache", ref.M, got.M)
		if gotStats.Gain != refStats.Gain {
			t.Fatalf("gate %d: gain %d, want %d", gate, gotStats.Gain, refStats.Gain)
		}
		if gotStats.CacheHits > refStats.CacheHits {
			t.Fatalf("gate %d: more hits (%d) than ungated (%d)?", gate, gotStats.CacheHits, refStats.CacheHits)
		}
	}
	if _, one := run(1); one.CacheHits >= refStats.CacheHits && refStats.CacheHits > 0 {
		// An immediate gate shuts hitless classes after one lookup; with
		// any real hit traffic the gated run must consult the cache less.
		t.Fatalf("gate 1 did not reduce cache traffic: %d vs %d", one.CacheHits, refStats.CacheHits)
	}
}

// TestStatsAccumulateComplete guards the merge half of the counter sweep:
// folding a Stats whose every field is nonzero must reproduce each field —
// a hand-maintained merge list that forgot a future counter would fail
// here (the printing half is pinned in cmd/augrun and internal/bench).
func TestStatsAccumulateComplete(t *testing.T) {
	var src Stats
	sv := reflect.ValueOf(&src).Elem()
	for i := 0; i < sv.NumField(); i++ {
		sv.Field(i).SetInt(int64(i + 1))
	}
	var dst Stats
	dst.accumulate(src)
	dst.accumulate(src)
	dv := reflect.ValueOf(dst)
	for i := 0; i < dv.NumField(); i++ {
		if got, want := dv.Field(i).Int(), int64(2*(i+1)); got != want {
			t.Errorf("field %s: accumulated %d, want %d", dv.Type().Field(i).Name, got, want)
		}
	}
}
