package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/layered"
)

// TestCrossRoundChaining is the core-level differential for the PR 7
// tentpole: with cross-round chaining on (the default) a Solve must return
// the bit-identical matching, gain, and solver phase count of the
// round-local baseline (CrossRoundCutover < 0), while actually linking
// chains across the bipartition redraw (CrossRoundDeltaBuilds > 0) — and
// the baseline must never link (the counter pins the knob's off semantics).
func TestCrossRoundChaining(t *testing.T) {
	g := fallbackTestInstance()
	on := Options{Amortize: true, MaxRounds: 8, Rng: rand.New(rand.NewSource(21))}
	got, err := Solve(g, nil, on)
	if err != nil {
		t.Fatal(err)
	}
	off := Options{Amortize: true, MaxRounds: 8, CrossRoundCutover: -1,
		Rng: rand.New(rand.NewSource(21))}
	want, err := Solve(g, nil, off)
	if err != nil {
		t.Fatal(err)
	}
	if !equalMatchings(got.M, want.M) {
		t.Fatalf("cross-round run diverged: weight %d vs %d", got.M.Weight(), want.M.Weight())
	}
	if got.Stats.Gain != want.Stats.Gain || got.Stats.SolverPhases != want.Stats.SolverPhases ||
		got.Stats.SolverCalls != want.Stats.SolverCalls || got.Stats.Rounds != want.Stats.Rounds {
		t.Fatalf("cross-round run's result counters diverged:\n got %+v\nwant %+v", got.Stats, want.Stats)
	}
	if got.Stats.CrossRoundDeltaBuilds == 0 {
		t.Error("cross-round chaining on, but no chain crossed a round boundary")
	}
	if want.Stats.CrossRoundDeltaBuilds != 0 || want.Stats.CrossRoundRepairs != 0 {
		t.Errorf("CrossRoundCutover=-1 still linked across rounds: %+v", want.Stats)
	}
	// Healthy chains never touch the ladder, cross-round links included.
	if got.Stats.FallbackBuilds != 0 || got.Stats.FallbackSolves != 0 {
		t.Errorf("healthy cross-round run hit fallback rungs: %+v", got.Stats)
	}
}

// repeatSource is a rand.Source whose stream repeats with a fixed period,
// so every Parametrize of a Runner draws the IDENTICAL bipartition each
// round (the default solver consumes no randomness between rounds). The
// stable redraw is the best case for the cross-round chain — and the only
// deterministic way to pin CrossRoundRepairs > 0, since a uniform redraw
// rarely leaves a whole τ window's buckets untouched.
type repeatSource struct {
	vals []int64
	i    int
}

func (s *repeatSource) Int63() int64 {
	v := s.vals[s.i%len(s.vals)]
	s.i++
	return v
}
func (s *repeatSource) Seed(int64) {}

// TestCrossRoundRepairChains pins the repair side of the tentpole: under a
// side-stable redraw the first build of a class-round deltas over the
// previous round's last build with a non-empty kept prefix, and the repair
// chain extends across the boundary with it (CrossRoundRepairs > 0) — with
// results still bit-identical to the round-local baseline.
func TestCrossRoundRepairChains(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := graph.BandedWeights(60, 8*60, 100, rng).G
	src := rand.New(rand.NewSource(13))
	vals := make([]int64, g.N())
	for i := range vals {
		vals[i] = src.Int63()
	}
	on := Options{Amortize: true, MaxRounds: 6, Rng: rand.New(&repeatSource{vals: vals})}
	got, err := Solve(g, nil, on)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.CrossRoundDeltaBuilds == 0 {
		t.Fatalf("stable redraw produced no cross-round builds: %+v", got.Stats)
	}
	if got.Stats.CrossRoundRepairs == 0 {
		t.Fatalf("stable redraw produced no cross-round repairs: %+v", got.Stats)
	}
	off := Options{Amortize: true, MaxRounds: 6, CrossRoundCutover: -1,
		Rng: rand.New(&repeatSource{vals: vals})}
	want, err := Solve(g, nil, off)
	if err != nil {
		t.Fatal(err)
	}
	if !equalMatchings(got.M, want.M) || got.Stats.SolverPhases != want.Stats.SolverPhases {
		t.Fatalf("cross-round repair run diverged from round-local baseline:\n got %+v\nwant %+v",
			got.Stats, want.Stats)
	}
}

// TestCrossRoundCutoverGate pins the positive-value semantics: a link gate
// higher than any real reuse forces every round link to rebuild in place
// (the link build still counts — the chain stays connected — but reuses
// nothing at the boundary), bit-identically.
func TestCrossRoundCutoverGate(t *testing.T) {
	g := fallbackTestInstance()
	gated := Options{Amortize: true, MaxRounds: 6, CrossRoundCutover: 1 << 20,
		Rng: rand.New(rand.NewSource(5))}
	got, err := Solve(g, nil, gated)
	if err != nil {
		t.Fatal(err)
	}
	base := Options{Amortize: true, MaxRounds: 6, Rng: rand.New(rand.NewSource(5))}
	want, err := Solve(g, nil, base)
	if err != nil {
		t.Fatal(err)
	}
	if !equalMatchings(got.M, want.M) {
		t.Fatalf("gated run diverged: weight %d vs %d", got.M.Weight(), want.M.Weight())
	}
	if got.Stats.CrossRoundDeltaBuilds == 0 {
		t.Error("gated link builds should still chain (rebuild in place), not restart")
	}
}

// TestBeginRoundBusyAbsorbed: the index's BeginRound misuse sentinel
// (layered.ErrBeginRoundBusy) surfaces through beginRound as an error, and
// the reset rung absorbs it exactly like a setup panic — rebuild once on a
// transient fault, disable amortisation on a persistent one, bit-identical
// matching either way.
func TestBeginRoundBusyAbsorbed(t *testing.T) {
	g := fallbackTestInstance()
	clean := Options{Amortize: true, MaxRounds: 6, Rng: rand.New(rand.NewSource(4))}
	want, err := Solve(g, nil, clean)
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}

	t.Run("transient", func(t *testing.T) {
		calls := 0
		testBeginRoundErr = func() error {
			calls++
			if calls == 1 {
				return layered.ErrBeginRoundBusy
			}
			return nil
		}
		defer func() { testBeginRoundErr = nil }()
		opts := Options{Amortize: true, MaxRounds: 6, Rng: rand.New(rand.NewSource(4))}
		got, err := Solve(g, nil, opts)
		if err != nil {
			t.Fatalf("transient busy sentinel must recover, got: %v", err)
		}
		if got.Stats.FallbackResets != 1 {
			t.Errorf("FallbackResets = %d, want 1", got.Stats.FallbackResets)
		}
		if !equalMatchings(got.M, want.M) {
			t.Errorf("reset run diverged: weight %d vs %d", got.M.Weight(), want.M.Weight())
		}
	})

	t.Run("persistent", func(t *testing.T) {
		testBeginRoundErr = func() error { return layered.ErrBeginRoundBusy }
		defer func() { testBeginRoundErr = nil }()
		opts := Options{Amortize: true, MaxRounds: 6, Rng: rand.New(rand.NewSource(4))}
		got, err := Solve(g, nil, opts)
		if err != nil {
			t.Fatalf("persistent busy sentinel must disable amortisation, got: %v", err)
		}
		if got.Stats.FallbackResets != 2 {
			t.Errorf("FallbackResets = %d, want 2 (rebuild once, then disable)", got.Stats.FallbackResets)
		}
		if !equalMatchings(got.M, want.M) {
			t.Errorf("de-amortised run diverged: weight %d vs %d", got.M.Weight(), want.M.Weight())
		}
	})
}
