package core

// This file holds the degradation ladder's error taxonomy: the recoverable
// state faults — recovered worker panics and the checked corruption
// sentinels of the retained amortised state — that Round quarantines and
// re-runs through the cold path instead of surfacing to the Solve caller.
// Everything else (a caller-installed solver's contract error, an
// exhausted fallback) still propagates; the ladder narrows the blast
// radius of state faults, it does not swallow real errors.

import (
	"errors"
	"fmt"

	"repro/internal/bipartite"
	"repro/internal/layered"
)

// PanicError wraps a panic recovered from the class sweep (or, with
// Class = -1, from the amortised round setup). The worker pool recovers
// every panic — a worker goroutine must never kill the process — and hands
// it to the fallback pass as one of these; if the cold re-run fails too,
// the PanicError is what the Solve caller sees.
type PanicError struct {
	// Class is the class index whose sweep panicked, or -1 for the
	// round-scoped amortised setup.
	Class int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack at recovery time.
	Stack []byte
}

func (e *PanicError) Error() string {
	scope := fmt.Sprintf("class %d sweep", e.Class)
	if e.Class < 0 {
		scope = "amortised round setup"
	}
	return fmt.Sprintf("core: recovered panic in %s: %v", scope, e.Value)
}

// stateFaultSentinels are the checked corruption errors of the retained
// amortised state. None of them should ever escape classAugmentations —
// every producing site falls back inline (and the audit tests pin that) —
// but under the ladder's contract an escaped sentinel is still a
// recoverable state fault, handled by quarantine + cold re-run rather than
// surfaced to the Solve caller.
var stateFaultSentinels = []error{
	layered.ErrDeltaNoBase,
	layered.ErrDeltaDetached,
	layered.ErrDeltaScratch,
	layered.ErrDeltaStale,
	layered.ErrDeltaMismatch,
	bipartite.ErrRepairNoBase,
	bipartite.ErrRepairStale,
	bipartite.ErrRepairInfo,
}

// recoverableFault reports whether err is a state fault the ladder may
// absorb: a recovered panic or one of the corruption sentinels.
func recoverableFault(err error) bool {
	var pe *PanicError
	if errors.As(err, &pe) {
		return true
	}
	for _, s := range stateFaultSentinels {
		if errors.Is(err, s) {
			return true
		}
	}
	return false
}
