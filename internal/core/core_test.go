package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/layered"
	"repro/internal/matchutil"
)

func TestClassWeights(t *testing.T) {
	g := graph.New(4)
	g.MustAddEdge(0, 1, 8)
	g.MustAddEdge(2, 3, 64)
	ws := ClassWeights(g, 2, layered.Params{}.WithDefaults())
	if len(ws) == 0 {
		t.Fatal("no class weights")
	}
	for i := 1; i < len(ws); i++ {
		if ws[i] >= ws[i-1] {
			t.Fatal("class weights not descending")
		}
	}
	if ws[len(ws)-1] > 8 {
		t.Errorf("smallest class %v misses light edges", ws[len(ws)-1])
	}
	if ws[0] < 64 {
		t.Errorf("largest class %v misses heavy edges", ws[0])
	}
	if ClassWeights(graph.New(3), 2, layered.Params{}.WithDefaults()) != nil {
		t.Error("edgeless graph should have no classes")
	}
}

func TestSolveReachesOptimumOnPath(t *testing.T) {
	// Figure-1 instance: path 0-1-2-3 with weights 4,5,4; optimum 8 needs
	// the 3-augmentation through the layered machinery starting from the
	// greedy-style matching {1-2}.
	g := graph.New(4)
	g.MustAddEdge(0, 1, 4)
	g.MustAddEdge(1, 2, 5)
	g.MustAddEdge(2, 3, 4)
	initial := graph.NewMatching(4)
	if err := initial.Add(graph.Edge{U: 1, V: 2, W: 5}); err != nil {
		t.Fatal(err)
	}
	res, err := Solve(g, initial, Options{Rng: rand.New(rand.NewSource(1)), MaxRounds: 60, Patience: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.M.Weight() != 8 {
		t.Errorf("weight = %d, want 8 (stats %+v)", res.M.Weight(), res.Stats)
	}
}

func TestSolveFindsAugmentingCycle(t *testing.T) {
	// The Section 1.1.2 cycle: 4-cycle with weights (24,32,24,32); the
	// initial matching is perfect (both 24s), so only an augmenting CYCLE
	// improves it, exercising the blow-up representation: the cycle appears
	// in a 5-layer graph as the repeated alternating path e1 o1 e2 o2 e1.
	g := graph.New(4)
	g.MustAddEdge(0, 1, 24) // e1
	g.MustAddEdge(1, 2, 32) // o1
	g.MustAddEdge(2, 3, 24) // e2
	g.MustAddEdge(3, 0, 32) // o2
	initial := graph.NewMatching(4)
	if err := initial.Add(graph.Edge{U: 0, V: 1, W: 24}); err != nil {
		t.Fatal(err)
	}
	if err := initial.Add(graph.Edge{U: 2, V: 3, W: 24}); err != nil {
		t.Fatal(err)
	}
	res, err := Solve(g, initial, Options{
		Rng:       rand.New(rand.NewSource(3)),
		MaxRounds: 80,
		Patience:  20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.M.Weight() != 64 {
		t.Errorf("weight = %d, want 64 via augmenting cycle (stats %+v)", res.M.Weight(), res.Stats)
	}
}

func TestFindClassAugmentationsCycleClassW64(t *testing.T) {
	// Same cycle, single class W=64 probed directly: matched weight 24 sits
	// in unit 3 (window (16,24] of gW=8) and unmatched 32 in unit 4
	// (window [32,40)), so the pair τA=(3,3,3,3,3), τB=(4,4,4,4) is good
	// (Στ_B−Στ_A = 1 unit) and captures the doubled cycle whenever the
	// random bipartition alternates around it (probability 1/8 per draw).
	g := graph.New(4)
	g.MustAddEdge(0, 1, 24)
	g.MustAddEdge(1, 2, 32)
	g.MustAddEdge(2, 3, 24)
	g.MustAddEdge(3, 0, 32)
	m := graph.NewMatching(4)
	if err := m.Add(graph.Edge{U: 0, V: 1, W: 24}); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(graph.Edge{U: 2, V: 3, W: 24}); err != nil {
		t.Fatal(err)
	}
	opts := Options{Rng: rand.New(rand.NewSource(1))}
	var stats Stats
	found := false
	for try := 0; try < 80 && !found; try++ {
		augs, err := FindClassAugmentations(g, m, 64, opts, &stats)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range augs {
			if a.Gain() == 16 {
				found = true
				cp := m.Clone()
				if _, err := graph.Apply(cp, a); err != nil {
					t.Fatalf("cycle augmentation does not apply: %v", err)
				}
				if cp.Weight() != 64 {
					t.Fatalf("applied weight = %d", cp.Weight())
				}
			}
		}
	}
	if !found {
		t.Fatalf("augmenting cycle not captured in 80 bipartition draws (stats %+v)", stats)
	}
}

func TestSolveNearOptimalOnPlanted(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 5; trial++ {
		inst := graph.PlantedMatching(60, 300, 100, 200, rng)
		res, err := Solve(inst.G, nil, Options{Rng: rng, MaxRounds: 40, Patience: 5})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.M.Validate(); err != nil {
			t.Fatal(err)
		}
		ratio := matchutil.Ratio(res.M, inst.OptWeight)
		if ratio < 0.9 {
			t.Errorf("trial %d: ratio %.4f below 0.9 (stats %+v)", trial, ratio, res.Stats)
		}
	}
}

func TestSolveAgainstExactSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var worst float64 = 1
	for trial := 0; trial < 10; trial++ {
		inst := graph.RandomGraph(14, 40, 64, rng)
		opt, err := matchutil.MaxWeightExact(inst.G)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Solve(inst.G, nil, Options{
			Rng: rng, MaxRounds: 40, Patience: 6,
			// Finer granularity = smaller effective ε: at g=1/16 the
			// measured worst-case ratio on this family is ~0.89 (see
			// EXPERIMENTS.md E4 ablation; at g=1/8 it is ~0.78).
			Layered: layered.Params{Granularity: 0.0625},
		})
		if err != nil {
			t.Fatal(err)
		}
		r := matchutil.Ratio(res.M, opt.Weight())
		if r < worst {
			worst = r
		}
	}
	if worst < 0.8 {
		t.Errorf("worst ratio vs exact = %.4f, want >= 0.8", worst)
	}
}

func TestSolveMonotoneWeight(t *testing.T) {
	// Invariant 9: weight never decreases across rounds.
	rng := rand.New(rand.NewSource(6))
	inst := graph.PlantedMatching(40, 200, 50, 120, rng)
	m := graph.NewMatching(inst.G.N())
	opts := Options{Rng: rng}
	var stats Stats
	prev := m.Weight()
	for round := 0; round < 10; round++ {
		if _, err := Round(inst.G, m, opts, &stats); err != nil {
			t.Fatal(err)
		}
		if m.Weight() < prev {
			t.Fatalf("round %d decreased weight %d -> %d", round, prev, m.Weight())
		}
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
		prev = m.Weight()
	}
}

func TestSolveWithApproxSolver(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	inst := graph.PlantedMatching(40, 150, 100, 150, rng)
	res, err := Solve(inst.G, nil, Options{
		Solver: ApproxSolver(0.2),
		Rng:    rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ratio := matchutil.Ratio(res.M, inst.OptWeight); ratio < 0.8 {
		t.Errorf("ratio with approx solver = %.4f", ratio)
	}
}

func TestSolveEmptyGraph(t *testing.T) {
	res, err := Solve(graph.New(5), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.M.Size() != 0 {
		t.Error("empty graph produced a matching")
	}
}

func TestRoundStatsAccumulate(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	inst := graph.PlantedMatching(30, 100, 50, 100, rng)
	var stats Stats
	m := graph.NewMatching(inst.G.N())
	if _, err := Round(inst.G, m, Options{Rng: rng}, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != 1 {
		t.Errorf("rounds = %d", stats.Rounds)
	}
	if stats.SolverCalls == 0 {
		t.Error("no solver calls recorded")
	}
	if stats.Gain != m.Weight() {
		t.Errorf("gain %d != matching weight %d from empty start", stats.Gain, m.Weight())
	}
}

func TestViabilityFiltering(t *testing.T) {
	// With a single edge weight, only matching τ units survive; pair
	// enumeration must collapse to a handful.
	g := graph.New(4)
	g.MustAddEdge(0, 1, 64)
	g.MustAddEdge(2, 3, 64)
	m := graph.NewMatching(4)
	side := []bool{false, true, false, true}
	par := layered.ParametrizeWithSide(4, g.Edges(), m, side)
	prm := layered.Params{}.WithDefaults()
	idx := layered.NewBucketIndex(par, 64, prm)
	maxU, _ := prm.Units()
	// All edges unmatched with weight 64 = W: unit floor(64/8/1... ) = 8.
	nonZero := 0
	for u := 0; u <= maxU; u++ {
		if idx.BCount(u) > 0 {
			if u != 8 {
				t.Errorf("unexpected populated B unit %d", u)
			}
			nonZero++
		}
	}
	if nonZero != 1 {
		t.Errorf("populated B units = %d, want 1", nonZero)
	}
	for u := 0; u <= maxU; u++ {
		if idx.ACount(u) != 0 {
			t.Error("A units populated without matched edges")
		}
	}
}

func TestSolveTraceMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	inst := graph.PlantedMatching(30, 120, 100, 200, rng)
	var curve []graph.Weight
	_, err := Solve(inst.G, nil, Options{
		Rng:       rng,
		MaxRounds: 8,
		Patience:  8,
		Trace: func(round int, w graph.Weight) {
			curve = append(curve, w)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) == 0 {
		t.Fatal("trace not invoked")
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1] {
			t.Fatalf("trace not monotone at round %d: %v", i, curve)
		}
	}
}

func TestClassWeightsIncludeAnchored(t *testing.T) {
	// The anchored family must contain maxW/(g*u); for maxW=32, g=1/8,
	// u=4 that is exactly 64 — the weight that captures the canonical
	// cycle (see TestFindClassAugmentationsCycleClassW64).
	g := graph.New(4)
	g.MustAddEdge(0, 1, 24)
	g.MustAddEdge(1, 2, 32)
	ws := ClassWeights(g, 2, layered.Params{}.WithDefaults())
	found := false
	for _, w := range ws {
		if w > 63.9 && w < 64.1 {
			found = true
		}
	}
	if !found {
		t.Errorf("anchored weight 64 missing from %v", ws)
	}
}
