package core

// Fully-dynamic mutation stream (PR 8): between rounds, a Runner's graph
// may gain, lose, and reweight edges. ApplyMutations applies a batch in
// order, keeping the three stateful parties in lockstep per edit — the
// graph's edge store (append / swap-remove / in-place, the order semantics
// of graph/mutate.go), the matching for edits that touch a matched pair,
// and the incremental index via its edit protocol, which charges the
// touched buckets to the same per-(class, unit) change clocks BeginRound
// stamps for bipartition redraws. An edit is therefore "just another epoch
// bump": BuildDelta's stability gates and the grouped-Y revalidation
// absorb it with no new invariants, and the next Round is bit-identical to
// a cold Solve round on the post-edit graph — the property the edit-stream
// differential suite in internal/solvertest pins for every workload
// family.
//
// The one edit the index cannot absorb in place is a move of the
// class-weight ladder itself (the graph's minimum or maximum edge weight
// changed): every band, bucket, and class view derives from the ladder, so
// ApplyMutations detects the move by recomputing ClassWeights and rebuilds
// the amortised context from scratch (Stats.MutationIndexResets) — the
// same rebuild-twin equivalence the degradation ladder's reset rung relies
// on, so bit-identity is preserved by construction.

import (
	"errors"
	"fmt"

	"repro/internal/graph"
)

// ErrNoSuchEdge: a delete or reweight named an endpoint pair with no edge
// in the graph. The batch stops at the failing op; earlier ops stay
// applied (each op leaves the graph/matching/index trio consistent).
var ErrNoSuchEdge = errors.New("core: mutation names a nonexistent edge")

// MutationOp is the kind of one graph edit.
type MutationOp uint8

const (
	// MutInsert appends a new edge (u, v, w).
	MutInsert MutationOp = iota
	// MutDelete removes the edge (u, v); a matched pair is unmatched first.
	MutDelete
	// MutReweight sets the weight of the edge (u, v) to w, updating the
	// matching's stored weight when the pair is matched.
	MutReweight
)

// Mutation is one graph edit. Endpoints identify the edge for delete and
// reweight (first match wins among parallel edges, graph.FindEdge order).
type Mutation struct {
	Op   MutationOp
	U, V int
	W    graph.Weight // insert and reweight; ignored for delete
}

// MutationBatch is an ordered list of edits applied atomically between two
// rounds. The zero value is an empty batch; the builder methods append and
// return the receiver for chaining.
type MutationBatch struct {
	ops []Mutation
}

// InsertEdge appends an edge-insert to the batch.
func (b *MutationBatch) InsertEdge(u, v int, w graph.Weight) *MutationBatch {
	b.ops = append(b.ops, Mutation{Op: MutInsert, U: u, V: v, W: w})
	return b
}

// DeleteEdge appends an edge-delete to the batch.
func (b *MutationBatch) DeleteEdge(u, v int) *MutationBatch {
	b.ops = append(b.ops, Mutation{Op: MutDelete, U: u, V: v})
	return b
}

// ReweightEdge appends a weight change to the batch.
func (b *MutationBatch) ReweightEdge(u, v int, w graph.Weight) *MutationBatch {
	b.ops = append(b.ops, Mutation{Op: MutReweight, U: u, V: v, W: w})
	return b
}

// Extend appends another batch's edits in their application order —
// the all-or-nothing splice a service queue needs once a request has been
// validated in full (cmd/augserve rejects a bad request without queueing
// its valid prefix).
func (b *MutationBatch) Extend(ops []Mutation) *MutationBatch {
	b.ops = append(b.ops, ops...)
	return b
}

// Len returns the number of edits in the batch.
func (b *MutationBatch) Len() int {
	if b == nil {
		return 0
	}
	return len(b.ops)
}

// Ops returns the batch's edits in application order (aliased, not copied).
func (b *MutationBatch) Ops() []Mutation {
	if b == nil {
		return nil
	}
	return b.ops
}

// ApplyMutations applies the batch to the runner's graph (and to m, for
// edits touching matched pairs) between rounds, maintaining the amortised
// state through the index's edit protocol. On success the next Round is
// bit-identical to a cold round on the post-edit graph; matched-side
// effects (a deleted or reweighted matched edge) ride the same merge-diff
// path an augmentation does, so they need no special casing here beyond
// the matching update itself.
//
// A failing op (ErrNoSuchEdge, a graph validation error) stops the batch;
// the ops before it remain applied and the runner stays consistent. An
// empty or nil batch is a strict no-op.
func (r *Runner) ApplyMutations(batch *MutationBatch, m *graph.Matching, stats *Stats) error {
	if batch.Len() == 0 {
		return nil
	}
	// Open the index's edit window. A busy index (the misuse sentinel)
	// means its clocks cannot absorb this batch: fall through with note
	// disabled and rebuild the context wholesale below — the ladder's
	// reset rung, bit-identical by the rebuild-twin equivalence.
	note := false
	if r.am != nil {
		if err := r.am.inc.BeginEdits(); err != nil {
			stats.FallbackResets++
		} else {
			note = true
		}
	}
	var firstErr error
	for _, op := range batch.ops {
		if err := r.applyOne(op, m, note); err != nil {
			firstErr = err
			break
		}
		stats.MutationsApplied++
	}
	if note {
		r.am.inc.EndEdits()
	}
	r.mutPending = true

	// Ladder check: if the batch moved the class-weight ladder, the index
	// geometry is stale and the amortised context must be rebuilt on the
	// post-edit graph (the naive path just adopts the new ladder).
	ws := ClassWeights(r.g, r.opts.ClassBase, r.opts.Layered)
	switch {
	case !note && r.am != nil:
		r.am = newAmortizer(r.g, r.opts)
		r.weights = r.am.weights
	case !floatsEqual(ws, r.weights):
		stats.MutationIndexResets++
		if r.am != nil {
			r.am = newAmortizer(r.g, r.opts)
			r.weights = r.am.weights
		} else {
			r.weights = ws
		}
	}
	return firstErr
}

// applyOne applies a single edit to the graph, matching, and (when note is
// set) the incremental index, in that order.
func (r *Runner) applyOne(op Mutation, m *graph.Matching, note bool) error {
	g := r.g
	switch op.Op {
	case MutInsert:
		if err := g.AddEdge(graph.Edge{U: op.U, V: op.V, W: op.W}); err != nil {
			return err
		}
		if note {
			r.am.inc.NoteInsert(g.Edges())
		}
	case MutDelete:
		i, ok := g.FindEdge(op.U, op.V)
		if !ok {
			return fmt.Errorf("%w: delete (%d,%d)", ErrNoSuchEdge, op.U, op.V)
		}
		if m != nil && m.Has(op.U, op.V) {
			if err := m.Remove(op.U, op.V); err != nil {
				return err
			}
		}
		moved, err := g.RemoveEdgeAt(i)
		if err != nil {
			return err
		}
		if note {
			r.am.inc.NoteRemove(i, moved, g.Edges())
		}
	case MutReweight:
		i, ok := g.FindEdge(op.U, op.V)
		if !ok {
			return fmt.Errorf("%w: reweight (%d,%d)", ErrNoSuchEdge, op.U, op.V)
		}
		if err := g.SetEdgeWeight(i, op.W); err != nil {
			return err
		}
		if m != nil && m.Has(op.U, op.V) {
			if err := m.Reweight(op.U, op.V, op.W); err != nil {
				return err
			}
		}
		if note {
			r.am.inc.NoteReweight(i, g.Edges())
		}
	default:
		return fmt.Errorf("core: unknown mutation op %d", op.Op)
	}
	return nil
}

// Tick is the service loop step: apply one mutation batch, then run rounds
// until the matching re-converges (Patience consecutive zero-gain rounds)
// or the round budget is exhausted — the same stall policy Solve uses. It
// returns the total gain of the tick's rounds; note that a delete of a
// matched edge lowers the matching weight outside this total (gains count
// augmentations, not edits).
func (r *Runner) Tick(m *graph.Matching, batch *MutationBatch, stats *Stats) (graph.Weight, error) {
	if err := r.ApplyMutations(batch, m, stats); err != nil {
		return 0, err
	}
	maxRounds, patience := effectiveBudget(r.g.N(), r.opts)
	var total graph.Weight
	stalled := 0
	for i := 0; i < maxRounds && stalled < patience; i++ {
		gain, err := r.Round(m, stats)
		if err != nil {
			return total, err
		}
		total += gain
		if gain == 0 {
			stalled++
		} else {
			stalled = 0
		}
	}
	return total, nil
}

func floatsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
