package core

// Solve checkpointing: persisting an in-flight Theorem 1.2 run so a
// restarted process resumes warm and finishes bit-identically to the
// uninterrupted run.
//
// The checkpoint persists the run's *generators*, not its caches: the
// graph, the matching so far, the round/stall counters, the accumulated
// Stats, and the exact position of the Rng stream (seed + draw count).
// The amortised context — incremental index, delta chains, retained CSRs,
// cross-class cache — is deliberately not serialised: NewRunner rebuilds
// all of it deterministically from (graph, matching), and the differential
// suite's rebuild-twin equivalence (a fresh Runner's Round equals a
// Solve-held Runner's Round, TestAmortizedRoundBitIdentical and kin) is
// exactly the statement that the rebuilt context continues bit-identically.
// That keeps the format small, version-stable across cache-layout changes,
// and incapable of smuggling corrupted amortised state across a restart —
// a corrupted snapshot is caught by the container checksum and degrades to
// a cold start (the bottom rung of the degradation ladder).
//
// The one configuration excluded from the bit-identity claim is WarmStart:
// its cross-round solver seeds are history, not a function of (graph,
// matching), so a resumed warm run re-converges from cold seeds — still an
// exact solve per pair, same quality guarantees, but not the uninterrupted
// run's bit pattern (warm runs are held to cardinality/quality
// equivalences everywhere else too).

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// checkpointVersion is the current checkpoint format version (the snapshot
// container's version field). Readers reject higher versions.
const checkpointVersion = 1

// ErrCheckpointOptions: the options passed to ResumeSolve describe a
// different run than the checkpoint was taken from (granularity, class
// base, budgets or amortisation flags differ), so resuming under them
// would neither reproduce nor meaningfully continue the original run.
var ErrCheckpointOptions = errors.New("core: checkpoint was taken under different options")

// CountingSource is a rand.Source64 that counts its draws, making the Rng
// stream position serialisable: a fresh source over the same seed advanced
// by Draws() calls is in the identical state. This relies on (and
// TestCountingSourceReplay pins) math/rand's seeded source advancing
// exactly one internal step per Int63 or Uint64 call, so the burn can
// replay mixed call sequences without recording which was which.
type CountingSource struct {
	src   rand.Source64
	draws uint64
}

// NewCountingSource returns a counting wrapper over math/rand's seeded
// source — the same generator rand.NewSource yields, so a Solve driven
// through it sees the identical stream (and results) as one driven by a
// plain rand.New(rand.NewSource(seed)).
func NewCountingSource(seed int64) *CountingSource {
	return &CountingSource{src: rand.NewSource(seed).(rand.Source64)}
}

// ReplayCountingSource returns a counting source advanced to the state a
// NewCountingSource(seed) reaches after draws calls.
func ReplayCountingSource(seed int64, draws uint64) *CountingSource {
	cs := NewCountingSource(seed)
	for i := uint64(0); i < draws; i++ {
		cs.src.Uint64()
	}
	cs.draws = draws
	return cs
}

func (s *CountingSource) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

func (s *CountingSource) Uint64() uint64 {
	s.draws++
	return s.src.Uint64()
}

func (s *CountingSource) Seed(seed int64) {
	s.src.Seed(seed)
	s.draws = 0
}

// Draws returns how many values have been drawn from the source.
func (s *CountingSource) Draws() uint64 { return s.draws }

// CheckpointMeta fingerprints the run configuration a checkpoint was taken
// under. ResumeSolve refuses a checkpoint whose fingerprint disagrees with
// the options it is handed (Workers excepted: results are invariant under
// the worker count, so a resume may rescale the pool freely).
type CheckpointMeta struct {
	Granularity   float64
	MaxLayers     int
	SumCap        float64
	ClassBase     float64
	MaxRounds     int
	Patience      int
	MaxPairs      int
	Workers       int
	Amortize      bool
	WarmStart     bool
	DeltaCutover  int
	RepairCutover int
	CacheGate     int
}

func metaOf(opts Options) CheckpointMeta {
	opts = opts.withDefaults()
	return CheckpointMeta{
		Granularity:   opts.Layered.Granularity,
		MaxLayers:     opts.Layered.MaxLayers,
		SumCap:        opts.Layered.SumCap,
		ClassBase:     opts.ClassBase,
		MaxRounds:     opts.MaxRounds,
		Patience:      opts.Patience,
		MaxPairs:      opts.MaxPairsPerClass,
		Workers:       opts.Workers,
		Amortize:      opts.Amortize,
		WarmStart:     opts.WarmStart,
		DeltaCutover:  opts.DeltaCutover,
		RepairCutover: opts.RepairCutover,
		CacheGate:     opts.CacheGate,
	}
}

// compatible reports whether a checkpoint under m may resume under other:
// equal in everything but the worker count.
func (m CheckpointMeta) compatible(other CheckpointMeta) bool {
	m.Workers, other.Workers = 0, 0
	return m == other
}

// MetaOf fingerprints opts the way SolveCheckpointed does, for callers
// assembling their own Checkpoint — the augserve tick loop persists tick
// counts rather than Solve rounds, but shares the container format and the
// resume-compatibility rule.
func MetaOf(opts Options) CheckpointMeta { return metaOf(opts) }

// Compatible reports whether a checkpoint taken under m may resume under
// other: equal in everything but the worker count (results are invariant
// under the pool size, so a resume may rescale it freely).
func (m CheckpointMeta) Compatible(other CheckpointMeta) bool { return m.compatible(other) }

// Checkpoint is the persisted state of an in-flight Solve, taken between
// rounds. See the file comment for what is (and deliberately is not)
// persisted.
type Checkpoint struct {
	// Graph and M are the instance and the matching after Round rounds.
	Graph *graph.Graph
	M     *graph.Matching
	// Round is the number of completed rounds; Stalled the current
	// consecutive-zero-gain count — together the loop position.
	Round   int
	Stalled int
	// Stats are the counters accumulated over the completed rounds.
	Stats Stats
	// RngSeed and RngDraws pin the Rng stream: a fresh seeded source
	// advanced by RngDraws draws continues the run's exact stream.
	RngSeed  int64
	RngDraws uint64
	// Meta fingerprints the options the run was started under.
	Meta CheckpointMeta
}

// Section names of the checkpoint snapshot.
const (
	sectGraph    = "graph"
	sectMatching = "matching"
	sectDriver   = "driver"
	sectStats    = "stats"
)

// EncodeCheckpoint serialises cp into the versioned, checksummed snapshot
// container (graph.EncodeSnapshot).
func EncodeCheckpoint(cp *Checkpoint) []byte {
	return graph.EncodeSnapshot(checkpointVersion, []graph.SnapshotSection{
		{Name: sectGraph, Data: graph.EncodeGraphSection(cp.Graph)},
		{Name: sectMatching, Data: graph.EncodeMatchingSection(cp.M)},
		{Name: sectDriver, Data: encodeDriver(cp)},
		{Name: sectStats, Data: encodeStats(cp.Stats)},
	})
}

// DecodeCheckpoint parses and verifies a checkpoint snapshot. Any
// truncation, bit flip or version skew surfaces as a graph.ErrSnapshot*
// error; callers treat every error as "no usable checkpoint" and start
// cold.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	_, sections, err := graph.DecodeSnapshot(data, checkpointVersion)
	if err != nil {
		return nil, err
	}
	cp := &Checkpoint{}
	for _, want := range []string{sectGraph, sectMatching, sectDriver, sectStats} {
		payload, ok := graph.FindSection(sections, want)
		if !ok {
			return nil, fmt.Errorf("%w: checkpoint missing %q section", graph.ErrSnapshotSection, want)
		}
		switch want {
		case sectGraph:
			cp.Graph, err = graph.DecodeGraphSection(payload)
		case sectMatching:
			cp.M, err = graph.DecodeMatchingSection(payload)
		case sectDriver:
			err = decodeDriver(payload, cp)
		case sectStats:
			cp.Stats, err = decodeStats(payload)
		}
		if err != nil {
			return nil, err
		}
	}
	if cp.M.N() != cp.Graph.N() {
		return nil, fmt.Errorf("%w: matching over %d vertices, graph over %d",
			graph.ErrSnapshotSection, cp.M.N(), cp.Graph.N())
	}
	if err := cp.M.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", graph.ErrSnapshotSection, err)
	}
	return cp, nil
}

// SaveCheckpoint writes cp to path atomically (write-then-rename), so a
// crash mid-save leaves the previous checkpoint intact rather than a
// truncated file — truncation is detected either way, but atomic replace
// keeps a resumable state on disk at all times.
func SaveCheckpoint(path string, cp *Checkpoint) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, EncodeCheckpoint(cp), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadCheckpoint reads and verifies the checkpoint at path.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeCheckpoint(data)
}

// driver section: key=value text lines, like the stats section — a format
// a future field extends without breaking older payload parsing.
func encodeDriver(cp *Checkpoint) []byte {
	var b strings.Builder
	kv := func(k, v string) { b.WriteString(k); b.WriteByte('='); b.WriteString(v); b.WriteByte('\n') }
	kv("round", strconv.Itoa(cp.Round))
	kv("stalled", strconv.Itoa(cp.Stalled))
	kv("rng-seed", strconv.FormatInt(cp.RngSeed, 10))
	kv("rng-draws", strconv.FormatUint(cp.RngDraws, 10))
	m := cp.Meta
	kv("granularity", strconv.FormatFloat(m.Granularity, 'g', -1, 64))
	kv("max-layers", strconv.Itoa(m.MaxLayers))
	kv("sum-cap", strconv.FormatFloat(m.SumCap, 'g', -1, 64))
	kv("class-base", strconv.FormatFloat(m.ClassBase, 'g', -1, 64))
	kv("max-rounds", strconv.Itoa(m.MaxRounds))
	kv("patience", strconv.Itoa(m.Patience))
	kv("max-pairs", strconv.Itoa(m.MaxPairs))
	kv("workers", strconv.Itoa(m.Workers))
	kv("amortize", strconv.FormatBool(m.Amortize))
	kv("warm-start", strconv.FormatBool(m.WarmStart))
	kv("delta-cutover", strconv.Itoa(m.DeltaCutover))
	kv("repair-cutover", strconv.Itoa(m.RepairCutover))
	kv("cache-gate", strconv.Itoa(m.CacheGate))
	return []byte(b.String())
}

func decodeDriver(data []byte, cp *Checkpoint) error {
	vals, err := parseKVLines(data, "driver")
	if err != nil {
		return err
	}
	geti := func(k string) (int, error) {
		v, err := strconv.Atoi(vals[k])
		if err != nil {
			return 0, fmt.Errorf("%w: driver %s=%q", graph.ErrSnapshotSection, k, vals[k])
		}
		return v, nil
	}
	getf := func(k string) (float64, error) {
		v, err := strconv.ParseFloat(vals[k], 64)
		if err != nil {
			return 0, fmt.Errorf("%w: driver %s=%q", graph.ErrSnapshotSection, k, vals[k])
		}
		return v, nil
	}
	getb := func(k string) (bool, error) {
		v, err := strconv.ParseBool(vals[k])
		if err != nil {
			return false, fmt.Errorf("%w: driver %s=%q", graph.ErrSnapshotSection, k, vals[k])
		}
		return v, nil
	}
	m := &cp.Meta
	steps := []func() error{
		func() (err error) { cp.Round, err = geti("round"); return },
		func() (err error) { cp.Stalled, err = geti("stalled"); return },
		func() (err error) {
			v, err := strconv.ParseInt(vals["rng-seed"], 10, 64)
			cp.RngSeed = v
			if err != nil {
				err = fmt.Errorf("%w: driver rng-seed=%q", graph.ErrSnapshotSection, vals["rng-seed"])
			}
			return
		},
		func() (err error) {
			v, err := strconv.ParseUint(vals["rng-draws"], 10, 64)
			cp.RngDraws = v
			if err != nil {
				err = fmt.Errorf("%w: driver rng-draws=%q", graph.ErrSnapshotSection, vals["rng-draws"])
			}
			return
		},
		func() (err error) { m.Granularity, err = getf("granularity"); return },
		func() (err error) { m.MaxLayers, err = geti("max-layers"); return },
		func() (err error) { m.SumCap, err = getf("sum-cap"); return },
		func() (err error) { m.ClassBase, err = getf("class-base"); return },
		func() (err error) { m.MaxRounds, err = geti("max-rounds"); return },
		func() (err error) { m.Patience, err = geti("patience"); return },
		func() (err error) { m.MaxPairs, err = geti("max-pairs"); return },
		func() (err error) { m.Workers, err = geti("workers"); return },
		func() (err error) { m.Amortize, err = getb("amortize"); return },
		func() (err error) { m.WarmStart, err = getb("warm-start"); return },
		func() (err error) { m.DeltaCutover, err = geti("delta-cutover"); return },
		func() (err error) { m.RepairCutover, err = geti("repair-cutover"); return },
		func() (err error) { m.CacheGate, err = geti("cache-gate"); return },
	}
	for _, step := range steps {
		if err := step(); err != nil {
			return err
		}
	}
	if cp.Round < 0 || cp.Stalled < 0 {
		return fmt.Errorf("%w: negative driver counters", graph.ErrSnapshotSection)
	}
	return nil
}

// stats section: the kebab-case name/value lines of Stats.Fields — the same
// reflective enumeration the CLIs print, so a future Stats counter rides
// along automatically, and a reader simply zero-fills counters a snapshot
// predates (forward/backward compatible by construction).
func encodeStats(s Stats) []byte {
	var b strings.Builder
	for _, f := range s.Fields() {
		b.WriteString(f.Name)
		b.WriteByte('=')
		b.WriteString(strconv.FormatInt(f.Value, 10))
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

func decodeStats(data []byte) (Stats, error) {
	var s Stats
	vals, err := parseKVLines(data, "stats")
	if err != nil {
		return s, err
	}
	sv := reflect.ValueOf(&s).Elem()
	for i, f := range s.Fields() {
		raw, ok := vals[f.Name]
		if !ok {
			continue // counter newer than the snapshot: stays zero
		}
		v, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return s, fmt.Errorf("%w: stats %s=%q", graph.ErrSnapshotSection, f.Name, raw)
		}
		sv.Field(i).SetInt(v)
	}
	return s, nil
}

func parseKVLines(data []byte, what string) (map[string]string, error) {
	vals := make(map[string]string)
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" {
			continue
		}
		k, v, ok := strings.Cut(line, "=")
		if !ok {
			return nil, fmt.Errorf("%w: %s line %q", graph.ErrSnapshotSection, what, line)
		}
		vals[k] = v
	}
	return vals, nil
}

// SolveCheckpointed runs Solve with its Rng pinned to seed through a
// CountingSource and hands a checkpoint to save after every completed
// round. The matching and stats are identical to Solve's with
// opts.Rng = rand.New(rand.NewSource(seed)) — the counting wrapper draws
// from the very same generator — so checkpointing is free of behaviour
// change. opts.Rng must be unset (an arbitrary caller Rng has no
// serialisable position). A save error aborts the run; the checkpoint
// handed out aliases live state and must be used (encoded) within the
// callback.
func SolveCheckpointed(g *graph.Graph, initial *graph.Matching, opts Options, seed int64, save func(*Checkpoint) error) (Result, error) {
	if opts.Rng != nil {
		return Result{}, errors.New("core: SolveCheckpointed owns the Rng; leave Options.Rng nil")
	}
	cs := NewCountingSource(seed)
	return solveFrom(g, initial, opts, seed, cs, 0, 0, Stats{}, save)
}

// ResumeSolve continues the run persisted in cp: the matching, round and
// stall counters, stats and Rng stream pick up exactly where the
// checkpoint left them, the amortised context is rebuilt from (graph,
// matching), and the remaining rounds run to the same termination rule.
// For every deterministic configuration (anything but WarmStart) the final
// matching and stats are bit-identical to the uninterrupted run's. opts
// must describe the same run (see CheckpointMeta; Workers may differ), and
// opts.Rng must be unset. The save callback may be nil to resume without
// further checkpointing.
func ResumeSolve(cp *Checkpoint, opts Options, save func(*Checkpoint) error) (Result, error) {
	if opts.Rng != nil {
		return Result{}, errors.New("core: ResumeSolve owns the Rng; leave Options.Rng nil")
	}
	if !cp.Meta.compatible(metaOf(opts)) {
		return Result{}, fmt.Errorf("%w: snapshot %+v vs options %+v", ErrCheckpointOptions, cp.Meta, metaOf(opts))
	}
	cs := ReplayCountingSource(cp.RngSeed, cp.RngDraws)
	return solveFrom(cp.Graph, cp.M, opts, cp.RngSeed, cs, cp.Round, cp.Stalled, cp.Stats, save)
}

// solveFrom is Solve's loop with an explicit starting position — the shared
// body of SolveCheckpointed (round 0) and ResumeSolve (mid-run).
func solveFrom(
	g *graph.Graph,
	initial *graph.Matching,
	opts Options,
	seed int64,
	cs *CountingSource,
	startRound, stalled int,
	stats Stats,
	save func(*Checkpoint) error,
) (Result, error) {
	opts.Rng = rand.New(cs)
	opts = opts.withDefaults()
	m := graph.NewMatching(g.N())
	if initial != nil {
		m = initial.Clone()
	}
	meta := metaOf(opts)
	maxRounds, patience := effectiveBudget(g.N(), opts)
	runner := NewRunner(g, opts)
	for r := startRound; r < maxRounds && stalled < patience; r++ {
		gain, err := runner.Round(m, &stats)
		if err != nil {
			return Result{M: m, Stats: stats}, err
		}
		if opts.Trace != nil {
			opts.Trace(r, m.Weight())
		}
		if gain == 0 {
			stalled++
		} else {
			stalled = 0
		}
		if save != nil {
			cp := &Checkpoint{
				Graph: g, M: m,
				Round: r + 1, Stalled: stalled,
				Stats:   stats,
				RngSeed: seed, RngDraws: cs.Draws(),
				Meta: meta,
			}
			if err := save(cp); err != nil {
				return Result{M: m, Stats: stats}, fmt.Errorf("core: checkpoint save after round %d: %w", r, err)
			}
		}
	}
	return Result{M: m, Stats: stats}, nil
}
