// Package localratio implements the local-ratio technique for streaming
// weighted matching due to Paz and Schwartzman [PS17], in the form used by
// Section 3 of Gamlath–Kale–Mitrović–Svensson: each vertex v carries a
// potential α_v; an arriving edge e = (u, v) with positive residual weight
// w'(e) = w(e) − α_u − α_v is pushed onto a stack and both potentials are
// increased by w'(e); unwinding the stack greedily yields a 1/2-approximate
// maximum weight matching of the processed subgraph.
//
// The package also provides the frozen-potential variant that is the key to
// Algorithm 2 (Rand-Arr-Matching): after Freeze, potentials stop moving, and
// the residual weight w” of later edges is evaluated against the frozen
// potentials (the set T of Algorithm 2).
package localratio

import (
	"repro/internal/graph"
	"repro/internal/stream"
)

// Processor runs the local-ratio algorithm over an edge sequence.
// The zero value is unusable; construct with New (or revive a used one
// with Reset — the stack arena survives, so repeated runs stop paying a
// per-edge allocation tax).
type Processor struct {
	alpha  []graph.Weight
	stack  []graph.Edge
	frozen bool
	peak   int
	acct   *stream.Accountant
}

// New returns a processor for graphs on n vertices.
func New(n int) *Processor {
	return &Processor{alpha: make([]graph.Weight, n)}
}

// Reset returns p to the state New(n) constructs while keeping its arenas
// (the potential array and the stack's capacity), the PR 1 Scratch idiom:
// a processor reused across passes or runs allocates only when the stack
// outgrows every previous run.
func (p *Processor) Reset(n int) {
	if cap(p.alpha) < n {
		p.alpha = make([]graph.Weight, n)
	} else {
		p.alpha = p.alpha[:n]
		clear(p.alpha)
	}
	p.stack = p.stack[:0]
	p.frozen = false
	p.peak = 0
	p.acct = nil
}

// SetAccountant registers a as the resource-accounting authority: every
// stacked edge is charged to it as one held word (Lemma 3.15's |S|).
func (p *Processor) SetAccountant(a *stream.Accountant) { p.acct = a }

// Residual returns w(e) − α_u − α_v under the current potentials. After
// Freeze this is the w” of Algorithm 2 line 14 and the surplus weight
// w' of Algorithm 1 line 8.
func (p *Processor) Residual(e graph.Edge) graph.Weight {
	return e.W - p.alpha[e.U] - p.alpha[e.V]
}

// Potential returns α_v.
func (p *Processor) Potential(v int) graph.Weight { return p.alpha[v] }

// Process handles one arriving edge. Before Freeze it pushes edges with
// positive residual onto the stack and raises both endpoint potentials;
// after Freeze it is a no-op returning whether the edge still has positive
// residual (callers store such edges themselves, e.g. Algorithm 2's set T).
// It reports whether the edge was pushed.
func (p *Processor) Process(e graph.Edge) bool {
	r := p.Residual(e)
	if r <= 0 {
		return false
	}
	if p.frozen {
		return false
	}
	p.stack = append(p.stack, e)
	if len(p.stack) > p.peak {
		p.peak = len(p.stack)
	}
	if p.acct != nil {
		p.acct.Hold(1)
	}
	p.alpha[e.U] += r
	p.alpha[e.V] += r
	return true
}

// Freeze stops potential updates. Residual keeps answering with the frozen
// potentials (Algorithm 2 freezes after the first p fraction of the stream).
func (p *Processor) Freeze() { p.frozen = true }

// Frozen reports whether Freeze has been called.
func (p *Processor) Frozen() bool { return p.frozen }

// StackLen returns the current number of stacked edges.
func (p *Processor) StackLen() int { return len(p.stack) }

// PeakStackLen returns the maximum stack size observed (Lemma 3.15's |S|).
func (p *Processor) PeakStackLen() int { return p.peak }

// Stack returns the stacked edges in push order. Callers must not mutate it.
func (p *Processor) Stack() []graph.Edge { return p.stack }

// Unwind pops the stack (LIFO) and greedily builds a matching: an edge is
// added when both endpoints are still free. By the local-ratio theorem the
// result is a 1/2-approximate maximum weight matching of the edges processed
// before Freeze.
func (p *Processor) Unwind() *graph.Matching {
	m := graph.NewMatching(len(p.alpha))
	p.UnwindInto(m)
	return m
}

// UnwindInto pops the stack on top of an existing matching, adding each
// popped edge whose endpoints are free in m. This is Algorithm 2 lines
// 15–17, where the stack augments the matching M1 built from the set T.
// It returns the weight added.
func (p *Processor) UnwindInto(m *graph.Matching) graph.Weight {
	var added graph.Weight
	for i := len(p.stack) - 1; i >= 0; i-- {
		e := p.stack[i]
		if !m.IsMatched(e.U) && !m.IsMatched(e.V) {
			// Endpoints verified free; Add cannot fail.
			if err := m.Add(e); err != nil {
				panic(err)
			}
			added += e.W
		}
	}
	return added
}

// Run processes all edges in order and unwinds, returning the
// 1/2-approximate matching. It is the offline convenience entry point.
func Run(n int, edges []graph.Edge) *graph.Matching {
	p := New(n)
	for _, e := range edges {
		p.Process(e)
	}
	return p.Unwind()
}

// CoverBound returns Σ_v α_v. After every edge of a graph has been
// processed, the potentials dominate each edge weight (w(e) ≤ α_u + α_v),
// i.e. they form a fractional vertex cover of the weights, so by LP duality
// any matching of the processed graph weighs at most CoverBound. This gives
// a certified optimum upper bound — and hence a certified approximation
// ratio — on instances where no exact solver is feasible.
func (p *Processor) CoverBound() graph.Weight {
	var total graph.Weight
	for _, a := range p.alpha {
		total += a
	}
	return total
}

// CertifiedRatio runs the local-ratio algorithm over the edges and returns
// the matching together with a lower bound on its approximation ratio,
// certified by the vertex-cover dual (ratio = w(M)/Σα ≤ w(M)/OPT).
func CertifiedRatio(n int, edges []graph.Edge) (*graph.Matching, float64) {
	p := New(n)
	for _, e := range edges {
		p.Process(e)
	}
	m := p.Unwind()
	bound := p.CoverBound()
	if bound == 0 {
		return m, 0
	}
	return m, float64(m.Weight()) / float64(bound)
}
