package localratio

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/matchutil"
	"repro/internal/stream"
)

func TestHalfApproxAgainstExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		inst := graph.RandomGraph(14, 45, 100, rng)
		m := Run(inst.G.N(), inst.G.Edges())
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
		opt, err := matchutil.MaxWeightExact(inst.G)
		if err != nil {
			t.Fatal(err)
		}
		if 2*m.Weight() < opt.Weight() {
			t.Fatalf("trial %d: local ratio %d below half of %d", trial, m.Weight(), opt.Weight())
		}
	}
}

func TestHalfApproxAnyOrderQuick(t *testing.T) {
	// The 1/2 guarantee must hold for every arrival order (the local-ratio
	// theorem is order oblivious).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := graph.RandomGraph(10, 25, 50, rng)
		opt, err := matchutil.MaxWeightExact(inst.G)
		if err != nil {
			return false
		}
		s := stream.RandomOrder(inst.G, rng)
		m := Run(inst.G.N(), s.Edges())
		return 2*m.Weight() >= opt.Weight() && m.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPotentialsCoverEdges(t *testing.T) {
	// After processing, every edge satisfies w(e) <= alpha_u + alpha_v
	// (the potentials form a fractional vertex cover of the weights).
	rng := rand.New(rand.NewSource(2))
	inst := graph.RandomGraph(20, 60, 80, rng)
	p := New(inst.G.N())
	for _, e := range inst.G.Edges() {
		p.Process(e)
	}
	for _, e := range inst.G.Edges() {
		if p.Residual(e) > 0 {
			t.Fatalf("edge %v still has positive residual %d", e, p.Residual(e))
		}
	}
}

func TestFreezeStopsUpdates(t *testing.T) {
	p := New(4)
	p.Process(graph.Edge{U: 0, V: 1, W: 10})
	p.Freeze()
	if !p.Frozen() {
		t.Fatal("Frozen() false after Freeze")
	}
	a0 := p.Potential(0)
	if pushed := p.Process(graph.Edge{U: 0, V: 2, W: 100}); pushed {
		t.Error("frozen processor pushed an edge")
	}
	if p.Potential(0) != a0 || p.Potential(2) != 0 {
		t.Error("frozen processor moved potentials")
	}
	// Residual still answers under frozen potentials.
	if r := p.Residual(graph.Edge{U: 0, V: 2, W: 100}); r != 100-a0 {
		t.Errorf("Residual = %d, want %d", r, 100-a0)
	}
}

func TestUnwindIntoRespectsExisting(t *testing.T) {
	p := New(6)
	p.Process(graph.Edge{U: 0, V: 1, W: 5})
	p.Process(graph.Edge{U: 2, V: 3, W: 5})
	m := graph.NewMatching(6)
	if err := m.Add(graph.Edge{U: 1, V: 2, W: 50}); err != nil {
		t.Fatal(err)
	}
	added := p.UnwindInto(m)
	// Both stacked edges conflict with 1-2 at one endpoint each... 0-1
	// conflicts (vertex 1), 2-3 conflicts (vertex 2): nothing fits.
	if added != 0 {
		t.Errorf("added = %d, want 0", added)
	}
	if m.Size() != 1 {
		t.Errorf("size = %d", m.Size())
	}
}

func TestUnwindLIFOPrefersLaterEdges(t *testing.T) {
	// Push 0-1 (w=3) then 1-2 (residual 4): unwinding must consider 1-2
	// first (reverse order), giving the heavier matching.
	p := New(3)
	p.Process(graph.Edge{U: 0, V: 1, W: 3})
	p.Process(graph.Edge{U: 1, V: 2, W: 7})
	m := p.Unwind()
	if !m.Has(1, 2) {
		t.Errorf("unwind picked %v, want edge 1-2", m.Edges())
	}
}

func TestStackSizeRandomOrder(t *testing.T) {
	// Lemma 3.15 shape: on dense graphs with random arrival the stack holds
	// O(n log n) edges. We check a generous constant at one size.
	rng := rand.New(rand.NewSource(3))
	n := 150
	inst := graph.RandomGraph(n, n*(n-1)/4, 1<<20, rng)
	s := stream.RandomOrder(inst.G, rng)
	p := New(n)
	for e, ok := s.Next(); ok; e, ok = s.Next() {
		p.Process(e)
	}
	bound := int(8 * float64(n) * math.Log(float64(n)))
	if p.PeakStackLen() > bound {
		t.Errorf("stack peak %d exceeds 8·n·ln n = %d", p.PeakStackLen(), bound)
	}
}

func TestRunEmptyGraph(t *testing.T) {
	m := Run(5, nil)
	if m.Size() != 0 {
		t.Errorf("empty run produced %d edges", m.Size())
	}
}

func TestCoverBoundDominatesOptimum(t *testing.T) {
	// LP duality: after processing every edge, Σα upper-bounds any
	// matching weight of the graph (invariant behind CertifiedRatio).
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 25; trial++ {
		inst := graph.RandomGraph(12, 30, 60, rng)
		p := New(inst.G.N())
		for _, e := range inst.G.Edges() {
			p.Process(e)
		}
		opt, err := matchutil.MaxWeightExact(inst.G)
		if err != nil {
			t.Fatal(err)
		}
		if p.CoverBound() < opt.Weight() {
			t.Fatalf("trial %d: cover bound %d below optimum %d", trial, p.CoverBound(), opt.Weight())
		}
	}
}

func TestCertifiedRatioIsValidLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		inst := graph.RandomGraph(12, 30, 60, rng)
		m, certified := CertifiedRatio(inst.G.N(), inst.G.Edges())
		opt, err := matchutil.MaxWeightExact(inst.G)
		if err != nil {
			t.Fatal(err)
		}
		actual := float64(m.Weight()) / float64(opt.Weight())
		if certified > actual+1e-9 {
			t.Fatalf("trial %d: certified %.4f exceeds actual %.4f", trial, certified, actual)
		}
		if certified < 0.33 {
			t.Fatalf("trial %d: certified ratio %.4f suspiciously low", trial, certified)
		}
	}
}

func TestCertifiedRatioEmpty(t *testing.T) {
	if _, r := CertifiedRatio(3, nil); r != 0 {
		t.Errorf("empty certified ratio = %v", r)
	}
}

func TestBoundedHalfMinusEps(t *testing.T) {
	// (1/2 - O(eps)) on every order, including adversarial ascending.
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 20; trial++ {
		inst := graph.RandomGraph(14, 45, 100, rng)
		opt, err := matchutil.MaxWeightExact(inst.G)
		if err != nil {
			t.Fatal(err)
		}
		asc := inst.G.SortedEdges()
		for i, j := 0, len(asc)-1; i < j; i, j = i+1, j-1 {
			asc[i], asc[j] = asc[j], asc[i]
		}
		m := RunBounded(inst.G.N(), asc, 0.1)
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
		if float64(m.Weight()) < (0.5-0.2)*float64(opt.Weight()) {
			t.Fatalf("trial %d: bounded %d below (1/2-2eps) of %d", trial, m.Weight(), opt.Weight())
		}
	}
}

func TestBoundedStackSublinearOnAdversarial(t *testing.T) {
	// The whole point of [PS17]: ascending-weight adversarial order blows
	// the plain stack to ~m but the bounded stack stays near n log W.
	rng := rand.New(rand.NewSource(21))
	n := 120
	inst := graph.RandomGraph(n, n*n/5, 1<<20, rng)
	asc := inst.G.SortedEdges()
	for i, j := 0, len(asc)-1; i < j; i, j = i+1, j-1 {
		asc[i], asc[j] = asc[j], asc[i]
	}

	plain := New(n)
	bounded := NewBounded(n, 0.2)
	for _, e := range asc {
		plain.Process(e)
		bounded.Process(e)
	}
	if bounded.PeakStackLen() >= plain.PeakStackLen()/2 {
		t.Errorf("bounded stack %d not well below plain %d",
			bounded.PeakStackLen(), plain.PeakStackLen())
	}
	capWords := int(4 * float64(n) * math.Log(float64(1<<20)) / math.Log(1.2))
	if bounded.PeakStackLen() > capWords {
		t.Errorf("bounded stack %d above n·log_{1.2} W cap %d", bounded.PeakStackLen(), capWords)
	}
}

func TestNewBoundedClampsEps(t *testing.T) {
	p := NewBounded(2, -5)
	if p.eps != 0.1 {
		t.Errorf("eps = %v, want clamp to 0.1", p.eps)
	}
}
