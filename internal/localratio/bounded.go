package localratio

import (
	"repro/internal/graph"
)

// BoundedProcessor is the space-bounded variant of the local-ratio
// algorithm due to Paz–Schwartzman [PS17] in the simplified form of
// Ghaffari–Wajc [GW19]: an edge is stacked only when its weight exceeds
// (1+eps) times the current potential sum of its endpoints. This caps the
// per-vertex stack contribution at O(log_{1+eps} W) and yields a
// (1/2 − O(eps))-approximation on *adversarial* edge orders — the algorithm
// whose 1/2 barrier Theorem 1.1 breaks for random orders.
type BoundedProcessor struct {
	alpha []graph.Weight
	stack []graph.Edge
	eps   float64
	peak  int
}

// NewBounded returns a bounded processor with slack eps in (0, 1].
func NewBounded(n int, eps float64) *BoundedProcessor {
	if eps <= 0 || eps > 1 {
		eps = 0.1
	}
	return &BoundedProcessor{alpha: make([]graph.Weight, n), eps: eps}
}

// Process stacks e when w(e) > (1+eps)(α_u + α_v), raising both potentials
// by the residual. It reports whether the edge was kept.
func (p *BoundedProcessor) Process(e graph.Edge) bool {
	base := p.alpha[e.U] + p.alpha[e.V]
	if float64(e.W) <= (1+p.eps)*float64(base) {
		return false
	}
	r := e.W - base
	p.stack = append(p.stack, e)
	if len(p.stack) > p.peak {
		p.peak = len(p.stack)
	}
	p.alpha[e.U] += r
	p.alpha[e.V] += r
	return true
}

// PeakStackLen returns the maximum stack size observed.
func (p *BoundedProcessor) PeakStackLen() int { return p.peak }

// Unwind pops the stack greedily into a matching, as in the unbounded
// variant.
func (p *BoundedProcessor) Unwind() *graph.Matching {
	m := graph.NewMatching(len(p.alpha))
	for i := len(p.stack) - 1; i >= 0; i-- {
		e := p.stack[i]
		if !m.IsMatched(e.U) && !m.IsMatched(e.V) {
			// Endpoints verified free; Add cannot fail.
			if err := m.Add(e); err != nil {
				panic(err)
			}
		}
	}
	return m
}

// RunBounded processes all edges in order with slack eps and unwinds.
func RunBounded(n int, edges []graph.Edge, eps float64) *graph.Matching {
	p := NewBounded(n, eps)
	for _, e := range edges {
		p.Process(e)
	}
	return p.Unwind()
}
